(* Quickstart: a replicated shared counter on a simulated 4-machine Amoeba
   pool, exercised under both protocol implementations.

     dune exec examples/quickstart.exe

   Shows the essentials of the public API: build a cluster, pick a
   protocol stack, declare a shared data-object with read and write
   operations, spawn Orca processes, run the simulation, read the clock. *)

type Sim.Payload.t += Num of int

let run impl =
  (* A pool of 4 machines on one Ethernet segment, running FLIP. *)
  let cluster = Core.Cluster.create ~n:4 () in
  let dom = Core.Cluster.domain cluster impl in

  (* A replicated counter: reads are local, increments are totally-ordered
     broadcasts, so every replica sees the same sequence of updates. *)
  let counter =
    Orca.Rts.declare dom ~name:"counter" ~placement:Orca.Rts.Replicated
      ~init:(fun ~rank:_ -> ref 0)
  in
  let read = Orca.Rts.defop counter ~name:"read" ~kind:`Read (fun st _ -> Num !st) in
  let incr =
    Orca.Rts.defop counter ~name:"incr" ~kind:`Write (fun st _ ->
        Stdlib.incr st;
        Num !st)
  in

  (* Four Orca processes, each incrementing 5 times. *)
  let app_done = ref Sim.Time.zero in
  for rank = 0 to 3 do
    ignore
      (Orca.Rts.spawn dom ~rank "worker" (fun ~rank ->
           for _ = 1 to 5 do
             ignore (Orca.Rts.invoke incr Sim.Payload.Empty)
           done;
           (match Orca.Rts.invoke read Sim.Payload.Empty with
            | Num v ->
              Printf.printf "  [%s] rank %d sees counter >= %d at t=%.2f ms\n"
                (Core.Cluster.impl_label impl) rank v
                (Sim.Time.to_ms (Sim.Engine.now cluster.Core.Cluster.eng))
            | _ -> ());
           let now = Sim.Engine.now cluster.Core.Cluster.eng in
           if now > !app_done then app_done := now))
  done;

  (* Run to quiescence (the tail past [app_done] is the sequencer's idle
     catch-up verifying everyone is up to date). *)
  Sim.Engine.run cluster.Core.Cluster.eng;
  let final = !(Orca.Rts.peek counter ~rank:0) in
  Printf.printf "  [%s] final counter = %d (expected 20), finished at %.2f ms\n"
    (Core.Cluster.impl_label impl) final (Sim.Time.to_ms !app_done)

let () =
  print_endline "Replicated counter over kernel-space protocols:";
  run Core.Cluster.Kernel;
  print_endline "Replicated counter over user-space protocols:";
  run Core.Cluster.User
