(* Amoeba's naming layer in action: a directory service (an ordinary
   user-level RPC server) maps names to capabilities, whose rights are
   cryptographically checked — clients holding a restricted capability can
   resolve services but not rebind them.

     dune exec examples/name_service.exe *)

type Sim.Payload.t += Echo of string | Echoed of string

let () =
  let cluster = Core.Cluster.create ~n:3 () in
  let m = cluster.Core.Cluster.machines in
  let flips = cluster.Core.Cluster.flips in

  (* Machine 2 runs the directory server (Amoeba's SOAP). *)
  let dir_rpc = Amoeba.Rpc.create flips.(2) in
  let dir = Amoeba.Directory.start dir_rpc in
  let dir_addr = Amoeba.Directory.address dir in
  let admin = Amoeba.Directory.root dir in
  let read_only = Amoeba.Capability.restrict admin ~rights:Amoeba.Capability.right_read in

  (* Machine 1 runs an echo service and registers itself (it holds a
     write-capable directory capability). *)
  let echo_rpc = Amoeba.Rpc.create flips.(1) in
  let echo_port = Amoeba.Rpc.export echo_rpc ~name:"echo" in
  ignore
    (Machine.Thread.spawn m.(1) ~prio:Machine.Thread.Daemon "echo-server" (fun () ->
         while true do
           let r = Amoeba.Rpc.get_request echo_port in
           match Amoeba.Rpc.request_payload r with
           | Echo s ->
             Amoeba.Rpc.put_reply echo_port r ~size:(String.length s + 8)
               (Echoed (String.uppercase_ascii s))
           | _ -> Amoeba.Rpc.put_reply echo_port r ~size:0 Sim.Payload.Empty
         done));
  let echo_priv = Amoeba.Capability.create_port ~seed:7 in
  let echo_cap = Amoeba.Capability.mint echo_priv ~obj:1 in
  ignore
    (Machine.Thread.spawn m.(1) "registrar" (fun () ->
         Amoeba.Directory.register echo_rpc ~dir:dir_addr ~cap:admin ~name:"echo"
           echo_cap;
         Printf.printf "service 'echo' registered by machine 1\n"));

  (* Machine 0 is a client with only the read-only directory capability. *)
  let client_rpc = Amoeba.Rpc.create flips.(0) in
  ignore
    (Machine.Thread.spawn m.(0) "client" (fun () ->
         Machine.Thread.sleep (Sim.Time.ms 20);
         let cap =
           Amoeba.Directory.lookup client_rpc ~dir:dir_addr ~cap:read_only ~name:"echo"
         in
         Printf.printf "client resolved 'echo' -> %s\n"
           (Format.asprintf "%a" Amoeba.Capability.pp cap);
         (* The directory refuses a rebind attempt with the weak capability. *)
         (try
            Amoeba.Directory.register client_rpc ~dir:dir_addr ~cap:read_only
              ~name:"echo" cap;
            Printf.printf "BUG: rebind was allowed!\n"
          with Amoeba.Directory.Denied ->
            Printf.printf "rebind with a read-only capability: denied (correct)\n");
         (* Talk to the resolved service.  The capability's port names it;
            the transport address came from the directory entry's server —
            here we reach it via the same RPC mechanism. *)
         match
           Amoeba.Rpc.trans client_rpc ~dst:(Amoeba.Rpc.address echo_port) ~size:16
             (Echo "hello, amoeba")
         with
         | _, Echoed s -> Printf.printf "echo service replied: %s\n" s
         | _ -> ()));
  Sim.Engine.run cluster.Core.Cluster.eng;
  Printf.printf "simulated time: %.2f ms\n"
    (Sim.Time.to_ms (Sim.Engine.now cluster.Core.Cluster.eng))
