(* A miniature replicated branch-and-bound — the TSP pattern from the
   paper's Table 3 — showing how object placement drives the protocol mix:
   the job queue is owned by one machine (RPC traffic), the best-so-far
   bound is replicated (local reads, broadcast writes), and the search
   order, hence the work done, changes with the processor count.

     dune exec examples/bound_and_branch.exe *)


let run impl ~procs =
  let cluster = Core.Cluster.create ~n:procs () in
  let dom = Core.Cluster.domain cluster impl in
  let p = { Apps.Tsp.test_params with Apps.Tsp.n_cities = 10; node_cost = Sim.Time.us 50 } in
  let body, result = Apps.Tsp.make dom p in
  for rank = 0 to procs - 1 do
    ignore (Orca.Rts.spawn dom ~rank "worker" body)
  done;
  Sim.Engine.run cluster.Core.Cluster.eng;
  Printf.printf
    "  [%s] P=%-2d  optimal tour = %-4d  runtime %.1f ms  (RPCs: %d, broadcasts: %d)\n"
    (Core.Cluster.impl_label impl) procs (result ())
    (Sim.Time.to_ms (Sim.Engine.now cluster.Core.Cluster.eng))
    (Orca.Rts.remote_invocations dom)
    (Orca.Rts.broadcasts dom);
  result ()

let () =
  Printf.printf "Branch-and-bound TSP, 10 cities, %d jobs:\n"
    (Apps.Tsp.jobs_of { Apps.Tsp.test_params with Apps.Tsp.n_cities = 10 });
  let reference =
    Apps.Tsp.sequential { Apps.Tsp.test_params with Apps.Tsp.n_cities = 10; node_cost = Sim.Time.us 50 }
  in
  let results =
    List.concat_map
      (fun procs ->
        [ run Core.Cluster.Kernel ~procs; run Core.Cluster.User ~procs ])
      [ 1; 4; 8 ]
  in
  Printf.printf "  sequential reference: %d; every run agrees: %b\n" reference
    (List.for_all (fun r -> r = reference) results)
