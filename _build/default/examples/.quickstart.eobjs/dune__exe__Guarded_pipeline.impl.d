examples/guarded_pipeline.ml: Core List Orca Printf Queue Sim String
