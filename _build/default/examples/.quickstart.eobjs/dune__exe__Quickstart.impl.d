examples/quickstart.ml: Core Orca Printf Sim Stdlib
