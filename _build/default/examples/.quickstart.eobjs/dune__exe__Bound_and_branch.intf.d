examples/bound_and_branch.mli:
