examples/bound_and_branch.ml: Apps Core List Orca Printf Sim
