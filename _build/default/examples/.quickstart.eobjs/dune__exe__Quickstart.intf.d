examples/quickstart.mli:
