examples/ordered_chat.mli:
