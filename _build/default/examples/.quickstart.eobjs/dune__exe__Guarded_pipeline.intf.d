examples/guarded_pipeline.mli:
