examples/name_service.ml: Amoeba Array Core Format Machine Printf Sim String
