examples/ordered_chat.ml: Amoeba Array Core List Machine Panda Printf Sim
