(* A three-stage pipeline built from guarded bounded-buffer objects — the
   communication pattern of the paper's RL/SOR applications, and the one
   where the two protocol stacks differ structurally: a blocked guarded
   operation parks a kernel server thread under Amoeba RPC (costing an
   extra context switch when it resumes), but becomes a continuation under
   the user-space protocols.

     dune exec examples/guarded_pipeline.exe *)

type Sim.Payload.t += Num of int

let capacity = 4
let items = 12

let bounded_buffer dom ~name ~owner =
  let od =
    Orca.Rts.declare dom ~name ~placement:(Orca.Rts.Owned owner) ~init:(fun ~rank:_ ->
        Queue.create ())
  in
  let put =
    Orca.Rts.defop od ~name:"put" ~kind:`Write
      ~guard:(fun q _ -> Queue.length q < capacity)
      (fun q arg ->
        (match arg with Num v -> Queue.push v q | _ -> ());
        Sim.Payload.Empty)
  in
  let get =
    Orca.Rts.defop od ~name:"get" ~kind:`Write
      ~guard:(fun q _ -> not (Queue.is_empty q))
      (fun q _ -> Num (Queue.pop q))
  in
  (put, get)

let run impl =
  let cluster = Core.Cluster.create ~n:3 () in
  let dom = Core.Cluster.domain cluster impl in
  let put1, get1 = bounded_buffer dom ~name:"stage1" ~owner:1 in
  let put2, get2 = bounded_buffer dom ~name:"stage2" ~owner:2 in
  let results = ref [] in
  (* Source on machine 0: produces 1..n. *)
  ignore
    (Orca.Rts.spawn dom ~rank:0 "source" (fun ~rank:_ ->
         for i = 1 to items do
           ignore (Orca.Rts.invoke put1 (Num i))
         done));
  (* Transformer on machine 1: squares. *)
  ignore
    (Orca.Rts.spawn dom ~rank:1 "square" (fun ~rank:_ ->
         for _ = 1 to items do
           match Orca.Rts.invoke get1 Sim.Payload.Empty with
           | Num v -> ignore (Orca.Rts.invoke put2 (Num (v * v)))
           | _ -> ()
         done));
  (* Sink on machine 2. *)
  ignore
    (Orca.Rts.spawn dom ~rank:2 "sink" (fun ~rank:_ ->
         for _ = 1 to items do
           match Orca.Rts.invoke get2 Sim.Payload.Empty with
           | Num v -> results := v :: !results
           | _ -> ()
         done));
  Sim.Engine.run cluster.Core.Cluster.eng;
  Printf.printf "  [%s] pipeline output: %s\n" (Core.Cluster.impl_label impl)
    (String.concat ", " (List.rev_map string_of_int !results));
  Printf.printf "  [%s] finished at %.2f ms; blocked guarded ops: %d\n"
    (Core.Cluster.impl_label impl)
    (Sim.Time.to_ms (Sim.Engine.now cluster.Core.Cluster.eng))
    (Orca.Rts.parked_total dom)

let () =
  print_endline "Guarded bounded-buffer pipeline (squares of 1..12):";
  run Core.Cluster.Kernel;
  run Core.Cluster.User;
  print_endline
    "Note: both give the same answer; the kernel-space run pays Amoeba's\n\
     same-thread-reply workaround for every blocked get, the user-space run\n\
     resolves them as continuations."
