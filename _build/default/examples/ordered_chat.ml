(* Totally-ordered group communication, used directly (below the Orca
   RTS): six machines exchange "chat" messages concurrently and every
   machine logs exactly the same sequence — the guarantee both sequencer
   protocols provide, with the kernel's in-interrupt sequencer and Panda's
   user-space sequencer thread.

     dune exec examples/ordered_chat.exe *)

type Sim.Payload.t += Chat of string

let n = 6
let per_sender = 3

let run_kernel () =
  let cluster = Core.Cluster.create ~n () in
  let _grp, members =
    Amoeba.Group.create_static ~name:"chat" ~sequencer:0 cluster.Core.Cluster.flips
  in
  let logs = Array.make n [] in
  Array.iteri
    (fun i m ->
      ignore
        (Machine.Thread.spawn cluster.Core.Cluster.machines.(i) ~prio:Machine.Thread.Daemon
           "recv" (fun () ->
             for _ = 1 to n * per_sender do
               let _, _, payload = Amoeba.Group.receive m in
               match payload with
               | Chat line -> logs.(i) <- line :: logs.(i)
               | _ -> ()
             done)))
    members;
  Array.iteri
    (fun i m ->
      ignore
        (Machine.Thread.spawn cluster.Core.Cluster.machines.(i) "sender" (fun () ->
             for k = 1 to per_sender do
               Amoeba.Group.send m ~size:80 (Chat (Printf.sprintf "m%d says hello #%d" i k))
             done)))
    members;
  Sim.Engine.run cluster.Core.Cluster.eng;
  Array.map List.rev logs

let run_user () =
  let cluster = Core.Cluster.create ~n () in
  let sys =
    Array.mapi
      (fun i flip -> Panda.System_layer.create ~name:(Printf.sprintf "chat%d" i) flip)
      cluster.Core.Cluster.flips
  in
  let _grp, members =
    Panda.Group.create_static ~name:"chat" ~sequencer:(Panda.Group.On_member 0) sys
  in
  let logs = Array.make n [] in
  Array.iteri
    (fun i m ->
      Panda.Group.set_handler m (fun ~sender:_ ~size:_ payload ->
          match payload with
          | Chat line -> logs.(i) <- line :: logs.(i)
          | _ -> ()))
    members;
  Array.iteri
    (fun i m ->
      ignore
        (Machine.Thread.spawn cluster.Core.Cluster.machines.(i) "sender" (fun () ->
             for k = 1 to per_sender do
               Panda.Group.send m ~size:80 (Chat (Printf.sprintf "m%d says hello #%d" i k))
             done)))
    members;
  Sim.Engine.run cluster.Core.Cluster.eng;
  Array.map List.rev logs

let report name logs =
  Printf.printf "%s:\n" name;
  let reference = logs.(0) in
  Printf.printf "  machine 0 saw, in order:\n";
  List.iter (fun l -> Printf.printf "    %s\n" l) reference;
  let agree = Array.for_all (fun l -> l = reference) logs in
  Printf.printf "  all %d machines agree on the order: %b\n\n" n agree

let () =
  report "Kernel-space sequencer (runs inside the Amoeba kernel)" (run_kernel ());
  report "User-space sequencer (a Panda thread on machine 0)" (run_user ())
