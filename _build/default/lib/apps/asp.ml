module Thread = Machine.Thread

type params = {
  n : int;
  seed : int;
  cell_cost : Sim.Time.span;
}

let default_params = { n = 768; seed = 7; cell_cost = Sim.Time.ns 470 }
let test_params = { n = 48; seed = 7; cell_cost = Sim.Time.ns 100 }

let initial_matrix p =
  let rng = Sim.Rng.create ~seed:p.seed in
  let inf = 1_000_000 in
  Array.init p.n (fun i ->
      Array.init p.n (fun j ->
          if i = j then 0
          else if Sim.Rng.int rng 100 < 20 then 1 + Sim.Rng.int rng 100
          else inf))

let checksum c =
  Array.fold_left (fun acc row -> Array.fold_left (fun a v -> a + v) acc row) 0 c

let sequential p =
  let c = initial_matrix p in
  let n = p.n in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let cik = c.(i).(k) in
      let rowk = c.(k) in
      let rowi = c.(i) in
      for j = 0 to n - 1 do
        let via = cik + rowk.(j) in
        if via < rowi.(j) then rowi.(j) <- via
      done
    done
  done;
  checksum c

(* The replicated row board: iteration k's pivot row, awaited with a
   guarded local operation and consumed exactly once per rank. *)
type board = { rows : (int, int array) Hashtbl.t }

let make dom p =
  let n = p.n in
  let parts = Orca.Rts.size dom in
  let full = initial_matrix p in
  (* Each rank owns the block of rows [lo, hi). *)
  let blocks =
    Array.init parts (fun rank ->
        let lo, hi = Workload.block_range ~n ~parts ~rank in
        (lo, hi, Array.init (hi - lo) (fun i -> full.(lo + i))))
  in
  let board =
    Orca.Rts.declare dom ~name:"asp.board" ~placement:Orca.Rts.Replicated
      ~init:(fun ~rank:_ -> { rows = Hashtbl.create 32 })
  in
  let add_row =
    Orca.Rts.defop board ~name:"add" ~kind:`Write
      ~arg_size:(fun _ -> 4 * n)
      (fun st arg ->
        (match arg with
         | Workload.Row (k, row) -> Hashtbl.replace st.rows k row
         | _ -> ());
        Sim.Payload.Empty)
  in
  let await_row =
    Orca.Rts.defop board ~name:"await" ~kind:`Read
      ~guard:(fun st arg ->
        match arg with Workload.Int_v k -> Hashtbl.mem st.rows k | _ -> false)
      ~res_size:(fun _ -> 4 * n)
      (fun st arg ->
        match arg with
        | Workload.Int_v k ->
          let row = Hashtbl.find st.rows k in
          (* Consumed exactly once per replica: drop it to bound memory. *)
          Hashtbl.remove st.rows k;
          Workload.Row (k, row)
        | _ -> Sim.Payload.Empty)
  in
  let owner_of k =
    let rec find rank =
      let lo, hi, _ = blocks.(rank) in
      if k >= lo && k < hi then rank else find (rank + 1)
    in
    find 0
  in
  let body ~rank =
    let lo, hi, mine = blocks.(rank) in
    for k = 0 to n - 1 do
      if owner_of k = rank then
        ignore
          (Orca.Rts.invoke add_row (Workload.Row (k, Array.copy mine.(k - lo))));
      let rowk =
        match Orca.Rts.invoke await_row (Workload.Int_v k) with
        | Workload.Row (_, row) -> row
        | _ -> assert false
      in
      for i = 0 to hi - lo - 1 do
        let rowi = mine.(i) in
        let cik = rowi.(k) in
        for j = 0 to n - 1 do
          let via = cik + rowk.(j) in
          if via < rowi.(j) then rowi.(j) <- via
        done
      done;
      Thread.compute ((hi - lo) * n * p.cell_cost)
    done
  in
  let result () =
    Array.fold_left
      (fun acc (_, _, mine) ->
        Array.fold_left (fun a row -> Array.fold_left ( + ) a row) acc mine)
      0 blocks
  in
  (body, result)
