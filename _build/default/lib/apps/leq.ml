module Thread = Machine.Thread

type params = {
  n : int;
  seed : int;
  epsilon : float;
  cell_cost : Sim.Time.span;
}

let default_params =
  { n = 640; seed = 23; epsilon = 1e-8; cell_cost = Sim.Time.us_f 0.95 }

let test_params = { n = 24; seed = 23; epsilon = 1e-6; cell_cost = Sim.Time.ns 100 }

let system p = Workload.diag_dominant ~seed:p.seed ~n:p.n

(* One Jacobi update of rows [lo, hi): x'_i = (b_i - sum_{j<>i} a_ij x_j) / a_ii.
   Returns the max component change. *)
let jacobi_rows a b x x' ~lo ~hi =
  let n = Array.length b in
  let maxd = ref 0. in
  for i = lo to hi - 1 do
    let s = ref 0. in
    let row = a.(i) in
    for j = 0 to n - 1 do
      if j <> i then s := !s +. (row.(j) *. x.(j))
    done;
    let v = (b.(i) -. !s) /. row.(i) in
    x'.(i) <- v;
    let d = Float.abs (v -. x.(i)) in
    if d > !maxd then maxd := d
  done;
  !maxd

let checksum x =
  let acc = ref 0. in
  Array.iter (fun v -> acc := !acc +. v) x;
  int_of_float (!acc *. 1000.)

let run_sequential p =
  let a, b = system p in
  let n = p.n in
  let x = ref (Array.make n 0.) and x' = ref (Array.make n 0.) in
  let iters = ref 0 in
  let continue = ref true in
  while !continue do
    incr iters;
    let d = jacobi_rows a b !x !x' ~lo:0 ~hi:n in
    let tmp = !x in
    x := !x';
    x' := tmp;
    continue := d > p.epsilon
  done;
  (checksum !x, !iters)

let sequential p = fst (run_sequential p)
let iterations p = snd (run_sequential p)

(* Replicated board collecting each iteration's slices. *)
type board = {
  slices : (int, (int * float array) list ref) Hashtbl.t; (* iter -> (rank, slice) *)
}

let make dom p =
  let parts = Orca.Rts.size dom in
  let iters = iterations p in
  let a, b = system p in
  let n = p.n in
  let board =
    Orca.Rts.declare dom ~name:"leq.board" ~placement:Orca.Rts.Replicated
      ~init:(fun ~rank:_ -> { slices = Hashtbl.create 8 })
  in
  let slice_bytes = ((n + parts - 1) / parts * 8) + 8 in
  let add_slice =
    Orca.Rts.defop board ~name:"add" ~kind:`Write
      ~arg_size:(fun _ -> slice_bytes)
      (fun st arg ->
        (match arg with
         | Workload.Tagged (iter, Workload.Frow (rank, slice)) ->
           let cell =
             match Hashtbl.find_opt st.slices iter with
             | Some l -> l
             | None ->
               let l = ref [] in
               Hashtbl.add st.slices iter l;
               l
           in
           cell := (rank, slice) :: !cell
         | _ -> ());
        Sim.Payload.Empty)
  in
  let await_all =
    Orca.Rts.defop board ~name:"await" ~kind:`Read
      ~guard:(fun st arg ->
        match arg with
        | Workload.Int_v iter -> (
            match Hashtbl.find_opt st.slices iter with
            | Some l -> List.length !l = parts
            | None -> false)
        | _ -> false)
      ~res_size:(fun _ -> 8)
      (fun st arg ->
        match arg with
        | Workload.Int_v iter ->
          let l = Hashtbl.find st.slices iter in
          (* One process per rank consumes each iteration exactly once, so
             older slices can be dropped to bound replica memory. *)
          Hashtbl.remove st.slices (iter - 2);
          Workload.Slices !l
        | _ -> Sim.Payload.Empty)
  in
  let bodies_x = Array.init parts (fun _ -> Array.make n 0.) in
  let body ~rank =
    let lo, hi = Workload.block_range ~n ~parts ~rank in
    let x = bodies_x.(rank) in
    let x' = Array.make n 0. in
    for iter = 1 to iters do
      let d = jacobi_rows a b x x' ~lo ~hi in
      ignore d;
      Thread.compute ((hi - lo) * n * p.cell_cost);
      ignore
        (Orca.Rts.invoke add_slice
           (Workload.Tagged (iter, Workload.Frow (rank, Array.sub x' lo (hi - lo)))));
      (* Assemble the new x from everyone's slices, once they are all
         here. *)
      (match Orca.Rts.invoke await_all (Workload.Int_v iter) with
       | Workload.Slices l ->
         List.iter
           (fun (r, slice) ->
             let slo, _shi = Workload.block_range ~n ~parts ~rank:r in
             Array.blit slice 0 x slo (Array.length slice))
           l
       | _ -> assert false)
    done
  in
  let result () = checksum bodies_x.(0) in
  (body, result)
