type poll = {
  votes : (int, int ref * bool ref) Hashtbl.t; (* iter -> (count, any-changed) *)
}

type t = {
  parts : int;
  op_vote : poll Orca.Rts.opref;
  op_await : poll Orca.Rts.opref;
}

let slot st iter =
  match Hashtbl.find_opt st.votes iter with
  | Some s -> s
  | None ->
    let s = (ref 0, ref false) in
    Hashtbl.add st.votes iter s;
    s

let make dom ~name =
  let parts = Orca.Rts.size dom in
  let od =
    Orca.Rts.declare dom ~name ~placement:Orca.Rts.Replicated ~init:(fun ~rank:_ ->
        { votes = Hashtbl.create 8 })
  in
  let op_vote =
    Orca.Rts.defop od ~name:"vote" ~kind:`Write
      ~arg_size:(fun _ -> 8)
      (fun st arg ->
        (match arg with
         | Workload.Int2 (iter, changed) ->
           let count, any = slot st iter in
           incr count;
           if changed <> 0 then any := true
         | _ -> ());
        Sim.Payload.Empty)
  in
  let op_await =
    Orca.Rts.defop od ~name:"await" ~kind:`Read
      ~guard:(fun st arg ->
        match arg with
        | Workload.Int_v iter ->
          let count, _ = slot st iter in
          !count = parts
        | _ -> false)
      ~res_size:(fun _ -> 8)
      (fun st arg ->
        match arg with
        | Workload.Int_v iter ->
          let _, any = slot st iter in
          let result = !any in
          (* Each process consumes each iteration exactly once. *)
          Hashtbl.remove st.votes (iter - 2);
          Workload.Int_v (if result then 1 else 0)
        | _ -> Sim.Payload.Empty)
  in
  { parts; op_vote; op_await }

let vote t ~iter ~changed =
  ignore t.parts;
  ignore (Orca.Rts.invoke t.op_vote (Workload.Int2 (iter, if changed then 1 else 0)));
  match Orca.Rts.invoke t.op_await (Workload.Int_v iter) with
  | Workload.Int_v 1 -> true
  | _ -> false
