lib/apps/asp.mli: Orca Sim
