lib/apps/convergence.mli: Orca
