lib/apps/leq.ml: Array Float Hashtbl List Machine Orca Sim Workload
