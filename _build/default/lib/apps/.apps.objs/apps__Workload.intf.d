lib/apps/workload.mli: Sim
