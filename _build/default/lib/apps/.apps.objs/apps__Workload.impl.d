lib/apps/workload.ml: Array Sim
