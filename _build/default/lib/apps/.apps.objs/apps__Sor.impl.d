lib/apps/sor.ml: Array Convergence Exchange Float Machine Orca Sim Workload
