lib/apps/exchange.ml: Array Hashtbl Orca Printf Sim Workload
