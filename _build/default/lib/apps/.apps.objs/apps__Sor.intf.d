lib/apps/sor.mli: Orca Sim
