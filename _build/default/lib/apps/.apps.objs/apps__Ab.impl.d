lib/apps/ab.ml: List Machine Orca Sim Workload
