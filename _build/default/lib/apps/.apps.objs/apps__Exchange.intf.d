lib/apps/exchange.mli: Orca Sim
