lib/apps/tsp.ml: Array List Machine Orca Sim Workload
