lib/apps/ab.mli: Orca Sim
