lib/apps/rl.mli: Orca Sim
