lib/apps/tsp.mli: Orca Sim
