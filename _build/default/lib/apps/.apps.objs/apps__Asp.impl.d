lib/apps/asp.ml: Array Hashtbl Machine Orca Sim Workload
