lib/apps/rl.ml: Array Convergence Exchange Machine Orca Sim Workload
