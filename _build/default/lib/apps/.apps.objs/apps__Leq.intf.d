lib/apps/leq.mli: Orca Sim
