lib/apps/convergence.ml: Hashtbl Orca Sim Workload
