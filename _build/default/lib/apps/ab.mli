(** Alpha-Beta game-tree search over a synthetic tree.

    Root moves are jobs handed out by a central queue (owned by rank 0);
    the best root score so far is a replicated object read locally at job
    start and improved by broadcast.  Coarse-grained and light on
    communication — the paper's poor speedups come from {e search
    overhead}: parallel workers start without the alpha bounds sequential
    search would already have, and genuinely expand more nodes here. *)

type params = {
  branching : int;
  depth : int;
  seed : int;
  node_cost : Sim.Time.span;
}

val default_params : params
val test_params : params
val make : Orca.Rts.domain -> params -> (rank:int -> unit) * (unit -> int)

val sequential : params -> int
(** Host-side sequential alpha-beta root value. *)

val sequential_nodes : params -> int
(** Nodes the sequential search expands (for search-overhead reporting). *)
