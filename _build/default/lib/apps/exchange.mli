(** Boundary exchange between neighbouring ranks via shared buffer
    objects — the RL/SOR communication pattern the paper highlights.

    Each rank owns two buffer objects, one per direction; a neighbour
    fetches from them with a remote {e guarded} BufGet that blocks until
    the owner's BufPut of the wanted iteration has arrived.  On the
    kernel-space implementation every such blocked get costs the extra
    context switch of Amoeba's same-thread-reply restriction. *)

type t

val create : Orca.Rts.domain -> name:string -> row_bytes:int -> t

val put : t -> rank:int -> dir:[ `Up | `Down ] -> iter:int -> Sim.Payload.t -> unit
(** Deposit this rank's boundary row for the neighbour in direction
    [dir].  Local operation on the calling rank's own buffer. *)

val get : t -> owner:int -> dir:[ `Up | `Down ] -> iter:int -> Sim.Payload.t
(** Fetch [owner]'s deposited row (its [dir]-direction buffer) for
    iteration [iter]; blocks until it is there.  Remote when [owner] is
    another rank. *)
