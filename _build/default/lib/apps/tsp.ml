module Thread = Machine.Thread

type params = {
  n_cities : int;
  job_depth : int;
  seed : int;
  node_cost : Sim.Time.span;
}

let default_params =
  { n_cities = 15; job_depth = 3; seed = 42; node_cost = Sim.Time.us 40 }

let test_params = { n_cities = 9; job_depth = 2; seed = 42; node_cost = Sim.Time.us 10 }

let jobs_of p =
  let rec go n k = if k = 0 then 1 else n * go (n - 1) (k - 1) in
  go (p.n_cities - 1) p.job_depth

(* Decode job index [k] into the [job_depth] cities visited after city 0.
   Digit d picks among the cities not yet used. *)
let decode_job p k =
  let n = p.n_cities in
  let avail = Array.init (n - 1) (fun i -> i + 1) in
  let navail = ref (n - 1) in
  let k = ref k in
  let radix = ref 1 in
  for d = 0 to p.job_depth - 1 do
    radix := !radix * (n - 1 - d)
  done;
  let cities = ref [] in
  for d = 0 to p.job_depth - 1 do
    radix := !radix / (n - 1 - d);
    let idx = !k / !radix in
    k := !k mod !radix;
    let city = avail.(idx) in
    for i = idx to !navail - 2 do
      avail.(i) <- avail.(i + 1)
    done;
    decr navail;
    cities := city :: !cities
  done;
  List.rev !cities

let greedy_tour dist n =
  let visited = Array.make n false in
  visited.(0) <- true;
  let total = ref 0 and current = ref 0 in
  for _ = 1 to n - 1 do
    let best = ref (-1) and bestd = ref max_int in
    for c = 0 to n - 1 do
      if (not visited.(c)) && dist.(!current).(c) < !bestd then begin
        best := c;
        bestd := dist.(!current).(c)
      end
    done;
    visited.(!best) <- true;
    total := !total + !bestd;
    current := !best
  done;
  !total + dist.(!current).(0)

(* Depth-first branch and bound from a prefix; [best] is the pruning bound
   (updated in place when improved); counts expanded nodes.  [sync] is
   called every [sync_interval] nodes so a parallel worker can exchange
   bounds mid-job — the source of the paper's superlinear speedups. *)
let sync_interval = 2048

let expand ?(sync = fun () -> ()) dist n prefix best nodes =
  let visited = Array.make n false in
  let rec go current len depth =
    incr nodes;
    if !nodes land (sync_interval - 1) = 0 then sync ();
    if len >= !best then ()
    else if depth = n then begin
      let total = len + dist.(current).(0) in
      if total < !best then best := total
    end
    else
      for c = 0 to n - 1 do
        if not visited.(c) then begin
          visited.(c) <- true;
          go c (len + dist.(current).(c)) (depth + 1);
          visited.(c) <- false
        end
      done
  in
  match prefix with
  | [] -> invalid_arg "Tsp.expand: empty prefix"
  | first :: rest ->
    assert (first = 0);
    visited.(0) <- true;
    let current = ref 0 and len = ref 0 in
    List.iter
      (fun c ->
        visited.(c) <- true;
        len := !len + dist.(!current).(c);
        current := c)
      rest;
    go !current !len (1 + List.length rest)

let sequential_pair p =
  let dist = Workload.dist_matrix ~seed:p.seed ~n:p.n_cities ~lo:1 ~hi:100 in
  let best = ref (greedy_tour dist p.n_cities) in
  let nodes = ref 0 in
  for k = 0 to jobs_of p - 1 do
    expand dist p.n_cities (0 :: decode_job p k) best nodes
  done;
  (!best, !nodes)

let sequential p = fst (sequential_pair p)
let sequential_nodes p = snd (sequential_pair p)

let make dom p =
  let dist = Workload.dist_matrix ~seed:p.seed ~n:p.n_cities ~lo:1 ~hi:100 in
  let initial = greedy_tour dist p.n_cities in
  let n_jobs = jobs_of p in
  (* Central job queue, owned by rank 0: a counter handing out job ids. *)
  let queue =
    Orca.Rts.declare dom ~name:"tsp.queue" ~placement:(Orca.Rts.Owned 0)
      ~init:(fun ~rank:_ -> ref 0)
  in
  let next_job =
    Orca.Rts.defop queue ~name:"next" ~kind:`Write
      ~arg_size:(fun _ -> 4)
      ~res_size:(fun _ -> 8)
      (fun st _ ->
        let k = !st in
        st := k + 1;
        Workload.Int_v (if k < n_jobs then k else -1))
  in
  (* Replicated global bound: read locally, improved by broadcast. *)
  let bound =
    Orca.Rts.declare dom ~name:"tsp.bound" ~placement:Orca.Rts.Replicated
      ~init:(fun ~rank:_ -> ref initial)
  in
  let read_bound =
    Orca.Rts.defop bound ~name:"read" ~kind:`Read
      ~res_size:(fun _ -> 8)
      (fun st _ -> Workload.Int_v !st)
  in
  let update_min =
    Orca.Rts.defop bound ~name:"min" ~kind:`Write
      ~arg_size:(fun _ -> 8)
      (fun st arg ->
        (match arg with
         | Workload.Int_v v -> if v < !st then st := v
         | _ -> ());
        Sim.Payload.Empty)
  in
  let body ~rank =
    ignore rank;
    let running = ref true in
    while !running do
      match Orca.Rts.invoke next_job Sim.Payload.Empty with
      | Workload.Int_v k when k >= 0 ->
        let local_best =
          match Orca.Rts.invoke read_bound Sim.Payload.Empty with
          | Workload.Int_v v -> ref v
          | _ -> ref initial
        in
        let published = ref !local_best in
        let nodes = ref 0 in
        let charged = ref 0 in
        (* Exchange bounds mid-job: pick up other workers' improvements
           (a local read of the replicated object) and broadcast our own
           as soon as they appear.  The simulated clock advances with the
           node count at each exchange point. *)
        let sync () =
          Thread.compute ((!nodes - !charged) * p.node_cost);
          charged := !nodes;
          if !local_best < !published then begin
            ignore (Orca.Rts.invoke update_min (Workload.Int_v !local_best));
            published := !local_best
          end;
          (match Orca.Rts.invoke read_bound Sim.Payload.Empty with
           | Workload.Int_v v -> if v < !local_best then local_best := v
           | _ -> ())
        in
        expand ~sync dist p.n_cities (0 :: decode_job p k) local_best nodes;
        Thread.compute ((!nodes - !charged) * p.node_cost);
        if !local_best < !published then
          ignore (Orca.Rts.invoke update_min (Workload.Int_v !local_best))
      | _ -> running := false
    done
  in
  let result () = !(Orca.Rts.peek bound ~rank:0) in
  (body, result)
