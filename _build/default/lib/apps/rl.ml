module Thread = Machine.Thread

type params = {
  h : int;
  w : int;
  seed : int;
  density_pct : int;
  scan_cost : Sim.Time.span;  (** per cell visited *)
  change_cost : Sim.Time.span;  (** extra work per label actually updated *)
  check_every : int;  (** iterations between convergence votes *)
}

let default_params =
  { h = 256; w = 512; seed = 11; density_pct = 65; scan_cost = Sim.Time.us 2;
    change_cost = Sim.Time.us 30; check_every = 8 }

let test_params =
  { h = 16; w = 16; seed = 11; density_pct = 60; scan_cost = Sim.Time.ns 200;
    change_cost = Sim.Time.ns 200; check_every = 2 }

let background = max_int

let initial_labels p =
  let pixels = Workload.binary_grid ~seed:p.seed ~h:p.h ~w:p.w ~density_pct:p.density_pct in
  Array.init p.h (fun i ->
      Array.init p.w (fun j -> if pixels.(i).(j) then (i * p.w) + j else background))

(* One synchronous update of [rows], using [above] and [below] as ghost
   rows (empty array = image border).  Returns the number of labels that
   changed — the data-dependent part of the work. *)
let update_block ~w rows ~above ~below =
  let h = Array.length rows in
  let old = Array.map Array.copy rows in
  let get i j =
    if j < 0 || j >= w then background
    else if i = -1 then if Array.length above = 0 then background else above.(j)
    else if i = h then if Array.length below = 0 then background else below.(j)
    else old.(i).(j)
  in
  let changed = ref 0 in
  for i = 0 to h - 1 do
    for j = 0 to w - 1 do
      if old.(i).(j) <> background then begin
        let v =
          min
            (min (get (i - 1) j) (get (i + 1) j))
            (min (get i (j - 1)) (min (get i (j + 1)) old.(i).(j)))
        in
        if v < rows.(i).(j) then begin
          rows.(i).(j) <- v;
          incr changed
        end
      end
    done
  done;
  !changed

let checksum labels =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun a v -> if v = background then a else a + (v mod 100003)) acc row)
    0 labels

let run_sequential p =
  let labels = initial_labels p in
  let iters = ref 0 in
  let changes = ref 0 in
  let since_vote = ref 0 in
  let continue = ref true in
  while !continue do
    incr iters;
    let c = update_block ~w:p.w labels ~above:[||] ~below:[||] in
    changes := !changes + c;
    since_vote := !since_vote + c;
    if !iters mod p.check_every = 0 then begin
      continue := !since_vote > 0;
      since_vote := 0
    end
  done;
  (checksum labels, !iters, !changes)

let sequential p = match run_sequential p with c, _, _ -> c
let iterations p = match run_sequential p with _, i, _ -> i
let total_changes p = match run_sequential p with _, _, c -> c

let make dom p =
  let parts = Orca.Rts.size dom in
  let full = initial_labels p in
  let blocks =
    Array.init parts (fun rank ->
        let lo, hi = Workload.block_range ~n:p.h ~parts ~rank in
        (lo, hi, Array.init (hi - lo) (fun i -> full.(lo + i))))
  in
  let ex = Exchange.create dom ~name:"rl" ~row_bytes:(4 * p.w) in
  let conv = Convergence.make dom ~name:"rl.conv" in
  let body ~rank =
    let _lo, _hi, mine = blocks.(rank) in
    let h = Array.length mine in
    let iter = ref 0 in
    let continue_ = ref true in
    let changed_since_vote = ref 0 in
    while !continue_ do
      incr iter;
      let iter = !iter in
      (* Publish boundary rows for the neighbours, then fetch theirs:
         remote guarded BufGet operations. *)
      if rank > 0 then
        Exchange.put ex ~rank ~dir:`Up ~iter (Workload.Row (iter, Array.copy mine.(0)));
      if rank < parts - 1 then
        Exchange.put ex ~rank ~dir:`Down ~iter
          (Workload.Row (iter, Array.copy mine.(h - 1)));
      let above =
        if rank = 0 then [||]
        else
          match Exchange.get ex ~owner:(rank - 1) ~dir:`Down ~iter with
          | Workload.Row (_, row) -> row
          | _ -> [||]
      in
      let below =
        if rank = parts - 1 then [||]
        else
          match Exchange.get ex ~owner:(rank + 1) ~dir:`Up ~iter with
          | Workload.Row (_, row) -> row
          | _ -> [||]
      in
      let changed = update_block ~w:p.w mine ~above ~below in
      Thread.compute ((h * p.w * p.scan_cost) + (changed * p.change_cost));
      changed_since_vote := !changed_since_vote + changed;
      (* Orca-style distributed termination detection, every few
         iterations to bound its broadcast load. *)
      if iter mod p.check_every = 0 then begin
        continue_ := Convergence.vote conv ~iter ~changed:(!changed_since_vote > 0);
        changed_since_vote := 0
      end
    done
  in
  let result () =
    Array.fold_left (fun acc (_, _, mine) -> acc + checksum mine) 0 blocks
  in
  (body, result)
