(** Linear Equation Solver: Jacobi iteration on a diagonally dominant
    system, unknowns block-distributed.

    Every iteration each process broadcasts its slice of the solution
    vector and waits for everyone else's — an all-to-all of totally-
    ordered group messages.  This is the application that overloads the
    user-space sequencer at 32 processors in the paper (the machine also
    runs an Orca process), and the one the dedicated-sequencer variant
    rescues.  Going from 16 to 32 processors doubles the message count and
    halves the message size, so runtimes rise — as in the paper. *)

type params = {
  n : int;
  seed : int;
  epsilon : float;
  cell_cost : Sim.Time.span;  (** CPU time per multiply-add *)
}

val default_params : params
val test_params : params

val iterations : params -> int

val make : Orca.Rts.domain -> params -> (rank:int -> unit) * (unit -> int)
(** [result ()] is a rounded checksum of the solution vector. *)

val sequential : params -> int
