(** Distributed termination detection, Orca style: a replicated poll
    object.  Every process broadcasts a per-iteration "did my block
    change?" vote and waits (guarded local read) until all votes for the
    iteration are in; the iteration's OR decides termination.

    This is how the real Orca applications detect convergence, and its one
    broadcast per process per iteration is a large part of the Ethernet
    load that flattens RL/SOR speedups in the paper. *)

type t

val make : Orca.Rts.domain -> name:string -> t

val vote : t -> iter:int -> changed:bool -> bool
(** Cast this process's vote for [iter]; blocks until every process has
    voted, then returns whether anyone reported a change. *)
