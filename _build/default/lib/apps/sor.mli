(** Successive Overrelaxation: red/black Gauss-Seidel with overrelaxation
    on a 2-D grid, rows block-distributed.

    Two half-sweeps per iteration, each preceded by a boundary-row
    exchange through guarded buffer objects — the finest-grained of the
    six applications, saturating the Ethernet at large processor counts
    exactly as the paper reports.  The iteration count is the input's real
    convergence count, precomputed sequentially. *)

type params = {
  h : int;
  w : int;
  seed : int;
  epsilon : float;
  omega : float;
  cell_cost : Sim.Time.span;
}

val default_params : params
val test_params : params

val iterations : params -> int

val make : Orca.Rts.domain -> params -> (rank:int -> unit) * (unit -> int)
(** [result ()] is a rounded checksum of the converged grid. *)

val sequential : params -> int
