(** Region Labelling: iterative connected-component labelling of a binary
    image, rows block-distributed.

    Each iteration every rank updates its block (minimum label over the
    4-neighbourhood) and exchanges boundary rows with its neighbours
    through guarded buffer objects — many small remote guarded operations,
    the pattern on which the paper's user-space implementation beats the
    kernel-space one.  The iteration count is the real convergence count
    of the input, precomputed sequentially. *)

type params = {
  h : int;
  w : int;
  seed : int;
  density_pct : int;
  scan_cost : Sim.Time.span;  (** per cell visited *)
  change_cost : Sim.Time.span;  (** extra work per label actually updated *)
  check_every : int;  (** iterations between convergence votes *)
}

val default_params : params
val test_params : params

val iterations : params -> int
(** Iterations until the labelling converges (host-side run). *)

val total_changes : params -> int
(** Total label updates over the whole run (calibration aid). *)

val make : Orca.Rts.domain -> params -> (rank:int -> unit) * (unit -> int)
(** [result ()] is the sum of final labels (a checksum). *)

val sequential : params -> int
