(** Travelling Salesman Problem: replicated branch-and-bound.

    A central job queue (owned by rank 0) hands out fixed-depth prefix
    tours; the best tour length lives in a replicated object that workers
    read locally for pruning and update by broadcast when they improve it.
    The paper's run used 2184 jobs; with [job_depth] 3 that corresponds to
    15 cities ((n-1)(n-2)(n-3) prefixes).

    The search really executes, so the parallel runs explore the tree in a
    different order than the sequential one — the source of the paper's
    superlinear speedups. *)

type params = {
  n_cities : int;
  job_depth : int;
  seed : int;
  node_cost : Sim.Time.span;  (** CPU time per expanded search node *)
}

val default_params : params
(** 15 cities (2184 jobs), calibrated to the paper's single-processor
    runtime.  Workers exchange bounds every couple of thousand nodes, so
    parallel runs can prune harder than the sequential one — the paper's
    superlinear speedups. *)

val test_params : params

val jobs_of : params -> int
(** Number of jobs the parameters generate. *)

val make : Orca.Rts.domain -> params -> (rank:int -> unit) * (unit -> int)
(** [make dom p] is [(body, result)]: run [body] on every rank, then
    [result ()] is the optimal tour length found. *)

val sequential : params -> int
(** Host-side sequential solution, for validating the parallel result. *)

val sequential_nodes : params -> int
(** Nodes the sequential search expands (calibration aid). *)
