type ops = {
  o_put : unit Orca.Rts.opref;
  o_get : unit Orca.Rts.opref;
}

(* One buffer object per (rank, direction), owned by the producing rank;
   state is a table iteration -> payload, consumed once. *)
type t = {
  up : ops array;
  down : ops array;
}

let make_buffer dom ~name ~owner ~row_bytes =
  let slots : (int, Sim.Payload.t) Hashtbl.t = Hashtbl.create 8 in
  let od =
    Orca.Rts.declare dom ~name ~placement:(Orca.Rts.Owned owner) ~init:(fun ~rank:_ -> ())
  in
  let o_put =
    Orca.Rts.defop od ~name:"put" ~kind:`Write
      ~arg_size:(fun _ -> row_bytes + 8)
      (fun () arg ->
        (match arg with
         | Workload.Tagged (iter, payload) -> Hashtbl.replace slots iter payload
         | _ -> ());
        Sim.Payload.Empty)
  in
  let o_get =
    Orca.Rts.defop od ~name:"get" ~kind:`Write
      ~guard:(fun () arg ->
        match arg with Workload.Int_v iter -> Hashtbl.mem slots iter | _ -> false)
      ~arg_size:(fun _ -> 8)
      ~res_size:(fun _ -> row_bytes)
      (fun () arg ->
        match arg with
        | Workload.Int_v iter ->
          let payload = Hashtbl.find slots iter in
          Hashtbl.remove slots iter;
          payload
        | _ -> Sim.Payload.Empty)
  in
  { o_put; o_get }

let create dom ~name ~row_bytes =
  let parts = Orca.Rts.size dom in
  {
    up =
      Array.init parts (fun r ->
          make_buffer dom ~name:(Printf.sprintf "%s.up%d" name r) ~owner:r ~row_bytes);
    down =
      Array.init parts (fun r ->
          make_buffer dom ~name:(Printf.sprintf "%s.down%d" name r) ~owner:r ~row_bytes);
  }

let bufs t dir = match dir with `Up -> t.up | `Down -> t.down

let put t ~rank ~dir ~iter payload =
  ignore (Orca.Rts.invoke (bufs t dir).(rank).o_put (Workload.Tagged (iter, payload)))

let get t ~owner ~dir ~iter =
  Orca.Rts.invoke (bufs t dir).(owner).o_get (Workload.Int_v iter)
