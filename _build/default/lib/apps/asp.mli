(** All-Pairs Shortest Paths (Floyd-Warshall), rows block-distributed.

    At iteration [k] the owner of row [k] broadcasts it through a
    replicated row-board object (a totally-ordered group message per
    iteration — the paper's 768 messages of 3200 bytes); every process
    waits for the pivot row with a guarded local operation and updates its
    own rows.  The matrix computation really executes. *)

type params = {
  n : int;  (** vertices; one broadcast of [4n] bytes per iteration *)
  seed : int;
  cell_cost : Sim.Time.span;  (** CPU time per min-plus cell update *)
}

val default_params : params
(** n = 768, as the paper's message count and size imply. *)

val test_params : params

val make : Orca.Rts.domain -> params -> (rank:int -> unit) * (unit -> int)
(** [result ()] is the sum of all shortest distances (a checksum). *)

val sequential : params -> int
