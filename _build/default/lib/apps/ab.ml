module Thread = Machine.Thread

type params = {
  branching : int;
  depth : int;
  seed : int;
  node_cost : Sim.Time.span;
}

let inf = 1 lsl 40

let default_params = { branching = 20; depth = 6; seed = 3; node_cost = Sim.Time.us 350 }
let test_params = { branching = 4; depth = 3; seed = 3; node_cost = Sim.Time.us 5 }

(* Leaf evaluation: a hash of the root-to-leaf path, deterministic and
   cheap, standing in for a position evaluator. *)
let leaf_value p path =
  let h = ref (0x9E3779B9 + p.seed) in
  List.iter (fun m -> h := (!h * 0x01000193) lxor m) path;
  (!h land 0xFFFF) - 0x8000

(* Negamax alpha-beta on the synthetic tree; counts expanded nodes. *)
let rec search p path depth alpha beta nodes =
  incr nodes;
  if depth = 0 then leaf_value p path
  else begin
    let alpha = ref alpha in
    let best = ref (- inf) in
    let m = ref 0 in
    while !m < p.branching && !best < beta do
      let v = - search p (!m :: path) (depth - 1) (- beta) (- !alpha) nodes in
      if v > !best then best := v;
      if v > !alpha then alpha := v;
      incr m
    done;
    !best
  end

let sequential_pair p =
  let nodes = ref 0 in
  let alpha = ref (- inf) in
  for m = 0 to p.branching - 1 do
    let v = - search p [ m ] (p.depth - 1) (- inf) (- !alpha) nodes in
    if v > !alpha then alpha := v
  done;
  (!alpha, !nodes)

let sequential p = fst (sequential_pair p)
let sequential_nodes p = snd (sequential_pair p)

let make dom p =
  let queue =
    Orca.Rts.declare dom ~name:"ab.queue" ~placement:(Orca.Rts.Owned 0)
      ~init:(fun ~rank:_ -> ref 0)
  in
  let next_move =
    Orca.Rts.defop queue ~name:"next" ~kind:`Write
      ~arg_size:(fun _ -> 4)
      ~res_size:(fun _ -> 8)
      (fun st _ ->
        let k = !st in
        st := k + 1;
        Workload.Int_v (if k < p.branching then k else -1))
  in
  let best =
    Orca.Rts.declare dom ~name:"ab.best" ~placement:Orca.Rts.Replicated
      ~init:(fun ~rank:_ -> ref (- inf))
  in
  let read_best =
    Orca.Rts.defop best ~name:"read" ~kind:`Read
      ~res_size:(fun _ -> 8)
      (fun st _ -> Workload.Int_v !st)
  in
  let update_best =
    Orca.Rts.defop best ~name:"max" ~kind:`Write
      ~arg_size:(fun _ -> 8)
      (fun st arg ->
        (match arg with
         | Workload.Int_v v -> if v > !st then st := v
         | _ -> ());
        Sim.Payload.Empty)
  in
  let body ~rank =
    ignore rank;
    let running = ref true in
    while !running do
      match Orca.Rts.invoke next_move Sim.Payload.Empty with
      | Workload.Int_v m when m >= 0 ->
        let alpha =
          match Orca.Rts.invoke read_best Sim.Payload.Empty with
          | Workload.Int_v v -> v
          | _ -> - inf
        in
        let nodes = ref 0 in
        let v = - search p [ m ] (p.depth - 1) (- inf) (- alpha) nodes in
        Thread.compute (!nodes * p.node_cost);
        if v > alpha then ignore (Orca.Rts.invoke update_best (Workload.Int_v v))
      | _ -> running := false
    done
  in
  let result () = !(Orca.Rts.peek best ~rank:0) in
  (body, result)
