module Thread = Machine.Thread

type params = {
  h : int;
  w : int;
  seed : int;
  epsilon : float;
  omega : float;
  cell_cost : Sim.Time.span;
}

let default_params =
  { h = 128; w = 128; seed = 5; epsilon = 0.05; omega = 1.4; cell_cost = Sim.Time.us_f 16.5 }

let test_params =
  { h = 12; w = 12; seed = 5; epsilon = 0.01; omega = 1.4; cell_cost = Sim.Time.ns 100 }

(* Fixed hot top edge, cold elsewhere; interior starts at random noise so
   different seeds give different problems. *)
let initial_grid p =
  let rng = Sim.Rng.create ~seed:p.seed in
  Array.init p.h (fun i ->
      Array.init p.w (fun j ->
          if i = 0 then 100.
          else if i = p.h - 1 || j = 0 || j = p.w - 1 then 0.
          else Sim.Rng.float rng 1.0))

(* One red/black half-sweep on rows [lo, hi) of a block; ghost rows supply
   the missing neighbours.  Returns the max residual. *)
let half_sweep ~p ~colour ~global_lo rows ~above ~below =
  let h = Array.length rows and w = p.w in
  let get i j =
    if i = -1 then if Array.length above = 0 then nan else above.(j)
    else if i = h then if Array.length below = 0 then nan else below.(j)
    else rows.(i).(j)
  in
  let maxdelta = ref 0. in
  for i = 0 to h - 1 do
    let gi = global_lo + i in
    if gi > 0 && gi < p.h - 1 then
      for j = 1 to w - 2 do
        if (gi + j) land 1 = colour then begin
          let old = rows.(i).(j) in
          let nbr = get (i - 1) j +. get (i + 1) j +. get i (j - 1) +. get i (j + 1) in
          let v = old +. (p.omega *. ((nbr /. 4.) -. old)) in
          rows.(i).(j) <- v;
          let d = Float.abs (v -. old) in
          if d > !maxdelta then maxdelta := d
        end
      done
  done;
  !maxdelta

let checksum grid =
  let acc = ref 0. in
  Array.iter (fun row -> Array.iter (fun v -> acc := !acc +. v) row) grid;
  int_of_float (!acc *. 10.)

(* Convergence is checked every [vote_interval] iterations (the parallel
   version votes at that granularity, and the sequential reference must
   follow the same rule to converge after the same iteration count). *)
let vote_interval = 4

let run_sequential p =
  let grid = initial_grid p in
  let iters = ref 0 in
  let unconverged = ref false in
  let continue = ref true in
  while !continue do
    incr iters;
    let d0 = half_sweep ~p ~colour:0 ~global_lo:0 grid ~above:[||] ~below:[||] in
    let d1 = half_sweep ~p ~colour:1 ~global_lo:0 grid ~above:[||] ~below:[||] in
    if Float.max d0 d1 > p.epsilon then unconverged := true;
    if !iters mod vote_interval = 0 then begin
      continue := !unconverged;
      unconverged := false
    end
  done;
  (checksum grid, !iters)

let sequential p = fst (run_sequential p)
let iterations p = snd (run_sequential p)

let make dom p =
  let parts = Orca.Rts.size dom in
  let full = initial_grid p in
  let blocks =
    Array.init parts (fun rank ->
        let lo, hi = Workload.block_range ~n:p.h ~parts ~rank in
        (lo, hi, Array.init (hi - lo) (fun i -> full.(lo + i))))
  in
  let ex = Exchange.create dom ~name:"sor" ~row_bytes:(8 * p.w) in
  let conv = Convergence.make dom ~name:"sor.conv" in
  let body ~rank =
    let lo, _hi, mine = blocks.(rank) in
    let h = Array.length mine in
    let fetch_ghosts phase =
      let iter_tag = phase in
      if rank > 0 then
        Exchange.put ex ~rank ~dir:`Up ~iter:iter_tag
          (Workload.Frow (iter_tag, Array.copy mine.(0)));
      if rank < parts - 1 then
        Exchange.put ex ~rank ~dir:`Down ~iter:iter_tag
          (Workload.Frow (iter_tag, Array.copy mine.(h - 1)));
      let above =
        if rank = 0 then [||]
        else
          match Exchange.get ex ~owner:(rank - 1) ~dir:`Down ~iter:iter_tag with
          | Workload.Frow (_, row) -> row
          | _ -> [||]
      in
      let below =
        if rank = parts - 1 then [||]
        else
          match Exchange.get ex ~owner:(rank + 1) ~dir:`Up ~iter:iter_tag with
          | Workload.Frow (_, row) -> row
          | _ -> [||]
      in
      (above, below)
    in
    let iter = ref 0 in
    let continue_ = ref true in
    let unconverged_since_vote = ref false in
    while !continue_ do
      incr iter;
      let iter = !iter in
      (* Red half-sweep, then black: each needs fresh boundary rows. *)
      let above, below = fetch_ghosts (2 * iter) in
      let d0 = half_sweep ~p ~colour:0 ~global_lo:lo mine ~above ~below in
      Thread.compute (h * p.w * p.cell_cost / 2);
      let above, below = fetch_ghosts ((2 * iter) + 1) in
      let d1 = half_sweep ~p ~colour:1 ~global_lo:lo mine ~above ~below in
      Thread.compute (h * p.w * p.cell_cost / 2);
      if Float.max d0 d1 > p.epsilon then unconverged_since_vote := true;
      if iter mod vote_interval = 0 then begin
        continue_ := Convergence.vote conv ~iter ~changed:!unconverged_since_vote;
        unconverged_since_vote := false
      end
    done
  in
  let result () =
    (* Sum floats across blocks in grid order and round once, exactly as
       the sequential checksum does. *)
    let acc = ref 0. in
    Array.iter
      (fun (_, _, mine) ->
        Array.iter (fun row -> Array.iter (fun v -> acc := !acc +. v) row) mine)
      blocks;
    int_of_float (!acc *. 10.)
  in
  (body, result)
