lib/core/runner.mli: Cluster Format Lazy Orca
