lib/core/cluster.mli: Flip Machine Net Orca Sim
