lib/core/params.mli: Amoeba Flip Machine Net Panda Sim
