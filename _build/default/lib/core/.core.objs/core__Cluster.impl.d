lib/core/cluster.ml: Array Flip Machine Net Orca Params Printf Sim
