lib/core/runner.ml: Apps Array Cluster Float Format Lazy List Machine Net Orca Printf Sim
