lib/core/params.ml: Amoeba Flip Machine Net Panda Sim
