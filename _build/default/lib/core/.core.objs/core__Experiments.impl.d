lib/core/experiments.ml: Amoeba Array Cluster Flip Fun List Machine Net Orca Panda Params Printf Runner Sim
