lib/core/experiments.mli: Amoeba Flip Machine Net Panda Runner
