lib/flip/reassembly.ml: Address Array Fragment Hashtbl
