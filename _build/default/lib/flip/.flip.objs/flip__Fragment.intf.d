lib/flip/fragment.mli: Address Format Sim
