lib/flip/address.mli: Format
