lib/flip/fragment.ml: Address Format List Sim
