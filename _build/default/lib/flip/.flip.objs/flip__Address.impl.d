lib/flip/address.ml: Format Hashtbl Stdlib
