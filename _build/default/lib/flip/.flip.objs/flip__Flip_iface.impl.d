lib/flip/flip_iface.ml: Address Fragment Hashtbl List Machine Net Sim
