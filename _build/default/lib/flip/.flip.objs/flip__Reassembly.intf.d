lib/flip/reassembly.mli: Address Fragment Sim
