lib/flip/flip_iface.mli: Address Fragment Machine Net Sim
