type t = Point of int | Group of int

let point n = Point n
let group n = Group n

let counter = ref 0

let fresh_point () =
  incr counter;
  Point !counter

let fresh_group () =
  incr counter;
  Group !counter

let is_group = function Group _ -> true | Point _ -> false
let equal a b = a = b
let compare = Stdlib.compare
let hash = Hashtbl.hash

let pp fmt = function
  | Point n -> Format.fprintf fmt "pt:%d" n
  | Group n -> Format.fprintf fmt "grp:%d" n
