type t = {
  src : Address.t;
  dst : Address.t;
  msg_id : int;
  index : int;
  count : int;
  bytes : int;
  total : int;
  payload : Sim.Payload.t;
}

let pp fmt t =
  Format.fprintf fmt "frag[%a->%a #%d %d/%d %dB of %dB]" Address.pp t.src Address.pp
    t.dst t.msg_id (t.index + 1) t.count t.bytes t.total

let split ~src ~dst ~msg_id ~mtu ~size payload =
  assert (mtu > 0 && size >= 0);
  let count = max 1 ((size + mtu - 1) / mtu) in
  List.init count (fun index ->
      let bytes =
        if index = count - 1 then size - (index * mtu)
        else mtu
      in
      { src; dst; msg_id; index; count; bytes; total = size; payload })
