type key = Address.t * int

type slot = {
  count : int;
  mutable got : bool array;
  mutable missing : int;
}

type t = {
  slots : (key, slot) Hashtbl.t;
  (* Recently completed messages, to swallow late duplicate fragments. *)
  completed : (key, unit) Hashtbl.t;
  mutable dups : int;
}

let create () = { slots = Hashtbl.create 32; completed = Hashtbl.create 32; dups = 0 }

let add t (frag : Fragment.t) =
  let key = (frag.Fragment.src, frag.Fragment.msg_id) in
  if Hashtbl.mem t.completed key then begin
    t.dups <- t.dups + 1;
    (* Surface retransmissions of completed messages (once per copy, on
       the first fragment) so protocols can answer them. *)
    if frag.Fragment.index = 0 then
      Some (frag.Fragment.src, frag.Fragment.total, frag.Fragment.payload)
    else None
  end
  else begin
    let slot =
      match Hashtbl.find_opt t.slots key with
      | Some s -> s
      | None ->
        let s =
          {
            count = frag.Fragment.count;
            got = Array.make frag.Fragment.count false;
            missing = frag.Fragment.count;
          }
        in
        Hashtbl.add t.slots key s;
        s
    in
    assert (slot.count = frag.Fragment.count);
    if slot.got.(frag.Fragment.index) then begin
      t.dups <- t.dups + 1;
      None
    end
    else begin
      slot.got.(frag.Fragment.index) <- true;
      slot.missing <- slot.missing - 1;
      if slot.missing = 0 then begin
        Hashtbl.remove t.slots key;
        (* Bound the duplicate-suppression memory; a duplicate arriving
           after 64k completed messages would be re-assembled as a fresh
           single-fragment message, which upper layers discard by their own
           sequence numbers anyway. *)
        if Hashtbl.length t.completed > 65_536 then Hashtbl.reset t.completed;
        Hashtbl.replace t.completed key ();
        Some (frag.Fragment.src, frag.Fragment.total, frag.Fragment.payload)
      end
      else None
    end
  end

let pending t = Hashtbl.length t.slots
let purge t = Hashtbl.reset t.slots
let duplicates t = t.dups
