(** FLIP message fragments.

    FLIP fragments a message into maximum-length Ethernet packets; the
    receiving side reassembles (in the kernel for Amoeba's own protocols, in
    the user-space daemon for Panda).  A fragment carries byte counts for
    cost accounting plus the whole message's structural payload, delivered
    to the consumer once reassembly completes. *)

type t = {
  src : Address.t;
  dst : Address.t;
  msg_id : int;  (** unique per sending FLIP instance *)
  index : int;  (** 0-based fragment number *)
  count : int;  (** total fragments of the message *)
  bytes : int;  (** payload bytes in this fragment (FLIP header excluded) *)
  total : int;  (** payload bytes of the whole message *)
  payload : Sim.Payload.t;  (** the whole message's content *)
}

val pp : Format.formatter -> t -> unit

val split :
  src:Address.t ->
  dst:Address.t ->
  msg_id:int ->
  mtu:int ->
  size:int ->
  Sim.Payload.t ->
  t list
(** Cuts a [size]-byte message into fragments of at most [mtu] payload
    bytes.  A zero-byte message still produces one fragment. *)
