(** FLIP addresses.

    FLIP addresses identify processes (endpoints), not machines: a message
    is sent to an address and FLIP locates the machine currently hosting it
    (location transparency).  Group addresses name multicast groups that any
    number of endpoints may register. *)

type t =
  | Point of int  (** one endpoint *)
  | Group of int  (** a multicast group *)

val point : int -> t
val group : int -> t

val fresh_point : unit -> t
(** A globally unique point address. *)

val fresh_group : unit -> t

val is_group : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
