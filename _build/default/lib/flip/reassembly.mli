(** Fragment reassembly, usable both by kernel protocols and by Panda's
    user-space receive daemon.

    Tolerates out-of-order arrival and duplicate fragments (retransmission
    makes duplicates normal).  Partially assembled messages can be purged by
    age to bound memory, mirroring the real stacks' reassembly timers. *)

type t

val create : unit -> t

val add : t -> Fragment.t -> (Address.t * int * Sim.Payload.t) option
(** [add t frag] is [Some (src, total_bytes, payload)] when the message's
    last missing fragment arrives — and again for each later {e first}
    fragment of an already-completed message, so that protocol layers see
    retransmissions of messages they have processed (e.g. to replay a lost
    reply).  Consumers must deduplicate by their own protocol identifiers.
    Duplicate non-first fragments return [None]. *)

val pending : t -> int
(** Messages currently partially assembled. *)

val purge : t -> unit
(** Drops all partial messages (reassembly timeout). *)

val duplicates : t -> int
(** Duplicate fragments seen so far. *)
