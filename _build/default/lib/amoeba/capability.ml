(* 64-bit one-way mixing (splitmix finalizer), used for the port
   derivation and the rights check fields. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mix2 a b = mix (Int64.logxor (mix a) (Int64.mul b 0x9E3779B97F4A7C15L))

type private_port = int64
type port = int64

let create_port ~seed = mix (Int64.of_int (seed lxor 0x5eed))
let public priv = mix priv
let port_equal = Int64.equal
let pp_port fmt p = Format.fprintf fmt "port:%08Lx" (Int64.logand p 0xFFFFFFFFL)

type rights = int

let all_rights = 0xFF
let right_read = 0x01
let right_write = 0x02
let right_admin = 0x80

type t = {
  cap_port : port;
  cap_obj : int;
  cap_rights : rights;
  cap_check : int;
}

(* The check field for (object, rights) under a server secret.  The owner
   capability's check is keyed directly; restricted capabilities fold the
   removed-rights mask in one way. *)
let owner_check priv ~obj =
  Int64.to_int (Int64.logand (mix2 priv (Int64.of_int obj)) 0x3FFFFFFFFFFFFFFFL)

let restrict_check check ~rights =
  Int64.to_int
    (Int64.logand
       (mix2 (Int64.of_int check) (Int64.of_int rights))
       0x3FFFFFFFFFFFFFFFL)

let mint priv ~obj =
  {
    cap_port = public priv;
    cap_obj = obj;
    cap_rights = all_rights;
    cap_check = owner_check priv ~obj;
  }

let restrict cap ~rights =
  let rights = cap.cap_rights land rights in
  if rights = cap.cap_rights then cap
  else
    {
      cap with
      cap_rights = rights;
      cap_check = restrict_check cap.cap_check ~rights;
    }

let validate priv cap =
  if not (port_equal cap.cap_port (public priv)) then false
  else if cap.cap_rights = all_rights then
    cap.cap_check = owner_check priv ~obj:cap.cap_obj
  else
    (* A restricted capability must be derivable from the owner one. *)
    cap.cap_check
    = restrict_check (owner_check priv ~obj:cap.cap_obj) ~rights:cap.cap_rights

let has_rights cap r = cap.cap_rights land r = r

let pp fmt cap =
  Format.fprintf fmt "cap[%a/%d r=%02x]" pp_port cap.cap_port cap.cap_obj cap.cap_rights
