(** Amoeba ports, capabilities and rights.

    Amoeba names every service by a {e port} and every object by a
    {e capability} — (port, object number, rights, check field).  Servers
    listen on the private form of a port; clients address the public form,
    derived through a one-way function, so knowing where to send requests
    does not let you impersonate the server.  Rights are protected by the
    check field: the owner capability carries [F(check)]-style proof, and
    {!restrict} derives capabilities with fewer rights that cannot be
    upgraded back.

    The one-way function is a 64-bit mixing hash — collision-resistant
    enough for a simulation; the structure and the checking rules are the
    real ones. *)

type port
(** A public (put-)port: what clients use. *)

type private_port
(** A private (get-)port: what the owning server holds. *)

val create_port : seed:int -> private_port
(** Derives a fresh server port from entropy. *)

val public : private_port -> port
(** The one-way derivation F(private) = public. *)

val port_equal : port -> port -> bool
val pp_port : Format.formatter -> port -> unit

(** {1 Rights} *)

type rights = int
(** A bit mask; bit [i] set = operation class [i] permitted. *)

val all_rights : rights
val right_read : rights
val right_write : rights
val right_admin : rights

(** {1 Capabilities} *)

type t = {
  cap_port : port;
  cap_obj : int;
  cap_rights : rights;
  cap_check : int;
}

val mint : private_port -> obj:int -> t
(** The owner capability for an object: all rights.  Only the holder of
    the private port can mint (the check field is keyed by it). *)

val restrict : t -> rights:rights -> t
(** Derives a capability with [rights] masked down from an {e owner}
    capability; the result's check field proves the reduced rights.  As in
    real Amoeba, only the owner capability can be restricted offline —
    restricting an already-restricted capability yields one the server
    rejects. *)

val validate : private_port -> t -> bool
(** Server-side check that a presented capability is genuine and its
    rights mask matches its check field. *)

val has_rights : t -> rights -> bool
(** [has_rights cap r]: all bits of [r] present in the capability. *)

val pp : Format.formatter -> t -> unit
