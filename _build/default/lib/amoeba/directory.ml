module Thread = Machine.Thread

type Sim.Payload.t +=
  | Dir_register of { dr_cap : Capability.t; dr_name : string; dr_value : Capability.t }
  | Dir_lookup of { dl_cap : Capability.t; dl_name : string }
  | Dir_list of { dls_cap : Capability.t }
  | Dir_ok
  | Dir_cap of Capability.t
  | Dir_names of string list
  | Dir_denied

type t = {
  port : Rpc.port;
  priv : Capability.private_port;
  root : Capability.t;
  table : (string, Capability.t) Hashtbl.t;
}

exception Denied

let address t = Rpc.address t.port
let root t = t.root

(* Rough marshalled sizes: a capability is 16 bytes on Amoeba's wire. *)
let cap_bytes = 16
let name_bytes name = String.length name + 4

let authorized t cap rights =
  Capability.validate t.priv cap && Capability.has_rights cap rights

let serve t request =
  match request with
  | Dir_register { dr_cap; dr_name; dr_value } ->
    if authorized t dr_cap Capability.right_write then begin
      Hashtbl.replace t.table dr_name dr_value;
      (cap_bytes, Dir_ok)
    end
    else (4, Dir_denied)
  | Dir_lookup { dl_cap; dl_name } ->
    if authorized t dl_cap Capability.right_read then
      match Hashtbl.find_opt t.table dl_name with
      | Some cap -> (cap_bytes, Dir_cap cap)
      | None -> (4, Dir_denied)
    else (4, Dir_denied)
  | Dir_list { dls_cap } ->
    if authorized t dls_cap Capability.right_read then begin
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] in
      let names = List.sort compare names in
      (List.fold_left (fun acc n -> acc + name_bytes n) 4 names, Dir_names names)
    end
    else (4, Dir_denied)
  | _ -> (4, Dir_denied)

let start rpc =
  let port = Rpc.export rpc ~name:"soap" in
  let mach = Flip.Flip_iface.machine (Rpc.flip rpc) in
  let priv = Capability.create_port ~seed:(Machine.Mach.id mach + 0xd1e) in
  let t =
    { port; priv; root = Capability.mint priv ~obj:0; table = Hashtbl.create 32 }
  in
  ignore
    (Thread.spawn mach ~prio:Thread.Daemon "soap" (fun () ->
         while true do
           let r = Rpc.get_request port in
           (* Table work: a hash probe plus the capability check. *)
           Thread.compute (Sim.Time.us 25);
           let size, reply = serve t (Rpc.request_payload r) in
           Rpc.put_reply port r ~size reply
         done));
  t

let transact rpc ~dir ~size request =
  let _size, reply = Rpc.trans rpc ~dst:dir ~size request in
  reply

let register rpc ~dir ~cap ~name value =
  match
    transact rpc ~dir
      ~size:((2 * cap_bytes) + name_bytes name)
      (Dir_register { dr_cap = cap; dr_name = name; dr_value = value })
  with
  | Dir_ok -> ()
  | _ -> raise Denied

let lookup rpc ~dir ~cap ~name =
  match
    transact rpc ~dir
      ~size:(cap_bytes + name_bytes name)
      (Dir_lookup { dl_cap = cap; dl_name = name })
  with
  | Dir_cap c -> c
  | _ -> raise Denied

let list_names rpc ~dir ~cap =
  match transact rpc ~dir ~size:cap_bytes (Dir_list { dls_cap = cap }) with
  | Dir_names names -> names
  | _ -> raise Denied
