(** Amoeba's kernel-space RPC: a 3-way stop-and-wait transaction protocol.

    The client sends a request and blocks inside the kernel; the server's
    kernel reassembles it, queues it at the port and wakes a server thread
    blocked in {!get_request}.  The server computes and calls {!put_reply}
    — Amoeba requires the reply to be sent {e by the same thread} that
    issued the [get_request] (the restriction that costs the Orca runtime
    an extra context switch for guarded operations).  The client's kernel
    delivers the reply {e directly} into the blocked client thread from the
    receive interrupt — no scheduler invocation — and always sends an
    explicit acknowledgement (the "3-way" part; Panda instead piggybacks
    acks).

    Reliability: clients retransmit unacknowledged requests; servers
    suppress duplicates while processing and replay cached replies until
    the explicit ack arrives. *)

type config = {
  header_bytes : int;  (** protocol header per message (56 in the paper) *)
  copy_byte : Sim.Time.span;  (** user/kernel copy cost per byte *)
  deliver_fixed : Sim.Time.span;  (** fixed kernel delivery work per message *)
  call_depth : int;  (** protocol call nesting (Amoeba's is shallow) *)
  retrans_timeout : Sim.Time.span;
  max_retries : int;
}

val default_config : config

type t
(** Per-machine kernel RPC instance. *)

(** On-the-wire protocol messages, exposed so tests and failure-injection
    benches can match on traffic. *)
type Sim.Payload.t +=
  | Request of { client : Flip.Address.t; trans_id : int; size : int; user : Sim.Payload.t }
  | Reply of { trans_id : int; size : int; user : Sim.Payload.t }
  | Ack of { client : Flip.Address.t; trans_id : int }

exception Rpc_failure of string
(** Raised in the client thread when a transaction exhausts its retries. *)

val create : ?config:config -> Flip.Flip_iface.t -> t

val config : t -> config
val flip : t -> Flip.Flip_iface.t

val client_address : t -> Flip.Address.t
(** The FLIP address this instance's outgoing transactions carry as their
    source (what servers see as [request_client]). *)

(** {1 Server side} *)

type port

val export : t -> name:string -> port
(** Creates a server port; its FLIP address is registered on this machine. *)

val address : port -> Flip.Address.t

type request

val request_size : request -> int
val request_payload : request -> Sim.Payload.t
val request_client : request -> Flip.Address.t

val get_request : port -> request
(** Blocks the calling (server) thread until a request arrives.  Charges
    one system call plus the kernel-to-user copy of the request. *)

val put_reply : port -> request -> size:int -> Sim.Payload.t -> unit
(** Sends the reply.  Charges one system call plus copy and send costs.
    @raise Invalid_argument when called from a thread other than the one
    that received [request] via [get_request] — Amoeba's restriction. *)

(** {1 Client side} *)

val trans :
  t -> dst:Flip.Address.t -> size:int -> Sim.Payload.t -> int * Sim.Payload.t
(** [trans t ~dst ~size payload] performs a blocking transaction and
    returns [(reply_size, reply_payload)].  Charges the system call, copy
    and send costs to the calling thread; the reply wakes it directly from
    the interrupt.  @raise Rpc_failure after [max_retries]. *)

val transactions : t -> int
val retransmissions : t -> int
