(** The Amoeba directory service (a simplified SOAP): maps names to
    capabilities, itself an ordinary RPC server built on {!Rpc} — services
    in Amoeba are user-level processes on top of the kernel primitives.

    Registering and looking up require the matching rights on the
    directory capability; the server validates check fields with its
    private port, so forged or over-claimed capabilities are refused. *)

type t
(** A running directory server. *)

type Sim.Payload.t +=
  | Dir_register of { dr_cap : Capability.t; dr_name : string; dr_value : Capability.t }
  | Dir_lookup of { dl_cap : Capability.t; dl_name : string }
  | Dir_list of { dls_cap : Capability.t }
  | Dir_ok
  | Dir_cap of Capability.t
  | Dir_names of string list
  | Dir_denied

val start : Rpc.t -> t
(** Starts the directory server on the RPC instance's machine: spawns its
    server thread and exports its port. *)

val address : t -> Flip.Address.t
(** Where clients send directory transactions (what a well-known FLIP
    address provides in a real pool). *)

val root : t -> Capability.t
(** The owner capability of the directory itself; restrict it before
    handing it out. *)

(** {1 Client operations} — each one Amoeba RPC transaction. *)

exception Denied

val register :
  Rpc.t -> dir:Flip.Address.t -> cap:Capability.t -> name:string -> Capability.t -> unit
(** Binds [name]; requires write rights on [cap].  @raise Denied *)

val lookup :
  Rpc.t -> dir:Flip.Address.t -> cap:Capability.t -> name:string -> Capability.t
(** Resolves [name]; requires read rights.  @raise Denied (also when the
    name is unbound). *)

val list_names :
  Rpc.t -> dir:Flip.Address.t -> cap:Capability.t -> string list
(** All bound names; requires read rights.  @raise Denied *)
