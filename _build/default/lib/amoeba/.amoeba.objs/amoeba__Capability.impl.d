lib/amoeba/capability.ml: Format Int64
