lib/amoeba/rpc.mli: Flip Sim
