lib/amoeba/group.ml: Array Flip Hashtbl List Machine Queue Sim
