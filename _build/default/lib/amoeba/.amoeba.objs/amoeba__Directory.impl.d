lib/amoeba/directory.ml: Capability Flip Hashtbl List Machine Rpc Sim String
