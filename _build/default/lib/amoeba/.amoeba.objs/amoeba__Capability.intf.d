lib/amoeba/capability.mli: Format
