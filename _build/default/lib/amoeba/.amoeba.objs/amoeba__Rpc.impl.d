lib/amoeba/rpc.ml: Flip Hashtbl Machine Queue Sim
