lib/amoeba/group.mli: Flip Sim
