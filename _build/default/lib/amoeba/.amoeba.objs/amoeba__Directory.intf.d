lib/amoeba/directory.mli: Capability Flip Rpc Sim
