module Mutex = struct
  type t = {
    mach : Mach.t;
    mutable held : bool;
    waiters : (unit -> unit) Queue.t;
  }

  let create mach = { mach; held = false; waiters = Queue.create () }

  let charge t =
    (* Only threads pay the user-space lock cost; engine callbacks (tests,
       interrupt-adjacent code) may manipulate mutexes for free. *)
    if Thread.self_opt () <> None then begin
      Sim.Stats.incr (Mach.stats t.mach) "locks";
      Thread.compute (Mach.config t.mach).Mach.lock_cost
    end

  let rec lock t =
    charge t;
    if not t.held then t.held <- true
    else begin
      Thread.suspend (fun _ resume -> Queue.push resume t.waiters);
      (* The unlocker hands over the mutex logically; loop to re-check in
         case a same-instant racer took it first. *)
      if t.held then lock t else t.held <- true
    end

  let unlock t =
    if not t.held then invalid_arg "Mutex.unlock: not locked";
    t.held <- false;
    match Queue.take_opt t.waiters with
    | Some wake -> wake ()
    | None -> ()

  let locked t = t.held

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f
end

module Condvar = struct
  type t = {
    mach : Mach.t;
    waiters : (unit -> unit) Queue.t;
  }

  let create mach = { mach; waiters = Queue.create () }

  let wait t mu =
    (* Register first, release the mutex, then block: no window for a lost
       wakeup.  The kernel-crossing cost of blocking is charged on the way
       out, where the paper's underflow traps occur. *)
    Mutex.unlock mu;
    Thread.suspend (fun _ resume -> Queue.push resume t.waiters);
    Thread.syscall ();
    Mutex.lock mu

  let signal t =
    match Queue.take_opt t.waiters with
    | None -> ()
    | Some wake ->
      (* Waking a kernel thread requires entering the kernel; charged only
         when called from a thread.  Interrupt context wakes for free (its
         own cost covers it). *)
      if Thread.self_opt () <> None then Thread.syscall ();
      wake ()

  let broadcast t =
    let n = Queue.length t.waiters in
    if n > 0 && Thread.self_opt () <> None then Thread.syscall ();
    for _ = 1 to n do
      match Queue.take_opt t.waiters with
      | Some wake -> wake ()
      | None -> ()
    done

  let waiters t = Queue.length t.waiters
end
