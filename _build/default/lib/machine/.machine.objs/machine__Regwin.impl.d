lib/machine/regwin.ml:
