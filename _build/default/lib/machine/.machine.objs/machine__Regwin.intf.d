lib/machine/regwin.mli:
