lib/machine/sync.ml: Fun Mach Queue Sim Thread
