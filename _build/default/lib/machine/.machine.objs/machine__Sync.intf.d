lib/machine/sync.mli: Mach
