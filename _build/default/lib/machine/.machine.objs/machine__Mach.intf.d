lib/machine/mach.mli: Cpu Sim
