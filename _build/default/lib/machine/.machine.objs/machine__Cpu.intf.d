lib/machine/cpu.mli: Sim
