lib/machine/mach.ml: Cpu Sim
