lib/machine/thread.mli: Mach Sim
