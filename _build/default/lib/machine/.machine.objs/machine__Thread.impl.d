lib/machine/thread.ml: Cpu Hashtbl Mach Regwin Sim
