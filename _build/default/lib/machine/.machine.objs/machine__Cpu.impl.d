lib/machine/cpu.ml: Array Queue Sim
