(** Mutexes and condition variables for machine threads.

    Amoeba provides only kernel threads, so blocking and signalling go
    through the kernel: a [Condvar.wait] and a [Condvar.signal] that
    actually wakes someone charge a system call (with its register-window
    consequences) to the calling thread.  Uncontended mutex operations are
    cheap user-space operations (the paper: "acquiring and releasing locks
    in user space can be done cheaply"), charged at [lock_cost].

    Signalling from interrupt context is permitted and charges nothing
    extra (the interrupt's own cost already accounts for it). *)

module Mutex : sig
  type t

  val create : Mach.t -> t
  val lock : t -> unit
  val unlock : t -> unit
  val locked : t -> bool

  val with_lock : t -> (unit -> 'a) -> 'a
end

module Condvar : sig
  type t

  val create : Mach.t -> t

  val wait : t -> Mutex.t -> unit
  (** Atomically releases the mutex and blocks; re-acquires before
      returning.  Always re-check the waited-for predicate in a loop. *)

  val signal : t -> unit
  (** Wakes one waiter, if any. *)

  val broadcast : t -> unit
  (** Wakes all current waiters. *)

  val waiters : t -> int
end
