type t = {
  windows : int;
  mutable depth : int;
  mutable live : int; (* valid windows ending at the current frame, >= 1 *)
}

let create ~windows =
  assert (windows > 1);
  { windows; depth = 0; live = 1 }

let call t n =
  assert (n >= 0);
  let traps = ref 0 in
  for _ = 1 to n do
    t.depth <- t.depth + 1;
    if t.live = t.windows then incr traps (* spill the oldest window *)
    else t.live <- t.live + 1
  done;
  !traps

let ret t n =
  assert (n >= 0);
  if n > t.depth then invalid_arg "Regwin.ret: below frame zero";
  let traps = ref 0 in
  for _ = 1 to n do
    t.depth <- t.depth - 1;
    if t.live = 1 then incr traps (* reload the caller's window *)
    else t.live <- t.live - 1
  done;
  !traps

let syscall_save t = t.live <- 1
let depth t = t.depth
let resident t = t.live
