(** SPARC register-window model.

    The SPARC processors of the paper have a fixed set of register windows
    (six usable).  Each procedure call allocates a window; when the windows
    are exhausted an {e overflow} trap spills the oldest to memory, and when
    a procedure returns to a frame whose window was spilled an {e underflow}
    trap reloads it.  A system call makes the Amoeba kernel save {e all}
    windows in use and restore only the topmost before returning to user
    space, so deep call stacks suffer a string of underflow traps on the way
    back down — the effect the paper measures at ~6 µs per trap.

    One value of this type tracks the window state of one thread.  The
    [call]/[ret] functions return the number of traps incurred so the caller
    can charge CPU time for them. *)

type t

val create : windows:int -> t
(** [windows] is the number of usable register windows (the paper's SPARCs
    have six). *)

val call : t -> int -> int
(** [call t n] descends [n] call frames; returns the overflow-trap count. *)

val ret : t -> int -> int
(** [ret t n] pops [n] call frames; returns the underflow-trap count.
    @raise Invalid_argument when popping below frame zero. *)

val syscall_save : t -> unit
(** All in-use windows are saved by the kernel; only the topmost is restored
    when the system call returns. *)

val depth : t -> int
(** Current call depth. *)

val resident : t -> int
(** Number of consecutive windows currently valid in the register file. *)
