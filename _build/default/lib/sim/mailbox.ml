type 'a t = {
  items : 'a Queue.t;
  waiters : (unit -> unit) Queue.t;
}

let create () = { items = Queue.create (); waiters = Queue.create () }

let send t v =
  Queue.push v t.items;
  if not (Queue.is_empty t.waiters) then (Queue.pop t.waiters) ()

let rec recv t =
  match Queue.take_opt t.items with
  | Some v -> v
  | None ->
    Fiber.suspend (fun _ resume -> Queue.push resume t.waiters);
    (* Another fiber resumed at the same instant may have taken the item:
       re-check rather than assume. *)
    recv t

let try_recv t = Queue.take_opt t.items
let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items
