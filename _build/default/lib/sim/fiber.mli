(** Simulated processes as OCaml 5 effect-handler fibers.

    A fiber runs ordinary OCaml code in direct style and blocks by
    {!suspend}ing: it hands a [resume] callback to whoever will wake it (a
    timer, a mailbox, a CPU scheduler) and the engine resumes the
    continuation at a later simulated instant.  All fibers share one OS
    thread; scheduling is deterministic. *)

type t

exception Killed
(** Delivered into a fiber whose {!kill} was requested. *)

val spawn : Engine.t -> ?name:string -> (unit -> unit) -> t
(** [spawn engine f] creates a fiber that starts running [f ()] at the
    current instant (after already-queued events). *)

val suspend : (t -> (unit -> unit) -> unit) -> unit
(** [suspend register] blocks the calling fiber.  [register fiber resume] is
    called immediately; stash [resume] somewhere and call it (once) to
    reschedule the fiber at the then-current instant.  Extra calls to
    [resume] are ignored.  Must be called from inside a fiber. *)

val set_wake_cleanup : t -> (unit -> unit) -> unit
(** For use inside a {!suspend} [register] function: installs a cleanup that
    runs exactly once when the fiber is resumed or killed — typically to
    cancel a pending timer so dead events do not drag the clock forward. *)

val sleep : Time.span -> unit
(** Blocks the calling fiber for the given simulated duration. *)

val yield : unit -> unit
(** Reschedules the calling fiber behind events queued at this instant. *)

val self : unit -> t
(** The running fiber.  @raise Invalid_argument outside any fiber. *)

val self_opt : unit -> t option

val in_fiber : unit -> bool

val name : t -> string
val id : t -> int

val alive : t -> bool
(** A fiber is alive from [spawn] until its body returns, raises, or is
    killed. *)

val kill : t -> unit
(** Requests termination.  A suspended fiber is woken with {!Killed}; a
    running fiber receives {!Killed} at its next suspension point.  Killing a
    dead fiber is a no-op. *)

val on_exit : t -> (unit -> unit) -> unit
(** [on_exit t f] runs [f] when [t] dies (immediately if already dead). *)

val join : t -> unit
(** Blocks the calling fiber until [t] dies.  Returns immediately if [t] is
    already dead. *)

val engine : t -> Engine.t
