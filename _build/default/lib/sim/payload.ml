(** Extensible payload carried by network frames.

    Each protocol layer extends this type with its own message constructors,
    which keeps the layers decoupled while the simulation passes message
    contents structurally (marshalling is modelled by byte accounting, not by
    serialising). *)

type t = ..

type t += Empty
