(** Unbounded blocking queue between fibers.

    Zero simulated cost: used for plumbing inside a single simulated machine
    and in tests.  Protocol code that must account for CPU time charges it
    separately via the [machine] library. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit
(** Never blocks.  May be called from fibers or plain engine callbacks. *)

val recv : 'a t -> 'a
(** Blocks the calling fiber until a value is available.  Competing
    receivers are served in FIFO order. *)

val try_recv : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
