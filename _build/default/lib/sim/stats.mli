(** Named counters and numeric series for instrumenting simulations. *)

type t

val create : unit -> t

(** {1 Integer counters} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val counter : t -> string -> int
(** [counter t name] is the counter's value; 0 if never touched. *)

(** {1 Numeric series} — retains count/sum/min/max, not the samples. *)

val record : t -> string -> float -> unit
val count : t -> string -> int
val sum : t -> string -> float
val mean : t -> string -> float
(** [mean t name] is 0.0 when the series is empty. *)

val min_value : t -> string -> float
val max_value : t -> string -> float

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val series : t -> (string * (int * float * float * float)) list
(** All series as [(name, (count, mean, min, max))], sorted by name. *)

val pp : Format.formatter -> t -> unit
