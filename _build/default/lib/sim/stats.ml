type serie = {
  mutable n : int;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
}

type t = {
  ints : (string, int ref) Hashtbl.t;
  floats : (string, serie) Hashtbl.t;
}

let create () = { ints = Hashtbl.create 32; floats = Hashtbl.create 32 }

let int_ref t name =
  match Hashtbl.find_opt t.ints name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.ints name r;
    r

let serie t name =
  match Hashtbl.find_opt t.floats name with
  | Some s -> s
  | None ->
    let s = { n = 0; total = 0.; lo = infinity; hi = neg_infinity } in
    Hashtbl.add t.floats name s;
    s

let incr t name = Stdlib.incr (int_ref t name)
let add t name v = int_ref t name := !(int_ref t name) + v
let counter t name = match Hashtbl.find_opt t.ints name with Some r -> !r | None -> 0

let record t name v =
  let s = serie t name in
  s.n <- s.n + 1;
  s.total <- s.total +. v;
  if v < s.lo then s.lo <- v;
  if v > s.hi then s.hi <- v

let count t name = match Hashtbl.find_opt t.floats name with Some s -> s.n | None -> 0
let sum t name = match Hashtbl.find_opt t.floats name with Some s -> s.total | None -> 0.

let mean t name =
  match Hashtbl.find_opt t.floats name with
  | Some s when s.n > 0 -> s.total /. float_of_int s.n
  | Some _ | None -> 0.

let min_value t name =
  match Hashtbl.find_opt t.floats name with Some s -> s.lo | None -> infinity

let max_value t name =
  match Hashtbl.find_opt t.floats name with Some s -> s.hi | None -> neg_infinity

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.ints []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let series t =
  Hashtbl.fold
    (fun k s acc ->
      let m = if s.n = 0 then 0. else s.total /. float_of_int s.n in
      (k, (s.n, m, s.lo, s.hi)) :: acc)
    t.floats []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt t =
  List.iter (fun (k, v) -> Format.fprintf fmt "%s = %d@." k v) (counters t);
  List.iter
    (fun (k, (n, m, lo, hi)) ->
      Format.fprintf fmt "%s: n=%d mean=%.3f min=%.3f max=%.3f@." k n m lo hi)
    (series t)
