(** Simulated time.

    Time is an integer count of nanoseconds since the start of the
    simulation.  Integers keep the event engine exactly deterministic; 63-bit
    nanoseconds cover ~292 simulated years, far beyond any experiment. *)

type t = int
(** An absolute instant, in nanoseconds since simulation start. *)

type span = int
(** A duration, in nanoseconds.  Spans may be added to instants. *)

val zero : t

val ns : int -> span
(** [ns n] is a span of [n] nanoseconds. *)

val us : int -> span
(** [us n] is a span of [n] microseconds. *)

val ms : int -> span
(** [ms n] is a span of [n] milliseconds. *)

val sec : int -> span
(** [sec n] is a span of [n] seconds. *)

val us_f : float -> span
(** [us_f x] is a span of [x] microseconds, rounded to the nearest
    nanosecond.  Used for calibrated fractional costs such as per-byte wire
    time. *)

val to_us : t -> float
(** [to_us t] is [t] expressed in microseconds. *)

val to_ms : t -> float
(** [to_ms t] is [t] expressed in milliseconds. *)

val to_sec : t -> float
(** [to_sec t] is [t] expressed in seconds. *)

val pp : Format.formatter -> t -> unit
(** Prints an instant with an adaptive unit, e.g. ["1.270ms"]. *)
