(** Binary min-heap of timestamped events.

    Events with equal timestamps pop in insertion order (FIFO), which keeps
    the simulation deterministic.  Cancellation is lazy: a cancelled event
    stays in the heap until it reaches the top and is then discarded. *)

type 'a t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> 'a t

val push : 'a t -> time:Time.t -> 'a -> handle
(** [push h ~time v] schedules [v] at [time] and returns its handle. *)

val pop : 'a t -> (Time.t * 'a) option
(** [pop h] removes and returns the earliest live event, skipping cancelled
    ones, or [None] if the heap holds no live event. *)

val peek_time : 'a t -> Time.t option
(** [peek_time h] is the timestamp of the earliest live event. *)

val cancel : handle -> unit
(** [cancel hd] marks the event as dead.  Idempotent. *)

val cancelled : handle -> bool

val size : 'a t -> int
(** Number of entries still stored, including cancelled ones. *)

val live_size : 'a t -> int
(** Number of entries not yet cancelled. *)
