lib/sim/payload.ml:
