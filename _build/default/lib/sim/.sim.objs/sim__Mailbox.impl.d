lib/sim/mailbox.ml: Fiber Queue
