lib/sim/mailbox.mli:
