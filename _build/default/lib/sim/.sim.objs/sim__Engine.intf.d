lib/sim/engine.mli: Heap Time
