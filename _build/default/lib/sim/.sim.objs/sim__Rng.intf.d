lib/sim/rng.mli:
