(** Lightweight simulation tracing on stderr.

    Disabled by default; enable for debugging a run.  Every line is prefixed
    with the simulated timestamp. *)

val enabled : bool ref

val log : Engine.t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [log engine who fmt ...] prints ["[<time>] <who>: ..."] when enabled. *)
