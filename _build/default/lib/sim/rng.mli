(** Deterministic pseudo-random numbers (splitmix64).

    The standard library's [Random] is avoided so that simulations are
    reproducible across OCaml versions and so that independent subsystems can
    carry independent streams split from one seed. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] derives an independent stream; [t] advances. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bits64 : t -> int64
(** Raw 64 bits of output. *)
