type handle = { mutable dead : bool }

type 'a entry = {
  time : Time.t;
  seq : int;
  value : 'a;
  handle : handle;
}

type 'a t = {
  mutable arr : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
  mutable live : int;
}

let create () = { arr = Array.make 64 None; len = 0; next_seq = 0; live = 0 }

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get h i =
  match h.arr.(i) with
  | Some e -> e
  | None -> assert false

let grow h =
  let arr = Array.make (2 * Array.length h.arr) None in
  Array.blit h.arr 0 arr 0 h.len;
  h.arr <- arr

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get h i) (get h parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && entry_lt (get h l) (get h !smallest) then smallest := l;
  if r < h.len && entry_lt (get h r) (get h !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~time value =
  let handle = { dead = false } in
  let e = { time; seq = h.next_seq; value; handle } in
  h.next_seq <- h.next_seq + 1;
  if h.len = Array.length h.arr then grow h;
  h.arr.(h.len) <- Some e;
  h.len <- h.len + 1;
  h.live <- h.live + 1;
  sift_up h (h.len - 1);
  handle

let pop_top h =
  let top = get h 0 in
  h.len <- h.len - 1;
  h.arr.(0) <- h.arr.(h.len);
  h.arr.(h.len) <- None;
  if h.len > 0 then sift_down h 0;
  top

let rec pop h =
  if h.len = 0 then None
  else
    let e = pop_top h in
    if e.handle.dead then pop h
    else begin
      h.live <- h.live - 1;
      Some (e.time, e.value)
    end

let rec peek_time h =
  if h.len = 0 then None
  else
    let top = get h 0 in
    if top.handle.dead then begin
      ignore (pop_top h);
      peek_time h
    end
    else Some top.time

let cancel hd =
  hd.dead <- true

(* [live] is only decremented lazily for cancelled entries when they are
   popped, so recompute on demand from the dead flags. *)
let live_size h =
  let n = ref 0 in
  for i = 0 to h.len - 1 do
    if not (get h i).handle.dead then incr n
  done;
  !n

let cancelled hd = hd.dead
let size h = h.len
