type t = int
type span = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let us_f x = int_of_float (Float.round (x *. 1_000.))
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1_000_000_000.

let pp fmt t =
  if t >= 1_000_000_000 then Format.fprintf fmt "%.3fs" (to_sec t)
  else if t >= 1_000_000 then Format.fprintf fmt "%.3fms" (to_ms t)
  else if t >= 1_000 then Format.fprintf fmt "%.3fus" (to_us t)
  else Format.fprintf fmt "%dns" t
