type t = {
  heap : (unit -> unit) Heap.t;
  mutable clock : Time.t;
  mutable stopped : bool;
  mutable executed : int;
}

exception Stopped
exception Fiber_failure of string * exn

type handle = Heap.handle

let create () = { heap = Heap.create (); clock = Time.zero; stopped = false; executed = 0 }

let now t = t.clock

let at t time f =
  assert (time >= t.clock);
  Heap.push t.heap ~time f

let after t d f = at t (t.clock + d) f
let schedule_now t f = at t t.clock f
let cancel = Heap.cancel

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.executed <- t.executed + 1;
    f ();
    true

let run ?until t =
  t.stopped <- false;
  let continue () =
    if t.stopped then false
    else
      match until, Heap.peek_time t.heap with
      | Some limit, Some next -> next <= limit
      | _, None -> false
      | None, Some _ -> true
  in
  while continue () do
    ignore (step t)
  done;
  (match until with
   | Some limit when not t.stopped && t.clock < limit && Heap.peek_time t.heap <> None ->
     t.clock <- limit
   | _ -> ())

let stop t = t.stopped <- true
let pending t = Heap.live_size t.heap
let events_executed t = t.executed
