(** A shared 10 Mbit/s Ethernet segment.

    The medium serializes transmissions: requests queue in arrival order and
    each occupies the wire for its frame's transmission time.  (Collisions
    and exponential backoff are not modelled; FIFO serialization gives the
    same deterministic saturation behaviour, which is what the paper's
    application results depend on.)

    Stations and switch ports attach with a delivery callback and a filter;
    when a frame's transmission completes it is delivered to every other
    attachment whose filter accepts it. *)

type t

type config = {
  byte_time : Sim.Time.span;  (** wire time per byte (800 ns at 10 Mbit/s) *)
  framing_bytes : int;
      (** per-frame overhead: preamble, MACs, type, FCS, interframe gap *)
  min_payload : int;  (** Ethernet minimum payload (padding), 46 bytes *)
}

val default_config : config
(** 10 Mbit/s Ethernet: 800 ns/byte, 38 framing bytes, 46 min payload. *)

val create : Sim.Engine.t -> ?config:config -> string -> t

type attachment

val attach :
  t -> name:string -> accepts:(Frame.t -> bool) -> (Frame.t -> unit) -> attachment
(** [attach t ~name ~accepts deliver] connects a station or switch port.
    [deliver] runs at frame-reception instants; it must not block. *)

val transmit : t -> from:attachment -> Frame.t -> unit
(** Queues a frame for transmission.  The sender's own attachment never
    receives the frame back. *)

val wire_time : t -> Frame.t -> Sim.Time.span
(** Time the frame occupies the medium. *)

val set_fault_injector : t -> (Frame.t -> bool) option -> unit
(** When the injector returns [true] for a frame, the frame occupies the
    wire but is delivered to nobody — a corrupted/collided frame.  Used by
    tests and failure-injection benches to exercise retransmission. *)

val frames_dropped : t -> int

val busy : t -> bool
val queue_length : t -> int
val bytes_carried : t -> int
val frames_carried : t -> int
val busy_time : t -> Sim.Time.span
val name : t -> string
