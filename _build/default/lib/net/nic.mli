(** Network interface of a machine.

    Transmission is DMA-like: queuing a frame costs no CPU here (the
    protocol layers charge their own send-path costs).  Reception raises a
    machine interrupt whose cost covers the device handling and the copy of
    the frame into kernel memory; the registered handler then runs in
    interrupt context. *)

type config = {
  rx_base : Sim.Time.span;  (** fixed interrupt cost per received frame *)
  rx_byte : Sim.Time.span;  (** copy cost per payload byte *)
  rx_mcast_extra : Sim.Time.span;
      (** additional receive cost for multicast/broadcast frames (address
          filtering and group lookup in the driver and FLIP input) *)
}

val default_config : config
(** 50 µs per frame + 50 ns/byte, calibrated in [core/params.ml]. *)

type t

val create : Machine.Mach.t -> ?config:config -> Segment.t -> t
(** Attaches the machine to the segment; the NIC's station address is the
    machine id. *)

val mac : t -> int
val machine : t -> Machine.Mach.t
val segment : t -> Segment.t

val set_rx : t -> (Frame.t -> unit) -> unit
(** Installs the receive handler (the FLIP input routine).  Runs in
    interrupt context after the reception interrupt's cost. *)

val send : t -> Frame.t -> unit
(** Queues a frame on the wire. *)

val frames_received : t -> int
val frames_sent : t -> int
