type dest = Unicast of int | Multicast | Broadcast

type t = {
  src : int;
  dest : dest;
  bytes : int;
  payload : Sim.Payload.t;
}

let make ~src ~dest ~bytes payload =
  assert (bytes >= 0);
  { src; dest; bytes; payload }

let is_for ~mac t =
  if t.src = mac then false
  else
    match t.dest with
    | Unicast m -> m = mac
    | Multicast | Broadcast -> true

let pp fmt t =
  let dest =
    match t.dest with
    | Unicast m -> Printf.sprintf "->%d" m
    | Multicast -> "->mcast"
    | Broadcast -> "->bcast"
  in
  Format.fprintf fmt "frame[%d%s %dB]" t.src dest t.bytes
