lib/net/segment.mli: Frame Sim
