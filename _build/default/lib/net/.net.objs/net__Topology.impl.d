lib/net/topology.ml: Array Float Nic Printf Segment Sim Switch
