lib/net/topology.mli: Machine Nic Segment Sim Switch
