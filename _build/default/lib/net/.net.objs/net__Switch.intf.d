lib/net/switch.mli: Segment Sim
