lib/net/switch.ml: Frame Hashtbl List Printf Segment Sim
