lib/net/frame.ml: Format Printf Sim
