lib/net/nic.ml: Frame Machine Segment Sim
