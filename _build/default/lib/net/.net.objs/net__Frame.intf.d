lib/net/frame.mli: Format Sim
