lib/net/nic.mli: Frame Machine Segment Sim
