lib/net/segment.ml: Frame List Queue Sim
