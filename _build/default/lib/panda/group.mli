(** Panda's user-space totally-ordered group communication.

    Same sequencer idea as Amoeba's kernel protocol, but the sequencer is
    an ordinary {e user thread} on one machine: every message costs it a
    system call to fetch the packet and another to multicast the ordered
    copy, plus a thread switch to get scheduled at all — the paper's
    ~110 µs when it preempts an Orca worker, ~60 µs on a {e dedicated}
    machine whose context stays loaded.  Delivery to the application is an
    upcall from the system-layer receive daemon (no intermediate thread).

    Headers are smaller than the kernel protocol's (40 vs 52 bytes), and
    the sequencer orders at the fragment level, so Panda's duplicated
    fragmentation is paid only at the sending member.

    [send] blocks until the sender's own message comes back in the total
    order; {!send_nonblocking} is the paper's proposed extension (§6) for
    write-operations whose semantics allow it. *)

type config = {
  header_bytes : int;  (** data-message header (40 in the paper) *)
  accept_bytes : int;
  order_fixed : Sim.Time.span;  (** sequencer's per-message bookkeeping *)
  deliver_cost : Sim.Time.span;  (** member-side protocol work per delivery *)
  copy_byte : Sim.Time.span;
  bb_threshold : int;  (** sizes strictly above this use the BB method *)
  retrans_timeout : Sim.Time.span;
  max_retries : int;
  history_high : int;
}

val default_config : config

type t
type member

type sequencer_placement =
  | On_member of int  (** the sequencer thread shares member [i]'s machine *)
  | Dedicated of System_layer.t
      (** a machine sacrificed to run only the sequencer *)

(** Wire messages, exposed for tests and failure injection. *)
type Sim.Payload.t +=
  | Gpb of { sender : int; local : int; size : int; user : Sim.Payload.t }
  | Gbb of { sender : int; local : int; size : int; user : Sim.Payload.t }
  | Gord of { g_seq : int; g_sender : int; g_local : int; g_size : int; g_user : Sim.Payload.t }
  | Gacc of { g_seq : int; g_sender : int; g_local : int }
  | Gret of { g_member : int; g_from : int }
  | Gstat_req of { gsr_next : int }
  | Gstat_rsp of { g_member : int; g_delivered : int }

exception Group_failure of string

val create_static :
  ?config:config ->
  name:string ->
  sequencer:sequencer_placement ->
  System_layer.t array ->
  t * member array
(** One member per Panda instance.  Membership is static in the Panda
    stack (the paper's experiments never change it mid-run; the kernel
    stack additionally implements Amoeba's dynamic join/leave). *)

val config : t -> config
val member_index : member -> int
val member_count : t -> int

val set_handler : member -> (sender:int -> size:int -> Sim.Payload.t -> unit) -> unit
(** Installs the delivery upcall; runs in the member's system-layer daemon
    thread, in total order. *)

val send : member -> size:int -> Sim.Payload.t -> unit
(** Blocking broadcast.  @raise Group_failure after [max_retries]. *)

val send_nonblocking : member -> size:int -> Sim.Payload.t -> unit
(** Fire-and-forget broadcast (still totally ordered and reliable); the
    paper's §6 extension.  The calling thread does not wait for the
    sequencer round trip. *)

val delivered_seq : member -> int
val messages_ordered : t -> int
val retransmissions : t -> int
val history_length : t -> int
