lib/panda/group.ml: Array Flip Hashtbl Machine Queue Sim System_layer
