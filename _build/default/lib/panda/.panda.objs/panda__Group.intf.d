lib/panda/group.mli: Sim System_layer
