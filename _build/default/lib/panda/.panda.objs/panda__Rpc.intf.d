lib/panda/rpc.mli: Flip Sim System_layer
