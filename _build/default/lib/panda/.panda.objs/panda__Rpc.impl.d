lib/panda/rpc.ml: Flip Hashtbl List Machine Queue Sim System_layer
