lib/panda/system_layer.mli: Flip Machine Sim
