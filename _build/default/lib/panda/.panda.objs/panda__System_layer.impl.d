lib/panda/system_layer.ml: Flip List Machine Queue Sim
