(** Panda's user-space RPC: a 2-way stop-and-wait protocol.

    The reply implicitly acknowledges the request; the client's
    acknowledgement of the reply is piggybacked on its next request to the
    same server, and only sent as an explicit message after a timeout.
    This is the major protocol difference with Amoeba's 3-way RPC.

    Requests are delivered by {e implicit receipt}: the interface layer
    makes an upcall from the system-layer daemon, and the reply may be sent
    asynchronously by {e any} thread via the [reply] closure — the
    flexibility that lets the Orca RTS use continuations for guarded
    operations instead of blocking a server thread. *)

type config = {
  header_bytes : int;  (** per-message protocol header (64 in the paper) *)
  call_depth : int;  (** extra call nesting of the RPC layer *)
  proc_cost : Sim.Time.span;  (** protocol processing per message *)
  ack_delay : Sim.Time.span;  (** explicit-ack timeout *)
  retrans_timeout : Sim.Time.span;
  max_retries : int;
}

val default_config : config

type t

(** Wire messages, exposed for tests and failure injection. *)
type Sim.Payload.t +=
  | Preq of {
      client : Flip.Address.t;
      trans_id : int;
      acks : int list;  (** reply acknowledgements piggybacked on this request *)
      size : int;
      user : Sim.Payload.t;
    }
  | Prep of { trans_id : int; size : int; user : Sim.Payload.t }
  | Pack of { client : Flip.Address.t; trans_ids : int list }

exception Rpc_failure of string

val create : ?config:config -> System_layer.t -> t
(** Attaches the RPC module to a Panda instance.  The RPC service address
    is the instance's system address. *)

val address : t -> Flip.Address.t
val system : t -> System_layer.t

val set_request_handler :
  t ->
  (client:Flip.Address.t ->
  size:int ->
  Sim.Payload.t ->
  reply:(size:int -> Sim.Payload.t -> unit) ->
  unit) ->
  unit
(** Installs the server upcall.  It runs in the daemon thread and must not
    block; [reply] may be invoked later, from any thread
    ([pan_rpc_reply]'s asynchrony). *)

val trans : t -> dst:Flip.Address.t -> size:int -> Sim.Payload.t -> int * Sim.Payload.t
(** Blocking client transaction to the RPC module at [dst] (a remote
    Panda system address).  @raise Rpc_failure after [max_retries]. *)

val transactions : t -> int
val retransmissions : t -> int
val explicit_acks : t -> int
(** Explicit ack messages actually sent (not piggybacked). *)
