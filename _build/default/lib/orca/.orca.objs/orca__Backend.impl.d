lib/orca/backend.ml: Amoeba Array Flip Hashtbl Machine Panda Printf Sim
