lib/orca/rts.ml: Array Backend Hashtbl Machine Printf Queue Sim
