lib/orca/backend.mli: Amoeba Flip Machine Panda Sim
