lib/orca/rts.mli: Backend Machine Sim
