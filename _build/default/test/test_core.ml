(* Experiment-level tests: the microbenchmark harnesses must reproduce the
   paper's qualitative orderings on every run. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_table1_row_orderings () =
  (* One row is enough for the orderings; the full sweep runs in bench. *)
  let size = 0 in
  let uni = Core.Experiments.unicast_latency ~size () in
  let mc = Core.Experiments.multicast_latency ~size () in
  let rpc_u = Core.Experiments.rpc_latency ~impl:`User ~size () in
  let rpc_k = Core.Experiments.rpc_latency ~impl:`Kernel ~size () in
  let grp_u = Core.Experiments.group_latency ~impl:`User ~size () in
  let grp_k = Core.Experiments.group_latency ~impl:`Kernel ~size () in
  check_bool "multicast >= unicast" true (mc >= uni);
  check_bool "user RPC slower than kernel RPC" true (rpc_u > rpc_k);
  check_bool "user group slower than kernel group" true (grp_u > grp_k);
  check_bool "rpc slower than raw unicast" true (rpc_u > uni && rpc_k > uni);
  (* The gaps are fractions of a millisecond, as in the paper. *)
  check_bool "rpc gap sane" true (rpc_u -. rpc_k < 1.0);
  check_bool "group gap sane" true (grp_u -. grp_k < 1.0)

let test_latency_monotone_in_size () =
  let lat size = Core.Experiments.rpc_latency ~impl:`User ~size () in
  let l0 = lat 0 and l2 = lat 2048 and l4 = lat 4096 in
  check_bool "grows with size" true (l0 < l2 && l2 < l4);
  (* Slope must be at least the wire time (0.8 us/B both ways). *)
  check_bool "slope at least wire rate" true (l4 -. l0 > 4096. *. 0.0008)

let test_throughput_orderings () =
  let rows = Core.Experiments.table2 () in
  let rpc = List.find (fun r -> r.Core.Experiments.tr_proto = "RPC") rows in
  let grp = List.find (fun r -> r.Core.Experiments.tr_proto = "group") rows in
  check_bool "kernel RPC throughput higher" true
    (rpc.Core.Experiments.tr_kernel > rpc.Core.Experiments.tr_user);
  (* Group throughput saturates the wire: both implementations close. *)
  let ratio = grp.Core.Experiments.tr_user /. grp.Core.Experiments.tr_kernel in
  check_bool "group throughputs comparable" true (ratio > 0.85 && ratio < 1.15);
  check_bool "all below wire rate" true
    (List.for_all
       (fun r ->
         r.Core.Experiments.tr_user < 1250. && r.Core.Experiments.tr_kernel < 1250.)
       rows)

let test_rpc_breakdown_accounts_for_gap () =
  let rows = Core.Experiments.rpc_breakdown () in
  let total = List.assoc "total user-kernel gap" rows in
  let ctx = List.assoc "context switches" rows in
  let frag = List.assoc "double fragmentation" rows in
  check_bool "positive gap" true (total > 0.);
  check_bool "context switches ~140us (2 switches)" true (ctx > 100. && ctx < 180.);
  check_bool "fragmentation ~40us (2 messages)" true (frag > 20. && frag < 60.)

let test_cluster_shapes () =
  let c = Core.Cluster.create ~n:32 () in
  check_int "machines" 32 (Array.length c.Core.Cluster.machines);
  check_int "four segments of eight" 4 (Array.length c.Core.Cluster.topo.Net.Topology.segments);
  check_bool "switch present" true (c.Core.Cluster.topo.Net.Topology.switch <> None);
  let small = Core.Cluster.create ~n:8 () in
  check_bool "no switch for one segment" true
    (small.Core.Cluster.topo.Net.Topology.switch = None)

let test_runner_validates_checksum () =
  let o =
    Core.Runner.run ~impl:Core.Cluster.User ~procs:2
      {
        Core.Runner.app_name = "mini";
        app_make = (fun dom -> Apps.Tsp.make dom Apps.Tsp.test_params);
        app_reference = lazy (Apps.Tsp.sequential Apps.Tsp.test_params);
      }
  in
  check_bool "valid" true o.Core.Runner.o_valid;
  check_bool "took time" true (o.Core.Runner.o_seconds > 0.)

let test_dedicated_sequencer_worker_count () =
  (* User_dedicated sacrifices a worker: P=4 means 3 workers + sequencer. *)
  let app =
    {
      Core.Runner.app_name = "mini";
      app_make = (fun dom -> Apps.Leq.make dom Apps.Leq.test_params);
      app_reference = lazy (Apps.Leq.sequential Apps.Leq.test_params);
    }
  in
  let o = Core.Runner.run ~impl:Core.Cluster.User_dedicated ~procs:4 app in
  check_bool "valid result with P-1 workers" true o.Core.Runner.o_valid

let test_nonblocking_ablation () =
  let rows = Core.Experiments.ablation_nonblocking () in
  let blocking = List.assoc "blocking send (ms)" rows in
  let nonblocking = List.assoc "nonblocking send (ms)" rows in
  check_bool "nonblocking send much cheaper for the sender" true
    (nonblocking < blocking /. 2.)

let () =
  Alcotest.run "core"
    [
      ( "experiments",
        [
          Alcotest.test_case "table1 orderings" `Quick test_table1_row_orderings;
          Alcotest.test_case "latency monotone" `Quick test_latency_monotone_in_size;
          Alcotest.test_case "throughput orderings" `Quick test_throughput_orderings;
          Alcotest.test_case "rpc breakdown" `Quick test_rpc_breakdown_accounts_for_gap;
          Alcotest.test_case "nonblocking ablation" `Quick test_nonblocking_ablation;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "shapes" `Quick test_cluster_shapes;
          Alcotest.test_case "runner validates" `Quick test_runner_validates_checksum;
          Alcotest.test_case "dedicated workers" `Quick test_dedicated_sequencer_worker_count;
        ] );
    ]
