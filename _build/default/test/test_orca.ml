open Sim
open Machine
open Net

let machine_config =
  {
    Mach.ctx_warm = Time.us 60;
    ctx_cold_idle = Time.us 70;
    ctx_cold_preempt = Time.us 110;
    interrupt_entry = Time.us 10;
    syscall_base = Time.us 25;
    trap_cost = Time.us 6;
    lock_cost = Time.us 1;
    reg_windows = 6;
  }

type Payload.t += Num of int | Hist of int list

let num = function Num n -> n | _ -> Alcotest.fail "expected Num"

(* Builds machines, network, flips, the chosen backend stack and a domain. *)
let make_domain ?(n = 2) kind =
  let eng = Engine.create () in
  let machines =
    Array.init n (fun i -> Mach.create eng ~id:i ~name:(Printf.sprintf "m%d" i) machine_config)
  in
  let topo = Topology.build eng ~machines () in
  let flips =
    Array.mapi (fun i _ -> Flip.Flip_iface.create machines.(i) topo.Topology.nics.(i)) machines
  in
  let backends =
    match kind with
    | `Kernel -> Orca.Backend.kernel_stack flips ()
    | `User -> Orca.Backend.user_stack flips ()
  in
  (eng, topo, Orca.Rts.create_domain backends)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let both name f =
  [
    Alcotest.test_case (name ^ " [kernel]") `Quick (fun () -> f `Kernel);
    Alcotest.test_case (name ^ " [user]") `Quick (fun () -> f `User);
  ]

(* A replicated integer cell with read/add ops. *)
let int_cell dom placement =
  let od = Orca.Rts.declare dom ~name:"cell" ~placement ~init:(fun ~rank:_ -> ref 0) in
  let read =
    Orca.Rts.defop od ~name:"read" ~kind:`Read (fun st _ -> Num !st)
  in
  let add =
    Orca.Rts.defop od ~name:"add" ~kind:`Write (fun st arg ->
        st := !st + num arg;
        Num !st)
  in
  (od, read, add)

let test_replicated_read_is_local kind =
  let eng, topo, dom = make_domain ~n:2 kind in
  let _od, read, add = int_cell dom Orca.Rts.Replicated in
  let got = ref (-1) in
  ignore
    (Orca.Rts.spawn dom ~rank:0 "p0" (fun ~rank:_ ->
         ignore (Orca.Rts.invoke add (Num 5));
         got := num (Orca.Rts.invoke read Payload.Empty)));
  Engine.run eng;
  check_int "read own write" 5 !got;
  let bytes_after_write = Topology.total_bytes topo in
  (* Reads must add no traffic: re-run a read-only phase. *)
  ignore
    (Orca.Rts.spawn dom ~rank:1 "p1" (fun ~rank:_ ->
         for _ = 1 to 10 do
           ignore (Orca.Rts.invoke read Payload.Empty)
         done));
  Engine.run eng;
  check_int "reads are local" bytes_after_write (Topology.total_bytes topo)

let test_replicated_write_reaches_all kind =
  let eng, _topo, dom = make_domain ~n:4 kind in
  let _od, read, add = int_cell dom Orca.Rts.Replicated in
  let got = Array.make 4 (-1) in
  ignore
    (Orca.Rts.spawn dom ~rank:0 "writer" (fun ~rank:_ ->
         ignore (Orca.Rts.invoke add (Num 3));
         ignore (Orca.Rts.invoke add (Num 4))));
  for r = 1 to 3 do
    ignore
      (Orca.Rts.spawn dom ~rank:r "reader" (fun ~rank ->
           (* Poll (test only) until both writes are visible. *)
           let v = ref 0 in
           while !v < 7 do
             Thread.sleep (Time.ms 1);
             v := num (Orca.Rts.invoke read Payload.Empty)
           done;
           got.(rank) <- !v))
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "all replicas converge" [ 7; 7; 7 ] (Array.to_list (Array.sub got 1 3))

let test_owned_remote_invocation kind =
  let eng, _topo, dom = make_domain ~n:2 kind in
  let _od, read, add = int_cell dom (Orca.Rts.Owned 1) in
  let got = ref (-1) in
  ignore
    (Orca.Rts.spawn dom ~rank:0 "client" (fun ~rank:_ ->
         ignore (Orca.Rts.invoke add (Num 20));
         ignore (Orca.Rts.invoke add (Num 22));
         got := num (Orca.Rts.invoke read Payload.Empty)));
  Engine.run eng;
  check_int "remote ops applied" 42 !got;
  check_int "two writes one read over rpc" 3 (Orca.Rts.remote_invocations dom);
  check_int "no broadcasts" 0 (Orca.Rts.broadcasts dom)

(* A bounded buffer with guarded put/get — the paper's RL/SOR exchange
   pattern. *)
let buffer dom ~owner ~capacity =
  let od =
    Orca.Rts.declare dom ~name:"buf" ~placement:(Orca.Rts.Owned owner)
      ~init:(fun ~rank:_ -> Queue.create ())
  in
  let put =
    Orca.Rts.defop od ~name:"put" ~kind:`Write
      ~guard:(fun q _ -> Queue.length q < capacity)
      (fun q arg ->
        Queue.push (num arg) q;
        Payload.Empty)
  in
  let get =
    Orca.Rts.defop od ~name:"get" ~kind:`Write
      ~guard:(fun q _ -> not (Queue.is_empty q))
      (fun q _ -> Num (Queue.pop q))
  in
  (od, put, get)

let test_guarded_buffer_producer_consumer kind =
  let eng, _topo, dom = make_domain ~n:2 kind in
  let _od, put, get = buffer dom ~owner:0 ~capacity:2 in
  let got = ref [] in
  let n = 6 in
  (* Consumer on the owner's machine, producer remote: gets block until
     puts arrive; puts block when the buffer is full. *)
  ignore
    (Orca.Rts.spawn dom ~rank:0 "consumer" (fun ~rank:_ ->
         for _ = 1 to n do
           got := num (Orca.Rts.invoke get Payload.Empty) :: !got
         done));
  ignore
    (Orca.Rts.spawn dom ~rank:1 "producer" (fun ~rank:_ ->
         for i = 1 to n do
           ignore (Orca.Rts.invoke put (Num i))
         done));
  Engine.run eng;
  Alcotest.(check (list int)) "fifo through guarded buffer"
    (List.init n (fun i -> i + 1))
    (List.rev !got);
  check_bool "continuations were used" true (Orca.Rts.parked_peak dom >= 1)

let test_guard_blocks_until_satisfied kind =
  let eng, _topo, dom = make_domain ~n:2 kind in
  let _od, put, get = buffer dom ~owner:1 ~capacity:8 in
  let got_at = ref 0 and got = ref (-1) in
  ignore
    (Orca.Rts.spawn dom ~rank:0 "consumer" (fun ~rank:_ ->
         got := num (Orca.Rts.invoke get Payload.Empty);
         got_at := Engine.now eng));
  ignore
    (Orca.Rts.spawn dom ~rank:1 "producer" (fun ~rank:_ ->
         Thread.sleep (Time.ms 50);
         ignore (Orca.Rts.invoke put (Num 9))));
  Engine.run eng;
  check_int "value" 9 !got;
  check_bool "waited for the guard" true (!got_at > Time.ms 50)

(* Sequential consistency: concurrent writers append to a replicated
   history; every replica must observe the same final sequence. *)
let test_sequential_consistency kind =
  let n = 4 in
  let eng, _topo, dom = make_domain ~n kind in
  let od =
    Orca.Rts.declare dom ~name:"hist" ~placement:Orca.Rts.Replicated
      ~init:(fun ~rank:_ -> ref [])
  in
  let append =
    Orca.Rts.defop od ~name:"append" ~kind:`Write (fun st arg ->
        st := num arg :: !st;
        Payload.Empty)
  in
  let snapshot =
    Orca.Rts.defop od ~name:"snapshot" ~kind:`Read (fun st _ -> Hist !st)
  in
  let per_writer = 5 in
  let finished = ref 0 in
  for r = 0 to n - 1 do
    ignore
      (Orca.Rts.spawn dom ~rank:r "writer" (fun ~rank ->
           for i = 1 to per_writer do
             ignore (Orca.Rts.invoke append (Num ((100 * rank) + i)))
           done;
           incr finished))
  done;
  Engine.run eng;
  check_int "all writers done" n !finished;
  let views = ref [] in
  for r = 0 to n - 1 do
    ignore
      (Orca.Rts.spawn dom ~rank:r "reader" (fun ~rank:_ ->
           match Orca.Rts.invoke snapshot Payload.Empty with
           | Hist h -> views := h :: !views
           | _ -> ()))
  done;
  Engine.run eng;
  (match !views with
   | v0 :: rest ->
     check_int "complete history" (n * per_writer) (List.length v0);
     List.iter
       (fun v -> Alcotest.(check (list int)) "identical order at every replica" v0 v)
       rest
   | [] -> Alcotest.fail "no views collected")

let test_nonblocking_write kind =
  let eng, _topo, dom = make_domain ~n:2 kind in
  let _od, read, add = int_cell dom Orca.Rts.Replicated in
  let returned_at = ref 0 and seen = ref (-1) in
  (* Rank 1: not the sequencer's machine, so the writer's return time is
     not inflated by sequencer work. *)
  ignore
    (Orca.Rts.spawn dom ~rank:1 "writer" (fun ~rank:_ ->
         ignore (Orca.Rts.invoke ~nonblocking:true add (Num 5));
         returned_at := Engine.now eng));
  ignore
    (Orca.Rts.spawn dom ~rank:0 "reader" (fun ~rank:_ ->
         let v = ref 0 in
         while !v <> 5 do
           Thread.sleep (Time.ms 1);
           v := num (Orca.Rts.invoke read Payload.Empty)
         done;
         seen := !v));
  Engine.run eng;
  check_int "applied everywhere" 5 !seen;
  match kind with
  | `User -> check_bool "returned before ordering round trip" true (!returned_at < Time.ms 1)
  | `Kernel -> check_bool "kernel degrades to blocking" true (!returned_at >= Time.us 500)

let test_rts_dispatch_errors kind =
  let eng, _topo, dom = make_domain ~n:2 kind in
  let raised = ref false in
  ignore
    (Orca.Rts.spawn dom ~rank:0 "p" (fun ~rank:_ ->
         let od =
           Orca.Rts.declare dom ~name:"x" ~placement:(Orca.Rts.Owned 1)
             ~init:(fun ~rank:_ -> ())
         in
         let op = Orca.Rts.defop od ~name:"op" ~kind:`Read (fun _ _ -> Payload.Empty) in
         ignore op;
         (* Invoking on the non-owner without ops is fine; invoking an
            unknown op id is a program error the RTS rejects. *)
         match Orca.Rts.invoke op Payload.Empty with
         | _ -> raised := false
         | exception Invalid_argument _ -> raised := true));
  Engine.run eng;
  (* The remote replica exists on rank 1 (owner), so this succeeds. *)
  check_bool "owned invocation from non-owner works" true (not !raised)

(* ------------------------------------------------------------------ *)
(* Adaptive placement *)

let adaptive_cell dom ~owner =
  let od =
    Orca.Rts.declare dom ~name:"acell"
      ~placement:(Orca.Rts.Adaptive { owner; state_bytes = 128 })
      ~init:(fun ~rank:_ -> ref 0)
  in
  let read = Orca.Rts.defop od ~name:"read" ~kind:`Read (fun st _ -> Num !st) in
  let add =
    Orca.Rts.defop od ~name:"add" ~kind:`Write (fun st arg ->
        st := !st + num arg;
        Num !st)
  in
  (od, read, add)

let test_adaptive_migrates_to_heavy_user kind =
  let eng, _topo, dom = make_domain ~n:2 kind in
  let od, _read, add = adaptive_cell dom ~owner:0 in
  let n = 120 in
  ignore
    (Orca.Rts.spawn dom ~rank:1 "heavy" (fun ~rank:_ ->
         for _ = 1 to n do
           ignore (Orca.Rts.invoke add (Num 1))
         done));
  Engine.run eng;
  check_int "all ops applied" n !(Orca.Rts.peek od ~rank:(Option.get (Orca.Rts.owner_of od)));
  Alcotest.(check (option int)) "moved to the heavy user" (Some 1) (Orca.Rts.owner_of od);
  check_bool "at least one migration" true (Orca.Rts.migrations dom >= 1)

let test_adaptive_stays_without_skew kind =
  let eng, _topo, dom = make_domain ~n:2 kind in
  let od, _read, add = adaptive_cell dom ~owner:0 in
  for r = 0 to 1 do
    ignore
      (Orca.Rts.spawn dom ~rank:r "even" (fun ~rank:_ ->
           for _ = 1 to 60 do
             ignore (Orca.Rts.invoke add (Num 1))
           done))
  done;
  Engine.run eng;
  check_int "all ops applied" 120 !(Orca.Rts.peek od ~rank:(Option.get (Orca.Rts.owner_of od)));
  check_int "no migration without dominance" 0 (Orca.Rts.migrations dom)

let test_adaptive_follows_phases kind =
  let eng, _topo, dom = make_domain ~n:2 kind in
  let od, _read, add = adaptive_cell dom ~owner:0 in
  (* Phase 1: rank 1 dominates; phase 2: rank 0 dominates again. *)
  ignore
    (Orca.Rts.spawn dom ~rank:1 "phase1" (fun ~rank:_ ->
         for _ = 1 to 100 do
           ignore (Orca.Rts.invoke add (Num 1))
         done));
  ignore
    (Orca.Rts.spawn dom ~rank:0 "phase2" (fun ~rank:_ ->
         Thread.sleep (Time.sec 2);
         for _ = 1 to 400 do
           ignore (Orca.Rts.invoke add (Num 1))
         done));
  Engine.run eng;
  check_int "all ops applied" 500 !(Orca.Rts.peek od ~rank:(Option.get (Orca.Rts.owner_of od)));
  Alcotest.(check (option int)) "back with rank 0" (Some 0) (Orca.Rts.owner_of od);
  check_bool "migrated at least twice" true (Orca.Rts.migrations dom >= 2)

let test_adaptive_concurrent_exactly_once kind =
  let eng, _topo, dom = make_domain ~n:3 kind in
  let od, _read, add = adaptive_cell dom ~owner:0 in
  let per = 50 in
  for r = 0 to 2 do
    ignore
      (Orca.Rts.spawn dom ~rank:r "hammer" (fun ~rank ->
           for i = 1 to per do
             ignore (Orca.Rts.invoke add (Num ((rank * 0) + 1)));
             if i mod 10 = 0 then Thread.sleep (Time.us 200)
           done))
  done;
  Engine.run eng;
  (* Every increment applied exactly once, across any number of
     migrations and wrong-owner retries. *)
  check_int "exactly once" (3 * per)
    !(Orca.Rts.peek od ~rank:(Option.get (Orca.Rts.owner_of od)))

let () =
  Alcotest.run "orca"
    [
      ("replicated read", both "local read" test_replicated_read_is_local);
      ("replicated write", both "reaches all" test_replicated_write_reaches_all);
      ("owned", both "remote invocation" test_owned_remote_invocation);
      ("guards", both "producer consumer" test_guarded_buffer_producer_consumer);
      ("guard wait", both "blocks until satisfied" test_guard_blocks_until_satisfied);
      ("consistency", both "sequential consistency" test_sequential_consistency);
      ("nonblocking", both "nonblocking write" test_nonblocking_write);
      ("errors", both "dispatch" test_rts_dispatch_errors);
      ("adaptive", both "migrates to heavy user" test_adaptive_migrates_to_heavy_user);
      ("adaptive2", both "no migration without skew" test_adaptive_stays_without_skew);
      ("adaptive3", both "follows phases" test_adaptive_follows_phases);
      ("adaptive4", both "concurrent exactly-once" test_adaptive_concurrent_exactly_once);
    ]
