open Sim
open Machine
open Net

let machine_config =
  {
    Mach.ctx_warm = Time.us 60;
    ctx_cold_idle = Time.us 70;
    ctx_cold_preempt = Time.us 110;
    interrupt_entry = Time.us 10;
    syscall_base = Time.us 25;
    trap_cost = Time.us 6;
    lock_cost = Time.us 1;
    reg_windows = 6;
  }

let pool e n =
  Array.init n (fun i -> Mach.create e ~id:i ~name:(Printf.sprintf "m%d" i) machine_config)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Frame *)

let test_frame_filter () =
  let f = Frame.make ~src:1 ~dest:(Frame.Unicast 2) ~bytes:10 Payload.Empty in
  check_bool "for dest" true (Frame.is_for ~mac:2 f);
  check_bool "not for others" false (Frame.is_for ~mac:3 f);
  check_bool "not for sender" false (Frame.is_for ~mac:1 f);
  let m = Frame.make ~src:1 ~dest:Frame.Multicast ~bytes:10 Payload.Empty in
  check_bool "mcast for all" true (Frame.is_for ~mac:7 m);
  check_bool "mcast not sender" false (Frame.is_for ~mac:1 m)

(* ------------------------------------------------------------------ *)
(* Segment *)

let test_wire_time () =
  let e = Engine.create () in
  let seg = Segment.create e "s" in
  let f bytes = Frame.make ~src:0 ~dest:Frame.Broadcast ~bytes Payload.Empty in
  (* (payload+framing) * 800ns, payload padded to 46. *)
  check_int "empty frame" (Time.us_f 67.2) (Segment.wire_time seg (f 0));
  check_int "100B" (Time.us_f 110.4) (Segment.wire_time seg (f 100));
  check_int "1500B" (Time.us_f 1230.4) (Segment.wire_time seg (f 1500))

let test_segment_delivery_timing () =
  let e = Engine.create () in
  let seg = Segment.create e "s" in
  let got = ref [] in
  let _rx =
    Segment.attach seg ~name:"rx"
      ~accepts:(fun f -> Frame.is_for ~mac:1 f)
      (fun f -> got := (Engine.now e, f.Frame.bytes) :: !got)
  in
  let tx = Segment.attach seg ~name:"tx" ~accepts:(fun _ -> false) (fun _ -> ()) in
  let frame b = Frame.make ~src:0 ~dest:(Frame.Unicast 1) ~bytes:b Payload.Empty in
  ignore (Engine.at e 0 (fun () ->
      Segment.transmit seg ~from:tx (frame 100);
      Segment.transmit seg ~from:tx (frame 200)));
  Engine.run e;
  (* First: (100+38)*0.8 = 110.4us.  Second: +(200+38)*0.8 = 190.4us. *)
  Alcotest.(check (list (pair int int)))
    "serialized deliveries"
    [ (Time.us_f 110.4, 100); (Time.us_f 300.8, 200) ]
    (List.rev !got)

let test_segment_sender_excluded () =
  let e = Engine.create () in
  let seg = Segment.create e "s" in
  let self_heard = ref false and other_heard = ref false in
  let a = Segment.attach seg ~name:"a" ~accepts:(fun _ -> true) (fun _ -> self_heard := true) in
  let _b = Segment.attach seg ~name:"b" ~accepts:(fun _ -> true) (fun _ -> other_heard := true) in
  Segment.transmit seg ~from:a (Frame.make ~src:0 ~dest:Frame.Broadcast ~bytes:1 Payload.Empty);
  Engine.run e;
  check_bool "sender excluded" false !self_heard;
  check_bool "other heard" true !other_heard

let test_segment_stats () =
  let e = Engine.create () in
  let seg = Segment.create e "s" in
  let tx = Segment.attach seg ~name:"tx" ~accepts:(fun _ -> false) (fun _ -> ()) in
  Segment.transmit seg ~from:tx (Frame.make ~src:0 ~dest:Frame.Broadcast ~bytes:500 Payload.Empty);
  Segment.transmit seg ~from:tx (Frame.make ~src:0 ~dest:Frame.Broadcast ~bytes:300 Payload.Empty);
  Engine.run e;
  check_int "bytes" 800 (Segment.bytes_carried seg);
  check_int "frames" 2 (Segment.frames_carried seg);
  check_bool "busy time positive" true (Segment.busy_time seg > 0)

(* ------------------------------------------------------------------ *)
(* Nic *)

let test_nic_rx_interrupt_cost () =
  let e = Engine.create () in
  let machines = pool e 2 in
  let seg = Segment.create e "s" in
  let nic0 = Nic.create machines.(0) seg in
  let nic1 = Nic.create machines.(1) seg in
  let got_at = ref (-1) in
  Nic.set_rx nic1 (fun _ -> got_at := Engine.now e);
  Nic.send nic0 (Frame.make ~src:0 ~dest:(Frame.Unicast 1) ~bytes:100 Payload.Empty);
  Engine.run e;
  (* wire 110.4us + interrupt entry 10 + rx_base 50 + 100*50ns = 175.4us *)
  check_int "rx handler time" (Time.us_f 175.4) !got_at;
  check_int "received count" 1 (Nic.frames_received nic1);
  check_int "sent count" 1 (Nic.frames_sent nic0)

let test_nic_ignores_other_dest () =
  let e = Engine.create () in
  let machines = pool e 3 in
  let seg = Segment.create e "s" in
  let nic0 = Nic.create machines.(0) seg in
  let _nic1 = Nic.create machines.(1) seg in
  let nic2 = Nic.create machines.(2) seg in
  let got = ref 0 in
  Nic.set_rx nic2 (fun _ -> incr got);
  Nic.send nic0 (Frame.make ~src:0 ~dest:(Frame.Unicast 1) ~bytes:10 Payload.Empty);
  Engine.run e;
  check_int "not delivered to 2" 0 !got

(* ------------------------------------------------------------------ *)
(* Switch / Topology *)

let build_pool n =
  let e = Engine.create () in
  let machines = pool e n in
  let topo = Topology.build e ~machines () in
  (e, machines, topo)

let test_topology_single_segment () =
  let e, _machines, topo = build_pool 8 in
  ignore e;
  check_int "one segment" 1 (Array.length topo.Topology.segments);
  check_bool "no switch" true (topo.Topology.switch = None)

let test_topology_cross_segment_unicast () =
  let e, _machines, topo = build_pool 16 in
  check_int "two segments" 2 (Array.length topo.Topology.segments);
  let got = ref [] in
  Array.iteri
    (fun i nic -> Nic.set_rx nic (fun f -> got := (i, f.Frame.bytes) :: !got))
    topo.Topology.nics;
  Nic.send (Topology.nic topo 0)
    (Frame.make ~src:0 ~dest:(Frame.Unicast 12) ~bytes:64 Payload.Empty);
  Engine.run e;
  Alcotest.(check (list (pair int int))) "only m12 got it" [ (12, 64) ] !got

let test_topology_multicast_reaches_all () =
  let e, _machines, topo = build_pool 16 in
  let got = ref [] in
  Array.iteri (fun i nic -> Nic.set_rx nic (fun _ -> got := i :: !got)) topo.Topology.nics;
  Nic.send (Topology.nic topo 3)
    (Frame.make ~src:3 ~dest:Frame.Multicast ~bytes:64 Payload.Empty);
  Engine.run e;
  let receivers = List.sort_uniq compare !got in
  check_int "15 receivers" 15 (List.length receivers);
  check_bool "sender not included" false (List.mem 3 receivers)

let test_switch_learning_avoids_flood () =
  let e, _machines, topo = build_pool 16 in
  let sw = Option.get topo.Topology.switch in
  Array.iter (fun nic -> Nic.set_rx nic (fun _ -> ())) topo.Topology.nics;
  (* m12 -> m0 teaches the switch where m12 lives; m0 -> m12 then goes
     straight to segment 1 only. *)
  Nic.send (Topology.nic topo 12)
    (Frame.make ~src:12 ~dest:(Frame.Unicast 0) ~bytes:10 Payload.Empty);
  Engine.run e;
  let seg0_frames = Segment.frames_carried topo.Topology.segments.(0) in
  Nic.send (Topology.nic topo 0)
    (Frame.make ~src:0 ~dest:(Frame.Unicast 12) ~bytes:10 Payload.Empty);
  Engine.run e;
  check_int "forwarded both" 2 (Switch.frames_forwarded sw);
  (* The reply adds exactly one frame to segment 0 (its own transmission). *)
  check_int "no flood back onto seg0"
    (seg0_frames + 1)
    (Segment.frames_carried topo.Topology.segments.(0))

let test_switch_local_traffic_not_forwarded () =
  let e, _machines, topo = build_pool 16 in
  let sw = Option.get topo.Topology.switch in
  Array.iter (fun nic -> Nic.set_rx nic (fun _ -> ())) topo.Topology.nics;
  (* Teach the switch where 0 and 1 live. *)
  Nic.send (Topology.nic topo 0) (Frame.make ~src:0 ~dest:(Frame.Unicast 1) ~bytes:10 Payload.Empty);
  Nic.send (Topology.nic topo 1) (Frame.make ~src:1 ~dest:(Frame.Unicast 0) ~bytes:10 Payload.Empty);
  Engine.run e;
  let before = Switch.frames_forwarded sw in
  let seg1_before = Segment.frames_carried topo.Topology.segments.(1) in
  Nic.send (Topology.nic topo 0) (Frame.make ~src:0 ~dest:(Frame.Unicast 1) ~bytes:10 Payload.Empty);
  Engine.run e;
  check_int "local frame not forwarded" before (Switch.frames_forwarded sw);
  check_int "seg1 untouched" seg1_before (Segment.frames_carried topo.Topology.segments.(1))

let prop_multicast_delivery_count =
  QCheck.Test.make ~name:"multicast reaches n-1 stations for any pool size" ~count:30
    QCheck.(int_range 2 40)
    (fun n ->
      let e = Engine.create () in
      let machines =
        Array.init n (fun i ->
            Mach.create e ~id:i ~name:(Printf.sprintf "m%d" i) machine_config)
      in
      let topo = Topology.build e ~machines () in
      let got = ref 0 in
      Array.iter (fun nic -> Nic.set_rx nic (fun _ -> incr got)) topo.Topology.nics;
      Nic.send (Topology.nic topo 0)
        (Frame.make ~src:0 ~dest:Frame.Multicast ~bytes:32 Payload.Empty);
      Engine.run e;
      !got = n - 1)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "net"
    [
      ("frame", [ Alcotest.test_case "filter" `Quick test_frame_filter ]);
      ( "segment",
        [
          Alcotest.test_case "wire time" `Quick test_wire_time;
          Alcotest.test_case "delivery timing" `Quick test_segment_delivery_timing;
          Alcotest.test_case "sender excluded" `Quick test_segment_sender_excluded;
          Alcotest.test_case "stats" `Quick test_segment_stats;
        ] );
      ( "nic",
        [
          Alcotest.test_case "rx interrupt cost" `Quick test_nic_rx_interrupt_cost;
          Alcotest.test_case "ignores other dest" `Quick test_nic_ignores_other_dest;
        ] );
      ( "topology",
        [
          Alcotest.test_case "single segment" `Quick test_topology_single_segment;
          Alcotest.test_case "cross-segment unicast" `Quick test_topology_cross_segment_unicast;
          Alcotest.test_case "multicast reaches all" `Quick test_topology_multicast_reaches_all;
          Alcotest.test_case "switch learning" `Quick test_switch_learning_avoids_flood;
          Alcotest.test_case "local not forwarded" `Quick test_switch_local_traffic_not_forwarded;
        ]
        @ qsuite [ prop_multicast_delivery_count ] );
    ]
