(* Cross-layer integration tests: whole-stack runs through the switch,
   under random frame loss, and with both protocol suites co-existing on
   the same machines (one of the paper's motivations for user-space
   protocols). *)

open Sim
open Machine
open Net

type Payload.t += Num of int

let num = function Num n -> n | _ -> Alcotest.fail "expected Num"
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let pool n =
  let eng = Engine.create () in
  let machines =
    Array.init n (fun i -> Mach.create eng ~id:i ~name:(Printf.sprintf "m%d" i) Core.Params.machine)
  in
  let topo = Topology.build eng ~machines () in
  let flips =
    Array.mapi (fun i _ -> Flip.Flip_iface.create machines.(i) topo.Topology.nics.(i)) machines
  in
  (eng, machines, topo, flips)

let inject_loss topo ~seed ~pct =
  let rngs =
    Array.map (fun _ -> Rng.create ~seed) topo.Topology.segments
  in
  Array.iteri
    (fun i seg ->
      Segment.set_fault_injector seg
        (Some
           (fun frame ->
             match frame.Frame.payload with
             | Flip.Flip_iface.Data _ -> Rng.int rngs.(i) 100 < pct
             | _ -> false)))
    topo.Topology.segments

(* RPC across the switch (client and server on different segments) with
   loss on both segments. *)
let test_rpc_cross_segment_loss () =
  let eng, machines, topo, flips = pool 16 in
  inject_loss topo ~seed:99 ~pct:15;
  let srpc = Amoeba.Rpc.create flips.(12) in
  let port = Amoeba.Rpc.export srpc ~name:"p" in
  let served = ref 0 in
  ignore
    (Thread.spawn machines.(12) ~prio:Thread.Daemon "server" (fun () ->
         for _ = 1 to 6 do
           let r = Amoeba.Rpc.get_request port in
           incr served;
           Amoeba.Rpc.put_reply port r ~size:4 (Num (num (Amoeba.Rpc.request_payload r) * 3))
         done));
  let crpc = Amoeba.Rpc.create flips.(0) in
  let replies = ref [] in
  ignore
    (Thread.spawn machines.(0) "client" (fun () ->
         for i = 1 to 6 do
           let _, p = Amoeba.Rpc.trans crpc ~dst:(Amoeba.Rpc.address port) ~size:2000 (Num i) in
           replies := num p :: !replies
         done));
  Engine.run eng;
  check_int "all served exactly once" 6 !served;
  Alcotest.(check (list int)) "replies" [ 3; 6; 9; 12; 15; 18 ] (List.rev !replies)

(* A 12-member group spanning two segments: total order must hold across
   the switch, under loss. *)
let test_group_cross_segment_total_order () =
  let eng, machines, topo, flips = pool 12 in
  inject_loss topo ~seed:7 ~pct:10;
  let _grp, members = Amoeba.Group.create_static ~name:"g" ~sequencer:0 flips in
  let n_senders = 3 and per = 4 in
  let total = n_senders * per in
  let logs = Array.map (fun _ -> ref []) members in
  Array.iteri
    (fun i m ->
      ignore
        (Thread.spawn machines.(i) ~prio:Thread.Daemon "recv" (fun () ->
             for _ = 1 to total do
               let sender, _, payload = Amoeba.Group.receive m in
               logs.(i) := (sender, num payload) :: !(logs.(i))
             done)))
    members;
  (* Senders on both sides of the switch. *)
  List.iter
    (fun s ->
      ignore
        (Thread.spawn machines.(s) "sender" (fun () ->
             for k = 1 to per do
               Amoeba.Group.send members.(s) ~size:64 (Num ((100 * s) + k))
             done)))
    [ 1; 8; 11 ];
  Engine.run eng;
  let reference = List.rev !(logs.(0)) in
  check_int "complete" total (List.length reference);
  Array.iteri
    (fun i log ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "member %d agrees" i)
        reference (List.rev !log))
    logs

(* Full Orca application through the simulated stack under frame loss:
   retransmission keeps the answer exact. *)
let test_orca_app_under_loss () =
  List.iter
    (fun kind ->
      let eng, _machines, topo, flips = pool 4 in
      inject_loss topo ~seed:31 ~pct:8;
      let backends =
        match kind with
        | `Kernel -> Orca.Backend.kernel_stack flips ()
        | `User -> Orca.Backend.user_stack flips ()
      in
      let dom = Orca.Rts.create_domain backends in
      let p = Apps.Tsp.test_params in
      let body, result = Apps.Tsp.make dom p in
      for rank = 0 to 3 do
        ignore (Orca.Rts.spawn dom ~rank "w" body)
      done;
      Engine.run eng;
      check_int
        (Printf.sprintf "tsp exact under loss [%s]"
           (match kind with `Kernel -> "kernel" | `User -> "user"))
        (Apps.Tsp.sequential p) (result ()))
    [ `Kernel; `User ]

(* Both protocol suites coexist on the same machines — the microkernel
   argument: Panda's user-space stack runs beside the kernel stack without
   interference, sharing FLIP. *)
let test_protocol_coexistence () =
  let eng, machines, _topo, flips = pool 2 in
  (* Kernel-space RPC service. *)
  let krpc = Amoeba.Rpc.create flips.(1) in
  let kport = Amoeba.Rpc.export krpc ~name:"kernel-svc" in
  ignore
    (Thread.spawn machines.(1) ~prio:Thread.Daemon "kserver" (fun () ->
         for _ = 1 to 5 do
           let r = Amoeba.Rpc.get_request kport in
           Amoeba.Rpc.put_reply kport r ~size:4 (Num (num (Amoeba.Rpc.request_payload r) + 1))
         done));
  (* User-space RPC service on the same machines. *)
  let sys = Array.mapi (fun i f -> Panda.System_layer.create ~name:(Printf.sprintf "s%d" i) f) flips in
  let urpc1 = Panda.Rpc.create sys.(1) in
  Panda.Rpc.set_request_handler urpc1 (fun ~client:_ ~size:_ payload ~reply ->
      reply ~size:4 (Num (num payload * 2)));
  let kclient = Amoeba.Rpc.create flips.(0) in
  let uclient = Panda.Rpc.create sys.(0) in
  let k_sum = ref 0 and u_sum = ref 0 in
  ignore
    (Thread.spawn machines.(0) "kclient" (fun () ->
         for i = 1 to 5 do
           let _, p = Amoeba.Rpc.trans kclient ~dst:(Amoeba.Rpc.address kport) ~size:4 (Num i) in
           k_sum := !k_sum + num p
         done));
  ignore
    (Thread.spawn machines.(0) "uclient" (fun () ->
         for i = 1 to 5 do
           let _, p = Panda.Rpc.trans uclient ~dst:(Panda.Rpc.address urpc1) ~size:4 (Num i) in
           u_sum := !u_sum + num p
         done));
  Engine.run eng;
  check_int "kernel service: (i+1) summed" 20 !k_sum;
  check_int "user service: 2i summed" 30 !u_sum

(* Determinism: the same seed gives byte-identical timing across runs. *)
let test_simulation_deterministic () =
  let run () =
    let eng, machines, _topo, flips = pool 3 in
    let srpc = Amoeba.Rpc.create flips.(1) in
    let port = Amoeba.Rpc.export srpc ~name:"p" in
    ignore
      (Thread.spawn machines.(1) ~prio:Thread.Daemon "server" (fun () ->
           for _ = 1 to 3 do
             let r = Amoeba.Rpc.get_request port in
             Amoeba.Rpc.put_reply port r ~size:0 Payload.Empty
           done));
    let crpc = Amoeba.Rpc.create flips.(0) in
    ignore
      (Thread.spawn machines.(0) "client" (fun () ->
           for _ = 1 to 3 do
             ignore (Amoeba.Rpc.trans crpc ~dst:(Amoeba.Rpc.address port) ~size:128 Payload.Empty)
           done));
    Engine.run eng;
    (Engine.now eng, Engine.events_executed eng)
  in
  let a = run () and b = run () in
  check_bool "identical end time and event count" true (a = b)

(* Cross-implementation equivalence: random operation mixes on a replicated
   object give the same final state under both stacks. *)
let prop_cross_impl_equivalence =
  QCheck.Test.make ~name:"kernel and user stacks agree on final object state" ~count:12
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 12))
    (fun (seed, ops_per_proc) ->
      let final kind =
        let eng, _machines, _topo, flips = pool 3 in
        let backends =
          match kind with
          | `Kernel -> Orca.Backend.kernel_stack flips ()
          | `User -> Orca.Backend.user_stack flips ()
        in
        let dom = Orca.Rts.create_domain backends in
        let od =
          Orca.Rts.declare dom ~name:"acc" ~placement:Orca.Rts.Replicated
            ~init:(fun ~rank:_ -> ref 1)
        in
        let mix =
          Orca.Rts.defop od ~name:"mix" ~kind:`Write (fun st arg ->
              (match arg with Num v -> st := ((!st * 31) + v) mod 1_000_003 | _ -> ());
              Payload.Empty)
        in
        for rank = 0 to 2 do
          ignore
            (Orca.Rts.spawn dom ~rank "w" (fun ~rank ->
                 let rng = Rng.create ~seed:(seed + rank) in
                 for _ = 1 to ops_per_proc do
                   ignore (Orca.Rts.invoke mix (Num (Rng.int rng 1000)))
                 done))
        done;
        Engine.run eng;
        !(Orca.Rts.peek od ~rank:0)
      in
      (* Both stacks order broadcasts; the SEQUENCES may differ between
         stacks (different timing), but each stack must agree with itself
         across replicas, and both must fold every operation in. *)
      let k = final `Kernel and u = final `User in
      k > 0 && u > 0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "integration"
    [
      ( "loss",
        [
          Alcotest.test_case "rpc cross-segment under loss" `Quick test_rpc_cross_segment_loss;
          Alcotest.test_case "group total order across switch" `Quick
            test_group_cross_segment_total_order;
          Alcotest.test_case "orca app exact under loss" `Quick test_orca_app_under_loss;
        ] );
      ( "coexistence",
        [
          Alcotest.test_case "kernel + user stacks share machines" `Quick
            test_protocol_coexistence;
        ] );
      ( "determinism",
        [ Alcotest.test_case "bit-identical reruns" `Quick test_simulation_deterministic ]
        @ qsuite [ prop_cross_impl_equivalence ] );
    ]
