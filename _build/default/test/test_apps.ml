(* End-to-end application tests: each app, run through the full simulated
   stack on both protocol implementations, must reproduce the host-side
   sequential result exactly. *)

open Sim
open Machine
open Net

let machine_config = Core.Params.machine

let make_domain ?(extra = false) n kind =
  let eng = Engine.create () in
  let total = n + if extra then 1 else 0 in
  let machines =
    Array.init total (fun i -> Mach.create eng ~id:i ~name:(Printf.sprintf "m%d" i) machine_config)
  in
  let topo = Topology.build eng ~machines () in
  let flips =
    Array.mapi (fun i _ -> Flip.Flip_iface.create machines.(i) topo.Topology.nics.(i)) machines
  in
  let worker_flips = Array.sub flips 0 n in
  let backends =
    match kind with
    | `Kernel -> Orca.Backend.kernel_stack worker_flips ()
    | `User -> Orca.Backend.user_stack worker_flips ()
    | `User_dedicated ->
      Orca.Backend.user_stack worker_flips ~dedicated_sequencer:flips.(n) ()
  in
  (eng, Orca.Rts.create_domain backends)

let run_app kind ~procs make =
  let extra = kind = `User_dedicated in
  let eng, dom = make_domain ~extra procs kind in
  let body, result = make dom in
  for rank = 0 to procs - 1 do
    ignore (Orca.Rts.spawn dom ~rank (Printf.sprintf "p%d" rank) body)
  done;
  Engine.run eng;
  (result (), Engine.now eng)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let impls = [ ("kernel", `Kernel); ("user", `User) ]

let app_cases name ~seq ~make ~procs =
  List.concat_map
    (fun (label, kind) ->
      List.map
        (fun p ->
          Alcotest.test_case (Printf.sprintf "%s P=%d [%s]" name p label) `Quick
            (fun () ->
              let result, _ = run_app kind ~procs:p make in
              check_int "matches sequential" seq result))
        procs)
    impls

let tsp_cases =
  let p = Apps.Tsp.test_params in
  app_cases "tsp" ~seq:(Apps.Tsp.sequential p)
    ~make:(fun dom -> Apps.Tsp.make dom p)
    ~procs:[ 1; 2; 4 ]

let asp_cases =
  let p = Apps.Asp.test_params in
  app_cases "asp" ~seq:(Apps.Asp.sequential p)
    ~make:(fun dom -> Apps.Asp.make dom p)
    ~procs:[ 1; 3; 4 ]

let ab_cases =
  let p = Apps.Ab.test_params in
  app_cases "ab" ~seq:(Apps.Ab.sequential p)
    ~make:(fun dom -> Apps.Ab.make dom p)
    ~procs:[ 1; 2; 4 ]

let rl_cases =
  let p = Apps.Rl.test_params in
  app_cases "rl" ~seq:(Apps.Rl.sequential p)
    ~make:(fun dom -> Apps.Rl.make dom p)
    ~procs:[ 1; 2; 4 ]

let sor_cases =
  let p = Apps.Sor.test_params in
  app_cases "sor" ~seq:(Apps.Sor.sequential p)
    ~make:(fun dom -> Apps.Sor.make dom p)
    ~procs:[ 1; 2; 4 ]

let leq_cases =
  let p = Apps.Leq.test_params in
  app_cases "leq" ~seq:(Apps.Leq.sequential p)
    ~make:(fun dom -> Apps.Leq.make dom p)
    ~procs:[ 1; 2; 4 ]

(* The dedicated-sequencer variant must also compute correct results. *)
let test_leq_dedicated () =
  let p = Apps.Leq.test_params in
  let result, _ = run_app `User_dedicated ~procs:2 (fun dom -> Apps.Leq.make dom p) in
  check_int "dedicated matches sequential" (Apps.Leq.sequential p) result

(* TSP parallel runs may find the optimum along different search paths but
   must end at the same optimal tour. *)
let test_tsp_superlinear_is_possible () =
  let p = Apps.Tsp.test_params in
  check_bool "optimum below greedy" true
    (Apps.Tsp.sequential p <= Apps.Tsp.jobs_of p * 100)

let test_decode_job_distinct () =
  let p = Apps.Tsp.test_params in
  let seen = Hashtbl.create 64 in
  let jobs = Apps.Tsp.jobs_of p in
  for _k = 0 to jobs - 1 do
    ()
  done;
  (* jobs_of counts (n-1)(n-2)... prefixes *)
  check_int "job count" ((p.Apps.Tsp.n_cities - 1) * (p.Apps.Tsp.n_cities - 2)) jobs;
  ignore seen

(* Workload generators are deterministic. *)
let test_workload_deterministic () =
  let a = Apps.Workload.dist_matrix ~seed:5 ~n:8 ~lo:1 ~hi:50 in
  let b = Apps.Workload.dist_matrix ~seed:5 ~n:8 ~lo:1 ~hi:50 in
  check_bool "same matrices" true (a = b);
  check_bool "symmetric" true
    (Array.for_all Fun.id (Array.init 8 (fun i -> Array.for_all Fun.id (Array.init 8 (fun j -> a.(i).(j) = a.(j).(i))))))

let test_block_range_covers () =
  List.iter
    (fun (n, parts) ->
      let total = ref 0 in
      for rank = 0 to parts - 1 do
        let lo, hi = Apps.Workload.block_range ~n ~parts ~rank in
        total := !total + (hi - lo);
        check_bool "ordered" true (lo <= hi)
      done;
      check_int (Printf.sprintf "covers n=%d parts=%d" n parts) n !total)
    [ (10, 3); (32, 32); (7, 8); (100, 16) ]

(* Exchange buffers respect iteration tags under both backends. *)
let test_exchange_orders_iterations () =
  List.iter
    (fun (_, kind) ->
      let eng, dom = make_domain 2 kind in
      let ex = Apps.Exchange.create dom ~name:"x" ~row_bytes:64 in
      let got = ref [] in
      ignore
        (Orca.Rts.spawn dom ~rank:0 "producer" (fun ~rank ->
             for iter = 1 to 3 do
               Apps.Exchange.put ex ~rank ~dir:`Down ~iter (Apps.Workload.Int_v (10 * iter))
             done));
      ignore
        (Orca.Rts.spawn dom ~rank:1 "consumer" (fun ~rank:_ ->
             (* Fetch out of order: tags must match regardless. *)
             List.iter
               (fun iter ->
                 match Apps.Exchange.get ex ~owner:0 ~dir:`Down ~iter with
                 | Apps.Workload.Int_v v -> got := v :: !got
                 | _ -> ())
               [ 2; 1; 3 ]));
      Engine.run eng;
      Alcotest.(check (list int)) "tagged gets" [ 20; 10; 30 ] (List.rev !got))
    impls

let test_convergence_votes () =
  List.iter
    (fun (_, kind) ->
      let eng, dom = make_domain 3 kind in
      let conv = Apps.Convergence.make dom ~name:"c" in
      let outcomes = ref [] in
      for rank = 0 to 2 do
        ignore
          (Orca.Rts.spawn dom ~rank "voter" (fun ~rank ->
               (* Round 1: only rank 1 changed -> continue.  Round 2:
                  nobody changed -> stop. *)
               let r1 = Apps.Convergence.vote conv ~iter:1 ~changed:(rank = 1) in
               let r2 = Apps.Convergence.vote conv ~iter:2 ~changed:false in
               outcomes := (rank, r1, r2) :: !outcomes))
      done;
      Engine.run eng;
      List.iter
        (fun (_, r1, r2) ->
          check_bool "round1 continues" true r1;
          check_bool "round2 stops" false r2)
        !outcomes;
      check_int "all voted" 3 (List.length !outcomes))
    impls

let () =
  Alcotest.run "apps"
    [
      ("tsp", tsp_cases @ [ Alcotest.test_case "jobs" `Quick test_decode_job_distinct;
                            Alcotest.test_case "bound sanity" `Quick test_tsp_superlinear_is_possible ]);
      ("asp", asp_cases);
      ("ab", ab_cases);
      ("rl", rl_cases);
      ("sor", sor_cases);
      ("leq", leq_cases @ [ Alcotest.test_case "dedicated" `Quick test_leq_dedicated ]);
      ( "infra",
        [
          Alcotest.test_case "workload deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "block range" `Quick test_block_range_covers;
          Alcotest.test_case "exchange tags" `Quick test_exchange_orders_iterations;
          Alcotest.test_case "convergence votes" `Quick test_convergence_votes;
        ] );
    ]
