test/test_orca.mli:
