test/test_flip.mli:
