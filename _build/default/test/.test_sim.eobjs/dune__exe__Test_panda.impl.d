test/test_panda.ml: Alcotest Amoeba Array Engine Flip Flip_iface Fragment Frame List Mach Machine Net Panda Payload Printf Rng Segment Sim Thread Time Topology
