test/test_core.ml: Alcotest Apps Array Core List Net
