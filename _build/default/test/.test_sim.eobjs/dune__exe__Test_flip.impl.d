test/test_flip.ml: Address Alcotest Array Engine Flip Flip_iface Fragment Frame Fun List Mach Machine Net Nic Payload Printf QCheck QCheck_alcotest Reassembly Rng Segment Sim Time Topology
