test/test_integration.ml: Alcotest Amoeba Apps Array Core Engine Flip Frame List Mach Machine Net Orca Panda Payload Printf QCheck QCheck_alcotest Rng Segment Sim Thread Topology
