test/test_amoeba.mli:
