test/test_orca.ml: Alcotest Array Engine Flip List Mach Machine Net Option Orca Payload Printf Queue Sim Thread Time Topology
