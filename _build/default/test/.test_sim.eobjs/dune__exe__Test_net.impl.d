test/test_net.ml: Alcotest Array Engine Frame List Mach Machine Net Nic Option Payload Printf QCheck QCheck_alcotest Segment Sim Switch Time Topology
