test/test_sim.ml: Alcotest Engine Fiber Fun Heap List Mailbox QCheck QCheck_alcotest Rng Sim Stats Time
