test/test_apps.ml: Alcotest Apps Array Core Engine Flip Fun Hashtbl List Mach Machine Net Orca Printf Sim Topology
