test/test_machine.ml: Alcotest Array Cpu Engine Fun List Mach Machine Net Printf QCheck QCheck_alcotest Regwin Rng Sim Sync Thread Time
