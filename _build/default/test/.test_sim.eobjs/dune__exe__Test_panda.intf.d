test/test_panda.mli:
