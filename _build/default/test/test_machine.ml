open Sim
open Machine

(* Cost configuration with round numbers so expected times are easy to
   compute by hand. *)
let config =
  {
    Mach.ctx_warm = Time.us 60;
    ctx_cold_idle = Time.us 70;
    ctx_cold_preempt = Time.us 110;
    interrupt_entry = Time.us 10;
    syscall_base = Time.us 25;
    trap_cost = Time.us 6;
    lock_cost = Time.us 1;
    reg_windows = 6;
  }

let fixture () =
  let e = Engine.create () in
  let m = Mach.create e ~id:0 ~name:"m0" config in
  (e, m)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Regwin *)

let test_regwin_overflow () =
  let w = Regwin.create ~windows:6 in
  check_int "5 calls fit" 0 (Regwin.call w 5);
  check_int "live full" 6 (Regwin.resident w);
  check_int "6th call spills" 1 (Regwin.call w 1);
  check_int "deep calls spill each" 3 (Regwin.call w 3);
  check_int "depth" 9 (Regwin.depth w)

let test_regwin_underflow () =
  let w = Regwin.create ~windows:6 in
  ignore (Regwin.call w 7);
  (* live is 6; the first 5 returns consume resident windows, the final 2
     must reload. *)
  check_int "ret traps" 2 (Regwin.ret w 7);
  check_int "depth zero" 0 (Regwin.depth w)

let test_regwin_syscall_save () =
  let w = Regwin.create ~windows:6 in
  check_int "no spill on 5" 0 (Regwin.call w 5);
  Regwin.syscall_save w;
  check_int "only top restored" 1 (Regwin.resident w);
  check_int "every ret traps" 5 (Regwin.ret w 5)

let test_regwin_ret_below_zero () =
  let w = Regwin.create ~windows:6 in
  Alcotest.check_raises "invalid" (Invalid_argument "Regwin.ret: below frame zero")
    (fun () -> ignore (Regwin.ret w 1))

let prop_regwin_depth_consistent =
  QCheck.Test.make ~name:"regwin depth tracks calls minus rets" ~count:300
    QCheck.(list (int_range 0 10))
    (fun ns ->
      let w = Regwin.create ~windows:6 in
      let depth = ref 0 in
      List.iteri
        (fun i n ->
          if i mod 2 = 0 then begin
            ignore (Regwin.call w n);
            depth := !depth + n
          end
          else begin
            let n = min n !depth in
            ignore (Regwin.ret w n);
            depth := !depth - n
          end)
        ns;
      Regwin.depth w = !depth && Regwin.resident w >= 1 && Regwin.resident w <= 6)

(* ------------------------------------------------------------------ *)
(* Thread + Cpu timing *)

let test_compute_charges_cold_switch () =
  let e, m = fixture () in
  let done_at = ref (-1) in
  ignore
    (Thread.spawn m "a" (fun () ->
         Thread.compute (Time.us 100);
         done_at := Engine.now e));
  Engine.run e;
  check_int "cold_idle + work" (Time.us 170) !done_at

let test_back_to_back_computes_no_switch () =
  let e, m = fixture () in
  let done_at = ref (-1) in
  ignore
    (Thread.spawn m "a" (fun () ->
         Thread.compute (Time.us 100);
         Thread.compute (Time.us 100);
         done_at := Engine.now e));
  Engine.run e;
  check_int "only one switch" (Time.us 270) !done_at

let test_two_threads_serialize () =
  let e, m = fixture () in
  let a_done = ref (-1) and b_done = ref (-1) in
  ignore (Thread.spawn m "a" (fun () -> Thread.compute (Time.us 100); a_done := Engine.now e));
  ignore (Thread.spawn m "b" (fun () -> Thread.compute (Time.us 100); b_done := Engine.now e));
  Engine.run e;
  check_int "a first" (Time.us 170) !a_done;
  check_int "b queued behind a, pays cold switch" (Time.us 340) !b_done

let test_daemon_preempts_normal () =
  let e, m = fixture () in
  let a_done = ref (-1) and b_done = ref (-1) in
  ignore
    (Thread.spawn m ~prio:Thread.Normal "worker" (fun () ->
         Thread.compute (Time.us 1000);
         a_done := Engine.now e));
  ignore
    (Thread.spawn m ~prio:Thread.Daemon "daemon" (fun () ->
         Thread.sleep (Time.us 100);
         Thread.compute (Time.us 50);
         b_done := Engine.now e));
  Engine.run e;
  (* Worker: cold 70 + work; at t=100 daemon preempts (worker has done 30 of
     1000).  Daemon: cold_preempt 110 + 50 -> done 260.  Worker restarts:
     cold 70 + 970 -> 1300. *)
  check_int "daemon done" (Time.us 260) !b_done;
  check_int "worker delayed" (Time.us 1300) !a_done

let test_warm_wakeup_same_thread () =
  let e, m = fixture () in
  let mu = Sync.Mutex.create m in
  let cv = Sync.Condvar.create m in
  let done_at = ref (-1) in
  ignore
    (Thread.spawn m "a" (fun () ->
         Thread.compute (Time.us 10);
         Sync.Mutex.lock mu;
         Sync.Condvar.wait cv mu;
         Sync.Mutex.unlock mu;
         Thread.compute (Time.us 10);
         done_at := Engine.now e));
  ignore (Engine.at e (Time.us 1000) (fun () -> Sync.Condvar.signal cv));
  Engine.run e;
  (* After the signal: syscall return 25 (in Condvar.wait) happens first as
   a compute... the wait charges syscall on wake (25, warm switch 60 since
   the thread is still the last one loaded), lock costs 2us total, then the
   final compute of 10 runs with no further switch. *)
  check_bool "woke after signal" true (!done_at > Time.us 1000);
  check_bool "warm path is cheap" true (!done_at < Time.us 1200)

let test_interrupt_runs_at_cost () =
  let e, m = fixture () in
  let fired_at = ref (-1) in
  ignore
    (Engine.at e (Time.us 50) (fun () ->
         Mach.interrupt m ~name:"rx" ~cost:(Time.us 20) (fun () -> fired_at := Engine.now e)));
  Engine.run e;
  check_int "entry + cost" (Time.us 80) !fired_at

let test_interrupt_delays_compute () =
  let e, m = fixture () in
  let done_at = ref (-1) in
  ignore
    (Thread.spawn m "a" (fun () ->
         Thread.compute (Time.us 1000);
         done_at := Engine.now e));
  ignore
    (Engine.at e (Time.us 500) (fun () ->
         Mach.interrupt m ~name:"rx" ~cost:(Time.us 20) (fun () -> ())));
  Engine.run e;
  (* Worker would finish at 1070; interrupt inserts 30us of CPU, and the
     worker resumes in the same context (no extra switch). *)
  check_int "delayed by interrupt" (Time.us 1100) !done_at

let test_interrupt_does_not_clobber_context () =
  let e, m = fixture () in
  let done_at = ref (-1) in
  ignore
    (Thread.spawn m "a" (fun () ->
         Thread.compute (Time.us 100);
         (* Interrupt fires between the two computes. *)
         Thread.compute (Time.us 100);
         done_at := Engine.now e));
  ignore
    (Engine.at e (Time.us 170) (fun () ->
         Mach.interrupt m ~name:"rx" ~cost:(Time.us 20) (fun () -> ())));
  Engine.run e;
  (* 70 + 100, then interrupt 30, then second compute with no switch. *)
  check_int "no cold switch after interrupt" (Time.us 300) !done_at

let test_syscall_charges_and_saves_windows () =
  let e, m = fixture () in
  let t_before = ref 0 and t_after = ref 0 and traps_time = ref 0 in
  ignore
    (Thread.spawn m "a" (fun () ->
         Thread.compute (Time.us 10);
         Thread.call_frames 5;
         t_before := Engine.now e;
         Thread.syscall ();
         t_after := Engine.now e;
         let before_rets = Engine.now e in
         Thread.ret_frames 5;
         traps_time := Engine.now e - before_rets));
  Engine.run e;
  check_int "syscall base" (Time.us 25) (!t_after - !t_before);
  check_int "five underflow traps on return path" (Time.us 30) !traps_time

(* ------------------------------------------------------------------ *)
(* Sync *)

let test_mutex_mutual_exclusion () =
  let e, m = fixture () in
  let mu = Sync.Mutex.create m in
  let in_cs = ref 0 and max_in_cs = ref 0 and runs = ref 0 in
  for i = 1 to 3 do
    ignore
      (Thread.spawn m (Printf.sprintf "t%d" i) (fun () ->
           Sync.Mutex.lock mu;
           incr in_cs;
           if !in_cs > !max_in_cs then max_in_cs := !in_cs;
           Thread.compute (Time.us 100);
           decr in_cs;
           incr runs;
           Sync.Mutex.unlock mu))
  done;
  Engine.run e;
  check_int "never two inside" 1 !max_in_cs;
  check_int "all ran" 3 !runs

let test_condvar_signal_wakes_one () =
  let e, m = fixture () in
  let mu = Sync.Mutex.create m in
  let cv = Sync.Condvar.create m in
  let woke = ref 0 in
  for i = 1 to 2 do
    ignore
      (Thread.spawn m (Printf.sprintf "w%d" i) (fun () ->
           Sync.Mutex.lock mu;
           Sync.Condvar.wait cv mu;
           incr woke;
           Sync.Mutex.unlock mu))
  done;
  ignore (Engine.at e (Time.us 500) (fun () -> Sync.Condvar.signal cv));
  Engine.run e;
  check_int "exactly one woke" 1 !woke;
  check_int "one still waiting" 1 (Sync.Condvar.waiters cv)

let test_condvar_broadcast_wakes_all () =
  let e, m = fixture () in
  let mu = Sync.Mutex.create m in
  let cv = Sync.Condvar.create m in
  let woke = ref 0 in
  for i = 1 to 3 do
    ignore
      (Thread.spawn m (Printf.sprintf "w%d" i) (fun () ->
           Sync.Mutex.lock mu;
           Sync.Condvar.wait cv mu;
           incr woke;
           Sync.Mutex.unlock mu))
  done;
  ignore (Engine.at e (Time.us 500) (fun () -> Sync.Condvar.broadcast cv));
  Engine.run e;
  check_int "all woke" 3 !woke

let test_condvar_no_lost_wakeup () =
  let e, m = fixture () in
  let mu = Sync.Mutex.create m in
  let cv = Sync.Condvar.create m in
  let ready = ref false and woke = ref false in
  ignore
    (Thread.spawn m "waiter" (fun () ->
         Sync.Mutex.lock mu;
         while not !ready do
           Sync.Condvar.wait cv mu
         done;
         woke := true;
         Sync.Mutex.unlock mu));
  ignore
    (Thread.spawn m "setter" (fun () ->
         Thread.compute (Time.us 10);
         ready := true;
         Sync.Condvar.signal cv));
  Engine.run e;
  check_bool "woke" true !woke

let test_utilization () =
  let e, m = fixture () in
  ignore (Thread.spawn m "a" (fun () -> Thread.compute (Time.us 500)));
  Engine.run e;
  let u = Mach.utilization m ~until:(Engine.now e) in
  check_bool "busy whole run" true (u > 0.99 && u <= 1.01)

(* Reference register-window model: an explicit stack of frames, each
   marked resident or spilled; compare trap counts against Regwin. *)
module Regwin_ref = struct
  type t = { windows : int; mutable frames : bool list (* true = resident *) }

  let create ~windows = { windows; frames = [ true ] }
  let resident t = List.length (List.filter Fun.id t.frames)

  let call t n =
    let traps = ref 0 in
    for _ = 1 to n do
      if resident t = t.windows then begin
        (* Spill the deepest resident frame. *)
        incr traps;
        let arr = Array.of_list t.frames in
        let deepest = ref (-1) in
        Array.iteri (fun i r -> if r then deepest := i) arr;
        arr.(!deepest) <- false;
        t.frames <- Array.to_list arr
      end;
      t.frames <- true :: t.frames
    done;
    !traps

  let ret t n =
    let traps = ref 0 in
    for _ = 1 to n do
      match t.frames with
      | _ :: ((next :: _) as rest) ->
        if not next then begin
          incr traps;
          t.frames <- (match rest with _ :: r -> true :: r | [] -> [])
        end
        else t.frames <- rest
      | _ -> invalid_arg "ref: below zero"
    done;
    !traps

  let syscall_save t =
    t.frames <- (match t.frames with top :: rest -> top :: List.map (fun _ -> false) rest | [] -> [])
end

let prop_regwin_matches_reference =
  QCheck.Test.make ~name:"regwin trap counts match a reference model" ~count:300
    QCheck.(list (int_range 0 20))
    (fun script ->
      let w = Regwin.create ~windows:6 in
      let r = Regwin_ref.create ~windows:6 in
      let depth = ref 0 in
      let ok = ref true in
      List.iteri
        (fun i n ->
          match i mod 3 with
          | 0 ->
            let a = Regwin.call w n and b = Regwin_ref.call r n in
            depth := !depth + n;
            if a <> b then ok := false
          | 1 ->
            let n = min n !depth in
            let a = Regwin.ret w n and b = Regwin_ref.ret r n in
            depth := !depth - n;
            if a <> b then ok := false
          | _ ->
            Regwin.syscall_save w;
            Regwin_ref.syscall_save r)
        script;
      !ok)

let prop_cpu_all_jobs_complete =
  QCheck.Test.make ~name:"cpu completes every job; busy time covers all work" ~count:100
    QCheck.(pair (int_range 1 30) (int_range 1 1_000_000))
    (fun (njobs, seed) ->
      let e = Engine.create () in
      let m = Mach.create e ~id:0 ~name:"m" config in
      let rng = Rng.create ~seed in
      let total_work = ref 0 in
      let completed = ref 0 in
      for i = 1 to njobs do
        let cost = Time.us (1 + Rng.int rng 500) in
        total_work := !total_work + cost;
        let prio = if Rng.bool rng then Thread.Daemon else Thread.Normal in
        let delay = Rng.int rng 2000 in
        ignore
          (Engine.at e delay (fun () ->
               ignore
                 (Thread.spawn m ~prio (Printf.sprintf "j%d" i) (fun () ->
                      Thread.compute cost;
                      incr completed))))
      done;
      Engine.run e;
      !completed = njobs
      && Cpu.busy_time (Mach.cpu m) >= !total_work
      && Engine.now e >= !total_work)

let prop_segment_fifo_per_receiver =
  QCheck.Test.make ~name:"segment delivers FIFO per sender" ~count:100
    QCheck.(pair (int_range 1 30) (int_range 1 1_000_000))
    (fun (nframes, seed) ->
      let e = Engine.create () in
      let seg = Net.Segment.create e "s" in
      let got = ref [] in
      let _rx =
        Net.Segment.attach seg ~name:"rx" ~accepts:(fun _ -> true) (fun f ->
            got := (f.Net.Frame.bytes, Engine.now e) :: !got)
      in
      let tx = Net.Segment.attach seg ~name:"tx" ~accepts:(fun _ -> false) (fun _ -> ()) in
      let rng = Rng.create ~seed in
      let sent = ref [] in
      for i = 1 to nframes do
        let bytes = 1 + Rng.int rng 1500 in
        sent := bytes :: !sent;
        ignore i;
        Net.Segment.transmit seg ~from:tx
          (Net.Frame.make ~src:0 ~dest:Net.Frame.Broadcast ~bytes Sim.Payload.Empty)
      done;
      Engine.run e;
      let deliveries = List.rev !got in
      List.map fst deliveries = List.rev !sent
      && (let times = List.map snd deliveries in
          List.sort compare times = times))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "machine"
    [
      ( "regwin",
        [
          Alcotest.test_case "overflow" `Quick test_regwin_overflow;
          Alcotest.test_case "underflow" `Quick test_regwin_underflow;
          Alcotest.test_case "syscall save" `Quick test_regwin_syscall_save;
          Alcotest.test_case "ret below zero" `Quick test_regwin_ret_below_zero;
        ]
        @ qsuite [ prop_regwin_depth_consistent; prop_regwin_matches_reference ] );
      ( "cpu",
        [
          Alcotest.test_case "cold switch charged" `Quick test_compute_charges_cold_switch;
          Alcotest.test_case "back-to-back free" `Quick test_back_to_back_computes_no_switch;
          Alcotest.test_case "two threads serialize" `Quick test_two_threads_serialize;
          Alcotest.test_case "daemon preempts" `Quick test_daemon_preempts_normal;
          Alcotest.test_case "warm wakeup" `Quick test_warm_wakeup_same_thread;
          Alcotest.test_case "interrupt cost" `Quick test_interrupt_runs_at_cost;
          Alcotest.test_case "interrupt delays compute" `Quick test_interrupt_delays_compute;
          Alcotest.test_case "interrupt keeps context" `Quick test_interrupt_does_not_clobber_context;
          Alcotest.test_case "syscall + windows" `Quick test_syscall_charges_and_saves_windows;
        ] );
      ( "sync",
        [
          Alcotest.test_case "mutex exclusion" `Quick test_mutex_mutual_exclusion;
          Alcotest.test_case "signal wakes one" `Quick test_condvar_signal_wakes_one;
          Alcotest.test_case "broadcast wakes all" `Quick test_condvar_broadcast_wakes_all;
          Alcotest.test_case "no lost wakeup" `Quick test_condvar_no_lost_wakeup;
          Alcotest.test_case "utilization" `Quick test_utilization;
        ]
        @ qsuite [ prop_cpu_all_jobs_complete; prop_segment_fifo_per_receiver ] );
    ]
