(* Tests for the lib/load traffic generator and capacity analysis:
   arrival/mix parsing, knee detection, bit-identical sweeps (reruns and
   pool fan-out), closed-form sanity below the knee, the Table-2-matching
   saturation ordering at 8 KB, and the sequencer-saturation result. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Arrival processes *)

let test_arrival_uniform () =
  let rng = Sim.Rng.create ~seed:1 in
  let g = Load.Arrival.gap Load.Arrival.Uniform ~rate:1000. ~now:0 rng in
  check_int "1 kHz gap is 1 ms" (Sim.Time.ms 1) g;
  (* deterministic: no randomness consumed *)
  check_int "same gap" g
    (Load.Arrival.gap Load.Arrival.Uniform ~rate:1000. ~now:0 rng)

let test_arrival_poisson () =
  let draw seed n =
    let rng = Sim.Rng.create ~seed in
    List.init n (fun _ ->
        Load.Arrival.gap Load.Arrival.Poisson ~rate:1000. ~now:0 rng)
  in
  let a = draw 7 50 and b = draw 7 50 in
  Alcotest.(check (list int)) "same seed, same gaps" a b;
  check_bool "gaps vary" true (List.sort_uniq compare a <> [ List.hd a ]);
  check_bool "gaps non-negative" true (List.for_all (fun g -> g >= 0) a);
  (* mean of exponential gaps ~ 1/rate *)
  let mean =
    float_of_int (List.fold_left ( + ) 0 (draw 3 2000)) /. 2000.
  in
  check_bool "mean within 10% of 1 ms"
    true
    (abs_float (mean -. 1e6) < 1e5)

let test_arrival_invalid_rate () =
  let rng = Sim.Rng.create ~seed:1 in
  check_bool "zero rate rejected" true
    (match Load.Arrival.gap Load.Arrival.Uniform ~rate:0. ~now:0 rng with
     | _ -> false
     | exception Invalid_argument _ -> true);
  (* closed loop ignores the rate entirely *)
  check_int "closed think" (Sim.Time.us 500)
    (Load.Arrival.gap (Load.Arrival.Closed (Sim.Time.us 500)) ~rate:0. ~now:0 rng);
  (* replay arrivals are trace-driven, never gap draws *)
  check_bool "replay gap rejected" true
    (match
       Load.Arrival.gap
         (Load.Arrival.Replay { rp_path = "t.trace"; rp_scale = 1. })
         ~rate:100. ~now:0 rng
     with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_arrival_ramp () =
  let ramp = { Load.Arrival.rp_period = Sim.Time.sec 10; rp_floor = 0.2 } in
  (* Trough at phase 0, peak at half period. *)
  check_float "floor at phase 0" 0.2 (Load.Arrival.ramp_mult ramp ~now:0);
  check_bool "peak at half period" true
    (abs_float (Load.Arrival.ramp_mult ramp ~now:(Sim.Time.sec 5) -. 1.) < 1e-9);
  (* Gaps shrink as the multiplier rises: compare means at trough/peak. *)
  let mean_gap now =
    let rng = Sim.Rng.create ~seed:11 in
    let a = Load.Arrival.Ramp ramp in
    let n = 2000 in
    let tot =
      List.fold_left ( + ) 0
        (List.init n (fun _ -> Load.Arrival.gap a ~rate:1000. ~now rng))
    in
    float_of_int tot /. float_of_int n
  in
  let trough = mean_gap 0 and peak = mean_gap (Sim.Time.sec 5) in
  check_bool
    (Printf.sprintf "trough gaps %.0f ~ 5x peak gaps %.0f" trough peak)
    true
    (trough > 4. *. peak && trough < 6. *. peak)

let test_arrival_parse () =
  List.iter
    (fun a ->
      match Load.Arrival.parse (Load.Arrival.to_string a) with
      | Ok a' -> check_bool (Load.Arrival.to_string a) true (a = a')
      | Error e -> Alcotest.fail e)
    [ Load.Arrival.Uniform; Load.Arrival.Poisson;
      Load.Arrival.Closed (Sim.Time.us 250);
      Load.Arrival.Ramp { rp_period = Sim.Time.sec 60; rp_floor = 0.25 };
      Load.Arrival.Replay { rp_path = "logs/day.trace"; rp_scale = 0.5 };
      Load.Arrival.Replay { rp_path = "a@b.trace"; rp_scale = 1. } ];
  (* floor defaults, case-insensitive keywords *)
  check_bool "ramp floor default" true
    (Load.Arrival.parse "ramp:30"
    = Ok (Load.Arrival.Ramp { rp_period = Sim.Time.sec 30; rp_floor = 0.1 }));
  check_bool "keyword case" true
    (Load.Arrival.parse "RAMP:30"
    = Ok (Load.Arrival.Ramp { rp_period = Sim.Time.sec 30; rp_floor = 0.1 }));
  check_bool "garbage rejected" true
    (Result.is_error (Load.Arrival.parse "bursty"));
  check_bool "negative think rejected" true
    (Result.is_error (Load.Arrival.parse "closed=-5"));
  check_bool "zero ramp period rejected" true
    (Result.is_error (Load.Arrival.parse "ramp:0"));
  check_bool "bad ramp floor rejected" true
    (Result.is_error (Load.Arrival.parse "ramp:10/1.5"));
  check_bool "empty replay path rejected" true
    (Result.is_error (Load.Arrival.parse "replay:"))

(* QCheck: parse/to_string round-trips over every variant, including the
   replay:/ramp: forms.  Generated values stay within the canonical
   format's resolution (integer-microsecond times, hundredth floors and
   scales, '@'-free paths) so equality is exact. *)
let arrival_gen =
  let open QCheck.Gen in
  let path =
    let seg = string_size ~gen:(oneof [ char_range 'a' 'z'; char_range '0' '9' ]) (1 -- 8) in
    map (String.concat "/") (list_size (1 -- 3) seg)
  in
  oneof
    [
      return Load.Arrival.Uniform;
      return Load.Arrival.Poisson;
      map (fun us -> Load.Arrival.Closed (Sim.Time.us us)) (0 -- 1_000_000);
      map2
        (fun per_ms fl ->
          Load.Arrival.Ramp
            { rp_period = Sim.Time.ms per_ms;
              rp_floor = float_of_int fl /. 100. })
        (1 -- 3_600_000) (1 -- 100);
      map2
        (fun p s ->
          Load.Arrival.Replay
            { rp_path = p; rp_scale = float_of_int s /. 100. })
        path (1 -- 10_000);
    ]

let arrival_roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"arrival parse round-trip"
    (QCheck.make arrival_gen ~print:Load.Arrival.to_string)
    (fun a ->
      match Load.Arrival.parse (Load.Arrival.to_string a) with
      | Ok a' -> a = a'
      | Error e -> QCheck.Test.fail_report e)

(* ------------------------------------------------------------------ *)
(* Size mixes *)

let test_mix_single () =
  let m = Load.Mix.single 8192 in
  let rng = Sim.Rng.create ~seed:1 in
  let twin = Sim.Rng.create ~seed:1 in
  check_int "always the size" 8192 (Load.Mix.pick m rng);
  (* single-entry mixes must not consume randomness *)
  check_int "stream untouched" (Sim.Rng.int twin 1000) (Sim.Rng.int rng 1000);
  check_float "mean" 8192. (Load.Mix.mean_size m)

let test_mix_weighted () =
  let m = Load.Mix.of_list [ (64, 3); (8192, 1) ] in
  let rng = Sim.Rng.create ~seed:5 in
  let picks = List.init 4000 (fun _ -> Load.Mix.pick m rng) in
  check_bool "only mix sizes" true (List.for_all (fun s -> s = 64 || s = 8192) picks);
  let small = List.length (List.filter (( = ) 64) picks) in
  check_bool "~3:1 split" true (small > 2800 && small < 3200);
  check_float "mean" ((3. *. 64. +. 8192.) /. 4.) (Load.Mix.mean_size m)

let test_mix_parse () =
  (match Load.Mix.parse "64x9,8192" with
   | Ok m ->
     Alcotest.(check (list (pair int int))) "entries" [ (64, 9); (8192, 1) ]
       (Load.Mix.sizes m);
     check_bool "round-trip" true
       (Load.Mix.parse (Load.Mix.to_string m) = Ok m)
   | Error e -> Alcotest.fail e);
  check_bool "empty rejected" true (Result.is_error (Load.Mix.parse ""));
  check_bool "bad weight rejected" true (Result.is_error (Load.Mix.parse "64x0"));
  check_bool "of_list empty raises" true
    (match Load.Mix.of_list [] with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Knee/peak detection on synthetic curves *)

let synth offered achieved =
  {
    Load.Metrics.label = "synth";
    op = "rpc";
    offered;
    achieved;
    issued = 0;
    completed = 0;
    p50_ms = 0.;
    p95_ms = 0.;
    p99_ms = 0.;
    p999_ms = 0.;
    mean_ms = 0.;
    max_ms = 0.;
    client_util = 0.;
    server_util = 0.;
    server_thread_util = 0.;
    seq_util = 0.;
    ledger_cpu_ms = 0.;
    violations = 0;
    per_shard = [||];
  }

let test_knee_detection () =
  let c =
    Load.Sweep.curve
      [ synth 100. 100.; synth 400. 398.; synth 200. 200.; synth 800. 520. ]
  in
  (* points get ordered by offered load *)
  Alcotest.(check (list (float 1e-9))) "ordered"
    [ 100.; 200.; 400.; 800. ]
    (List.map (fun p -> p.Load.Metrics.offered) c.Load.Sweep.c_points);
  check_bool "knee" true (Load.Sweep.knee c = Load.Sweep.Knee 400.);
  check_float "peak" 520. (Load.Sweep.peak c);
  check_float "peak point" 800.
    (Load.Sweep.peak_point c).Load.Metrics.offered;
  let saturated_everywhere = Load.Sweep.curve [ synth 100. 50. ] in
  check_bool "no knee" true
    (Load.Sweep.knee saturated_everywhere = Load.Sweep.Saturated);
  (* A ramp that never saturates must report the sentinel, not its own
     last point. *)
  let unsaturated =
    Load.Sweep.curve [ synth 100. 100.; synth 200. 199.; synth 400. 400. ]
  in
  check_bool "unsaturated ramp has no knee" true
    (Load.Sweep.knee unsaturated = Load.Sweep.Unsaturated)

(* ------------------------------------------------------------------ *)
(* Sweep determinism: same seed => bit-identical tables, sequentially
   and on a 2-domain pool (the PR 2 reassembly contract). *)

let quick_config =
  {
    Load.Clients.default with
    Load.Clients.warmup = Sim.Time.ms 100;
    window = Sim.Time.ms 300;
  }

let quick_sweep ?pool () =
  Core.Experiments.load_sweep ?pool ~nodes:4 ~config:quick_config
    ~rates:[ 400.; 1600. ]
    ~impls:[ Core.Cluster.Kernel; Core.Cluster.User ]
    ()

let points sweep =
  List.concat_map (fun (_, c) -> c.Load.Sweep.c_points) sweep

let show sweep =
  String.concat "\n"
    (List.map (fun p -> Format.asprintf "%a" Load.Metrics.pp p) (points sweep))

let test_sweep_deterministic () =
  let a = quick_sweep () and b = quick_sweep () in
  check_bool "bit-identical reruns" true (points a = points b);
  Alcotest.(check string) "printed tables identical" (show a) (show b)

let test_sweep_pool_deterministic () =
  let seq = quick_sweep () in
  let pooled = Exec.Pool.with_pool ~jobs:2 (fun p -> quick_sweep ~pool:p ()) in
  check_bool "sequential = -j 2" true (points seq = points pooled);
  Alcotest.(check string) "printed tables identical" (show seq) (show pooled)

(* ------------------------------------------------------------------ *)
(* Closed-form sanity: deterministic arrivals well below the knee must
   achieve the offered rate, with p50 latency at the unloaded Table 1
   null-RPC value (the golden test pins user null RPC at 1.555 ms). *)

let test_below_knee_sanity () =
  let sweep =
    Core.Experiments.load_sweep ~nodes:4
      ~config:{ quick_config with Load.Clients.window = Sim.Time.sec 1 }
      ~rates:[ 100. ]
      ~impls:[ Core.Cluster.User ]
      ()
  in
  match points sweep with
  | [ m ] ->
    check_float "offered is the configured rate" 100. m.Load.Metrics.offered;
    check_bool "achieved ~ offered" true
      (abs_float (m.Load.Metrics.achieved -. 100.) <= 2.);
    let unloaded = 1.555 (* golden Table 1, user null RPC, ms *) in
    check_bool
      (Printf.sprintf "p50 %.3f ms ~ unloaded %.3f ms" m.Load.Metrics.p50_ms unloaded)
      true
      (abs_float (m.Load.Metrics.p50_ms -. unloaded) <= 0.1 *. unloaded);
    check_bool "no violations field set" true (m.Load.Metrics.violations = 0);
    check_bool "server below saturation" true (m.Load.Metrics.server_util < 0.5)
  | _ -> Alcotest.fail "expected one point"

(* ------------------------------------------------------------------ *)
(* Saturation ordering at 8 KB: driven past the knee, peak throughput
   must order kernel >= optimized >= user, matching the golden Table 2
   (user-space overhead makes the user stack saturate lowest). *)

let test_saturation_ordering () =
  let sweep =
    Core.Experiments.load_sweep ~nodes:4
      ~config:
        {
          quick_config with
          Load.Clients.mix = Load.Mix.single 8192;
          window = Sim.Time.sec 2;
          warmup = Sim.Time.ms 200;
        }
      ~rates:[ 160. ]
      ()
  in
  let peak impl =
    match List.assoc_opt impl sweep with
    | Some c -> Load.Sweep.peak c
    | None -> Alcotest.fail "missing stack"
  in
  let k = peak Core.Cluster.Kernel
  and u = peak Core.Cluster.User
  and o = peak Core.Cluster.User_optimized in
  check_bool (Printf.sprintf "kernel %.1f >= optimized %.1f" k o) true (k >= o);
  check_bool (Printf.sprintf "optimized %.1f >= user %.1f" o u) true (o >= u);
  check_bool "all saturated (past the knee)" true
    (List.for_all (fun m -> Load.Metrics.saturated m) (points sweep))

(* ------------------------------------------------------------------ *)
(* Sequencer saturation: closed-loop group senders.  The user-space
   sequencer saturates first (pinned at 100% CPU with the lowest
   plateau); the kernel sequencer sustains the highest ordered rate. *)

let test_sequencer_saturation () =
  let rows =
    Core.Experiments.sequencer_saturation ~nodes:8 ~senders:[ 4 ]
      ~clients_per_node:2
      ~config:{ quick_config with Load.Clients.window = Sim.Time.ms 500 }
      ()
  in
  let point impl =
    match List.assoc_opt impl rows with
    | Some [ (_, m) ] -> m
    | _ -> Alcotest.fail "expected one point per stack"
  in
  let k = point Core.Cluster.Kernel
  and u = point Core.Cluster.User
  and o = point Core.Cluster.User_optimized in
  check_bool
    (Printf.sprintf "kernel %.0f > optimized %.0f msg/s" k.Load.Metrics.achieved
       o.Load.Metrics.achieved)
    true
    (k.Load.Metrics.achieved > o.Load.Metrics.achieved);
  check_bool
    (Printf.sprintf "optimized %.0f > user %.0f msg/s" o.Load.Metrics.achieved
       u.Load.Metrics.achieved)
    true
    (o.Load.Metrics.achieved > u.Load.Metrics.achieved);
  check_bool "user sequencer pinned at 100%" true (u.Load.Metrics.seq_util > 0.99);
  check_bool "optimized sequencer pinned at 100%" true (o.Load.Metrics.seq_util > 0.99);
  check_bool "kernel sequencer below saturation" true (k.Load.Metrics.seq_util < 0.95)

(* ------------------------------------------------------------------ *)
(* Composition with faults: a low-loss checked run must complete with
   zero conformance violations and still achieve the offered rate. *)

let test_checked_low_loss () =
  let sweep =
    Core.Experiments.load_sweep ~nodes:4
      ~faults:(Faults.Spec.loss ~seed:7 0.001)
      ~checked:true ~config:quick_config ~rates:[ 400. ]
      ~impls:[ Core.Cluster.User ]
      ()
  in
  match points sweep with
  | [ m ] ->
    check_int "no conformance violations" 0 m.Load.Metrics.violations;
    check_bool "achieved ~ offered under 0.1% loss" true
      (abs_float (m.Load.Metrics.achieved -. 400.) <= 20.)
  | _ -> Alcotest.fail "expected one point"

let () =
  Alcotest.run "load"
    [
      ( "arrival",
        [
          Alcotest.test_case "uniform" `Quick test_arrival_uniform;
          Alcotest.test_case "poisson" `Quick test_arrival_poisson;
          Alcotest.test_case "invalid rate" `Quick test_arrival_invalid_rate;
          Alcotest.test_case "ramp" `Quick test_arrival_ramp;
          Alcotest.test_case "parse round-trip" `Quick test_arrival_parse;
          QCheck_alcotest.to_alcotest arrival_roundtrip_prop;
        ] );
      ( "mix",
        [
          Alcotest.test_case "single" `Quick test_mix_single;
          Alcotest.test_case "weighted" `Quick test_mix_weighted;
          Alcotest.test_case "parse" `Quick test_mix_parse;
        ] );
      ("sweep", [ Alcotest.test_case "knee detection" `Quick test_knee_detection ]);
      ( "determinism",
        [
          Alcotest.test_case "rerun identical" `Quick test_sweep_deterministic;
          Alcotest.test_case "pool identical" `Quick test_sweep_pool_deterministic;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "below knee" `Quick test_below_knee_sanity;
          Alcotest.test_case "saturation ordering" `Quick test_saturation_ordering;
          Alcotest.test_case "sequencer saturation" `Quick test_sequencer_saturation;
          Alcotest.test_case "checked low loss" `Quick test_checked_low_loss;
        ] );
    ]
