(* The cluster-scale sharded service: the pure routing model (QCheck),
   the simulated service differentially against it under random forced
   migrations, the 64-node golden grid (lanes on, -j fan-out), and
   conformance under a fault matrix while the rebalancer is active. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Router: the pure-functional model.

   The model is an owner list plus an epoch list, folded over the
   migration history; the router must agree with it after every prefix,
   and for any fixed epoch every key must have exactly one owner. *)

let model_fold ~ns ~shards ops =
  List.fold_left
    (fun (owner, epochs) (shard, to_index) ->
      let s = shard mod shards in
      if List.nth owner s = to_index then (owner, epochs)
      else
        ( List.mapi (fun i o -> if i = s then to_index else o) owner,
          List.mapi (fun i e -> if i = s then e + 1 else e) epochs ))
    (List.init shards (fun s -> s mod ns), List.init shards (fun _ -> 0))
    ops

let router_case =
  QCheck.make ~print:(fun (ns, shards, replicas, ops) ->
      Printf.sprintf "servers=%d shards=%d replicas=%d ops=[%s]" ns shards
        replicas
        (String.concat ";"
           (List.map (fun (s, d) -> Printf.sprintf "%d->%d" s d) ops)))
    QCheck.Gen.(
      int_range 1 8 >>= fun ns ->
      int_range ns 32 >>= fun shards ->
      int_range 1 ns >>= fun replicas ->
      list_size (int_range 0 40)
        (pair (int_range 0 (shards - 1)) (int_range 0 (ns - 1)))
      >>= fun ops -> return (ns, shards, replicas, ops))

let prop_router_matches_model (ns, shards, replicas, ops) =
  (* Server ranks deliberately not 0..ns-1, to catch index/rank mixups. *)
  let servers = Array.init ns (fun i -> (i * 3) + 1) in
  let r = Shard.Router.create ~shards ~replicas ~servers in
  List.iter
    (fun (shard, to_index) ->
      let s = shard mod shards in
      let before = Shard.Router.epoch r s in
      match Shard.Router.migrate r ~shard:s ~to_index with
      | None ->
        if Shard.Router.owner_index r s <> to_index then
          QCheck.Test.fail_report "no-op migrate but owner differs";
        if Shard.Router.epoch r s <> before then
          QCheck.Test.fail_report "no-op migrate burned an epoch"
      | Some e ->
        if e <> before + 1 then QCheck.Test.fail_report "epoch not bumped by 1")
    ops;
  let owner, epochs = model_fold ~ns ~shards ops in
  List.iteri
    (fun s o ->
      if Shard.Router.owner_index r s <> o then
        QCheck.Test.fail_report "owner table diverged from model";
      if Shard.Router.epoch r s <> List.nth epochs s then
        QCheck.Test.fail_report "epoch table diverged from model")
    owner;
  (* Exactly one owner per key at this epoch, and it is the shard owner;
     replica sets are distinct, primary-first, R-sized. *)
  for key = 0 to 255 do
    let s = Shard.Router.key_shard r key in
    if Shard.Router.owner_of_key r key <> Shard.Router.owner_rank r s then
      QCheck.Test.fail_report "key owner differs from its shard owner"
  done;
  for s = 0 to shards - 1 do
    let m = Shard.Router.replica_indices r s in
    if List.length m <> replicas then QCheck.Test.fail_report "replica size";
    if List.hd m <> Shard.Router.owner_index r s then
      QCheck.Test.fail_report "primary not first";
    if List.length (List.sort_uniq compare m) <> replicas then
      QCheck.Test.fail_report "replica set not distinct"
  done;
  true

let prop_locate_partitions (ns, shards, _, _) =
  ignore ns;
  let keys = 512 in
  let locate = Shard.Router.locate ~shards ~keys in
  let buckets = Shard.Router.keys_of_shard ~shards ~keys in
  let seen = Array.make keys 0 in
  Array.iteri
    (fun s ks ->
      Array.iteri
        (fun li key ->
          seen.(key) <- seen.(key) + 1;
          if locate key <> (s, li) then
            QCheck.Test.fail_report "locate disagrees with keys_of_shard")
        ks)
    buckets;
  Array.for_all (fun n -> n = 1) seen

let router_model_tests =
  List.map
    (QCheck_alcotest.to_alcotest ~long:false)
    [
      QCheck.Test.make ~count:300 ~name:"router matches pure model" router_case
        prop_router_matches_model;
      QCheck.Test.make ~count:50 ~name:"locate partitions the key space"
        router_case prop_locate_partitions;
    ]

(* ------------------------------------------------------------------ *)
(* The simulated service against the model: random forced migration
   sequences must lose no request and execute none twice.  The service's
   at-rest audit is the oracle — applied versions must equal acked puts
   exactly — and the run must observably exercise the handoff machinery
   (completed migrations; with replication, parked relays and dedup
   hits). *)

let migration_cell ~seed ~forced () =
  let cfg =
    {
      Core.Experiments.cluster_default_config with
      Load.Clients.arrival = Load.Arrival.Closed 0;
      clients_per_node = 2;
      warmup = Sim.Time.ms 50;
      window = Sim.Time.ms 250;
      seed;
    }
  in
  let rebalance =
    {
      Shard.Rebalancer.default_config with
      Shard.Rebalancer.rb_interval = Sim.Time.ms 20;
      rb_max_moves = 0;
      rb_forced = forced;
    }
  in
  let params =
    {
      Shard.Service.default_params with
      Shard.Service.sv_keys = 256;
      sv_read_pct = 50;
      sv_skew = Load.Keys.Zipf 1.2;
    }
  in
  Core.Experiments.cluster_cell ~shards:8 ~replicas:2 ~service_params:params
    ~rebalance ~nodes:16 ~stack:(Core.Cluster.Rpc_stack Core.Cluster.User)
    ~skew:(Load.Keys.Zipf 1.2) cfg ()

let test_migration_exactly_once () =
  (* Three different random histories: different seeds shift the load,
     and with it which shards are hot and where they are forced to go. *)
  List.iter
    (fun seed ->
      let forced = List.map Sim.Time.ms [ 80; 120; 160; 200 ] in
      let c = migration_cell ~seed ~forced () in
      check_int
        (Printf.sprintf "seed %d: zero service violations" seed)
        0 c.Core.Experiments.cc_service_viol;
      check_bool
        (Printf.sprintf "seed %d: migrations completed" seed)
        true
        (c.Core.Experiments.cc_migrations >= 1);
      check_bool
        (Printf.sprintf "seed %d: workload ran" seed)
        true
        (c.Core.Experiments.cc_gets + c.Core.Experiments.cc_puts > 100))
    [ 1; 2; 3 ]

let test_migration_dedup_fires () =
  (* At least one history must park relays in a freeze window and answer
     the retries from the dedup table — at-most-once observably firing. *)
  let total = ref 0 in
  List.iter
    (fun seed ->
      let forced = List.map Sim.Time.ms [ 70; 90; 110; 130; 150; 170 ] in
      let c = migration_cell ~seed ~forced () in
      check_int
        (Printf.sprintf "dedup seed %d: zero violations" seed)
        0 c.Core.Experiments.cc_service_viol;
      total := !total + c.Core.Experiments.cc_dedup_hits + c.Core.Experiments.cc_relays)
    [ 11; 12 ];
  check_bool "handoff relays or dedup hits observed" true (!total > 0)

(* ------------------------------------------------------------------ *)
(* Golden: the 64-node grid (3 stacks x 2 skews, open loop at 4000 op/s,
   lanes on) pinned bit-exactly, and the identical cells re-run over a
   2-job pool must reproduce the sequential results bit for bit. *)

let golden_grid pool =
  let cfg =
    { Core.Experiments.cluster_default_config with Load.Clients.rate = 4000. }
  in
  let cells =
    List.concat_map
      (fun stack ->
        List.map
          (fun skew () ->
            Core.Experiments.cluster_cell ~lanes:true ~nodes:64 ~stack ~skew
              cfg ())
          [ Load.Keys.Uniform; Load.Keys.Zipf 0.99 ])
      [
        Core.Cluster.Rpc_stack Core.Cluster.Kernel;
        Core.Cluster.Rpc_stack Core.Cluster.User_optimized;
        Core.Cluster.One_sided;
      ]
  in
  match pool with
  | None -> List.map (fun f -> f ()) cells
  | Some p -> Exec.Pool.map_list p (fun f -> f ()) cells

(* (completed, gets, puts) per grid cell, in (stack, skew) order. *)
let golden_pinned =
  [
    ("kernel", "uniform", 1783, 1781, 205);
    ("kernel", "zipf:0.99", 1348, 1404, 160);
    ("optimized", "uniform", 1782, 1795, 206);
    ("optimized", "zipf:0.99", 1796, 1795, 206);
    ("onesided", "uniform", 1600, 1795, 206);
    ("onesided", "zipf:0.99", 1601, 1795, 206);
  ]

let test_golden_grid () =
  let seq = golden_grid None in
  let par = Exec.Pool.with_pool ~jobs:2 (fun p -> golden_grid (Some p)) in
  check_bool "-j1 = -j2 under lanes" true (seq = par);
  List.iter2
    (fun c (stack, skew, completed, gets, puts) ->
      let name what =
        Printf.sprintf "%s/%s %s" stack skew what
      in
      Alcotest.(check string)
        (name "stack") stack
        (Core.Cluster.stack_label c.Core.Experiments.cc_stack);
      Alcotest.(check string)
        (name "skew") skew
        (Load.Keys.skew_label c.Core.Experiments.cc_skew);
      check_int (name "completed") completed
        c.Core.Experiments.cc_metrics.Load.Metrics.completed;
      check_int (name "gets") gets c.Core.Experiments.cc_gets;
      check_int (name "puts") puts c.Core.Experiments.cc_puts;
      check_int (name "violations") 0
        (c.Core.Experiments.cc_service_viol
        + c.Core.Experiments.cc_metrics.Load.Metrics.violations))
    seq golden_pinned

(* ------------------------------------------------------------------ *)
(* Conformance under faults while the rebalancer is active: packet loss
   plus a switch partition across live handoffs must produce zero
   checker violations and still complete every client request. *)

let test_faults_under_migration () =
  let faults =
    match Faults.Spec.parse "seed=5,loss=0.01,swpart=0.3+0.05" with
    | Ok s -> s
    | Error m -> Alcotest.failf "spec: %s" m
  in
  let cfg =
    {
      Core.Experiments.cluster_default_config with
      Load.Clients.arrival = Load.Arrival.Closed 0;
      clients_per_node = 2;
      warmup = Sim.Time.ms 50;
      window = Sim.Time.ms 400;
    }
  in
  let rebalance =
    {
      Shard.Rebalancer.default_config with
      Shard.Rebalancer.rb_interval = Sim.Time.ms 20;
      rb_max_moves = 0;
      rb_forced = List.map Sim.Time.ms [ 80; 150; 250; 330 ];
    }
  in
  let c =
    Core.Experiments.cluster_cell ~faults ~checked:true ~shards:8 ~replicas:2
      ~nodes:16 ~stack:(Core.Cluster.Rpc_stack Core.Cluster.User)
      ~skew:(Load.Keys.Zipf 1.2) ~rebalance cfg ()
  in
  check_int "checker violations" 0 c.Core.Experiments.cc_metrics.Load.Metrics.violations;
  check_int "service violations" 0 c.Core.Experiments.cc_service_viol;
  check_bool "migrations under faults" true (c.Core.Experiments.cc_migrations >= 1);
  check_bool "completeness: the workload drained" true
    (c.Core.Experiments.cc_gets + c.Core.Experiments.cc_puts > 100)

let suite =
  [
    ("router model", router_model_tests);
    ( "golden",
      [
        Alcotest.test_case "64-node grid pinned, -j1 = -j2 with lanes" `Quick
          test_golden_grid;
      ] );
    ( "faults",
      [
        Alcotest.test_case "loss + switch partition during handoffs" `Quick
          test_faults_under_migration;
      ] );
    ( "migration",
      [
        Alcotest.test_case "random forced migrations: exactly once" `Quick
          test_migration_exactly_once;
        Alcotest.test_case "freeze-window relays answered from dedup" `Quick
          test_migration_dedup_fires;
      ] );
  ]

let () = Alcotest.run "shard" suite
