(* Tests for the domain pool and for the tentpole guarantee: experiment
   fan-out is deterministic — the same results in the same order whether
   cells run sequentially or on a pool of domains. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pool semantics *)

let test_map_preserves_order () =
  Exec.Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 100 Fun.id in
      let ys = Exec.Pool.map_list p (fun i -> i * i) xs in
      Alcotest.(check (list int)) "squares in order" (List.map (fun i -> i * i) xs) ys)

let test_map_array_empty_and_single () =
  Exec.Pool.with_pool ~jobs:3 (fun p ->
      check_int "empty" 0 (Array.length (Exec.Pool.map_array p succ [||]));
      Alcotest.(check (array int)) "single" [| 8 |] (Exec.Pool.map_array p succ [| 7 |]))

let test_sequential_pool () =
  (* jobs=1 must not spawn domains and must behave like List.map. *)
  let p = Exec.Pool.create ~jobs:1 in
  let seen = ref [] in
  let ys =
    Exec.Pool.map_list p
      (fun i ->
        seen := i :: !seen;
        i + 1)
      [ 1; 2; 3 ]
  in
  Exec.Pool.shutdown p;
  Alcotest.(check (list int)) "results" [ 2; 3; 4 ] ys;
  (* sequential path evaluates strictly in input order *)
  Alcotest.(check (list int)) "evaluation order" [ 1; 2; 3 ] (List.rev !seen)

exception Boom of int

let test_exception_propagates () =
  Exec.Pool.with_pool ~jobs:4 (fun p ->
      match
        Exec.Pool.map_list p
          (fun i -> if i = 5 then raise (Boom i) else i)
          (List.init 10 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 5 -> ())

let test_pool_reuse () =
  Exec.Pool.with_pool ~jobs:3 (fun p ->
      for round = 1 to 5 do
        let n = 20 * round in
        let ys = Exec.Pool.map_list p (fun i -> i + round) (List.init n Fun.id) in
        check_int "length" n (List.length ys);
        check_bool "values" true (List.for_all2 (fun x y -> y = x + round) (List.init n Fun.id) ys)
      done)

(* ------------------------------------------------------------------ *)
(* Determinism of the experiment fan-out *)

(* Outcomes carry only immutable scalars, so structural equality is the
   right notion; comparing the pretty-printed strings too pins down the
   bit-identity of what the bench harness actually prints. *)
let outcome_strings outcomes =
  List.map (Format.asprintf "%a" Core.Runner.pp_outcome) outcomes

let table3_subset ?pool () =
  Core.Experiments.table3 ?pool ~app_names:[ "sor" ] ~procs:[ 1; 4 ] ()

let test_table3_j1_vs_j2 () =
  let seq = table3_subset () in
  let par = Exec.Pool.with_pool ~jobs:2 (fun p -> table3_subset ~pool:p ()) in
  check_bool "outcome lists equal" true (seq = par);
  Alcotest.(check (list string))
    "printed forms equal" (outcome_strings seq) (outcome_strings par);
  check_bool "checksums valid" true (List.for_all (fun o -> o.Core.Runner.o_valid) seq)

let test_parallel_run_repeatable () =
  let a = Exec.Pool.with_pool ~jobs:3 (fun p -> table3_subset ~pool:p ()) in
  let b = Exec.Pool.with_pool ~jobs:3 (fun p -> table3_subset ~pool:p ()) in
  check_bool "two parallel runs identical" true (a = b)

let test_table1_point_j1_vs_j2 () =
  let seq = Core.Experiments.table1 ~sizes:[ 0 ] () in
  let par =
    Exec.Pool.with_pool ~jobs:2 (fun p -> Core.Experiments.table1 ~pool:p ~sizes:[ 0 ] ())
  in
  check_bool "latency rows bit-identical" true (seq = par)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "empty and single" `Quick test_map_array_empty_and_single;
          Alcotest.test_case "sequential pool" `Quick test_sequential_pool;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "table3 -j1 vs -j2" `Quick test_table3_j1_vs_j2;
          Alcotest.test_case "parallel runs repeatable" `Quick test_parallel_run_repeatable;
          Alcotest.test_case "table1 point -j1 vs -j2" `Quick test_table1_point_j1_vs_j2;
        ] );
    ]
