open Sim
(* Tests for the discrete-event core: heap, engine, fibers, mailbox, rng,
   stats. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create ~dummy:"" () in
  ignore (Heap.push h ~time:30 "c");
  ignore (Heap.push h ~time:10 "a");
  ignore (Heap.push h ~time:20 "b");
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "END" in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  let p4 = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c"; "END" ] [ p1; p2; p3; p4 ]

let test_heap_fifo_ties () =
  let h = Heap.create ~dummy:0 () in
  for i = 0 to 9 do
    ignore (Heap.push h ~time:5 i)
  done;
  let order = List.init 10 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "fifo" (List.init 10 Fun.id) order

let test_heap_cancel () =
  let h = Heap.create ~dummy:"" () in
  let a = Heap.push h ~time:1 "a" in
  ignore (Heap.push h ~time:2 "b");
  Heap.cancel h a;
  check_bool "cancelled" true (Heap.cancelled h a);
  check_int "live" 1 (Heap.live_size h);
  (match Heap.pop h with
   | Some (t, v) ->
     check_int "time" 2 t;
     Alcotest.(check string) "value" "b" v
   | None -> Alcotest.fail "expected b");
  check_bool "empty" true (Heap.pop h = None)

let test_heap_peek_skips_cancelled () =
  let h = Heap.create ~dummy:"" () in
  let a = Heap.push h ~time:1 "a" in
  ignore (Heap.push h ~time:7 "b");
  Heap.cancel h a;
  Alcotest.(check (option int)) "peek" (Some 7) (Heap.peek_time h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Heap.create ~dummy:0 () in
      List.iter (fun t -> ignore (Heap.push h ~time:t t)) times;
      let rec drain acc =
        match Heap.pop h with Some (t, _) -> drain (t :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare times)

let prop_heap_cancel_subset =
  QCheck.Test.make ~name:"cancelled events never pop" ~count:200
    QCheck.(list (pair (int_bound 1_000) bool))
    (fun entries ->
      let h = Heap.create ~dummy:0 () in
      let keep =
        List.filter_map
          (fun (t, cancel_it) ->
            let hd = Heap.push h ~time:t t in
            if cancel_it then begin
              Heap.cancel h hd;
              None
            end
            else Some t)
          entries
      in
      let rec drain acc =
        match Heap.pop h with Some (t, _) -> drain (t :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare keep)

(* Model-based test: drive the slot heap with a random interleaving of
   push / pop / cancel and compare every observation against a naive
   reference model (an association list ordered by (time, seq)).  Also
   checks the compaction invariant after each step: dead entries never
   outnumber live ones once the heap is past its initial capacity. *)
let prop_heap_model =
  QCheck.Test.make ~name:"heap matches reference model" ~count:150
    QCheck.(list (pair (int_bound 2) (int_bound 500)))
    (fun ops ->
      let h = Heap.create ~dummy:(-1) () in
      (* model entries: (time, seq, handle), live only *)
      let model = ref [] in
      let next_seq = ref 0 in
      let model_min () =
        List.fold_left
          (fun acc ((t, s, _) as e) ->
            match acc with
            | None -> Some e
            | Some (t', s', _) ->
              if t < t' || (t = t' && s < s') then Some e else acc)
          None !model
      in
      let ok = ref true in
      let check b = if not b then ok := false in
      let invariants () =
        check (Heap.live_size h = List.length !model);
        (* compaction keeps dead <= live beyond the small-heap floor *)
        check
          (Heap.size h - Heap.live_size h <= Heap.live_size h
           || Heap.size h <= 64)
      in
      let pop_and_check () =
        match (Heap.pop h, model_min ()) with
        | None, None -> ()
        | Some (t, v), Some (mt, ms, mh) ->
          check (t = mt && v = ms);
          check (not (Heap.cancelled h mh));
          model := List.filter (fun (_, s, _) -> s <> ms) !model
        | Some _, None | None, Some _ -> check false
      in
      List.iter
        (fun (op, x) ->
          (match op with
           | 0 ->
             let seq = !next_seq in
             incr next_seq;
             let hd = Heap.push h ~time:x seq in
             model := (x, seq, hd) :: !model
           | 1 -> pop_and_check ()
           | _ -> (
               match !model with
               | [] -> ()
               | l ->
                 let _, s, hd = List.nth l (x mod List.length l) in
                 Heap.cancel h hd;
                 (* double-cancel is a no-op (the first may have already
                    compacted the entry away) *)
                 Heap.cancel h hd;
                 model := List.filter (fun (_, s', _) -> s' <> s) !model));
          invariants ())
        ops;
      (* drain: remaining pops must replay the model in (time, seq) order *)
      while !model <> [] do
        pop_and_check ()
      done;
      check (Heap.pop h = None);
      check (Heap.live_size h = 0);
      !ok)

(* Cancelling almost everything must shrink [size] via compaction rather
   than leaving the heap full of dead entries. *)
let test_heap_compaction_bounds () =
  let h = Heap.create ~dummy:0 () in
  let n = 10_000 in
  let handles = Array.init n (fun i -> Heap.push h ~time:i i) in
  for i = 0 to n - 2 do
    Heap.cancel h handles.(i)
  done;
  check_int "live" 1 (Heap.live_size h);
  check_bool "compacted" true (Heap.size h <= 64);
  (match Heap.pop h with
   | Some (t, v) ->
     check_int "survivor time" (n - 1) t;
     check_int "survivor value" (n - 1) v
   | None -> Alcotest.fail "survivor lost");
  check_bool "drained" true (Heap.pop h = None)

(* Handles are generation-tagged: a handle kept across its slot's reuse
   must not cancel the new occupant. *)
let test_heap_stale_handle () =
  let h = Heap.create ~dummy:"" () in
  let a = Heap.push h ~time:1 "a" in
  ignore (Heap.pop h);
  (* slot freed: "a" fired *)
  let b = Heap.push h ~time:2 "b" in
  Heap.cancel h a;
  (* stale: must not kill "b" *)
  check_bool "b alive" true (not (Heap.cancelled h b));
  check_int "live" 1 (Heap.live_size h);
  (match Heap.pop h with
   | Some (_, v) -> Alcotest.(check string) "b pops" "b" v
   | None -> Alcotest.fail "b lost")

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.at e 30 (note "c"));
  ignore (Engine.at e 10 (note "a"));
  ignore (Engine.at e 20 (note "b"));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check_int "clock" 30 (Engine.now e)

let test_engine_same_instant_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Engine.at e 5 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore
    (Engine.at e 10 (fun () ->
         fired := "outer" :: !fired;
         ignore (Engine.after e 5 (fun () -> fired := "inner" :: !fired))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !fired);
  check_int "clock" 15 (Engine.now e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.at e 10 (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  check_bool "not fired" false !fired

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.at e 10 (fun () -> incr fired));
  ignore (Engine.at e 100 (fun () -> incr fired));
  Engine.run ~until:50 e;
  check_int "only first" 1 !fired;
  check_int "clock clamped" 50 (Engine.now e);
  Engine.run e;
  check_int "second after resume" 2 !fired

let test_engine_stop () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.at e 1 (fun () -> incr fired; Engine.stop e));
  ignore (Engine.at e 2 (fun () -> incr fired));
  Engine.run e;
  check_int "stopped after first" 1 !fired

(* An exception escaping an event must not lose the executed-event counts:
   [run] flushes them into the process-wide tally on the way out. *)
let test_engine_counts_survive_exception () =
  let e = Engine.create () in
  ignore (Engine.at e 1 ignore);
  ignore (Engine.at e 2 (fun () -> failwith "boom"));
  ignore (Engine.at e 3 ignore);
  let before = Engine.events_total () in
  (match Engine.run e with
   | () -> Alcotest.fail "expected the event's exception to escape run"
   | exception Failure _ -> ());
  check_int "executed flushed to global tally" 2 (Engine.events_total () - before);
  check_int "per-engine count" 2 (Engine.events_executed e)

(* ------------------------------------------------------------------ *)
(* Timing wheel (far timers) and the hybrid scheduler *)

let g0 = Wheel.granule0

(* Far timers cross the wheel; near events stay in the heap.  The merged
   fire order must still be exactly (time, schedule order). *)
let test_wheel_order_across_structures () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.at e (3 * g0) (note "far-b"));
  ignore (Engine.at e 5 (note "near-a"));
  ignore (Engine.at e (7 * g0) (note "far-c"));
  ignore (Engine.at e (3 * g0) (note "far-b2"));
  Engine.run e;
  Alcotest.(check (list string))
    "order" [ "near-a"; "far-b"; "far-b2"; "far-c" ] (List.rev !log)

(* Cancelling a wheel timer whose bucket has already been drained into the
   heap must still take effect: the wheel slot forwards the cancel to the
   migrated heap entry. *)
let test_wheel_cancel_after_migration () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.at e ((3 * g0) + 17) (fun () -> fired := true) in
  (* This event shares the victim's bucket, so executing it proves the
     bucket was flushed to the heap before the cancel runs. *)
  ignore (Engine.at e ((3 * g0) + 1) (fun () -> Engine.cancel e h));
  Engine.run e;
  check_bool "migrated timer cancelled" false !fired

(* A handle kept past its timer's firing is stale; cancelling it later must
   not disturb anything (the forwarding slot was reclaimed on fire). *)
let test_wheel_stale_cancel_after_fire () =
  let e = Engine.create () in
  let fired = ref 0 in
  let fired_late = ref false in
  let h = Engine.at e (2 * g0) (fun () -> incr fired) in
  ignore (Engine.at e (4 * g0) (fun () -> Engine.cancel e h));
  ignore (Engine.at e (6 * g0) (fun () -> fired_late := true));
  Engine.run e;
  check_int "fired exactly once" 1 !fired;
  check_bool "unrelated later timer unaffected" true !fired_late

(* The hybrid model test (the wheel's contract): an engine with the wheel
   enabled must fire the exact same (time, id) sequence as one with every
   event in the pure heap, under a random program of schedules and cancels
   — including cancels of already-fired (stale) handles and of timers that
   have migrated wheel -> heap. *)
let run_scheduler_program ~wheel ops =
  let n = List.length ops in
  let e = Engine.create ~wheel () in
  let log = ref [] in
  let handles = Array.make (max 1 n) None in
  (* Driver ticks march time forward a third of a granule per op, so far
     timers live through several bucket drains before firing. *)
  let step = g0 / 3 in
  List.iteri
    (fun i (op, x) ->
      ignore
        (Engine.at e
           ((i + 1) * step)
           (fun () ->
             match op with
             | 0 | 1 ->
               let d =
                 if op = 0 then 1 + (x mod g0) (* near: heap path *)
                 else g0 + (x * 2053 mod (5 * g0)) (* far: wheel path *)
               in
               handles.(i) <-
                 Some
                   (Engine.after e d (fun () ->
                        log := (Engine.now e, i) :: !log))
             | _ -> (
               match handles.(x mod max 1 n) with
               | Some h -> Engine.cancel e h (* live, migrated or stale *)
               | None -> ()))))
    ops;
  Engine.run e;
  List.rev !log

let prop_wheel_matches_heap =
  QCheck.Test.make ~name:"hybrid wheel+heap fires exactly like a pure heap"
    ~count:100
    QCheck.(list_of_size Gen.(5 -- 80) (pair (int_bound 2) (int_bound 10_000)))
    (fun ops ->
      run_scheduler_program ~wheel:true ops
      = run_scheduler_program ~wheel:false ops)

(* ------------------------------------------------------------------ *)
(* Fibers *)

let test_fiber_sleep () =
  let e = Engine.create () in
  let wake = ref (-1) in
  ignore
    (Fiber.spawn e (fun () ->
         Fiber.sleep (Time.us 100);
         wake := Engine.now e));
  Engine.run e;
  check_int "woke at 100us" (Time.us 100) !wake

let test_fiber_sequential_sleeps () =
  let e = Engine.create () in
  let marks = ref [] in
  ignore
    (Fiber.spawn e (fun () ->
         Fiber.sleep 10;
         marks := Engine.now e :: !marks;
         Fiber.sleep 20;
         marks := Engine.now e :: !marks));
  Engine.run e;
  Alcotest.(check (list int)) "marks" [ 10; 30 ] (List.rev !marks)

let test_fiber_join () =
  let e = Engine.create () in
  let finished = ref false in
  let worker = Fiber.spawn e ~name:"worker" (fun () -> Fiber.sleep 50) in
  ignore
    (Fiber.spawn e ~name:"joiner" (fun () ->
         Fiber.join worker;
         finished := Engine.now e = 50));
  Engine.run e;
  check_bool "joined at 50" true !finished

let test_fiber_join_dead () =
  let e = Engine.create () in
  let ok = ref false in
  let worker = Fiber.spawn e (fun () -> ()) in
  ignore
    (Fiber.spawn e (fun () ->
         Fiber.sleep 10;
         Fiber.join worker;
         ok := true));
  Engine.run e;
  check_bool "join returns for dead fiber" true !ok

let test_fiber_kill_suspended () =
  let e = Engine.create () in
  let progressed = ref false in
  let victim =
    Fiber.spawn e (fun () ->
        Fiber.sleep (Time.sec 1);
        progressed := true)
  in
  ignore
    (Fiber.spawn e (fun () ->
         Fiber.sleep 10;
         Fiber.kill victim));
  Engine.run e;
  check_bool "victim did not progress" false !progressed;
  check_bool "victim dead" false (Fiber.alive victim);
  check_bool "ended well before 1s" true (Engine.now e < Time.sec 1)

let test_fiber_kill_runs_exit_hooks () =
  let e = Engine.create () in
  let hook = ref false in
  let victim = Fiber.spawn e (fun () -> Fiber.sleep (Time.sec 1)) in
  Fiber.on_exit victim (fun () -> hook := true);
  ignore (Fiber.spawn e (fun () -> Fiber.kill victim));
  Engine.run e;
  check_bool "hook ran" true !hook

let test_fiber_exception_propagates () =
  let e = Engine.create () in
  ignore (Fiber.spawn e ~name:"bad" (fun () -> failwith "boom"));
  match Engine.run e with
  | () -> Alcotest.fail "expected Fiber_failure"
  | exception Engine.Fiber_failure ("bad", Failure msg) when msg = "boom" -> ()
  | exception _ -> Alcotest.fail "wrong exception"

let test_fiber_self_name () =
  let e = Engine.create () in
  let seen = ref "" in
  ignore (Fiber.spawn e ~name:"me" (fun () -> seen := Fiber.name (Fiber.self ())));
  Engine.run e;
  Alcotest.(check string) "self name" "me" !seen

let test_fiber_ids_unique () =
  let e = Engine.create () in
  let a = Fiber.spawn e (fun () -> ()) in
  let b = Fiber.spawn e (fun () -> ()) in
  check_bool "distinct ids" true (Fiber.id a <> Fiber.id b)

(* ------------------------------------------------------------------ *)
(* Mailbox *)

let test_mailbox_fifo () =
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  ignore
    (Fiber.spawn e (fun () ->
         for _ = 1 to 3 do
           got := Mailbox.recv mb :: !got
         done));
  ignore
    (Fiber.spawn e (fun () ->
         Mailbox.send mb 1;
         Fiber.sleep 5;
         Mailbox.send mb 2;
         Mailbox.send mb 3));
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_blocks_until_send () =
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let when_received = ref (-1) in
  ignore
    (Fiber.spawn e (fun () ->
         ignore (Mailbox.recv mb);
         when_received := Engine.now e));
  ignore (Engine.at e 42 (fun () -> Mailbox.send mb ()));
  Engine.run e;
  check_int "received at send time" 42 !when_received

let test_mailbox_two_receivers () =
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let sum = ref 0 in
  for _ = 1 to 2 do
    ignore (Fiber.spawn e (fun () -> sum := !sum + Mailbox.recv mb))
  done;
  ignore
    (Engine.at e 10 (fun () ->
         Mailbox.send mb 3;
         Mailbox.send mb 4));
  Engine.run e;
  check_int "both delivered" 7 !sum

let test_mailbox_try_recv () =
  let mb = Mailbox.create () in
  check_bool "empty" true (Mailbox.try_recv mb = None);
  Mailbox.send mb 9;
  check_bool "full" true (Mailbox.try_recv mb = Some 9);
  check_bool "empty again" true (Mailbox.is_empty mb)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 in
  let b = Rng.create ~seed:7 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  check_bool "different streams" true (xs <> ys)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_float_in_bounds =
  QCheck.Test.make ~name:"rng float within bounds" ~count:500
    QCheck.(small_int)
    (fun seed ->
      let r = Rng.create ~seed in
      let v = Rng.float r 3.5 in
      v >= 0. && v < 3.5)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_counters () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 5;
  check_int "a" 2 (Stats.counter s "a");
  check_int "b" 5 (Stats.counter s "b");
  check_int "missing" 0 (Stats.counter s "zzz")

let test_stats_series () =
  let s = Stats.create () in
  Stats.record s "lat" 1.0;
  Stats.record s "lat" 3.0;
  check_int "count" 2 (Stats.count s "lat");
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean s "lat");
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s "lat");
  Alcotest.(check (float 1e-9)) "max" 3.0 (Stats.max_value s "lat")

let test_stats_percentile_domain () =
  let s = Stats.create () in
  Stats.record s "lat" 1.0;
  let raises p =
    match Stats.percentile s "lat" p with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "p = -1 rejected" true (raises (-1.));
  check_bool "p = 101 rejected" true (raises 101.);
  check_bool "p = nan rejected" true (raises Float.nan);
  check_bool "p = 0 ok" true (Stats.percentile s "lat" 0. >= 0.);
  check_bool "p = 100 ok" true (Stats.percentile s "lat" 100. >= 0.);
  (* accessors agree with the long form *)
  Stats.record s "lat" 2.0;
  Stats.record s "lat" 4.0;
  Alcotest.(check (float 1e-9)) "p50" (Stats.percentile s "lat" 50.) (Stats.p50 s "lat");
  Alcotest.(check (float 1e-9)) "p95" (Stats.percentile s "lat" 95.) (Stats.p95 s "lat");
  Alcotest.(check (float 1e-9)) "p99" (Stats.percentile s "lat" 99.) (Stats.p99 s "lat")

(* Percentile estimates from the log-bucket histogram must stay within the
   documented bucket width (16 sub-buckets/octave => ~3% relative error,
   3.5% with rounding slop) of the exact nearest-rank percentile. *)
let prop_stats_percentile_accuracy =
  QCheck.Test.make ~name:"percentile within log-bucket error" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 200) (float_range 1. 1000.))
              (int_range 0 100))
    (fun (samples, p_int) ->
      let p = float_of_int p_int in
      let s = Stats.create () in
      List.iter (Stats.record s "x") samples;
      let sorted = List.sort compare samples |> Array.of_list in
      let n = Array.length sorted in
      let rank =
        let r = int_of_float (Float.round (p /. 100. *. float_of_int n)) in
        if r < 1 then 1 else if r > n then n else r
      in
      let exact = sorted.(rank - 1) in
      let est = Stats.percentile s "x" p in
      abs_float (est -. exact) <= 0.035 *. exact)

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_units () =
  check_int "us" 1_000 (Time.us 1);
  check_int "ms" 1_000_000 (Time.ms 1);
  check_int "sec" 1_000_000_000 (Time.sec 1);
  check_int "us_f" 800 (Time.us_f 0.8);
  Alcotest.(check (float 1e-9)) "to_ms" 1.27 (Time.to_ms (Time.us_f 1270.))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_heap_cancel;
          Alcotest.test_case "peek skips cancelled" `Quick test_heap_peek_skips_cancelled;
          Alcotest.test_case "compaction bounds" `Quick test_heap_compaction_bounds;
          Alcotest.test_case "stale handle" `Quick test_heap_stale_handle;
        ]
        @ qsuite [ prop_heap_sorted; prop_heap_cancel_subset; prop_heap_model ] );
      ( "engine",
        [
          Alcotest.test_case "order" `Quick test_engine_order;
          Alcotest.test_case "same-instant fifo" `Quick test_engine_same_instant_fifo;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "stop" `Quick test_engine_stop;
          Alcotest.test_case "counts survive exception" `Quick
            test_engine_counts_survive_exception;
        ] );
      ( "wheel",
        [
          Alcotest.test_case "order across structures" `Quick
            test_wheel_order_across_structures;
          Alcotest.test_case "cancel after migration" `Quick
            test_wheel_cancel_after_migration;
          Alcotest.test_case "stale cancel after fire" `Quick
            test_wheel_stale_cancel_after_fire;
        ]
        @ qsuite [ prop_wheel_matches_heap ] );
      ( "fiber",
        [
          Alcotest.test_case "sleep" `Quick test_fiber_sleep;
          Alcotest.test_case "sequential sleeps" `Quick test_fiber_sequential_sleeps;
          Alcotest.test_case "join" `Quick test_fiber_join;
          Alcotest.test_case "join dead" `Quick test_fiber_join_dead;
          Alcotest.test_case "kill suspended" `Quick test_fiber_kill_suspended;
          Alcotest.test_case "kill runs exit hooks" `Quick test_fiber_kill_runs_exit_hooks;
          Alcotest.test_case "exception propagates" `Quick test_fiber_exception_propagates;
          Alcotest.test_case "self name" `Quick test_fiber_self_name;
          Alcotest.test_case "unique ids" `Quick test_fiber_ids_unique;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "blocks until send" `Quick test_mailbox_blocks_until_send;
          Alcotest.test_case "two receivers" `Quick test_mailbox_two_receivers;
          Alcotest.test_case "try_recv" `Quick test_mailbox_try_recv;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        ]
        @ qsuite [ prop_rng_int_in_bounds; prop_rng_float_in_bounds ] );
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "series" `Quick test_stats_series;
          Alcotest.test_case "percentile domain" `Quick test_stats_percentile_domain;
        ]
        @ qsuite [ prop_stats_percentile_accuracy ] );
      ("time", [ Alcotest.test_case "units" `Quick test_time_units ]);
    ]
