open Sim
open Machine
open Net
open Flip

let machine_config =
  {
    Mach.ctx_warm = Time.us 60;
    ctx_cold_idle = Time.us 70;
    ctx_cold_preempt = Time.us 110;
    interrupt_entry = Time.us 10;
    syscall_base = Time.us 25;
    trap_cost = Time.us 6;
    lock_cost = Time.us 1;
    reg_windows = 6;
  }

(* A pool of n machines with one FLIP instance each. *)
let pool n =
  let e = Engine.create () in
  let machines =
    Array.init n (fun i -> Mach.create e ~id:i ~name:(Printf.sprintf "m%d" i) machine_config)
  in
  let topo = Topology.build e ~machines () in
  let flips = Array.mapi (fun i _ -> Flip_iface.create machines.(i) topo.Topology.nics.(i)) machines in
  (e, machines, topo, flips)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type Payload.t += Probe of int

(* ------------------------------------------------------------------ *)
(* Fragment *)

let test_split_sizes () =
  let split size =
    Fragment.split ~src:(Address.point 1) ~dst:(Address.point 2) ~msg_id:1 ~mtu:1460
      ~size Payload.Empty
  in
  check_int "0 bytes -> 1 frag" 1 (List.length (split 0));
  check_int "1460 -> 1" 1 (List.length (split 1460));
  check_int "1461 -> 2" 2 (List.length (split 1461));
  check_int "4096 -> 3" 3 (List.length (split 4096))

let prop_split_conserves_bytes =
  QCheck.Test.make ~name:"split conserves bytes and indexes" ~count:300
    QCheck.(int_bound 20_000)
    (fun size ->
      let frags =
        Fragment.split ~src:(Address.point 1) ~dst:(Address.point 2) ~msg_id:7
          ~mtu:1460 ~size Payload.Empty
      in
      let total = List.fold_left (fun acc f -> acc + f.Fragment.bytes) 0 frags in
      let indexes = List.map (fun f -> f.Fragment.index) frags in
      let count = List.length frags in
      total = size
      && indexes = List.init count Fun.id
      && List.for_all (fun f -> f.Fragment.count = count && f.Fragment.total = size) frags
      && List.for_all (fun f -> f.Fragment.bytes <= 1460) frags)

(* ------------------------------------------------------------------ *)
(* Reassembly *)

let frags_for ?(msg_id = 1) size =
  Fragment.split ~src:(Address.point 1) ~dst:(Address.point 2) ~msg_id ~mtu:1460 ~size
    (Probe size)

let test_reassembly_out_of_order () =
  let r = Reassembly.create () in
  let frags = frags_for 4096 in
  match frags with
  | [ a; b; c ] ->
    check_bool "first" true (Reassembly.add r c = None);
    check_bool "second" true (Reassembly.add r a = None);
    (match Reassembly.add r b with
     | Some (_, total, Probe 4096) -> check_int "total" 4096 total
     | Some _ | None -> Alcotest.fail "expected completion with probe payload")
  | _ -> Alcotest.fail "expected 3 fragments"

let test_reassembly_duplicates () =
  let r = Reassembly.create () in
  match frags_for 2000 with
  | [ a; b ] ->
    check_bool "a" true (Reassembly.add r a = None);
    check_bool "dup a ignored" true (Reassembly.add r a = None);
    check_int "one dup" 1 (Reassembly.duplicates r);
    check_bool "b completes" true (Reassembly.add r b <> None);
    check_bool "late dup ignored" true (Reassembly.add r b = None);
    check_int "two dups" 2 (Reassembly.duplicates r)
  | _ -> Alcotest.fail "expected 2 fragments"

let test_reassembly_interleaved_messages () =
  let r = Reassembly.create () in
  let m1 = frags_for ~msg_id:1 2000 in
  let m2 = frags_for ~msg_id:2 2000 in
  let completions = ref 0 in
  List.iter
    (fun f -> if Reassembly.add r f <> None then incr completions)
    (List.concat [ [ List.nth m1 0 ]; [ List.nth m2 0 ]; [ List.nth m1 1 ]; [ List.nth m2 1 ] ]);
  check_int "both complete" 2 !completions;
  check_int "no pending" 0 (Reassembly.pending r)

let test_reassembly_purge () =
  let r = Reassembly.create () in
  ignore (Reassembly.add r (List.hd (frags_for 3000)));
  check_int "pending" 1 (Reassembly.pending r);
  Reassembly.purge r;
  check_int "purged" 0 (Reassembly.pending r)

let prop_reassembly_identity =
  QCheck.Test.make ~name:"split+reassemble = identity" ~count:200
    QCheck.(pair (int_bound 30_000) (int_range 1 30))
    (fun (size, shuffle_seed) ->
      let r = Reassembly.create () in
      let frags = Array.of_list (frags_for size) in
      let rng = Rng.create ~seed:shuffle_seed in
      for i = Array.length frags - 1 downto 1 do
        let j = Rng.int rng (i + 1) in
        let tmp = frags.(i) in
        frags.(i) <- frags.(j);
        frags.(j) <- tmp
      done;
      let completions = ref [] in
      Array.iter
        (fun f ->
          match Reassembly.add r f with
          | Some (_, total, _) -> completions := total :: !completions
          | None -> ())
        frags;
      !completions = [ size ])

(* ------------------------------------------------------------------ *)
(* Flip_iface end-to-end *)

let test_unicast_with_locate () =
  let e, _machines, _topo, flips = pool 2 in
  let addr = Address.fresh_point e in
  let got = ref [] in
  Flip_iface.register flips.(1) addr (fun frag -> got := frag :: !got);
  Flip_iface.unicast flips.(0) ~src:(Address.fresh_point e) ~dst:addr ~size:4096
    (Probe 42);
  Engine.run e;
  check_int "three fragments arrive" 3 (List.length !got);
  check_int "one locate" 1 (Flip_iface.locates_sent flips.(0));
  check_bool "payload intact" true
    (List.for_all (fun f -> f.Fragment.payload = Probe 42) !got);
  (* Second message reuses the cached route: no further locates. *)
  got := [];
  Flip_iface.unicast flips.(0) ~src:(Address.fresh_point e) ~dst:addr ~size:100
    (Probe 43);
  Engine.run e;
  check_int "cached route" 1 (Flip_iface.locates_sent flips.(0));
  check_int "one more fragment" 1 (List.length !got)

let test_unicast_loopback () =
  let e, _machines, topo, flips = pool 2 in
  let addr = Address.fresh_point e in
  let got = ref 0 in
  Flip_iface.register flips.(0) addr (fun _ -> incr got);
  Flip_iface.unicast flips.(0) ~src:(Address.fresh_point e) ~dst:addr ~size:3000
    Payload.Empty;
  Engine.run e;
  check_int "fragments looped back" 3 !got;
  check_int "nothing on the wire" 0 (Nic.frames_sent (Topology.nic topo 0))

let test_multicast_group_membership () =
  let e, _machines, _topo, flips = pool 3 in
  let grp = Address.fresh_group e in
  let got = Array.make 3 0 in
  Flip_iface.register flips.(0) grp (fun _ -> got.(0) <- got.(0) + 1);
  Flip_iface.register flips.(2) grp (fun _ -> got.(2) <- got.(2) + 1);
  Flip_iface.multicast flips.(0) ~src:(Address.fresh_point e) ~group:grp ~size:2000
    Payload.Empty;
  Engine.run e;
  check_int "sender loopback" 2 got.(0);
  check_int "non-member silent" 0 got.(1);
  check_int "member receives" 2 got.(2)

let test_locate_retries_after_loss () =
  let e, _machines, topo, flips = pool 2 in
  let addr = Address.fresh_point e in
  let got = ref 0 in
  Flip_iface.register flips.(1) addr (fun _ -> incr got);
  (* Drop the first broadcast (the locate request). *)
  let dropped = ref 0 in
  Segment.set_fault_injector topo.Topology.segments.(0)
    (Some
       (fun frame ->
         if frame.Frame.dest = Frame.Broadcast && !dropped = 0 then begin
           incr dropped;
           true
         end
         else false));
  Flip_iface.unicast flips.(0) ~src:(Address.fresh_point e) ~dst:addr ~size:10
    Payload.Empty;
  Engine.run e;
  check_int "one drop" 1 !dropped;
  check_int "retried locate" 2 (Flip_iface.locates_sent flips.(0));
  check_int "delivered after retry" 1 !got

let test_locate_gives_up () =
  let e, _machines, _topo, flips = pool 2 in
  (* Address registered nowhere: locate retries then drops the message. *)
  Flip_iface.unicast flips.(0) ~src:(Address.fresh_point e)
    ~dst:(Address.fresh_point e) ~size:10 Payload.Empty;
  Engine.run e;
  check_int "bounded retries" (Flip_iface.default_config.Flip_iface.locate_retries)
    (Flip_iface.locates_sent flips.(0))

let test_cross_segment_unicast () =
  let e, _machines, _topo, flips = pool 16 in
  let addr = Address.fresh_point e in
  let got = ref 0 in
  Flip_iface.register flips.(12) addr (fun _ -> incr got);
  Flip_iface.unicast flips.(0) ~src:(Address.fresh_point e) ~dst:addr ~size:100
    Payload.Empty;
  Engine.run e;
  check_int "delivered across switch" 1 !got

let test_wrong_address_kinds_rejected () =
  let _e, _machines, _topo, flips = pool 2 in
  Alcotest.check_raises "unicast to group"
    (Invalid_argument "Flip_iface.unicast: group address") (fun () ->
      Flip_iface.unicast flips.(0) ~src:(Address.point 1) ~dst:(Address.group 9)
        ~size:1 Payload.Empty);
  Alcotest.check_raises "multicast to point"
    (Invalid_argument "Flip_iface.multicast: point address") (fun () ->
      Flip_iface.multicast flips.(0) ~src:(Address.point 1) ~group:(Address.point 9)
        ~size:1 Payload.Empty)

let test_send_cost_scales_with_fragments () =
  let _e, _machines, _topo, flips = pool 2 in
  let f = flips.(0) in
  check_int "1 packet" 1 (Flip_iface.fragments_of f ~size:0);
  check_int "3 packets" 3 (Flip_iface.fragments_of f ~size:4096);
  check_bool "cost grows" true
    (Flip_iface.send_cost f ~size:4096 > Flip_iface.send_cost f ~size:0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "flip"
    [
      ( "fragment",
        [ Alcotest.test_case "split sizes" `Quick test_split_sizes ]
        @ qsuite [ prop_split_conserves_bytes ] );
      ( "reassembly",
        [
          Alcotest.test_case "out of order" `Quick test_reassembly_out_of_order;
          Alcotest.test_case "duplicates" `Quick test_reassembly_duplicates;
          Alcotest.test_case "interleaved" `Quick test_reassembly_interleaved_messages;
          Alcotest.test_case "purge" `Quick test_reassembly_purge;
        ]
        @ qsuite [ prop_reassembly_identity ] );
      ( "iface",
        [
          Alcotest.test_case "unicast + locate" `Quick test_unicast_with_locate;
          Alcotest.test_case "loopback" `Quick test_unicast_loopback;
          Alcotest.test_case "multicast membership" `Quick test_multicast_group_membership;
          Alcotest.test_case "locate retry on loss" `Quick test_locate_retries_after_loss;
          Alcotest.test_case "locate gives up" `Quick test_locate_gives_up;
          Alcotest.test_case "cross-segment" `Quick test_cross_segment_unicast;
          Alcotest.test_case "address kinds" `Quick test_wrong_address_kinds_rejected;
          Alcotest.test_case "send cost" `Quick test_send_cost_scales_with_fragments;
        ] );
    ]
