(* Tests for the conservative laned engine: lane plans, the windowed
   run loop with deterministic cross-lane merge, and full laned cluster
   runs (reproducibility, -j fan-out bit-identity, and the 1-lane
   collapse to the sequential path). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Lane plans *)

let test_plan_two_segments () =
  match Sim.Lanes.plan ~n_machines:12 ~per_segment:8 ~switch_latency:100 with
  | None -> Alcotest.fail "12 machines on 8-per-segment must shard"
  | Some p ->
    check_int "lanes: 2 segments + switch" 3 p.Sim.Lanes.n_lanes;
    check_int "switch lane is last" 2 p.Sim.Lanes.switch_lane;
    check_int "ingress" 50 p.Sim.Lanes.ingress;
    check_int "egress" 50 p.Sim.Lanes.egress;
    check_int "lookahead = min hop" 50 p.Sim.Lanes.lookahead;
    Alcotest.(check (array int))
      "machine lanes" [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1 |]
      p.Sim.Lanes.machine_lane;
    Alcotest.(check (array int)) "segment lanes" [| 0; 1 |] p.Sim.Lanes.segment_lane

let test_plan_odd_latency () =
  match Sim.Lanes.plan ~n_machines:20 ~per_segment:8 ~switch_latency:101 with
  | None -> Alcotest.fail "20 machines must shard"
  | Some p ->
    check_int "lanes" 4 p.Sim.Lanes.n_lanes;
    check_int "ingress + egress = switch latency" 101
      (p.Sim.Lanes.ingress + p.Sim.Lanes.egress);
    check_int "lookahead is the smaller hop" 50 p.Sim.Lanes.lookahead

let test_plan_collapses () =
  check_bool "single segment: no plan" true
    (Sim.Lanes.plan ~n_machines:8 ~per_segment:8 ~switch_latency:100 = None);
  check_bool "zero-latency switch: no plan" true
    (Sim.Lanes.plan ~n_machines:12 ~per_segment:8 ~switch_latency:0 = None);
  check_bool "1 ns switch: no window, no plan" true
    (Sim.Lanes.plan ~n_machines:12 ~per_segment:8 ~switch_latency:1 = None)

(* Cluster-scale plans: 8-segment (64-machine) and 64-segment (512-machine)
   pools must shard into one lane per segment plus the switch lane, with
   every rank mapped to its segment's lane. *)
let test_plan_many_segments () =
  List.iter
    (fun n ->
      let segs = n / 8 in
      match Sim.Lanes.plan ~n_machines:n ~per_segment:8 ~switch_latency:100 with
      | None -> Alcotest.failf "%d machines must shard" n
      | Some p ->
        check_int
          (Printf.sprintf "%d machines: %d segments + switch" n segs)
          (segs + 1) p.Sim.Lanes.n_lanes;
        check_int "switch lane is last" segs p.Sim.Lanes.switch_lane;
        check_int "lookahead = min hop" 50 p.Sim.Lanes.lookahead;
        check_int "every rank mapped" n (Array.length p.Sim.Lanes.machine_lane);
        Array.iteri
          (fun rank lane ->
            check_int (Printf.sprintf "rank %d lane" rank) (rank / 8) lane)
          p.Sim.Lanes.machine_lane;
        Alcotest.(check (array int))
          "segment lanes enumerate segments"
          (Array.init segs (fun s -> s))
          p.Sim.Lanes.segment_lane)
    [ 64; 512 ]

(* ------------------------------------------------------------------ *)
(* The laned engine itself *)

(* A ping-pong across two lanes at exactly the lookahead horizon: the
   merge must deliver each hop into the destination lane, and reruns must
   produce the identical trace. *)
let laned_pingpong () =
  let e = Sim.Engine.create () in
  let look = 100 in
  Sim.Engine.configure_lanes e ~n:2 ~lookahead:look;
  let trace = ref [] in
  let hops = ref 10 in
  let rec hop lane () =
    trace := (Sim.Engine.now e, lane) :: !trace;
    if !hops > 0 then begin
      decr hops;
      Sim.Engine.at_lane e ~lane:(1 - lane)
        (Sim.Engine.now e + look)
        (hop (1 - lane))
    end
  in
  ignore (Sim.Engine.after e look (hop 0));
  Sim.Engine.run e;
  (List.rev !trace, Sim.Engine.windows e, Sim.Engine.cross_merged e)

let test_laned_pingpong_deterministic () =
  let t1, w1, m1 = laned_pingpong () in
  let t2, w2, m2 = laned_pingpong () in
  check_int "10 hops + start" 11 (List.length t1);
  check_int "every hop crossed lanes" 10 m1;
  check_bool "windows advanced" true (w1 > 0);
  Alcotest.(check (list (pair int int))) "trace identical on rerun" t1 t2;
  check_int "windows identical" w1 w2;
  check_int "merges identical" m1 m2;
  (* hops alternate lanes and advance by exactly the lookahead *)
  List.iteri
    (fun i (t, lane) ->
      check_int "hop time" ((i + 1) * 100) t;
      check_int "hop lane" (i mod 2) lane)
    t1

(* Same-instant cross-lane sends from two source lanes must merge in
   (time, src lane, send seq) order, independent of send order. *)
let test_merge_order () =
  let e = Sim.Engine.create () in
  Sim.Engine.configure_lanes e ~n:3 ~lookahead:10 ;
  let log = ref [] in
  let note tag () = log := tag :: !log in
  (* Lane 1 sends first in real time, but lane 0 is the smaller source id:
     at equal target times the merge must order lane 0's sends first. *)
  Sim.Engine.with_lane e 1 (fun () ->
      Sim.Engine.at_lane e ~lane:2 50 (note "from1-a");
      Sim.Engine.at_lane e ~lane:2 50 (note "from1-b"));
  Sim.Engine.with_lane e 0 (fun () ->
      Sim.Engine.at_lane e ~lane:2 50 (note "from0-a");
      Sim.Engine.at_lane e ~lane:2 40 (note "from0-early"));
  Sim.Engine.run e;
  Alcotest.(check (list string))
    "deterministic merge order"
    [ "from0-early"; "from0-a"; "from1-a"; "from1-b" ]
    (List.rev !log)

let test_step_rejects_laned () =
  let e = Sim.Engine.create () in
  Sim.Engine.configure_lanes e ~n:2 ~lookahead:5;
  Alcotest.check_raises "step on laned engine"
    (Invalid_argument "Sim.Engine.step: laned engine (use run)") (fun () ->
      ignore (Sim.Engine.step e))

(* ------------------------------------------------------------------ *)
(* Laned cluster runs *)

let tsp = Core.Runner.app_named "tsp"

let outcome ?lanes ?(procs = 12) impl =
  Core.Runner.run ?lanes ~impl ~procs tsp

(* 12 machines span two segments, so ~lanes:true actually shards; the
   whole outcome record (seconds, checksum, events, stats) must be
   reproducible run to run. *)
let test_laned_cluster_repeatable () =
  let a = outcome ~lanes:true Core.Cluster.Kernel in
  let b = outcome ~lanes:true Core.Cluster.Kernel in
  check_bool "laned run validates" true a.Core.Runner.o_valid;
  check_bool "outcomes identical" true (a = b)

(* A single-segment cluster has no plan: lanes on and off must be the
   same simulation event for event. *)
let test_single_segment_collapse () =
  let a = outcome ~procs:4 ~lanes:true Core.Cluster.User in
  let b = outcome ~procs:4 ~lanes:false Core.Cluster.User in
  check_bool "bit-identical outcomes" true (a = b)

(* Laned cells through run_many: a -j 2 pool must reproduce the
   sequential path byte for byte. *)
let test_laned_fanout_identical () =
  let cells =
    [
      (Core.Cluster.Kernel, 12, tsp);
      (Core.Cluster.User, 12, tsp);
    ]
  in
  let seq = Core.Runner.run_many ~lanes:true cells in
  let par =
    Exec.Pool.with_pool ~jobs:2 (fun p ->
        Core.Runner.run_many ~pool:p ~lanes:true cells)
  in
  check_bool "-j1 = -j2 under lanes" true (seq = par);
  List.iter
    (fun o -> check_bool "validates" true o.Core.Runner.o_valid)
    seq

(* The laned engine must actually be in play: a 12-machine cluster
   reports a 2-segments + switch lane count and a positive lookahead. *)
let test_cluster_lane_shape () =
  let c = Core.Cluster.create ~lanes:true ~n:12 () in
  check_int "3 lanes" 3 (Sim.Engine.n_lanes c.Core.Cluster.eng);
  check_bool "positive lookahead" true
    (Sim.Engine.lookahead c.Core.Cluster.eng > 0);
  check_int "rank 0 on lane 0" 0 (Core.Cluster.machine_lane c 0);
  check_int "rank 11 on lane 1" 1 (Core.Cluster.machine_lane c 11);
  let c1 = Core.Cluster.create ~lanes:true ~n:8 () in
  check_int "single segment stays sequential" 1
    (Sim.Engine.n_lanes c1.Core.Cluster.eng)

(* A 512-node pool: 64 segments + switch, every rank's lane equal to its
   segment, and the canonical server placement spread one per segment. *)
let test_cluster_512_lane_assignment () =
  let c = Core.Cluster.create ~lanes:true ~n:512 () in
  check_int "64 segments" 64 (Core.Cluster.n_segments c);
  check_int "65 lanes" 65 (Sim.Engine.n_lanes c.Core.Cluster.eng);
  for rank = 0 to 511 do
    check_int
      (Printf.sprintf "rank %d on its segment's lane" rank)
      (rank / 8)
      (Core.Cluster.machine_lane c rank)
  done;
  let servers = Core.Cluster.server_ranks c in
  check_int "one server per segment" 64 (List.length servers);
  List.iteri
    (fun s rank -> check_int "server leads its segment" (s * 8) rank)
    servers

let () =
  Alcotest.run "lanes"
    [
      ( "plan",
        [
          Alcotest.test_case "two segments" `Quick test_plan_two_segments;
          Alcotest.test_case "odd latency split" `Quick test_plan_odd_latency;
          Alcotest.test_case "collapses" `Quick test_plan_collapses;
          Alcotest.test_case "8 and 64 segment pools" `Quick
            test_plan_many_segments;
        ] );
      ( "engine",
        [
          Alcotest.test_case "pingpong deterministic" `Quick
            test_laned_pingpong_deterministic;
          Alcotest.test_case "merge order" `Quick test_merge_order;
          Alcotest.test_case "step rejects laned" `Quick test_step_rejects_laned;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "lane shape" `Quick test_cluster_lane_shape;
          Alcotest.test_case "512-node lane assignment" `Quick
            test_cluster_512_lane_assignment;
          Alcotest.test_case "laned run repeatable" `Quick
            test_laned_cluster_repeatable;
          Alcotest.test_case "single segment collapse" `Quick
            test_single_segment_collapse;
          Alcotest.test_case "laned -j fan-out identical" `Quick
            test_laned_fanout_identical;
        ] );
    ]
