open Sim
open Net

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type Payload.t += Blob of int

(* ------------------------------------------------------------------ *)
(* Spec: grammar *)

let spec s =
  match Faults.Spec.parse s with
  | Ok t -> t
  | Error m -> Alcotest.failf "parse %S: %s" s m

let test_spec_parse () =
  let t = spec "seed=42,loss=0.01,dup=0.005" in
  check_int "seed" 42 t.Faults.Spec.seed;
  Alcotest.(check (float 0.)) "loss" 0.01 t.Faults.Spec.loss;
  Alcotest.(check (float 0.)) "dup" 0.005 t.Faults.Spec.dup;
  let t = spec "burst=0.001x8" in
  Alcotest.(check (float 0.)) "burst p" 0.001 t.Faults.Spec.burst_p;
  check_int "burst len" 8 t.Faults.Spec.burst_len;
  let t = spec "part=0.5+0.2,part=1+0.1,swpart=2+1" in
  check_int "parts" 2 (List.length t.Faults.Spec.parts);
  check_int "sw parts" 1 (List.length t.Faults.Spec.sw_parts);
  (match t.Faults.Spec.parts with
   | { w_start; w_len } :: _ ->
     check_int "part start" (Time.ms 500) w_start;
     check_int "part len" (Time.ms 200) w_len
   | [] -> Alcotest.fail "no window");
  let t = spec "reorder=0.1,rdelay=250" in
  check_int "rdelay" (Time.us 250) t.Faults.Spec.reorder_delay;
  check_bool "null spec" true (Faults.Spec.is_null (spec "seed=9"));
  check_bool "loss not null" false (Faults.Spec.is_null (Faults.Spec.loss 0.01))

let test_spec_parse_errors () =
  let bad s =
    match Faults.Spec.parse s with
    | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
    | Error _ -> ()
  in
  bad "loss=1.5";
  bad "loss=x";
  bad "frobnicate=1";
  bad "burst=0.1";
  bad "part=5";
  bad "seed";
  bad "rdelay=-3"

(* Round-trip: a spec printed and re-parsed is the same value.  Specs are
   derived from an integer so the probabilities (multiples of 1/1000) and
   window times (multiples of 1 ms) survive decimal printing exactly. *)
let spec_of_seed s =
  let rng = Rng.create ~seed:(s + 1) in
  let prob () = float_of_int (Rng.int rng 1001) /. 1000. in
  let pos_prob () = float_of_int (1 + Rng.int rng 1000) /. 1000. in
  let windows n = List.init n (fun _ ->
      { Faults.Spec.w_start = Time.ms (Rng.int rng 5000);
        w_len = Time.ms (Rng.int rng 2000) })
  in
  let reorder = prob () in
  let bursty = Rng.bool rng in
  { Faults.Spec.seed = Rng.int rng 100_000;
    loss = prob ();
    dup = prob ();
    corrupt = prob ();
    reorder;
    reorder_delay =
      (if reorder > 0. then Time.us (1 + Rng.int rng 5000)
       else Faults.Spec.none.Faults.Spec.reorder_delay);
    burst_p = (if bursty then pos_prob () else 0.);
    burst_len = (if bursty then 1 + Rng.int rng 16 else 0);
    parts = windows (Rng.int rng 3);
    sw_parts = windows (Rng.int rng 2);
    seq_crash = (if Rng.bool rng then Some (Time.ms (1 + Rng.int rng 5000)) else None);
  }

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"spec to_string/parse round-trips" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun s ->
      let t = spec_of_seed s in
      Faults.Spec.parse (Faults.Spec.to_string t) = Ok t)

(* ------------------------------------------------------------------ *)
(* Segment fault verdicts *)

(* A bare segment with a transmitter and a receiver logging (time, bytes). *)
let seg_rig () =
  let e = Engine.create () in
  let seg = Segment.create e "s" in
  let got = ref [] in
  let _rx =
    Segment.attach seg ~name:"rx"
      ~accepts:(fun f -> Frame.is_for ~mac:1 f)
      (fun f -> got := (Engine.now e, f.Frame.bytes) :: !got)
  in
  let tx = Segment.attach seg ~name:"tx" ~accepts:(fun _ -> false) (fun _ -> ()) in
  let send ?(at = 0) bytes =
    ignore
      (Engine.at e at (fun () ->
           Segment.transmit seg ~from:tx
             (Frame.make ~src:0 ~dest:(Frame.Unicast 1) ~bytes Payload.Empty)))
  in
  (e, seg, got, send)

let test_verdict_drop () =
  let e, seg, got, send = seg_rig () in
  Segment.set_fault seg (Some (fun _ -> Segment.Drop));
  send 100;
  send 200;
  Engine.run e;
  check_int "nothing delivered" 0 (List.length !got);
  check_int "dropped" 2 (Segment.frames_dropped seg);
  check_int "still carried" 2 (Segment.frames_carried seg)

let test_verdict_duplicate () =
  let e, seg, got, send = seg_rig () in
  let first = ref true in
  Segment.set_fault seg
    (Some (fun _ -> if !first then (first := false; Segment.Duplicate) else Segment.Pass));
  send 100;
  Engine.run e;
  Alcotest.(check (list int)) "delivered twice" [ 100; 100 ] (List.map snd !got);
  check_int "duplicated" 1 (Segment.frames_duplicated seg);
  (* The copy occupies the wire a second time, so the deliveries are two
     wire times apart. *)
  (match List.rev_map fst !got with
   | [ t1; t2 ] -> check_bool "serialized copies" true (t2 > t1)
   | _ -> Alcotest.fail "expected two deliveries")

let test_verdict_delay_reorders () =
  let e, seg, got, send = seg_rig () in
  let n = ref 0 in
  Segment.set_fault seg
    (Some (fun _ -> incr n; if !n = 1 then Segment.Delay (Time.ms 5) else Segment.Pass));
  send 100;
  send 200;
  Engine.run e;
  Alcotest.(check (list int)) "second frame overtakes" [ 200; 100 ]
    (List.rev_map snd !got);
  check_int "delayed" 1 (Segment.frames_delayed seg)

let test_partition_window () =
  let e, seg, got, send = seg_rig () in
  let s =
    Faults.Inject.install_segment e ~index:0 seg
      (spec "seed=3,part=0+0.001")
  in
  send ~at:0 100;
  (* 1 ms in: wire starts inside the window. *)
  send ~at:(Time.us 900) 100;
  (* Well past the blackout. *)
  send ~at:(Time.ms 10) 300;
  Engine.run e;
  Alcotest.(check (list int)) "only the late frame survives" [ 300 ]
    (List.rev_map snd !got);
  check_int "part drops" 2 (Faults.Inject.part_drops s);
  check_int "killed" 2 (Faults.Inject.killed s)

(* Satellite: killed frames must show up in the Obs ledger as [Fault_wire]
   under the frame's topmost protocol layer — not as [Header_wire]. *)
let test_fault_wire_ledger () =
  let e = Engine.create () in
  let seg = Segment.create e "s" in
  let tx = Segment.attach seg ~name:"tx" ~accepts:(fun _ -> false) (fun _ -> ()) in
  let frame =
    Frame.make
      ~hdr:[ (Obs.Layer.Flip, 16); (Obs.Layer.Amoeba_rpc, 56) ]
      ~src:0 ~dest:(Frame.Unicast 1) ~bytes:100 Payload.Empty
  in
  let wire = Segment.wire_time seg frame in
  let _s = Faults.Inject.install_segment e ~index:0 seg (spec "seed=1,loss=1") in
  let r = Obs.Recorder.create () in
  Obs.Recorder.install r;
  Fun.protect ~finally:Obs.Recorder.uninstall (fun () ->
      Segment.transmit seg ~from:tx frame;
      Engine.run e);
  check_int "full wire time on Fault_wire, top layer"
    wire
    (Obs.Recorder.ledger_ns r ~layer:Obs.Layer.Amoeba_rpc ~cause:Obs.Cause.Fault_wire);
  check_int "no Header_wire for killed frame" 0
    (Obs.Recorder.ledger_ns r ~layer:Obs.Layer.Flip ~cause:Obs.Cause.Header_wire);
  check_int "faults.drops counted" 1
    (Stats.counter (Obs.Recorder.stats r) "faults.drops")

(* ------------------------------------------------------------------ *)
(* Injector determinism *)

(* Drive the same synthetic traffic through a fresh segment and return the
   logged fault schedule. *)
let schedule_run ~spec:sp =
  let e = Engine.create () in
  let seg = Segment.create e "s" in
  let _rx =
    Segment.attach seg ~name:"rx" ~accepts:(fun _ -> true) (fun _ -> ())
  in
  let tx = Segment.attach seg ~name:"tx" ~accepts:(fun _ -> false) (fun _ -> ()) in
  let s = Faults.Inject.install_segment ~log:true e ~index:0 seg sp in
  for i = 0 to 299 do
    ignore
      (Engine.at e (Time.us (137 * i)) (fun () ->
           Segment.transmit seg ~from:tx
             (Frame.make ~src:0 ~dest:(Frame.Unicast 1)
                ~bytes:(40 + ((i * 97) mod 1400))
                Payload.Empty)))
  done;
  Engine.run e;
  (Faults.Inject.schedule s, s, seg)

let stress = "seed=11,loss=0.1,dup=0.05,corrupt=0.05,reorder=0.05,burst=0.01x4"

let test_schedule_deterministic () =
  let s1, _, _ = schedule_run ~spec:(spec stress) in
  let s2, _, _ = schedule_run ~spec:(spec stress) in
  check_bool "some faults injected" true (List.length s1 > 10);
  Alcotest.(check (list string)) "byte-identical schedule" s1 s2;
  let s3, _, _ = schedule_run ~spec:(spec "seed=12,loss=0.1,dup=0.05,corrupt=0.05,reorder=0.05,burst=0.01x4") in
  check_bool "different seed, different schedule" true (s1 <> s3)

let test_inject_counters_match_segment () =
  let _, s, seg = schedule_run ~spec:(spec stress) in
  check_int "drops" (Faults.Inject.drops s + Faults.Inject.burst_drops s)
    (Segment.frames_dropped seg);
  check_int "corrupts" (Faults.Inject.corrupts s) (Segment.frames_corrupted seg);
  check_int "dups" (Faults.Inject.dups s) (Segment.frames_duplicated seg);
  check_int "reorders" (Faults.Inject.reorders s) (Segment.frames_delayed seg);
  check_int "killed = drops+bursts+corrupts"
    (Faults.Inject.drops s + Faults.Inject.burst_drops s + Faults.Inject.corrupts s)
    (Faults.Inject.killed s);
  check_bool "injected counts everything" true
    (Faults.Inject.injected s >= Faults.Inject.killed s)

(* Each class draws from its own stream: enabling another class (one that
   does not add frames to the traffic) must not shift the loss schedule. *)
let test_class_independence () =
  let _, s1, _ = schedule_run ~spec:(spec "seed=11,loss=0.1") in
  let _, s2, _ = schedule_run ~spec:(spec "seed=11,loss=0.1,corrupt=0.07,reorder=0.05") in
  check_bool "losses happened" true (Faults.Inject.drops s1 > 0);
  check_int "same losses with corrupt+reorder enabled" (Faults.Inject.drops s1)
    (Faults.Inject.drops s2)

(* ------------------------------------------------------------------ *)
(* Reassembly under a faulty fragment stream (model test) *)

(* Loss, duplication and reordering applied to a fragment stream: every
   completed reassembly must be the original payload with the original
   size — never a splice — and a stream missing a fragment never
   completes. *)
let prop_reassembly_fault_model =
  QCheck.Test.make ~name:"reassembly under loss/dup/reorder: original or nothing"
    ~count:400
    QCheck.(pair (int_bound 20_000) (int_bound 1_000_000))
    (fun (size, seed) ->
      let payload = Blob seed in
      let src = Flip.Address.point 1 in
      let frags =
        Flip.Fragment.split ~src ~dst:(Flip.Address.point 2) ~msg_id:(seed + 1)
          ~mtu:1460 ~size payload
      in
      let rng = Rng.create ~seed:(seed + 17) in
      let loss_pct = Rng.int rng 40 in
      let dup_pct = Rng.int rng 60 in
      (* Per-fragment fate, then a partial shuffle for reordering. *)
      let deliveries =
        List.concat_map
          (fun f ->
            if Rng.int rng 100 < loss_pct then []
            else if Rng.int rng 100 < dup_pct then [ f; f ]
            else [ f ])
          frags
      in
      let arr = Array.of_list deliveries in
      for i = Array.length arr - 1 downto 1 do
        if Rng.bool rng then begin
          let j = Rng.int rng (i + 1) in
          let tmp = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- tmp
        end
      done;
      let complete =
        let seen = Hashtbl.create 8 in
        Array.iter (fun f -> Hashtbl.replace seen f.Flip.Fragment.index ()) arr;
        Hashtbl.length seen = List.length frags
      in
      let r = Flip.Reassembly.create () in
      let completions = ref 0 in
      let intact = ref true in
      Array.iter
        (fun f ->
          match Flip.Reassembly.add r f with
          | Some (s, total, p) ->
            incr completions;
            if not (total = size && p == payload && s = src) then intact := false
          | None -> ())
        arr;
      !intact
      && (if complete then !completions >= 1 else !completions = 0))

(* ------------------------------------------------------------------ *)
(* Conformance matrix: both stacks, all six apps, three loss rates *)

let small_apps : Core.Runner.app list =
  [
    { Core.Runner.app_name = "tsp";
      app_make = (fun dom -> Apps.Tsp.make dom Apps.Tsp.test_params);
      app_reference = lazy (Apps.Tsp.sequential Apps.Tsp.test_params) };
    { Core.Runner.app_name = "asp";
      app_make = (fun dom -> Apps.Asp.make dom Apps.Asp.test_params);
      app_reference = lazy (Apps.Asp.sequential Apps.Asp.test_params) };
    { Core.Runner.app_name = "ab";
      app_make = (fun dom -> Apps.Ab.make dom Apps.Ab.test_params);
      app_reference = lazy (Apps.Ab.sequential Apps.Ab.test_params) };
    { Core.Runner.app_name = "rl";
      app_make = (fun dom -> Apps.Rl.make dom Apps.Rl.test_params);
      app_reference = lazy (Apps.Rl.sequential Apps.Rl.test_params) };
    { Core.Runner.app_name = "sor";
      app_make = (fun dom -> Apps.Sor.make dom Apps.Sor.test_params);
      app_reference = lazy (Apps.Sor.sequential Apps.Sor.test_params) };
    { Core.Runner.app_name = "leq";
      app_make = (fun dom -> Apps.Leq.make dom Apps.Leq.test_params);
      app_reference = lazy (Apps.Leq.sequential Apps.Leq.test_params) };
  ]

let rates = [ 0.001; 0.01; 0.05 ]

let test_conformance_matrix () =
  let retrans = Hashtbl.create 4 and kills = Hashtbl.create 4 in
  List.iter
    (fun impl ->
      List.iter
        (fun app ->
          let base = Core.Runner.run ~impl ~procs:8 app in
          check_bool
            (Printf.sprintf "%s %s fault-free valid" app.Core.Runner.app_name
               (Core.Cluster.impl_label impl))
            true base.Core.Runner.o_valid;
          List.iter
            (fun rate ->
              let o =
                Core.Runner.run
                  ~faults:(Faults.Spec.loss ~seed:11 rate)
                  ~checked:true ~impl ~procs:8 app
              in
              let tag =
                Printf.sprintf "%s %s loss=%g" app.Core.Runner.app_name
                  (Core.Cluster.impl_label impl) rate
              in
              Alcotest.(check (list string)) (tag ^ ": no violations") []
                o.Core.Runner.o_violations;
              check_bool (tag ^ ": valid") true o.Core.Runner.o_valid;
              check_int (tag ^ ": result equals fault-free run")
                base.Core.Runner.o_checksum o.Core.Runner.o_checksum;
              let bump h n =
                Hashtbl.replace h impl
                  (n + Option.value ~default:0 (Hashtbl.find_opt h impl))
              in
              bump retrans o.Core.Runner.o_retrans;
              bump kills o.Core.Runner.o_fault_kills)
            rates)
        small_apps;
      (* Loss actually happened and each stack recovered from it. *)
      check_bool
        (Core.Cluster.impl_label impl ^ ": schedule killed frames")
        true
        (Hashtbl.find kills impl > 0);
      check_bool
        (Core.Cluster.impl_label impl ^ ": at least one retransmission")
        true
        (Hashtbl.find retrans impl > 0))
    [ Core.Cluster.Kernel; Core.Cluster.User; Core.Cluster.User_optimized ]

(* ------------------------------------------------------------------ *)
(* Determinism across runs and across -j fan-out *)

let outcome_key o =
  ( o.Core.Runner.o_seconds,
    o.Core.Runner.o_checksum,
    o.Core.Runner.o_events,
    o.Core.Runner.o_retrans,
    o.Core.Runner.o_fault_kills )

let test_runner_fault_determinism () =
  let tsp = List.hd small_apps in
  let faults = spec "seed=5,loss=0.02,dup=0.01,reorder=0.01" in
  let run () = Core.Runner.run ~faults ~checked:true ~impl:Core.Cluster.Kernel ~procs:8 tsp in
  let a = run () and b = run () in
  check_bool "same seed: identical final sim time and counters" true
    (outcome_key a = outcome_key b);
  check_bool "faults were injected" true (a.Core.Runner.o_fault_kills > 0)

let test_runner_jobs_deterministic () =
  let tsp = List.hd small_apps in
  let faults = spec "seed=5,loss=0.02,dup=0.01,reorder=0.01" in
  let cells =
    [ (Core.Cluster.Kernel, 8, tsp); (Core.Cluster.User, 8, tsp) ]
  in
  let seq = Core.Runner.run_many ~faults ~checked:true cells in
  let par =
    Exec.Pool.with_pool ~jobs:2 (fun p ->
        Core.Runner.run_many ~pool:p ~faults ~checked:true cells)
  in
  check_bool "-j 1 = -j 2 under faults" true
    (List.map outcome_key seq = List.map outcome_key par);
  List.iter
    (fun o ->
      Alcotest.(check (list string)) "no violations" [] o.Core.Runner.o_violations)
    (seq @ par)

(* ------------------------------------------------------------------ *)
(* fault_sweep driver *)

let test_fault_sweep_smoke () =
  let rows = Core.Experiments.fault_sweep ~rates:[ 0.; 0.01 ] ~procs:4 () in
  check_int "3 impls x 2 rates" 6 (List.length rows);
  List.iter
    (fun r ->
      check_bool "valid" true r.Core.Experiments.fw_valid;
      check_int "no violations" 0 r.Core.Experiments.fw_violations;
      check_bool "latency measured" true (r.Core.Experiments.fw_rpc_ms > 0.))
    rows;
  (* The lossy rows actually exercised recovery. *)
  let lossy = List.filter (fun r -> r.Core.Experiments.fw_rate > 0.) rows in
  check_bool "lossy rows injected faults" true
    (List.for_all (fun r -> r.Core.Experiments.fw_kills > 0) lossy)

(* Sweeps are reproducible-but-variable: the seed argument fully determines
   the fault schedules, and different seeds give different schedules. *)
let test_fault_sweep_seed () =
  let sweep seed =
    Core.Experiments.fault_sweep ~rates:[ 0.02 ] ~app_name:"tsp" ~procs:4 ~seed ()
  in
  let key r =
    ( r.Core.Experiments.fw_rpc_ms,
      r.Core.Experiments.fw_grp_ms,
      r.Core.Experiments.fw_app_s,
      r.Core.Experiments.fw_retrans,
      r.Core.Experiments.fw_kills )
  in
  let a = sweep 3 and b = sweep 3 and c = sweep 4 in
  check_bool "same seed: byte-identical rows" true (List.map key a = List.map key b);
  check_bool "different seed: different schedules" true
    (List.map key a <> List.map key c)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "spec",
        [
          Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "parse errors" `Quick test_spec_parse_errors;
          QCheck_alcotest.to_alcotest prop_spec_roundtrip;
        ] );
      ( "segment",
        [
          Alcotest.test_case "drop verdict" `Quick test_verdict_drop;
          Alcotest.test_case "duplicate verdict" `Quick test_verdict_duplicate;
          Alcotest.test_case "delay reorders" `Quick test_verdict_delay_reorders;
          Alcotest.test_case "partition window" `Quick test_partition_window;
          Alcotest.test_case "fault_wire ledger" `Quick test_fault_wire_ledger;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "schedule byte-identical" `Quick test_schedule_deterministic;
          Alcotest.test_case "counters match segment" `Quick test_inject_counters_match_segment;
          Alcotest.test_case "class independence" `Quick test_class_independence;
          Alcotest.test_case "runner same-seed" `Quick test_runner_fault_determinism;
          Alcotest.test_case "runner -j fan-out" `Quick test_runner_jobs_deterministic;
        ] );
      ("reassembly", [ QCheck_alcotest.to_alcotest prop_reassembly_fault_model ]);
      ( "conformance",
        [
          Alcotest.test_case "six apps x two stacks x three rates" `Slow
            test_conformance_matrix;
          Alcotest.test_case "fault sweep" `Slow test_fault_sweep_smoke;
          Alcotest.test_case "fault sweep seed" `Slow test_fault_sweep_seed;
        ] );
    ]
