(* lib/scenario: trace replay, loss x load tail grids, soak runs and
   cost-profile calibration. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- traces --- *)

let entry_gen =
  QCheck.Gen.(
    map2
      (fun at size -> { Load.Trace.at; size })
      (* microsecond-grid offsets up to ~100 s: what the text format's
         three decimals represent exactly *)
      (map (fun us -> us * 1_000) (int_bound 100_000_000))
      (int_bound 8_192))

let trace_arb =
  QCheck.make
    ~print:(fun t -> Load.Trace.to_string t)
    QCheck.Gen.(
      map
        (fun es ->
          Load.Trace.of_entries
            (List.sort (fun a b -> compare a.Load.Trace.at b.Load.Trace.at) es))
        (list_size (int_bound 50) entry_gen))

let trace_roundtrip =
  QCheck.Test.make ~name:"trace parse/print round-trip" ~count:300 trace_arb
    (fun t ->
      match Load.Trace.parse (Load.Trace.to_string t) with
      | Ok t' -> t = t'
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let test_trace_parse_errors () =
  let bad s =
    match Load.Trace.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parse accepted %S" s
  in
  bad "1.0 64\n0.5 64\n";
  (* unsorted *)
  bad "-1.0 64\n";
  bad "1.0 -3\n";
  bad "1.0\n";
  bad "x y\n";
  (match Load.Trace.parse "# comment\n\n 0.000 0 \n12.500 64\n" with
   | Ok t ->
     check_int "entries" 2 (Load.Trace.length t);
     check_int "second at" (Sim.Time.us_f 12.5) t.(1).Load.Trace.at
   | Error e -> Alcotest.fail e)

let test_trace_scale () =
  let t =
    Load.Trace.of_entries
      [ { Load.Trace.at = 0; size = 1 }; { at = Sim.Time.ms 10; size = 2 } ]
  in
  check_bool "identity" true (Load.Trace.scale 1. t = t);
  let half = Load.Trace.scale 0.5 t in
  check_int "compressed" (Sim.Time.ms 5) (Load.Trace.duration half)

let synth ?(rate = 500.) ?(seed = 7) () =
  Load.Trace.synthesize ~rate ~duration:(Sim.Time.sec 2) ~seed ()

let test_synthesize_deterministic () =
  check_bool "same seed same trace" true (synth () = synth ());
  check_bool "seed changes trace" true (synth () <> synth ~seed:8 ());
  let t = synth () in
  check_bool "non-empty" true (Load.Trace.length t > 0);
  check_bool "fits duration" true (Load.Trace.duration t <= Sim.Time.sec 2);
  (* File round-trip. *)
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Load.Trace.save path t;
      match Load.Trace.load path with
      | Ok t' -> check_bool "file round-trip" true (t = t')
      | Error e -> Alcotest.fail e)

let test_synthesize_diurnal_shape () =
  (* Period = duration, floor 0.1: the raised cosine troughs at the ends
     and peaks mid-trace, so the middle quarter must hold several times
     the arrivals of the first quarter. *)
  let t = synth ~rate:2000. () in
  let q = Sim.Time.ms 500 in
  let count lo hi =
    Array.fold_left
      (fun n e ->
        if e.Load.Trace.at >= lo && e.Load.Trace.at < hi then n + 1 else n)
      0 t
  in
  let head = count 0 q and mid = count (Sim.Time.ms 750) (Sim.Time.ms 1250) in
  check_bool
    (Printf.sprintf "mid quarter (%d) >> first quarter (%d)" mid head)
    true
    (mid > 3 * head)

(* --- replay --- *)

let with_trace_file t f =
  let path = Filename.temp_file "replay" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Load.Trace.save path t;
      f path)

let replay_cfg ?(scale = 1.) path tr =
  {
    Load.Clients.default with
    Load.Clients.arrival =
      Load.Arrival.Replay { rp_path = path; rp_scale = scale };
    warmup = 0;
    window = Load.Trace.duration (Load.Trace.scale scale tr) + Sim.Time.ms 500;
  }

let test_replay_deterministic () =
  let tr = synth ~rate:300. () in
  with_trace_file tr (fun path ->
      let run () =
        Core.Experiments.load_cell ~nodes:4 ~impl:Core.Cluster.User
          (replay_cfg path tr) ()
      in
      let m1 = run () and m2 = run () in
      check_bool "rerun identical" true (m1 = m2);
      (* Entries are dealt round-robin to the whole client population;
         every scheduled arrival lands inside the window. *)
      check_int "all entries issued" (Load.Trace.length tr)
        m1.Load.Metrics.issued;
      check_bool "replay completes" true
        (m1.Load.Metrics.completed > 0
        && m1.Load.Metrics.completed <= m1.Load.Metrics.issued);
      check_bool "p99.9 at least p99" true
        (m1.Load.Metrics.p999_ms >= m1.Load.Metrics.p99_ms))

let test_replay_scale () =
  let tr = synth ~rate:300. () in
  with_trace_file tr (fun path ->
      let at scale =
        Core.Experiments.load_cell ~nodes:4 ~impl:Core.Cluster.User
          (replay_cfg ~scale path tr) ()
      in
      let m1 = at 1. and m05 = at 0.5 in
      check_int "same entries issued" m1.Load.Metrics.issued
        m05.Load.Metrics.issued;
      check_bool "compressed trace offers more load" true
        (m05.Load.Metrics.offered > 1.5 *. m1.Load.Metrics.offered))

(* --- tail grid --- *)

let quick_grid ?pool () =
  Core.Experiments.tail_grid ?pool ~nodes:4
    ~config:{ Load.Clients.default with Load.Clients.window = Sim.Time.ms 500 }
    ~losses:[ 0.01 ] ~rates:[ 200. ] ~impls:[ Core.Cluster.User ] ()

let test_tail_grid_amplification () =
  match quick_grid () with
  | [ base; lossy ] ->
    check_bool "baseline prepended" true (base.Core.Experiments.tc_loss = 0.);
    check_bool "baseline amp99 = 1" true (base.Core.Experiments.tc_amp99 = 1.);
    (* One lost frame parks its caller for the 200 ms retransmission
       timeout: at sub-2 ms baseline tails, 1% loss must blow p99 up by
       well over an order of magnitude. *)
    check_bool
      (Printf.sprintf "amp99 %.1f > 10" lossy.Core.Experiments.tc_amp99)
      true
      (lossy.Core.Experiments.tc_amp99 > 10.);
    check_bool "p99.9 tail at least p99" true
      (lossy.Core.Experiments.tc_metrics.Load.Metrics.p999_ms
      >= lossy.Core.Experiments.tc_metrics.Load.Metrics.p99_ms)
  | cells -> Alcotest.failf "expected 2 cells, got %d" (List.length cells)

let test_tail_grid_pool_identical () =
  let seq = quick_grid () in
  let pooled = Exec.Pool.with_pool ~jobs:2 (fun pool -> quick_grid ~pool ()) in
  check_bool "-j1 = -j2" true (seq = pooled);
  check_bool "rerun identical" true (seq = quick_grid ())

(* --- calibration --- *)

let test_calibrate_golden_net10m () =
  (* The acceptance gate: fitting the 1995 profile from its own probe
     observables recovers every constant bit-exactly. *)
  let m = Scenario.Calibrate.measure ~net:Core.Params.net10m () in
  match Scenario.Calibrate.fit m with
  | Error e -> Alcotest.failf "fit failed: %s" e
  | Ok p ->
    check_bool "segment constants" true
      (p.Core.Params.np_segment = Core.Params.net10m.Core.Params.np_segment);
    check_bool "nic constants" true
      (p.Core.Params.np_nic = Core.Params.net10m.Core.Params.np_nic);
    check_int "switch latency" Core.Params.net10m.Core.Params.np_switch
      p.Core.Params.np_switch;
    let ref_ms, fit_ms =
      Scenario.Calibrate.verify ~reference:Core.Params.net10m p
    in
    check_bool "verify latencies equal" true (ref_ms = fit_ms)

let test_calibrate_all_eras () =
  List.iter
    (fun net ->
      match Scenario.Calibrate.fit (Scenario.Calibrate.measure ~net ()) with
      | Error e -> Alcotest.failf "%s: fit failed: %s" net.Core.Params.np_name e
      | Ok p ->
        check_bool
          (net.Core.Params.np_name ^ " constants recovered")
          true
          (p.Core.Params.np_segment = net.Core.Params.np_segment
          && p.Core.Params.np_nic = net.Core.Params.np_nic
          && p.Core.Params.np_switch = net.Core.Params.np_switch))
    Core.Params.net_profiles

let test_profile_file_roundtrip () =
  List.iter
    (fun p ->
      match
        Core.Params.net_profile_parse (Core.Params.net_profile_to_string p)
      with
      | Ok p' -> check_bool (p.Core.Params.np_name ^ " round-trips") true (p = p')
      | Error e -> Alcotest.failf "%s: %s" p.Core.Params.np_name e)
    Core.Params.net_profiles;
  (match Core.Params.net_profile_parse "name x\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "accepted profile with missing keys");
  let path = Filename.temp_file "profile" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Core.Params.net_profile_save path Core.Params.net1g;
      match Core.Params.net_profile_load path with
      | Ok p -> check_bool "file round-trip" true (p = Core.Params.net1g)
      | Error e -> Alcotest.fail e)

(* --- soak --- *)

let soak_cfg =
  {
    Scenario.Soak.default with
    Scenario.Soak.sk_rate = 300.;
    sk_windows = 4;
    sk_policy = Panda.Seq_policy.Failover;
    sk_op = Load.Clients.Group;
    sk_faults = Some (Result.get_ok (Faults.Spec.parse "seed=5,loss=0.01,seqcrash=0.4"));
  }

let test_soak_zero_violations () =
  let r = Scenario.Soak.run soak_cfg in
  check_int "window count" 4 (List.length r.Scenario.Soak.r_windows);
  check_bool "work done" true (r.Scenario.Soak.r_completed > 0);
  check_bool "seqcrash noted" true r.Scenario.Soak.r_seq_crashed;
  check_int "zero violations" 0 r.Scenario.Soak.r_violations;
  check_bool "p99.9 at least p99" true
    (r.Scenario.Soak.r_p999_ms >= r.Scenario.Soak.r_p99_ms);
  (* The ramp breathes: not every window sees the same offered load. *)
  let offered =
    List.map (fun w -> w.Scenario.Soak.w_offered) r.Scenario.Soak.r_windows
  in
  check_bool "diurnal variation" true
    (List.fold_left Float.max 0. offered
    > 1.2 *. List.fold_left Float.min infinity offered)

let test_soak_deterministic () =
  check_bool "rerun identical" true
    (Scenario.Soak.run soak_cfg = Scenario.Soak.run soak_cfg)

let () =
  Alcotest.run "scenario"
    [
      ( "trace",
        [
          QCheck_alcotest.to_alcotest trace_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_trace_parse_errors;
          Alcotest.test_case "scale" `Quick test_trace_scale;
          Alcotest.test_case "synthesize deterministic" `Quick
            test_synthesize_deterministic;
          Alcotest.test_case "diurnal shape" `Quick test_synthesize_diurnal_shape;
        ] );
      ( "replay",
        [
          Alcotest.test_case "deterministic" `Quick test_replay_deterministic;
          Alcotest.test_case "time scaling" `Quick test_replay_scale;
        ] );
      ( "tail-grid",
        [
          Alcotest.test_case "loss amplifies tails" `Quick
            test_tail_grid_amplification;
          Alcotest.test_case "pool identical" `Quick test_tail_grid_pool_identical;
        ] );
      ( "calibrate",
        [
          Alcotest.test_case "net10m golden" `Quick test_calibrate_golden_net10m;
          Alcotest.test_case "all eras" `Quick test_calibrate_all_eras;
          Alcotest.test_case "profile files" `Quick test_profile_file_roundtrip;
        ] );
      ( "soak",
        [
          Alcotest.test_case "zero violations" `Quick test_soak_zero_violations;
          Alcotest.test_case "deterministic" `Quick test_soak_deterministic;
        ] );
    ]
