(* The observability subsystem: spans balance, the cost ledger accounts for
   exactly the CPU time the simulator spent, percentiles behave, exports
   are deterministic, and the measured breakdown agrees with the analytic
   differential where the two accountings coincide. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let recorded = lazy (Core.Experiments.recorded_rpc ())

(* ---------- spans ---------- *)

let test_span_balance () =
  let r, _busy = Lazy.force recorded in
  check_bool "recorded some spans" true (Obs.Recorder.n_spans r > 0);
  check_int "no span left open" 0 (Obs.Recorder.open_spans r);
  List.iter
    (fun sp ->
      check_bool "span closed" true (sp.Obs.Recorder.sp_end >= 0);
      check_bool "span has nonnegative duration" true
        (sp.Obs.Recorder.sp_end >= sp.Obs.Recorder.sp_begin);
      check_bool "depth nonnegative" true (sp.Obs.Recorder.sp_depth >= 0))
    (Obs.Recorder.spans r)

let test_span_tracks () =
  let r, _busy = Lazy.force recorded in
  let tracks = Obs.Recorder.tracks r in
  let has prefix =
    List.exists
      (fun t ->
        String.length t >= String.length prefix
        && String.sub t 0 (String.length prefix) = prefix)
      tracks
  in
  check_bool "has CPU tracks" true (has "cpu:");
  check_bool "has the client fiber's track" true (has "m0/client#");
  (* Nesting exists: the user-space stack wraps trans > send > ... *)
  check_bool "some spans are nested" true
    (List.exists (fun sp -> sp.Obs.Recorder.sp_depth > 0) (Obs.Recorder.spans r))

(* ---------- ledger ---------- *)

(* Every nanosecond of CPU busy time must be attributed to exactly one
   (layer, cause) ledger cell.  The single exception is the header share of
   NIC reception, charged as [Header_wire] (a non-CPU cause, so the header
   measurement matches the analytic differential) and tracked by a
   correction counter. *)
let test_ledger_accounts_for_cpu_time () =
  let r, busy = Lazy.force recorded in
  let correction = Sim.Stats.counter (Obs.Recorder.stats r) "obs.nic.header_rx_ns" in
  check_bool "simulation did work" true (busy > 0);
  check_int "ledger CPU total equals CPU busy time"
    busy
    (Obs.Recorder.cpu_ns r + correction)

let test_ledger_composition () =
  let r, _busy = Lazy.force recorded in
  (* A user-space RPC run exercises every mechanism the paper names. *)
  check_bool "context switches charged" true
    (Obs.Recorder.cause_ns r Obs.Cause.Ctx_switch > 0);
  check_bool "register-window traps charged" true
    (Obs.Recorder.cause_ns r Obs.Cause.Regwin_trap > 0);
  check_bool "kernel crossings charged" true
    (Obs.Recorder.cause_ns r Obs.Cause.Uk_crossing > 0);
  check_bool "copies charged" true (Obs.Recorder.cause_ns r Obs.Cause.Copy > 0);
  check_bool "panda layers active" true
    (Obs.Recorder.layer_ns r Obs.Layer.Panda_sys > 0
     && Obs.Recorder.layer_ns r Obs.Layer.Panda_rpc > 0);
  check_bool "kernel stack layers silent on a user run" true
    (Obs.Recorder.layer_ns r Obs.Layer.Amoeba_rpc = 0
     && Obs.Recorder.layer_ns r Obs.Layer.Amoeba_grp = 0)

(* ---------- percentiles ---------- *)

let test_percentiles () =
  let s = Sim.Stats.create () in
  (* A deterministic shuffle of 1..1000. *)
  for i = 0 to 999 do
    Sim.Stats.record s "lat" (float_of_int (((i * 467) mod 1000) + 1))
  done;
  let p q = Sim.Stats.percentile s "lat" q in
  check_bool "p50 <= p90" true (p 50. <= p 90.);
  check_bool "p90 <= p99" true (p 90. <= p 99.);
  (* Log buckets are 1/16 octave wide: ~4.4% relative error. *)
  check_bool "p50 near 500" true (abs_float (p 50. -. 500.) < 30.);
  check_bool "p99 near 990" true (abs_float (p 99. -. 990.) < 60.);
  check_bool "clamped to observed range" true (p 0. >= 1. && p 100. <= 1000.);
  check_bool "empty series is 0" true (Sim.Stats.percentile s "nope" 50. = 0.)

(* ---------- export determinism ---------- *)

let test_export_determinism () =
  let r1, _ = Core.Experiments.recorded_rpc () in
  let r2, _ = Core.Experiments.recorded_rpc () in
  check_string "chrome traces identical across reruns"
    (Obs.Export.chrome_trace r1) (Obs.Export.chrome_trace r2);
  check_string "CSVs identical across reruns" (Obs.Export.csv r1) (Obs.Export.csv r2)

let test_chrome_trace_shape () =
  let r, _ = Lazy.force recorded in
  let trace = Obs.Export.chrome_trace r in
  let contains needle =
    let n = String.length needle and h = String.length trace in
    let rec go i = i + n <= h && (String.sub trace i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "is a trace_event container" true
    (String.length trace > 2 && String.sub trace 0 15 = {|{"traceEvents":|});
  check_bool "names threads" true (contains {|"thread_name"|});
  check_bool "has complete events" true (contains {|"ph":"X"|});
  check_bool "tags layers as categories" true (contains {|"cat":"panda_rpc"|})

(* ---------- measured vs analytic breakdown ---------- *)

let test_measured_breakdown_matches_analytic () =
  let rpc_m, grp_m = Core.Experiments.measured_breakdown () in
  let analytic = Core.Experiments.rpc_breakdown () in
  let m label = List.assoc label rpc_m in
  let a label = List.assoc label analytic in
  let close ?(tol = 5.) label =
    check_bool
      (Printf.sprintf "%s: measured %.1f ~ analytic %.1f" label (m label) (a label))
      true
      (abs_float (m label -. a label) <= tol)
  in
  (* The total gap and the components whose cost is charged exactly where
     the differential removes it must agree tightly. *)
  close ~tol:1. "total user-kernel gap";
  close "context switches";
  close "double fragmentation";
  close "header size difference";
  close ~tol:10. "untuned user-level FLIP interface";
  (* Traps: the ledger charges every trap, while the differential only sees
     the latency-critical ones (removing traps also removes knock-on
     effects), so only sign and magnitude are comparable. *)
  check_bool "traps measured positive" true (m "register-window traps" > 0.);
  check_bool "traps within 2x-ish of analytic scale" true
    (m "register-window traps" < 10. *. a "register-window traps");
  (* Group rows: the user-path decomposition is positive for every
     mechanism, and the header row keeps the paper's negative sign (user
     headers are smaller). *)
  check_bool "group gap positive" true (List.assoc "total user-kernel gap" grp_m > 0.);
  check_bool "group header difference negative" true
    (List.assoc "header size difference" grp_m < 0.);
  List.iter
    (fun label ->
      check_bool (label ^ " positive") true (List.assoc label grp_m > 0.))
    [
      "context switches (user path)";
      "register-window traps (user path)";
      "double fragmentation (user path)";
      "untuned user-level FLIP interface (user path)";
    ]

(* Recording must not perturb the simulation: latencies measured with a
   recorder installed equal the unrecorded ones. *)
let test_recording_is_zero_cost () =
  let unrecorded = Core.Experiments.rpc_latency ~impl:`User ~size:0 () in
  let r, _ = Lazy.force recorded in
  ignore r;
  let again = Core.Experiments.rpc_latency ~impl:`User ~size:0 () in
  Alcotest.(check (float 0.)) "latency unchanged by recording" unrecorded again

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "balance" `Quick test_span_balance;
          Alcotest.test_case "tracks and nesting" `Quick test_span_tracks;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "accounts for CPU time" `Quick
            test_ledger_accounts_for_cpu_time;
          Alcotest.test_case "composition" `Quick test_ledger_composition;
        ] );
      ( "stats",
        [ Alcotest.test_case "percentiles" `Quick test_percentiles ] );
      ( "export",
        [
          Alcotest.test_case "deterministic" `Quick test_export_determinism;
          Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
        ] );
      ( "breakdown",
        [
          Alcotest.test_case "measured vs analytic" `Quick
            test_measured_breakdown_matches_analytic;
          Alcotest.test_case "recording is zero-cost" `Quick
            test_recording_is_zero_cost;
        ] );
    ]
