(* Golden regression suite: pins the calibrated Table 1 latencies and
   Table 2 throughputs bit-exactly, so optimization work and future PRs
   cannot silently perturb the baselines the paper comparison rests on.
   The simulation is deterministic (and `-j N` fan-out is reassembled in
   canonical order), so exact float equality is the right check: any
   difference at all means the cost model changed and the pins must be
   re-justified, not fuzzed past.

   Also asserts, per stack, the ledger-conservation invariant (the cost
   ledger accounts for every nanosecond of CPU busy time) and the
   optimized stack's required ordering: strictly faster than baseline
   user space, never faster than kernel space in Table 1. *)

let check_bool = Alcotest.(check bool)
let exact = Alcotest.(check (float 0.))

(* size, unicast, multicast, rpc_user, rpc_kernel, grp_user, grp_kernel,
   rpc_opt, grp_opt — all ms. *)
let golden_table1 =
  [
    (0, 0.53156000000000003, 0.62156, 1.5550000000000002, 1.2729200000000001,
     1.57792, 1.3825400000000001, 1.3935200000000001, 1.4834400000000001);
    (1024, 1.5146000000000002, 1.6046, 2.5380400000000001, 2.2047599999999998,
     3.5439999999999996, 3.19502, 2.2741599999999997, 3.2959200000000002);
    (2048, 2.3864399999999999, 2.4764399999999998, 3.4066800000000002,
     3.1114000000000002, 4.0434399999999995, 3.2938200000000002,
     3.2043599999999999, 3.84632);
    (3072, 3.34504, 3.5250399999999997, 4.3140799999999997, 4.0180400000000001,
     5.2214799999999997, 4.2798600000000002, 4.1303600000000005,
     4.8943199999999996);
    (4096, 4.1713199999999997, 4.2613199999999996, 5.19156, 4.9498800000000003,
     5.8283199999999997, 5.1322999999999999, 4.9542000000000002,
     5.5961599999999994);
  ]

(* proto, user, kernel, optimized — KB/s. *)
let golden_table2 =
  [
    ("RPC", 918.27499471073611, 927.08842613908757, 943.84414279017847);
    ("group", 1058.5956100407031, 1018.6810346148359, 1064.4959654183583);
  ]

let row_key r =
  ( r.Core.Experiments.lr_size,
    r.Core.Experiments.lr_unicast,
    r.Core.Experiments.lr_multicast,
    r.Core.Experiments.lr_rpc_user,
    r.Core.Experiments.lr_rpc_kernel,
    r.Core.Experiments.lr_grp_user,
    r.Core.Experiments.lr_grp_kernel,
    r.Core.Experiments.lr_rpc_opt,
    r.Core.Experiments.lr_grp_opt )

let table1 = lazy (Core.Experiments.table1 ())
let table2 = lazy (Core.Experiments.table2 ())

let check_table1 rows =
  List.iter2
    (fun (size, u, m, ru, rk, gu, gk, ro, go) r ->
      let tag col = Printf.sprintf "T1 %d %s" size col in
      Alcotest.(check int) (tag "size") size r.Core.Experiments.lr_size;
      exact (tag "unicast") u r.Core.Experiments.lr_unicast;
      exact (tag "multicast") m r.Core.Experiments.lr_multicast;
      exact (tag "rpc user") ru r.Core.Experiments.lr_rpc_user;
      exact (tag "rpc kernel") rk r.Core.Experiments.lr_rpc_kernel;
      exact (tag "grp user") gu r.Core.Experiments.lr_grp_user;
      exact (tag "grp kernel") gk r.Core.Experiments.lr_grp_kernel;
      exact (tag "rpc optimized") ro r.Core.Experiments.lr_rpc_opt;
      exact (tag "grp optimized") go r.Core.Experiments.lr_grp_opt)
    golden_table1 rows

let check_table2 rows =
  List.iter2
    (fun (proto, u, k, o) r ->
      let tag col = Printf.sprintf "T2 %s %s" proto col in
      Alcotest.(check string) (tag "proto") proto r.Core.Experiments.tr_proto;
      exact (tag "user") u r.Core.Experiments.tr_user;
      exact (tag "kernel") k r.Core.Experiments.tr_kernel;
      exact (tag "optimized") o r.Core.Experiments.tr_opt)
    golden_table2 rows

let test_table1_golden () = check_table1 (Lazy.force table1)
let test_table2_golden () = check_table2 (Lazy.force table2)

(* Bit-identical under parallel fan-out: the same pins must hold when the
   cells run on a domain pool. *)
let test_golden_parallel () =
  let t1, t2 =
    Exec.Pool.with_pool ~jobs:2 (fun p ->
        (Core.Experiments.table1 ~pool:p (), Core.Experiments.table2 ~pool:p ()))
  in
  check_table1 t1;
  check_table2 t2;
  check_bool "-j 2 table1 identical to sequential" true
    (List.map row_key t1 = List.map row_key (Lazy.force table1))

(* The optimized stack's contract, as data rather than prose: strictly
   faster than the baseline user stack, never faster than the kernel stack
   (Table 1), and higher 8 KB throughput than the baseline (Table 2). *)
let test_optimized_ordering () =
  List.iter
    (fun r ->
      let tag s = Printf.sprintf "size %d: %s" r.Core.Experiments.lr_size s in
      check_bool (tag "rpc opt < rpc user") true
        (r.Core.Experiments.lr_rpc_opt < r.Core.Experiments.lr_rpc_user);
      check_bool (tag "rpc opt >= rpc kernel") true
        (r.Core.Experiments.lr_rpc_opt >= r.Core.Experiments.lr_rpc_kernel);
      check_bool (tag "grp opt < grp user") true
        (r.Core.Experiments.lr_grp_opt < r.Core.Experiments.lr_grp_user);
      check_bool (tag "grp opt >= grp kernel") true
        (r.Core.Experiments.lr_grp_opt >= r.Core.Experiments.lr_grp_kernel))
    (Lazy.force table1);
  List.iter
    (fun r ->
      check_bool
        (r.Core.Experiments.tr_proto ^ ": optimized throughput above baseline")
        true
        (r.Core.Experiments.tr_opt > r.Core.Experiments.tr_user))
    (Lazy.force table2)

(* The optimized differential must attribute every saved microsecond to
   one of the four named mechanisms: zero residual.  On the null RPC no
   removed work overlaps the wire, so the mechanisms' sum equals the
   latency delta exactly; on the group path a few microseconds of the
   removed CPU work were off the critical path, so the ledger recovery
   bounds the latency delta from above. *)
let test_optimized_attribution () =
  let rpc_o, grp_o = Core.Experiments.optimized_breakdown () in
  let close a b = Float.abs (a -. b) < 1e-9 in
  let sum o =
    List.fold_left (fun acc (_, us) -> acc +. us) 0.
      o.Core.Experiments.ob_mechanisms
  in
  check_bool "rpc residual zero" true
    (close rpc_o.Core.Experiments.ob_residual_us 0.);
  check_bool "group residual zero" true
    (close grp_o.Core.Experiments.ob_residual_us 0.);
  check_bool "rpc mechanisms sum to the latency delta" true
    (close (sum rpc_o)
       (rpc_o.Core.Experiments.ob_base_us -. rpc_o.Core.Experiments.ob_opt_us));
  check_bool "group mechanisms cover the latency delta" true
    (sum grp_o
     >= grp_o.Core.Experiments.ob_base_us -. grp_o.Core.Experiments.ob_opt_us
        -. 1e-9);
  List.iter
    (fun o ->
      List.iter
        (fun (name, us) ->
          check_bool (name ^ ": a mechanism never costs time") true (us >= 0.))
        o.Core.Experiments.ob_mechanisms)
    [ rpc_o; grp_o ]

(* Ledger conservation, per stack: the cost ledger attributes every
   nanosecond of CPU busy time to exactly one (layer, cause) cell.  The
   single exception is the header share of NIC reception, charged as
   non-CPU [Header_wire] and tracked by a correction counter. *)
let test_ledger_conservation () =
  List.iter
    (fun (label, impl) ->
      let r, busy = Core.Experiments.recorded_rpc ~impl () in
      let correction = Sim.Stats.counter (Obs.Recorder.stats r) "obs.nic.header_rx_ns" in
      check_bool (label ^ ": simulation did work") true (busy > 0);
      Alcotest.(check int)
        (label ^ ": ledger CPU total equals CPU busy time")
        busy
        (Obs.Recorder.cpu_ns r + correction))
    [ ("user", `User); ("kernel", `Kernel); ("optimized", `Opt) ]

let () =
  Alcotest.run "golden"
    [
      ( "tables",
        [
          Alcotest.test_case "table1 pinned" `Slow test_table1_golden;
          Alcotest.test_case "table2 pinned" `Slow test_table2_golden;
          Alcotest.test_case "pins hold at -j 2" `Slow test_golden_parallel;
          Alcotest.test_case "optimized ordering" `Slow test_optimized_ordering;
          Alcotest.test_case "optimized attribution" `Slow
            test_optimized_attribution;
        ] );
      ( "ledger",
        [ Alcotest.test_case "conservation per stack" `Quick test_ledger_conservation ] );
    ]
