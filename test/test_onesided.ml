(* Tests for the one-sided (RDMA-style) fourth stack: network-era profile
   parsing, remote read/write/cas semantics, the zero-server-thread-CPU
   property and its ledger attribution, at-most-once CAS under fault
   schedules, DHT coherence over both transports, and a reduced golden
   crossover pinned bit-exactly (including -j 2 pool fan-out). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.))
let check_array = Alcotest.(check (array int))

(* ------------------------------------------------------------------ *)
(* Network-era profiles *)

let test_profile_roundtrip () =
  List.iter
    (fun p ->
      match Core.Params.net_profile_of_string p.Core.Params.np_name with
      | Some p' ->
        check_bool (p.Core.Params.np_name ^ " round-trips") true (p' == p)
      | None -> Alcotest.fail ("profile not found: " ^ p.Core.Params.np_name))
    Core.Params.net_profiles;
  check_bool "unknown profile rejected" true
    (Core.Params.net_profile_of_string "net56k" = None);
  check_int "four eras" 4 (List.length Core.Params.net_profiles)

(* The default era must be the paper's exact constants: every golden
   result in the suite depends on net10m being bit-identical to the
   pre-profile parameters. *)
let test_profile_net10m_is_paper () =
  let p = Core.Params.net10m in
  check_bool "segment" true (p.Core.Params.np_segment = Core.Params.segment);
  check_bool "nic" true (p.Core.Params.np_nic = Core.Params.nic);
  check_int "switch" Core.Params.switch_latency p.Core.Params.np_switch

let test_profile_eras_get_faster () =
  let byte p = p.Core.Params.np_segment.Net.Segment.byte_time in
  let rec strictly_faster = function
    | a :: (b :: _ as rest) -> byte a > byte b && strictly_faster rest
    | _ -> true
  in
  check_bool "byte time strictly falls across eras" true
    (strictly_faster Core.Params.net_profiles)

(* ------------------------------------------------------------------ *)
(* One-sided semantics *)

(* A 2-machine cluster with a region on rank 0 and a client thread on
   rank 1; returns whatever the client computed once the engine drains. *)
let run_client ?faults ?(net = Core.Params.net10m) ~words body =
  let cluster = Core.Cluster.create ~net ~n:2 () in
  (match faults with
   | Some spec ->
     ignore
       (Faults.Inject.install cluster.Core.Cluster.eng cluster.Core.Cluster.topo
          spec)
   | None -> ());
  let rnics = Core.Cluster.rnics cluster in
  let region = Onesided.Region.create ~key:7 ~name:"mem" ~words in
  Onesided.Rnic.register_region rnics.(0) region;
  let dst = Onesided.Rnic.addr rnics.(0) in
  let result = ref None in
  ignore
    (Machine.Thread.spawn cluster.Core.Cluster.machines.(1) "client" (fun () ->
         result := Some (body cluster rnics.(1) dst)));
  Sim.Engine.run cluster.Core.Cluster.eng;
  match !result with
  | Some r -> (r, cluster, rnics, region)
  | None -> Alcotest.fail "client never completed"

let test_read_write () =
  let (), _, _, region =
    run_client ~words:64 (fun _ r dst ->
        Onesided.Rnic.write r ~dst ~rkey:7 ~off:10 [| 1; 2; 3 |];
        let back = Onesided.Rnic.read r ~dst ~rkey:7 ~off:10 ~words:3 in
        check_array "write then read" [| 1; 2; 3 |] back;
        let zeros = Onesided.Rnic.read r ~dst ~rkey:7 ~off:0 ~words:4 in
        check_array "untouched words read 0" [| 0; 0; 0; 0 |] zeros)
  in
  check_int "region holds the words" 2 region.Onesided.Region.data.(11)

let test_cas () =
  let (), _, _, region =
    run_client ~words:8 (fun _ r dst ->
        let old = Onesided.Rnic.cas r ~dst ~rkey:7 ~off:0 ~expected:0 ~desired:5 in
        check_int "first cas wins, returns old" 0 old;
        let old = Onesided.Rnic.cas r ~dst ~rkey:7 ~off:0 ~expected:0 ~desired:9 in
        check_int "stale cas fails, returns current" 5 old)
  in
  check_int "only the winning cas applied" 5 region.Onesided.Region.data.(0)

let test_bad_rkey_fails () =
  let cluster = Core.Cluster.create ~n:2 () in
  let rnics = Core.Cluster.rnics cluster in
  let ok =
    match Onesided.Rnic.region rnics.(0) ~key:99 with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "unknown rkey is rejected" true ok

(* The tentpole property: the target executes every op in interrupt
   context, so its thread-context CPU is exactly zero while its total CPU
   is not. *)
let test_zero_server_thread_cpu () =
  let (), cluster, _, _ =
    run_client ~words:128 (fun _ r dst ->
        for i = 0 to 49 do
          Onesided.Rnic.write r ~dst ~rkey:7 ~off:(i mod 64) [| i |];
          ignore (Onesided.Rnic.read r ~dst ~rkey:7 ~off:(i mod 64) ~words:8)
        done)
  in
  let cpu i = Machine.Mach.cpu cluster.Core.Cluster.machines.(i) in
  let busy i = Machine.Cpu.busy_time (cpu i) in
  let intr i = Machine.Cpu.busy_interrupt_time (cpu i) in
  check_bool "target CPU did work" true (busy 0 > 0);
  check_int "target thread-context CPU is zero" 0 (busy 0 - intr 0);
  check_bool "initiator ran in thread context" true (busy 1 - intr 1 > 0)

(* Every target-side nanosecond lands in the Onesided layer under
   Uk_crossing (interrupt entry) or Offload (op execution), and the whole
   ledger still balances against machine busy time. *)
let test_ledger_attribution () =
  let cluster = Core.Cluster.create ~n:2 () in
  let rnics = Core.Cluster.rnics cluster in
  let region = Onesided.Region.create ~key:7 ~name:"mem" ~words:64 in
  Onesided.Rnic.register_region rnics.(0) region;
  let dst = Onesided.Rnic.addr rnics.(0) in
  let r = Obs.Recorder.create () in
  Obs.Recorder.install r;
  ignore
    (Machine.Thread.spawn cluster.Core.Cluster.machines.(1) "client" (fun () ->
         for _ = 1 to 20 do
           Onesided.Rnic.write rnics.(1) ~dst ~rkey:7 ~off:0 [| 1; 2; 3; 4 |];
           ignore (Onesided.Rnic.read rnics.(1) ~dst ~rkey:7 ~off:0 ~words:4)
         done));
  Sim.Engine.run cluster.Core.Cluster.eng;
  Obs.Recorder.uninstall ();
  let cell cause = Obs.Recorder.ledger_ns r ~layer:Obs.Layer.Onesided ~cause in
  check_bool "Offload cell populated" true (cell Obs.Cause.Offload > 0);
  check_bool "interrupt-entry cell populated" true
    (cell Obs.Cause.Uk_crossing > 0);
  check_bool "initiator posting charged" true (cell Obs.Cause.Proto_proc > 0);
  (* Nothing leaks into the RPC stacks' layers. *)
  List.iter
    (fun layer ->
      check_int
        ("no CPU in layer " ^ Obs.Layer.to_string layer)
        0
        (List.fold_left
           (fun acc c ->
             if Obs.Cause.is_cpu c then
               acc + Obs.Recorder.ledger_ns r ~layer ~cause:c
             else acc)
           0 Obs.Cause.all))
    [
      Obs.Layer.Flip; Obs.Layer.Amoeba_rpc; Obs.Layer.Amoeba_grp;
      Obs.Layer.Panda_sys; Obs.Layer.Panda_rpc; Obs.Layer.Panda_grp;
      Obs.Layer.Orca;
    ];
  (* Conservation: ledger CPU + the NIC header-reception correction equals
     the machines' busy time. *)
  let busy =
    Array.fold_left
      (fun acc m -> acc + Machine.Cpu.busy_time (Machine.Mach.cpu m))
      0 cluster.Core.Cluster.machines
  in
  let correction =
    Sim.Stats.counter (Obs.Recorder.stats r) "obs.nic.header_rx_ns"
  in
  check_int "ledger balances against busy time" busy
    (Obs.Recorder.cpu_ns r + correction)

(* ------------------------------------------------------------------ *)
(* Fault schedules: the one-sided protocol under loss/dup/corrupt *)

let os_fault_run spec =
  let checker = Faults.Invariants.create () in
  let cluster = Core.Cluster.create ~n:3 () in
  ignore
    (Faults.Inject.install cluster.Core.Cluster.eng cluster.Core.Cluster.topo
       spec);
  let rnics = Core.Cluster.rnics cluster in
  Faults.Invariants.attach_rnics checker rnics;
  let region = Onesided.Region.create ~key:7 ~name:"mem" ~words:64 in
  Onesided.Rnic.register_region rnics.(0) region;
  let dst = Onesided.Rnic.addr rnics.(0) in
  (* Two clients racing cas-claims on the same word plus reads/writes on
     disjoint words: exercises retransmission, duplicate suppression and
     the at-most-once cas cache at once. *)
  for rank = 1 to 2 do
    ignore
      (Machine.Thread.spawn cluster.Core.Cluster.machines.(rank)
         (Printf.sprintf "c%d" rank)
         (fun () ->
           for i = 1 to 60 do
             let r = rnics.(rank) in
             let v =
               Onesided.Rnic.cas r ~dst ~rkey:7 ~off:0 ~expected:(i - 1)
                 ~desired:i
             in
             ignore v;
             Onesided.Rnic.write r ~dst ~rkey:7 ~off:(8 * rank) [| i; i + 1 |];
             ignore
               (Onesided.Rnic.read r ~dst ~rkey:7 ~off:(8 * rank) ~words:2)
           done))
  done;
  Sim.Engine.run cluster.Core.Cluster.eng;
  Faults.Invariants.finalize checker;
  (checker, rnics)

let test_faults_loss () =
  let checker, rnics = os_fault_run (Faults.Spec.loss ~seed:11 0.03) in
  check_int "no invariant violations under loss" 0
    (Faults.Invariants.n_violations checker);
  check_bool "ops were checked" true
    (Faults.Invariants.onesided_checked checker > 0);
  let retrans =
    Array.fold_left (fun acc r -> acc + Onesided.Rnic.retransmissions r) 0 rnics
  in
  check_bool "losses forced retransmissions" true (retrans > 0)

let test_faults_dup_corrupt () =
  let spec = { (Faults.Spec.loss ~seed:13 0.01) with Faults.Spec.dup = 0.05; corrupt = 0.02 } in
  let checker, rnics = os_fault_run spec in
  check_int "no violations under dup+corrupt+loss" 0
    (Faults.Invariants.n_violations checker);
  (* Duplicated or retransmitted cas requests must be answered from the
     replay cache, never re-executed. *)
  let replays =
    Array.fold_left (fun acc r -> acc + Onesided.Rnic.cas_replays r) 0 rnics
  in
  check_bool "duplicate cas requests replayed, not re-executed" true
    (replays > 0)

(* ------------------------------------------------------------------ *)
(* DHT coherence over both transports *)

let dht_run ?faults ~onesided () =
  let cluster = Core.Cluster.create ~n:3 () in
  (match faults with
   | Some spec ->
     ignore
       (Faults.Inject.install cluster.Core.Cluster.eng cluster.Core.Cluster.topo
          spec)
   | None -> ());
  let params =
    { Apps.Dht.default_params with Apps.Dht.dh_keys = 64; dh_value_words = 8 }
  in
  let dht =
    if onesided then
      Apps.Dht.create_onesided ~params
        ~rnics:(Core.Cluster.rnics cluster)
        ~server:0 ()
    else
      Apps.Dht.create_rpc ~params
        ~backends:(Core.Cluster.backends cluster Core.Cluster.User)
        ~server:0 ()
  in
  let root = Sim.Rng.create ~seed:3 in
  for rank = 1 to 2 do
    let rng = Sim.Rng.split root in
    ignore
      (Machine.Thread.spawn cluster.Core.Cluster.machines.(rank) "dht-client"
         (fun () ->
           for _ = 1 to 150 do
             Apps.Dht.client_op dht ~rank rng
           done))
  done;
  Sim.Engine.run cluster.Core.Cluster.eng;
  dht

let check_dht dht =
  check_int "300 ops ran" 300 (Apps.Dht.ops dht);
  check_bool "mix has both ops" true
    (Apps.Dht.gets dht > 0 && Apps.Dht.puts dht > 0);
  check_int "no torn blocks observed" 0 (Apps.Dht.violations dht);
  check_int "store coherent at rest" 0 (Apps.Dht.check_at_rest dht)

let test_dht_rpc () = check_dht (dht_run ~onesided:false ())
let test_dht_onesided () = check_dht (dht_run ~onesided:true ())

let test_dht_onesided_faults () =
  check_dht (dht_run ~faults:(Faults.Spec.loss ~seed:5 0.02) ~onesided:true ())

(* Same seed, same draw sequence: both transports see the same get/put mix
   on the same keys. *)
let test_dht_same_mix () =
  let a = dht_run ~onesided:false () and b = dht_run ~onesided:true () in
  check_int "same gets" (Apps.Dht.gets a) (Apps.Dht.gets b);
  check_int "same puts" (Apps.Dht.puts a) (Apps.Dht.puts b)

(* ------------------------------------------------------------------ *)
(* Golden crossover (reduced): pinned capacities, the winner flip, the
   zero-thread-CPU evidence, zero residual, and -j 2 bit-identity. *)

let golden_config =
  {
    Load.Clients.default with
    Load.Clients.clients_per_node = 2;
    warmup = Sim.Time.ms 100;
    window = Sim.Time.ms 300;
  }

let golden_nets = [ Core.Params.net10m; Core.Params.net1g ]

let crossover =
  lazy
    (Core.Experiments.onesided_crossover ~nets:golden_nets ~read_pcts:[ 90 ]
       ~nodes:4 ~config:golden_config ())

(* (net, stack, capacity op/s, latency-probe p50 ms) pinned from the
   deterministic run; any drift in the default-era constants or the
   one-sided protocol shows up here first. *)
let golden_cells =
  [
    ("net10m", "kernel", 713.3, 1.781);
    ("net10m", "user", 1456.7, 2.161);
    ("net10m", "optimized", 1470.0, 1.930);
    ("net10m", "onesided", 1276.7, 1.469);
    ("net1g", "kernel", 1020.0, 0.922);
    ("net1g", "user", 2180.0, 1.248);
    ("net1g", "optimized", 2463.3, 1.039);
    ("net1g", "onesided", 8540.0, 0.290);
  ]

let test_golden_crossover () =
  let cells = Lazy.force crossover in
  check_int "cell count" (List.length golden_cells) (List.length cells);
  List.iter2
    (fun (net, stack, cap, p50) c ->
      let id = Printf.sprintf "%s/%s" net stack in
      Alcotest.(check string) (id ^ " net") net c.Core.Experiments.xc_net;
      Alcotest.(check string)
        (id ^ " stack") stack
        (Core.Cluster.stack_label c.Core.Experiments.xc_stack);
      check_float (id ^ " capacity")
        cap
        (Float.round (c.Core.Experiments.xc_capacity.Load.Metrics.achieved *. 10.)
        /. 10.);
      check_float (id ^ " p50")
        p50
        (Float.round (c.Core.Experiments.xc_latency.Load.Metrics.p50_ms *. 1000.)
        /. 1000.))
    golden_cells cells

let test_crossover_flips () =
  match Core.Experiments.crossover_summary (Lazy.force crossover) with
  | [ slow; fast ] ->
    check_bool "paper's era: rpc holds" false slow.Core.Experiments.xs_os_wins;
    check_bool "gigabit era: one-sided wins" true
      fast.Core.Experiments.xs_os_wins;
    check_bool "the flip is on capacity" true
      (fast.Core.Experiments.xs_os_capacity
       > 2. *. fast.Core.Experiments.xs_rpc_capacity);
    check_bool "mechanism names the server CPU" true
      (String.length fast.Core.Experiments.xs_mechanism > 0)
  | rows -> Alcotest.fail (Printf.sprintf "expected 2 rows, got %d" (List.length rows))

(* The acceptance property proper: on every era, the one-sided cells burn
   exactly zero server-thread CPU and put exactly zero CPU in the RPC
   stacks' layers, with nothing unattributed anywhere. *)
let test_crossover_attribution () =
  List.iter
    (fun c ->
      let id =
        Printf.sprintf "%s/%s" c.Core.Experiments.xc_net
          (Core.Cluster.stack_label c.Core.Experiments.xc_stack)
      in
      check_float (id ^ " residual") 0.
        c.Core.Experiments.xc_ledger.Core.Experiments.ol_residual_ms;
      check_int (id ^ " coherent") 0 c.Core.Experiments.xc_dht_violations;
      if c.Core.Experiments.xc_stack = Core.Cluster.One_sided then begin
        check_float (id ^ " zero server-thread CPU") 0.
          c.Core.Experiments.xc_capacity.Load.Metrics.server_thread_util;
        check_float (id ^ " zero stack-layer CPU") 0.
          c.Core.Experiments.xc_ledger.Core.Experiments.ol_stack_ms;
        check_bool (id ^ " target CPU attributed") true
          (c.Core.Experiments.xc_ledger.Core.Experiments.ol_target_ms > 0.)
      end
      else
        check_bool (id ^ " rpc server runs threads") true
          (c.Core.Experiments.xc_capacity.Load.Metrics.server_thread_util > 0.))
    (Lazy.force crossover)

let test_crossover_pool_identical () =
  let seq = Lazy.force crossover in
  let pooled =
    Exec.Pool.with_pool ~jobs:2 (fun p ->
        Core.Experiments.onesided_crossover ~pool:p ~nets:golden_nets
          ~read_pcts:[ 90 ] ~nodes:4 ~config:golden_config ())
  in
  check_bool "-j 2 bit-identical" true (compare seq pooled = 0)

let () =
  Alcotest.run "onesided"
    [
      ( "profiles",
        [
          Alcotest.test_case "round-trip" `Quick test_profile_roundtrip;
          Alcotest.test_case "net10m is the paper" `Quick
            test_profile_net10m_is_paper;
          Alcotest.test_case "eras get faster" `Quick test_profile_eras_get_faster;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "read/write" `Quick test_read_write;
          Alcotest.test_case "cas" `Quick test_cas;
          Alcotest.test_case "bad rkey" `Quick test_bad_rkey_fails;
          Alcotest.test_case "zero server-thread CPU" `Quick
            test_zero_server_thread_cpu;
          Alcotest.test_case "ledger attribution" `Quick test_ledger_attribution;
        ] );
      ( "faults",
        [
          Alcotest.test_case "loss" `Quick test_faults_loss;
          Alcotest.test_case "dup+corrupt" `Quick test_faults_dup_corrupt;
        ] );
      ( "dht",
        [
          Alcotest.test_case "rpc coherent" `Quick test_dht_rpc;
          Alcotest.test_case "one-sided coherent" `Quick test_dht_onesided;
          Alcotest.test_case "one-sided under loss" `Quick
            test_dht_onesided_faults;
          Alcotest.test_case "same mix both transports" `Quick test_dht_same_mix;
        ] );
      ( "crossover",
        [
          Alcotest.test_case "golden cells" `Quick test_golden_crossover;
          Alcotest.test_case "winner flips at 1G" `Quick test_crossover_flips;
          Alcotest.test_case "attribution" `Quick test_crossover_attribution;
          Alcotest.test_case "pool bit-identity" `Quick
            test_crossover_pool_identical;
        ] );
    ]
