open Sim
open Machine
open Net
open Flip
open Amoeba

let machine_config =
  {
    Mach.ctx_warm = Time.us 60;
    ctx_cold_idle = Time.us 70;
    ctx_cold_preempt = Time.us 110;
    interrupt_entry = Time.us 10;
    syscall_base = Time.us 25;
    trap_cost = Time.us 6;
    lock_cost = Time.us 1;
    reg_windows = 6;
  }

type fixture = {
  eng : Engine.t;
  machines : Mach.t array;
  topo : Topology.t;
  flips : Flip_iface.t array;
}

let pool n =
  let eng = Engine.create () in
  let machines =
    Array.init n (fun i -> Mach.create eng ~id:i ~name:(Printf.sprintf "m%d" i) machine_config)
  in
  let topo = Topology.build eng ~machines () in
  let flips =
    Array.mapi (fun i _ -> Flip_iface.create machines.(i) topo.Topology.nics.(i)) machines
  in
  { eng; machines; topo; flips }

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type Payload.t += Num of int

let num = function Num n -> n | _ -> Alcotest.fail "expected Num payload"

(* ------------------------------------------------------------------ *)
(* RPC *)

(* An echo server that adds 1 to the request's number. *)
let spawn_incr_server fx ~machine ~count =
  let rpc = Rpc.create fx.flips.(machine) in
  let port = Rpc.export rpc ~name:"incr" in
  let served = ref 0 in
  ignore
    (Thread.spawn fx.machines.(machine) ~prio:Thread.Daemon "server" (fun () ->
         for _ = 1 to count do
           let r = Rpc.get_request port in
           incr served;
           Rpc.put_reply port r ~size:4 (Num (num (Rpc.request_payload r) + 1))
         done));
  (rpc, port, served)

let test_rpc_roundtrip () =
  let fx = pool 2 in
  let _srpc, port, served = spawn_incr_server fx ~machine:1 ~count:1 in
  let crpc = Rpc.create fx.flips.(0) in
  let reply = ref (-1) in
  let finished_at = ref 0 in
  ignore
    (Thread.spawn fx.machines.(0) "client" (fun () ->
         let _sz, payload = Rpc.trans crpc ~dst:(Rpc.address port) ~size:4 (Num 41) in
         reply := num payload;
         finished_at := Engine.now fx.eng));
  Engine.run fx.eng;
  check_int "reply value" 42 !reply;
  check_int "served once" 1 !served;
  check_bool "latency sane (0.5ms..5ms)" true
    (!finished_at > Time.us 500 && !finished_at < Time.ms 5)

let test_rpc_large_request_fragments () =
  let fx = pool 2 in
  let _srpc, port, served = spawn_incr_server fx ~machine:1 ~count:1 in
  let crpc = Rpc.create fx.flips.(0) in
  let ok = ref false in
  ignore
    (Thread.spawn fx.machines.(0) "client" (fun () ->
         let _sz, payload = Rpc.trans crpc ~dst:(Rpc.address port) ~size:8000 (Num 1) in
         ok := num payload = 2));
  Engine.run fx.eng;
  check_bool "completed" true !ok;
  check_int "served once" 1 !served;
  (* 8000B request is 6 FLIP fragments + locate + reply + ack. *)
  check_bool "many frames" true (Nic.frames_sent (Topology.nic fx.topo 0) >= 6)

let test_rpc_concurrent_clients () =
  let fx = pool 3 in
  let _srpc, port, served = spawn_incr_server fx ~machine:2 ~count:8 in
  let replies = ref [] in
  for m = 0 to 1 do
    let crpc = Rpc.create fx.flips.(m) in
    ignore
      (Thread.spawn fx.machines.(m) "client" (fun () ->
           for i = 1 to 4 do
             let _sz, payload =
               Rpc.trans crpc ~dst:(Rpc.address port) ~size:4 (Num ((10 * m) + i))
             in
             replies := num payload :: !replies
           done))
  done;
  Engine.run fx.eng;
  check_int "served all" 8 !served;
  Alcotest.(check (list int))
    "all incremented"
    [ 2; 3; 4; 5; 12; 13; 14; 15 ]
    (List.sort compare !replies)

let test_put_reply_wrong_thread_rejected () =
  let fx = pool 2 in
  let rpc = Rpc.create fx.flips.(1) in
  let port = Rpc.export rpc ~name:"p" in
  let got_error = ref false in
  ignore
    (Thread.spawn fx.machines.(1) ~prio:Thread.Daemon "server" (fun () ->
         let r = Rpc.get_request port in
         (* Hand the request to a different thread for the reply: Amoeba
            forbids this. *)
         ignore
           (Thread.spawn fx.machines.(1) "other" (fun () ->
                match Rpc.put_reply port r ~size:0 Payload.Empty with
                | () -> ()
                | exception Invalid_argument _ ->
                  got_error := true;
                  (* Unblock the client properly. *)
                  ()))));
  let crpc = Rpc.create fx.flips.(0) in
  ignore
    (Thread.spawn fx.machines.(0) "client" (fun () ->
         match Rpc.trans crpc ~dst:(Rpc.address port) ~size:0 Payload.Empty with
         | _ -> ()
         | exception Rpc.Rpc_failure _ -> ()));
  Engine.run fx.eng;
  check_bool "wrong-thread reply rejected" true !got_error

let test_rpc_request_loss_retransmits () =
  let fx = pool 2 in
  let _srpc, port, served = spawn_incr_server fx ~machine:1 ~count:1 in
  let crpc = Rpc.create fx.flips.(0) in
  (* Drop the first unicast data frame from m0 (the request). *)
  let dropped = ref 0 in
  Segment.set_fault_injector fx.topo.Topology.segments.(0)
    (Some
       (fun frame ->
         match frame.Frame.payload with
         | Flip_iface.Data f
           when frame.Frame.src = 0 && f.Fragment.dst = Rpc.address port && !dropped = 0 ->
           incr dropped;
           true
         | _ -> false));
  let ok = ref false in
  ignore
    (Thread.spawn fx.machines.(0) "client" (fun () ->
         let _sz, p = Rpc.trans crpc ~dst:(Rpc.address port) ~size:4 (Num 1) in
         ok := num p = 2));
  Engine.run fx.eng;
  check_bool "completed despite loss" true !ok;
  check_int "dropped one" 1 !dropped;
  check_bool "client retransmitted" true (Rpc.retransmissions crpc >= 1);
  check_int "server executed once" 1 !served

let test_rpc_reply_loss_replayed () =
  let fx = pool 2 in
  let _srpc, port, served = spawn_incr_server fx ~machine:1 ~count:1 in
  let crpc = Rpc.create fx.flips.(0) in
  (* Drop the first reply data frame (from m1 back to m0). *)
  let dropped = ref 0 in
  Segment.set_fault_injector fx.topo.Topology.segments.(0)
    (Some
       (fun frame ->
         match frame.Frame.payload with
         | Flip_iface.Data f
           when frame.Frame.src = 1
                && (match f.Fragment.payload with Rpc.Reply _ -> true | _ -> false)
                && !dropped = 0 ->
           incr dropped;
           true
         | _ -> false));
  let ok = ref false in
  ignore
    (Thread.spawn fx.machines.(0) "client" (fun () ->
         let _sz, p = Rpc.trans crpc ~dst:(Rpc.address port) ~size:4 (Num 7) in
         ok := num p = 8));
  Engine.run fx.eng;
  check_bool "completed" true !ok;
  check_int "dropped reply once" 1 !dropped;
  check_int "server executed exactly once" 1 !served

let test_rpc_failure_when_no_server () =
  let fx = pool 2 in
  let crpc = Rpc.create fx.flips.(0) in
  let failed = ref false in
  ignore
    (Thread.spawn fx.machines.(0) "client" (fun () ->
         match Rpc.trans crpc ~dst:(Address.fresh_point fx.eng) ~size:4 (Num 1) with
         | _ -> ()
         | exception Rpc.Rpc_failure _ -> failed := true));
  Engine.run fx.eng;
  check_bool "times out" true !failed

let prop_rpc_exactly_once_under_loss =
  QCheck.Test.make ~name:"rpc survives random loss exactly-once" ~count:15
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let fx = pool 2 in
      let n = 10 in
      let _srpc, port, served = spawn_incr_server fx ~machine:1 ~count:n in
      let crpc = Rpc.create fx.flips.(0) in
      let rng = Rng.create ~seed in
      Segment.set_fault_injector fx.topo.Topology.segments.(0)
        (Some
           (fun frame ->
             (* 20% loss on data frames; never drop locates to keep the run
                short. *)
             match frame.Frame.payload with
             | Flip_iface.Data _ -> Rng.int rng 100 < 20
             | _ -> false));
      let replies = ref [] in
      ignore
        (Thread.spawn fx.machines.(0) "client" (fun () ->
             for i = 1 to n do
               let _sz, p = Rpc.trans crpc ~dst:(Rpc.address port) ~size:4 (Num i) in
               replies := num p :: !replies
             done));
      Engine.run fx.eng;
      !served = n && List.rev !replies = List.init n (fun i -> i + 2))

(* ------------------------------------------------------------------ *)
(* Group *)

(* Spawns a receive daemon per member collecting deliveries. *)
let spawn_receivers fx members ~count =
  let logs = Array.map (fun _ -> ref []) members in
  Array.iteri
    (fun i m ->
      let mach = fx.machines.(i) in
      ignore
        (Thread.spawn mach ~prio:Thread.Daemon (Printf.sprintf "recv%d" i) (fun () ->
             for _ = 1 to count do
               let sender, _size, payload = Group.receive m in
               logs.(i) := (sender, num payload) :: !(logs.(i))
             done)))
    members;
  logs

let test_group_basic_broadcast () =
  let fx = pool 2 in
  let _grp, members = Group.create_static ~name:"g" ~sequencer:1 fx.flips in
  let logs = spawn_receivers fx members ~count:1 in
  let sender_done = ref false in
  ignore
    (Thread.spawn fx.machines.(0) "sender" (fun () ->
         Group.send members.(0) ~size:100 (Num 5);
         sender_done := true));
  Engine.run fx.eng;
  check_bool "send returned" true !sender_done;
  Alcotest.(check (list (pair int int))) "member0 got it" [ (0, 5) ] !(logs.(0));
  Alcotest.(check (list (pair int int))) "member1 got it" [ (0, 5) ] !(logs.(1))

let test_group_large_message_bb () =
  let fx = pool 3 in
  let grp, members = Group.create_static ~name:"g" ~sequencer:0 fx.flips in
  ignore grp;
  let logs = spawn_receivers fx members ~count:1 in
  ignore
    (Thread.spawn fx.machines.(2) "sender" (fun () ->
         Group.send members.(2) ~size:8000 (Num 99)));
  Engine.run fx.eng;
  Array.iteri
    (fun i log ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "member%d" i)
        [ (2, 99) ] !log)
    logs

let test_group_total_order_two_senders () =
  let fx = pool 3 in
  let _grp, members = Group.create_static ~name:"g" ~sequencer:0 fx.flips in
  let n_each = 5 in
  let logs = spawn_receivers fx members ~count:(2 * n_each) in
  for s = 1 to 2 do
    ignore
      (Thread.spawn fx.machines.(s) (Printf.sprintf "sender%d" s) (fun () ->
           for i = 1 to n_each do
             Group.send members.(s) ~size:64 (Num ((100 * s) + i))
           done))
  done;
  Engine.run fx.eng;
  let sequences = Array.map (fun log -> List.rev !log) logs in
  check_int "member0 count" (2 * n_each) (List.length sequences.(0));
  Array.iteri
    (fun i s ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "member%d sees the same total order" i)
        sequences.(0) s)
    sequences;
  (* Per-sender FIFO holds inside the total order. *)
  List.iter
    (fun s ->
      let mine = List.filter (fun (snd_, _) -> snd_ = s) sequences.(0) in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "sender %d fifo" s)
        (List.init n_each (fun i -> (s, (100 * s) + i + 1)))
        mine)
    [ 1; 2 ]

let test_group_loss_recovery () =
  let fx = pool 3 in
  let grp, members = Group.create_static ~name:"g" ~sequencer:0 fx.flips in
  let n = 6 in
  let logs = spawn_receivers fx members ~count:n in
  (* Drop the 2nd Ordered multicast once (member 2 will see a gap). *)
  let dropped = ref 0 in
  Segment.set_fault_injector fx.topo.Topology.segments.(0)
    (Some
       (fun frame ->
         match frame.Frame.payload with
         | Flip_iface.Data f -> (
             match f.Fragment.payload with
             | Group.Ordered e when e.Group.e_seq = 1 && !dropped = 0 ->
               incr dropped;
               true
             | _ -> false)
         | _ -> false));
  ignore
    (Thread.spawn fx.machines.(1) "sender" (fun () ->
         for i = 1 to n do
           Group.send members.(1) ~size:64 (Num i)
         done));
  Engine.run fx.eng;
  check_int "dropped once" 1 !dropped;
  check_bool "retransmissions happened" true (Group.retransmissions grp >= 1);
  Array.iteri
    (fun i log ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "member%d ordered delivery" i)
        (List.init n (fun k -> (1, k + 1)))
        (List.rev !log))
    logs

let test_group_history_trimmed () =
  let config = { Group.default_config with Group.history_high = 8 } in
  let fx = pool 2 in
  let grp, members = Group.create_static ~config ~name:"g" ~sequencer:0 fx.flips in
  let n = 64 in
  let _logs = spawn_receivers fx members ~count:n in
  ignore
    (Thread.spawn fx.machines.(1) "sender" (fun () ->
         for i = 1 to n do
           Group.send members.(1) ~size:64 (Num i)
         done));
  Engine.run fx.eng;
  check_int "all ordered" n (Group.messages_ordered grp);
  check_bool "history bounded"
    true
    (Group.history_length grp < n)

let prop_group_total_order_under_loss =
  QCheck.Test.make ~name:"total order survives random loss" ~count:10
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let fx = pool 4 in
      let _grp, members = Group.create_static ~name:"g" ~sequencer:0 fx.flips in
      let n_each = 4 in
      let total = 3 * n_each in
      let logs = spawn_receivers fx members ~count:total in
      let rng = Rng.create ~seed in
      Segment.set_fault_injector fx.topo.Topology.segments.(0)
        (Some
           (fun frame ->
             match frame.Frame.payload with
             | Flip_iface.Data _ -> Rng.int rng 100 < 15
             | _ -> false));
      for s = 1 to 3 do
        ignore
          (Thread.spawn fx.machines.(s) (Printf.sprintf "sender%d" s) (fun () ->
               for i = 1 to n_each do
                 Group.send members.(s) ~size:64 (Num ((100 * s) + i))
               done))
      done;
      Engine.run fx.eng;
      let seq0 = List.rev !(logs.(0)) in
      List.length seq0 = total
      && Array.for_all (fun log -> List.rev !log = seq0) logs)

(* ------------------------------------------------------------------ *)
(* Dynamic membership *)

let test_group_join () =
  let fx = pool 3 in
  (* Start with members on machines 0 and 1; machine 2 joins later. *)
  let grp, members =
    Group.create_static ~name:"g" ~sequencer:0 (Array.sub fx.flips 0 2)
  in
  let logs = spawn_receivers fx members ~count:3 in
  let joined_log = ref [] in
  let view_at_join = ref [] in
  ignore
    (Thread.spawn fx.machines.(2) "joiner" (fun () ->
         Thread.sleep (Time.ms 5);
         let m = Group.join grp fx.flips.(2) in
         view_at_join := Group.view m;
         check_bool "has an index" true (Group.member_index m >= 2);
         (* Receive the messages sent after the join. *)
         ignore
           (Thread.spawn fx.machines.(2) ~prio:Thread.Daemon "recv2" (fun () ->
                for _ = 1 to 2 do
                  let sender, _, payload = Group.receive m in
                  joined_log := (sender, num payload) :: !joined_log
                done))));
  ignore
    (Thread.spawn fx.machines.(1) "sender" (fun () ->
         (* One message before the join completes, two after. *)
         Group.send members.(1) ~size:32 (Num 1);
         Thread.sleep (Time.ms 50);
         Group.send members.(1) ~size:32 (Num 2);
         Group.send members.(1) ~size:32 (Num 3)));
  Engine.run fx.eng;
  Alcotest.(check (list (pair int int)))
    "old members see all three"
    [ (1, 1); (1, 2); (1, 3) ]
    (List.rev !(logs.(0)));
  Alcotest.(check (list (pair int int)))
    "joiner sees exactly the post-join messages"
    [ (1, 2); (1, 3) ]
    (List.rev !joined_log);
  check_bool "joiner's view includes itself" true (List.mem 2 !view_at_join);
  check_int "sequencer counts three members" 3 (Group.member_count grp)

let test_group_joiner_can_send () =
  let fx = pool 3 in
  let grp, members = Group.create_static ~name:"g" ~sequencer:0 (Array.sub fx.flips 0 2) in
  let logs = spawn_receivers fx members ~count:1 in
  ignore
    (Thread.spawn fx.machines.(2) "joiner" (fun () ->
         let m = Group.join grp fx.flips.(2) in
         Group.send m ~size:32 (Num 77)));
  Engine.run fx.eng;
  Array.iteri
    (fun i log ->
      match !log with
      | [ (sender, 77) ] ->
        check_bool (Printf.sprintf "member %d got joiner's message" i) true (sender >= 2)
      | _ -> Alcotest.fail "expected exactly the joiner's message")
    logs

let test_group_leave () =
  let fx = pool 3 in
  let grp, members = Group.create_static ~name:"g" ~sequencer:0 fx.flips in
  let events = ref [] in
  Group.set_membership_handler members.(0) (fun e -> events := e :: !events);
  let logs = spawn_receivers fx members ~count:1 in
  ignore logs;
  ignore
    (Thread.spawn fx.machines.(2) "leaver" (fun () ->
         Thread.sleep (Time.ms 5);
         Group.leave members.(2);
         check_bool "inactive after leave" false (Group.active members.(2))));
  ignore
    (Thread.spawn fx.machines.(1) "sender" (fun () ->
         Thread.sleep (Time.ms 100);
         Group.send members.(1) ~size:32 (Num 4)));
  Engine.run fx.eng;
  check_int "two members left" 2 (Group.member_count grp);
  check_bool "member 0 saw the departure" true
    (List.exists (function Group.Left 2 -> true | _ -> false) !events);
  Alcotest.(check (list int)) "member 0's view" [ 0; 1 ] (Group.view members.(0))

let test_group_eviction_of_silent_member () =
  (* A member that stops answering status requests must not block history
     trimming forever: the sequencer evicts it. *)
  let config = { Group.default_config with Group.history_high = 8 } in
  let fx = pool 3 in
  let grp, members = Group.create_static ~config ~name:"g" ~sequencer:0 fx.flips in
  let n = 120 in
  (* Members 0 and 1 consume; member 2 goes silent immediately (its FLIP
     endpoints vanish, as if the machine were unplugged). *)
  let logs = spawn_receivers fx (Array.sub members 0 2) ~count:n in
  ignore logs;
  Flip_iface.unregister fx.flips.(2) (Address.group 0);
  (* Silence machine 2 by dropping everything addressed to it. *)
  Segment.set_fault_injector fx.topo.Topology.segments.(0)
    (Some (fun frame -> frame.Frame.dest = Frame.Unicast 2));
  Net.Nic.set_rx (Topology.nic fx.topo 2) (fun _ -> ());
  ignore
    (Thread.spawn fx.machines.(1) "sender" (fun () ->
         for i = 1 to n do
           Group.send members.(1) ~size:32 (Num i)
         done));
  Engine.run fx.eng;
  check_int "silent member evicted" 2 (Group.member_count grp);
  check_bool "history stayed bounded" true (Group.history_length grp < n / 2);
  check_bool "survivors saw the eviction" true
    (not (List.mem 2 (Group.view members.(0))))

let test_group_silent_tail_recovered () =
  (* Lose every multicast copy of the LAST ordered message (and its
     re-announcements): no later traffic reveals the hole, so only the
     sequencer's idle catch-up rounds can repair the members that missed
     it.  The sender must not be the one to trigger the repair: it gets
     rescued by a unicast retransmission first. *)
  let fx = pool 3 in
  let grp, members = Group.create_static ~name:"g" ~sequencer:0 fx.flips in
  let n = 3 in
  let logs = spawn_receivers fx members ~count:n in
  let drops = ref 0 in
  Segment.set_fault_injector fx.topo.Topology.segments.(0)
    (Some
       (fun frame ->
         match frame.Frame.payload with
         | Flip_iface.Data f -> (
             match f.Fragment.payload with
             | Group.Ordered e
               when e.Group.e_seq = n - 1
                    && frame.Frame.dest = Frame.Multicast
                    && !drops < 4 ->
               incr drops;
               true
             | _ -> false)
         | _ -> false));
  ignore
    (Thread.spawn fx.machines.(1) "sender" (fun () ->
         for i = 1 to n do
           Group.send members.(1) ~size:32 (Num i)
         done));
  Engine.run fx.eng;
  check_bool "multicasts of the tail were lost" true (!drops >= 2);
  Array.iteri
    (fun i log ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "member %d complete despite silent tail" i)
        (List.init n (fun k -> (1, k + 1)))
        (List.rev !log))
    logs;
  check_int "all ordered" n (Group.messages_ordered grp)

(* ------------------------------------------------------------------ *)
(* Capabilities and the directory service *)

let test_capability_validate () =
  let priv = Capability.create_port ~seed:7 in
  let cap = Capability.mint priv ~obj:3 in
  check_bool "owner validates" true (Capability.validate priv cap);
  check_bool "all rights" true (Capability.has_rights cap Capability.all_rights);
  (* Tampering with rights without the matching check fails. *)
  let forged = { cap with Capability.cap_rights = Capability.right_read } in
  check_bool "tampered rights rejected" false (Capability.validate priv forged);
  let forged2 = { cap with Capability.cap_obj = 4 } in
  check_bool "wrong object rejected" false (Capability.validate priv forged2);
  let other = Capability.create_port ~seed:8 in
  check_bool "wrong server rejects" false (Capability.validate other cap)

let test_capability_restrict () =
  let priv = Capability.create_port ~seed:7 in
  let cap = Capability.mint priv ~obj:1 in
  let ro = Capability.restrict cap ~rights:Capability.right_read in
  check_bool "restricted validates" true (Capability.validate priv ro);
  check_bool "read only" true (Capability.has_rights ro Capability.right_read);
  check_bool "no write" false (Capability.has_rights ro Capability.right_write);
  (* Upgrading rights on a restricted capability must not validate. *)
  let upgraded = { ro with Capability.cap_rights = Capability.all_rights } in
  check_bool "upgrade rejected" false (Capability.validate priv upgraded);
  (* Only owner capabilities restrict offline (as in Amoeba). *)
  let double = Capability.restrict ro ~rights:0 in
  check_bool "double restriction rejected" false (Capability.validate priv double)

let prop_capability_unforgeable =
  QCheck.Test.make ~name:"random check fields never validate" ~count:300
    QCheck.(pair (int_range 1 1_000_000) (int_range 0 0xFF))
    (fun (check, rights) ->
      let priv = Capability.create_port ~seed:99 in
      let cap =
        {
          Capability.cap_port = Capability.public priv;
          cap_obj = 5;
          cap_rights = rights;
          cap_check = check;
        }
      in
      not (Capability.validate priv cap))

let test_directory_service () =
  let fx = pool 2 in
  let server_rpc = Rpc.create fx.flips.(1) in
  let dir = Directory.start server_rpc in
  let dir_addr = Directory.address dir in
  let admin = Directory.root dir in
  let ro = Capability.restrict admin ~rights:Capability.right_read in
  let client = Rpc.create fx.flips.(0) in
  let svc_priv = Capability.create_port ~seed:42 in
  let svc_cap = Capability.mint svc_priv ~obj:1 in
  let looked_up = ref None in
  let denied_register = ref false in
  let denied_lookup = ref false in
  let names = ref [] in
  ignore
    (Thread.spawn fx.machines.(0) "client" (fun () ->
         (* Admin registers a service. *)
         Directory.register client ~dir:dir_addr ~cap:admin ~name:"tty" svc_cap;
         (* Read-only capability can look it up... *)
         looked_up := Some (Directory.lookup client ~dir:dir_addr ~cap:ro ~name:"tty");
         names := Directory.list_names client ~dir:dir_addr ~cap:ro;
         (* ...but cannot register. *)
         (try Directory.register client ~dir:dir_addr ~cap:ro ~name:"evil" svc_cap
          with Directory.Denied -> denied_register := true);
         (* Unknown names are denied. *)
         (try ignore (Directory.lookup client ~dir:dir_addr ~cap:ro ~name:"nope")
          with Directory.Denied -> denied_lookup := true)));
  Engine.run fx.eng;
  check_bool "lookup returned the service capability" true (!looked_up = Some svc_cap);
  Alcotest.(check (list string)) "names" [ "tty" ] !names;
  check_bool "read-only register denied" true !denied_register;
  check_bool "unknown lookup denied" true !denied_lookup

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "amoeba"
    [
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "large request" `Quick test_rpc_large_request_fragments;
          Alcotest.test_case "concurrent clients" `Quick test_rpc_concurrent_clients;
          Alcotest.test_case "wrong-thread reply" `Quick test_put_reply_wrong_thread_rejected;
          Alcotest.test_case "request loss" `Quick test_rpc_request_loss_retransmits;
          Alcotest.test_case "reply loss" `Quick test_rpc_reply_loss_replayed;
          Alcotest.test_case "no server" `Quick test_rpc_failure_when_no_server;
        ]
        @ qsuite [ prop_rpc_exactly_once_under_loss ] );
      ( "group",
        [
          Alcotest.test_case "basic broadcast" `Quick test_group_basic_broadcast;
          Alcotest.test_case "large message (BB)" `Quick test_group_large_message_bb;
          Alcotest.test_case "total order, two senders" `Quick test_group_total_order_two_senders;
          Alcotest.test_case "loss recovery" `Quick test_group_loss_recovery;
          Alcotest.test_case "history trimmed" `Quick test_group_history_trimmed;
          Alcotest.test_case "join" `Quick test_group_join;
          Alcotest.test_case "joiner can send" `Quick test_group_joiner_can_send;
          Alcotest.test_case "leave" `Quick test_group_leave;
          Alcotest.test_case "eviction of silent member" `Quick test_group_eviction_of_silent_member;
          Alcotest.test_case "silent tail recovered" `Quick test_group_silent_tail_recovered;
        ]
        @ qsuite [ prop_group_total_order_under_loss ] );
      ( "capability",
        [
          Alcotest.test_case "validate" `Quick test_capability_validate;
          Alcotest.test_case "restrict" `Quick test_capability_restrict;
          Alcotest.test_case "directory service" `Quick test_directory_service;
        ]
        @ qsuite [ prop_capability_unforgeable ] );
    ]


