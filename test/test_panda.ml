open Sim
open Machine
open Net
open Flip

let machine_config =
  {
    Mach.ctx_warm = Time.us 60;
    ctx_cold_idle = Time.us 70;
    ctx_cold_preempt = Time.us 110;
    interrupt_entry = Time.us 10;
    syscall_base = Time.us 25;
    trap_cost = Time.us 6;
    lock_cost = Time.us 1;
    reg_windows = 6;
  }

type fixture = {
  eng : Engine.t;
  machines : Mach.t array;
  topo : Topology.t;
  flips : Flip_iface.t array;
  sys : Panda.System_layer.t array;
}

let pool n =
  let eng = Engine.create () in
  let machines =
    Array.init n (fun i -> Mach.create eng ~id:i ~name:(Printf.sprintf "m%d" i) machine_config)
  in
  let topo = Topology.build eng ~machines () in
  let flips =
    Array.mapi (fun i _ -> Flip_iface.create machines.(i) topo.Topology.nics.(i)) machines
  in
  let sys =
    Array.mapi
      (fun i flip -> Panda.System_layer.create ~name:(Printf.sprintf "pan%d" i) flip)
      flips
  in
  { eng; machines; topo; flips; sys }

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type Payload.t += Num of int

let num = function Num n -> n | _ -> Alcotest.fail "expected Num payload"

(* ------------------------------------------------------------------ *)
(* Panda RPC *)

let spawn_incr_service fx ~machine =
  let rpc = Panda.Rpc.create fx.sys.(machine) in
  let served = ref 0 in
  Panda.Rpc.set_request_handler rpc (fun ~client:_ ~size:_ payload ~reply ->
      incr served;
      reply ~size:4 (Num (num payload + 1)));
  (rpc, served)

let test_prpc_roundtrip () =
  let fx = pool 2 in
  let srpc, served = spawn_incr_service fx ~machine:1 in
  let crpc = Panda.Rpc.create fx.sys.(0) in
  let reply = ref (-1) and finished_at = ref 0 in
  ignore
    (Thread.spawn fx.machines.(0) "client" (fun () ->
         let _sz, p = Panda.Rpc.trans crpc ~dst:(Panda.Rpc.address srpc) ~size:4 (Num 41) in
         reply := num p;
         finished_at := Engine.now fx.eng));
  Engine.run fx.eng;
  check_int "reply" 42 !reply;
  check_int "served once" 1 !served;
  check_bool "latency sane (0.5ms..6ms)" true
    (!finished_at > Time.us 500 && !finished_at < Time.ms 6)

let test_prpc_user_slower_than_kernel () =
  (* The paper's headline: the user-space null RPC is slower than the
     kernel-space one, by a fraction of a millisecond. *)
  let user_latency =
    let fx = pool 2 in
    let srpc, _ = spawn_incr_service fx ~machine:1 in
    let crpc = Panda.Rpc.create fx.sys.(0) in
    let t0 = ref 0 and t1 = ref 0 in
    ignore
      (Thread.spawn fx.machines.(0) "client" (fun () ->
           (* Warm up the route caches, then measure. *)
           ignore (Panda.Rpc.trans crpc ~dst:(Panda.Rpc.address srpc) ~size:0 (Num 0));
           t0 := Engine.now fx.eng;
           ignore (Panda.Rpc.trans crpc ~dst:(Panda.Rpc.address srpc) ~size:0 (Num 0));
           t1 := Engine.now fx.eng));
    Engine.run fx.eng;
    !t1 - !t0
  in
  let kernel_latency =
    let fx = pool 2 in
    let rpc1 = Amoeba.Rpc.create fx.flips.(1) in
    let port = Amoeba.Rpc.export rpc1 ~name:"p" in
    ignore
      (Thread.spawn fx.machines.(1) ~prio:Thread.Daemon "server" (fun () ->
           for _ = 1 to 2 do
             let r = Amoeba.Rpc.get_request port in
             Amoeba.Rpc.put_reply port r ~size:0 Payload.Empty
           done));
    let crpc = Amoeba.Rpc.create fx.flips.(0) in
    let t0 = ref 0 and t1 = ref 0 in
    ignore
      (Thread.spawn fx.machines.(0) "client" (fun () ->
           ignore (Amoeba.Rpc.trans crpc ~dst:(Amoeba.Rpc.address port) ~size:0 Payload.Empty);
           t0 := Engine.now fx.eng;
           ignore (Amoeba.Rpc.trans crpc ~dst:(Amoeba.Rpc.address port) ~size:0 Payload.Empty);
           t1 := Engine.now fx.eng));
    Engine.run fx.eng;
    !t1 - !t0
  in
  check_bool
    (Printf.sprintf "user (%dns) slower than kernel (%dns)" user_latency kernel_latency)
    true
    (user_latency > kernel_latency);
  check_bool "gap under 1ms" true (user_latency - kernel_latency < Time.ms 1)

let test_prpc_async_reply_from_other_thread () =
  (* Amoeba's kernel RPC forbids this; Panda's pan_rpc_reply allows it. *)
  let fx = pool 2 in
  let srpc = Panda.Rpc.create fx.sys.(1) in
  let stash = ref None in
  Panda.Rpc.set_request_handler srpc (fun ~client:_ ~size:_ payload ~reply ->
      (* Don't reply now: park the continuation. *)
      stash := Some (payload, reply));
  ignore
    (Thread.spawn fx.machines.(1) "replier" (fun () ->
         while !stash = None do
           Thread.sleep (Time.us 200)
         done;
         match !stash with
         | Some (payload, reply) -> reply ~size:4 (Num (num payload * 2))
         | None -> ()));
  let crpc = Panda.Rpc.create fx.sys.(0) in
  let reply = ref (-1) in
  ignore
    (Thread.spawn fx.machines.(0) "client" (fun () ->
         let _sz, p = Panda.Rpc.trans crpc ~dst:(Panda.Rpc.address srpc) ~size:4 (Num 21) in
         reply := num p));
  Engine.run fx.eng;
  check_int "async reply works" 42 !reply

let test_prpc_piggyback_acks () =
  let fx = pool 2 in
  let srpc, served = spawn_incr_service fx ~machine:1 in
  let crpc = Panda.Rpc.create fx.sys.(0) in
  ignore
    (Thread.spawn fx.machines.(0) "client" (fun () ->
         for i = 1 to 5 do
           ignore (Panda.Rpc.trans crpc ~dst:(Panda.Rpc.address srpc) ~size:4 (Num i))
         done));
  Engine.run fx.eng;
  check_int "served" 5 !served;
  (* Replies 1..4 are acknowledged by piggybacking on requests 2..5; only
     the last reply needs an explicit ack after the timeout. *)
  check_int "one explicit ack" 1 (Panda.Rpc.explicit_acks crpc)

let test_prpc_loss_recovery () =
  let fx = pool 2 in
  let srpc, served = spawn_incr_service fx ~machine:1 in
  let crpc = Panda.Rpc.create fx.sys.(0) in
  let rng = Rng.create ~seed:424242 in
  Segment.set_fault_injector fx.topo.Topology.segments.(0)
    (Some
       (fun frame ->
         match frame.Frame.payload with
         | Flip_iface.Data _ -> Rng.int rng 100 < 20
         | _ -> false));
  let replies = ref [] in
  let n = 10 in
  ignore
    (Thread.spawn fx.machines.(0) "client" (fun () ->
         for i = 1 to n do
           let _sz, p = Panda.Rpc.trans crpc ~dst:(Panda.Rpc.address srpc) ~size:4 (Num i) in
           replies := num p :: !replies
         done));
  Engine.run fx.eng;
  check_int "all served exactly once" n !served;
  Alcotest.(check (list int))
    "replies in order"
    (List.init n (fun i -> i + 2))
    (List.rev !replies)

let test_prpc_large_message () =
  let fx = pool 2 in
  let srpc, _served = spawn_incr_service fx ~machine:1 in
  let crpc = Panda.Rpc.create fx.sys.(0) in
  let ok = ref false in
  ignore
    (Thread.spawn fx.machines.(0) "client" (fun () ->
         let _sz, p = Panda.Rpc.trans crpc ~dst:(Panda.Rpc.address srpc) ~size:8000 (Num 3) in
         ok := num p = 4));
  Engine.run fx.eng;
  check_bool "8KB rpc ok" true !ok

(* ------------------------------------------------------------------ *)
(* Panda group *)

let attach_logs members =
  Array.map
    (fun m ->
      let log = ref [] in
      Panda.Group.set_handler m (fun ~sender ~size:_ payload ->
          log := (sender, num payload) :: !log);
      log)
    members

let test_pgroup_basic () =
  let fx = pool 2 in
  let _grp, members =
    Panda.Group.create_static ~name:"g" ~sequencer:(Panda.Group.On_member 1) fx.sys
  in
  let logs = attach_logs members in
  let send_done = ref false in
  ignore
    (Thread.spawn fx.machines.(0) "sender" (fun () ->
         Panda.Group.send members.(0) ~size:100 (Num 7);
         send_done := true));
  Engine.run fx.eng;
  check_bool "send returned" true !send_done;
  Alcotest.(check (list (pair int int))) "m0" [ (0, 7) ] !(logs.(0));
  Alcotest.(check (list (pair int int))) "m1" [ (0, 7) ] !(logs.(1))

let test_pgroup_total_order () =
  let fx = pool 4 in
  let _grp, members =
    Panda.Group.create_static ~name:"g" ~sequencer:(Panda.Group.On_member 0) fx.sys
  in
  let logs = attach_logs members in
  let n_each = 5 in
  for s = 1 to 3 do
    ignore
      (Thread.spawn fx.machines.(s) (Printf.sprintf "sender%d" s) (fun () ->
           for i = 1 to n_each do
             Panda.Group.send members.(s) ~size:64 (Num ((100 * s) + i))
           done))
  done;
  Engine.run fx.eng;
  let seq0 = List.rev !(logs.(0)) in
  check_int "all delivered" (3 * n_each) (List.length seq0);
  Array.iteri
    (fun i log ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "member %d agrees" i)
        seq0
        (List.rev !log))
    logs

let test_pgroup_large_bb () =
  let fx = pool 3 in
  let _grp, members =
    Panda.Group.create_static ~name:"g" ~sequencer:(Panda.Group.On_member 0) fx.sys
  in
  let logs = attach_logs members in
  ignore
    (Thread.spawn fx.machines.(2) "sender" (fun () ->
         Panda.Group.send members.(2) ~size:8000 (Num 11)));
  Engine.run fx.eng;
  Array.iter
    (fun log -> Alcotest.(check (list (pair int int))) "delivery" [ (2, 11) ] !log)
    logs

let test_pgroup_dedicated_sequencer () =
  let fx = pool 3 in
  (* Machine 2 is sacrificed to the sequencer; members live on 0 and 1. *)
  let member_sys = [| fx.sys.(0); fx.sys.(1) |] in
  let _grp, members =
    Panda.Group.create_static ~name:"g"
      ~sequencer:(Panda.Group.Dedicated fx.sys.(2))
      member_sys
  in
  let logs = attach_logs members in
  ignore
    (Thread.spawn fx.machines.(0) "sender" (fun () ->
         for i = 1 to 3 do
           Panda.Group.send members.(0) ~size:64 (Num i)
         done));
  Engine.run fx.eng;
  Array.iter
    (fun log ->
      Alcotest.(check (list (pair int int)))
        "ordered delivery"
        [ (0, 1); (0, 2); (0, 3) ]
        (List.rev !log))
    logs

let test_pgroup_nonblocking_send () =
  let fx = pool 2 in
  let _grp, members =
    Panda.Group.create_static ~name:"g" ~sequencer:(Panda.Group.On_member 1) fx.sys
  in
  let logs = attach_logs members in
  let returned_at = ref 0 in
  ignore
    (Thread.spawn fx.machines.(0) "sender" (fun () ->
         Panda.Group.send_nonblocking members.(0) ~size:64 (Num 1);
         returned_at := Engine.now fx.eng));
  Engine.run fx.eng;
  (* The nonblocking send returns before the sequencer round trip (well
     under the ~1.7ms blocking latency) yet the message is delivered. *)
  check_bool "returned early" true (!returned_at < Time.us 900);
  Alcotest.(check (list (pair int int))) "delivered" [ (0, 1) ] !(logs.(0));
  Alcotest.(check (list (pair int int))) "delivered remote" [ (0, 1) ] !(logs.(1))

let test_pgroup_loss_recovery () =
  let fx = pool 3 in
  let grp, members =
    Panda.Group.create_static ~name:"g" ~sequencer:(Panda.Group.On_member 0) fx.sys
  in
  let logs = attach_logs members in
  let rng = Rng.create ~seed:77 in
  Segment.set_fault_injector fx.topo.Topology.segments.(0)
    (Some
       (fun frame ->
         match frame.Frame.payload with
         | Flip_iface.Data _ -> Rng.int rng 100 < 15
         | _ -> false));
  let n = 8 in
  ignore
    (Thread.spawn fx.machines.(1) "sender" (fun () ->
         for i = 1 to n do
           Panda.Group.send members.(1) ~size:64 (Num i)
         done));
  Engine.run fx.eng;
  check_bool "retransmissions happened" true (Panda.Group.retransmissions grp >= 0);
  Array.iteri
    (fun i log ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "member %d complete ordered delivery" i)
        (List.init n (fun k -> (1, k + 1)))
        (List.rev !log))
    logs

let test_pgroup_user_slower_than_kernel () =
  (* Group latency: kernel sequencer (interrupt context) beats the
     user-space sequencer thread. *)
  let measure_user () =
    let fx = pool 2 in
    let _grp, members =
      Panda.Group.create_static ~name:"g" ~sequencer:(Panda.Group.On_member 1) fx.sys
    in
    Array.iter (fun m -> Panda.Group.set_handler m (fun ~sender:_ ~size:_ _ -> ())) members;
    let t0 = ref 0 and t1 = ref 0 in
    ignore
      (Thread.spawn fx.machines.(0) "sender" (fun () ->
           Panda.Group.send members.(0) ~size:0 (Num 0);
           t0 := Engine.now fx.eng;
           Panda.Group.send members.(0) ~size:0 (Num 0);
           t1 := Engine.now fx.eng));
    Engine.run fx.eng;
    !t1 - !t0
  in
  let measure_kernel () =
    let fx = pool 2 in
    let _grp, members = Amoeba.Group.create_static ~name:"g" ~sequencer:1 fx.flips in
    Array.iteri
      (fun i m ->
        ignore
          (Thread.spawn fx.machines.(i) ~prio:Thread.Daemon "recv" (fun () ->
               for _ = 1 to 2 do
                 ignore (Amoeba.Group.receive m)
               done)))
      members;
    let t0 = ref 0 and t1 = ref 0 in
    ignore
      (Thread.spawn fx.machines.(0) "sender" (fun () ->
           Amoeba.Group.send members.(0) ~size:0 (Num 0);
           t0 := Engine.now fx.eng;
           Amoeba.Group.send members.(0) ~size:0 (Num 0);
           t1 := Engine.now fx.eng));
    Engine.run fx.eng;
    !t1 - !t0
  in
  let user = measure_user () and kernel = measure_kernel () in
  check_bool
    (Printf.sprintf "user group (%dns) slower than kernel (%dns)" user kernel)
    true (user > kernel);
  check_bool "gap under 1ms" true (user - kernel < Time.ms 1)

let test_pgroup_silent_tail_recovered () =
  (* Same as the kernel-group silent-tail case: the last ordered multicast
     is lost repeatedly; the user-space sequencer's catch-up rounds must
     repair the members that missed it. *)
  let fx = pool 3 in
  let grp, members =
    Panda.Group.create_static ~name:"g" ~sequencer:(Panda.Group.On_member 0) fx.sys
  in
  let logs = attach_logs members in
  let n = 3 in
  let drops = ref 0 in
  Segment.set_fault_injector fx.topo.Topology.segments.(0)
    (Some
       (fun frame ->
         match frame.Frame.payload with
         | Flip_iface.Data f -> (
             match Panda.System_layer.unwrap f with
             | Some pan -> (
                 match pan.Fragment.payload with
                 | Panda.Group.Gord { g_seq; _ }
                   when g_seq = n - 1 && frame.Frame.dest = Frame.Multicast && !drops < 4 ->
                   incr drops;
                   true
                 | _ -> false)
             | None -> false)
         | _ -> false));
  ignore
    (Thread.spawn fx.machines.(1) "sender" (fun () ->
         for i = 1 to n do
           Panda.Group.send members.(1) ~size:32 (Num i)
         done));
  Engine.run fx.eng;
  check_bool "tail multicasts lost" true (!drops >= 2);
  Array.iteri
    (fun i log ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "member %d complete" i)
        (List.init n (fun k -> (1, k + 1)))
        (List.rev !log))
    logs;
  check_int "all ordered" n (Panda.Group.messages_ordered grp)

(* ------------------------------------------------------------------ *)
(* Optimized stack: differential properties against the baseline *)

(* One sender, one receiver, a custom FLIP MTU and a custom system-layer
   config; returns the delivered messages in order and the sender's FLIP
   packet count. *)
let run_delivery ~mtu ~sys_config ~sizes =
  let eng = Engine.create () in
  let machines =
    Array.init 2 (fun i -> Mach.create eng ~id:i ~name:(Printf.sprintf "m%d" i) machine_config)
  in
  let topo = Topology.build eng ~machines () in
  let flip_config = { Flip_iface.default_config with Flip_iface.mtu } in
  let flips =
    Array.mapi
      (fun i _ -> Flip_iface.create machines.(i) ~config:flip_config topo.Topology.nics.(i))
      machines
  in
  let sys =
    Array.mapi
      (fun i flip ->
        Panda.System_layer.create ~config:sys_config ~name:(Printf.sprintf "pan%d" i) flip)
      flips
  in
  let delivered = ref [] in
  Panda.System_layer.add_handler sys.(1) (fun ~src:_ ~size payload ->
      delivered := (size, payload) :: !delivered;
      true);
  ignore
    (Thread.spawn machines.(0) "sender" (fun () ->
         List.iteri
           (fun i size ->
             Panda.System_layer.send sys.(0)
               ~dst:(Panda.System_layer.address sys.(1))
               ~size (Num i))
           sizes));
  Engine.run eng;
  ( List.rev !delivered,
    Flip_iface.packets_out flips.(0),
    Panda.System_layer.fastpath_deliveries sys.(1) )

let optimized_config =
  { Panda.System_layer.default_config with single_frag = true; sg_copy = true; rx_fastpath = true }

(* The tentpole differential: for random sizes and MTUs the optimized path
   delivers byte-identical payloads with identical message boundaries, and
   its fragments are sized so FLIP never re-fragments — the sender's FLIP
   packet count is exactly [ceil (size / panda_mtu)] per message. *)
let prop_optimized_differential =
  QCheck.Test.make ~count:60 ~name:"optimized = baseline deliveries, single fragmentation"
    QCheck.(
      pair
        (int_range 100 4000) (* FLIP MTU *)
        (list_of_size Gen.(1 -- 3) (int_range 0 20_000) (* message sizes *)))
    (fun (mtu, sizes) ->
      QCheck.assume (mtu > 16 + 1);
      let base, _, base_fast = run_delivery ~mtu ~sys_config:Panda.System_layer.default_config ~sizes in
      let opt, opt_packets, _ = run_delivery ~mtu ~sys_config:optimized_config ~sizes in
      (* Byte-identical deliveries: same boundaries, sizes and payloads in
         the same order. *)
      if base <> opt then QCheck.Test.fail_report "optimized deliveries differ from baseline";
      if base_fast <> 0 then QCheck.Test.fail_report "baseline used the fast path";
      (* Never FLIP-level re-fragmentation: every Panda fragment is one
         FLIP packet, so the sender's packet count is the sum of
         ceil(size / panda_mtu) over the messages. *)
      let panda_mtu = mtu - Panda.System_layer.default_config.Panda.System_layer.pan_header in
      let expect =
        List.fold_left
          (fun acc size -> acc + max 1 ((size + panda_mtu - 1) / panda_mtu))
          0 sizes
      in
      if opt_packets <> expect then
        QCheck.Test.fail_reportf "FLIP packets %d, expected %d (mtu=%d sizes=%s)" opt_packets
          expect mtu
          (String.concat "," (List.map string_of_int sizes));
      true)

let test_optimized_fastpath_counter () =
  (* Single-fragment messages take the receive fast path; multi-fragment
     ones keep the daemon (the paper's protocol structure is preserved). *)
  let single, _, fast1 =
    run_delivery ~mtu:1460 ~sys_config:optimized_config ~sizes:[ 100; 200 ]
  in
  check_int "both delivered" 2 (List.length single);
  check_int "both via fast path" 2 fast1;
  let multi, _, fast2 = run_delivery ~mtu:1460 ~sys_config:optimized_config ~sizes:[ 8000 ] in
  check_int "multi-fragment delivered" 1 (List.length multi);
  check_int "multi-fragment kept the daemon path" 0 fast2

let () =
  Alcotest.run "panda"
    [
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_prpc_roundtrip;
          Alcotest.test_case "user slower than kernel" `Quick test_prpc_user_slower_than_kernel;
          Alcotest.test_case "async reply" `Quick test_prpc_async_reply_from_other_thread;
          Alcotest.test_case "piggyback acks" `Quick test_prpc_piggyback_acks;
          Alcotest.test_case "loss recovery" `Quick test_prpc_loss_recovery;
          Alcotest.test_case "large message" `Quick test_prpc_large_message;
        ] );
      ( "group",
        [
          Alcotest.test_case "basic" `Quick test_pgroup_basic;
          Alcotest.test_case "total order" `Quick test_pgroup_total_order;
          Alcotest.test_case "large (BB)" `Quick test_pgroup_large_bb;
          Alcotest.test_case "dedicated sequencer" `Quick test_pgroup_dedicated_sequencer;
          Alcotest.test_case "nonblocking send" `Quick test_pgroup_nonblocking_send;
          Alcotest.test_case "loss recovery" `Quick test_pgroup_loss_recovery;
          Alcotest.test_case "silent tail recovered" `Quick test_pgroup_silent_tail_recovered;
          Alcotest.test_case "user slower than kernel" `Quick test_pgroup_user_slower_than_kernel;
        ] );
      ( "optimized",
        [
          QCheck_alcotest.to_alcotest prop_optimized_differential;
          Alcotest.test_case "fast-path counter" `Quick test_optimized_fastpath_counter;
        ] );
    ]
