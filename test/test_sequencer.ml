open Sim
open Machine
open Net
open Flip

(* Conformance tests for the sequencer capacity policies: batching,
   rotating token, sharded sequencers, crash failover.  Direct protocol
   tests here build raw Panda groups; the policy × fault matrix further
   down drives full checked load cells through Core.Experiments. *)

let machine_config =
  {
    Mach.ctx_warm = Time.us 60;
    ctx_cold_idle = Time.us 70;
    ctx_cold_preempt = Time.us 110;
    interrupt_entry = Time.us 10;
    syscall_base = Time.us 25;
    trap_cost = Time.us 6;
    lock_cost = Time.us 1;
    reg_windows = 6;
  }

type fixture = {
  eng : Engine.t;
  machines : Mach.t array;
  sys : Panda.System_layer.t array;
}

let pool n =
  let eng = Engine.create () in
  let machines =
    Array.init n (fun i ->
        Mach.create eng ~id:i ~name:(Printf.sprintf "m%d" i) machine_config)
  in
  let topo = Topology.build eng ~machines () in
  let flips =
    Array.mapi (fun i _ -> Flip_iface.create machines.(i) topo.Topology.nics.(i)) machines
  in
  let sys =
    Array.mapi
      (fun i flip -> Panda.System_layer.create ~name:(Printf.sprintf "pan%d" i) flip)
      flips
  in
  { eng; machines; sys }

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type Payload.t += KV of { key : int; value : int }

(* Build a group under [policy], run [sends] messages from every member
   (tagged with shard keys), and return per-member delivery logs. *)
let run_group ?(n = 4) ?(sends = 10) ?(crash_at = None) ~policy () =
  let fx = pool n in
  let grp, members =
    Panda.Group.create_static ~policy ~name:"g" ~sequencer:(Panda.Group.On_member 0)
      fx.sys
  in
  let logs = Array.map (fun _ -> ref []) members in
  Array.iteri
    (fun i m ->
      Panda.Group.set_handler m (fun ~sender ~size:_ payload ->
          match payload with
          | KV { key; value } -> logs.(i) := (sender, key, value) :: !(logs.(i))
          | _ -> Alcotest.fail "unexpected payload"))
    members;
  Array.iteri
    (fun i m ->
      ignore
        (Thread.spawn fx.machines.(i) (Printf.sprintf "sender%d" i) (fun () ->
             for v = 0 to sends - 1 do
               let key = (i * sends) + v in
               Panda.Group.send ~key m ~size:64 (KV { key; value = v });
               Thread.sleep (Time.ms 2)
             done)))
    members;
  (match crash_at with
   | None -> ()
   | Some at ->
     ignore (Engine.at fx.eng at (fun () -> Panda.Group.crash_sequencer grp)));
  Engine.run fx.eng;
  (grp, Array.map (fun l -> List.rev !l) logs)

let by_shard ~shards log =
  let per = Array.make shards [] in
  List.iter
    (fun (_, key, _ as d) ->
      let sh = Panda.Seq_policy.shard_of_key ~shards key in
      per.(sh) <- d :: per.(sh))
    log;
  Array.map List.rev per

let assert_complete_and_identical ~n ~sends ~shards logs =
  let total = n * sends in
  Array.iteri
    (fun i log ->
      check_int (Printf.sprintf "member %d delivered all" i) total (List.length log);
      let uniq = List.sort_uniq compare log in
      check_int (Printf.sprintf "member %d no duplicates" i) total (List.length uniq))
    logs;
  (* Identical delivery order at every member, per ordering shard. *)
  let ref_shards = by_shard ~shards logs.(0) in
  Array.iteri
    (fun i log ->
      let shl = by_shard ~shards log in
      for sh = 0 to shards - 1 do
        check_bool
          (Printf.sprintf "member %d shard %d order matches member 0" i sh)
          true
          (shl.(sh) = ref_shards.(sh))
      done)
    logs

(* ------------------------------------------------------------------ *)
(* Direct protocol tests *)

let test_batching_orders_all () =
  let n = 4 and sends = 12 in
  let grp, logs = run_group ~n ~sends ~policy:(Panda.Seq_policy.Batching 4) () in
  assert_complete_and_identical ~n ~sends ~shards:1 logs;
  check_int "every message ordered exactly once" (n * sends)
    (Panda.Group.messages_ordered grp)

let test_rotating_orders_all () =
  let n = 3 and sends = 12 in
  (* A short period forces several full token cycles within the run. *)
  let grp, logs = run_group ~n ~sends ~policy:(Panda.Seq_policy.Rotating 5) () in
  assert_complete_and_identical ~n ~sends ~shards:1 logs;
  check_int "every message ordered exactly once" (n * sends)
    (Panda.Group.messages_ordered grp)

let test_sharded_per_shard_order () =
  let n = 4 and sends = 12 in
  let shards = 3 in
  let grp, logs = run_group ~n ~sends ~policy:(Panda.Seq_policy.Sharded shards) () in
  check_int "shard count" shards (Panda.Group.shard_count grp);
  assert_complete_and_identical ~n ~sends ~shards logs;
  check_int "every message ordered exactly once" (n * sends)
    (Panda.Group.messages_ordered grp)

let test_failover_recovers () =
  let n = 4 and sends = 15 in
  let grp, logs =
    run_group ~n ~sends ~crash_at:(Some (Time.ms 8)) ~policy:Panda.Seq_policy.Failover
      ()
  in
  check_int "standby took over" 1 (Panda.Group.sequencer_epoch grp);
  (* Gap-free identical total order must survive the crash: every message
     delivered everywhere, exactly once, in one global order. *)
  assert_complete_and_identical ~n ~sends ~shards:1 logs

let test_sharded_failover_recovers () =
  let n = 4 and sends = 15 in
  let shards = 3 in
  let grp, logs =
    run_group ~n ~sends ~crash_at:(Some (Time.ms 8))
      ~policy:(Panda.Seq_policy.Sharded shards) ()
  in
  check_int "shard 0 standby took over" 1 (Panda.Group.sequencer_epoch grp);
  assert_complete_and_identical ~n ~sends ~shards logs

let direct =
  [
    Alcotest.test_case "batching delivers identical total order" `Quick
      test_batching_orders_all;
    Alcotest.test_case "rotating token delivers identical total order" `Quick
      test_rotating_orders_all;
    Alcotest.test_case "sharded delivers per-shard identical order" `Quick
      test_sharded_per_shard_order;
    Alcotest.test_case "failover recovers total order after crash" `Quick
      test_failover_recovers;
    Alcotest.test_case "sharded failover recovers shard 0 after crash" `Quick
      test_sharded_failover_recovers;
  ]

(* ------------------------------------------------------------------ *)
(* Checked policy × fault matrix: every non-baseline policy through a
   full load cell under the conformance checker, fault-free, at 1% frame
   loss, and with the sequencer crashed mid-window.  Zero violations
   certifies gap-free (per-shard) total order end to end — exactly the
   property `--checked` enforces in CI. *)

let matrix_policies =
  [
    Panda.Seq_policy.Batching 16;
    Panda.Seq_policy.Rotating 64;
    Panda.Seq_policy.Sharded 4;
    Panda.Seq_policy.Failover;
  ]

let quick_config =
  {
    Load.Clients.default with
    Load.Clients.warmup = Time.ms 100;
    window = Time.ms 300;
  }

let run_matrix ?faults () =
  Core.Experiments.sequencer_policy_sweep ?faults ~checked:true ~senders:[ 2 ]
    ~config:quick_config ~policies:matrix_policies ()

let assert_clean tag rows =
  List.iter
    (fun (policy, pts) ->
      List.iter
        (fun (s, m) ->
          let cell =
            Printf.sprintf "%s %s senders=%d" tag
              (Panda.Seq_policy.to_string policy)
              s
          in
          check_int (cell ^ ": zero violations") 0 m.Load.Metrics.violations;
          check_bool (cell ^ ": made progress") true
            (m.Load.Metrics.completed > 0))
        pts)
    rows

let test_matrix_fault_free () = assert_clean "fault-free" (run_matrix ())

let test_matrix_loss () =
  assert_clean "loss=1%" (run_matrix ~faults:(Faults.Spec.loss ~seed:7 0.01) ())

let test_matrix_seqcrash () =
  (* Crash lands inside the measurement window (warmup 100 ms + 300 ms
     window); recovery must rebuild a gap-free order with the checker
     watching. *)
  let faults =
    { Faults.Spec.none with Faults.Spec.seq_crash = Some (Time.ms 250) }
  in
  assert_clean "seqcrash" (run_matrix ~faults ())

let test_sweep_bit_identical_parallel () =
  (* The full policy sweep must be bit-identical sequential vs fanned out
     over a 2-domain pool — Metrics.t is all floats/ints/arrays, so
     structural equality is exact equality. *)
  let run ?pool () =
    Core.Experiments.sequencer_policy_sweep ?pool ~senders:[ 1; 2 ]
      ~config:quick_config ()
  in
  let seq = run () in
  let par = Exec.Pool.with_pool ~jobs:2 (fun p -> run ~pool:p ()) in
  check_bool "policy sweep bit-identical at -j 2" true (seq = par)

let matrix =
  [
    Alcotest.test_case "all policies checked, fault-free" `Quick
      test_matrix_fault_free;
    Alcotest.test_case "all policies checked at 1% loss" `Quick
      test_matrix_loss;
    Alcotest.test_case "all policies checked across a sequencer crash"
      `Quick test_matrix_seqcrash;
    Alcotest.test_case "sweep bit-identical -j 1 vs -j 2" `Quick
      test_sweep_bit_identical_parallel;
  ]

(* ------------------------------------------------------------------ *)
(* QCheck model: any random interleaving of keyed sends through sharded
   sequencers yields, at every member, the same gap-free per-shard
   delivery sequence.  Each generated case fixes (members, shards, ops);
   the simulation itself is deterministic, so QCheck explores input
   space, not schedules. *)

let run_sharded_model ~n ~shards ops =
  let fx = pool n in
  let _grp, members =
    Panda.Group.create_static
      ~policy:(Panda.Seq_policy.Sharded shards)
      ~name:"g"
      ~sequencer:(Panda.Group.On_member 0)
      fx.sys
  in
  let logs = Array.map (fun _ -> ref []) members in
  Array.iteri
    (fun i m ->
      Panda.Group.set_handler m (fun ~sender ~size:_ payload ->
          match payload with
          | KV { key; value } -> logs.(i) := (sender, key, value) :: !(logs.(i))
          | _ -> ()))
    members;
  let per_member = Array.make n [] in
  List.iteri
    (fun idx (who, key, jitter) ->
      per_member.(who mod n) <- (idx, key, jitter) :: per_member.(who mod n))
    ops;
  Array.iteri
    (fun i m ->
      let mine = List.rev per_member.(i) in
      ignore
        (Thread.spawn fx.machines.(i) (Printf.sprintf "s%d" i) (fun () ->
             List.iter
               (fun (idx, key, jitter) ->
                 Panda.Group.send ~key m ~size:64 (KV { key; value = idx });
                 Thread.sleep (Time.us (50 + (jitter mod 4000))))
               mine)))
    members;
  Engine.run fx.eng;
  Array.map (fun l -> List.rev !l) logs

let prop_sharded_model =
  QCheck.Test.make ~count:25
    ~name:"sharded model: per-shard gap-free identical sequences"
    QCheck.(
      triple (int_range 2 5) (int_range 1 4)
        (list_of_size Gen.(int_range 1 40)
           (triple small_nat small_nat small_nat)))
    (fun (n, shards, ops) ->
      let logs = run_sharded_model ~n ~shards ops in
      let total = List.length ops in
      let ref_shards = by_shard ~shards logs.(0) in
      Array.for_all
        (fun log ->
          (* complete and duplicate-free: the value field is the op's
             globally unique index *)
          List.length log = total
          && List.length (List.sort_uniq compare log) = total
          && by_shard ~shards log = ref_shards)
        logs)

let model = [ QCheck_alcotest.to_alcotest prop_sharded_model ]

(* ------------------------------------------------------------------ *)
(* Golden pin: the default-policy (single-sequencer) saturation numbers,
   bit-exact.  The user stack's 725 msg/s wall is the baseline every
   policy in the capacity program is measured against; like the Table 1/2
   goldens, any drift means the cost model changed and the pin must be
   re-justified, not fuzzed past. *)

(* impl, senders, achieved msg/s, p50 ms, p99 ms, sequencer util. *)
let golden_saturation =
  [
    ("kernel", 1, 890., 2.2420800000000001, 2.2420800000000001,
     0.59820267999999999);
    ("kernel", 2, 1088., 3.6875, 3.6875, 0.70669324);
    ("kernel", 4, 1224., 6.625, 6.875, 0.78560043999999996);
    ("kernel", 7, 1232., 11.25, 11.75, 0.78133136000000003);
    ("user", 1, 724., 2.6875, 2.6875, 1.0001521200000001);
    ("user", 2, 725., 5.375, 5.625, 0.99992464000000003);
    ("user", 4, 725., 10.75, 13.75, 1.00001984);
    ("user", 7, 725., 19.5, 21.5, 1.00002324);
    ("optimized", 1, 858., 2.3125, 2.3125, 0.99987915999999999);
    ("optimized", 2, 839., 4.625, 5.875, 1.00007548);
    ("optimized", 4, 826., 9.75, 11.75, 1.00005476);
    ("optimized", 7, 824., 16.5, 18.5, 1.00020088);
  ]

let exact = Alcotest.(check (float 0.))

let test_golden_saturation () =
  let rows = Core.Experiments.sequencer_saturation () in
  let flat =
    List.concat_map
      (fun (impl, pts) ->
        List.map (fun (s, m) -> (Core.Cluster.impl_label impl, s, m)) pts)
      rows
  in
  check_int "grid shape" (List.length golden_saturation) (List.length flat);
  List.iter2
    (fun (gl, gs, ach, p50, p99, util) (l, s, m) ->
      let tag col = Printf.sprintf "saturation %s senders=%d %s" gl gs col in
      Alcotest.(check string) (tag "stack") gl l;
      check_int (tag "senders") gs s;
      exact (tag "achieved") ach m.Load.Metrics.achieved;
      exact (tag "p50") p50 m.Load.Metrics.p50_ms;
      exact (tag "p99") p99 m.Load.Metrics.p99_ms;
      exact (tag "seq_util") util m.Load.Metrics.seq_util)
    golden_saturation flat

let golden =
  [
    Alcotest.test_case "default-policy saturation pins bit-exactly" `Quick
      test_golden_saturation;
  ]

let () =
  Alcotest.run "sequencer"
    [
      ("direct", direct);
      ("checked matrix", matrix);
      ("sharded model", model);
      ("golden", golden);
    ]
