(** Builds the paper's testbed: a pool of SPARC-like machines on 10 Mbit/s
    Ethernet segments of eight, joined by a switch, each running FLIP. *)

type t = {
  eng : Sim.Engine.t;
  machines : Machine.Mach.t array;
  topo : Net.Topology.t;
  flips : Flip.Flip_iface.t array;
  extra : Flip.Flip_iface.t option;
      (** an additional machine (on the last segment) for the
          dedicated-sequencer experiments *)
}

val create : ?extra_machine:bool -> n:int -> unit -> t

type impl = Kernel | User | User_dedicated | User_optimized

val impl_label : impl -> string
val all_impls : impl list

val backends : ?checker:Faults.Invariants.t -> t -> impl -> Orca.Backend.t array
(** The raw communication backends (one per rank) for the given protocol
    implementation — what {!domain} builds the Orca runtime on, exposed
    so load generators can drive the stacks directly.  [User_dedicated]
    requires the cluster to have been created with [extra_machine:true].
    With [checker] the backends are wrapped in the protocol-conformance
    checkers (checked mode); call [Faults.Invariants.finalize] after the
    run drains. *)

val domain : ?checker:Faults.Invariants.t -> t -> impl -> Orca.Rts.domain
(** Builds the Orca domain over the cluster: [backends] plus the
    runtime-system overhead. *)

val sequencer_machine : t -> impl -> Machine.Mach.t
(** The machine hosting the group sequencer: the dedicated extra machine
    for [User_dedicated], rank 0's machine otherwise (both stacks default
    the sequencer to rank 0). *)
