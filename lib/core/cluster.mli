(** Builds the paper's testbed: a pool of SPARC-like machines on 10 Mbit/s
    Ethernet segments of eight, joined by a switch, each running FLIP. *)

type t = {
  eng : Sim.Engine.t;
  machines : Machine.Mach.t array;
  topo : Net.Topology.t;
  flips : Flip.Flip_iface.t array;
  extra : Flip.Flip_iface.t option;
      (** an additional machine (on the last segment) for the
          dedicated-sequencer experiments *)
}

val create : ?extra_machine:bool -> n:int -> unit -> t

type impl = Kernel | User | User_dedicated | User_optimized

val impl_label : impl -> string
val all_impls : impl list

val domain : ?checker:Faults.Invariants.t -> t -> impl -> Orca.Rts.domain
(** Builds the Orca domain over the cluster with the given protocol
    implementation.  [User_dedicated] requires the cluster to have been
    created with [extra_machine:true].  With [checker] the backends are
    wrapped in the protocol-conformance checkers (checked mode); call
    [Faults.Invariants.finalize] after the run drains. *)
