(** Builds the paper's testbed: a pool of SPARC-like machines on Ethernet
    segments of eight, joined by a switch, each running FLIP.  The wire,
    switch and NIC constants come from a {!Params.net_profile} (default:
    the paper's own 10 Mbit/s era). *)

type t = private {
  eng : Sim.Engine.t;
  machines : Machine.Mach.t array;
  topo : Net.Topology.t;
  flips : Flip.Flip_iface.t array;
  extra : Flip.Flip_iface.t option;
      (** an additional machine (on the last segment) for the
          dedicated-sequencer experiments *)
  net : Params.net_profile;
  mutable rnic_cache : Onesided.Rnic.t array option;
}

val create :
  ?extra_machine:bool -> ?net:Params.net_profile -> ?lanes:bool -> n:int -> unit -> t
(** [lanes] (default {!default_lanes}) shards the engine into conservative
    event lanes when the topology spans several segments (> 8 machines);
    single-segment clusters always keep the sequential engine path. *)

val set_default_lanes : bool -> unit
(** Process-wide default for [create]'s [?lanes] — how the [--lanes] CLI
    flag reaches every experiment driver.  Set before building clusters. *)

val default_lanes : unit -> bool

val net : t -> Params.net_profile

val machine_lane : t -> int -> int
(** Engine lane of rank [i]'s machine (0 when unlaned).  Worker fibers for
    rank [i] must be spawned under [Sim.Engine.with_lane] on this lane so
    their event chains stay lane-local. *)

val n_segments : t -> int
(** Ethernet segments in the pool (ranks sit on segments of eight, in
    order: segment [s] owns ranks [8s, 8s+8)). *)

val server_ranks : ?per_segment_servers:int -> t -> int list
(** Canonical server placement for cluster-scale sharded services: the
    first [per_segment_servers] (default 1) ranks of every segment, in
    rank order — servers spread across segments so inter-segment links
    and the switch, not one wire, carry the service traffic. *)

val rnics : t -> Onesided.Rnic.t array
(** One one-sided Rnic per rank, created on first use (lazily, so the
    engine's address sequence is untouched for clusters that never go
    one-sided) with all pairwise routes pre-seeded — the connection-setup
    route exchange — so no LOCATE broadcast ever lands on the measured
    data path.  Memoized: repeated calls return the same array. *)

type impl = Kernel | User | User_dedicated | User_optimized

val impl_label : impl -> string
val all_impls : impl list

type stack = Rpc_stack of impl | One_sided
(** The four communication backends: the three thread-scheduling RPC
    stacks (plus the dedicated-sequencer variant) and the one-sided
    backend. *)

val stack_label : stack -> string

val all_stacks : stack list
(** The stacks compared by the crossover experiments: kernel, user,
    optimized, onesided (the dedicated-sequencer variant needs an extra
    machine and adds nothing to RPC-vs-one-sided comparisons). *)

val stack_of_string : string -> stack option

val backends :
  ?checker:Faults.Invariants.t ->
  ?policy:Panda.Seq_policy.t ->
  t ->
  impl ->
  Orca.Backend.t array
(** The raw communication backends (one per rank) for the given protocol
    implementation — what {!domain} builds the Orca runtime on, exposed
    so load generators can drive the stacks directly.  [User_dedicated]
    requires the cluster to have been created with [extra_machine:true].
    With [checker] the backends are wrapped in the protocol-conformance
    checkers (checked mode); call [Faults.Invariants.finalize] after the
    run drains.  [policy] (default [Single]) selects the sequencer
    capacity policy; the user stacks accept them all, the kernel stack
    only [Single] and [Batching] (@raise Invalid_argument otherwise). *)

val domain :
  ?checker:Faults.Invariants.t ->
  ?policy:Panda.Seq_policy.t ->
  t ->
  impl ->
  Orca.Rts.domain
(** Builds the Orca domain over the cluster: [backends] plus the
    runtime-system overhead. *)

val sequencer_machine : t -> impl -> Machine.Mach.t
(** The machine hosting the group sequencer: the dedicated extra machine
    for [User_dedicated], rank 0's machine otherwise (both stacks default
    the sequencer to rank 0). *)
