type app = {
  app_name : string;
  app_make : Orca.Rts.domain -> (rank:int -> unit) * (unit -> int);
  app_reference : int Lazy.t;
}

let apps =
  [
    {
      app_name = "tsp";
      app_make = (fun dom -> Apps.Tsp.make dom Apps.Tsp.default_params);
      app_reference = lazy (Apps.Tsp.sequential Apps.Tsp.default_params);
    };
    {
      app_name = "asp";
      app_make = (fun dom -> Apps.Asp.make dom Apps.Asp.default_params);
      app_reference = lazy (Apps.Asp.sequential Apps.Asp.default_params);
    };
    {
      app_name = "ab";
      app_make = (fun dom -> Apps.Ab.make dom Apps.Ab.default_params);
      app_reference = lazy (Apps.Ab.sequential Apps.Ab.default_params);
    };
    {
      app_name = "rl";
      app_make = (fun dom -> Apps.Rl.make dom Apps.Rl.default_params);
      app_reference = lazy (Apps.Rl.sequential Apps.Rl.default_params);
    };
    {
      app_name = "sor";
      app_make = (fun dom -> Apps.Sor.make dom Apps.Sor.default_params);
      app_reference = lazy (Apps.Sor.sequential Apps.Sor.default_params);
    };
    {
      app_name = "leq";
      app_make = (fun dom -> Apps.Leq.make dom Apps.Leq.default_params);
      app_reference = lazy (Apps.Leq.sequential Apps.Leq.default_params);
    };
  ]

let app_named name =
  match List.find_opt (fun a -> a.app_name = name) apps with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Runner.app_named: unknown app %S" name)

type stats = {
  s_broadcasts : int;
  s_remote : int;
  s_parked : int;
  s_migrations : int;
  s_net_bytes : int;
  s_net_util : float;
  s_cpu_util_max : float;
  s_ctx_switches : int;
}

type outcome = {
  o_app : string;
  o_impl : Cluster.impl;
  o_procs : int;
  o_seconds : float;
  o_checksum : int;
  o_valid : bool;
  o_events : int;
  o_stats : stats;
  o_retrans : int;
  o_fault_kills : int;
  o_violations : string list;
}

let run ?faults ?(checked = false) ?net ?lanes
    ?(sequencer = Panda.Seq_policy.Single) ~impl ~procs app =
  (* The dedicated-sequencer variant sacrifices one of the P processors to
     the sequencer: P-1 Orca workers (the paper's 15 workers at P=16). *)
  let workers =
    match impl with Cluster.User_dedicated -> max 1 (procs - 1) | _ -> procs
  in
  let cluster =
    Cluster.create
      ~extra_machine:(impl = Cluster.User_dedicated)
      ?net ?lanes ~n:workers ()
  in
  let fstats =
    match faults with
    | Some spec -> Some (Faults.Inject.install cluster.Cluster.eng cluster.Cluster.topo spec)
    | None -> None
  in
  let checker =
    if checked then
      Some (Faults.Invariants.create ~shards:(Panda.Seq_policy.shards sequencer) ())
    else None
  in
  let backends = Cluster.backends ?checker ~policy:sequencer cluster impl in
  (* A scheduled sequencer crash is a fault like any other: driven by the
     spec, visible to the app only as recovery latency. *)
  (match faults with
   | Some { Faults.Spec.seq_crash = Some at; _ } ->
     ignore
       (Sim.Engine.at cluster.Cluster.eng at (fun () ->
            backends.(0).Orca.Backend.crash_sequencer ()))
   | _ -> ());
  let dom = Orca.Rts.create_domain ~rts_overhead:Params.rts_overhead backends in
  let body, result = app.app_make dom in
  let finish = ref Sim.Time.zero in
  for rank = 0 to workers - 1 do
    (* Spawn each worker under its machine's lane so the fiber's event
       chain — and everything it schedules — lives where its machine's
       segment does; a no-op on unlaned clusters. *)
    Sim.Engine.with_lane cluster.Cluster.eng (Cluster.machine_lane cluster rank)
      (fun () ->
        ignore
          (Orca.Rts.spawn dom ~rank
             (Printf.sprintf "%s.%d" app.app_name rank)
             (fun ~rank ->
               body ~rank;
               let now = Sim.Engine.now cluster.Cluster.eng in
               if now > !finish then finish := now)))
  done;
  Sim.Engine.run cluster.Cluster.eng;
  (match checker with Some c -> Faults.Invariants.finalize c | None -> ());
  let checksum = result () in
  let until = max 1 !finish in
  let stats =
    {
      s_broadcasts = Orca.Rts.broadcasts dom;
      s_remote = Orca.Rts.remote_invocations dom;
      s_parked = Orca.Rts.parked_total dom;
      s_migrations = Orca.Rts.migrations dom;
      s_net_bytes = Net.Topology.total_bytes cluster.Cluster.topo;
      s_net_util = Net.Topology.max_utilization cluster.Cluster.topo ~until;
      s_cpu_util_max =
        Array.fold_left
          (fun acc m -> Float.max acc (Machine.Mach.utilization m ~until))
          0. cluster.Cluster.machines;
      s_ctx_switches =
        Array.fold_left
          (fun acc m -> acc + Machine.Cpu.switches (Machine.Mach.cpu m))
          0 cluster.Cluster.machines;
    }
  in
  {
    o_app = app.app_name;
    o_impl = impl;
    o_procs = procs;
    o_seconds = Sim.Time.to_sec !finish;
    o_checksum = checksum;
    o_valid = checksum = Lazy.force app.app_reference;
    o_events = Sim.Engine.events_executed cluster.Cluster.eng;
    o_stats = stats;
    o_retrans = Orca.Rts.retransmissions dom;
    o_fault_kills =
      (match fstats with Some s -> Faults.Inject.killed s | None -> 0);
    o_violations =
      (match checker with Some c -> Faults.Invariants.violations c | None -> []);
  }

let prepare app = ignore (Lazy.force app.app_reference)

let run_cell ?faults ?checked ?net ?lanes ?sequencer (impl, procs, app) =
  run ?faults ?checked ?net ?lanes ?sequencer ~impl ~procs app

let run_many ?pool ?faults ?checked ?net ?lanes ?sequencer cells =
  match pool with
  | None -> List.map (run_cell ?faults ?checked ?net ?lanes ?sequencer) cells
  | Some p ->
    (* Force every sequential reference before fanning out: [Lazy.force]
       from two domains at once is a race. *)
    List.iter (fun (_, _, app) -> prepare app) cells;
    Exec.Pool.map_list p (run_cell ?faults ?checked ?net ?lanes ?sequencer) cells

let pp_stats fmt s =
  Format.fprintf fmt
    "broadcasts=%d rpcs=%d parked=%d migrations=%d net=%dKB net-util=%.0f%% cpu-util=%.0f%% switches=%d"
    s.s_broadcasts s.s_remote s.s_parked s.s_migrations (s.s_net_bytes / 1024)
    (100. *. s.s_net_util) (100. *. s.s_cpu_util_max) s.s_ctx_switches

let pp_outcome fmt o =
  Format.fprintf fmt "%-4s %-14s P=%-2d  %8.1f s  checksum=%d%s  (%d events)%s%s" o.o_app
    (Cluster.impl_label o.o_impl) o.o_procs o.o_seconds o.o_checksum
    (if o.o_valid then "" else " INVALID")
    o.o_events
    (if o.o_fault_kills > 0 || o.o_retrans > 0 then
       Printf.sprintf "  faults: %d killed, %d retrans" o.o_fault_kills o.o_retrans
     else "")
    (match o.o_violations with
     | [] -> ""
     | v -> Printf.sprintf "  %d INVARIANT VIOLATIONS" (List.length v))
