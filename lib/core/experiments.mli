(** Reproduction drivers for every table and in-text measurement of the
    paper's evaluation (§4 and §5). *)

(** A complete set of cost parameters; ablations run the same experiment
    under modified profiles. *)
type profile = {
  p_machine : Machine.Mach.config;
  p_nic : Net.Nic.config;
  p_segment : Net.Segment.config;
  p_switch : Sim.Time.span;
  p_flip : Flip.Flip_iface.config;
  p_arpc : Amoeba.Rpc.config;
  p_agrp : Amoeba.Group.config;
  p_psys : Panda.System_layer.config;
  p_prpc : Panda.Rpc.config;
  p_pgrp : Panda.Group.config;
}

val default_profile : profile

val with_net : Params.net_profile -> profile -> profile
(** Re-skins the profile's wire, switch and NIC constants with a network
    era's, keeping every machine and protocol cost at its 1995 value —
    the microbenchmark side of the [--profile] switch. *)

val optimize_profile : profile -> profile
(** Switches the profile's Panda configs to the optimized user-space stack
    (single fragmentation, scatter-gather zero-copy, compact merged
    headers, receive fast path) — the same configs
    {!Cluster.User_optimized} uses.  The [`Opt] impl below is shorthand
    for the user code path under this transform. *)

(** Every driver below optionally takes [?pool].  Each table cell,
    latency point, breakdown arm and ablation arm is an independent
    simulation; with a pool they run concurrently on its domains and are
    reassembled in canonical order, so the results — and thus every
    printed table — are identical to the sequential ([?pool] absent)
    path. *)

(** {1 Table 1: latencies} *)

type lat_row = {
  lr_size : int;  (** message payload bytes *)
  lr_unicast : float;  (** ms, user-space system-layer unicast *)
  lr_multicast : float;  (** ms, user-space system-layer multicast *)
  lr_rpc_user : float;
  lr_rpc_kernel : float;
  lr_grp_user : float;
  lr_grp_kernel : float;
  lr_rpc_opt : float;  (** optimized user-space stack *)
  lr_grp_opt : float;  (** optimized user-space stack *)
}

val table1 :
  ?pool:Exec.Pool.t ->
  ?faults:Faults.Spec.t ->
  ?profile:profile ->
  ?sizes:int list ->
  unit ->
  lat_row list
(** Sizes 0..4 KB (override with [?sizes]), as the paper's Table 1.
    Every driver taking [?faults] installs that schedule on each cell's
    freshly built network (per-cell injector streams, so [?pool] fan-out
    stays deterministic). *)

val unicast_latency : ?faults:Faults.Spec.t -> ?profile:profile -> size:int -> unit -> float

val multicast_latency :
  ?faults:Faults.Spec.t -> ?profile:profile -> size:int -> unit -> float

val rpc_latency :
  ?faults:Faults.Spec.t ->
  ?profile:profile ->
  impl:[ `User | `Kernel | `Opt ] ->
  size:int ->
  unit ->
  float

val group_latency :
  ?faults:Faults.Spec.t ->
  ?profile:profile ->
  impl:[ `User | `Kernel | `Opt ] ->
  size:int ->
  unit ->
  float

(** {1 Table 2: throughputs} *)

type tput_row = {
  tr_proto : string;
  tr_user : float;  (** KB/s *)
  tr_kernel : float;  (** KB/s *)
  tr_opt : float;  (** KB/s, optimized user-space stack *)
}

val table2 :
  ?pool:Exec.Pool.t -> ?faults:Faults.Spec.t -> ?profile:profile -> unit -> tput_row list

(** {1 Table 3: the six applications} *)

val table3 :
  ?pool:Exec.Pool.t ->
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?net:Params.net_profile ->
  ?procs:int list ->
  ?app_names:string list ->
  unit ->
  Runner.outcome list
(** Runs every application at each processor count under kernel-space,
    user-space and optimized user-space protocols, plus the
    dedicated-sequencer variant for LEQ (the paper's extra row).
    [?faults]/[?checked] run every cell under that fault schedule and/or
    with the conformance checkers on. *)

(** {1 Fault sweep: degradation vs. loss rate} *)

type fault_row = {
  fw_impl : Cluster.impl;
  fw_rate : float;  (** i.i.d. frame-loss probability *)
  fw_rpc_ms : float;  (** null RPC latency under that loss *)
  fw_grp_ms : float;  (** null group latency under that loss *)
  fw_app : string;
  fw_app_s : float;  (** application runtime under that loss, checked mode *)
  fw_valid : bool;  (** checksum still matches the sequential reference *)
  fw_retrans : int;  (** protocol retransmissions during the app run *)
  fw_kills : int;  (** frames the fault schedule killed during the app run *)
  fw_violations : int;  (** invariant violations (must be 0) *)
}

val fault_sweep :
  ?pool:Exec.Pool.t ->
  ?net:Params.net_profile ->
  ?rates:float list ->
  ?app_name:string ->
  ?procs:int ->
  ?seed:int ->
  unit ->
  fault_row list
(** Latency/correctness degradation of all three stacks as frame loss
    rises (default rates 0, 0.1%, 1%, 5%; default app [tsp] at 8
    processors).  The application cell runs in checked mode, so each row
    doubles as a conformance certificate at that loss rate. *)

val pp_fault_row : Format.formatter -> fault_row -> unit

(** {1 Load sweeps: capacity analysis under sustained traffic} *)

val load_rates : float list
(** Default offered-load ramp (ops/s aggregate), crossing every stack's
    saturation knee. *)

val load_impls : Cluster.impl list
(** The three stacks compared throughout: kernel, user, optimized. *)

val load_cell :
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?net:Params.net_profile ->
  ?client_ranks:int list ->
  ?policy:Panda.Seq_policy.t ->
  nodes:int ->
  impl:Cluster.impl ->
  Load.Clients.config ->
  unit ->
  Load.Metrics.t
(** One independent operating point: a fresh [nodes]-machine cluster
    running [config]'s client population against the rank-0 echo server,
    with optional fault schedule (including its [seqcrash]) and
    conformance checkers.  The unit of fan-out for every sweep below,
    and the direct way to run a single cell — e.g. a trace replay. *)

val load_sweep :
  ?pool:Exec.Pool.t ->
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?net:Params.net_profile ->
  ?nodes:int ->
  ?config:Load.Clients.config ->
  ?rates:float list ->
  ?impls:Cluster.impl list ->
  unit ->
  (Cluster.impl * Load.Sweep.curve) list
(** Throughput–latency curve per stack: for each offered rate, a fresh
    [nodes]-machine cluster (default 4) where every non-server rank runs
    [config]'s client population (default {!Load.Clients.default}: null
    RPCs, uniform arrivals) against the rank-0 echo server.  [config]'s
    [rate] is overridden by each ramp point.  With [?checked] each cell
    runs under the conformance checkers and reports violations. *)

type tail_cell = {
  tc_impl : Cluster.impl;
  tc_loss : float;  (** i.i.d. frame loss probability for this cell *)
  tc_rate : float;  (** offered load, ops/s aggregate *)
  tc_metrics : Load.Metrics.t;
  tc_amp99 : float;  (** p99 / loss-free p99 at the same (impl, rate) *)
  tc_amp999 : float;  (** p99.9 amplification, same baseline *)
}

val tail_losses : float list
(** Default loss grid: 0 (baseline), 0.1%, 1%, 3%. *)

val tail_grid :
  ?pool:Exec.Pool.t ->
  ?net:Params.net_profile ->
  ?nodes:int ->
  ?config:Load.Clients.config ->
  ?losses:float list ->
  ?rates:float list ->
  ?impls:Cluster.impl list ->
  unit ->
  tail_cell list
(** Loss x load tail grid: one independent {!load_cell} per
    (stack, loss, rate) coordinate, in that canonical nesting order, each
    under an i.i.d. frame-loss schedule.  A zero-loss column is added if
    [losses] omits it, and every cell's p99/p99.9 is reported as an
    amplification factor over the loss-free cell at the same
    (stack, rate) — the signature of the 200 ms retransmission timeout
    owning the tail.  Deterministic and pool-safe: results are identical
    with and without [?pool]. *)

val pp_tail_cell : Format.formatter -> tail_cell -> unit

val sequencer_senders : int list

val sequencer_saturation :
  ?pool:Exec.Pool.t ->
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?net:Params.net_profile ->
  ?nodes:int ->
  ?senders:int list ->
  ?clients_per_node:int ->
  ?config:Load.Clients.config ->
  ?impls:Cluster.impl list ->
  ?policy:Panda.Seq_policy.t ->
  unit ->
  (Cluster.impl * (int * Load.Metrics.t) list) list
(** Sequencer-bottleneck experiment: closed-loop zero-think group senders
    on ranks [1..s] for each [s] in [senders] (default 1, 2, 4, 7 on an
    8-node cluster, 2 clients each); rank 0 hosts the sequencer and never
    sends.  Achieved ordered messages/s plateaus at the sequencer's
    capacity — the user-space sequencer saturates first, the kernel's
    last.  [policy] (default [Single]) runs every cell under that
    sequencer capacity policy (the kernel stack accepts [Single] and
    [Batching] only). *)

val pp_saturation_row : Format.formatter -> int * Load.Metrics.t -> unit

val sequencer_policies : Panda.Seq_policy.t list
(** The default policy sweep: [Single] plus one representative of each
    capacity mechanism ({!Panda.Seq_policy.sweep}). *)

val sequencer_policy_sweep :
  ?pool:Exec.Pool.t ->
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?net:Params.net_profile ->
  ?nodes:int ->
  ?senders:int list ->
  ?clients_per_node:int ->
  ?config:Load.Clients.config ->
  ?impl:Cluster.impl ->
  ?policies:Panda.Seq_policy.t list ->
  unit ->
  (Panda.Seq_policy.t * (int * Load.Metrics.t) list) list
(** The same closed-loop sender grid as {!sequencer_saturation}, but
    varying the sequencer capacity policy over one stack (default
    [User]).  Every policy runs the identical workload, so the capacity
    curves are before/after comparable point by point: [Single] is the
    paper's ~725 msg/s wall, the others are the protocol-family answers
    to it (batching, rotation, sharding, failover standby).  With
    [?faults] carrying a [seq_crash] instant, each cell also exercises
    mid-run sequencer failover. *)

val pp_policy_row :
  Format.formatter -> Panda.Seq_policy.t * (int * Load.Metrics.t) -> unit
(** One row of the policy × senders capacity table (sharded rows append
    the per-shard completion split). *)

(** {1 One-sided crossover (the fourth stack across network eras)} *)

(** Partition of a measurement window's CPU ledger into the cost
    components the RPC-vs-one-sided argument turns on.  The four CPU
    buckets enumerate every (layer, CPU cause) cell exactly once, so
    [ol_residual_ms] — the recorder's CPU total minus their sum — is a
    zero-residual attribution check. *)
type os_ledger = {
  ol_initiator_ms : float;
      (** one-sided initiator CPU: posting and completion handling *)
  ol_target_ms : float;
      (** one-sided target CPU: NIC interrupt entry + op execution, all
          in interrupt context (never a server thread) *)
  ol_nic_ms : float;  (** NIC layer CPU (both RPC and one-sided) *)
  ol_stack_ms : float;
      (** thread-side protocol + application CPU (FLIP, Amoeba, Panda,
          Orca, App) — 0 on a pure one-sided data path *)
  ol_wire_hdr_ms : float;  (** wire occupancy charged to headers (not CPU) *)
  ol_cpu_ms : float;  (** the recorder's CPU total *)
  ol_residual_ms : float;
}

type xcell = {
  xc_net : string;  (** network-era profile name *)
  xc_stack : Cluster.stack;
  xc_read_pct : int;  (** get share of the DHT mix *)
  xc_latency : Load.Metrics.t;  (** open-loop probe at 100 ops/s *)
  xc_capacity : Load.Metrics.t;  (** closed-loop, zero think time *)
  xc_ledger : os_ledger;  (** the capacity window's ledger partition *)
  xc_wire_util : float;  (** busiest segment over the capacity window *)
  xc_gets : int;
  xc_puts : int;
  xc_dht_violations : int;
      (** torn/spliced blocks seen by clients + bad slots at rest, summed
          over both cells (0 for a correct backend, faults or not) *)
}

val crossover_nets : Params.net_profile list
(** Default era sweep: net10m, net100m, net1g. *)

val onesided_crossover :
  ?pool:Exec.Pool.t ->
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?nets:Params.net_profile list ->
  ?stacks:Cluster.stack list ->
  ?read_pcts:int list ->
  ?nodes:int ->
  ?params:Apps.Dht.params ->
  ?config:Load.Clients.config ->
  unit ->
  xcell list
(** The tentpole experiment: the Zipf get/put DHT over every stack
    (default {!Cluster.all_stacks}) on every network era, one latency
    probe and one capacity cell each (defaults: 4 nodes, 2 clients per
    client node, 90% reads).  Cells are returned in
    (net, read_pct, stack) input order and fan out over [?pool] with
    bit-identical results. *)

type crossover_row = {
  xs_net : string;
  xs_read_pct : int;
  xs_best_rpc : string;  (** highest-capacity RPC stack at this point *)
  xs_rpc_capacity : float;
  xs_os_capacity : float;
  xs_os_wins : bool;
  xs_mechanism : string;
      (** the ledger differential naming which cost component flips (or
          holds) the winner *)
}

val crossover_summary : xcell list -> crossover_row list
(** One row per (era, mix): the best RPC stack vs one-sided, and the
    mechanism.  On the slow wire both stacks queue for the segment and
    the one-sided path pays extra round trips per logical op; on the
    fast wire the RPC server thread's protocol+app CPU becomes the
    bottleneck the one-sided path simply does not have. *)

val pp_xcell : Format.formatter -> xcell -> unit
val pp_crossover_row : Format.formatter -> crossover_row -> unit

(** {1 In-text breakdowns (§4.2, §4.3)} *)

val rpc_breakdown : ?pool:Exec.Pool.t -> unit -> (string * float) list
(** Overhead components of the user-kernel null-RPC gap, in µs, found by
    re-measuring under profiles with single mechanisms disabled.  Labels
    match the paper's accounting. *)

val group_breakdown : ?pool:Exec.Pool.t -> unit -> (string * float) list

(** {1 Measured breakdowns (observability ledger)} *)

val measured_breakdown :
  ?pool:Exec.Pool.t -> unit -> (string * float) list * (string * float) list
(** [(rpc_rows, group_rows)]: the §4.2/§4.3 accounting re-derived from the
    cost-attribution ledger of recorded null-latency runs (only the
    measured rounds are recorded).  RPC rows are user-kernel deltas in µs
    per round; group rows decompose the user path (as {!group_breakdown}
    does), except the total-gap and header rows, which are deltas.  The
    extra RPC rows beyond {!rpc_breakdown} itemise the rest of the gap. *)

val recorded_rpc :
  ?impl:[ `User | `Kernel | `Opt ] -> ?size:int -> unit -> Obs.Recorder.t * Sim.Time.span
(** Runs one Table 1 RPC benchmark (default: user-space, null) with a
    recorder installed for the whole run; returns the recorder and the
    summed CPU busy time of both machines.  With the NIC header-reception
    correction counter, the ledger's CPU total equals the busy time
    exactly.  Intended for trace export and the obs test suite. *)

(** {1 Optimized-stack differential (the tentpole experiment)} *)

type opt_cell = {
  oc_layer : Obs.Layer.t;
  oc_cause : Obs.Cause.t;
  oc_us : float;  (** µs/round this ledger cell shrank (negative = grew) *)
}

type opt_breakdown = {
  ob_base_us : float;  (** baseline user-space null latency, µs/round *)
  ob_opt_us : float;  (** optimized user-space null latency, µs/round *)
  ob_kernel_us : float;  (** kernel-space reference, µs/round *)
  ob_cells : opt_cell list;  (** every nonzero (layer, cause) ledger delta *)
  ob_mechanisms : (string * float) list;  (** µs/round recovered per optimization *)
  ob_residual_us : float;  (** deltas owned by no mechanism — 0 by construction *)
}

val mechanism_of_cause : Obs.Cause.t -> string option
(** Which of the four optimizations owns savings under this cause; [None]
    for causes no mechanism may touch ([Fault_wire], [Idle]). *)

val optimized_breakdown : ?pool:Exec.Pool.t -> unit -> opt_breakdown * opt_breakdown
(** [(rpc, group)]: ledger-cell-exact accounting of where the optimized
    stack's savings come from, from recorded baseline-user and
    optimized-user null runs.  Because the four mechanisms are disjoint in
    the cause dimension on single-fragment null operations, the bucket sums
    add up to the whole ledger delta and [ob_residual_us] is zero. *)

val pp_opt_breakdown : Format.formatter -> opt_breakdown -> unit

(** {1 Ablations} *)

val ablation_dedicated_sequencer :
  ?pool:Exec.Pool.t -> ?procs:int list -> unit -> Runner.outcome list
(** LEQ under user-space protocols with and without a dedicated
    sequencer. *)

val ablation_nonblocking : ?pool:Exec.Pool.t -> unit -> (string * float) list
(** Group latency perceived by the sender: blocking vs the §6 nonblocking
    broadcast, microbenchmark. *)

val ablation_migration : ?pool:Exec.Pool.t -> unit -> (string * float) list
(** Adaptive object placement (the paper's §2 runtime heuristic) vs static
    placement, for a heavily skewed access pattern. *)

val ablation_user_level_network :
  ?pool:Exec.Pool.t -> unit -> (string * float) list
(** The paper's §6 projection: give the user-space stack direct network
    access (no per-packet system calls, no untuned FLIP interface) and
    compare its null latencies against today's stacks. *)

val ablation_continuations :
  ?pool:Exec.Pool.t -> ?procs:int -> unit -> (string * float) list
(** RL with guarded operations: kernel (blocked server thread) vs user
    (continuations), runtimes in seconds. *)

(** {1 Cluster scale (64-512 nodes): sharded service, Zipf routing,
    ledger-driven migration} *)

type ccell = {
  cc_nodes : int;
  cc_stack : Cluster.stack;
  cc_skew : Load.Keys.skew;
  cc_metrics : Load.Metrics.t;
  cc_wire_max : float;  (** busiest segment utilization over the window *)
  cc_wire_mean : float;
  cc_cross_frac : float;
      (** inter-segment share: switch-forwarded frames over all frames
          carried during the window *)
  cc_switch_fps : float;  (** switch forwarding rate, frames/s *)
  cc_server_max : float;  (** busiest server machine over the window *)
  cc_server_mean : float;
  cc_gets : int;
  cc_puts : int;
  cc_dedup_hits : int;  (** at-most-once firing across handoffs *)
  cc_relays : int;
  cc_migrations : int;  (** completed shard handoffs *)
  cc_moves : int;  (** rebalancer decisions taken *)
  cc_service_viol : int;
      (** service conformance violations (client-observed plus the
          at-rest audit) — zero on a healthy run *)
}

val cluster_default_config : Load.Clients.config
(** One client per node, 100 ms warmup, 400 ms window — sized so a
    256-node cell stays tractable on one core. *)

val cluster_cell :
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?net:Params.net_profile ->
  ?lanes:bool ->
  ?shards:int ->
  ?replicas:int ->
  ?service_params:Shard.Service.params ->
  ?rebalance:Shard.Rebalancer.config ->
  nodes:int ->
  stack:Cluster.stack ->
  skew:Load.Keys.skew ->
  Load.Clients.config ->
  unit ->
  ccell
(** One measured operating point on a fresh [nodes]-machine pool: a
    server on the first rank of every segment (shards default 32,
    replicas 1), the last non-server rank reserved for the rebalancing
    controller (whether or not [rebalance] is given, so A/B populations
    match), every other rank a client.  One-sided runs force replicas
    to 1 and never migrate.  With [checked], the conformance checkers
    wrap the stack and the service's at-rest audit joins the checker's
    finalize pass. *)

val cluster_nodes : int list
val cluster_skews : Load.Keys.skew list
val cluster_stacks : Cluster.stack list
val cluster_rates : float list

val cluster_sweep :
  ?pool:Exec.Pool.t ->
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?net:Params.net_profile ->
  ?lanes:bool ->
  ?shards:int ->
  ?replicas:int ->
  ?service_params:Shard.Service.params ->
  ?rebalance:Shard.Rebalancer.config ->
  ?nodes:int list ->
  ?stacks:Cluster.stack list ->
  ?skews:Load.Keys.skew list ->
  ?rates:float list ->
  ?config:Load.Clients.config ->
  unit ->
  ((int * Cluster.stack * Load.Keys.skew) * ccell list * Load.Sweep.knee) list
(** The tentpole sweep: every (nodes, stack, skew) combination ramped
    over open-loop offered [rates] to its saturation knee.  Combinations
    are returned in (nodes, stack, skew) input order, their rate points
    ascending; cells fan out over [?pool] bit-identically. *)

val cluster_ab_config : Load.Clients.config
(** Closed-loop, 100 ms warmup, 1.5 s window — long enough that the
    post-migration placement dominates the measurement. *)

val cluster_ab_rebalance : Shard.Rebalancer.config
(** {!Shard.Rebalancer.default_config} at a 50 ms tick, so moves land
    early in the window. *)

val cluster_migration_ab :
  ?pool:Exec.Pool.t ->
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?net:Params.net_profile ->
  ?lanes:bool ->
  ?shards:int ->
  ?replicas:int ->
  ?service_params:Shard.Service.params ->
  ?rebalance:Shard.Rebalancer.config ->
  ?nodes:int ->
  ?stack:Cluster.stack ->
  ?skew:Load.Keys.skew ->
  ?config:Load.Clients.config ->
  unit ->
  ccell * ccell
(** [(static, rebalanced)]: the identical skewed closed-loop workload
    (default Zipf(1.2) on 64 nodes over the optimized stack) with and
    without the ledger-driven rebalancer, so any achieved-throughput
    difference is attributable to object migration alone. *)

val pp_ccell : Format.formatter -> ccell -> unit
val pp_knee : Format.formatter -> Load.Sweep.knee -> unit
