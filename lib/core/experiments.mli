(** Reproduction drivers for every table and in-text measurement of the
    paper's evaluation (§4 and §5). *)

(** A complete set of cost parameters; ablations run the same experiment
    under modified profiles. *)
type profile = {
  p_machine : Machine.Mach.config;
  p_nic : Net.Nic.config;
  p_segment : Net.Segment.config;
  p_flip : Flip.Flip_iface.config;
  p_arpc : Amoeba.Rpc.config;
  p_agrp : Amoeba.Group.config;
  p_psys : Panda.System_layer.config;
  p_prpc : Panda.Rpc.config;
  p_pgrp : Panda.Group.config;
}

val default_profile : profile

val optimize_profile : profile -> profile
(** Switches the profile's Panda configs to the optimized user-space stack
    (single fragmentation, scatter-gather zero-copy, compact merged
    headers, receive fast path) — the same configs
    {!Cluster.User_optimized} uses.  The [`Opt] impl below is shorthand
    for the user code path under this transform. *)

(** Every driver below optionally takes [?pool].  Each table cell,
    latency point, breakdown arm and ablation arm is an independent
    simulation; with a pool they run concurrently on its domains and are
    reassembled in canonical order, so the results — and thus every
    printed table — are identical to the sequential ([?pool] absent)
    path. *)

(** {1 Table 1: latencies} *)

type lat_row = {
  lr_size : int;  (** message payload bytes *)
  lr_unicast : float;  (** ms, user-space system-layer unicast *)
  lr_multicast : float;  (** ms, user-space system-layer multicast *)
  lr_rpc_user : float;
  lr_rpc_kernel : float;
  lr_grp_user : float;
  lr_grp_kernel : float;
  lr_rpc_opt : float;  (** optimized user-space stack *)
  lr_grp_opt : float;  (** optimized user-space stack *)
}

val table1 :
  ?pool:Exec.Pool.t ->
  ?faults:Faults.Spec.t ->
  ?profile:profile ->
  ?sizes:int list ->
  unit ->
  lat_row list
(** Sizes 0..4 KB (override with [?sizes]), as the paper's Table 1.
    Every driver taking [?faults] installs that schedule on each cell's
    freshly built network (per-cell injector streams, so [?pool] fan-out
    stays deterministic). *)

val unicast_latency : ?faults:Faults.Spec.t -> ?profile:profile -> size:int -> unit -> float

val multicast_latency :
  ?faults:Faults.Spec.t -> ?profile:profile -> size:int -> unit -> float

val rpc_latency :
  ?faults:Faults.Spec.t ->
  ?profile:profile ->
  impl:[ `User | `Kernel | `Opt ] ->
  size:int ->
  unit ->
  float

val group_latency :
  ?faults:Faults.Spec.t ->
  ?profile:profile ->
  impl:[ `User | `Kernel | `Opt ] ->
  size:int ->
  unit ->
  float

(** {1 Table 2: throughputs} *)

type tput_row = {
  tr_proto : string;
  tr_user : float;  (** KB/s *)
  tr_kernel : float;  (** KB/s *)
  tr_opt : float;  (** KB/s, optimized user-space stack *)
}

val table2 :
  ?pool:Exec.Pool.t -> ?faults:Faults.Spec.t -> ?profile:profile -> unit -> tput_row list

(** {1 Table 3: the six applications} *)

val table3 :
  ?pool:Exec.Pool.t ->
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?procs:int list ->
  ?app_names:string list ->
  unit ->
  Runner.outcome list
(** Runs every application at each processor count under kernel-space,
    user-space and optimized user-space protocols, plus the
    dedicated-sequencer variant for LEQ (the paper's extra row).
    [?faults]/[?checked] run every cell under that fault schedule and/or
    with the conformance checkers on. *)

(** {1 Fault sweep: degradation vs. loss rate} *)

type fault_row = {
  fw_impl : Cluster.impl;
  fw_rate : float;  (** i.i.d. frame-loss probability *)
  fw_rpc_ms : float;  (** null RPC latency under that loss *)
  fw_grp_ms : float;  (** null group latency under that loss *)
  fw_app : string;
  fw_app_s : float;  (** application runtime under that loss, checked mode *)
  fw_valid : bool;  (** checksum still matches the sequential reference *)
  fw_retrans : int;  (** protocol retransmissions during the app run *)
  fw_kills : int;  (** frames the fault schedule killed during the app run *)
  fw_violations : int;  (** invariant violations (must be 0) *)
}

val fault_sweep :
  ?pool:Exec.Pool.t ->
  ?rates:float list ->
  ?app_name:string ->
  ?procs:int ->
  ?seed:int ->
  unit ->
  fault_row list
(** Latency/correctness degradation of all three stacks as frame loss
    rises (default rates 0, 0.1%, 1%, 5%; default app [tsp] at 8
    processors).  The application cell runs in checked mode, so each row
    doubles as a conformance certificate at that loss rate. *)

val pp_fault_row : Format.formatter -> fault_row -> unit

(** {1 Load sweeps: capacity analysis under sustained traffic} *)

val load_rates : float list
(** Default offered-load ramp (ops/s aggregate), crossing every stack's
    saturation knee. *)

val load_impls : Cluster.impl list
(** The three stacks compared throughout: kernel, user, optimized. *)

val load_sweep :
  ?pool:Exec.Pool.t ->
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?nodes:int ->
  ?config:Load.Clients.config ->
  ?rates:float list ->
  ?impls:Cluster.impl list ->
  unit ->
  (Cluster.impl * Load.Sweep.curve) list
(** Throughput–latency curve per stack: for each offered rate, a fresh
    [nodes]-machine cluster (default 4) where every non-server rank runs
    [config]'s client population (default {!Load.Clients.default}: null
    RPCs, uniform arrivals) against the rank-0 echo server.  [config]'s
    [rate] is overridden by each ramp point.  With [?checked] each cell
    runs under the conformance checkers and reports violations. *)

val sequencer_senders : int list

val sequencer_saturation :
  ?pool:Exec.Pool.t ->
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?nodes:int ->
  ?senders:int list ->
  ?clients_per_node:int ->
  ?config:Load.Clients.config ->
  ?impls:Cluster.impl list ->
  unit ->
  (Cluster.impl * (int * Load.Metrics.t) list) list
(** Sequencer-bottleneck experiment: closed-loop zero-think group senders
    on ranks [1..s] for each [s] in [senders] (default 1, 2, 4, 7 on an
    8-node cluster, 2 clients each); rank 0 hosts the sequencer and never
    sends.  Achieved ordered messages/s plateaus at the sequencer's
    capacity — the user-space sequencer saturates first, the kernel's
    last. *)

val pp_saturation_row : Format.formatter -> int * Load.Metrics.t -> unit

(** {1 In-text breakdowns (§4.2, §4.3)} *)

val rpc_breakdown : ?pool:Exec.Pool.t -> unit -> (string * float) list
(** Overhead components of the user-kernel null-RPC gap, in µs, found by
    re-measuring under profiles with single mechanisms disabled.  Labels
    match the paper's accounting. *)

val group_breakdown : ?pool:Exec.Pool.t -> unit -> (string * float) list

(** {1 Measured breakdowns (observability ledger)} *)

val measured_breakdown :
  ?pool:Exec.Pool.t -> unit -> (string * float) list * (string * float) list
(** [(rpc_rows, group_rows)]: the §4.2/§4.3 accounting re-derived from the
    cost-attribution ledger of recorded null-latency runs (only the
    measured rounds are recorded).  RPC rows are user-kernel deltas in µs
    per round; group rows decompose the user path (as {!group_breakdown}
    does), except the total-gap and header rows, which are deltas.  The
    extra RPC rows beyond {!rpc_breakdown} itemise the rest of the gap. *)

val recorded_rpc :
  ?impl:[ `User | `Kernel | `Opt ] -> ?size:int -> unit -> Obs.Recorder.t * Sim.Time.span
(** Runs one Table 1 RPC benchmark (default: user-space, null) with a
    recorder installed for the whole run; returns the recorder and the
    summed CPU busy time of both machines.  With the NIC header-reception
    correction counter, the ledger's CPU total equals the busy time
    exactly.  Intended for trace export and the obs test suite. *)

(** {1 Optimized-stack differential (the tentpole experiment)} *)

type opt_cell = {
  oc_layer : Obs.Layer.t;
  oc_cause : Obs.Cause.t;
  oc_us : float;  (** µs/round this ledger cell shrank (negative = grew) *)
}

type opt_breakdown = {
  ob_base_us : float;  (** baseline user-space null latency, µs/round *)
  ob_opt_us : float;  (** optimized user-space null latency, µs/round *)
  ob_kernel_us : float;  (** kernel-space reference, µs/round *)
  ob_cells : opt_cell list;  (** every nonzero (layer, cause) ledger delta *)
  ob_mechanisms : (string * float) list;  (** µs/round recovered per optimization *)
  ob_residual_us : float;  (** deltas owned by no mechanism — 0 by construction *)
}

val mechanism_of_cause : Obs.Cause.t -> string option
(** Which of the four optimizations owns savings under this cause; [None]
    for causes no mechanism may touch ([Fault_wire], [Idle]). *)

val optimized_breakdown : ?pool:Exec.Pool.t -> unit -> opt_breakdown * opt_breakdown
(** [(rpc, group)]: ledger-cell-exact accounting of where the optimized
    stack's savings come from, from recorded baseline-user and
    optimized-user null runs.  Because the four mechanisms are disjoint in
    the cause dimension on single-fragment null operations, the bucket sums
    add up to the whole ledger delta and [ob_residual_us] is zero. *)

val pp_opt_breakdown : Format.formatter -> opt_breakdown -> unit

(** {1 Ablations} *)

val ablation_dedicated_sequencer :
  ?pool:Exec.Pool.t -> ?procs:int list -> unit -> Runner.outcome list
(** LEQ under user-space protocols with and without a dedicated
    sequencer. *)

val ablation_nonblocking : ?pool:Exec.Pool.t -> unit -> (string * float) list
(** Group latency perceived by the sender: blocking vs the §6 nonblocking
    broadcast, microbenchmark. *)

val ablation_migration : ?pool:Exec.Pool.t -> unit -> (string * float) list
(** Adaptive object placement (the paper's §2 runtime heuristic) vs static
    placement, for a heavily skewed access pattern. *)

val ablation_user_level_network :
  ?pool:Exec.Pool.t -> unit -> (string * float) list
(** The paper's §6 projection: give the user-space stack direct network
    access (no per-packet system calls, no untuned FLIP interface) and
    compare its null latencies against today's stacks. *)

val ablation_continuations :
  ?pool:Exec.Pool.t -> ?procs:int -> unit -> (string * float) list
(** RL with guarded operations: kernel (blocked server thread) vs user
    (continuations), runtimes in seconds. *)
