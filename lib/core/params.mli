(** The single source of calibrated cost parameters.

    Every constant that stands in for measured 1995 hardware/software cost
    lives here, so the calibration against the paper's Tables 1 and 2 is
    one place to read and adjust.  The microsecond figures quoted in the
    paper's §4 analysis appear directly: 6 µs register-window traps,
    ~70 µs context switches (2 = 140 µs on the RPC reply path), 110 µs
    preempting switch, 60 µs warm switch, 20 µs duplicated fragmentation,
    56/64-byte RPC and 52/40-byte group headers. *)

val machine : Machine.Mach.config
val nic : Net.Nic.config
val segment : Net.Segment.config
val switch_latency : Sim.Time.span
val flip : Flip.Flip_iface.config
val amoeba_rpc : Amoeba.Rpc.config
val amoeba_group : Amoeba.Group.config
val panda_system : Panda.System_layer.config
val panda_rpc : Panda.Rpc.config
val panda_group : Panda.Group.config

val panda_system_opt : Panda.System_layer.config
(** {!panda_system} with the three optimization mechanisms enabled:
    single fragmentation, scatter-gather zero-copy, receive fast path. *)

val panda_rpc_opt : Panda.Rpc.config
(** {!panda_rpc} with the merged compact Panda+RPC header. *)

val panda_group_opt : Panda.Group.config
(** {!panda_group} with the merged compact Panda+group header. *)

val rts_overhead : Sim.Time.span

val pool_size_max : int
(** Largest processor count used by the paper's experiments (32). *)

val onesided : Onesided.Rnic.config
(** The one-sided backend's endpoint costs (user-level post/completion,
    target interrupt-context execution).  Era-independent: only the
    {!net_profile} changes with the wire. *)

(** A network era: the wire, switch, and NIC constants that change between
    1995 and the fast-network present, while machine and protocol-software
    constants stay fixed at their calibrated 1995 values. *)
type net_profile = {
  np_name : string;  (** the [--profile] spelling, e.g. ["net1g"] *)
  np_label : string;  (** human-readable description *)
  np_segment : Net.Segment.config;
  np_nic : Net.Nic.config;
  np_switch : Sim.Time.span;
}

val net10m : net_profile
(** The paper's own 10 Mbit/s Ethernet — identical to {!segment}, {!nic}
    and {!switch_latency}, so the default path is bit-for-bit the
    calibrated baseline. *)

val net100m : net_profile
val net1g : net_profile

val net10g : net_profile
(** 10 Gbit-class; integer nanoseconds floor the byte time at 1 ns
    (8 Gbit/s). *)

val net_profiles : net_profile list
(** All profiles, in era order. *)

val net_profile_of_string : string -> net_profile option
(** Inverse of [np_name]: [net_profile_of_string p.np_name = Some p]. *)

val net_profile_to_string : net_profile -> string
(** Profile-file text: a [# amoeba-repro net profile v1] header then one
    [key value] pair per line (integers in ns/bytes), e.g.
    [byte_time_ns 800].  Round-trips through {!net_profile_parse}
    bit-exactly. *)

val net_profile_parse : string -> (net_profile, string) result
(** Inverse of {!net_profile_to_string}; rejects missing/duplicate keys,
    malformed or negative integers, and a zero byte time. *)

val net_profile_load : string -> (net_profile, string) result
val net_profile_save : string -> net_profile -> unit
(** File forms of parse/print, for [--profile FILE] and the calibration
    harness's [--out]. *)
