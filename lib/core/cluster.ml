type t = {
  eng : Sim.Engine.t;
  machines : Machine.Mach.t array;
  topo : Net.Topology.t;
  flips : Flip.Flip_iface.t array;
  extra : Flip.Flip_iface.t option;
  net : Params.net_profile;
  mutable rnic_cache : Onesided.Rnic.t array option;
}

type impl = Kernel | User | User_dedicated | User_optimized

let impl_label = function
  | Kernel -> "kernel"
  | User -> "user"
  | User_dedicated -> "user-dedicated"
  | User_optimized -> "optimized"

let all_impls = [ Kernel; User; User_dedicated; User_optimized ]

type stack = Rpc_stack of impl | One_sided

let stack_label = function
  | Rpc_stack impl -> impl_label impl
  | One_sided -> "onesided"

let all_stacks =
  [ Rpc_stack Kernel; Rpc_stack User; Rpc_stack User_optimized; One_sided ]

let stack_of_string = function
  | "kernel" -> Some (Rpc_stack Kernel)
  | "user" -> Some (Rpc_stack User)
  | "user-dedicated" -> Some (Rpc_stack User_dedicated)
  | "optimized" -> Some (Rpc_stack User_optimized)
  | "onesided" -> Some One_sided
  | _ -> None

(* When set, every cluster shards its engine into conservative event lanes
   (multi-segment topologies only; see [Sim.Lanes]).  A process-wide
   default so the `--lanes` CLI flag reaches every experiment driver
   without threading a parameter through each one; set it before any
   cluster is built. *)
let lanes_default = ref false

let set_default_lanes b = lanes_default := b
let default_lanes () = !lanes_default

let create ?(extra_machine = false) ?(net = Params.net10m) ?lanes ~n () =
  let lanes = match lanes with Some b -> b | None -> !lanes_default in
  let eng = Sim.Engine.create () in
  let total = n + if extra_machine then 1 else 0 in
  let machines =
    Array.init total (fun i ->
        Machine.Mach.create eng ~id:i ~name:(Printf.sprintf "m%d" i) Params.machine)
  in
  let topo =
    Net.Topology.build eng ~machines ~per_segment:8
      ~segment_config:net.Params.np_segment ~nic_config:net.Params.np_nic
      ~switch_latency:net.Params.np_switch ~lanes ()
  in
  let all_flips =
    Array.mapi
      (fun i mach -> Flip.Flip_iface.create mach ~config:Params.flip (Net.Topology.nic topo i))
      machines
  in
  {
    eng;
    machines = Array.sub machines 0 n;
    topo;
    flips = Array.sub all_flips 0 n;
    extra = (if extra_machine then Some all_flips.(n) else None);
    net;
    rnic_cache = None;
  }

let net t = t.net
let machine_lane t i = Net.Topology.machine_lane t.topo i

(* Ranks are placed on segments of eight in order, so segment s owns ranks
   [8s, 8s+8). *)
let per_segment = 8
let n_segments t = (Array.length t.machines + per_segment - 1) / per_segment

let server_ranks ?(per_segment_servers = 1) t =
  let n = Array.length t.machines in
  if per_segment_servers < 1 then
    invalid_arg "Cluster.server_ranks: need at least one server per segment";
  List.concat
    (List.init (n_segments t) (fun s ->
         List.filter_map
           (fun j ->
             let r = (s * per_segment) + j in
             if r < n then Some r else None)
           (List.init per_segment_servers Fun.id)))

(* Rnics are created lazily: [Address.fresh_point] draws from the engine's
   shared id sequence, so creating them eagerly would shift the addresses
   every existing (pinned) experiment sees. *)
let rnics t =
  match t.rnic_cache with
  | Some r -> r
  | None ->
    let r =
      Array.map (fun flip -> Onesided.Rnic.create ~config:Params.onesided flip) t.flips
    in
    (* Route exchange happens at connection setup in real one-sided
       fabrics (QP exchange); seeding the FLIP route caches models that
       and keeps LOCATE broadcasts off the measured data path. *)
    Array.iteri
      (fun i ri ->
        Array.iteri
          (fun j fj ->
            if i <> j then Flip.Flip_iface.add_route fj (Onesided.Rnic.addr ri) i)
          t.flips)
      r;
    t.rnic_cache <- Some r;
    r

let backends ?checker ?(policy = Panda.Seq_policy.Single) t impl =
  let backends =
    match impl with
    | Kernel ->
      (* The kernel sequencer runs in interrupt context; of the capacity
         policies only ordering-batch coalescing translates (rotation and
         sharding would be kernel-reset-protocol surgery, §6). *)
      let group_config =
        match policy with
        | Panda.Seq_policy.Single -> Params.amoeba_group
        | Panda.Seq_policy.Batching b ->
          { Params.amoeba_group with Amoeba.Group.seq_batch_max = b }
        | p ->
          invalid_arg
            (Printf.sprintf "Cluster.backends: kernel stack cannot run policy %s"
               (Panda.Seq_policy.to_string p))
      in
      Orca.Backend.kernel_stack ~rpc_config:Params.amoeba_rpc ~group_config t.flips ()
    | User ->
      Orca.Backend.user_stack ~sys_config:Params.panda_system
        ~rpc_config:Params.panda_rpc ~group_config:Params.panda_group ~policy
        t.flips ()
    | User_dedicated ->
      let extra =
        match t.extra with
        | Some flip -> flip
        | None -> invalid_arg "Cluster.domain: no extra machine for the dedicated sequencer"
      in
      Orca.Backend.user_stack ~sys_config:Params.panda_system
        ~rpc_config:Params.panda_rpc ~group_config:Params.panda_group ~policy
        t.flips ~dedicated_sequencer:extra ()
    | User_optimized ->
      Orca.Backend.user_stack ~label:"optimized" ~sys_config:Params.panda_system_opt
        ~rpc_config:Params.panda_rpc_opt ~group_config:Params.panda_group_opt
        ~policy t.flips ()
  in
  match checker with
  | Some c -> Faults.Invariants.wrap_backends c backends
  | None -> backends

let domain ?checker ?policy t impl =
  Orca.Rts.create_domain ~rts_overhead:Params.rts_overhead
    (backends ?checker ?policy t impl)

let sequencer_machine t impl =
  match impl with
  | User_dedicated ->
    (match t.extra with
     | Some flip -> Flip.Flip_iface.machine flip
     | None -> invalid_arg "Cluster.sequencer_machine: no extra machine")
  | Kernel | User | User_optimized -> t.machines.(0)
