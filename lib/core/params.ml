let machine =
  {
    Machine.Mach.ctx_warm = Sim.Time.us 60;
    ctx_cold_idle = Sim.Time.us 70;
    ctx_cold_preempt = Sim.Time.us 110;
    interrupt_entry = Sim.Time.us 15;
    syscall_base = Sim.Time.us 25;
    trap_cost = Sim.Time.us 6;
    lock_cost = Sim.Time.us 1;
    reg_windows = 6;
  }

let nic =
  {
    Net.Nic.rx_base = Sim.Time.us 110;
    rx_byte = Sim.Time.ns 60;
    rx_mcast_extra = Sim.Time.us 90;
  }

(* 10 Mbit/s Ethernet: 0.8 us per byte. *)
let segment =
  { Net.Segment.byte_time = Sim.Time.ns 800; framing_bytes = 38; min_payload = 46 }

let switch_latency = Sim.Time.us 50

let flip =
  {
    Flip.Flip_iface.header_bytes = 40;
    mtu = 1460;
    out_packet_cost = Sim.Time.us 60;
    loopback_cost = Sim.Time.us 40;
    locate_timeout = Sim.Time.ms 100;
    locate_retries = 5;
  }

let amoeba_rpc =
  {
    Amoeba.Rpc.header_bytes = 56;
    copy_byte = Sim.Time.ns 50;
    deliver_fixed = Sim.Time.us 350;
    call_depth = 2;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
  }

let amoeba_group =
  {
    Amoeba.Group.header_bytes = 52;
    accept_bytes = 32;
    copy_byte = Sim.Time.ns 50;
    deliver_fixed = Sim.Time.us 250;
    seq_process = Sim.Time.us 150;
    call_depth = 2;
    bb_threshold = 1460;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
    history_high = 512;
  }

let panda_system =
  {
    Panda.System_layer.pan_header = 16;
    frag_bytes = 1400;
    frag_cost = Sim.Time.us 20;
    copy_byte = Sim.Time.ns 50;
    recv_fixed = Sim.Time.us 50;
    upcall_depth = 3;
    send_depth = 3;
    user_flip_extra = Sim.Time.us 40;
    single_frag = false;
    sg_copy = false;
    rx_fastpath = false;
  }

let panda_rpc =
  {
    Panda.Rpc.header_bytes = 64;
    call_depth = 2;
    proc_cost = Sim.Time.us 80;
    ack_delay = Sim.Time.ms 20;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
  }

let panda_group =
  {
    Panda.Group.header_bytes = 40;
    accept_bytes = 24;
    order_fixed = Sim.Time.us 190;
    deliver_cost = Sim.Time.us 90;
    copy_byte = Sim.Time.ns 50;
    bb_threshold = 1300;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
    history_high = 512;
  }

(* The optimized user-space stack (the paper's §6 "what could be fixed"
   program): same calibrated machine, different protocol engineering.
   Every difference is a mechanism the cost model can see — no cell of
   Table 1 is adjusted directly. *)

let panda_system_opt =
  {
    panda_system with
    Panda.System_layer.single_frag = true;
    sg_copy = true;
    rx_fastpath = true;
  }

let panda_rpc_opt = { panda_rpc with Panda.Rpc.header_bytes = 60 }

let panda_group_opt =
  { panda_group with Panda.Group.header_bytes = 36; accept_bytes = 20 }

let rts_overhead = Sim.Time.us 10
let pool_size_max = 32
