let machine =
  {
    Machine.Mach.ctx_warm = Sim.Time.us 60;
    ctx_cold_idle = Sim.Time.us 70;
    ctx_cold_preempt = Sim.Time.us 110;
    interrupt_entry = Sim.Time.us 15;
    syscall_base = Sim.Time.us 25;
    trap_cost = Sim.Time.us 6;
    lock_cost = Sim.Time.us 1;
    reg_windows = 6;
  }

let nic =
  {
    Net.Nic.rx_base = Sim.Time.us 110;
    rx_byte = Sim.Time.ns 60;
    rx_mcast_extra = Sim.Time.us 90;
  }

(* 10 Mbit/s Ethernet: 0.8 us per byte. *)
let segment =
  { Net.Segment.byte_time = Sim.Time.ns 800; framing_bytes = 38; min_payload = 46 }

let switch_latency = Sim.Time.us 50

let flip =
  {
    Flip.Flip_iface.header_bytes = 40;
    mtu = 1460;
    out_packet_cost = Sim.Time.us 60;
    loopback_cost = Sim.Time.us 40;
    locate_timeout = Sim.Time.ms 100;
    locate_retries = 5;
  }

let amoeba_rpc =
  {
    Amoeba.Rpc.header_bytes = 56;
    copy_byte = Sim.Time.ns 50;
    deliver_fixed = Sim.Time.us 350;
    call_depth = 2;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
  }

let amoeba_group =
  {
    Amoeba.Group.header_bytes = 52;
    accept_bytes = 32;
    copy_byte = Sim.Time.ns 50;
    deliver_fixed = Sim.Time.us 250;
    seq_process = Sim.Time.us 150;
    seq_batch_max = 1;
    seq_order_item = Sim.Time.us 40;
    call_depth = 2;
    bb_threshold = 1460;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
    history_high = 512;
  }

let panda_system =
  {
    Panda.System_layer.pan_header = 16;
    frag_bytes = 1400;
    frag_cost = Sim.Time.us 20;
    copy_byte = Sim.Time.ns 50;
    recv_fixed = Sim.Time.us 50;
    upcall_depth = 3;
    send_depth = 3;
    user_flip_extra = Sim.Time.us 40;
    single_frag = false;
    sg_copy = false;
    rx_fastpath = false;
  }

let panda_rpc =
  {
    Panda.Rpc.header_bytes = 64;
    call_depth = 2;
    proc_cost = Sim.Time.us 80;
    ack_delay = Sim.Time.ms 20;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
  }

let panda_group =
  {
    Panda.Group.header_bytes = 40;
    accept_bytes = 24;
    order_fixed = Sim.Time.us 190;
    deliver_cost = Sim.Time.us 90;
    copy_byte = Sim.Time.ns 50;
    bb_threshold = 1300;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
    history_high = 512;
  }

(* The optimized user-space stack (the paper's §6 "what could be fixed"
   program): same calibrated machine, different protocol engineering.
   Every difference is a mechanism the cost model can see — no cell of
   Table 1 is adjusted directly. *)

let panda_system_opt =
  {
    panda_system with
    Panda.System_layer.single_frag = true;
    sg_copy = true;
    rx_fastpath = true;
  }

let panda_rpc_opt = { panda_rpc with Panda.Rpc.header_bytes = 60 }

let panda_group_opt =
  { panda_group with Panda.Group.header_bytes = 36; accept_bytes = 20 }

let rts_overhead = Sim.Time.us 10
let pool_size_max = 32

(* The one-sided (RDMA-style) backend: user-level posting, NIC-completed
   target ops.  The figures are early-RDMA-class (VIA/InfiniBand host
   overheads of a few microseconds), deliberately independent of the wire
   era — the profile decides the wire, these decide the endpoints. *)
let onesided =
  {
    Onesided.Rnic.os_header = 28;
    post_cost = Sim.Time.us 8;
    completion_cost = Sim.Time.us 6;
    op_fixed = Sim.Time.us 5;
    op_word = Sim.Time.ns 10;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
    cas_cache = 4096;
  }

(* Network-era profiles: the wire, the switch, and the NIC change with the
   era; the 1995 machine and protocol-software constants deliberately do
   not.  That isolation is the point — as the network gets faster, the
   fixed per-message protocol CPU is exposed as the bottleneck, which is
   the historical argument for one-sided operations. *)

type net_profile = {
  np_name : string;  (** the [--profile] spelling *)
  np_label : string;
  np_segment : Net.Segment.config;
  np_nic : Net.Nic.config;
  np_switch : Sim.Time.span;
}

(* 10 Mbit/s Ethernet, the paper's own wire: byte_time 800 ns. *)
let net10m =
  {
    np_name = "net10m";
    np_label = "10 Mbit/s Ethernet (1995 baseline)";
    np_segment = segment;
    np_nic = nic;
    np_switch = switch_latency;
  }

(* 100 Mbit/s switched Ethernet: byte_time 80 ns, a leaner NIC. *)
let net100m =
  {
    np_name = "net100m";
    np_label = "100 Mbit/s switched Ethernet";
    np_segment =
      { Net.Segment.byte_time = Sim.Time.ns 80; framing_bytes = 38; min_payload = 46 };
    np_nic =
      {
        Net.Nic.rx_base = Sim.Time.us 60;
        rx_byte = Sim.Time.ns 30;
        rx_mcast_extra = Sim.Time.us 45;
      };
    np_switch = Sim.Time.us 20;
  }

(* Gigabit-class fabric: byte_time 8 ns, low-latency cut-through switch. *)
let net1g =
  {
    np_name = "net1g";
    np_label = "1 Gbit/s low-latency fabric";
    np_segment =
      { Net.Segment.byte_time = Sim.Time.ns 8; framing_bytes = 38; min_payload = 46 };
    np_nic =
      {
        Net.Nic.rx_base = Sim.Time.us 20;
        rx_byte = Sim.Time.ns 5;
        rx_mcast_extra = Sim.Time.us 15;
      };
    np_switch = Sim.Time.us 5;
  }

(* 10G-class fabric.  Integer nanoseconds cannot express 0.8 ns/byte, so
   byte_time 1 ns (8 Gbit/s) stands in for the 10 Gbit era; the
   endpoint-bound conclusions are unaffected. *)
let net10g =
  {
    np_name = "net10g";
    np_label = "10 Gbit-class fabric (8 Gbit/s: integer-ns floor)";
    np_segment =
      { Net.Segment.byte_time = Sim.Time.ns 1; framing_bytes = 38; min_payload = 46 };
    np_nic =
      {
        Net.Nic.rx_base = Sim.Time.us 5;
        rx_byte = Sim.Time.ns 1;
        rx_mcast_extra = Sim.Time.us 3;
      };
    np_switch = Sim.Time.us 1;
  }

let net_profiles = [ net10m; net100m; net1g; net10g ]

let net_profile_of_string s =
  List.find_opt (fun p -> String.equal p.np_name s) net_profiles

(* Profile files: one "key value" pair per line, integers in
   nanoseconds/bytes, so a fitted profile survives a round-trip through
   disk bit-exactly.  The format is deliberately dumb — calibration
   (lib/scenario) writes these, the [--profile] flag reads them. *)

let net_profile_to_string p =
  let b = Buffer.create 256 in
  Buffer.add_string b "# amoeba-repro net profile v1\n";
  Printf.bprintf b "name %s\n" p.np_name;
  Printf.bprintf b "label %s\n" p.np_label;
  Printf.bprintf b "byte_time_ns %d\n" p.np_segment.Net.Segment.byte_time;
  Printf.bprintf b "framing_bytes %d\n" p.np_segment.Net.Segment.framing_bytes;
  Printf.bprintf b "min_payload %d\n" p.np_segment.Net.Segment.min_payload;
  Printf.bprintf b "nic_rx_base_ns %d\n" p.np_nic.Net.Nic.rx_base;
  Printf.bprintf b "nic_rx_byte_ns %d\n" p.np_nic.Net.Nic.rx_byte;
  Printf.bprintf b "nic_rx_mcast_extra_ns %d\n" p.np_nic.Net.Nic.rx_mcast_extra;
  Printf.bprintf b "switch_ns %d\n" p.np_switch;
  Buffer.contents b

let net_profile_parse s =
  let tbl = Hashtbl.create 16 in
  let err = ref None in
  String.split_on_char '\n' s
  |> List.iteri (fun i line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' && !err = None then
           match String.index_opt line ' ' with
           | None -> err := Some (Printf.sprintf "line %d: no value" (i + 1))
           | Some sp ->
             let k = String.sub line 0 sp in
             let v = String.trim (String.sub line sp (String.length line - sp)) in
             if Hashtbl.mem tbl k then
               err := Some (Printf.sprintf "line %d: duplicate key %s" (i + 1) k)
             else Hashtbl.add tbl k v);
  match !err with
  | Some e -> Error e
  | None ->
    let str k =
      match Hashtbl.find_opt tbl k with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing key %s" k)
    in
    let int k =
      match str k with
      | Error _ as e -> e
      | Ok v -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok n
        | _ -> Error (Printf.sprintf "key %s: bad integer %S" k v))
    in
    let ( let* ) = Result.bind in
    let* np_name = str "name" in
    let* np_label = str "label" in
    let* byte_time = int "byte_time_ns" in
    let* framing_bytes = int "framing_bytes" in
    let* min_payload = int "min_payload" in
    let* rx_base = int "nic_rx_base_ns" in
    let* rx_byte = int "nic_rx_byte_ns" in
    let* rx_mcast_extra = int "nic_rx_mcast_extra_ns" in
    let* np_switch = int "switch_ns" in
    if byte_time < 1 then Error "byte_time_ns must be positive"
    else
      Ok
        {
          np_name;
          np_label;
          np_segment = { Net.Segment.byte_time; framing_bytes; min_payload };
          np_nic = { Net.Nic.rx_base; rx_byte; rx_mcast_extra };
          np_switch;
        }

let net_profile_load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> net_profile_parse s
  | exception Sys_error e -> Error e

let net_profile_save path p =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (net_profile_to_string p))
