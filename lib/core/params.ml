let machine =
  {
    Machine.Mach.ctx_warm = Sim.Time.us 60;
    ctx_cold_idle = Sim.Time.us 70;
    ctx_cold_preempt = Sim.Time.us 110;
    interrupt_entry = Sim.Time.us 15;
    syscall_base = Sim.Time.us 25;
    trap_cost = Sim.Time.us 6;
    lock_cost = Sim.Time.us 1;
    reg_windows = 6;
  }

let nic =
  {
    Net.Nic.rx_base = Sim.Time.us 110;
    rx_byte = Sim.Time.ns 60;
    rx_mcast_extra = Sim.Time.us 90;
  }

(* 10 Mbit/s Ethernet: 0.8 us per byte. *)
let segment =
  { Net.Segment.byte_time = Sim.Time.ns 800; framing_bytes = 38; min_payload = 46 }

let switch_latency = Sim.Time.us 50

let flip =
  {
    Flip.Flip_iface.header_bytes = 40;
    mtu = 1460;
    out_packet_cost = Sim.Time.us 60;
    loopback_cost = Sim.Time.us 40;
    locate_timeout = Sim.Time.ms 100;
    locate_retries = 5;
  }

let amoeba_rpc =
  {
    Amoeba.Rpc.header_bytes = 56;
    copy_byte = Sim.Time.ns 50;
    deliver_fixed = Sim.Time.us 350;
    call_depth = 2;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
  }

let amoeba_group =
  {
    Amoeba.Group.header_bytes = 52;
    accept_bytes = 32;
    copy_byte = Sim.Time.ns 50;
    deliver_fixed = Sim.Time.us 250;
    seq_process = Sim.Time.us 150;
    seq_batch_max = 1;
    seq_order_item = Sim.Time.us 40;
    call_depth = 2;
    bb_threshold = 1460;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
    history_high = 512;
  }

let panda_system =
  {
    Panda.System_layer.pan_header = 16;
    frag_bytes = 1400;
    frag_cost = Sim.Time.us 20;
    copy_byte = Sim.Time.ns 50;
    recv_fixed = Sim.Time.us 50;
    upcall_depth = 3;
    send_depth = 3;
    user_flip_extra = Sim.Time.us 40;
    single_frag = false;
    sg_copy = false;
    rx_fastpath = false;
  }

let panda_rpc =
  {
    Panda.Rpc.header_bytes = 64;
    call_depth = 2;
    proc_cost = Sim.Time.us 80;
    ack_delay = Sim.Time.ms 20;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
  }

let panda_group =
  {
    Panda.Group.header_bytes = 40;
    accept_bytes = 24;
    order_fixed = Sim.Time.us 190;
    deliver_cost = Sim.Time.us 90;
    copy_byte = Sim.Time.ns 50;
    bb_threshold = 1300;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
    history_high = 512;
  }

(* The optimized user-space stack (the paper's §6 "what could be fixed"
   program): same calibrated machine, different protocol engineering.
   Every difference is a mechanism the cost model can see — no cell of
   Table 1 is adjusted directly. *)

let panda_system_opt =
  {
    panda_system with
    Panda.System_layer.single_frag = true;
    sg_copy = true;
    rx_fastpath = true;
  }

let panda_rpc_opt = { panda_rpc with Panda.Rpc.header_bytes = 60 }

let panda_group_opt =
  { panda_group with Panda.Group.header_bytes = 36; accept_bytes = 20 }

let rts_overhead = Sim.Time.us 10
let pool_size_max = 32

(* The one-sided (RDMA-style) backend: user-level posting, NIC-completed
   target ops.  The figures are early-RDMA-class (VIA/InfiniBand host
   overheads of a few microseconds), deliberately independent of the wire
   era — the profile decides the wire, these decide the endpoints. *)
let onesided =
  {
    Onesided.Rnic.os_header = 28;
    post_cost = Sim.Time.us 8;
    completion_cost = Sim.Time.us 6;
    op_fixed = Sim.Time.us 5;
    op_word = Sim.Time.ns 10;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
    cas_cache = 4096;
  }

(* Network-era profiles: the wire, the switch, and the NIC change with the
   era; the 1995 machine and protocol-software constants deliberately do
   not.  That isolation is the point — as the network gets faster, the
   fixed per-message protocol CPU is exposed as the bottleneck, which is
   the historical argument for one-sided operations. *)

type net_profile = {
  np_name : string;  (** the [--profile] spelling *)
  np_label : string;
  np_segment : Net.Segment.config;
  np_nic : Net.Nic.config;
  np_switch : Sim.Time.span;
}

(* 10 Mbit/s Ethernet, the paper's own wire: byte_time 800 ns. *)
let net10m =
  {
    np_name = "net10m";
    np_label = "10 Mbit/s Ethernet (1995 baseline)";
    np_segment = segment;
    np_nic = nic;
    np_switch = switch_latency;
  }

(* 100 Mbit/s switched Ethernet: byte_time 80 ns, a leaner NIC. *)
let net100m =
  {
    np_name = "net100m";
    np_label = "100 Mbit/s switched Ethernet";
    np_segment =
      { Net.Segment.byte_time = Sim.Time.ns 80; framing_bytes = 38; min_payload = 46 };
    np_nic =
      {
        Net.Nic.rx_base = Sim.Time.us 60;
        rx_byte = Sim.Time.ns 30;
        rx_mcast_extra = Sim.Time.us 45;
      };
    np_switch = Sim.Time.us 20;
  }

(* Gigabit-class fabric: byte_time 8 ns, low-latency cut-through switch. *)
let net1g =
  {
    np_name = "net1g";
    np_label = "1 Gbit/s low-latency fabric";
    np_segment =
      { Net.Segment.byte_time = Sim.Time.ns 8; framing_bytes = 38; min_payload = 46 };
    np_nic =
      {
        Net.Nic.rx_base = Sim.Time.us 20;
        rx_byte = Sim.Time.ns 5;
        rx_mcast_extra = Sim.Time.us 15;
      };
    np_switch = Sim.Time.us 5;
  }

(* 10G-class fabric.  Integer nanoseconds cannot express 0.8 ns/byte, so
   byte_time 1 ns (8 Gbit/s) stands in for the 10 Gbit era; the
   endpoint-bound conclusions are unaffected. *)
let net10g =
  {
    np_name = "net10g";
    np_label = "10 Gbit-class fabric (8 Gbit/s: integer-ns floor)";
    np_segment =
      { Net.Segment.byte_time = Sim.Time.ns 1; framing_bytes = 38; min_payload = 46 };
    np_nic =
      {
        Net.Nic.rx_base = Sim.Time.us 5;
        rx_byte = Sim.Time.ns 1;
        rx_mcast_extra = Sim.Time.us 3;
      };
    np_switch = Sim.Time.us 1;
  }

let net_profiles = [ net10m; net100m; net1g; net10g ]

let net_profile_of_string s =
  List.find_opt (fun p -> String.equal p.np_name s) net_profiles
