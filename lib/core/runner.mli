(** Runs one Orca application on a freshly built cluster and reports the
    simulated execution time (the paper's Table 3 measurements). *)

type app = {
  app_name : string;
  app_make : Orca.Rts.domain -> (rank:int -> unit) * (unit -> int);
  app_reference : int Lazy.t;
      (** host-side sequential result, for validating the run *)
}

val apps : app list
(** The paper's six applications, paper-calibrated parameters. *)

val app_named : string -> app

type stats = {
  s_broadcasts : int;  (** totally-ordered broadcasts (replicated writes) *)
  s_remote : int;  (** remote object invocations (RPCs) *)
  s_parked : int;  (** guarded operations that blocked *)
  s_migrations : int;  (** adaptive placement migrations *)
  s_net_bytes : int;  (** bytes carried by all Ethernet segments *)
  s_net_util : float;  (** busiest segment's utilization over the run *)
  s_cpu_util_max : float;  (** busiest machine's CPU utilization *)
  s_ctx_switches : int;  (** context switches across all machines *)
}

type outcome = {
  o_app : string;
  o_impl : Cluster.impl;
  o_procs : int;
  o_seconds : float;  (** simulated wall-clock of the parallel phase *)
  o_checksum : int;
  o_valid : bool;  (** checksum matched the sequential reference *)
  o_events : int;  (** engine events executed (simulation effort) *)
  o_stats : stats;
  o_retrans : int;  (** protocol retransmissions over the whole run *)
  o_fault_kills : int;  (** frames killed by the injected fault schedule *)
  o_violations : string list;
      (** invariant violations (empty outside checked mode — and, for a
          correct protocol stack, inside it) *)
}

val run :
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?net:Params.net_profile ->
  ?lanes:bool ->
  ?sequencer:Panda.Seq_policy.t ->
  impl:Cluster.impl ->
  procs:int ->
  app ->
  outcome
(** [?faults] installs the fault schedule on the cluster's network before
    the run (its [seq_crash] instant, if any, is scheduled against the
    backend's sequencer); [?checked] (default false) wraps the backends in
    the {!Faults.Invariants} conformance checkers — sized to the policy's
    shard count — and reports violations in [o_violations]; [?net]
    (default {!Params.net10m}) picks the network era the cluster is built
    on; [?lanes] (default {!Cluster.default_lanes}) shards multi-segment
    clusters into conservative engine lanes, with each rank's worker fiber
    spawned in its machine's lane; [?sequencer] (default [Single]) selects
    the sequencer capacity policy the group stack runs. *)

val prepare : app -> unit
(** Forces the app's sequential reference result.  Must be called (in one
    domain) before [run] may execute on worker domains: forcing the same
    lazy from two domains concurrently is a race.  [run_many] does this
    itself. *)

val run_many :
  ?pool:Exec.Pool.t ->
  ?faults:Faults.Spec.t ->
  ?checked:bool ->
  ?net:Params.net_profile ->
  ?lanes:bool ->
  ?sequencer:Panda.Seq_policy.t ->
  (Cluster.impl * int * app) list ->
  outcome list
(** Runs each (impl, procs, app) cell as an independent simulation ([?faults]
    and [?checked] apply to every cell; each cell derives its own injector
    streams, so fan-out stays deterministic) and
    returns outcomes in input order.  Without [?pool] the cells run
    sequentially in order — exactly [List.map] over {!run}.  With a pool
    the cells run concurrently on its domains; since every simulation is
    deterministic and confined to one domain, the result list is
    identical either way. *)

val pp_outcome : Format.formatter -> outcome -> unit

val pp_stats : Format.formatter -> stats -> unit
