module Thread = Machine.Thread
module Mach = Machine.Mach
module Cpu = Machine.Cpu

type profile = {
  p_machine : Machine.Mach.config;
  p_nic : Net.Nic.config;
  p_segment : Net.Segment.config;
  p_switch : Sim.Time.span;
  p_flip : Flip.Flip_iface.config;
  p_arpc : Amoeba.Rpc.config;
  p_agrp : Amoeba.Group.config;
  p_psys : Panda.System_layer.config;
  p_prpc : Panda.Rpc.config;
  p_pgrp : Panda.Group.config;
}

let default_profile =
  {
    p_machine = Params.machine;
    p_nic = Params.nic;
    p_segment = Params.segment;
    p_switch = Params.switch_latency;
    p_flip = Params.flip;
    p_arpc = Params.amoeba_rpc;
    p_agrp = Params.amoeba_group;
    p_psys = Params.panda_system;
    p_prpc = Params.panda_rpc;
    p_pgrp = Params.panda_group;
  }

(* Re-skin a profile with a network era's wire, switch and NIC constants;
   everything above the NIC (machine, protocol stacks) keeps its 1995
   costs, which is exactly the counterfactual the crossover experiments
   ask about. *)
let with_net np p =
  {
    p with
    p_nic = np.Params.np_nic;
    p_segment = np.Params.np_segment;
    p_switch = np.Params.np_switch;
  }

(* The optimized user-space stack (impl [`Opt] below): the same profile
   with the three System_layer mechanisms switched on and the compact
   merged headers — exactly the configs Cluster.User_optimized uses, so
   the microbenchmarks and Table 3 measure the same stack.  Written as a
   transform so it composes with other profile edits (faults, ablations). *)
let optimize_profile p =
  {
    p with
    p_psys =
      { p.p_psys with Panda.System_layer.single_frag = true; sg_copy = true; rx_fastpath = true };
    p_prpc =
      { p.p_prpc with Panda.Rpc.header_bytes = Params.panda_rpc_opt.Panda.Rpc.header_bytes };
    p_pgrp =
      {
        p.p_pgrp with
        Panda.Group.header_bytes = Params.panda_group_opt.Panda.Group.header_bytes;
        accept_bytes = Params.panda_group_opt.Panda.Group.accept_bytes;
      };
  }

(* [`Opt] is the user code path under the optimized profile: same protocol
   modules, different mechanism flags. *)
let split_impl profile = function
  | `Opt -> (optimize_profile profile, `User)
  | `User -> (profile, `User)
  | `Kernel -> (profile, `Kernel)

(* A small pool built from a profile (for the microbenchmarks; Table 3
   uses Cluster, which reads Params directly). *)
let micro_pool profile n =
  let eng = Sim.Engine.create () in
  let machines =
    Array.init n (fun i ->
        Mach.create eng ~id:i ~name:(Printf.sprintf "m%d" i) profile.p_machine)
  in
  let topo =
    Net.Topology.build eng ~machines ~per_segment:8 ~segment_config:profile.p_segment
      ~nic_config:profile.p_nic ~switch_latency:profile.p_switch ()
  in
  let flips =
    Array.mapi
      (fun i mach ->
        Flip.Flip_iface.create mach ~config:profile.p_flip (Net.Topology.nic topo i))
      machines
  in
  (eng, machines, flips, topo)

(* Install a fault schedule (when given) on a micro pool's network. *)
let install_faults ?faults eng topo =
  match faults with
  | Some spec -> ignore (Faults.Inject.install eng topo spec)
  | None -> ()

type Sim.Payload.t += Ping

let warmup_rounds = 2
let measure_rounds = 10

(* Every experiment below decomposes into independent simulations (cells);
   [run_cells] evaluates them in input order — sequentially without a
   pool (today's exact code path), concurrently with one.  Each cell
   builds its own engine and machines, so cells share no mutable state
   and the results are identical either way. *)
let run_cells ?pool thunks =
  match pool with
  | None -> List.map (fun f -> f ()) thunks
  | Some p -> Exec.Pool.map_list p (fun f -> f ()) thunks

(* ------------------------------------------------------------------ *)
(* Table 1: system-layer unicast/multicast (user space only) *)

(* Ping-pong between the two system-layer daemons: replies are sent from
   within the upcall, so no context switch is in the measured path beyond
   the daemon dispatch itself (paper §4.1). *)
let raw_pingpong ?faults ~mcast profile ~size () =
  let eng, machines, flips, topo = micro_pool profile 2 in
  install_faults ?faults eng topo;
  let sys =
    Array.mapi
      (fun i flip ->
        Panda.System_layer.create ~config:profile.p_psys ~name:(Printf.sprintf "s%d" i) flip)
      flips
  in
  let gaddr = Flip.Address.fresh_group eng in
  if mcast then
    Array.iteri
      (fun i flip ->
        Flip.Flip_iface.register flip gaddr (fun frag ->
            (* The benchmark driver filters its own looped-back multicasts
               before they reach the daemon. *)
            if not (Flip.Address.equal frag.Flip.Fragment.src (Panda.System_layer.address sys.(i)))
            then
              match Panda.System_layer.unwrap frag with
              | Some pan -> Panda.System_layer.inject sys.(i) pan
              | None -> ()))
      flips;
  let rounds = warmup_rounds + measure_rounds in
  let t_start = ref Sim.Time.zero and t_end = ref Sim.Time.zero and count = ref 0 in
  let send_from_daemon i =
    if mcast then Panda.System_layer.mcast_from_daemon sys.(i) ~group:gaddr ~size Ping
    else
      Panda.System_layer.send_from_daemon sys.(i)
        ~dst:(Panda.System_layer.address sys.(1 - i))
        ~size Ping
  in
  Array.iteri
    (fun i s ->
      Panda.System_layer.add_handler s (fun ~src ~size:_ payload ->
          match payload with
          | Ping when Flip.Address.equal src (Panda.System_layer.address s) ->
            true (* own multicast looped back *)
          | Ping ->
            if i = 0 then begin
              incr count;
              if !count = warmup_rounds then t_start := Sim.Engine.now eng;
              if !count = rounds then t_end := Sim.Engine.now eng
              else send_from_daemon 0
            end
            else send_from_daemon 1;
            true
          | _ -> false))
    sys;
  ignore
    (Thread.spawn machines.(0) "starter" (fun () ->
         if mcast then Panda.System_layer.mcast sys.(0) ~group:gaddr ~size Ping
         else
           Panda.System_layer.send sys.(0)
             ~dst:(Panda.System_layer.address sys.(1))
             ~size Ping));
  Sim.Engine.run eng;
  (* Each round is two one-way messages. *)
  Sim.Time.to_ms (!t_end - !t_start) /. float_of_int (2 * measure_rounds)

let unicast_latency ?faults ?(profile = default_profile) ~size () =
  raw_pingpong ?faults ~mcast:false profile ~size ()

let multicast_latency ?faults ?(profile = default_profile) ~size () =
  raw_pingpong ?faults ~mcast:true profile ~size ()

(* ------------------------------------------------------------------ *)
(* Table 1: RPC latency *)

(* When a recorder is supplied, [window] selects what it sees: [`Measured]
   installs it from the start of the first measured round to the end of the
   last one (warmup and post-run drain excluded, matching the latency
   window); [`Whole] records the entire run, so the ledger can be compared
   against total CPU busy time. *)
let record_round recorder window i =
  match (recorder, window) with
  | Some r, `Measured when i = warmup_rounds + 1 -> Obs.Recorder.install r
  | _ -> ()

let record_done recorder window =
  match (recorder, window) with
  | Some _, `Measured -> Obs.Recorder.uninstall ()
  | _ -> ()

let rpc_run ?recorder ?(window = `Measured) ?faults profile ~impl ~size ~rounds =
  let profile, impl = split_impl profile impl in
  let eng, machines, flips, topo = micro_pool profile 2 in
  install_faults ?faults eng topo;
  (match (recorder, window) with
   | Some r, `Whole -> Obs.Recorder.install r
   | _ -> ());
  let marks = ref [] in
  (match impl with
   | `Kernel ->
     let srpc = Amoeba.Rpc.create ~config:profile.p_arpc flips.(1) in
     let port = Amoeba.Rpc.export srpc ~name:"bench" in
     ignore
       (Thread.spawn machines.(1) ~prio:Thread.Daemon "server" (fun () ->
            for _ = 1 to rounds do
              let r = Amoeba.Rpc.get_request port in
              Amoeba.Rpc.put_reply port r ~size:0 Sim.Payload.Empty
            done));
     let crpc = Amoeba.Rpc.create ~config:profile.p_arpc flips.(0) in
     ignore
       (Thread.spawn machines.(0) "client" (fun () ->
            for i = 1 to rounds do
              record_round recorder window i;
              ignore (Amoeba.Rpc.trans crpc ~dst:(Amoeba.Rpc.address port) ~size Ping);
              marks := Sim.Engine.now eng :: !marks
            done;
            record_done recorder window))
   | `User ->
     let sys =
       Array.mapi
         (fun i flip ->
           Panda.System_layer.create ~config:profile.p_psys
             ~name:(Printf.sprintf "s%d" i) flip)
         flips
     in
     let srpc = Panda.Rpc.create ~config:profile.p_prpc sys.(1) in
     Panda.Rpc.set_request_handler srpc (fun ~client:_ ~size:_ _ ~reply ->
         reply ~size:0 Sim.Payload.Empty);
     let crpc = Panda.Rpc.create ~config:profile.p_prpc sys.(0) in
     ignore
       (Thread.spawn machines.(0) "client" (fun () ->
            for i = 1 to rounds do
              record_round recorder window i;
              ignore (Panda.Rpc.trans crpc ~dst:(Panda.Rpc.address srpc) ~size Ping);
              marks := Sim.Engine.now eng :: !marks
            done;
            record_done recorder window)));
  Sim.Engine.run eng;
  (match (recorder, window) with
   | Some _, `Whole -> Obs.Recorder.uninstall ()
   | _ -> ());
  (List.rev !marks, machines)

let rpc_latency ?faults ?(profile = default_profile) ~impl ~size () =
  let rounds = warmup_rounds + measure_rounds in
  let marks, _ = rpc_run ?faults profile ~impl ~size ~rounds in
  let t0 = List.nth marks (warmup_rounds - 1) in
  let t1 = List.nth marks (rounds - 1) in
  Sim.Time.to_ms (t1 - t0) /. float_of_int measure_rounds

(* ------------------------------------------------------------------ *)
(* Table 1: group latency *)

(* One sending member; the sequencer is on the other machine, as in the
   paper's measurement. *)
let group_run ?recorder ?(window = `Measured) ?faults profile ~impl ~size ~rounds =
  let profile, impl = split_impl profile impl in
  let eng, machines, flips, topo = micro_pool profile 2 in
  install_faults ?faults eng topo;
  (match (recorder, window) with
   | Some r, `Whole -> Obs.Recorder.install r
   | _ -> ());
  let marks = ref [] in
  (match impl with
   | `Kernel ->
     let _grp, members =
       Amoeba.Group.create_static ~config:profile.p_agrp ~name:"bench" ~sequencer:1 flips
     in
     Array.iteri
       (fun i m ->
         ignore
           (Thread.spawn machines.(i) ~prio:Thread.Daemon "recv" (fun () ->
                for _ = 1 to rounds do
                  ignore (Amoeba.Group.receive m)
                done)))
       members;
     ignore
       (Thread.spawn machines.(0) "sender" (fun () ->
            for i = 1 to rounds do
              record_round recorder window i;
              Amoeba.Group.send members.(0) ~size Ping;
              marks := Sim.Engine.now eng :: !marks
            done;
            record_done recorder window))
   | `User ->
     let sys =
       Array.mapi
         (fun i flip ->
           Panda.System_layer.create ~config:profile.p_psys
             ~name:(Printf.sprintf "s%d" i) flip)
         flips
     in
     let _grp, members =
       Panda.Group.create_static ~config:profile.p_pgrp ~name:"bench"
         ~sequencer:(Panda.Group.On_member 1) sys
     in
     Array.iter
       (fun m -> Panda.Group.set_handler m (fun ~sender:_ ~size:_ _ -> ()))
       members;
     ignore
       (Thread.spawn machines.(0) "sender" (fun () ->
            for i = 1 to rounds do
              record_round recorder window i;
              Panda.Group.send members.(0) ~size Ping;
              marks := Sim.Engine.now eng :: !marks
            done;
            record_done recorder window)));
  Sim.Engine.run eng;
  (match (recorder, window) with
   | Some _, `Whole -> Obs.Recorder.uninstall ()
   | _ -> ());
  (List.rev !marks, machines)

let group_latency ?faults ?(profile = default_profile) ~impl ~size () =
  let rounds = warmup_rounds + measure_rounds in
  let marks, _ = group_run ?faults profile ~impl ~size ~rounds in
  let t0 = List.nth marks (warmup_rounds - 1) in
  let t1 = List.nth marks (rounds - 1) in
  Sim.Time.to_ms (t1 - t0) /. float_of_int measure_rounds

type lat_row = {
  lr_size : int;
  lr_unicast : float;
  lr_multicast : float;
  lr_rpc_user : float;
  lr_rpc_kernel : float;
  lr_grp_user : float;
  lr_grp_kernel : float;
  lr_rpc_opt : float;
  lr_grp_opt : float;
}

let table1_sizes = [ 0; 1024; 2048; 3072; 4096 ]

let table1 ?pool ?faults ?(profile = default_profile) ?(sizes = table1_sizes) () =
  (* One cell per (size, column): 8 independent simulations per row. *)
  let cells =
    List.concat_map
      (fun size ->
        [
          (fun () -> unicast_latency ?faults ~profile ~size ());
          (fun () -> multicast_latency ?faults ~profile ~size ());
          (fun () -> rpc_latency ?faults ~profile ~impl:`User ~size ());
          (fun () -> rpc_latency ?faults ~profile ~impl:`Kernel ~size ());
          (fun () -> group_latency ?faults ~profile ~impl:`User ~size ());
          (fun () -> group_latency ?faults ~profile ~impl:`Kernel ~size ());
          (fun () -> rpc_latency ?faults ~profile ~impl:`Opt ~size ());
          (fun () -> group_latency ?faults ~profile ~impl:`Opt ~size ());
        ])
      sizes
  in
  let rec rows sizes vals =
    match (sizes, vals) with
    | [], [] -> []
    | size :: sizes, u :: m :: ru :: rk :: gu :: gk :: ro :: go :: vals ->
      {
        lr_size = size;
        lr_unicast = u;
        lr_multicast = m;
        lr_rpc_user = ru;
        lr_rpc_kernel = rk;
        lr_grp_user = gu;
        lr_grp_kernel = gk;
        lr_rpc_opt = ro;
        lr_grp_opt = go;
      }
      :: rows sizes vals
    | _ -> assert false
  in
  rows sizes (run_cells ?pool cells)

(* ------------------------------------------------------------------ *)
(* Table 2: throughput *)

let rpc_throughput ?faults profile ~impl =
  let rounds = 40 in
  let size = 8000 in
  let marks, _ = rpc_run ?faults profile ~impl ~size ~rounds in
  let t0 = List.nth marks (warmup_rounds - 1) in
  let t1 = List.nth marks (rounds - 1) in
  let secs = Sim.Time.to_sec (t1 - t0) in
  float_of_int ((rounds - warmup_rounds) * size) /. secs /. 1024.

(* Several members stream large messages concurrently, saturating the
   Ethernet; throughput is the ordered goodput. *)
let group_throughput ?faults profile ~impl =
  let profile, impl = split_impl profile impl in
  let n = 4 in
  let per_member = 12 in
  let size = 8000 in
  let eng, machines, flips, topo = micro_pool profile n in
  install_faults ?faults eng topo;
  let total = n * per_member in
  let done_at = ref Sim.Time.zero in
  let delivered = ref 0 in
  let note_delivery () =
    incr delivered;
    if !delivered = total * n then done_at := Sim.Engine.now eng
  in
  (match impl with
   | `Kernel ->
     let _grp, members =
       Amoeba.Group.create_static ~config:profile.p_agrp ~name:"tput" ~sequencer:0 flips
     in
     Array.iteri
       (fun i m ->
         ignore
           (Thread.spawn machines.(i) ~prio:Thread.Daemon "recv" (fun () ->
                for _ = 1 to total do
                  ignore (Amoeba.Group.receive m);
                  note_delivery ()
                done)))
       members;
     Array.iteri
       (fun i m ->
         ignore
           (Thread.spawn machines.(i) "sender" (fun () ->
                for _ = 1 to per_member do
                  Amoeba.Group.send m ~size Ping
                done)))
       members
   | `User ->
     let sys =
       Array.mapi
         (fun i flip ->
           Panda.System_layer.create ~config:profile.p_psys
             ~name:(Printf.sprintf "s%d" i) flip)
         flips
     in
     let _grp, members =
       Panda.Group.create_static ~config:profile.p_pgrp ~name:"tput"
         ~sequencer:(Panda.Group.On_member 0) sys
     in
     Array.iter
       (fun m ->
         Panda.Group.set_handler m (fun ~sender:_ ~size:_ _ -> note_delivery ()))
       members;
     Array.iteri
       (fun i m ->
         ignore
           (Thread.spawn machines.(i) "sender" (fun () ->
                for _ = 1 to per_member do
                  Panda.Group.send m ~size Ping
                done)))
       members);
  Sim.Engine.run eng;
  let secs = Sim.Time.to_sec !done_at in
  float_of_int (total * size) /. secs /. 1024.

type tput_row = {
  tr_proto : string;
  tr_user : float;
  tr_kernel : float;
  tr_opt : float;
}

let table2 ?pool ?faults ?(profile = default_profile) () =
  match
    run_cells ?pool
      [
        (fun () -> rpc_throughput ?faults profile ~impl:`User);
        (fun () -> rpc_throughput ?faults profile ~impl:`Kernel);
        (fun () -> group_throughput ?faults profile ~impl:`User);
        (fun () -> group_throughput ?faults profile ~impl:`Kernel);
        (fun () -> rpc_throughput ?faults profile ~impl:`Opt);
        (fun () -> group_throughput ?faults profile ~impl:`Opt);
      ]
  with
  | [ ru; rk; gu; gk; ro; go ] ->
    [
      { tr_proto = "RPC"; tr_user = ru; tr_kernel = rk; tr_opt = ro };
      { tr_proto = "group"; tr_user = gu; tr_kernel = gk; tr_opt = go };
    ]
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Table 3 *)

let table3 ?pool ?faults ?checked ?net ?(procs = [ 1; 8; 16; 32 ]) ?app_names () =
  let apps =
    match app_names with
    | None -> Runner.apps
    | Some names -> List.map Runner.app_named names
  in
  let cells =
    List.concat_map
      (fun app ->
        List.concat_map
          (fun p ->
            let impls =
              if app.Runner.app_name = "leq" then
                [ Cluster.Kernel; Cluster.User; Cluster.User_dedicated; Cluster.User_optimized ]
              else [ Cluster.Kernel; Cluster.User; Cluster.User_optimized ]
            in
            List.map (fun impl -> (impl, p, app)) impls)
          procs)
      apps
  in
  Runner.run_many ?pool ?faults ?checked ?net cells

(* ------------------------------------------------------------------ *)
(* Breakdowns: re-measure the user/kernel gap with one mechanism at a
   time made free, mirroring the paper's §4.2/§4.3 accounting. *)

let null_rpc_gap profile =
  let user = rpc_latency ~profile ~impl:`User ~size:0 () in
  let kernel = rpc_latency ~profile ~impl:`Kernel ~size:0 () in
  (user -. kernel) *. 1000.

let no_ctx_switches p =
  { p with
    p_machine =
      { p.p_machine with Mach.ctx_warm = 0; ctx_cold_idle = 0; ctx_cold_preempt = 0 } }

let no_traps p = { p with p_machine = { p.p_machine with Mach.trap_cost = 0 } }

let no_double_frag p =
  { p with p_psys = { p.p_psys with Panda.System_layer.frag_cost = 0 } }

let equal_headers_rpc p =
  { p with
    p_prpc = { p.p_prpc with Panda.Rpc.header_bytes = p.p_arpc.Amoeba.Rpc.header_bytes } }

let equal_headers_group p =
  { p with
    p_pgrp =
      { p.p_pgrp with Panda.Group.header_bytes = p.p_agrp.Amoeba.Group.header_bytes } }

let no_flip_extra p =
  { p with p_psys = { p.p_psys with Panda.System_layer.user_flip_extra = 0 } }

(* The RPC gap decomposes cleanly as a differential (re-measure the gap
   with one mechanism free at a time). *)
let rpc_breakdown ?pool () =
  let labelled =
    [
      ("context switches", no_ctx_switches);
      ("register-window traps", no_traps);
      ("double fragmentation", no_double_frag);
      ("header size difference", equal_headers_rpc);
      ("untuned user-level FLIP interface", no_flip_extra);
    ]
  in
  let gaps =
    run_cells ?pool
      ((fun () -> null_rpc_gap default_profile)
       :: List.map
            (fun (_, transform) () -> null_rpc_gap (transform default_profile))
            labelled)
  in
  match gaps with
  | base :: rest ->
    ("total user-kernel gap", base)
    :: List.map2 (fun (label, _) gap -> (label, base -. gap)) labelled rest
  | [] -> assert false

(* The group paths interleave with the wire on both sides, so differential
   gaps are unstable; decompose the user-space latency itself instead (how
   much of it each mechanism costs), next to the measured total gap. *)
let group_breakdown ?pool () =
  let user transform () =
    group_latency ~profile:(transform default_profile) ~impl:`User ~size:0 () *. 1000.
  in
  let kernel () = group_latency ~impl:`Kernel ~size:0 () *. 1000. in
  match
    run_cells ?pool
      [
        user Fun.id;
        kernel;
        user no_ctx_switches;
        user no_traps;
        user no_double_frag;
        user equal_headers_group;
        user no_flip_extra;
      ]
  with
  | [ base; kern; ctx; traps; frag; hdr; flip ] ->
    [
      ("total user-kernel gap", base -. kern);
      ("context switches (user path)", base -. ctx);
      ("register-window traps (user path)", base -. traps);
      ("double fragmentation (user path)", base -. frag);
      ("header size difference", base -. hdr);
      ("untuned user-level FLIP interface (user path)", base -. flip);
    ]
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Measured breakdowns: the same accounting derived from the observability
   ledger of two recorded null-latency runs, instead of differential
   re-simulation.  Components that exist identically on both stacks cancel
   in the user-kernel delta; what remains is the paper's overhead list. *)

(* Header bytes charged to FLIP itself (and their NIC reception share)
   appear identically on both stacks, so the header component is the delta
   of upper-layer header wire cost only. *)
let upper_header_ns r =
  List.fold_left
    (fun acc ly ->
      if ly = Obs.Layer.Flip || ly = Obs.Layer.Nic then acc
      else acc + Obs.Recorder.ledger_ns r ~layer:ly ~cause:Obs.Cause.Header_wire)
    0 Obs.Layer.all

let user_flip_ns r = Obs.Recorder.ledger_ns r ~layer:Obs.Layer.Flip ~cause:Obs.Cause.Uk_crossing

(* Records the measured rounds of one null run; returns the recorder and
   the per-round latency in µs. *)
let recorded_null run impl =
  let rounds = warmup_rounds + measure_rounds in
  let r = Obs.Recorder.create () in
  let marks, _ =
    run ?recorder:(Some r) ?window:(Some `Measured) ?faults:None default_profile
      ~impl ~size:0 ~rounds
  in
  let t0 = List.nth marks (warmup_rounds - 1) in
  let t1 = List.nth marks (rounds - 1) in
  (r, Sim.Time.to_us (t1 - t0) /. float_of_int measure_rounds)

let us_per_round ns = float_of_int ns /. float_of_int measure_rounds /. 1000.

let measured_breakdown ?pool () =
  (* Four independent recorded runs; the accounting below is pure. *)
  let runs =
    run_cells ?pool
      [
        (fun () -> recorded_null rpc_run `User);
        (fun () -> recorded_null rpc_run `Kernel);
        (fun () -> recorded_null group_run `User);
        (fun () -> recorded_null group_run `Kernel);
      ]
  in
  let rpc_u, rpc_k, grp_u, grp_k =
    match runs with [ a; b; c; d ] -> (a, b, c, d) | _ -> assert false
  in
  let rpc =
    let ru, lat_u = rpc_u in
    let rk, lat_k = rpc_k in
    let delta f = us_per_round (f ru - f rk) in
    let cause c r = Obs.Recorder.cause_ns r c in
    [
      ("total user-kernel gap", lat_u -. lat_k);
      ("context switches", delta (cause Obs.Cause.Ctx_switch));
      ("register-window traps", delta (cause Obs.Cause.Regwin_trap));
      ("double fragmentation", delta (cause Obs.Cause.Fragmentation));
      ("header size difference", delta upper_header_ns);
      ("untuned user-level FLIP interface", delta user_flip_ns);
      ("kernel crossings (other)",
       delta (fun r -> Obs.Recorder.cause_ns r Obs.Cause.Uk_crossing - user_flip_ns r));
      ("protocol processing (other)", delta (cause Obs.Cause.Proto_proc));
      ("data copying", delta (cause Obs.Cause.Copy));
    ]
  in
  let group =
    let ru, lat_u = grp_u in
    let rk, lat_k = grp_k in
    let user f = us_per_round (f ru) in
    let cause c r = Obs.Recorder.cause_ns r c in
    [
      ("total user-kernel gap", lat_u -. lat_k);
      ("context switches (user path)", user (cause Obs.Cause.Ctx_switch));
      ("register-window traps (user path)", user (cause Obs.Cause.Regwin_trap));
      ("double fragmentation (user path)", user (cause Obs.Cause.Fragmentation));
      ("header size difference", us_per_round (upper_header_ns ru - upper_header_ns rk));
      ("untuned user-level FLIP interface (user path)", user user_flip_ns);
    ]
  in
  (rpc, group)

(* A whole-run recording of one Table 1 null-RPC benchmark, plus the total
   CPU busy time of both machines — for trace export and for checking the
   ledger-vs-CPU-time invariant. *)
let recorded_rpc ?(impl = `User) ?(size = 0) () =
  let rounds = warmup_rounds + measure_rounds in
  let r = Obs.Recorder.create () in
  let _marks, machines =
    rpc_run ~recorder:r ~window:`Whole default_profile ~impl ~size ~rounds
  in
  let busy =
    Array.fold_left (fun acc m -> acc + Cpu.busy_time (Mach.cpu m)) 0 machines
  in
  (r, busy)

(* ------------------------------------------------------------------ *)
(* Optimized-stack differential: record baseline-user and optimized null
   runs and diff the cost ledgers cell by cell.  On a single-fragment null
   operation the four optimizations are disjoint in the cause dimension —
   single fragmentation is the only mechanism touching [Fragmentation]
   charges, scatter-gather the only one touching [Copy], compact headers
   the only one touching [Header_wire], and the receive fast path the only
   one changing scheduling and kernel-crossing work — so every saved
   microsecond lands in exactly one named bucket and the residual (causes
   owned by no mechanism) must be zero. *)

type opt_cell = {
  oc_layer : Obs.Layer.t;
  oc_cause : Obs.Cause.t;
  oc_us : float;  (** µs/round this ledger cell shrank (negative = grew) *)
}

type opt_breakdown = {
  ob_base_us : float;  (** baseline user-space null latency, µs/round *)
  ob_opt_us : float;  (** optimized user-space null latency, µs/round *)
  ob_kernel_us : float;  (** kernel-space reference, µs/round *)
  ob_cells : opt_cell list;  (** every nonzero (layer, cause) ledger delta *)
  ob_mechanisms : (string * float) list;  (** µs/round recovered per optimization *)
  ob_residual_us : float;  (** deltas owned by no mechanism — 0 by construction *)
}

let mechanism_of_cause = function
  | Obs.Cause.Fragmentation -> Some "single fragmentation"
  | Obs.Cause.Copy -> Some "scatter-gather zero-copy"
  | Obs.Cause.Header_wire -> Some "compact headers"
  | Obs.Cause.Ctx_switch | Obs.Cause.Uk_crossing | Obs.Cause.Regwin_trap
  | Obs.Cause.Proto_proc -> Some "single-switch receive fast path"
  | Obs.Cause.Fault_wire | Obs.Cause.Idle | Obs.Cause.Offload -> None

let mechanism_names =
  [
    "single fragmentation";
    "scatter-gather zero-copy";
    "compact headers";
    "single-switch receive fast path";
  ]

let diff_breakdown (ru, lat_u) (ro, lat_o) kernel_us =
  let cells =
    List.concat_map
      (fun ly ->
        List.filter_map
          (fun c ->
            let d =
              Obs.Recorder.ledger_ns ru ~layer:ly ~cause:c
              - Obs.Recorder.ledger_ns ro ~layer:ly ~cause:c
            in
            if d = 0 then None
            else Some { oc_layer = ly; oc_cause = c; oc_us = us_per_round d })
          Obs.Cause.all)
      Obs.Layer.all
  in
  let sum pred =
    List.fold_left (fun acc cl -> if pred cl then acc +. cl.oc_us else acc) 0. cells
  in
  {
    ob_base_us = lat_u;
    ob_opt_us = lat_o;
    ob_kernel_us = kernel_us;
    ob_cells = cells;
    ob_mechanisms =
      List.map
        (fun n -> (n, sum (fun cl -> mechanism_of_cause cl.oc_cause = Some n)))
        mechanism_names;
    ob_residual_us = sum (fun cl -> mechanism_of_cause cl.oc_cause = None);
  }

let optimized_breakdown ?pool () =
  match
    run_cells ?pool
      [
        (fun () -> `Rec (recorded_null rpc_run `User));
        (fun () -> `Rec (recorded_null rpc_run `Opt));
        (fun () -> `Lat (rpc_latency ~impl:`Kernel ~size:0 () *. 1000.));
        (fun () -> `Rec (recorded_null group_run `User));
        (fun () -> `Rec (recorded_null group_run `Opt));
        (fun () -> `Lat (group_latency ~impl:`Kernel ~size:0 () *. 1000.));
      ]
  with
  | [ `Rec ru; `Rec ro; `Lat rk; `Rec gu; `Rec go; `Lat gk ] ->
    (diff_breakdown ru ro rk, diff_breakdown gu go gk)
  | _ -> assert false

let pp_opt_breakdown fmt ob =
  Format.fprintf fmt "  baseline user %8.1f us   optimized %8.1f us   kernel %8.1f us@,"
    ob.ob_base_us ob.ob_opt_us ob.ob_kernel_us;
  Format.fprintf fmt "  recovered %.1f us:@," (ob.ob_base_us -. ob.ob_opt_us);
  List.iter
    (fun (name, us) -> Format.fprintf fmt "    %-34s %8.1f us@," name us)
    ob.ob_mechanisms;
  Format.fprintf fmt "    %-34s %8.1f us@," "residual (unattributed)" ob.ob_residual_us;
  Format.fprintf fmt "  ledger cells removed:@,";
  List.iter
    (fun cl ->
      Format.fprintf fmt "    %-10s %-14s %8.1f us@,"
        (Obs.Layer.to_string cl.oc_layer)
        (Obs.Cause.to_string cl.oc_cause)
        cl.oc_us)
    (List.sort (fun a b -> compare b.oc_us a.oc_us) ob.ob_cells)

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablation_dedicated_sequencer ?pool ?(procs = [ 8; 16; 32 ]) () =
  let app = Runner.app_named "leq" in
  Runner.run_many ?pool
    (List.concat_map
       (fun p -> [ (Cluster.User, p, app); (Cluster.User_dedicated, p, app) ])
       procs)

let ablation_nonblocking ?pool () =
  (* Time the sender perceives per broadcast, blocking vs nonblocking. *)
  let measure ~nonblocking =
    let eng, machines, flips, _topo = micro_pool default_profile 2 in
    let sys =
      Array.mapi
        (fun i flip ->
          Panda.System_layer.create ~config:default_profile.p_psys
            ~name:(Printf.sprintf "s%d" i) flip)
        flips
    in
    let _grp, members =
      Panda.Group.create_static ~config:default_profile.p_pgrp ~name:"nb"
        ~sequencer:(Panda.Group.On_member 1) sys
    in
    Array.iter (fun m -> Panda.Group.set_handler m (fun ~sender:_ ~size:_ _ -> ())) members;
    let rounds = warmup_rounds + measure_rounds in
    let marks = ref [] in
    ignore
      (Thread.spawn machines.(0) "sender" (fun () ->
           for _ = 1 to rounds do
             if nonblocking then Panda.Group.send_nonblocking members.(0) ~size:64 Ping
             else Panda.Group.send members.(0) ~size:64 Ping;
             marks := Sim.Engine.now eng :: !marks
           done));
    Sim.Engine.run eng;
    let marks = List.rev !marks in
    let t0 = List.nth marks (warmup_rounds - 1) in
    let t1 = List.nth marks (rounds - 1) in
    Sim.Time.to_ms (t1 - t0) /. float_of_int measure_rounds
  in
  match
    run_cells ?pool
      [
        (fun () -> measure ~nonblocking:false);
        (fun () -> measure ~nonblocking:true);
      ]
  with
  | [ blocking; nonblocking ] ->
    [ ("blocking send (ms)", blocking); ("nonblocking send (ms)", nonblocking) ]
  | _ -> assert false

let ablation_migration ?pool () =
  (* A central object accessed overwhelmingly by one remote process: with
     static placement every access is an RPC; the adaptive heuristic
     migrates the object to the accessor. *)
  let run placement =
    let eng, _machines, flips, _topo = micro_pool default_profile 2 in
    let backends = Orca.Backend.user_stack ~sys_config:default_profile.p_psys
        ~rpc_config:default_profile.p_prpc ~group_config:default_profile.p_pgrp flips () in
    let dom = Orca.Rts.create_domain backends in
    let od =
      Orca.Rts.declare dom ~name:"cell" ~placement ~init:(fun ~rank:_ -> ref 0)
    in
    let add =
      Orca.Rts.defop od ~name:"add" ~kind:`Write (fun st _ ->
          incr st;
          Sim.Payload.Empty)
    in
    let finish = ref Sim.Time.zero in
    ignore
      (Orca.Rts.spawn dom ~rank:1 "worker" (fun ~rank:_ ->
           for _ = 1 to 400 do
             ignore (Orca.Rts.invoke add Sim.Payload.Empty)
           done;
           finish := Sim.Engine.now eng));
    Sim.Engine.run eng;
    (Sim.Time.to_ms !finish, Orca.Rts.migrations dom)
  in
  let static_run, adaptive_run =
    match
      run_cells ?pool
        [
          (fun () -> run (Orca.Rts.Owned 0));
          (fun () -> run (Orca.Rts.Adaptive { owner = 0; state_bytes = 128 }));
        ]
    with
    | [ s; a ] -> (s, a)
    | _ -> assert false
  in
  let static_ms, _ = static_run in
  let adaptive_ms, migs = adaptive_run in
  [
    ("static placement (remote owner), ms", static_ms);
    ("adaptive placement, ms", adaptive_ms);
    ("migrations", float_of_int migs);
  ]

(* The paper's closing point: "the performance of our user-space
   implementation could be improved significantly if user-level access to
   the network would be allowed, since such access would eliminate many
   system calls."  Model that future: the user-space stack maps the
   network interface, so its per-packet kernel crossings and the untuned
   user-level FLIP interface go away (a trap-free fast path), while the
   kernel stack is unchanged. *)
let ablation_user_level_network ?pool () =
  let user_mapped =
    { default_profile with
      p_psys =
        { default_profile.p_psys with
          Panda.System_layer.user_flip_extra = 0;
          recv_fixed = Sim.Time.us 15 };
      p_machine = { default_profile.p_machine with Mach.syscall_base = Sim.Time.us 3 } }
  in
  (* Only the user columns are meaningful under the modified machine: the
     kernel numbers come from the untouched default profile. *)
  let base_user, mapped_user, base_kernel, grp_base_user, grp_mapped_user,
      grp_base_kernel =
    match
      run_cells ?pool
        [
          (fun () -> rpc_latency ~impl:`User ~size:0 ());
          (fun () -> rpc_latency ~profile:user_mapped ~impl:`User ~size:0 ());
          (fun () -> rpc_latency ~impl:`Kernel ~size:0 ());
          (fun () -> group_latency ~impl:`User ~size:0 ());
          (fun () -> group_latency ~profile:user_mapped ~impl:`User ~size:0 ());
          (fun () -> group_latency ~impl:`Kernel ~size:0 ());
        ]
    with
    | [ a; b; c; d; e; f ] -> (a, b, c, d, e, f)
    | _ -> assert false
  in
  [
    ("RPC user (today), ms", base_user);
    ("RPC user with user-level network, ms", mapped_user);
    ("RPC kernel (reference), ms", base_kernel);
    ("group user (today), ms", grp_base_user);
    ("group user with user-level network, ms", grp_mapped_user);
    ("group kernel (reference), ms", grp_base_kernel);
  ]

(* ------------------------------------------------------------------ *)
(* Fault sweep: how gracefully each stack degrades as the network gets
   worse.  Per (implementation, loss rate): the Table 1 null latencies
   under that loss, plus one full application run in checked mode — so the
   row also certifies that the invariants hold and the answer is still
   right at that rate. *)

type fault_row = {
  fw_impl : Cluster.impl;
  fw_rate : float;  (** i.i.d. frame-loss probability *)
  fw_rpc_ms : float;  (** null RPC latency under that loss *)
  fw_grp_ms : float;  (** null group latency under that loss *)
  fw_app : string;
  fw_app_s : float;  (** application runtime under that loss, checked mode *)
  fw_valid : bool;
  fw_retrans : int;
  fw_kills : int;  (** frames the schedule killed during the app run *)
  fw_violations : int;
}

let fault_sweep ?pool ?net ?(rates = [ 0.; 0.001; 0.01; 0.05 ]) ?(app_name = "tsp")
    ?(procs = 8) ?(seed = 1) () =
  let app = Runner.app_named app_name in
  Runner.prepare app;
  let profile =
    match net with Some np -> with_net np default_profile | None -> default_profile
  in
  let cell impl rate () =
    let faults = if rate > 0. then Some (Faults.Spec.loss ~seed rate) else None in
    let micro =
      match impl with
      | Cluster.Kernel -> `Kernel
      | Cluster.User_optimized -> `Opt
      | _ -> `User
    in
    let rpc = rpc_latency ?faults ~profile ~impl:micro ~size:0 () in
    let grp = group_latency ?faults ~profile ~impl:micro ~size:0 () in
    let o = Runner.run ?faults ?net ~checked:true ~impl ~procs app in
    {
      fw_impl = impl;
      fw_rate = rate;
      fw_rpc_ms = rpc;
      fw_grp_ms = grp;
      fw_app = app_name;
      fw_app_s = o.Runner.o_seconds;
      fw_valid = o.Runner.o_valid;
      fw_retrans = o.Runner.o_retrans;
      fw_kills = o.Runner.o_fault_kills;
      fw_violations = List.length o.Runner.o_violations;
    }
  in
  let cells =
    List.concat_map
      (fun impl -> List.map (fun rate -> cell impl rate) rates)
      [ Cluster.Kernel; Cluster.User; Cluster.User_optimized ]
  in
  run_cells ?pool cells

let pp_fault_row fmt r =
  Format.fprintf fmt
    "%-6s loss=%5.2f%%  rpc %6.2f ms  grp %6.2f ms  %s %7.1f s%s  retrans=%-5d killed=%-5d%s"
    (Cluster.impl_label r.fw_impl) (100. *. r.fw_rate) r.fw_rpc_ms r.fw_grp_ms
    r.fw_app r.fw_app_s
    (if r.fw_valid then "" else " INVALID")
    r.fw_retrans r.fw_kills
    (if r.fw_violations = 0 then "" else Printf.sprintf "  %d VIOLATIONS" r.fw_violations)

(* ------------------------------------------------------------------ *)
(* Load sweeps: throughput-latency curves and sequencer saturation.
   Each (impl, operating point) is an independent cell — a fresh cluster,
   fault injectors and checker — so the sweeps fan out over the pool with
   the same canonical-order reassembly as every table above. *)

let load_impls = [ Cluster.Kernel; Cluster.User; Cluster.User_optimized ]

let load_cell ?faults ?(checked = false) ?net ?client_ranks
    ?(policy = Panda.Seq_policy.Single) ~nodes ~impl cfg () =
  let cluster =
    Cluster.create ~extra_machine:(impl = Cluster.User_dedicated) ?net ~n:nodes ()
  in
  (match faults with
   | Some spec ->
     ignore (Faults.Inject.install cluster.Cluster.eng cluster.Cluster.topo spec)
   | None -> ());
  let shards = Panda.Seq_policy.shards policy in
  let checker = if checked then Some (Faults.Invariants.create ~shards ()) else None in
  let backends = Cluster.backends ?checker ~policy cluster impl in
  (match faults with
   | Some { Faults.Spec.seq_crash = Some at; _ } ->
     ignore
       (Sim.Engine.at cluster.Cluster.eng at (fun () ->
            backends.(0).Orca.Backend.crash_sequencer ()))
   | _ -> ());
  let seq_machine = Cluster.sequencer_machine cluster impl in
  let m =
    Load.Clients.run cfg ~eng:cluster.Cluster.eng ~backends
      ~machines:cluster.Cluster.machines ~seq_machine ?client_ranks ~shards ()
  in
  match checker with
  | Some c ->
    Faults.Invariants.finalize c;
    { m with Load.Metrics.violations = Faults.Invariants.n_violations c }
  | None -> m

let load_rates = [ 200.; 400.; 800.; 1200.; 1600.; 2000. ]

let load_sweep ?pool ?faults ?checked ?net ?(nodes = 4)
    ?(config = Load.Clients.default) ?(rates = load_rates) ?(impls = load_impls)
    () =
  let cells =
    List.concat_map
      (fun impl ->
        List.map
          (fun rate () ->
            load_cell ?faults ?checked ?net ~nodes ~impl
              { config with Load.Clients.rate } ())
          rates)
      impls
  in
  let results = run_cells ?pool cells in
  let nr = List.length rates in
  List.mapi
    (fun i impl ->
      let points = List.filteri (fun j _ -> j / nr = i) results in
      (impl, Load.Sweep.curve points))
    impls

(* ------------------------------------------------------------------ *)
(* Loss x load tail grids.  The protocols' 200 ms retransmission timeout
   is invisible in means — a 1% frame-loss rate barely moves the average
   null-RPC time — but it owns the tail: every lost request or reply
   parks its caller for the full timeout, so p99/p99.9 jump by two to
   three orders of magnitude.  The grid quantifies that as an
   amplification factor against the loss-free baseline at the same
   (stack, offered load) point, one independent cell per coordinate. *)

type tail_cell = {
  tc_impl : Cluster.impl;
  tc_loss : float;
  tc_rate : float;
  tc_metrics : Load.Metrics.t;
  tc_amp99 : float;
  tc_amp999 : float;
}

let tail_losses = [ 0.; 0.001; 0.01; 0.03 ]

let tail_grid ?pool ?net ?(nodes = 4) ?(config = Load.Clients.default)
    ?(losses = tail_losses) ?(rates = [ 200.; 800. ]) ?(impls = load_impls) () =
  (* The amplification baseline is the loss-free cell, so make sure the
     grid contains one even when the caller's list omits it. *)
  let losses =
    if List.exists (fun l -> l = 0.) losses then losses else 0. :: losses
  in
  List.iter
    (fun l ->
      if not (Float.is_finite l) || l < 0. || l >= 1. then
        invalid_arg "Experiments.tail_grid: loss must be in [0, 1)")
    losses;
  let coords =
    List.concat_map
      (fun impl ->
        List.concat_map (fun loss -> List.map (fun rate -> (impl, loss, rate)) rates)
          losses)
      impls
  in
  let cells =
    List.map
      (fun (impl, loss, rate) () ->
        let faults = if loss > 0. then Some (Faults.Spec.loss loss) else None in
        load_cell ?faults ?net ~nodes ~impl
          { config with Load.Clients.rate }
          ())
      coords
  in
  let results = run_cells ?pool cells in
  let grid = List.combine coords results in
  let baseline impl rate =
    match
      List.find_opt (fun ((i, l, r), _) -> i = impl && l = 0. && r = rate) grid
    with
    | Some (_, m) -> m
    | None -> assert false
  in
  List.map
    (fun ((impl, loss, rate), m) ->
      let b = baseline impl rate in
      let amp bp p = if bp > 0. then p /. bp else Float.nan in
      {
        tc_impl = impl;
        tc_loss = loss;
        tc_rate = rate;
        tc_metrics = m;
        tc_amp99 = amp b.Load.Metrics.p99_ms m.Load.Metrics.p99_ms;
        tc_amp999 = amp b.Load.Metrics.p999_ms m.Load.Metrics.p999_ms;
      })
    grid

let pp_tail_cell fmt c =
  Format.fprintf fmt
    "%-10s loss=%5.2f%%  rate=%6.0f/s  p50 %7.3f  p99 %8.3f  p99.9 %8.3f ms  amp99 %6.1fx  amp99.9 %6.1fx"
    (Cluster.impl_label c.tc_impl) (100. *. c.tc_loss) c.tc_rate
    c.tc_metrics.Load.Metrics.p50_ms c.tc_metrics.Load.Metrics.p99_ms
    c.tc_metrics.Load.Metrics.p999_ms c.tc_amp99 c.tc_amp999

(* The load-side complement of the paper's §4.3 sequencer accounting:
   closed-loop group senders with zero think time, scaled until the
   sequencer is the bottleneck.  Rank 0 hosts the sequencer and never
   sends, so its utilization is pure sequencing. *)
let sequencer_senders = [ 1; 2; 4; 7 ]

let sequencer_saturation ?pool ?faults ?checked ?net ?(nodes = 8)
    ?(senders = sequencer_senders) ?(clients_per_node = 2)
    ?(config = Load.Clients.default) ?(impls = load_impls) ?policy () =
  let cfg =
    {
      config with
      Load.Clients.op = Load.Clients.Group;
      arrival = Load.Arrival.Closed 0;
      clients_per_node;
    }
  in
  let cells =
    List.concat_map
      (fun impl ->
        List.map
          (fun s () ->
            if s >= nodes then
              invalid_arg "Experiments.sequencer_saturation: senders >= nodes";
            let client_ranks = List.init s (fun i -> i + 1) in
            load_cell ?faults ?checked ?net ?policy ~client_ranks ~nodes ~impl
              cfg ())
          senders)
      impls
  in
  let results = run_cells ?pool cells in
  let ns = List.length senders in
  List.mapi
    (fun i impl ->
      let points = List.filteri (fun j _ -> j / ns = i) results in
      (impl, List.combine senders points))
    impls

let pp_saturation_row fmt (s, m) =
  Format.fprintf fmt
    "%-10s senders=%-2d  %8.1f msg/s  p50 %7.3f ms  p99 %7.3f ms  seq %5.1f%%%s"
    m.Load.Metrics.label s m.Load.Metrics.achieved m.Load.Metrics.p50_ms
    m.Load.Metrics.p99_ms
    (100. *. m.Load.Metrics.seq_util)
    (if m.Load.Metrics.violations = 0 then ""
     else Printf.sprintf "  %d VIOLATIONS" m.Load.Metrics.violations)

(* The tentpole sweep: the same closed-loop sender grid, but varying the
   protocol family around the user-space sequencer instead of the stack.
   Every policy runs the identical workload, so the capacity curves are
   before/after comparable point by point — [Single] is the 725 msg/s
   wall, each other policy is one engineering answer to it. *)
let sequencer_policies = Panda.Seq_policy.sweep

let sequencer_policy_sweep ?pool ?faults ?checked ?net ?(nodes = 8)
    ?(senders = sequencer_senders) ?(clients_per_node = 2)
    ?(config = Load.Clients.default) ?(impl = Cluster.User)
    ?(policies = sequencer_policies) () =
  let cfg =
    {
      config with
      Load.Clients.op = Load.Clients.Group;
      arrival = Load.Arrival.Closed 0;
      clients_per_node;
    }
  in
  let cells =
    List.concat_map
      (fun policy ->
        List.map
          (fun s () ->
            if s >= nodes then
              invalid_arg "Experiments.sequencer_policy_sweep: senders >= nodes";
            let client_ranks = List.init s (fun i -> i + 1) in
            load_cell ?faults ?checked ?net ~policy ~client_ranks ~nodes ~impl
              cfg ())
          senders)
      policies
  in
  let results = run_cells ?pool cells in
  let ns = List.length senders in
  List.mapi
    (fun i policy ->
      let points = List.filteri (fun j _ -> j / ns = i) results in
      (policy, List.combine senders points))
    policies

let pp_policy_row fmt (policy, (s, m)) =
  let shard_note =
    if Array.length m.Load.Metrics.per_shard > 1 then
      Printf.sprintf "  shards=[%s]"
        (String.concat ";"
           (Array.to_list (Array.map string_of_int m.Load.Metrics.per_shard)))
    else ""
  in
  Format.fprintf fmt
    "%-10s senders=%-2d  %8.1f msg/s  p50 %7.3f ms  p99 %7.3f ms  seq %5.1f%%%s%s"
    (Panda.Seq_policy.to_string policy)
    s m.Load.Metrics.achieved m.Load.Metrics.p50_ms m.Load.Metrics.p99_ms
    (100. *. m.Load.Metrics.seq_util)
    shard_note
    (if m.Load.Metrics.violations = 0 then ""
     else Printf.sprintf "  %d VIOLATIONS" m.Load.Metrics.violations)

(* ------------------------------------------------------------------ *)
(* One-sided crossover: the DHT workload over all four stacks across
   network eras.  Each (era, mix, stack) runs two independent cells — an
   open-loop low-rate latency probe and a closed-loop capacity cell —
   and the capacity cell's recorder ledger is partitioned into the cost
   components the crossover argument turns on. *)

(* Partition of the window's CPU ledger.  The four CPU buckets enumerate
   every (layer, is_cpu cause) cell, so their sum must equal the
   recorder's CPU total; [ol_residual_ms] is the difference and any
   nonzero value means a charge escaped the attribution. *)
type os_ledger = {
  ol_initiator_ms : float;
  ol_target_ms : float;
  ol_nic_ms : float;
  ol_stack_ms : float;
  ol_wire_hdr_ms : float;
  ol_cpu_ms : float;
  ol_residual_ms : float;
}

let os_ledger_of r =
  let ms ns = float_of_int ns /. 1e6 in
  let init = ref 0 and target = ref 0 and nic = ref 0 and stack = ref 0 in
  List.iter
    (fun layer ->
      List.iter
        (fun cause ->
          if Obs.Cause.is_cpu cause then
            let v = Obs.Recorder.ledger_ns r ~layer ~cause in
            match (layer, cause) with
            | Obs.Layer.Onesided, (Obs.Cause.Uk_crossing | Obs.Cause.Offload) ->
              target := !target + v
            | Obs.Layer.Onesided, _ -> init := !init + v
            | Obs.Layer.Nic, _ -> nic := !nic + v
            | _, _ -> stack := !stack + v)
        Obs.Cause.all)
    Obs.Layer.all;
  let total = Obs.Recorder.cpu_ns r in
  {
    ol_initiator_ms = ms !init;
    ol_target_ms = ms !target;
    ol_nic_ms = ms !nic;
    ol_stack_ms = ms !stack;
    ol_wire_hdr_ms = ms (Obs.Recorder.cause_ns r Obs.Cause.Header_wire);
    ol_cpu_ms = ms total;
    ol_residual_ms = ms (total - (!init + !target + !nic + !stack));
  }

type xcell = {
  xc_net : string;
  xc_stack : Cluster.stack;
  xc_read_pct : int;
  xc_latency : Load.Metrics.t;  (** open-loop low-rate probe *)
  xc_capacity : Load.Metrics.t;  (** closed-loop, zero think time *)
  xc_ledger : os_ledger;  (** the capacity cell's window ledger *)
  xc_wire_util : float;  (** busiest segment over the capacity window *)
  xc_gets : int;
  xc_puts : int;
  xc_dht_violations : int;
}

(* One DHT measurement on a fresh cluster.  Returns the window metrics
   plus the ledger partition, the busiest segment's utilization over the
   window, and the DHT's own coherence counters (client-observed torn
   blocks plus the post-drain at-rest scan). *)
let dht_cell ?faults ?(checked = false) ~net ~stack ~read_pct ~params ~nodes
    cfg () =
  let cluster = Cluster.create ~net ~n:nodes () in
  let eng = cluster.Cluster.eng in
  (match faults with
   | Some spec -> ignore (Faults.Inject.install eng cluster.Cluster.topo spec)
   | None -> ());
  let checker = if checked then Some (Faults.Invariants.create ()) else None in
  let dp = { params with Apps.Dht.dh_read_pct = read_pct } in
  let recorder = Obs.Recorder.create () in
  (* Wire-busy snapshots at the window edges (scheduled before the load
     generator's own edge callbacks; segment busy time is not touched by
     either callback, so the order within the instant is immaterial). *)
  let segs = cluster.Cluster.topo.Net.Topology.segments in
  let wire0 = Array.make (Array.length segs) 0 in
  let wire1 = Array.make (Array.length segs) 0 in
  let t0 = Sim.Engine.now eng in
  ignore
    (Sim.Engine.at eng (t0 + cfg.Load.Clients.warmup) (fun () ->
         Array.iteri (fun i s -> wire0.(i) <- Net.Segment.busy_time s) segs));
  ignore
    (Sim.Engine.at eng
       (t0 + cfg.Load.Clients.warmup + cfg.Load.Clients.window)
       (fun () ->
         Array.iteri (fun i s -> wire1.(i) <- Net.Segment.busy_time s) segs));
  let label = Cluster.stack_label stack in
  let run_load dht =
    Load.Clients.run_custom cfg ~eng ~machines:cluster.Cluster.machines ~label
      ~op_name:"dht" ~recorder
      ~op:(fun rank rng -> Apps.Dht.client_op dht ~rank rng)
      ()
  in
  let dht, m =
    match stack with
    | Cluster.Rpc_stack impl ->
      let backends = Cluster.backends ?checker cluster impl in
      let dht = Apps.Dht.create_rpc ~params:dp ~backends ~server:0 () in
      (dht, run_load dht)
    | Cluster.One_sided ->
      let rnics = Cluster.rnics cluster in
      (match checker with
       | Some c -> Faults.Invariants.attach_rnics c rnics
       | None -> ());
      let dht = Apps.Dht.create_onesided ~params:dp ~rnics ~server:0 () in
      (dht, run_load dht)
  in
  let violations =
    match checker with
    | Some c ->
      Faults.Invariants.finalize c;
      Faults.Invariants.n_violations c
    | None -> 0
  in
  let m = { m with Load.Metrics.violations } in
  let window_s = Sim.Time.to_sec cfg.Load.Clients.window in
  let wire_util = ref 0. in
  Array.iteri
    (fun i _ ->
      wire_util :=
        Float.max !wire_util
          (Float.max 0. (Sim.Time.to_sec (wire1.(i) - wire0.(i)) /. window_s)))
    segs;
  let dviol = Apps.Dht.violations dht + Apps.Dht.check_at_rest dht in
  (m, os_ledger_of recorder, !wire_util, Apps.Dht.gets dht, Apps.Dht.puts dht, dviol)

let crossover_nets = [ Params.net10m; Params.net100m; Params.net1g ]

let onesided_crossover ?pool ?faults ?checked
    ?(nets = crossover_nets) ?(stacks = Cluster.all_stacks)
    ?(read_pcts = [ 90 ]) ?(nodes = 4) ?(params = Apps.Dht.default_params)
    ?(config = { Load.Clients.default with Load.Clients.clients_per_node = 2 })
    () =
  let lat_cfg =
    { config with Load.Clients.arrival = Load.Arrival.Uniform; rate = 100. }
  in
  let cap_cfg =
    { config with Load.Clients.arrival = Load.Arrival.Closed 0 }
  in
  let cells =
    List.concat_map
      (fun net ->
        List.concat_map
          (fun read_pct ->
            List.map
              (fun stack () ->
                let lat, _, _, _, _, lat_viol =
                  dht_cell ?faults ?checked ~net ~stack ~read_pct ~params
                    ~nodes lat_cfg ()
                in
                let cap, ledger, wire, gets, puts, cap_viol =
                  dht_cell ?faults ?checked ~net ~stack ~read_pct ~params
                    ~nodes cap_cfg ()
                in
                {
                  xc_net = net.Params.np_name;
                  xc_stack = stack;
                  xc_read_pct = read_pct;
                  xc_latency = lat;
                  xc_capacity = cap;
                  xc_ledger = ledger;
                  xc_wire_util = wire;
                  xc_gets = gets;
                  xc_puts = puts;
                  xc_dht_violations = lat_viol + cap_viol;
                })
              stacks)
          read_pcts)
      nets
  in
  run_cells ?pool cells

type crossover_row = {
  xs_net : string;
  xs_read_pct : int;
  xs_best_rpc : string;
  xs_rpc_capacity : float;
  xs_os_capacity : float;
  xs_os_wins : bool;
  xs_mechanism : string;
}

let crossover_summary cells =
  let keys =
    List.fold_left
      (fun acc c ->
        let k = (c.xc_net, c.xc_read_pct) in
        if List.mem k acc then acc else acc @ [ k ])
      [] cells
  in
  List.filter_map
    (fun (net, pct) ->
      let group =
        List.filter (fun c -> c.xc_net = net && c.xc_read_pct = pct) cells
      in
      let rpcs =
        List.filter
          (fun c ->
            match c.xc_stack with Cluster.Rpc_stack _ -> true | _ -> false)
          group
      in
      let os =
        List.find_opt (fun c -> c.xc_stack = Cluster.One_sided) group
      in
      match (rpcs, os) with
      | [], _ | _, None -> None
      | r0 :: rest, Some os ->
        let best =
          List.fold_left
            (fun b c ->
              if
                c.xc_capacity.Load.Metrics.achieved
                > b.xc_capacity.Load.Metrics.achieved
              then c
              else b)
            r0 rest
        in
        let bm = best.xc_capacity and om = os.xc_capacity in
        let os_wins = om.Load.Metrics.achieved > bm.Load.Metrics.achieved in
        (* The ledger differential: which cost component flips (or holds)
           the winner.  When one-sided wins, the best RPC stack's server
           thread is the bottleneck — protocol+app CPU the one-sided path
           simply does not have (its stack bucket is 0 and its target CPU
           is all interrupt context).  When RPC holds, the wire is the
           common bottleneck and the one-sided path pays more round trips
           per logical op on it. *)
        let mechanism =
          if os_wins then
            Printf.sprintf
              "server CPU flips it: %s server thread %.0f%% busy (stack+app CPU %.1f ms) vs one-sided 0 thread CPU (%.1f ms target, all interrupt; stack bucket %.1f ms)"
              (Cluster.stack_label best.xc_stack)
              (100. *. bm.Load.Metrics.server_thread_util)
              best.xc_ledger.ol_stack_ms os.xc_ledger.ol_target_ms
              os.xc_ledger.ol_stack_ms
          else
            Printf.sprintf
              "wire holds it: segment util %.0f%% (%s) vs %.0f%% (one-sided, %d–%d wire round trips per op)"
              (100. *. best.xc_wire_util)
              (Cluster.stack_label best.xc_stack)
              (100. *. os.xc_wire_util) 2 3
        in
        Some
          {
            xs_net = net;
            xs_read_pct = pct;
            xs_best_rpc = Cluster.stack_label best.xc_stack;
            xs_rpc_capacity = bm.Load.Metrics.achieved;
            xs_os_capacity = om.Load.Metrics.achieved;
            xs_os_wins = os_wins;
            xs_mechanism = mechanism;
          })
    keys

let pp_xcell fmt c =
  Format.fprintf fmt
    "%-7s %-10s r%d%%  cap %8.1f op/s  p50 %6.3f ms  srv %5.1f%% (thr %5.1f%%)  wire %5.1f%%  stackCPU %7.2f ms  tgt %6.2f ms  resid %.3f ms%s"
    c.xc_net
    (Cluster.stack_label c.xc_stack)
    c.xc_read_pct c.xc_capacity.Load.Metrics.achieved
    c.xc_latency.Load.Metrics.p50_ms
    (100. *. c.xc_capacity.Load.Metrics.server_util)
    (100. *. c.xc_capacity.Load.Metrics.server_thread_util)
    (100. *. c.xc_wire_util) c.xc_ledger.ol_stack_ms c.xc_ledger.ol_target_ms
    c.xc_ledger.ol_residual_ms
    (if c.xc_dht_violations + c.xc_capacity.Load.Metrics.violations = 0 then ""
     else
       Printf.sprintf "  %d VIOLATIONS"
         (c.xc_dht_violations + c.xc_capacity.Load.Metrics.violations))

let pp_crossover_row fmt r =
  Format.fprintf fmt "%-7s r%d%%  best rpc %-10s %8.1f op/s  one-sided %8.1f op/s  %s — %s"
    r.xs_net r.xs_read_pct r.xs_best_rpc r.xs_rpc_capacity r.xs_os_capacity
    (if r.xs_os_wins then "ONE-SIDED WINS" else "rpc holds")
    r.xs_mechanism

let ablation_continuations ?pool ?(procs = 16) () =
  let app = Runner.app_named "rl" in
  match
    Runner.run_many ?pool [ (Cluster.Kernel, procs, app); (Cluster.User, procs, app) ]
  with
  | [ k; u ] ->
    [
      ("kernel (blocked server threads), s", k.Runner.o_seconds);
      ("user (continuations), s", u.Runner.o_seconds);
    ]
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Cluster scale: 64-512-node multi-segment pools running the sharded
   key/value service over any stack, with Zipf key routing and
   ledger-driven object migration.  One cell = one fresh cluster: a
   server on the first rank of every segment, the last non-server rank
   reserved for the rebalancing controller (reserved in every cell, so
   static and rebalanced runs drive the identical client population),
   everything else a client. *)

type ccell = {
  cc_nodes : int;
  cc_stack : Cluster.stack;
  cc_skew : Load.Keys.skew;
  cc_metrics : Load.Metrics.t;
  cc_wire_max : float;  (** busiest segment utilization over the window *)
  cc_wire_mean : float;
  cc_cross_frac : float;
      (** inter-segment share: switch-forwarded frames over all frames
          carried during the window *)
  cc_switch_fps : float;  (** switch forwarding rate over the window, frames/s *)
  cc_server_max : float;  (** busiest server machine over the window *)
  cc_server_mean : float;
  cc_gets : int;
  cc_puts : int;
  cc_dedup_hits : int;
  cc_relays : int;
  cc_migrations : int;
  cc_moves : int;  (** rebalancer decisions (of which forced: see stats) *)
  cc_service_viol : int;  (** service conformance: torn blocks, lost/dup puts *)
}

let cluster_controller_rank cluster =
  let servers = Cluster.server_ranks cluster in
  let n = Array.length cluster.Cluster.machines in
  let rec last r = if List.mem r servers then last (r - 1) else r in
  last (n - 1)

let cluster_default_config =
  {
    Load.Clients.default with
    Load.Clients.clients_per_node = 1;
    warmup = Sim.Time.ms 100;
    window = Sim.Time.ms 400;
  }

let cluster_cell ?faults ?(checked = false) ?net ?lanes ?(shards = 32)
    ?(replicas = 1) ?(service_params = Shard.Service.default_params) ?rebalance
    ~nodes ~stack ~skew cfg () =
  let cluster = Cluster.create ?net ?lanes ~n:nodes () in
  let eng = cluster.Cluster.eng in
  install_faults ?faults eng cluster.Cluster.topo;
  let checker = if checked then Some (Faults.Invariants.create ()) else None in
  (* The one-sided service has no server threads to hand shards between,
     so it runs unreplicated and statically placed. *)
  let replicas = match stack with Cluster.One_sided -> 1 | _ -> replicas in
  let p =
    {
      service_params with
      Shard.Service.sv_shards = shards;
      sv_replicas = replicas;
      sv_skew = skew;
    }
  in
  let server_ranks = Array.of_list (Cluster.server_ranks cluster) in
  let router = Shard.Router.create ~shards ~replicas ~servers:server_ranks in
  let lane_of = Cluster.machine_lane cluster in
  let controller = cluster_controller_rank cluster in
  let client_ranks =
    List.filter
      (fun r -> r <> controller && not (Array.mem r server_ranks))
      (List.init nodes Fun.id)
  in
  (* Window-edge snapshots of the wire, switch and server-machine ledgers
     (read-only, so their order within the instant is immaterial). *)
  let segs = cluster.Cluster.topo.Net.Topology.segments in
  let nseg = Array.length segs in
  let wire0 = Array.make nseg 0 and wire1 = Array.make nseg 0 in
  let carried0 = ref 0 and carried1 = ref 0 in
  let fwd0 = ref 0 and fwd1 = ref 0 in
  let nsrv = Array.length server_ranks in
  let srv0 = Array.make nsrv 0 and srv1 = Array.make nsrv 0 in
  let snapshot wire carried fwd srv () =
    Array.iteri (fun i s -> wire.(i) <- Net.Segment.busy_time s) segs;
    carried :=
      Array.fold_left (fun acc s -> acc + Net.Segment.frames_carried s) 0 segs;
    (match cluster.Cluster.topo.Net.Topology.switch with
     | Some sw -> fwd := Net.Switch.frames_forwarded sw
     | None -> fwd := 0);
    Array.iteri
      (fun i rank ->
        srv.(i) <-
          Machine.Cpu.busy_time
            (Machine.Mach.cpu cluster.Cluster.machines.(rank)))
      server_ranks
  in
  let t0 = Sim.Engine.now eng in
  ignore
    (Sim.Engine.at eng
       (t0 + cfg.Load.Clients.warmup)
       (snapshot wire0 carried0 fwd0 srv0));
  ignore
    (Sim.Engine.at eng
       (t0 + cfg.Load.Clients.warmup + cfg.Load.Clients.window)
       (snapshot wire1 carried1 fwd1 srv1));
  let run_load service =
    Load.Clients.run_custom cfg ~eng ~machines:cluster.Cluster.machines
      ~label:(Cluster.stack_label stack) ~op_name:"shard" ~lane_of
      ~server:server_ranks.(0) ~client_ranks
      ~op:(fun rank rng -> Shard.Service.client_op service ~rank rng)
      ()
  in
  let service, stats_opt =
    match stack with
    | Cluster.Rpc_stack impl ->
      let backends = Cluster.backends ?checker cluster impl in
      let service =
        Shard.Service.create_rpc ~params:p ~backends ~router ~lane_of ()
      in
      let stats =
        match rebalance with
        | None -> None
        | Some config ->
          Some
            (Shard.Rebalancer.spawn service
               ~machines:cluster.Cluster.machines ~via:controller
               ~until:(t0 + cfg.Load.Clients.warmup + cfg.Load.Clients.window)
               ~lane_of ~config ())
      in
      (service, stats)
    | Cluster.One_sided ->
      let rnics = Cluster.rnics cluster in
      (match checker with
       | Some c -> Faults.Invariants.attach_rnics c rnics
       | None -> ());
      (Shard.Service.create_onesided ~params:p ~rnics ~router (), None)
  in
  (match checker with
   | Some c -> Shard.Service.register_checker service c
   | None -> ());
  let m = run_load service in
  let violations =
    match checker with
    | Some c ->
      Faults.Invariants.finalize c;
      Faults.Invariants.n_violations c
    | None -> 0
  in
  let m = { m with Load.Metrics.violations } in
  let window_s = Sim.Time.to_sec cfg.Load.Clients.window in
  let wire_max = ref 0. and wire_sum = ref 0. in
  Array.iteri
    (fun i _ ->
      let u = Float.max 0. (Sim.Time.to_sec (wire1.(i) - wire0.(i)) /. window_s) in
      wire_max := Float.max !wire_max u;
      wire_sum := !wire_sum +. u)
    segs;
  let srv_max = ref 0. and srv_sum = ref 0. in
  Array.iteri
    (fun i _ ->
      let u = Float.max 0. (Sim.Time.to_sec (srv1.(i) - srv0.(i)) /. window_s) in
      srv_max := Float.max !srv_max u;
      srv_sum := !srv_sum +. u)
    server_ranks;
  let carried = !carried1 - !carried0 and fwd = !fwd1 - !fwd0 in
  {
    cc_nodes = nodes;
    cc_stack = stack;
    cc_skew = skew;
    cc_metrics = m;
    cc_wire_max = !wire_max;
    cc_wire_mean = !wire_sum /. float_of_int nseg;
    cc_cross_frac = (if carried = 0 then 0. else float_of_int fwd /. float_of_int carried);
    cc_switch_fps = float_of_int fwd /. window_s;
    cc_server_max = !srv_max;
    cc_server_mean = !srv_sum /. float_of_int nsrv;
    cc_gets = Shard.Service.gets service;
    cc_puts = Shard.Service.puts_acked service;
    cc_dedup_hits = Shard.Service.dedup_hits service;
    cc_relays = Shard.Service.relays service;
    cc_migrations = Shard.Service.migrations service;
    cc_moves = (match stats_opt with Some s -> s.Shard.Rebalancer.rs_moves | None -> 0);
    cc_service_viol =
      Shard.Service.violations service
      + List.length (Shard.Service.check_at_rest service);
  }

let cluster_nodes = [ 64; 256 ]
let cluster_skews = [ Load.Keys.Uniform; Load.Keys.Zipf 0.99 ]
let cluster_stacks = Cluster.all_stacks
let cluster_rates = [ 2000.; 4000.; 8000. ]

(* The tentpole sweep: nodes x stack x skew, each combination ramped over
   offered rates to its saturation knee.  Open-loop uniform arrivals so
   the knee is against a configured offered load. *)
let cluster_sweep ?pool ?faults ?checked ?net ?lanes ?shards ?replicas
    ?service_params ?rebalance ?(nodes = cluster_nodes)
    ?(stacks = cluster_stacks) ?(skews = cluster_skews)
    ?(rates = cluster_rates) ?(config = cluster_default_config) () =
  let combos =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun stack -> List.map (fun skew -> (n, stack, skew)) skews)
          stacks)
      nodes
  in
  let cells =
    List.concat_map
      (fun (n, stack, skew) ->
        List.map
          (fun rate () ->
            cluster_cell ?faults ?checked ?net ?lanes ?shards ?replicas
              ?service_params ?rebalance ~nodes:n ~stack ~skew
              { config with Load.Clients.rate }
              ())
          rates)
      combos
  in
  let results = run_cells ?pool cells in
  let nr = List.length rates in
  List.mapi
    (fun i combo ->
      let points = List.filteri (fun j _ -> j / nr = i) results in
      let curve = Load.Sweep.curve (List.map (fun c -> c.cc_metrics) points) in
      (combo, points, Load.Sweep.knee curve))
    combos

(* The migration A/B: the identical skewed closed-loop workload twice —
   static placement vs the ledger-driven rebalancer — so the achieved
   difference is attributable to object migration alone.  The window is
   long (1.5 s) and the rebalancer ticks fast (50 ms) so the moves land
   early and the stabilized placement dominates the measurement. *)
let cluster_ab_config =
  {
    cluster_default_config with
    Load.Clients.arrival = Load.Arrival.Closed 0;
    warmup = Sim.Time.ms 100;
    window = Sim.Time.ms 1500;
  }

let cluster_ab_rebalance =
  {
    Shard.Rebalancer.default_config with
    Shard.Rebalancer.rb_interval = Sim.Time.ms 50;
  }

let cluster_migration_ab ?pool ?faults ?checked ?net ?lanes ?shards ?replicas
    ?service_params ?(rebalance = cluster_ab_rebalance) ?(nodes = 64)
    ?(stack = Cluster.Rpc_stack Cluster.User_optimized)
    ?(skew = Load.Keys.Zipf 1.2) ?(config = cluster_ab_config) () =
  let cfg = { config with Load.Clients.arrival = Load.Arrival.Closed 0 } in
  let cells =
    [
      (fun () ->
        cluster_cell ?faults ?checked ?net ?lanes ?shards ?replicas
          ?service_params ~nodes ~stack ~skew cfg ());
      (fun () ->
        cluster_cell ?faults ?checked ?net ?lanes ?shards ?replicas
          ?service_params ~rebalance ~nodes ~stack ~skew cfg ());
    ]
  in
  match run_cells ?pool cells with
  | [ static_cell; rebalanced ] -> (static_cell, rebalanced)
  | _ -> assert false

let pp_ccell fmt c =
  Format.fprintf fmt
    "n=%-4d %-10s %-9s  %9.1f op/s  p50 %6.3f ms  p99 %7.3f ms  srv %5.1f%%/%5.1f%%  wire %5.1f%%  x-seg %4.1f%%  mig %d%s%s"
    c.cc_nodes
    (Cluster.stack_label c.cc_stack)
    (Load.Keys.skew_label c.cc_skew)
    c.cc_metrics.Load.Metrics.achieved c.cc_metrics.Load.Metrics.p50_ms
    c.cc_metrics.Load.Metrics.p99_ms
    (100. *. c.cc_server_max)
    (100. *. c.cc_server_mean)
    (100. *. c.cc_wire_max)
    (100. *. c.cc_cross_frac)
    c.cc_migrations
    (if c.cc_dedup_hits = 0 then ""
     else Printf.sprintf "  dedup %d relays %d" c.cc_dedup_hits c.cc_relays)
    (if c.cc_service_viol + c.cc_metrics.Load.Metrics.violations = 0 then ""
     else
       Printf.sprintf "  %d VIOLATIONS"
         (c.cc_service_viol + c.cc_metrics.Load.Metrics.violations))

let pp_knee fmt = function
  | Load.Sweep.Knee r -> Format.fprintf fmt "knee @ %.0f op/s" r
  | Load.Sweep.Unsaturated -> Format.fprintf fmt "unsaturated"
  | Load.Sweep.Saturated -> Format.fprintf fmt "saturated from the first point"
