(** Arrival processes for load generation.

    Open-loop processes ([Uniform], [Poisson]) issue requests at a
    configured offered rate regardless of how fast the system responds —
    a client that finds itself behind schedule issues back-to-back until
    it catches up, so latency measured from the {e scheduled} arrival
    time includes the backlog (no coordinated omission).  [Closed] models
    interactive clients: each waits for its previous request to complete,
    thinks, then issues the next; offered load equals achieved load by
    construction. *)

type t =
  | Uniform  (** deterministic, evenly spaced arrivals *)
  | Poisson  (** exponential inter-arrival gaps via {!Sim.Rng} *)
  | Closed of Sim.Time.span
      (** closed loop: think time between completion and next request *)

val is_closed : t -> bool

val gap : t -> rate:float -> Sim.Rng.t -> Sim.Time.span
(** [gap t ~rate rng] draws the next inter-arrival gap for one client
    issuing [rate] requests per second ([Uniform] consumes no
    randomness; [Closed] returns its think time).
    @raise Invalid_argument on a non-positive [rate] for an open-loop
    process. *)

val parse : string -> (t, string) result
(** ["uniform"], ["poisson"], or ["closed=US"] (think time in
    microseconds, e.g. ["closed=500"]). *)

val to_string : t -> string
(** Canonical form; [parse (to_string t)] round-trips. *)
