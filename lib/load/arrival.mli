(** Arrival processes for load generation.

    Open-loop processes ([Uniform], [Poisson], [Ramp]) issue requests at
    a configured offered rate regardless of how fast the system responds
    — a client that finds itself behind schedule issues back-to-back
    until it catches up, so latency measured from the {e scheduled}
    arrival time includes the backlog (no coordinated omission).
    [Closed] models interactive clients: each waits for its previous
    request to complete, thinks, then issues the next; offered load
    equals achieved load by construction.  [Ramp] is an open-loop
    diurnal shape: the instantaneous rate follows a raised cosine
    between [floor × rate] and the peak [rate].  [Replay] issues the
    arrivals recorded in a {!Load.Trace} file instead of drawing gaps —
    the configured rate is ignored and the trace's timestamps are the
    schedule. *)

type ramp = {
  rp_period : Sim.Time.span;  (** one full diurnal cycle *)
  rp_floor : float;  (** trough rate as a fraction of peak, in (0, 1] *)
}

type replay = {
  rp_path : string;  (** trace file ({!Load.Trace} text format) *)
  rp_scale : float;  (** time-scale factor applied on load (>0); [< 1]
                         compresses the trace (higher offered load) *)
}

type t =
  | Uniform  (** deterministic, evenly spaced arrivals *)
  | Poisson  (** exponential inter-arrival gaps via {!Sim.Rng} *)
  | Closed of Sim.Time.span
      (** closed loop: think time between completion and next request *)
  | Ramp of ramp  (** diurnal raised-cosine rate modulation *)
  | Replay of replay  (** timestamped trace replay *)

val is_closed : t -> bool
val is_replay : t -> bool

val ramp_mult : ramp -> now:Sim.Time.t -> float
(** The diurnal multiplier at absolute time [now], in [floor, 1]. *)

val gap : t -> rate:float -> now:Sim.Time.t -> Sim.Rng.t -> Sim.Time.span
(** [gap t ~rate ~now rng] draws the next inter-arrival gap for one
    client issuing [rate] requests per second ([Uniform] consumes no
    randomness; [Closed] returns its think time; [Ramp] draws an
    exponential gap at the instantaneous rate for absolute time [now]).
    @raise Invalid_argument on a non-positive [rate] for an open-loop
    process, or for [Replay], whose arrivals come from the trace, not
    from gap draws. *)

val parse : string -> (t, string) result
(** ["uniform"], ["poisson"], ["closed=US"] (think time in microseconds,
    e.g. ["closed=500"]), ["ramp:S"] or ["ramp:S/FLOOR"] (period in
    seconds, floor defaulting to 0.1), ["replay:FILE"] or
    ["replay:FILE\@SCALE"].  The replay scale suffix is the last ['@']
    whose tail parses as a positive number, so paths containing ['@']
    still work unscaled. *)

val to_string : t -> string
(** Canonical form; [parse (to_string t)] round-trips (for [Replay],
    provided the path does not itself end in ['@'] + number). *)
