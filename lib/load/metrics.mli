(** One measured operating point of one stack under sustained load. *)

type t = {
  label : string;  (** stack label, e.g. "kernel" / "user" / "optimized" *)
  op : string;  (** "rpc" or "group" *)
  offered : float;
      (** offered load, ops/s — the configured arrival rate for open-loop
          runs, equal to [achieved] for closed-loop runs *)
  achieved : float;
      (** completions inside the measurement window / window length, ops/s *)
  issued : int;  (** requests whose scheduled arrival fell in the window *)
  completed : int;  (** requests that completed inside the window *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  p999_ms : float;
  mean_ms : float;
  max_ms : float;
      (** latency is completion minus {e scheduled} arrival, so open-loop
          backlog past saturation shows up in the tail *)
  client_util : float;  (** max client-machine CPU busy fraction over the window *)
  server_util : float;  (** RPC-server (or sequencer-rank) machine busy fraction *)
  server_thread_util : float;
      (** the thread-context share of [server_util], interrupt time
          excluded — exactly 0 for a one-sided data path, where the target
          CPU runs only in interrupt context *)
  seq_util : float;
      (** sequencer machine busy fraction — the dedicated machine when one
          exists, otherwise the sequencer rank's machine; for RPC runs this
          equals [server_util] *)
  ledger_cpu_ms : float;
      (** total CPU ns charged to the Obs ledger over the window, in ms
          (sums every machine; equals the busy-time deltas) *)
  violations : int;  (** conformance violations in checked mode, else 0 *)
  per_shard : int array;
      (** group traffic only: completions inside the window per ordering
          shard, indexed by shard — [[||]] for RPC/custom runs.  Sums to
          [completed]; the spread shows how evenly the key hash balances
          ordering load across sharded sequencers. *)
}

val saturated : ?frac:float -> t -> bool
(** Achieved short of [frac] (default 0.95) of offered. *)

val pp_header : Format.formatter -> unit -> unit
val pp : Format.formatter -> t -> unit
(** One aligned table row per point (pair with [pp_header]). *)
