type t = {
  label : string;
  op : string;
  offered : float;
  achieved : float;
  issued : int;
  completed : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  p999_ms : float;
  mean_ms : float;
  max_ms : float;
  client_util : float;
  server_util : float;
  server_thread_util : float;
  seq_util : float;
  ledger_cpu_ms : float;
  violations : int;
  per_shard : int array;
}

let saturated ?(frac = 0.95) t = t.achieved < frac *. t.offered

let pp_header fmt () =
  Format.fprintf fmt "%-10s %5s %9s %9s  %8s %8s %8s %9s  %6s %6s%s" "stack" "op"
    "offered/s" "achieved" "p50 ms" "p95 ms" "p99 ms" "p99.9 ms" "srv%" "seq%" ""

let pp fmt t =
  Format.fprintf fmt
    "%-10s %5s %9.1f %9.1f  %8.3f %8.3f %8.3f %9.3f  %5.1f%% %5.1f%%%s"
    t.label t.op t.offered t.achieved t.p50_ms t.p95_ms t.p99_ms t.p999_ms
    (100. *. t.server_util) (100. *. t.seq_util)
    (if t.violations = 0 then ""
     else Printf.sprintf "  %d VIOLATIONS" t.violations)
