type t = Uniform | Poisson | Closed of Sim.Time.span

let is_closed = function Closed _ -> true | _ -> false

let gap t ~rate rng =
  match t with
  | Closed think -> think
  | Uniform | Poisson ->
    if not (Float.is_finite rate) || rate <= 0. then
      invalid_arg (Printf.sprintf "Arrival.gap: rate = %g not positive" rate);
    let mean_ns = 1e9 /. rate in
    (match t with
     | Uniform -> int_of_float mean_ns
     | Poisson ->
       (* Inverse-transform exponential draw; 1 - u is in (0, 1], so the
          log is finite and the gap non-negative. *)
       let u = Sim.Rng.float rng 1. in
       int_of_float (-.mean_ns *. log (1. -. u))
     | Closed _ -> assert false)

let parse s =
  match String.lowercase_ascii (String.trim s) with
  | "uniform" -> Ok Uniform
  | "poisson" -> Ok Poisson
  | s ->
    (match String.index_opt s '=' with
     | Some i when String.sub s 0 i = "closed" ->
       let v = String.sub s (i + 1) (String.length s - i - 1) in
       (match float_of_string_opt v with
        | Some us when Float.is_finite us && us >= 0. ->
          Ok (Closed (Sim.Time.us_f us))
        | _ -> Error (Printf.sprintf "invalid think time %S (microseconds)" v))
     | _ ->
       Error
         (Printf.sprintf "unknown arrival process %S (uniform|poisson|closed=US)" s))

let to_string = function
  | Uniform -> "uniform"
  | Poisson -> "poisson"
  | Closed think -> Printf.sprintf "closed=%g" (Sim.Time.to_us think)
