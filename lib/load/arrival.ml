type ramp = { rp_period : Sim.Time.span; rp_floor : float }
type replay = { rp_path : string; rp_scale : float }

type t =
  | Uniform
  | Poisson
  | Closed of Sim.Time.span
  | Ramp of ramp
  | Replay of replay

let is_closed = function Closed _ -> true | _ -> false
let is_replay = function Replay _ -> true | _ -> false

(* Instantaneous diurnal multiplier: raised cosine between the floor and 1
   over the ramp period, phase-locked to absolute simulation time so every
   client sees the same shape. *)
let ramp_mult { rp_period; rp_floor } ~now =
  let phase = float_of_int (now mod rp_period) /. float_of_int rp_period in
  rp_floor
  +. ((1. -. rp_floor) *. 0.5 *. (1. -. cos (2. *. Float.pi *. phase)))

let exp_gap ~mean_ns rng =
  (* Inverse-transform exponential draw; 1 - u is in (0, 1], so the log is
     finite and the gap non-negative. *)
  let u = Sim.Rng.float rng 1. in
  int_of_float (-.mean_ns *. log (1. -. u))

let gap t ~rate ~now rng =
  match t with
  | Closed think -> think
  | Replay _ ->
    invalid_arg "Arrival.gap: Replay arrivals are driven by their trace"
  | Uniform | Poisson | Ramp _ ->
    if not (Float.is_finite rate) || rate <= 0. then
      invalid_arg (Printf.sprintf "Arrival.gap: rate = %g not positive" rate);
    let mean_ns = 1e9 /. rate in
    (match t with
     | Uniform -> int_of_float mean_ns
     | Poisson -> exp_gap ~mean_ns rng
     | Ramp r ->
       (* Non-homogeneous Poisson approximated by an exponential gap at
          the instantaneous rate; [rate] is the peak (mult = 1) rate. *)
       exp_gap ~mean_ns:(mean_ns /. ramp_mult r ~now) rng
     | Closed _ | Replay _ -> assert false)

let float_of_string_pos v =
  match float_of_string_opt v with
  | Some f when Float.is_finite f && f > 0. -> Some f
  | _ -> None

let parse_ramp v =
  let period_floor =
    match String.index_opt v '/' with
    | None -> Some (v, 0.1)
    | Some i ->
      let f = String.sub v (i + 1) (String.length v - i - 1) in
      (match float_of_string_pos f with
       | Some fl when fl <= 1. -> Some (String.sub v 0 i, fl)
       | _ -> None)
  in
  match period_floor with
  | None -> Error (Printf.sprintf "invalid ramp floor in %S (0 < floor <= 1)" v)
  | Some (p, rp_floor) ->
    (match float_of_string_pos p with
     | Some s ->
       Ok (Ramp { rp_period = Sim.Time.us_f (s *. 1e6); rp_floor })
     | None -> Error (Printf.sprintf "invalid ramp period %S (seconds)" v))

let parse_replay v =
  if v = "" then Error "replay: empty trace path"
  else
    (* The scale suffix is the last '@' whose tail parses as a number, so
       paths containing '@' still work unscaled. *)
    match String.rindex_opt v '@' with
    | Some i
      when float_of_string_pos (String.sub v (i + 1) (String.length v - i - 1))
           <> None ->
      let rp_scale =
        Option.get
          (float_of_string_pos (String.sub v (i + 1) (String.length v - i - 1)))
      in
      Ok (Replay { rp_path = String.sub v 0 i; rp_scale })
    | _ -> Ok (Replay { rp_path = v; rp_scale = 1. })

let parse s =
  let s = String.trim s in
  let lower = String.lowercase_ascii s in
  match lower with
  | "uniform" -> Ok Uniform
  | "poisson" -> Ok Poisson
  | _ ->
    let after i = String.sub s (i + 1) (String.length s - i - 1) in
    (match String.index_opt s ':' with
     | Some i when String.lowercase_ascii (String.sub s 0 i) = "ramp" ->
       parse_ramp (after i)
     | Some i when String.lowercase_ascii (String.sub s 0 i) = "replay" ->
       parse_replay (after i)
     | _ ->
       (match String.index_opt s '=' with
        | Some i when String.lowercase_ascii (String.sub s 0 i) = "closed" ->
          let v = after i in
          (match float_of_string_opt v with
           | Some us when Float.is_finite us && us >= 0. ->
             Ok (Closed (Sim.Time.us_f us))
           | _ -> Error (Printf.sprintf "invalid think time %S (microseconds)" v))
        | _ ->
          Error
            (Printf.sprintf
               "unknown arrival process %S \
                (uniform|poisson|closed=US|ramp:S[/FLOOR]|replay:FILE[@SCALE])"
               s)))

let to_string = function
  | Uniform -> "uniform"
  | Poisson -> "poisson"
  | Closed think -> Printf.sprintf "closed=%g" (Sim.Time.to_us think)
  | Ramp { rp_period; rp_floor } ->
    Printf.sprintf "ramp:%.12g/%.12g" (Sim.Time.to_sec rp_period) rp_floor
  | Replay { rp_path; rp_scale } ->
    if rp_scale = 1. then Printf.sprintf "replay:%s" rp_path
    else Printf.sprintf "replay:%s@%.12g" rp_path rp_scale
