(** Weighted request-size mixes.

    A mix is a non-empty list of [(size_bytes, weight)] pairs; each
    request draws its size with probability proportional to its weight.
    A single-entry mix consumes no randomness, so fixed-size workloads
    stay bit-identical to a mix-free driver. *)

type t

val single : int -> t
val of_list : (int * int) list -> t
(** @raise Invalid_argument on an empty list, negative sizes, or
    non-positive weights. *)

val pick : t -> Sim.Rng.t -> int
val sizes : t -> (int * int) list

val mean_size : t -> float
(** Weight-averaged request size in bytes. *)

val parse : string -> (t, string) result
(** Comma-separated [SIZE] or [SIZExWEIGHT] items, sizes in bytes:
    ["0"], ["1024"], ["64x9,8192x1"]. *)

val to_string : t -> string
(** Canonical form; [parse (to_string t)] round-trips. *)
