type skew = Uniform | Zipf of float

let skew_label = function
  | Uniform -> "uniform"
  | Zipf theta -> Printf.sprintf "zipf:%g" theta

let skew_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "uniform" | "0" -> Some Uniform
  | s when String.length s > 5 && String.sub s 0 5 = "zipf:" -> (
    match float_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some th when th > 0. -> Some (Zipf th)
    | _ -> None)
  | s -> (
    (* A bare number reads as a theta, with 0 meaning uniform. *)
    match float_of_string_opt s with
    | Some 0. -> Some Uniform
    | Some th when th > 0. -> Some (Zipf th)
    | _ -> None)

let zipf_cdf ~keys ~theta =
  let w = Array.init keys (fun i -> (float_of_int (i + 1)) ** -.theta) in
  let total = Array.fold_left ( +. ) 0. w in
  let cdf = Array.make keys 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i x ->
      acc := !acc +. (x /. total);
      cdf.(i) <- !acc)
    w;
  cdf.(keys - 1) <- 1.;
  cdf

let zipf_draw cdf rng =
  let u = Sim.Rng.float rng 1. in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let cdf skew ~keys =
  match skew with Uniform -> None | Zipf theta -> Some (zipf_cdf ~keys ~theta)

let draw ?cdf ~keys rng =
  match cdf with
  | None -> Sim.Rng.int rng keys
  | Some cdf -> zipf_draw cdf rng

let theta = function Uniform -> 0. | Zipf th -> th
