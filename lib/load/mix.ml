type t = { entries : (int * int) list; total : int }

let of_list entries =
  if entries = [] then invalid_arg "Mix.of_list: empty mix";
  List.iter
    (fun (size, w) ->
      if size < 0 then invalid_arg (Printf.sprintf "Mix.of_list: negative size %d" size);
      if w <= 0 then invalid_arg (Printf.sprintf "Mix.of_list: non-positive weight %d" w))
    entries;
  { entries; total = List.fold_left (fun acc (_, w) -> acc + w) 0 entries }

let single size = of_list [ (size, 1) ]
let sizes t = t.entries

let pick t rng =
  match t.entries with
  | [ (size, _) ] -> size (* fixed-size: leave the RNG stream untouched *)
  | entries ->
    let r = Sim.Rng.int rng t.total in
    let rec walk acc = function
      | [] -> assert false
      | (size, w) :: rest -> if r < acc + w then size else walk (acc + w) rest
    in
    walk 0 entries

let mean_size t =
  List.fold_left (fun acc (size, w) -> acc +. (float_of_int size *. float_of_int w))
    0. t.entries
  /. float_of_int t.total

let parse s =
  let items = String.split_on_char ',' (String.trim s) in
  let parse_item it =
    let it = String.trim it in
    match String.index_opt it 'x' with
    | None ->
      (match int_of_string_opt it with
       | Some size when size >= 0 -> Ok (size, 1)
       | _ -> Error (Printf.sprintf "invalid size %S" it))
    | Some i ->
      let sz = String.sub it 0 i in
      let w = String.sub it (i + 1) (String.length it - i - 1) in
      (match (int_of_string_opt sz, int_of_string_opt w) with
       | Some size, Some weight when size >= 0 && weight > 0 -> Ok (size, weight)
       | _ -> Error (Printf.sprintf "invalid mix item %S (want SIZExWEIGHT)" it))
  in
  let rec collect acc = function
    | [] -> Ok (of_list (List.rev acc))
    | it :: rest ->
      (match parse_item it with
       | Ok e -> collect (e :: acc) rest
       | Error _ as e -> e)
  in
  if items = [] || s = "" then Error "empty mix" else collect [] items

let to_string t =
  String.concat ","
    (List.map
       (fun (size, w) ->
         if w = 1 then string_of_int size else Printf.sprintf "%dx%d" size w)
       t.entries)
