(** Keyed workload sources: which key the next operation touches.

    Real key popularity is heavy-tailed; the standard model is Zipf(θ),
    where key [i]'s weight is [(i+1)^-θ].  θ ≈ 0.99 matches classic web
    traces, θ > 1 concentrates most traffic on a handful of keys — the
    regime where a sharded service develops hot spots and placement starts
    to matter. *)

type skew = Uniform | Zipf of float  (** theta > 0 *)

val skew_label : skew -> string
(** ["uniform"] or ["zipf:<theta>"]. *)

val skew_of_string : string -> skew option
(** Accepts ["uniform"], ["zipf:THETA"], or a bare theta (0 = uniform). *)

val theta : skew -> float
(** 0 for [Uniform]. *)

val zipf_cdf : keys:int -> theta:float -> float array
(** Cumulative Zipf(θ) distribution over [0, keys); the last entry is
    pinned to 1.0. *)

val zipf_draw : float array -> Sim.Rng.t -> int
(** One draw from a CDF by binary search: exactly one RNG float. *)

val cdf : skew -> keys:int -> float array option
(** The CDF to pass to {!draw}; [None] for the uniform source. *)

val draw : ?cdf:float array -> keys:int -> Sim.Rng.t -> int
(** One key draw: uniform when [cdf] is absent (one RNG int), Zipf
    otherwise (one RNG float). *)
