(** Timestamped request traces: the replay side of scenario diversity.

    A trace is a sorted list of request arrivals — an offset from the
    start of the run plus a payload size — in a line-oriented text
    format that survives a parse/print round trip bit-exactly:

    {v
    # amoeba-repro trace v1: arrival_us size_bytes
    0.000 0
    1250.000 64
    ...
    v}

    Times are microseconds with nanosecond resolution (three decimals);
    blank lines and [#] comments are ignored.  Traces drive
    {!Load.Clients} unchanged through the {!Load.Arrival.Replay} arrival
    source: entries are dealt round-robin to the client population and
    each request's latency is measured from its {e scheduled} trace
    time, so replay keeps the open-loop no-coordinated-omission
    accounting.

    {!synthesize} generates realistic traces deterministically from a
    seed: a diurnal ramp (raised-cosine between a floor and the peak
    rate) multiplied by periodic burst windows, modulating a Poisson or
    evenly-spaced base process. *)

type entry = {
  at : Sim.Time.t;  (** arrival offset from the start of the run *)
  size : int;  (** request payload bytes *)
}

type t = entry array
(** Entries in non-decreasing [at] order (enforced by every
    constructor). *)

val of_entries : entry list -> t
(** @raise Invalid_argument on negative times/sizes or unsorted input. *)

val length : t -> int

val duration : t -> Sim.Time.span
(** Offset of the last entry; [0] for an empty trace. *)

val scale : float -> t -> t
(** [scale f t] multiplies every arrival offset by [f] (sizes are
    unchanged): [f < 1] compresses the trace — higher offered load —
    and [f > 1] stretches it.
    @raise Invalid_argument unless [f] is finite and positive. *)

val to_string : t -> string
(** Canonical text form (header comment plus one line per entry);
    [parse (to_string t) = Ok t] bit-exactly. *)

val parse : string -> (t, string) result
(** Errors carry a 1-based line number. *)

val load : string -> (t, string) result
(** Reads and parses a trace file; the error includes the path. *)

val save : string -> t -> unit

val synthesize :
  ?base:[ `Poisson | `Uniform ] ->
  ?period:Sim.Time.span ->
  ?floor:float ->
  ?burst_every:Sim.Time.span ->
  ?burst_len:Sim.Time.span ->
  ?burst_mult:float ->
  ?mix:Mix.t ->
  rate:float ->
  duration:Sim.Time.span ->
  seed:int ->
  unit ->
  t
(** Deterministic trace generator: the instantaneous rate at offset [t]
    is [rate * diurnal(t) * burst(t)], where [diurnal] is a raised
    cosine between [floor] (default 0.1) and 1 with period [period]
    (default [duration], one full day-shaped cycle) and [burst] is
    [burst_mult] (default 3) inside periodic windows of [burst_len]
    (default [period/40]) every [burst_every] (default [period/8]), 1
    outside.  [`Poisson] (default) thins a homogeneous Poisson process
    at the peak rate; [`Uniform] spaces arrivals at the deterministic
    instantaneous gap.  Sizes are drawn from [mix] (default null
    requests).  Identical arguments produce identical traces.
    @raise Invalid_argument on a non-positive [rate], [duration],
    [period] or [floor], or [burst_mult < 1]. *)
