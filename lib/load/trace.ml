type entry = { at : Sim.Time.t; size : int }
type t = entry array

let validate entries =
  Array.iteri
    (fun i e ->
      if e.at < 0 then invalid_arg "Trace: negative arrival offset";
      if e.size < 0 then invalid_arg "Trace: negative request size";
      if i > 0 && e.at < entries.(i - 1).at then
        invalid_arg "Trace: arrivals not sorted")
    entries;
  entries

let of_entries l = validate (Array.of_list l)
let length = Array.length
let duration t = if Array.length t = 0 then 0 else t.(Array.length t - 1).at

let scale f t =
  if not (Float.is_finite f) || f <= 0. then
    invalid_arg (Printf.sprintf "Trace.scale: factor = %g not positive" f);
  Array.map (fun e -> { e with at = Sim.Time.us_f (Sim.Time.to_us e.at *. f) }) t

let to_string t =
  let buf = Buffer.create (256 + (Array.length t * 16)) in
  Buffer.add_string buf "# amoeba-repro trace v1: arrival_us size_bytes\n";
  Array.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "%.3f %d\n" (Sim.Time.to_us e.at) e.size))
    t;
  Buffer.contents buf

let parse s =
  let err line msg = Error (Printf.sprintf "trace line %d: %s" line msg) in
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest ->
      let l = String.trim l in
      if l = "" || l.[0] = '#' then go (lineno + 1) acc rest
      else begin
        match String.index_opt l ' ' with
        | None -> err lineno (Printf.sprintf "expected \"arrival_us size\", got %S" l)
        | Some i ->
          let ts = String.sub l 0 i
          and ss = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
          (match (float_of_string_opt ts, int_of_string_opt ss) with
           | Some us, Some size when Float.is_finite us && us >= 0. && size >= 0 ->
             go (lineno + 1) ({ at = Sim.Time.us_f us; size } :: acc) rest
           | _ -> err lineno (Printf.sprintf "bad entry %S" l))
      end
  in
  match go 1 [] lines with
  | Error _ as e -> e
  | Ok entries ->
    (match of_entries entries with
     | t -> Ok t
     | exception Invalid_argument m -> Error m)

let load path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (match parse s with
     | Ok _ as ok -> ok
     | Error e -> Error (Printf.sprintf "%s: %s" path e))

let save path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let pi = 4. *. atan 1.

let synthesize ?(base = `Poisson) ?period ?(floor = 0.1) ?burst_every ?burst_len
    ?(burst_mult = 3.) ?(mix = Mix.single 0) ~rate ~duration ~seed () =
  if not (Float.is_finite rate) || rate <= 0. then
    invalid_arg "Trace.synthesize: rate not positive";
  if duration <= 0 then invalid_arg "Trace.synthesize: duration not positive";
  let period = match period with Some p -> p | None -> duration in
  if period <= 0 then invalid_arg "Trace.synthesize: period not positive";
  if not (Float.is_finite floor) || floor <= 0. || floor > 1. then
    invalid_arg "Trace.synthesize: floor not in (0, 1]";
  if not (Float.is_finite burst_mult) || burst_mult < 1. then
    invalid_arg "Trace.synthesize: burst_mult < 1";
  let burst_every = match burst_every with Some b -> b | None -> period / 8 in
  let burst_len = match burst_len with Some b -> b | None -> period / 40 in
  let rng = Sim.Rng.create ~seed in
  (* Instantaneous rate multiplier: raised-cosine diurnal shape between
     [floor] and 1, times the burst factor inside its periodic windows. *)
  let mult t =
    let phase = float_of_int (t mod period) /. float_of_int period in
    let diurnal = floor +. ((1. -. floor) *. 0.5 *. (1. -. cos (2. *. pi *. phase))) in
    let bursting =
      burst_mult > 1. && burst_every > 0 && burst_len > 0
      && t mod burst_every < burst_len
    in
    diurnal *. if bursting then burst_mult else 1.
  in
  let max_mult = if burst_mult > 1. then burst_mult else 1. in
  let entries = ref [] and n = ref 0 in
  let push at =
    entries := { at; size = Mix.pick mix rng } :: !entries;
    incr n
  in
  (match base with
   | `Poisson ->
     (* Lewis–Shedler thinning of a homogeneous process at the peak rate:
        every candidate consumes exactly two draws, so the accepted trace
        is a deterministic function of the seed. *)
     let peak_mean_ns = 1e9 /. (rate *. max_mult) in
     let t = ref 0 in
     let continue = ref true in
     while !continue do
       let u = Sim.Rng.float rng 1. in
       t := !t + int_of_float (-.peak_mean_ns *. log (1. -. u));
       if !t >= duration then continue := false
       else begin
         let accept = Sim.Rng.float rng 1. < mult !t /. max_mult in
         if accept then push !t
       end
     done
   | `Uniform ->
     let t = ref 0 in
     while !t < duration do
       push !t;
       let gap = int_of_float (1e9 /. (rate *. mult !t)) in
       t := !t + max 1 gap
     done);
  validate (Array.of_list (List.rev !entries))
