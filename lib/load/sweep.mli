(** Capacity analysis over a ramp of measured operating points. *)

type curve = {
  c_label : string;  (** stack label *)
  c_points : Metrics.t list;  (** ascending offered load *)
}

val curve : Metrics.t list -> curve
(** Orders the points by offered load.
    @raise Invalid_argument on an empty list. *)

type knee =
  | Knee of float
      (** highest offered rate still achieving ≥ [frac] of offered, with
          saturation observed beyond it *)
  | Unsaturated
      (** every measured point kept up with its offered load: the ramp
          ended before the capacity was found, so no knee exists *)
  | Saturated  (** even the lowest point was saturated *)

val knee : ?frac:float -> curve -> knee
(** The saturation knee of the ramp, [frac] defaulting to 0.95. *)

val peak : curve -> float
(** Maximum achieved throughput over the curve, ops/s. *)

val peak_point : curve -> Metrics.t
(** The point achieving {!peak}. *)

val pp_curve : Format.formatter -> curve -> unit
(** Header, one row per point, then the knee and peak summary line. *)
