(** Capacity analysis over a ramp of measured operating points. *)

type curve = {
  c_label : string;  (** stack label *)
  c_points : Metrics.t list;  (** ascending offered load *)
}

val curve : Metrics.t list -> curve
(** Orders the points by offered load.
    @raise Invalid_argument on an empty list. *)

val knee : ?frac:float -> curve -> float option
(** Highest offered rate still achieving at least [frac] (default 0.95)
    of its offered load — the saturation knee.  [None] when even the
    lowest point is saturated. *)

val peak : curve -> float
(** Maximum achieved throughput over the curve, ops/s. *)

val peak_point : curve -> Metrics.t
(** The point achieving {!peak}. *)

val pp_curve : Format.formatter -> curve -> unit
(** Header, one row per point, then the knee and peak summary line. *)
