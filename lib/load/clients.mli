(** Client populations: seeded, deterministic traffic over any backend.

    [run] spawns [clients_per_node] client threads on every client rank,
    each with its own SplitMix64 stream split from [seed], issuing
    blocking RPCs to the server rank or totally-ordered group sends.
    The run is warmup, then a measurement window (latency histogram,
    achieved throughput, per-machine CPU utilization, an {!Obs.Recorder}
    ledger scoped to the window), then drain; clients stop issuing at
    the window's end, and the engine runs until every in-flight request
    completes.  Everything is a pure function of (config, cluster), so
    results are bit-identical across reruns and {!Exec.Pool} fan-out. *)

type op = Rpc | Group

type config = {
  op : op;
  mix : Mix.t;  (** request payload sizes *)
  reply_size : int;  (** RPC reply payload size (replies are echoes) *)
  arrival : Arrival.t;
  rate : float;
      (** aggregate offered load over all clients, ops/s; ignored for
          closed-loop arrivals *)
  clients_per_node : int;
  warmup : Sim.Time.span;
  window : Sim.Time.span;  (** measurement window length *)
  seed : int;
}

val default : config
(** Null RPC, uniform arrivals at 200 ops/s, 4 clients/node, 250 ms
    warmup, 1 s window, seed 1. *)

val run :
  config ->
  eng:Sim.Engine.t ->
  backends:Orca.Backend.t array ->
  machines:Machine.Mach.t array ->
  ?seq_machine:Machine.Mach.t ->
  ?server:int ->
  ?client_ranks:int list ->
  ?recorder:Obs.Recorder.t ->
  ?shards:int ->
  ?trace:Trace.t ->
  unit ->
  Metrics.t
(** [machines.(i)] must host [backends.(i)].  [server] (default 0) is
    the RPC echo server and, for group traffic, the rank whose machine
    is reported as the sequencer's unless [seq_machine] names a
    dedicated one.  [client_ranks] defaults to every rank except
    [server].  [recorder] (default: a private one) is installed over the
    measurement window, so callers can read the layer × cause ledger
    cells afterwards.  Runs the engine to completion;
    [Metrics.violations] is always 0 here (checked-mode callers fill it
    in after finalizing their checker).

    Group sends carry a deterministic counter-based ordering key, so a
    sharded backend spreads them across its sequencers; [shards]
    (default 1) sizes [Metrics.per_shard], the per-shard completion
    counts — pass the group's shard count.

    When [config.arrival] is {!Arrival.Replay} the named trace file is
    loaded (and time-scaled) once, and its entries — schedule and
    request size both — are dealt round-robin across the client
    population; latency is measured from each entry's scheduled time.
    [trace] passes an in-memory trace instead, forcing replay without
    touching the filesystem (the arrival process is then ignored).
    [Metrics.offered] for replay/ramp runs is the rate actually
    scheduled inside the window. *)

val run_custom :
  config ->
  eng:Sim.Engine.t ->
  machines:Machine.Mach.t array ->
  label:string ->
  op_name:string ->
  ?seq_machine:Machine.Mach.t ->
  ?lane_of:(int -> int) ->
  ?trace:Trace.t ->
  ?server:int ->
  ?client_ranks:int list ->
  ?recorder:Obs.Recorder.t ->
  op:(int -> Sim.Rng.t -> unit) ->
  unit ->
  Metrics.t
(** Same measurement machinery as {!run} — identical arrival processes,
    RNG splitting, window snapshots, trace replay — but the operation
    body is caller supplied: [op rank rng] must issue one blocking
    logical operation from the calling client thread (e.g. a one-sided
    DHT get/put).  [config.op], [config.mix] and [config.reply_size]
    are ignored; [label]/[op_name] fill the metric's identity fields.
    Replayed traces drive the schedule only — the per-entry sizes are
    not surfaced to [op], which issues whatever it models.

    [lane_of] (rank -> engine lane, e.g. [Core.Cluster.machine_lane])
    must be passed when the engine is laned — multi-segment clusters —
    so each client fiber is spawned under its machine's lane; omitted,
    spawns land in the caller's lane, which is only correct unlaned. *)
