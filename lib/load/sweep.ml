type curve = { c_label : string; c_points : Metrics.t list }

let curve points =
  match points with
  | [] -> invalid_arg "Sweep.curve: no points"
  | p :: _ ->
    {
      c_label = p.Metrics.label;
      c_points =
        List.stable_sort
          (fun a b -> compare a.Metrics.offered b.Metrics.offered)
          points;
    }

type knee = Knee of float | Unsaturated | Saturated

let knee ?frac t =
  let sat p = Metrics.saturated ?frac p in
  if List.for_all (fun p -> not (sat p)) t.c_points then
    (* Every point still keeps up with its offered load: the ramp never
       found the capacity, so there is no knee to report — returning the
       last rate would misread "we stopped ramping" as "it saturated". *)
    Unsaturated
  else
    match
      List.fold_left
        (fun acc p -> if sat p then acc else Some p.Metrics.offered)
        None t.c_points
    with
    | Some r -> Knee r
    | None -> Saturated

let peak t =
  List.fold_left (fun acc p -> Float.max acc p.Metrics.achieved) 0. t.c_points

let peak_point t =
  match t.c_points with
  | [] -> invalid_arg "Sweep.peak_point: empty curve"
  | p :: rest ->
    List.fold_left
      (fun best q ->
        if q.Metrics.achieved > best.Metrics.achieved then q else best)
      p rest

let pp_curve fmt t =
  Format.fprintf fmt "%a@." Metrics.pp_header ();
  List.iter (fun p -> Format.fprintf fmt "%a@." Metrics.pp p) t.c_points;
  Format.fprintf fmt "%-10s knee %s  peak %.1f ops/s" t.c_label
    (match knee t with
     | Knee r -> Printf.sprintf "%.1f ops/s" r
     | Unsaturated -> "beyond ramp (never saturated)"
     | Saturated -> "below ramp")
    (peak t)
