type op = Rpc | Group

type config = {
  op : op;
  mix : Mix.t;
  reply_size : int;
  arrival : Arrival.t;
  rate : float;
  clients_per_node : int;
  warmup : Sim.Time.span;
  window : Sim.Time.span;
  seed : int;
}

let default =
  {
    op = Rpc;
    mix = Mix.single 0;
    reply_size = 0;
    arrival = Arrival.Uniform;
    rate = 200.;
    clients_per_node = 4;
    warmup = Sim.Time.ms 250;
    window = Sim.Time.sec 1;
    seed = 1;
  }

let op_label = function Rpc -> "rpc" | Group -> "group"

(* The measurement engine shared by [run] (Orca backends) and
   [run_custom] (any op body, e.g. one-sided DHT ops).  The order of every
   RNG split and every scheduled event is load-bearing: existing pinned
   results depend on it bit-for-bit. *)
let run_core cfg ~eng ~machines ~label ~op_name ?seq_machine ?lane_of ?trace
    ~server ~client_ranks ?recorder ~op () =
  (* Replay runs off a trace: the explicit override if given, else the file
     named by a [Replay] arrival (loaded once, time-scaled).  [trace]
     stays [None] on every other path, which therefore executes exactly
     the pre-replay code. *)
  let trace =
    match trace with
    | Some _ as t -> t
    | None ->
      (match cfg.arrival with
       | Arrival.Replay { rp_path; rp_scale } ->
         (match Trace.load rp_path with
          | Ok tr -> Some (if rp_scale = 1. then tr else Trace.scale rp_scale tr)
          | Error e -> failwith ("Clients: " ^ e))
       | _ -> None)
  in
  let n_clients = cfg.clients_per_node * List.length client_ranks in
  let per_client_rate = cfg.rate /. float_of_int n_clients in
  let t0 = Sim.Engine.now eng in
  let w_start = t0 + cfg.warmup in
  let w_end = w_start + cfg.window in
  let stats = Sim.Stats.create () in
  let issued = ref 0 and completed = ref 0 in
  let note ~sched ~fin =
    if sched >= w_start && sched < w_end then begin
      incr issued;
      Sim.Stats.record stats "lat_ms" (Sim.Time.to_ms (fin - sched))
    end;
    if fin >= w_start && fin < w_end then incr completed
  in
  (* Window boundaries: snapshot every CPU's busy time and scope an Obs
     recorder to exactly the measurement window. *)
  let n_mach = Array.length machines in
  let busy0 = Array.make n_mach 0 and busy1 = Array.make n_mach 0 in
  let seq_busy0 = ref 0 and seq_busy1 = ref 0 in
  let srv_intr0 = ref 0 and srv_intr1 = ref 0 in
  let seq_busy m = Machine.Cpu.busy_time (Machine.Mach.cpu m) in
  let intr_busy m = Machine.Cpu.busy_interrupt_time (Machine.Mach.cpu m) in
  let recorder =
    match recorder with Some r -> r | None -> Obs.Recorder.create ()
  in
  ignore
    (Sim.Engine.at eng w_start (fun () ->
         Array.iteri (fun i m -> busy0.(i) <- seq_busy m) machines;
         (match seq_machine with Some m -> seq_busy0 := seq_busy m | None -> ());
         srv_intr0 := intr_busy machines.(server);
         Obs.Recorder.install recorder));
  ignore
    (Sim.Engine.at eng w_end (fun () ->
         Array.iteri (fun i m -> busy1.(i) <- seq_busy m) machines;
         (match seq_machine with Some m -> seq_busy1 := seq_busy m | None -> ());
         srv_intr1 := intr_busy machines.(server);
         Obs.Recorder.uninstall ()));
  (* One RNG per client, split in client order from the root seed. *)
  let root = Sim.Rng.create ~seed:cfg.seed in
  let mean_gap_ns = if cfg.rate > 0. then 1e9 /. per_client_rate else 0. in
  let clients =
    List.concat_map
      (fun rank -> List.init cfg.clients_per_node (fun k -> (rank, k)))
      client_ranks
  in
  (* On a laned (multi-segment) engine every client fiber must be spawned
     under its machine's lane so its whole event chain stays lane-local;
     [lane_of] is the cluster's rank -> lane map.  A no-op — bit-identical
     event order — for the unlaned single-segment clusters every pinned
     result runs on. *)
  let spawn_laned rank f =
    match lane_of with
    | None -> ignore (f ())
    | Some lane -> Sim.Engine.with_lane eng (lane rank) (fun () -> ignore (f ()))
  in
  List.iteri
    (fun ci (rank, k) ->
      let rng = Sim.Rng.split root in
      let do_op size = op rank rng size in
      spawn_laned rank (fun () ->
        (Machine.Thread.spawn machines.(rank)
           (Printf.sprintf "load.%d.%d" rank k)
           (fun () ->
             match trace with
             | Some tr ->
               (* Trace replay: entries are dealt round-robin across the
                  client population; each request's schedule is its trace
                  time, so a client behind schedule issues back-to-back
                  and the latency it reports includes the backlog —
                  exactly the open-loop no-coordinated-omission rule. *)
               let len = Array.length tr in
               let rec loop j =
                 if j < len then begin
                   let e = tr.(j) in
                   let sched = t0 + e.Trace.at in
                   if sched < w_end then begin
                     let now = Sim.Engine.now eng in
                     if now < sched then Machine.Thread.sleep (sched - now);
                     do_op (Some e.Trace.size);
                     note ~sched ~fin:(Sim.Engine.now eng);
                     loop (j + n_clients)
                   end
                 end
               in
               loop ci
             | None ->
               (match cfg.arrival with
                | Arrival.Closed think ->
                  let rec loop () =
                    let sched = Sim.Engine.now eng in
                    if sched < w_end then begin
                      do_op None;
                      note ~sched ~fin:(Sim.Engine.now eng);
                      if think > 0 then Machine.Thread.sleep think;
                      loop ()
                    end
                  in
                  loop ()
                | _ ->
                  (* Stagger client start times evenly across one mean gap so
                     deterministic arrivals don't land in lockstep bursts. *)
                  let offset =
                    int_of_float (mean_gap_ns *. float_of_int ci /. float_of_int n_clients)
                  in
                  let t_next = ref (t0 + offset) in
                  let rec loop () =
                    let now = Sim.Engine.now eng in
                    if !t_next < w_end && now < w_end then begin
                      if now < !t_next then Machine.Thread.sleep (!t_next - now);
                      let sched = !t_next in
                      t_next :=
                        sched
                        + Arrival.gap cfg.arrival ~rate:per_client_rate
                            ~now:sched rng;
                      do_op None;
                      note ~sched ~fin:(Sim.Engine.now eng);
                      loop ()
                    end
                  in
                  loop ())))))
    clients;
  Sim.Engine.run eng;
  (* The run can drain before the w_end snapshot fires only if no client
     ever issues; guard so utilizations stay well-defined. *)
  let window_s = Sim.Time.to_sec cfg.window in
  let util i =
    Float.max 0. (Sim.Time.to_sec (busy1.(i) - busy0.(i)) /. window_s)
  in
  let client_util =
    List.fold_left (fun acc r -> Float.max acc (util r)) 0. client_ranks
  in
  let server_util = util server in
  let server_thread_util =
    Float.max 0.
      (Sim.Time.to_sec
         (busy1.(server) - busy0.(server) - (!srv_intr1 - !srv_intr0))
      /. window_s)
  in
  let seq_util =
    match seq_machine with
    | Some _ -> Float.max 0. (Sim.Time.to_sec (!seq_busy1 - !seq_busy0) /. window_s)
    | None -> server_util
  in
  let achieved = float_of_int !completed /. window_s in
  (* Replay and ramp arrivals have no single configured rate: the offered
     load is what was actually scheduled inside the window. *)
  let offered =
    if trace <> None then float_of_int !issued /. window_s
    else
      match cfg.arrival with
      | Arrival.Closed _ -> achieved
      | Arrival.Ramp _ -> float_of_int !issued /. window_s
      | _ -> cfg.rate
  in
  let lat p = Sim.Stats.percentile stats "lat_ms" p in
  {
    Metrics.label;
    op = op_name;
    offered;
    achieved;
    issued = !issued;
    completed = !completed;
    p50_ms = lat 50.;
    p95_ms = lat 95.;
    p99_ms = lat 99.;
    p999_ms = lat 99.9;
    mean_ms = Sim.Stats.mean stats "lat_ms";
    max_ms = (if Sim.Stats.count stats "lat_ms" = 0 then 0. else Sim.Stats.max_value stats "lat_ms");
    client_util;
    server_util;
    server_thread_util;
    seq_util;
    ledger_cpu_ms = float_of_int (Obs.Recorder.cpu_ns recorder) /. 1e6;
    violations = 0;
    per_shard = [||];
  }

let resolve_ranks ~n ~server = function
  | Some l -> l
  | None -> List.filter (fun r -> r <> server) (List.init n Fun.id)

let run cfg ~eng ~backends ~machines ?seq_machine ?(server = 0) ?client_ranks
    ?recorder ?(shards = 1) ?trace () =
  let n = Array.length backends in
  if n < 2 then invalid_arg "Clients.run: need at least two ranks";
  if shards < 1 then invalid_arg "Clients.run: shards must be >= 1";
  let client_ranks = resolve_ranks ~n ~server client_ranks in
  if client_ranks = [] then invalid_arg "Clients.run: no client ranks";
  (* Echo server and group sink; installing on every rank is harmless and
     keeps the group's total order observable everywhere. *)
  Array.iter
    (fun b ->
      b.Orca.Backend.set_rpc_handler (fun ~client:_ ~size:_ _ ~reply ->
          reply ~size:cfg.reply_size Sim.Payload.Empty);
      b.Orca.Backend.set_deliver (fun ~sender:_ ~size:_ _ -> ()))
    backends;
  (* Group sends carry a counter-based ordering key — not an RNG draw, so
     the event stream (and every pinned single-shard result) is untouched
     — and the window's completions are attributed to the key's shard. *)
  let next_key = ref 0 in
  let shard_done = Array.make shards 0 in
  let t0 = Sim.Engine.now eng in
  let w_start = t0 + cfg.warmup in
  let w_end = w_start + cfg.window in
  let op rank rng size =
    (* Replayed requests carry their trace size; everything else draws from
       the mix with exactly the pre-replay stream. *)
    let size = match size with Some s -> s | None -> Mix.pick cfg.mix rng in
    let b = backends.(rank) in
    match cfg.op with
    | Rpc -> ignore (b.Orca.Backend.rpc ~dst:server ~size Sim.Payload.Empty)
    | Group ->
      let key = !next_key in
      incr next_key;
      b.Orca.Backend.broadcast ~nonblocking:false ~key ~size Sim.Payload.Empty;
      let fin = Sim.Engine.now eng in
      if fin >= w_start && fin < w_end then begin
        let sh = Panda.Seq_policy.shard_of_key ~shards key in
        shard_done.(sh) <- shard_done.(sh) + 1
      end
  in
  let m =
    run_core cfg ~eng ~machines
      ~label:backends.(0).Orca.Backend.label
      ~op_name:(op_label cfg.op) ?seq_machine ?trace ~server ~client_ranks
      ?recorder ~op ()
  in
  match cfg.op with
  | Group -> { m with Metrics.per_shard = shard_done }
  | Rpc -> m

let run_custom cfg ~eng ~machines ~label ~op_name ?seq_machine ?lane_of ?trace
    ?(server = 0) ?client_ranks ?recorder ~op () =
  let n = Array.length machines in
  if n < 2 then invalid_arg "Clients.run_custom: need at least two machines";
  let client_ranks = resolve_ranks ~n ~server client_ranks in
  if client_ranks = [] then invalid_arg "Clients.run_custom: no client ranks";
  run_core cfg ~eng ~machines ~label ~op_name ?seq_machine ?lane_of ?trace
    ~server ~client_ranks ?recorder
    ~op:(fun rank rng _size -> op rank rng)
    ()
