type t = Point of int | Group of int

let point n = Point n
let group n = Group n

(* Fresh addresses draw from the engine's per-simulation id source: every
   simulation allocates the same address values in the same order, no
   matter what ran before it or concurrently with it on other domains. *)
let fresh_point eng = Point (Sim.Engine.fresh_id eng)
let fresh_group eng = Group (Sim.Engine.fresh_id eng)

let is_group = function Group _ -> true | Point _ -> false
let equal a b = a = b
let compare = Stdlib.compare
let hash = Hashtbl.hash

let pp fmt = function
  | Point n -> Format.fprintf fmt "pt:%d" n
  | Group n -> Format.fprintf fmt "grp:%d" n
