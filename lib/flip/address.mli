(** FLIP addresses.

    FLIP addresses identify processes (endpoints), not machines: a message
    is sent to an address and FLIP locates the machine currently hosting it
    (location transparency).  Group addresses name multicast groups that any
    number of endpoints may register. *)

type t =
  | Point of int  (** one endpoint *)
  | Group of int  (** a multicast group *)

val point : int -> t
val group : int -> t

val fresh_point : Sim.Engine.t -> t
(** A point address unique within the engine's simulation.  Allocation is
    per-engine (via {!Sim.Engine.fresh_id}), so concurrent simulations
    never share address state and each simulation sees a deterministic
    address sequence. *)

val fresh_group : Sim.Engine.t -> t

val is_group : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
