(** The per-machine FLIP instance (kernel network layer).

    Provides unreliable unicast to a point address and unreliable multicast
    to a group address, with location transparency: the first message to an
    unlocated point address triggers a broadcast LOCATE exchange, after
    which the route is cached.  Messages are fragmented to Ethernet-size
    packets; receivers get individual fragments (reassembly is the
    consumer's business, matching the paper: Amoeba's kernel protocols
    consume fragments in the kernel, Panda reassembles in user space).

    Fragment handlers run in interrupt context: they must not block.

    This module moves packets; it charges no CPU for the send path itself.
    The system-call layers above it charge {!send_cost} to the sending
    thread, so kernel-space and user-space stacks can charge it in their
    own contexts. *)

type config = {
  header_bytes : int;  (** FLIP packet header (on the wire, per packet) *)
  mtu : int;  (** max payload bytes per packet, FLIP header excluded *)
  out_packet_cost : Sim.Time.span;  (** kernel output processing per packet *)
  loopback_cost : Sim.Time.span;  (** local delivery, per fragment *)
  locate_timeout : Sim.Time.span;
  locate_retries : int;
}

val default_config : config

type t

type Sim.Payload.t +=
  | Data of Fragment.t
  | Locate_req of Address.t
  | Locate_rsp of Address.t * int  (** address, station *)

val create : Machine.Mach.t -> ?config:config -> Net.Nic.t -> t
(** Installs itself as the NIC's receive handler. *)

val machine : t -> Machine.Mach.t
val config : t -> config

val register : t -> Address.t -> (Fragment.t -> unit) -> unit
(** Binds an address to this machine and installs its fragment handler.
    Point addresses must be registered on exactly one machine; group
    addresses on any number of machines (one endpoint per machine).
    @raise Invalid_argument if the address is already bound here. *)

val unregister : t -> Address.t -> unit

val registered : t -> Address.t -> bool

val alloc_msg_id : t -> int
(** Reserves a message id.  Retransmissions of one logical message should
    pass the same [msg_id] so that fragments surviving different attempts
    complete one reassembly (as in real FLIP). *)

val unicast :
  ?msg_id:int ->
  ?hdr:Obs.Layer.t * int ->
  t -> src:Address.t -> dst:Address.t -> size:int -> Sim.Payload.t -> unit
(** Unreliable datagram to a point address.  Fragments, locates if needed,
    and transmits.  Local destinations are looped back without touching the
    wire.  [hdr] declares the upper-layer protocol header carried inside
    [size] (attributed on the first fragment, for cost accounting only). *)

val multicast :
  ?msg_id:int ->
  ?hdr:Obs.Layer.t * int ->
  t -> src:Address.t -> group:Address.t -> size:int -> Sim.Payload.t -> unit
(** Unreliable datagram to every machine where [group] is registered,
    including this one (kernel loopback), using hardware multicast.
    [hdr] as for {!unicast}. *)

val fragments_of : t -> size:int -> int
(** Number of packets a [size]-byte message produces. *)

val send_cost : t -> size:int -> Sim.Time.span
(** Kernel CPU cost of pushing a [size]-byte message out: per-packet output
    processing.  Charged by the system-call layer above. *)

val add_route : t -> Address.t -> int -> unit
(** Pre-seeds the route cache (used by tests; normal code relies on the
    LOCATE protocol). *)

val locates_sent : t -> int
val packets_in : t -> int
val packets_out : t -> int
