type config = {
  header_bytes : int;
  mtu : int;
  out_packet_cost : Sim.Time.span;
  loopback_cost : Sim.Time.span;
  locate_timeout : Sim.Time.span;
  locate_retries : int;
}

let default_config =
  {
    header_bytes = 40;
    mtu = 1460;
    out_packet_cost = Sim.Time.us 30;
    loopback_cost = Sim.Time.us 40;
    locate_timeout = Sim.Time.ms 100;
    locate_retries = 5;
  }

type pending = {
  (* reverse order; each fragment keeps its upper-layer header attribution *)
  mutable queued : (Fragment.t * (Obs.Layer.t * int) option) list;
  mutable attempts : int;
  mutable timer : Sim.Engine.handle option;
}

type t = {
  mach : Machine.Mach.t;
  cfg : config;
  nic : Net.Nic.t;
  registry : (Address.t, Fragment.t -> unit) Hashtbl.t;
  routes : (Address.t, int) Hashtbl.t;
  pendings : (Address.t, pending) Hashtbl.t;
  mutable next_msg_id : int;
  mutable locates : int;
  mutable n_in : int;
  mutable n_out : int;
}

type Sim.Payload.t +=
  | Data of Fragment.t
  | Locate_req of Address.t
  | Locate_rsp of Address.t * int

let machine t = t.mach
let config t = t.cfg
let registered t addr = Hashtbl.mem t.registry addr

let eng t = Machine.Mach.engine t.mach
let mac t = Net.Nic.mac t.nic

let fragments_of t ~size = max 1 ((size + t.cfg.mtu - 1) / t.cfg.mtu)
let send_cost t ~size = fragments_of t ~size * t.cfg.out_packet_cost

(* Local delivery models the kernel looping a packet back to an endpoint on
   the same machine: a software interrupt per fragment. *)
let loopback t frag =
  Machine.Mach.interrupt t.mach ~layer:Obs.Layer.Flip ~name:"flip.loopback"
    ~cost:t.cfg.loopback_cost
    (fun () ->
      match Hashtbl.find_opt t.registry frag.Fragment.dst with
      | Some handler -> handler frag
      | None -> ())

let transmit_fragment t ~dest ?upper frag =
  t.n_out <- t.n_out + 1;
  let bytes = t.cfg.header_bytes + frag.Fragment.bytes in
  let hdr =
    (Obs.Layer.Flip, t.cfg.header_bytes)
    :: (match upper with Some h -> [ h ] | None -> [])
  in
  Net.Nic.send t.nic (Net.Frame.make ~hdr ~src:(mac t) ~dest ~bytes (Data frag))

let send_control t ~dest payload =
  Net.Nic.send t.nic
    (Net.Frame.make
       ~hdr:[ (Obs.Layer.Flip, t.cfg.header_bytes) ]
       ~src:(mac t) ~dest ~bytes:t.cfg.header_bytes payload)

let rec locate t dst =
  match Hashtbl.find_opt t.pendings dst with
  | None -> ()
  | Some p ->
    if p.attempts >= t.cfg.locate_retries then begin
      (* Undeliverable: FLIP is unreliable, so drop silently (upper layers
         retransmit and re-locate). *)
      Hashtbl.remove t.pendings dst;
      Sim.Stats.incr (Machine.Mach.stats t.mach) "flip.locate_failed"
    end
    else begin
      p.attempts <- p.attempts + 1;
      t.locates <- t.locates + 1;
      Obs.Log.log (eng t) "flip" "locate %a (attempt %d)" Address.pp dst
        p.attempts;
      send_control t ~dest:Net.Frame.Broadcast (Locate_req dst);
      p.timer <- Some (Sim.Engine.after (eng t) t.cfg.locate_timeout (fun () -> locate t dst))
    end

let route_fragment t ?upper frag =
  let dst = frag.Fragment.dst in
  if Hashtbl.mem t.registry dst then loopback t frag
  else
    match Hashtbl.find_opt t.routes dst with
    | Some station ->
      transmit_fragment t ~dest:(Net.Frame.Unicast station) ?upper frag
    | None -> (
        match Hashtbl.find_opt t.pendings dst with
        | Some p -> p.queued <- (frag, upper) :: p.queued
        | None ->
          let p = { queued = [ (frag, upper) ]; attempts = 0; timer = None } in
          Hashtbl.add t.pendings dst p;
          locate t dst)

let alloc_msg_id t =
  t.next_msg_id <- t.next_msg_id + 1;
  t.next_msg_id

(* The upper-layer header travels in the message's first fragment only. *)
let upper_for hdr frag =
  match hdr with
  | Some _ when frag.Fragment.index = 0 -> hdr
  | _ -> None

let unicast ?msg_id ?hdr t ~src ~dst ~size payload =
  (match dst with
   | Address.Group _ -> invalid_arg "Flip_iface.unicast: group address"
   | Address.Point _ -> ());
  let msg_id = match msg_id with Some id -> id | None -> alloc_msg_id t in
  let frags = Fragment.split ~src ~dst ~msg_id ~mtu:t.cfg.mtu ~size payload in
  List.iter (fun frag -> route_fragment t ?upper:(upper_for hdr frag) frag) frags

let multicast ?msg_id ?hdr t ~src ~group ~size payload =
  (match group with
   | Address.Point _ -> invalid_arg "Flip_iface.multicast: point address"
   | Address.Group _ -> ());
  let msg_id = match msg_id with Some id -> id | None -> alloc_msg_id t in
  let frags =
    Fragment.split ~src ~dst:group ~msg_id ~mtu:t.cfg.mtu ~size payload
  in
  List.iter
    (fun frag ->
      transmit_fragment t ~dest:Net.Frame.Multicast
        ?upper:(upper_for hdr frag) frag;
      if Hashtbl.mem t.registry group then loopback t frag)
    frags

let flush_pending t dst station =
  match Hashtbl.find_opt t.pendings dst with
  | None -> ()
  | Some p ->
    (match p.timer with Some h -> Sim.Engine.cancel (eng t) h | None -> ());
    Hashtbl.remove t.pendings dst;
    List.iter
      (fun (frag, upper) ->
        transmit_fragment t ~dest:(Net.Frame.Unicast station) ?upper frag)
      (List.rev p.queued)

(* Runs in interrupt context, after the NIC's reception interrupt cost. *)
let input t (frame : Net.Frame.t) =
  match frame.Net.Frame.payload with
  | Data frag -> (
      t.n_in <- t.n_in + 1;
      match Hashtbl.find_opt t.registry frag.Fragment.dst with
      | Some handler -> handler frag
      | None -> () (* not for us (unregistered group, stale route) *))
  | Locate_req addr ->
    if Hashtbl.mem t.registry addr && not (Address.is_group addr) then
      send_control t ~dest:(Net.Frame.Unicast frame.Net.Frame.src) (Locate_rsp (addr, mac t))
  | Locate_rsp (addr, station) ->
    Hashtbl.replace t.routes addr station;
    flush_pending t addr station
  | _ -> ()

let create mach ?(config = default_config) nic =
  let t =
    {
      mach;
      cfg = config;
      nic;
      registry = Hashtbl.create 16;
      routes = Hashtbl.create 16;
      pendings = Hashtbl.create 8;
      next_msg_id = 0;
      locates = 0;
      n_in = 0;
      n_out = 0;
    }
  in
  Net.Nic.set_rx nic (fun frame -> input t frame);
  t

let register t addr handler =
  if Hashtbl.mem t.registry addr then
    invalid_arg "Flip_iface.register: address already bound";
  Hashtbl.replace t.registry addr handler

let unregister t addr = Hashtbl.remove t.registry addr
let add_route t addr station = Hashtbl.replace t.routes addr station
let locates_sent t = t.locates
let packets_in t = t.n_in
let packets_out t = t.n_out
