module Thread = Machine.Thread
module Mach = Machine.Mach

type config = {
  header_bytes : int;
  copy_byte : Sim.Time.span;
  deliver_fixed : Sim.Time.span;
  call_depth : int;
  retrans_timeout : Sim.Time.span;
  max_retries : int;
}

let default_config =
  {
    header_bytes = 56;
    copy_byte = Sim.Time.ns 50;
    deliver_fixed = Sim.Time.us 30;
    call_depth = 2;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 30;
  }

exception Rpc_failure of string

type Sim.Payload.t +=
  | Request of { client : Flip.Address.t; trans_id : int; size : int; user : Sim.Payload.t }
  | Reply of { trans_id : int; size : int; user : Sim.Payload.t }
  | Ack of { client : Flip.Address.t; trans_id : int }

type pending = {
  p_id : int;
  p_msg_id : int;
  p_dst : Flip.Address.t;
  p_size : int;
  p_user : Sim.Payload.t;
  p_thread : Thread.t;
  mutable p_reply : (int * Sim.Payload.t) option;
  mutable p_failed : bool;
  mutable p_resume : (unit -> unit) option;
  mutable p_timer : Sim.Engine.handle option;
  mutable p_tries : int;
}

type t = {
  flip : Flip.Flip_iface.t;
  cfg : config;
  client_addr : Flip.Address.t;
  reasm : Flip.Reassembly.t;
  pending : (int, pending) Hashtbl.t;
  mutable next_trans : int;
  mutable n_trans : int;
  mutable n_retrans : int;
}

type req_state =
  | Processing
  | Replied of { rp_size : int; rp_user : Sim.Payload.t; rp_msg_id : int }
  | Acked
      (* Tombstone: the client acknowledged the reply.  The entry must
         survive in the (bounded) cache — deleting it would let a
         duplicate of the original request, still in flight, re-run the
         handler and break at-most-once. *)

type port = {
  rpc : t;
  addr : Flip.Address.t;
  reasm_srv : Flip.Reassembly.t;
  queue : request Queue.t;
  waiters : (unit -> unit) Queue.t;
  states : (Flip.Address.t * int, req_state) Hashtbl.t;
  state_order : (Flip.Address.t * int) Queue.t; (* insertion order, for bounding *)
}

and request = {
  r_port : port;
  r_client : Flip.Address.t;
  r_trans : int;
  r_size : int;
  r_user : Sim.Payload.t;
  mutable r_thread : Thread.t option;
}

let config t = t.cfg
let flip t = t.flip
let client_address t = t.client_addr
let address port = port.addr
let request_size r = r.r_size
let request_payload r = r.r_user
let request_client r = r.r_client
let transactions t = t.n_trans
let retransmissions t = t.n_retrans

let mach t = Flip.Flip_iface.machine t.flip
let eng t = Mach.engine (mach t)

(* Total bytes a protocol message occupies as a FLIP message. *)
let wire_size t payload_bytes = t.cfg.header_bytes + payload_bytes

let rpc_hdr t = (Obs.Layer.Amoeba_rpc, t.cfg.header_bytes)

let send_request t p =
  Flip.Flip_iface.unicast ~msg_id:p.p_msg_id ~hdr:(rpc_hdr t) t.flip
    ~src:t.client_addr ~dst:p.p_dst
    ~size:(wire_size t p.p_size)
    (Request { client = t.client_addr; trans_id = p.p_id; size = p.p_size; user = p.p_user })

let wake_client p =
  match p.p_resume with
  | Some resume ->
    p.p_resume <- None;
    resume ()
  | None -> ()

let rec arm_timer t p =
  p.p_timer <-
    Some
      (Sim.Engine.after (eng t) t.cfg.retrans_timeout (fun () ->
           if p.p_reply = None && not p.p_failed then
             if p.p_tries >= t.cfg.max_retries then begin
               p.p_failed <- true;
               wake_client p
             end
             else begin
               p.p_tries <- p.p_tries + 1;
               t.n_retrans <- t.n_retrans + 1;
               Obs.Log.log (eng t) "amoeba.rpc" "retransmit to %a (try %d)"
                 Flip.Address.pp p.p_dst p.p_tries;
               (* The retransmission runs in kernel timer context. *)
               let cost =
                 Flip.Flip_iface.send_cost t.flip ~size:(wire_size t p.p_size)
               in
               Mach.interrupt (mach t) ~layer:Obs.Layer.Amoeba_rpc
                 ~charges:[ (Obs.Layer.Flip, Obs.Cause.Proto_proc, cost) ]
                 ~name:"rpc.retrans" ~cost
                 (fun () -> send_request t p);
               arm_timer t p
             end))

(* Client-side kernel input: reply fragments arrive in interrupt context. *)
let client_input t frag =
  match Flip.Reassembly.add t.reasm frag with
  | Some (_, _, Reply { trans_id; size; user }) -> (
      (* Acknowledge every reply copy: the server retransmits until acked. *)
      (match Hashtbl.find_opt t.pending trans_id with
       | Some p ->
         Flip.Flip_iface.unicast t.flip ~src:t.client_addr ~dst:p.p_dst
           ~size:(wire_size t 0)
           (Ack { client = t.client_addr; trans_id });
         if p.p_reply = None then begin
           (match p.p_timer with Some h -> Sim.Engine.cancel (eng t) h | None -> ());
           p.p_reply <- Some (size, user);
           (* Amoeba delivers the reply directly into the blocked client:
              no scheduler invocation. *)
           Thread.mark_direct_wake p.p_thread;
           wake_client p
         end
       | None -> () (* transaction already completed; late duplicate *))
    )
  | Some _ | None -> ()

let create ?(config = default_config) flip =
  let client_addr =
    Flip.Address.fresh_point (Mach.engine (Flip.Flip_iface.machine flip))
  in
  let t =
    {
      flip;
      cfg = config;
      client_addr;
      reasm = Flip.Reassembly.create ();
      pending = Hashtbl.create 16;
      next_trans = 0;
      n_trans = 0;
      n_retrans = 0;
    }
  in
  Flip.Flip_iface.register flip client_addr (fun frag -> client_input t frag);
  t

let trans t ~dst ~size payload =
  Obs.Recorder.with_span (eng t) Obs.Layer.Amoeba_rpc "trans" @@ fun () ->
  let thread = Thread.self () in
  assert (Thread.machine thread == mach t);
  Thread.call_frames ~layer:Obs.Layer.Amoeba_rpc t.cfg.call_depth;
  t.next_trans <- t.next_trans + 1;
  t.n_trans <- t.n_trans + 1;
  let p =
    {
      p_id = t.next_trans;
      p_msg_id = Flip.Flip_iface.alloc_msg_id t.flip;
      p_dst = dst;
      p_size = size;
      p_user = payload;
      p_thread = thread;
      p_reply = None;
      p_failed = false;
      p_resume = None;
      p_timer = None;
      p_tries = 0;
    }
  in
  Hashtbl.add t.pending p.p_id p;
  (* The kernel hands fragments to the NIC as it copies them, so the
     transmission overlaps the system call's copy work. *)
  send_request t p;
  arm_timer t p;
  let copy = size * t.cfg.copy_byte in
  let out = Flip.Flip_iface.send_cost t.flip ~size:(wire_size t size) in
  Thread.syscall ~layer:Obs.Layer.Amoeba_rpc ~kernel_work:(copy + out)
    ~charges:
      [ (Obs.Layer.Amoeba_rpc, Obs.Cause.Copy, copy);
        (Obs.Layer.Flip, Obs.Cause.Proto_proc, out) ]
    ();
  (* The reply may already have arrived while the send syscall ran. *)
  if p.p_reply = None && not p.p_failed then
    Thread.suspend (fun _ resume -> p.p_resume <- Some resume);
  Hashtbl.remove t.pending p.p_id;
  match p.p_reply with
  | Some (rsize, ruser) ->
    (* Copy the reply up to user space and return down the (shallow)
       protocol stack. *)
    Thread.compute_parts ~layer:Obs.Layer.Amoeba_rpc
      [ (Obs.Cause.Proto_proc, t.cfg.deliver_fixed);
        (Obs.Cause.Copy, rsize * t.cfg.copy_byte) ];
    Thread.ret_frames ~layer:Obs.Layer.Amoeba_rpc t.cfg.call_depth;
    (rsize, ruser)
  | None ->
    Thread.ret_frames ~layer:Obs.Layer.Amoeba_rpc t.cfg.call_depth;
    raise (Rpc_failure "transaction timed out")

(* ------------------------------------------------------------------ *)
(* Server side *)

let max_reply_cache = 4096

let bound_states port =
  while Queue.length port.state_order > max_reply_cache do
    let key = Queue.pop port.state_order in
    Hashtbl.remove port.states key
  done

let send_reply_from_kernel port ~client ~trans_id ~size ~user ~msg_id =
  let t = port.rpc in
  Flip.Flip_iface.unicast ~msg_id ~hdr:(rpc_hdr t) t.flip ~src:port.addr
    ~dst:client
    ~size:(wire_size t size)
    (Reply { trans_id; size; user })

let enqueue_request port r =
  Queue.push r port.queue;
  match Queue.take_opt port.waiters with
  | Some wake -> wake ()
  | None -> ()

(* Server-side kernel input, in interrupt context. *)
let server_input port frag =
  match Flip.Reassembly.add port.reasm_srv frag with
  | Some (_, _, Request { client; trans_id; size; user }) -> (
      let key = (client, trans_id) in
      match Hashtbl.find_opt port.states key with
      | Some Processing -> () (* duplicate of a request being served *)
      | Some Acked -> () (* stale duplicate of a completed transaction *)
      | Some (Replied { rp_size; rp_user; rp_msg_id }) ->
        (* The reply was lost: replay it under the same message id so
           surviving fragments of earlier copies still count. *)
        send_reply_from_kernel port ~client ~trans_id ~size:rp_size ~user:rp_user
          ~msg_id:rp_msg_id
      | None ->
        Hashtbl.replace port.states key Processing;
        Queue.push key port.state_order;
        bound_states port;
        enqueue_request port
          { r_port = port; r_client = client; r_trans = trans_id; r_size = size;
            r_user = user; r_thread = None })
  | Some (_, _, Ack { client; trans_id }) ->
    let key = (client, trans_id) in
    if Hashtbl.mem port.states key then Hashtbl.replace port.states key Acked
  | Some _ | None -> ()

let export t ~name =
  ignore name;
  let addr = Flip.Address.fresh_point (eng t) in
  let port =
    {
      rpc = t;
      addr;
      reasm_srv = Flip.Reassembly.create ();
      queue = Queue.create ();
      waiters = Queue.create ();
      states = Hashtbl.create 64;
      state_order = Queue.create ();
    }
  in
  Flip.Flip_iface.register t.flip addr (fun frag -> server_input port frag);
  port

let rec get_request_loop port =
  let t = port.rpc in
  let thread = Thread.self () in
  assert (Thread.machine thread == mach t);
  Thread.syscall ~layer:Obs.Layer.Amoeba_rpc ();
  match Queue.take_opt port.queue with
  | Some r ->
    r.r_thread <- Some thread;
    Thread.compute_parts ~layer:Obs.Layer.Amoeba_rpc
      [ (Obs.Cause.Proto_proc, t.cfg.deliver_fixed);
        (Obs.Cause.Copy, r.r_size * t.cfg.copy_byte) ];
    r
  | None ->
    Thread.suspend (fun _ resume -> Queue.push resume port.waiters);
    (* A same-instant competitor may have taken the request; retry.  The
       retry costs another syscall, as a real re-issued get_request would. *)
    get_request_loop port

let get_request port =
  Obs.Recorder.with_span (eng port.rpc) Obs.Layer.Amoeba_rpc "get_request"
    (fun () -> get_request_loop port)

let put_reply port r ~size payload =
  let t = port.rpc in
  Obs.Recorder.with_span (eng t) Obs.Layer.Amoeba_rpc "put_reply" @@ fun () ->
  let thread = Thread.self () in
  (match r.r_thread with
   | Some owner when owner == thread -> ()
   | Some _ | None ->
     invalid_arg "Rpc.put_reply: reply must be sent by the get_request thread");
  let msg_id = Flip.Flip_iface.alloc_msg_id t.flip in
  Hashtbl.replace port.states (r.r_client, r.r_trans)
    (Replied { rp_size = size; rp_user = payload; rp_msg_id = msg_id });
  (* As in trans: the reply's transmission overlaps the copy work. *)
  send_reply_from_kernel port ~client:r.r_client ~trans_id:r.r_trans ~size ~user:payload
    ~msg_id;
  let copy = size * t.cfg.copy_byte in
  let out = Flip.Flip_iface.send_cost t.flip ~size:(wire_size t size) in
  Thread.syscall ~layer:Obs.Layer.Amoeba_rpc ~kernel_work:(copy + out)
    ~charges:
      [ (Obs.Layer.Amoeba_rpc, Obs.Cause.Copy, copy);
        (Obs.Layer.Flip, Obs.Cause.Proto_proc, out) ]
    ()
