(** Amoeba's kernel-space totally-ordered group communication (Kaashoek's
    sequencer protocol).

    One machine hosts the {e sequencer}, which runs entirely inside the
    kernel and is invoked straight from the (software) interrupt handler —
    no thread switches, no address-space crossings.  To broadcast, a member
    either:

    - {b PB method} (small messages): sends the message point-to-point to
      the sequencer, which tags it with the next sequence number and
      multicasts it; or
    - {b BB method} (large messages): multicasts the message itself; the
      sequencer multicasts a small {e accept} carrying the sequence number.

    Receivers deliver strictly in sequence order; a gap triggers a
    retransmission request answered from the sequencer's history buffer.
    The history is trimmed via status exchanges when it grows past a
    watermark.  [send] blocks the calling thread until its own message has
    come back ordered, as Amoeba's [grp_send] does.

    Membership is dynamic: {!join} and {!leave} are ordered through the
    sequencer as membership announcements, so every member observes the
    same view transitions at the same point in the message sequence, and
    members that stop answering status exchanges are evicted so a dead
    member cannot block history trimming.  (Sequencer failure/recovery —
    Amoeba's reset protocol — is out of scope: the paper's experiments
    never lose the sequencer.) *)

type config = {
  header_bytes : int;  (** data-message header (52 in the paper) *)
  accept_bytes : int;  (** accept/control message size *)
  copy_byte : Sim.Time.span;
  deliver_fixed : Sim.Time.span;
  seq_process : Sim.Time.span;
      (** sequencer's per-message handling, in interrupt context *)
  seq_batch_max : int;
      (** max PB orderings coalesced into one interrupt + one
          {!Ordered_batch} multicast; 1 disables batching (the paper's
          protocol, and the default) *)
  seq_order_item : Sim.Time.span;
      (** marginal sequencer cost per extra batched ordering *)
  call_depth : int;
  bb_threshold : int;  (** sizes strictly above this use the BB method *)
  retrans_timeout : Sim.Time.span;
  max_retries : int;
  history_high : int;  (** history length that triggers a status exchange *)
}

val default_config : config

type t
(** A group descriptor. *)

type member

type entry = {
  e_seq : int;
  e_sender : int;
  e_local : int;
  e_size : int;
  e_user : Sim.Payload.t;
}
(** An ordered message as stored in the sequencer's history.  Membership
    announcements appear as entries whose [e_sender] is the system. *)

type membership_event = Joined of int | Left of int

(** On-the-wire protocol messages, exposed for tests and failure-injection
    benches. *)
type Sim.Payload.t +=
  | Pb_req of { sender : int; local_id : int; size : int; user : Sim.Payload.t }
  | Bb_data of { sender : int; local_id : int; size : int; user : Sim.Payload.t }
  | Ordered of entry
  | Ordered_batch of entry list
  | Accept of { a_seq : int; a_sender : int; a_local : int }
  | Retrans_req of { rq_member : int; rq_from : int }
  | Status_req of { sr_next : int }
  | Status_rsp of { st_member : int; st_delivered : int }
  | Join_req of { j_addr : Flip.Address.t }
  | Join_ack of { j_index : int; j_seq : int }
  | Leave_req of { l_index : int }
  | Member_joined of int * Flip.Address.t
  | Member_left of int

exception Group_failure of string

val create_static :
  ?config:config ->
  name:string ->
  sequencer:int ->
  Flip.Flip_iface.t array ->
  t * member array
(** [create_static ~name ~sequencer flips] sets up a group with one member
    per FLIP instance; the in-kernel sequencer lives on the machine of
    [flips.(sequencer)]. *)

val config : t -> config
val member_index : member -> int
val member_count : t -> int

val send : member -> size:int -> Sim.Payload.t -> unit
(** Blocking broadcast: returns once the calling member has received its
    own message in the total order.  @raise Group_failure on exhausted
    retransmissions. *)

val receive : member -> int * int * Sim.Payload.t
(** [receive m] blocks until the next message in the total order and
    returns [(sender_index, size, payload)].  Every member receives every
    message, including its own. *)

(** {1 Dynamic membership} *)

val join : t -> Flip.Flip_iface.t -> member
(** Blocking: returns once the join announcement has come back through the
    total order, so the new member's deliveries start at a well-defined
    point in the sequence.  One member per machine.
    @raise Group_failure if the sequencer never answers. *)

val leave : member -> unit
(** Blocking: returns once the leave announcement has been delivered; the
    member stops participating. *)

val active : member -> bool

val view : member -> int list
(** Member indexes currently in this member's view, updated at
    announcement-delivery points (identical order at every member). *)

val set_membership_handler : member -> (membership_event -> unit) -> unit
(** Called at each membership change, in total order with the messages. *)

val pending_deliveries : member -> int
(** Messages ordered but not yet consumed by {!receive}. *)

val delivered_seq : member -> int
(** Highest contiguous sequence number delivered at this member. *)

val messages_ordered : t -> int
(** Messages the sequencer has ordered so far. *)

val retransmissions : t -> int
val history_length : t -> int
