module Thread = Machine.Thread
module Mach = Machine.Mach

type config = {
  header_bytes : int;
  accept_bytes : int;
  copy_byte : Sim.Time.span;
  deliver_fixed : Sim.Time.span;
  seq_process : Sim.Time.span;
  seq_batch_max : int;  (** orderings coalesced per interrupt; 1 = off *)
  seq_order_item : Sim.Time.span;  (** marginal cost per extra batched item *)
  call_depth : int;
  bb_threshold : int;
  retrans_timeout : Sim.Time.span;
  max_retries : int;
  history_high : int;
}

let default_config =
  {
    header_bytes = 52;
    accept_bytes = 32;
    copy_byte = Sim.Time.ns 50;
    deliver_fixed = Sim.Time.us 30;
    seq_process = Sim.Time.us 50;
    seq_batch_max = 1;
    seq_order_item = Sim.Time.us 15;
    call_depth = 2;
    bb_threshold = 1460;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 30;
    history_high = 512;
  }

exception Group_failure of string

type entry = {
  e_seq : int;
  e_sender : int;
  e_local : int;
  e_size : int;
  e_user : Sim.Payload.t;
}

type membership_event = Joined of int | Left of int

type Sim.Payload.t +=
  | Pb_req of { sender : int; local_id : int; size : int; user : Sim.Payload.t }
  | Bb_data of { sender : int; local_id : int; size : int; user : Sim.Payload.t }
  | Ordered of entry
  | Ordered_batch of entry list
  | Accept of { a_seq : int; a_sender : int; a_local : int }
  | Retrans_req of { rq_member : int; rq_from : int }
  | Status_req of { sr_next : int }
  | Status_rsp of { st_member : int; st_delivered : int }
  | Join_req of { j_addr : Flip.Address.t }
  | Join_ack of { j_index : int; j_seq : int }
  | Leave_req of { l_index : int }
  | Member_joined of int * Flip.Address.t
  | Member_left of int

(* Sequence numbers queued for ordering but not yet assigned. *)
let queued_mark = -1

(* Sender index used for the sequencer's own membership announcements. *)
let system_sender = -1

type sequencer = {
  sq_flip : Flip.Flip_iface.t;
  sq_members : (int, Flip.Address.t) Hashtbl.t;
  sq_delivered : (int, int) Hashtbl.t; (* highest contiguous seq reported *)
  mutable sq_next_index : int;
  mutable next_seq : int;
  history : (int, entry) Hashtbl.t;
  mutable hist_lo : int;
  ordered_ids : (int * int, int) Hashtbl.t; (* (sender, local) -> seq, or queued_mark *)
  sq_reasm : Flip.Reassembly.t;
  mutable sq_sys_local : int; (* local-id counter for system announcements *)
  joining : (Flip.Address.t, int) Hashtbl.t; (* joiner addr -> index *)
  join_seq : (int, int) Hashtbl.t; (* index -> seq of its join announcement *)
  left_seq : (int, int) Hashtbl.t; (* index -> seq of its leave announcement *)
  mutable status_outstanding : bool;
  mutable status_round : int;
  last_status_rsp : (int, int) Hashtbl.t; (* index -> round last answered *)
  mutable idle_timer : Sim.Engine.handle option;
  sq_pending : (int * int * int * Sim.Payload.t) Queue.t; (* batched PB requests *)
  mutable sq_batch_scheduled : bool;
}

type t = {
  cfg : config;
  gname : string;
  gaddr : Flip.Address.t;
  saddr : Flip.Address.t;
  mutable seqst : sequencer option;
  mutable n_ordered : int;
  mutable n_retrans : int;
}

type slot = Full of entry | Awaiting of { aw_sender : int; aw_local : int }

type send_wait = {
  sw_local : int;
  sw_size : int;
  sw_user : Sim.Payload.t;
  mutable sw_done : bool;
  mutable sw_failed : bool;
  mutable sw_resume : (unit -> unit) option;
  mutable sw_timer : Sim.Engine.handle option;
  mutable sw_tries : int;
}

type member = {
  grp : t;
  m_flip : Flip.Flip_iface.t;
  mutable m_index : int; (* -1 until the join completes *)
  m_addr : Flip.Address.t;
  m_reasm : Flip.Reassembly.t;
  mutable m_active : bool;
  mutable expected : int;
  stash : (int, slot) Hashtbl.t;
  awaiting_data : (int * int, int) Hashtbl.t;
  holding : (int * int, int * Sim.Payload.t) Hashtbl.t;
  deliver_q : (int * int * Sim.Payload.t) Queue.t;
  recv_waiters : (unit -> unit) Queue.t;
  sends : (int, send_wait) Hashtbl.t;
  mutable next_local : int;
  mutable gap_timer : Sim.Engine.handle option;
  mutable n_delivered : int;
  view : (int, unit) Hashtbl.t;
  mutable on_membership : (membership_event -> unit) option;
  mutable join_waiter : (unit -> unit) option;
  mutable leave_waiter : (unit -> unit) option;
}

let config t = t.cfg
let member_index m = m.m_index

let member_count t =
  match t.seqst with Some s -> Hashtbl.length s.sq_members | None -> 0

let messages_ordered t = t.n_ordered
let retransmissions t = t.n_retrans

let history_length t =
  match t.seqst with Some s -> Hashtbl.length s.history | None -> 0

let pending_deliveries m = Queue.length m.deliver_q
let delivered_seq m = m.expected - 1
let active m = m.m_active
let set_membership_handler m f = m.on_membership <- Some f

let view m = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) m.view [])

let m_mach m = Flip.Flip_iface.machine m.m_flip
let m_eng m = Mach.engine (m_mach m)

let data_size t size = t.cfg.header_bytes + size

(* Data-bearing messages (Pb_req/Bb_data/Ordered) carry the group header
   inside [data_size]; accepts and control traffic stay unattributed. *)
let grp_hdr t = (Obs.Layer.Amoeba_grp, t.cfg.header_bytes)

(* ------------------------------------------------------------------ *)
(* Sequencer (kernel, interrupt context on the sequencer's machine) *)

let seq_mach s = Flip.Flip_iface.machine s.sq_flip

let seq_multicast ?hdr t s ~size payload =
  Flip.Flip_iface.multicast ?hdr s.sq_flip ~src:t.saddr ~group:t.gaddr ~size payload

let seq_unicast ?hdr t s ~dst ~size payload =
  ignore s;
  Flip.Flip_iface.unicast ?hdr s.sq_flip ~src:t.saddr ~dst ~size payload

(* Evict members that have ignored many consecutive status rounds, so a
   crashed member cannot block history trimming forever.  The threshold is
   forgiving: losing a few responses to frame loss must not get a live
   member expelled. *)
let eviction_rounds = 8

let evict_unresponsive t s =
  let stale =
    Hashtbl.fold
      (fun ix _addr acc ->
        let last = try Hashtbl.find s.last_status_rsp ix with Not_found -> 0 in
        if s.status_round - last >= eviction_rounds then ix :: acc else acc)
      s.sq_members []
  in
  List.iter
    (fun ix ->
      Hashtbl.remove s.sq_members ix;
      Hashtbl.remove s.sq_delivered ix;
      Hashtbl.remove s.last_status_rsp ix;
      s.sq_sys_local <- s.sq_sys_local + 1;
      Hashtbl.replace s.ordered_ids (system_sender, s.sq_sys_local) queued_mark;
      let local = s.sq_sys_local in
      Mach.interrupt (seq_mach s) ~layer:Obs.Layer.Amoeba_grp ~name:"grp.evict"
        ~cost:t.cfg.seq_process (fun () ->
          let e =
            { e_seq = s.next_seq; e_sender = system_sender; e_local = local;
              e_size = t.cfg.accept_bytes; e_user = Member_left ix }
          in
          s.next_seq <- s.next_seq + 1;
          Hashtbl.replace s.history e.e_seq e;
          Hashtbl.replace s.ordered_ids (system_sender, local) e.e_seq;
          Hashtbl.replace s.left_seq ix e.e_seq;
          t.n_ordered <- t.n_ordered + 1;
          seq_multicast ~hdr:(grp_hdr t) t s ~size:(data_size t e.e_size)
            (Ordered e)))
    stale

(* Every live member has confirmed delivery of the full sequence. *)
let all_caught_up s =
  let lowest = Hashtbl.fold (fun _ v acc -> min v acc) s.sq_delivered max_int in
  lowest = max_int || lowest >= s.next_seq - 1

(* Status rounds repeat on a timer until every member has caught up (the
   request carries [next_seq], so a member that silently missed the last
   messages — nothing after them to reveal the gap — asks for them), and a
   member that never answers cannot wedge trimming: after a few ignored
   rounds it is evicted. *)
let rec start_status_round t s =
  s.status_round <- s.status_round + 1;
  evict_unresponsive t s;
  seq_multicast t s ~size:t.cfg.accept_bytes (Status_req { sr_next = s.next_seq });
  ignore
    (Sim.Engine.after (Mach.engine (seq_mach s)) (2 * t.cfg.retrans_timeout) (fun () ->
         if s.status_outstanding then
           Mach.interrupt (seq_mach s) ~layer:Obs.Layer.Amoeba_grp
             ~name:"grp.status" ~cost:t.cfg.seq_process
             (fun () -> start_status_round t s)))

let maybe_status_exchange t s =
  if Hashtbl.length s.history > t.cfg.history_high && not s.status_outstanding then begin
    s.status_outstanding <- true;
    start_status_round t s
  end

(* An idle check runs a while after each ordering: if some member has not
   confirmed the tail of the sequence, run catch-up rounds.  This is what
   guarantees the *last* broadcast of a run reaches everyone — losing it
   leaves no later traffic to expose the gap. *)
let rec arm_idle_check t s =
  (match s.idle_timer with
   | Some h -> Sim.Engine.cancel (Mach.engine (seq_mach s)) h
   | None -> ());
  s.idle_timer <-
    Some
      (Sim.Engine.after (Mach.engine (seq_mach s)) (2 * t.cfg.retrans_timeout) (fun () ->
           s.idle_timer <- None;
           if not (all_caught_up s) then begin
             if not s.status_outstanding then begin
               s.status_outstanding <- true;
               Mach.interrupt (seq_mach s) ~layer:Obs.Layer.Amoeba_grp
                 ~name:"grp.status" ~cost:t.cfg.seq_process
                 (fun () -> start_status_round t s)
             end;
             arm_idle_check t s
           end))

let do_order t s ~sender ~local_id ~size ~user =
  let e = { e_seq = s.next_seq; e_sender = sender; e_local = local_id; e_size = size; e_user = user } in
  s.next_seq <- s.next_seq + 1;
  Hashtbl.replace s.history e.e_seq e;
  Hashtbl.replace s.ordered_ids (sender, local_id) e.e_seq;
  t.n_ordered <- t.n_ordered + 1;
  if size <= t.cfg.bb_threshold then
    (* PB: the sequencer multicasts the full message. *)
    seq_multicast ~hdr:(grp_hdr t) t s ~size:(data_size t size) (Ordered e)
  else
    (* BB: the data was multicast by the sender; a small accept orders it. *)
    seq_multicast t s ~size:t.cfg.accept_bytes
      (Accept { a_seq = e.e_seq; a_sender = sender; a_local = local_id });
  (* Membership announcements carry extra bookkeeping. *)
  (match e.e_user with
   | Member_joined (index, addr) ->
     Hashtbl.replace s.join_seq index e.e_seq;
     Hashtbl.replace s.sq_delivered index (e.e_seq - 1);
     Hashtbl.replace s.last_status_rsp index s.status_round;
     seq_unicast t s ~dst:addr ~size:t.cfg.accept_bytes
       (Join_ack { j_index = index; j_seq = e.e_seq })
   | Member_left index ->
     Hashtbl.replace s.left_seq index e.e_seq;
     Hashtbl.remove s.sq_members index;
     Hashtbl.remove s.sq_delivered index
   | _ -> ());
  maybe_status_exchange t s;
  arm_idle_check t s

(* A queued ordering request: the sequencer's work is charged as a software
   interrupt on its machine, preempting whatever thread runs there. *)
let schedule_order_now t s ~sender ~local_id ~size ~user =
  Mach.interrupt (seq_mach s) ~layer:Obs.Layer.Amoeba_grp ~name:"grp.sequencer"
    ~cost:t.cfg.seq_process (fun () ->
      do_order t s ~sender ~local_id ~size ~user)

(* Batched ordering: while one sequencer interrupt is pending, further PB
   data requests queue behind it; the interrupt drains up to
   [seq_batch_max] of them, assigns them a consecutive range and announces
   the whole range in one multicast.  Marginal items cost only
   [seq_order_item] instead of a full [seq_process] — the amortization. *)
let do_order_entry t s ~sender ~local_id ~size ~user =
  let e =
    { e_seq = s.next_seq; e_sender = sender; e_local = local_id;
      e_size = size; e_user = user }
  in
  s.next_seq <- s.next_seq + 1;
  Hashtbl.replace s.history e.e_seq e;
  Hashtbl.replace s.ordered_ids (sender, local_id) e.e_seq;
  t.n_ordered <- t.n_ordered + 1;
  e

let rec do_order_batch t s =
  s.sq_batch_scheduled <- false;
  let entries = ref [] and k = ref 0 in
  while !k < t.cfg.seq_batch_max && not (Queue.is_empty s.sq_pending) do
    let sender, local_id, size, user = Queue.pop s.sq_pending in
    entries := do_order_entry t s ~sender ~local_id ~size ~user :: !entries;
    incr k
  done;
  (match List.rev !entries with
   | [] -> ()
   | [ e ] ->
     seq_multicast ~hdr:(grp_hdr t) t s ~size:(data_size t e.e_size) (Ordered e)
   | entries ->
     let sz =
       List.fold_left (fun a e -> a + 8 + e.e_size) t.cfg.header_bytes entries
     in
     seq_multicast ~hdr:(grp_hdr t) t s ~size:sz (Ordered_batch entries));
  maybe_status_exchange t s;
  arm_idle_check t s;
  if not (Queue.is_empty s.sq_pending) then begin
    s.sq_batch_scheduled <- true;
    Mach.interrupt (seq_mach s) ~layer:Obs.Layer.Amoeba_grp ~name:"grp.sequencer"
      ~cost:t.cfg.seq_process (fun () -> do_order_batch t s)
  end

let schedule_order t s ~sender ~local_id ~size ~user =
  Hashtbl.replace s.ordered_ids (sender, local_id) queued_mark;
  if
    t.cfg.seq_batch_max > 1 && sender <> system_sender
    && size <= t.cfg.bb_threshold
  then begin
    Queue.push (sender, local_id, size, user) s.sq_pending;
    let k = Queue.length s.sq_pending in
    if not s.sq_batch_scheduled then begin
      s.sq_batch_scheduled <- true;
      Mach.interrupt (seq_mach s) ~layer:Obs.Layer.Amoeba_grp
        ~name:"grp.sequencer" ~cost:t.cfg.seq_process (fun () ->
          do_order_batch t s)
    end
    else if k > 1 then
      (* The marginal item rides the already-pending interrupt; its cost
         lands as a separate cheap interrupt so the ledger still sees it. *)
      Mach.interrupt (seq_mach s) ~layer:Obs.Layer.Amoeba_grp
        ~name:"grp.seq-batch-item" ~cost:t.cfg.seq_order_item (fun () -> ())
  end
  else schedule_order_now t s ~sender ~local_id ~size ~user

let resend_ordered t s ~seq ~to_member =
  match (Hashtbl.find_opt s.history seq, Hashtbl.find_opt s.sq_members to_member) with
  | Some e, Some addr ->
    t.n_retrans <- t.n_retrans + 1;
    seq_unicast ~hdr:(grp_hdr t) t s ~dst:addr ~size:(data_size t e.e_size)
      (Ordered e)
  | _ -> () (* trimmed, or the member is gone *)

let trim_history t s =
  let min_delivered = Hashtbl.fold (fun _ v acc -> min v acc) s.sq_delivered max_int in
  if min_delivered >= 0 && min_delivered < max_int then begin
    while s.hist_lo <= min_delivered do
      Hashtbl.remove s.history s.hist_lo;
      s.hist_lo <- s.hist_lo + 1
    done;
    if Hashtbl.length s.history < t.cfg.history_high && all_caught_up s then
      s.status_outstanding <- false
  end

let max_retrans_burst = 32

(* A sender retransmitted a message that was already ordered: the ordering
   multicast was lost on the wire, i.e. lost for every member at once, so
   re-multicast it (an answer to the sender alone would leave the other
   members with an invisible hole at the end of the sequence). *)
let re_announce t s ~seq =
  match Hashtbl.find_opt s.history seq with
  | None -> () (* trimmed: every member already delivered it *)
  | Some e ->
    t.n_retrans <- t.n_retrans + 1;
    if e.e_size <= t.cfg.bb_threshold then
      seq_multicast ~hdr:(grp_hdr t) t s ~size:(data_size t e.e_size) (Ordered e)
    else
      seq_multicast t s ~size:t.cfg.accept_bytes
        (Accept { a_seq = e.e_seq; a_sender = e.e_sender; a_local = e.e_local })

let handle_join_req t s ~addr =
  match Hashtbl.find_opt s.joining addr with
  | Some index -> (
      (* Duplicate join: ack again if the announcement is already out. *)
      match Hashtbl.find_opt s.join_seq index with
      | Some seq ->
        seq_unicast t s ~dst:addr ~size:t.cfg.accept_bytes
          (Join_ack { j_index = index; j_seq = seq })
      | None -> ())
  | None ->
    let index = s.sq_next_index in
    s.sq_next_index <- s.sq_next_index + 1;
    Hashtbl.replace s.joining addr index;
    Hashtbl.replace s.sq_members index addr;
    s.sq_sys_local <- s.sq_sys_local + 1;
    schedule_order t s ~sender:system_sender ~local_id:s.sq_sys_local
      ~size:t.cfg.accept_bytes ~user:(Member_joined (index, addr))

let handle_leave_req t s ~index =
  match Hashtbl.find_opt s.left_seq index with
  | Some seq -> re_announce t s ~seq
  | None ->
    if Hashtbl.mem s.sq_members index then begin
      s.sq_sys_local <- s.sq_sys_local + 1;
      schedule_order t s ~sender:system_sender ~local_id:s.sq_sys_local
        ~size:t.cfg.accept_bytes ~user:(Member_left index)
    end

let seq_handle t s payload =
  match payload with
  | Pb_req { sender; local_id; size; user } -> (
      match Hashtbl.find_opt s.ordered_ids (sender, local_id) with
      | Some seq when seq = queued_mark -> () (* already queued *)
      | Some seq -> re_announce t s ~seq
      | None -> schedule_order t s ~sender ~local_id ~size ~user)
  | Bb_data { sender; local_id; size; user } -> (
      match Hashtbl.find_opt s.ordered_ids (sender, local_id) with
      | Some seq when seq = queued_mark -> ()
      | Some seq -> re_announce t s ~seq
      | None -> schedule_order t s ~sender ~local_id ~size ~user)
  | Retrans_req { rq_member; rq_from } ->
    let upto = min (s.next_seq - 1) (rq_from + max_retrans_burst - 1) in
    Mach.interrupt (seq_mach s) ~layer:Obs.Layer.Amoeba_grp ~name:"grp.retrans"
      ~cost:(t.cfg.seq_process * max 1 (upto - rq_from + 1))
      (fun () ->
        for seq = rq_from to upto do
          resend_ordered t s ~seq ~to_member:rq_member
        done)
  | Status_rsp { st_member; st_delivered } ->
    if Hashtbl.mem s.sq_members st_member then begin
      let prev = try Hashtbl.find s.sq_delivered st_member with Not_found -> -1 in
      Hashtbl.replace s.sq_delivered st_member (max prev st_delivered);
      Hashtbl.replace s.last_status_rsp st_member s.status_round;
      trim_history t s;
      if all_caught_up s then s.status_outstanding <- false
    end
  | Join_req { j_addr } -> handle_join_req t s ~addr:j_addr
  | Leave_req { l_index } -> handle_leave_req t s ~index:l_index
  | _ -> ()

let seq_input t s frag =
  match Flip.Reassembly.add s.sq_reasm frag with
  | Some (_, _, payload) -> seq_handle t s payload
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Member: ordered delivery *)

let wake_receiver m =
  match Queue.take_opt m.recv_waiters with Some wake -> wake () | None -> ()

let membership_event m event =
  (match event with
   | Joined ix -> Hashtbl.replace m.view ix ()
   | Left ix -> Hashtbl.remove m.view ix);
  (match m.on_membership with Some f -> f event | None -> ());
  match event with
  | Joined ix when ix = m.m_index -> (
      match m.join_waiter with
      | Some wake ->
        m.join_waiter <- None;
        wake ()
      | None -> ())
  | Left ix when ix = m.m_index -> (
      (* Out of the group (left or evicted): stop all recovery activity so
         a departed member cannot pester the sequencer forever. *)
      m.m_active <- false;
      (match m.gap_timer with
       | Some h ->
         Sim.Engine.cancel (m_eng m) h;
         m.gap_timer <- None
       | None -> ());
      Hashtbl.reset m.stash;
      Hashtbl.reset m.awaiting_data;
      Hashtbl.reset m.holding;
      match m.leave_waiter with
      | Some wake ->
        m.leave_waiter <- None;
        wake ()
      | None -> ())
  | Joined _ | Left _ -> ()

let deliver m e =
  m.n_delivered <- m.n_delivered + 1;
  if e.e_sender = system_sender then (
    match e.e_user with
    | Member_joined (ix, _) -> membership_event m (Joined ix)
    | Member_left ix -> membership_event m (Left ix)
    | _ -> ())
  else begin
    Queue.push (e.e_sender, e.e_size, e.e_user) m.deliver_q;
    wake_receiver m;
    if e.e_sender = m.m_index then
      match Hashtbl.find_opt m.sends e.e_local with
      | Some sw ->
        Hashtbl.remove m.sends e.e_local;
        sw.sw_done <- true;
        (match sw.sw_timer with Some h -> Sim.Engine.cancel (m_eng m) h | None -> ());
        (match sw.sw_resume with
         | Some resume ->
           sw.sw_resume <- None;
           resume ()
         | None -> ())
      | None -> ()
  end

let send_retrans_req m =
  if m.m_active then begin
    m.grp.n_retrans <- m.grp.n_retrans + 1;
    Flip.Flip_iface.unicast m.m_flip ~src:m.m_addr ~dst:m.grp.saddr
      ~size:m.grp.cfg.accept_bytes
      (Retrans_req { rq_member = m.m_index; rq_from = m.expected })
  end

(* Re-request while a gap persists. *)
let rec arm_gap_timer m =
  if m.gap_timer = None && Hashtbl.length m.stash > 0 then
    m.gap_timer <-
      Some
        (Sim.Engine.after (m_eng m) m.grp.cfg.retrans_timeout (fun () ->
             m.gap_timer <- None;
             if Hashtbl.length m.stash > 0 then begin
               send_retrans_req m;
               arm_gap_timer m
             end))

let rec drain m =
  match Hashtbl.find_opt m.stash m.expected with
  | Some (Full e) ->
    Hashtbl.remove m.stash m.expected;
    m.expected <- m.expected + 1;
    deliver m e;
    drain m
  | Some (Awaiting _) | None -> ()

let handle_ordered m e =
  if m.m_active && m.expected >= 0 && e.e_seq >= m.expected then begin
    (match Hashtbl.find_opt m.stash e.e_seq with
     | Some (Full _) -> () (* duplicate *)
     | Some (Awaiting _) | None -> Hashtbl.replace m.stash e.e_seq (Full e));
    Hashtbl.remove m.awaiting_data (e.e_sender, e.e_local);
    let had_gap = e.e_seq > m.expected in
    drain m;
    if had_gap && Hashtbl.length m.stash > 0 then begin
      send_retrans_req m;
      arm_gap_timer m
    end
  end

let handle_accept m ~a_seq ~a_sender ~a_local =
  if m.expected >= 0 && a_seq >= m.expected then
    match Hashtbl.find_opt m.holding (a_sender, a_local) with
    | Some (size, user) ->
      Hashtbl.remove m.holding (a_sender, a_local);
      handle_ordered m
        { e_seq = a_seq; e_sender = a_sender; e_local = a_local; e_size = size; e_user = user }
    | None ->
      (* Accept outran (or lost) the data: remember and fetch it. *)
      (match Hashtbl.find_opt m.stash a_seq with
       | Some (Full _) -> ()
       | Some (Awaiting _) | None ->
         Hashtbl.replace m.stash a_seq (Awaiting { aw_sender = a_sender; aw_local = a_local });
         Hashtbl.replace m.awaiting_data (a_sender, a_local) a_seq;
         send_retrans_req m;
         arm_gap_timer m)

let member_handle m payload =
  match payload with
  | Ordered e -> handle_ordered m e
  | Ordered_batch entries -> List.iter (fun e -> handle_ordered m e) entries
  | Accept { a_seq; a_sender; a_local } -> handle_accept m ~a_seq ~a_sender ~a_local
  | Bb_data { sender; local_id; size; user } -> (
      match Hashtbl.find_opt m.awaiting_data (sender, local_id) with
      | Some seq ->
        Hashtbl.remove m.awaiting_data (sender, local_id);
        handle_ordered m
          { e_seq = seq; e_sender = sender; e_local = local_id; e_size = size; e_user = user }
      | None ->
        if not (Hashtbl.mem m.holding (sender, local_id)) then
          Hashtbl.replace m.holding (sender, local_id) (size, user))
  | Status_req { sr_next } ->
    if m.m_index >= 0 && m.m_active then begin
      (* A silent tail: the sequencer has ordered messages we never saw
         and nothing later arrived to reveal the hole — fetch them. *)
      if m.expected < sr_next then send_retrans_req m;
      Flip.Flip_iface.unicast m.m_flip ~src:m.m_addr ~dst:m.grp.saddr
        ~size:m.grp.cfg.accept_bytes
        (Status_rsp { st_member = m.m_index; st_delivered = m.expected - 1 })
    end
  | Join_ack { j_index; j_seq } ->
    if m.m_index < 0 then begin
      m.m_index <- j_index;
      m.expected <- j_seq;
      (* Pull the announcement (and anything since) from the history. *)
      send_retrans_req m
    end
  | _ -> ()

let member_input m frag =
  match Flip.Reassembly.add m.m_reasm frag with
  | Some (_, _, payload) -> member_handle m payload
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Member API *)

let send m ~size payload =
  Obs.Recorder.with_span (m_eng m) Obs.Layer.Amoeba_grp "send" @@ fun () ->
  let t = m.grp in
  let thread = Thread.self () in
  assert (Thread.machine thread == m_mach m);
  if m.m_index < 0 || not m.m_active then
    raise (Group_failure "send from a member that has not joined (or has left)");
  Thread.call_frames ~layer:Obs.Layer.Amoeba_grp t.cfg.call_depth;
  m.next_local <- m.next_local + 1;
  let sw =
    {
      sw_local = m.next_local;
      sw_size = size;
      sw_user = payload;
      sw_done = false;
      sw_failed = false;
      sw_resume = None;
      sw_timer = None;
      sw_tries = 0;
    }
  in
  Hashtbl.replace m.sends sw.sw_local sw;
  let msg_size = data_size t size in
  let msg_id = Flip.Flip_iface.alloc_msg_id m.m_flip in
  let transmit () =
    if size <= t.cfg.bb_threshold then
      Flip.Flip_iface.unicast ~msg_id ~hdr:(grp_hdr t) m.m_flip ~src:m.m_addr
        ~dst:t.saddr ~size:msg_size
        (Pb_req { sender = m.m_index; local_id = sw.sw_local; size; user = payload })
    else
      Flip.Flip_iface.multicast ~msg_id ~hdr:(grp_hdr t) m.m_flip ~src:m.m_addr
        ~group:t.gaddr ~size:msg_size
        (Bb_data { sender = m.m_index; local_id = sw.sw_local; size; user = payload })
  in
  let rec arm () =
    sw.sw_timer <-
      Some
        (Sim.Engine.after (m_eng m) t.cfg.retrans_timeout (fun () ->
             if not sw.sw_done then
               if sw.sw_tries >= t.cfg.max_retries then begin
                 sw.sw_failed <- true;
                 Hashtbl.remove m.sends sw.sw_local;
                 match sw.sw_resume with
                 | Some resume ->
                   sw.sw_resume <- None;
                   resume ()
                 | None -> ()
               end
               else begin
                 sw.sw_tries <- sw.sw_tries + 1;
                 t.n_retrans <- t.n_retrans + 1;
                 let cost = Flip.Flip_iface.send_cost m.m_flip ~size:msg_size in
                 Mach.interrupt (m_mach m) ~layer:Obs.Layer.Amoeba_grp
                   ~charges:[ (Obs.Layer.Flip, Obs.Cause.Proto_proc, cost) ]
                   ~name:"grp.resend" ~cost transmit;
                 arm ()
               end))
  in
  (* Transmission overlaps the system call's copy work, as in the RPC. *)
  transmit ();
  arm ();
  let copy = size * t.cfg.copy_byte in
  let out = Flip.Flip_iface.send_cost m.m_flip ~size:msg_size in
  Thread.syscall ~layer:Obs.Layer.Amoeba_grp ~kernel_work:(copy + out)
    ~charges:
      [ (Obs.Layer.Amoeba_grp, Obs.Cause.Copy, copy);
        (Obs.Layer.Flip, Obs.Cause.Proto_proc, out) ]
    ();
  if not sw.sw_done then Thread.suspend (fun _ resume -> sw.sw_resume <- Some resume);
  Thread.ret_frames ~layer:Obs.Layer.Amoeba_grp t.cfg.call_depth;
  if sw.sw_failed then raise (Group_failure "broadcast not ordered after retries")

let rec receive_loop m =
  let t = m.grp in
  Thread.syscall ~layer:Obs.Layer.Amoeba_grp ();
  match Queue.take_opt m.deliver_q with
  | Some (sender, size, user) ->
    Thread.compute_parts ~layer:Obs.Layer.Amoeba_grp
      [ (Obs.Cause.Proto_proc, t.cfg.deliver_fixed);
        (Obs.Cause.Copy, size * t.cfg.copy_byte) ];
    (sender, size, user)
  | None ->
    Thread.suspend (fun _ resume -> Queue.push resume m.recv_waiters);
    receive_loop m

let receive m =
  Obs.Recorder.with_span (m_eng m) Obs.Layer.Amoeba_grp "receive" (fun () ->
      receive_loop m)

(* ------------------------------------------------------------------ *)
(* Construction and membership *)

let make_member t flip ~index ~active =
  {
    grp = t;
    m_flip = flip;
    m_index = index;
    m_addr = Flip.Address.fresh_point (Mach.engine (Flip.Flip_iface.machine flip));
    m_reasm = Flip.Reassembly.create ();
    m_active = active;
    expected = (if active then 0 else -1);
    stash = Hashtbl.create 32;
    awaiting_data = Hashtbl.create 8;
    holding = Hashtbl.create 8;
    deliver_q = Queue.create ();
    recv_waiters = Queue.create ();
    sends = Hashtbl.create 4;
    next_local = 0;
    gap_timer = None;
    n_delivered = 0;
    view = Hashtbl.create 8;
    on_membership = None;
    join_waiter = None;
    leave_waiter = None;
  }

let register_member t ?seq_tap m =
  let gaddr_handler =
    match seq_tap with
    | Some s ->
      fun frag ->
        member_input m frag;
        seq_input t s frag
    | None -> fun frag -> member_input m frag
  in
  Flip.Flip_iface.register m.m_flip t.gaddr gaddr_handler;
  Flip.Flip_iface.register m.m_flip m.m_addr (fun frag -> member_input m frag)

let create_static ?(config = default_config) ~name ~sequencer flips =
  let n = Array.length flips in
  assert (n > 0 && sequencer >= 0 && sequencer < n);
  let eng = Mach.engine (Flip.Flip_iface.machine flips.(0)) in
  let t =
    {
      cfg = config;
      gname = name;
      gaddr = Flip.Address.fresh_group eng;
      saddr = Flip.Address.fresh_point eng;
      seqst = None;
      n_ordered = 0;
      n_retrans = 0;
    }
  in
  let members =
    Array.mapi (fun i flip -> make_member t flip ~index:i ~active:true) flips
  in
  Array.iter
    (fun m -> Array.iteri (fun i _ -> Hashtbl.replace m.view i ()) members)
    members;
  let s =
    {
      sq_flip = flips.(sequencer);
      sq_members = Hashtbl.create 16;
      sq_delivered = Hashtbl.create 16;
      sq_next_index = n;
      next_seq = 0;
      history = Hashtbl.create 1024;
      hist_lo = 0;
      ordered_ids = Hashtbl.create 1024;
      sq_reasm = Flip.Reassembly.create ();
      sq_sys_local = 0;
      joining = Hashtbl.create 4;
      join_seq = Hashtbl.create 4;
      left_seq = Hashtbl.create 4;
      status_outstanding = false;
      status_round = 0;
      last_status_rsp = Hashtbl.create 16;
      idle_timer = None;
      sq_pending = Queue.create ();
      sq_batch_scheduled = false;
    }
  in
  Array.iteri
    (fun i m ->
      Hashtbl.replace s.sq_members i m.m_addr;
      Hashtbl.replace s.sq_delivered i (-1))
    members;
  t.seqst <- Some s;
  (* The sequencer's point address lives on its machine. *)
  Flip.Flip_iface.register s.sq_flip t.saddr (fun frag -> seq_input t s frag);
  (* Each member listens on the group address and on its own point address
     (for retransmissions unicast by the sequencer).  On the sequencer's
     machine the group-address traffic also feeds the sequencer, which
     needs to see BB data messages to assign them sequence numbers. *)
  Array.iter
    (fun m ->
      let seq_tap = if m.m_index = sequencer then Some s else None in
      register_member t ?seq_tap m)
    members;
  (t, members)

let join t flip =
  let m = make_member t flip ~index:(-1) ~active:true in
  register_member t m;
  (* Ask the sequencer for a slot, retransmitting until the join
     announcement comes back through the total order. *)
  let cancelled = ref false in
  let send_join () =
    Flip.Flip_iface.unicast m.m_flip ~src:m.m_addr ~dst:t.saddr
      ~size:t.cfg.accept_bytes (Join_req { j_addr = m.m_addr })
  in
  let rec arm tries =
    ignore
      (Sim.Engine.after (m_eng m) t.cfg.retrans_timeout (fun () ->
           if not !cancelled then
             if tries >= t.cfg.max_retries then ()
             else begin
               send_join ();
               arm (tries + 1)
             end))
  in
  let out = Flip.Flip_iface.send_cost m.m_flip ~size:t.cfg.accept_bytes in
  Thread.syscall ~layer:Obs.Layer.Amoeba_grp ~kernel_work:out
    ~charges:[ (Obs.Layer.Flip, Obs.Cause.Proto_proc, out) ]
    ();
  send_join ();
  arm 0;
  Thread.suspend (fun _ resume -> m.join_waiter <- Some resume);
  cancelled := true;
  if m.m_index < 0 then raise (Group_failure "join did not complete");
  m

let leave m =
  let t = m.grp in
  if m.m_index < 0 || not m.m_active then ()
  else begin
    let cancelled = ref false in
    let send_leave () =
      Flip.Flip_iface.unicast m.m_flip ~src:m.m_addr ~dst:t.saddr
        ~size:t.cfg.accept_bytes (Leave_req { l_index = m.m_index })
    in
    let rec arm tries =
      ignore
        (Sim.Engine.after (m_eng m) t.cfg.retrans_timeout (fun () ->
             if not !cancelled then
               if tries >= t.cfg.max_retries then ()
               else begin
                 send_leave ();
                 arm (tries + 1)
               end))
    in
    let out = Flip.Flip_iface.send_cost m.m_flip ~size:t.cfg.accept_bytes in
    Thread.syscall ~layer:Obs.Layer.Amoeba_grp ~kernel_work:out
      ~charges:[ (Obs.Layer.Flip, Obs.Cause.Proto_proc, out) ]
      ();
    send_leave ();
    arm 0;
    Thread.suspend (fun _ resume -> m.leave_waiter <- Some resume);
    cancelled := true
  end
