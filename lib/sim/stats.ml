(* Deterministic fixed-log-bucket histogram: values map to one of 16
   sub-buckets per power of two, so identical inputs always produce
   identical bucket counts (and hence identical percentile estimates)
   regardless of insertion order. *)
module Histogram = struct
  let sub = 16 (* sub-buckets per octave *)
  let min_exp = -30 (* values below 2^-30 collapse into bucket 0 *)
  let max_exp = 40 (* values >= 2^40 collapse into the last bucket *)
  let n_buckets = ((max_exp - min_exp) * sub) + 2

  type t = { counts : int array; mutable n : int }

  let create () = { counts = Array.make n_buckets 0; n = 0 }

  let index v =
    if not (Float.is_finite v) || v <= 0. then 0
    else
      let m, e = Float.frexp v in
      (* v = m * 2^e with m in [0.5, 1) *)
      if e <= min_exp then 0
      else if e > max_exp then n_buckets - 1
      else
        let s = int_of_float ((m -. 0.5) *. float_of_int (2 * sub)) in
        let s = if s < 0 then 0 else if s >= sub then sub - 1 else s in
        1 + ((e - 1 - min_exp) * sub) + s

  (* Midpoint of the bucket's value range: the representative returned by
     percentile queries (relative error bounded by the bucket width,
     ~3%). *)
  let value_of i =
    if i <= 0 then 0.
    else if i >= n_buckets - 1 then Float.ldexp 1. max_exp
    else
      let e = ((i - 1) / sub) + min_exp + 1 in
      let s = (i - 1) mod sub in
      let lo = Float.ldexp (0.5 +. (float_of_int s /. float_of_int (2 * sub))) e in
      let hi =
        Float.ldexp (0.5 +. (float_of_int (s + 1) /. float_of_int (2 * sub))) e
      in
      (lo +. hi) /. 2.

  let add t v =
    let i = index v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1

  let count t = t.n

  let percentile t p =
    if not (Float.is_finite p) || p < 0. || p > 100. then
      invalid_arg (Printf.sprintf "Stats.Histogram.percentile: p = %g not in [0, 100]" p);
    if t.n = 0 then 0.
    else begin
      let rank =
        let r = int_of_float (Float.round (p /. 100. *. float_of_int t.n)) in
        if r < 1 then 1 else if r > t.n then t.n else r
      in
      let i = ref 0 and seen = ref 0 in
      while !seen < rank && !i < n_buckets do
        seen := !seen + t.counts.(!i);
        incr i
      done;
      value_of (!i - 1)
    end
end

type serie = {
  mutable n : int;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
  hist : Histogram.t;
}

type t = {
  ints : (string, int ref) Hashtbl.t;
  floats : (string, serie) Hashtbl.t;
}

let create () = { ints = Hashtbl.create 32; floats = Hashtbl.create 32 }

let int_ref t name =
  match Hashtbl.find_opt t.ints name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.ints name r;
    r

let serie t name =
  match Hashtbl.find_opt t.floats name with
  | Some s -> s
  | None ->
    let s =
      { n = 0; total = 0.; lo = infinity; hi = neg_infinity;
        hist = Histogram.create () }
    in
    Hashtbl.add t.floats name s;
    s

let incr t name = Stdlib.incr (int_ref t name)
let add t name v = int_ref t name := !(int_ref t name) + v
let counter t name = match Hashtbl.find_opt t.ints name with Some r -> !r | None -> 0

let record t name v =
  let s = serie t name in
  s.n <- s.n + 1;
  s.total <- s.total +. v;
  if v < s.lo then s.lo <- v;
  if v > s.hi then s.hi <- v;
  Histogram.add s.hist v

let count t name = match Hashtbl.find_opt t.floats name with Some s -> s.n | None -> 0
let sum t name = match Hashtbl.find_opt t.floats name with Some s -> s.total | None -> 0.

let mean t name =
  match Hashtbl.find_opt t.floats name with
  | Some s when s.n > 0 -> s.total /. float_of_int s.n
  | Some _ | None -> 0.

let min_value t name =
  match Hashtbl.find_opt t.floats name with Some s -> s.lo | None -> infinity

let max_value t name =
  match Hashtbl.find_opt t.floats name with Some s -> s.hi | None -> neg_infinity

let percentile t name p =
  if not (Float.is_finite p) || p < 0. || p > 100. then
    invalid_arg (Printf.sprintf "Stats.percentile: p = %g not in [0, 100]" p);
  match Hashtbl.find_opt t.floats name with
  | None -> 0.
  | Some s when s.n = 0 -> 0.
  | Some s ->
    (* The bucket midpoint can fall slightly outside the observed range;
       clamp so p0/p100 agree with the exact extremes. *)
    Float.max s.lo (Float.min s.hi (Histogram.percentile s.hist p))

let p50 t name = percentile t name 50.
let p90 t name = percentile t name 90.
let p95 t name = percentile t name 95.
let p99 t name = percentile t name 99.
let p999 t name = percentile t name 99.9

let histogram t name =
  match Hashtbl.find_opt t.floats name with Some s -> Some s.hist | None -> None

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.ints []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let series t =
  Hashtbl.fold
    (fun k s acc ->
      let m = if s.n = 0 then 0. else s.total /. float_of_int s.n in
      (k, (s.n, m, s.lo, s.hi)) :: acc)
    t.floats []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt t =
  List.iter (fun (k, v) -> Format.fprintf fmt "%s = %d@." k v) (counters t);
  List.iter
    (fun (k, (n, m, lo, hi)) ->
      Format.fprintf fmt "%s: n=%d mean=%.3f min=%.3f max=%.3f@." k n m lo hi)
    (series t)
