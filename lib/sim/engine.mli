(** The discrete-event engine.

    A single priority queue of timestamped callbacks.  [run] repeatedly pops
    the earliest event, advances the clock to its timestamp and executes its
    callback; callbacks schedule further events.  Equal-time events run in
    scheduling order, so the simulation is fully deterministic.

    An engine is single-domain mutable state: one engine must only ever be
    driven from one domain at a time.  Distinct engines are fully
    independent, so independent simulations may run concurrently on
    OCaml 5 domains (see [Exec.Pool]). *)

type t

exception Stopped
(** Raised inside [run] by {!stop}. *)

exception Fiber_failure of string * exn
(** A fiber raised an uncaught exception; carries the fiber name. *)

val create : unit -> t

val now : t -> Time.t
(** Current simulated time. *)

val fresh_id : t -> int
(** A small unique id scoped to this engine (1, 2, 3, ...).  Layers that
    need simulation-unique identifiers (e.g. FLIP addresses) draw from
    here, so every simulation sees the same id sequence regardless of what
    ran before it or concurrently with it. *)

type handle = Heap.handle

val at : t -> Time.t -> (unit -> unit) -> handle
(** [at t time f] runs [f] when the clock reaches [time].  [time] must not be
    in the past. *)

val after : t -> Time.span -> (unit -> unit) -> handle
(** [after t d f] runs [f] [d] from now. *)

val schedule_now : t -> (unit -> unit) -> handle
(** [schedule_now t f] runs [f] at the current instant, after all callbacks
    already scheduled for this instant. *)

val cancel : t -> handle -> unit
(** [cancel t hd] descheduled the event.  Idempotent; harmless after the
    event fired. *)

val run : ?until:Time.t -> t -> unit
(** [run t] executes events until none remain, [stop] is called, or the
    clock would pass [until] (events beyond [until] stay queued). *)

val step : t -> bool
(** [step t] executes exactly one event.  Returns [false] when none remain.
    Useful in unit tests. *)

val stop : t -> unit
(** Makes the active [run] return after the current callback. *)

val pending : t -> int
(** Number of live events still queued.  O(1). *)

val events_executed : t -> int
(** Total callbacks executed so far; a cheap progress / complexity probe. *)

val events_total : unit -> int
(** Process-wide count of events executed by all engines on all domains
    (updated when each [run] returns). *)
