(** The discrete-event engine.

    Events live in per-lane schedulers, each a hybrid of a near-term binary
    heap and a far-term hierarchical timing wheel ({!Wheel}): the engine
    stamps every event with a per-lane sequence number when it is
    scheduled, and wheel buckets drain into the heap before the clock
    reaches them, so the pop order is exactly the (time, scheduling order)
    total order of a pure heap — the wheel only makes far timers (the
    200 ms retransmission class, nearly always cancelled) O(1) to insert
    and cancel.

    By default an engine has one lane and [run] is a plain sequential
    loop.  A multi-segment topology may call {!configure_lanes} to shard
    the simulation into lanes advanced with conservative windows: each
    window executes every lane up to horizon = earliest event + lookahead
    (the minimum cross-lane latency), then merges buffered cross-lane
    sends in (time, source lane, send seq) order.  Scheduling, execution
    and merge order are all deterministic functions of the event contents,
    so laned runs are reproducible event-for-event; 1-lane engines take
    the exact sequential path.

    An engine is single-domain mutable state: one engine must only ever be
    driven from one domain at a time.  Distinct engines are fully
    independent, so independent simulations may run concurrently on
    OCaml 5 domains (see [Exec.Pool]). *)

type t

exception Stopped
(** Raised inside [run] by {!stop}. *)

exception Fiber_failure of string * exn
(** A fiber raised an uncaught exception; carries the fiber name. *)

val create : ?wheel:bool -> ?wheel_near:Time.span -> unit -> t
(** [create ()] is a fresh 1-lane engine.  [wheel] (default [true])
    enables the far-timer wheel; [wheel_near] (default ~4.2 ms, clamped to
    at least two wheel granules) is the delay below which events bypass the
    wheel.  Disabling the wheel changes performance only, never results. *)

val now : t -> Time.t
(** Current simulated time (of the executing lane). *)

val fresh_id : t -> int
(** A small unique id scoped to this engine (1, 2, 3, ...).  Layers that
    need simulation-unique identifiers (e.g. FLIP addresses) draw from
    here, so every simulation sees the same id sequence regardless of what
    ran before it or concurrently with it. *)

type handle = private int
(** Identifies a scheduled event so it can be cancelled.  An immediate
    int packing (lane, scheduler kind, slot/generation); stale handles
    are harmless. *)

val at : t -> Time.t -> (unit -> unit) -> handle
(** [at t time f] runs [f] when the clock reaches [time].  [time] must not be
    in the past. *)

val after : t -> Time.span -> (unit -> unit) -> handle
(** [after t d f] runs [f] [d] from now. *)

val schedule_now : t -> (unit -> unit) -> handle
(** [schedule_now t f] runs [f] at the current instant, after all callbacks
    already scheduled for this instant. *)

val cancel : t -> handle -> unit
(** [cancel t hd] deschedules the event.  Idempotent; harmless after the
    event fired.  O(1) for wheel-resident (far) timers. *)

val run : ?until:Time.t -> t -> unit
(** [run t] executes events until none remain, [stop] is called, or the
    clock would pass [until] (events beyond [until] stay queued).  The
    process-wide counters ({!events_total}, {!live_hw}) are flushed even if
    a callback raises. *)

val step : t -> bool
(** [step t] executes exactly one event.  Returns [false] when none remain.
    Useful in unit tests.  @raise Invalid_argument on a laned engine. *)

val stop : t -> unit
(** Makes the active [run] return after the current callback. *)

val pending : t -> int
(** Number of live events still queued across all lanes.  O(lanes). *)

val events_executed : t -> int
(** Total callbacks executed so far; a cheap progress / complexity probe. *)

val events_total : unit -> int
(** Process-wide count of events executed by all engines on all domains
    (updated when each [run] returns). *)

(** {1 Event lanes (conservative parallel windows)} *)

val configure_lanes : t -> n:int -> lookahead:Time.span -> unit
(** [configure_lanes t ~n ~lookahead] shards the engine into [n] lanes
    advanced in conservative windows of [lookahead] ns (the minimum
    cross-lane latency; must be positive when [n > 1]).  Must be called
    before cross-lane events exist — in practice by [Net.Topology] at
    build time.  [n = 1] is a no-op.  Events already scheduled stay in
    lane 0.  @raise Invalid_argument if already configured. *)

val n_lanes : t -> int
val lookahead : t -> Time.span

val current_lane : t -> int
(** Lane whose events are currently executing (or being set up). *)

val with_lane : t -> int -> (unit -> 'a) -> 'a
(** [with_lane t lane f] runs the setup code [f] with [lane] as the
    current lane, so events it schedules (fiber spawns, daemons) live — and
    stay — in that lane.  Restores the previous lane on exit. *)

val at_lane : t -> lane:int -> Time.t -> (unit -> unit) -> unit
(** [at_lane t ~lane time f] schedules [f] into [lane].  Same-lane calls
    degrade to {!at}.  Cross-lane sends require
    [time >= now + lookahead] (the conservative guarantee), are buffered
    in a per-source channel stamped (time, source lane, send seq), merge
    deterministically at the window boundary, and cannot be cancelled. *)

val windows : t -> int
(** Number of conservative windows executed so far. *)

val cross_merged : t -> int
(** Number of cross-lane messages merged so far. *)

(** {1 Occupancy accounting} *)

val occupancy_hw : t -> int
(** High-water mark of pending events (heap + wheel) in any single lane of
    this engine. *)

val live_hw : unit -> int
(** Process-wide high-water mark of per-lane pending events across all
    engines since the last {!reset_live_hw} (flushed when each [run]
    returns).  The bench harness records it per artifact to catch event
    leaks. *)

val reset_live_hw : unit -> unit
