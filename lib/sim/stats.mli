(** Named counters and numeric series for instrumenting simulations. *)

(** Deterministic fixed-log-bucket histogram (16 sub-buckets per power of
    two).  Retains only bucket counts, so memory is O(1) per series while
    percentile queries stay within ~3% relative error.  Shared with the
    [Obs] observability subsystem. *)
module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int

  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [0..100]: the midpoint of the bucket
      holding the rank-[p] sample; 0 when empty.  Monotone in [p].
      @raise Invalid_argument when [p] is outside [0, 100] (or not
      finite) — out-of-range queries are a caller bug, not a request to
      extrapolate. *)
end

type t

val create : unit -> t

(** {1 Integer counters} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val counter : t -> string -> int
(** [counter t name] is the counter's value; 0 if never touched. *)

(** {1 Numeric series} — retains count/sum/min/max plus a log-bucket
    histogram, not the raw samples. *)

val record : t -> string -> float -> unit
val count : t -> string -> int
val sum : t -> string -> float
val mean : t -> string -> float
(** [mean t name] is 0.0 when the series is empty. *)

val min_value : t -> string -> float
val max_value : t -> string -> float

val percentile : t -> string -> float -> float
(** [percentile t name p] estimates the [p]-th percentile of the series
    from its histogram, clamped to the observed [min, max]; 0 when the
    series is empty or unknown.
    @raise Invalid_argument when [p] is outside [0, 100] or not finite. *)

val p50 : t -> string -> float
val p90 : t -> string -> float
val p95 : t -> string -> float
val p99 : t -> string -> float
val p999 : t -> string -> float
(** Shorthands for the common percentiles ([percentile t name 95.],
    [p999] = [percentile t name 99.9] etc.), matching the set exported
    by [Obs.Export.csv]. *)

val histogram : t -> string -> Histogram.t option

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val series : t -> (string * (int * float * float * float)) list
(** All series as [(name, (count, mean, min, max))], sorted by name. *)

val pp : Format.formatter -> t -> unit
