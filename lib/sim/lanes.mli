(** Lane plans: how a multi-segment topology shards onto engine lanes.

    One lane per segment (with its attached machines) plus one for the
    switch; the switch's store-and-forward latency is split across the
    ingress and egress hops, so the conservative lookahead is
    [switch_latency / 2] — honest smaller windows for faster network
    eras. *)

type plan = {
  n_lanes : int;
  lookahead : Time.span;
  machine_lane : int array;
  segment_lane : int array;
  switch_lane : int;
  ingress : Time.span;
  egress : Time.span;
}

val plan :
  n_machines:int -> per_segment:int -> switch_latency:Time.span -> plan option
(** [None] when the topology cannot (or need not) shard: a single segment,
    or a switch too fast to leave a positive lookahead — those collapse to
    the sequential engine path. *)

val apply : Engine.t -> plan -> unit
(** Configure the engine's lanes from the plan
    ({!Engine.configure_lanes}). *)
