(* Hierarchical timing wheel for far-future timers.

   Three levels of 256 buckets; level 0 buckets span 2^21 ns (~2.1 ms), so
   level 0 covers ~537 ms — the 200 ms retransmission timers, the 100 ms
   locate timeout and the 20 ms ack delay all land there — level 1 covers
   ~137 s and level 2 ~9.8 h.  Entries live in parallel arrays ("slots")
   doubly linked into their bucket, so insert and cancel are both O(1) and
   cancel reclaims the slot immediately: a cancelled timer costs nothing at
   pop time and is never heapified.  The wheel stores the original
   (time, seq) stamp of each entry; [advance] flushes due buckets (cascading
   upper levels) so the engine can spill them into its near-term heap before
   the clock reaches them, preserving the exact (time, seq) total order of a
   pure-heap scheduler.

   Bucket membership is computed from absolute times, and the engine only
   inserts entries whose bucket lies strictly in the future at insert time
   and flushes every bucket before the clock passes it, so a bucket never
   mixes entries from different wrap-arounds of the index space.  That lets
   a bucket's absolute start time be reconstructed from any resident entry. *)

type handle = int

let levels = 3
let bucket_bits = 8
let buckets_per_level = 1 lsl bucket_bits
let bucket_mask = buckets_per_level - 1
let shift0 = 21

let level_shift l = shift0 + (bucket_bits * l)

(* Span of one bucket at level [l]. *)
let granule l = 1 lsl level_shift l

(* Handle layout mirrors Heap: [gen | slot], 54 bits total. *)
let slot_bits = 26
let slot_mask = (1 lsl slot_bits) - 1
let gen_mask = (1 lsl 28) - 1
let pack ~gen ~slot = (gen lsl slot_bits) lor slot
let handle_slot h = h land slot_mask
let handle_gen h = h lsr slot_bits

let st_free = '\000'
let st_live = '\001'

(* The entry migrated into the engine's heap when its bucket was flushed;
   the slot stays allocated as a forwarding stub (heap handle in [times])
   so the original wheel handle still cancels, and is reclaimed either by
   that cancel or by [release] when the migrated event pops. *)
let st_moved = '\002'

type 'a t = {
  dummy : 'a;
  mutable times : int array;  (* free-list link when free *)
  mutable seqs : int array;
  mutable values : 'a array;
  mutable gens : int array;
  mutable states : Bytes.t;
  mutable nexts : int array;  (* intra-bucket doubly-linked list, -1 ends *)
  mutable prevs : int array;  (* -1 = head of its bucket *)
  mutable buckets : int array;  (* per-slot bucket index = level*256 + idx *)
  heads : int array;  (* levels * buckets_per_level, -1 = empty *)
  mutable free_head : int;
  mutable live : int;
  mutable min_start : int;  (* cached earliest bucket start; max_int = dirty *)
}

let link_free t lo hi =
  for i = lo to hi - 1 do
    t.times.(i) <- i + 1
  done;
  t.times.(hi) <- t.free_head;
  t.free_head <- lo

let create ?(capacity = 64) ~dummy () =
  let capacity = max 8 capacity in
  let t =
    {
      dummy;
      times = Array.make capacity 0;
      seqs = Array.make capacity 0;
      values = Array.make capacity dummy;
      gens = Array.make capacity 0;
      states = Bytes.make capacity st_free;
      nexts = Array.make capacity (-1);
      prevs = Array.make capacity (-1);
      buckets = Array.make capacity 0;
      heads = Array.make (levels * buckets_per_level) (-1);
      free_head = -1;
      live = 0;
      min_start = max_int;
    }
  in
  link_free t 0 (capacity - 1);
  t

let capacity t = Array.length t.times

let grow t =
  let old = capacity t in
  let cap = 2 * old in
  if cap > slot_mask + 1 then invalid_arg "Sim.Wheel: too many pending timers";
  let extend a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 old;
    b
  in
  t.times <- extend t.times 0;
  t.seqs <- extend t.seqs 0;
  t.values <- extend t.values t.dummy;
  t.gens <- extend t.gens 0;
  t.nexts <- extend t.nexts (-1);
  t.prevs <- extend t.prevs (-1);
  t.buckets <- extend t.buckets 0;
  let st = Bytes.make cap st_free in
  Bytes.blit t.states 0 st 0 old;
  t.states <- st;
  link_free t old (cap - 1)

(* Level whose bucket for [time] is strictly ahead of [now]'s: the smallest
   l with distinct, future bucket indices and a distance under one wrap. *)
let level_for ~now ~time =
  let rec find l =
    if l >= levels then levels - 1
    else
      let sh = level_shift l in
      let d = (time lsr sh) - (now lsr sh) in
      if d >= 1 && d < buckets_per_level then l else find (l + 1)
  in
  find 0

(* The engine only routes to the wheel when the bucket is strictly future:
   at least one full level-0 granule past [now] guarantees that. *)
let fits ~now ~time = (time lsr shift0) - (now lsr shift0) >= 1

(* NB: lsr/lsl are right-associative, so the truncation needs parens. *)
let bucket_start ~level time = (time lsr level_shift level) lsl level_shift level

let insert t ~now ~time ~seq value =
  if t.free_head = -1 then grow t;
  let l = level_for ~now ~time in
  let b = (l lsl bucket_bits) lor ((time lsr level_shift l) land bucket_mask) in
  let s = t.free_head in
  t.free_head <- t.times.(s);
  t.times.(s) <- time;
  t.seqs.(s) <- seq;
  t.values.(s) <- value;
  Bytes.unsafe_set t.states s st_live;
  t.buckets.(s) <- b;
  let head = t.heads.(b) in
  t.nexts.(s) <- head;
  t.prevs.(s) <- -1;
  if head <> -1 then t.prevs.(head) <- s;
  t.heads.(b) <- s;
  t.live <- t.live + 1;
  if t.min_start <> max_int then begin
    let start = bucket_start ~level:l time in
    if start < t.min_start then t.min_start <- start
  end;
  pack ~gen:t.gens.(s) ~slot:s

let unlink t s =
  let nx = t.nexts.(s) and pv = t.prevs.(s) in
  if pv = -1 then t.heads.(t.buckets.(s)) <- nx else t.nexts.(pv) <- nx;
  if nx <> -1 then t.prevs.(nx) <- pv

let free_slot t s =
  Bytes.unsafe_set t.states s st_free;
  t.values.(s) <- t.dummy;
  t.gens.(s) <- (t.gens.(s) + 1) land gen_mask;
  t.times.(s) <- t.free_head;
  t.free_head <- s

type cancel_result = Absent | Cancelled | Moved of int

let cancel t h =
  let s = handle_slot h in
  if s >= capacity t || t.gens.(s) land gen_mask <> handle_gen h then Absent
  else begin
    let st = Bytes.unsafe_get t.states s in
    if st = st_live then begin
      unlink t s;
      free_slot t s;
      t.live <- t.live - 1;
      (* min_start may now be stale-low; a too-early boundary only costs an
         empty flush, never a reorder, so leave it. *)
      Cancelled
    end
    else if st = st_moved then begin
      let heap_handle = t.times.(s) in
      free_slot t s;
      Moved heap_handle
    end
    else Absent
  end

let release t h =
  let s = handle_slot h in
  if
    s < capacity t
    && Bytes.unsafe_get t.states s = st_moved
    && t.gens.(s) land gen_mask = handle_gen h
  then free_slot t s

let live t = t.live

(* Earliest non-empty bucket's start time.  A full scan is 768 head probes
   and only runs when the cache was invalidated by a flush. *)
let rescan t =
  let m = ref max_int in
  for l = 0 to levels - 1 do
    for i = 0 to buckets_per_level - 1 do
      let head = t.heads.((l lsl bucket_bits) lor i) in
      if head <> -1 then begin
        let start = bucket_start ~level:l t.times.(head) in
        if start < !m then m := start
      end
    done
  done;
  t.min_start <- !m

let next_boundary t =
  if t.live = 0 then None
  else begin
    if t.min_start = max_int then rescan t;
    (* min_start can point at a bucket emptied purely by cancels. *)
    if t.min_start = max_int then None else Some t.min_start
  end

(* Flush every bucket whose start is <= [upto].  Entries now within one
   level-0 granule of the boundary migrate to the engine's heap: [emit]
   pushes them with their original stamps and returns the heap handle,
   which the slot keeps as a forwarding stub (st_moved) so the wheel
   handle held by the scheduler still cancels them.  Farther entries
   cascade: the same slot relinks into its now-in-range finer bucket
   (always a strictly lower level), keeping its handle valid. *)
let advance t ~upto ~emit =
  for l = levels - 1 downto 0 do
    for i = 0 to buckets_per_level - 1 do
      let b = (l lsl bucket_bits) lor i in
      let head = t.heads.(b) in
      if head <> -1 && bucket_start ~level:l t.times.(head) <= upto then begin
        t.heads.(b) <- -1;
        let s = ref head in
        while !s <> -1 do
          let cur = !s in
          let next = t.nexts.(cur) in
          let time = t.times.(cur) and seq = t.seqs.(cur) in
          if l = 0 || (time lsr shift0) - (upto lsr shift0) < 1 then begin
            let v = t.values.(cur) in
            let heap_handle =
              emit ~time ~seq ~handle:(pack ~gen:t.gens.(cur) ~slot:cur) v
            in
            Bytes.unsafe_set t.states cur st_moved;
            t.values.(cur) <- t.dummy;
            t.times.(cur) <- heap_handle;
            t.live <- t.live - 1
          end
          else begin
            let l' = level_for ~now:upto ~time in
            let b' =
              (l' lsl bucket_bits) lor ((time lsr level_shift l') land bucket_mask)
            in
            t.buckets.(cur) <- b';
            let h' = t.heads.(b') in
            t.nexts.(cur) <- h';
            t.prevs.(cur) <- -1;
            if h' <> -1 then t.prevs.(h') <- cur;
            t.heads.(b') <- cur
          end;
          s := next
        done
      end
    done
  done;
  t.min_start <- max_int

(* Exposed for the model tests. *)
let granule0 = granule 0
