(* Unboxed array-of-slots event heap.

   Events live in parallel arrays indexed by *slot*: an int time, an int
   sequence number and the payload value.  The heap itself is an int array
   of slot indices ordered by (time, seq).  Pushing allocates nothing
   (amortised): a slot is taken from an intrusive free list and the handle
   returned is an immediate int packing the slot index with the slot's
   generation, so stale handles (cancel after the event fired) are
   harmless.  Cancellation marks the slot dead and the entry is skipped
   lazily; when dead entries outnumber live ones the heap is compacted in
   place with a bottom-up heapify. *)

exception Empty

type handle = int

(* Handle layout: [gen | slot] with [slot_bits] low bits of slot index.
   The packed handle fits in 54 bits so the engine can stamp a lane id and
   a scheduler-kind bit above it and still hand out an immediate int.
   Generations wrap within their field; a collision needs the same slot to
   be reused 2^28 times while an old handle is retained. *)
let slot_bits = 26
let slot_mask = (1 lsl slot_bits) - 1
let gen_mask = (1 lsl 28) - 1

let pack ~gen ~slot = (gen lsl slot_bits) lor slot
let handle_slot h = h land slot_mask
let handle_gen h = h lsr slot_bits

(* Slot states. *)
let st_free = '\000'
let st_live = '\001'
let st_dead = '\002'

type 'a t = {
  dummy : 'a;  (* fills vacated value cells so popped payloads can be GC'd *)
  mutable heap : int array;  (* slot indices, min-heap by (time, seq) *)
  mutable len : int;  (* heap entries, including lazily-cancelled ones *)
  mutable times : int array;  (* per-slot event time; free-list link when free *)
  mutable seqs : int array;
  mutable values : 'a array;
  mutable gens : int array;
  mutable states : Bytes.t;
  mutable free_head : int;  (* intrusive free list threaded through [times] *)
  mutable next_seq : int;
  mutable live : int;  (* maintained eagerly on push/pop/cancel *)
}

let link_free t lo hi =
  for i = lo to hi - 1 do
    t.times.(i) <- i + 1
  done;
  t.times.(hi) <- t.free_head;
  t.free_head <- lo

let create ?(capacity = 64) ~dummy () =
  let capacity = max 8 capacity in
  let t =
    {
      dummy;
      heap = Array.make capacity 0;
      len = 0;
      times = Array.make capacity 0;
      seqs = Array.make capacity 0;
      values = Array.make capacity dummy;
      gens = Array.make capacity 0;
      states = Bytes.make capacity st_free;
      free_head = -1;
      next_seq = 0;
      live = 0;
    }
  in
  link_free t 0 (capacity - 1);
  t

let capacity t = Array.length t.heap

let grow t =
  let old = capacity t in
  let cap = 2 * old in
  if cap > slot_mask + 1 then invalid_arg "Sim.Heap: too many pending events";
  let extend a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 old;
    b
  in
  t.heap <- extend t.heap 0;
  t.times <- extend t.times 0;
  t.seqs <- extend t.seqs 0;
  t.values <- extend t.values t.dummy;
  t.gens <- extend t.gens 0;
  let st = Bytes.make cap st_free in
  Bytes.blit t.states 0 st 0 old;
  t.states <- st;
  link_free t old (cap - 1)

(* Strict total order: ties in time break by push sequence (FIFO). *)
let slot_lt t s1 s2 =
  t.times.(s1) < t.times.(s2)
  || (t.times.(s1) = t.times.(s2) && t.seqs.(s1) < t.seqs.(s2))

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if slot_lt t t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && slot_lt t t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && slot_lt t t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let free_slot t s =
  Bytes.unsafe_set t.states s st_free;
  t.values.(s) <- t.dummy;
  t.gens.(s) <- (t.gens.(s) + 1) land gen_mask;
  t.times.(s) <- t.free_head;
  t.free_head <- s

let push_seq t ~time ~seq value =
  if t.free_head = -1 then grow t;
  let s = t.free_head in
  t.free_head <- t.times.(s);
  t.times.(s) <- time;
  t.seqs.(s) <- seq;
  if seq >= t.next_seq then t.next_seq <- seq + 1;
  t.values.(s) <- value;
  Bytes.unsafe_set t.states s st_live;
  t.heap.(t.len) <- s;
  t.len <- t.len + 1;
  t.live <- t.live + 1;
  sift_up t (t.len - 1);
  pack ~gen:t.gens.(s) ~slot:s

let push t ~time value = push_seq t ~time ~seq:t.next_seq value

(* Remove the root slot from the heap array (state untouched). *)
let pop_top t =
  let s = t.heap.(0) in
  t.len <- t.len - 1;
  t.heap.(0) <- t.heap.(t.len);
  if t.len > 0 then sift_down t 0;
  s

(* Discard cancelled entries sitting at the root. *)
let rec prune t =
  if t.len > 0 && Bytes.unsafe_get t.states t.heap.(0) = st_dead then begin
    free_slot t (pop_top t);
    prune t
  end

let is_empty t =
  prune t;
  t.len = 0

let min_time_exn t =
  prune t;
  if t.len = 0 then raise Empty;
  t.times.(t.heap.(0))

let pop_min_exn t =
  prune t;
  if t.len = 0 then raise Empty;
  let s = pop_top t in
  t.live <- t.live - 1;
  let v = t.values.(s) in
  free_slot t s;
  v

let pop t =
  prune t;
  if t.len = 0 then None
  else begin
    let time = t.times.(t.heap.(0)) in
    Some (time, pop_min_exn t)
  end

let peek_time t =
  prune t;
  if t.len = 0 then None else Some t.times.(t.heap.(0))

(* Drop every dead entry and rebuild the heap bottom-up (Floyd, O(n)). *)
let compact t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let s = t.heap.(i) in
    if Bytes.unsafe_get t.states s = st_dead then free_slot t s
    else begin
      t.heap.(!j) <- s;
      incr j
    end
  done;
  t.len <- !j;
  for i = (t.len / 2) - 1 downto 0 do
    sift_down t i
  done

let cancel t h =
  let s = handle_slot h in
  if
    s < capacity t
    && Bytes.unsafe_get t.states s = st_live
    && t.gens.(s) land gen_mask = handle_gen h
  then begin
    Bytes.unsafe_set t.states s st_dead;
    t.live <- t.live - 1;
    if t.len - t.live > t.live && t.len > 64 then compact t
  end

let cancelled t h =
  let s = handle_slot h in
  s < capacity t
  && Bytes.unsafe_get t.states s = st_dead
  && t.gens.(s) land gen_mask = handle_gen h

let live_size t = t.live
let size t = t.len
