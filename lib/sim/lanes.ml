(* Lane plans: how a topology shards onto engine lanes.

   One lane per network segment (a segment and the machines attached to it
   share all their synchronous interactions: medium arbitration, NIC rx
   interrupts, CPU scheduling), plus one lane for the store-and-forward
   switch.  The only cross-lane edges are segment->switch (ingress) and
   switch->segment (egress); splitting the switch latency across the two
   hops makes the minimum cross-lane delay — the conservative lookahead —
   half the switch latency, which is positive for every network era. *)

type plan = {
  n_lanes : int;  (* n_segments + 1 (switch) *)
  lookahead : Time.span;  (* min cross-lane latency = min(ingress, egress) *)
  machine_lane : int array;  (* machine index -> lane *)
  segment_lane : int array;  (* segment index -> lane *)
  switch_lane : int;
  ingress : Time.span;  (* segment -> switch hop *)
  egress : Time.span;  (* switch -> destination segment hop *)
}

let plan ~n_machines ~per_segment ~switch_latency =
  if n_machines <= 0 || per_segment <= 0 then None
  else begin
    let n_segments = (n_machines + per_segment - 1) / per_segment in
    let ingress = switch_latency / 2 in
    let egress = switch_latency - ingress in
    let lookahead = min ingress egress in
    (* One segment has no switch and nothing to shard; a sub-2 ns switch
       would leave no conservative window.  Collapse to sequential. *)
    if n_segments < 2 || lookahead <= 0 then None
    else
      Some
        {
          n_lanes = n_segments + 1;
          lookahead;
          machine_lane = Array.init n_machines (fun i -> i / per_segment);
          segment_lane = Array.init n_segments (fun s -> s);
          switch_lane = n_segments;
          ingress;
          egress;
        }
  end

let apply eng p = Engine.configure_lanes eng ~n:p.n_lanes ~lookahead:p.lookahead
