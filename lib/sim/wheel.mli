(** Hierarchical timing wheel for far-future timers.

    Three levels of 256 buckets (level-0 granule 2^21 ns ≈ 2.1 ms, so
    level 0 alone spans ~537 ms).  Insert and cancel are O(1); cancel
    unlinks and reclaims the slot immediately, so the dominant timer class
    — 200 ms retransmission timers that are nearly always cancelled —
    never reaches a comparison-based structure at all.

    The wheel is a staging area, not a scheduler: each entry keeps the
    caller-assigned [(time, seq)] stamp, and the engine drains due buckets
    into its near-term heap with {!advance} before the clock reaches them,
    so the merged pop order is exactly that of a pure heap. *)

type 'a t

type handle = int
(** Immediate-int, generation-tagged; stale handles are harmless.
    Packed as [gen lsl 26 lor slot], 54 bits — same envelope as
    {!Heap.handle}. *)

val create : ?capacity:int -> dummy:'a -> unit -> 'a t

val fits : now:Time.t -> time:Time.t -> bool
(** [fits ~now ~time] — [time]'s level-0 bucket lies strictly in the
    future, so the entry may go on the wheel; otherwise it belongs in the
    near-term heap. *)

val insert : 'a t -> now:Time.t -> time:Time.t -> seq:int -> 'a -> handle
(** O(1).  Requires [fits ~now ~time]. *)

type cancel_result =
  | Absent  (** stale handle: already fired, released or cancelled *)
  | Cancelled  (** was live on the wheel; slot unlinked and freed *)
  | Moved of int
      (** had migrated to the engine's heap; carries the heap handle the
          caller must cancel there.  The forwarding slot is freed. *)

val cancel : 'a t -> handle -> cancel_result
(** O(1).  Idempotent, safe on stale handles. *)

val release : 'a t -> handle -> unit
(** Reclaim a migrated entry's forwarding slot once the event has popped
    from the heap.  No-op on anything but an [st_moved] slot with a
    matching generation. *)

val live : 'a t -> int
(** Number of pending entries.  O(1). *)

val next_boundary : 'a t -> Time.t option
(** Start time of the earliest non-empty bucket — the latest moment by
    which that bucket must be {!advance}d to preserve order.  May be
    conservatively early after cancels (an early flush is harmless). *)

val advance :
  'a t ->
  upto:Time.t ->
  emit:(time:Time.t -> seq:int -> handle:handle -> 'a -> int) ->
  unit
(** [advance t ~upto ~emit] drains every bucket starting at or before
    [upto]: near entries are passed to [emit] with their original stamps
    plus their wheel handle, and [emit] must return the heap handle it
    pushed the entry under — the slot becomes a forwarding stub so the
    wheel handle keeps cancelling the (now heap-resident) event, and is
    reclaimed by {!cancel} or {!release}.  Far entries cascade to finer
    buckets in place, keeping their handles valid.  [upto] must not exceed
    {!next_boundary} (the engine flushes a bucket before executing any
    event at or past its start). *)

val granule0 : int
(** Width of a level-0 bucket in ns (exposed for tests). *)
