(* The discrete-event engine: per-lane hybrid scheduler + conservative
   windows.

   Each lane owns a near-term heap and a far-term timing wheel.  The engine
   assigns every scheduled event a per-lane sequence number at [at]-time, so
   (time, seq) is a total order independent of which structure holds the
   event; wheel buckets are drained into the heap strictly before the clock
   reaches them, so the hybrid pops the exact sequence a pure heap would.

   With one lane (the default) [run] is the plain sequential loop.  When a
   multi-segment topology configures lanes, [run] advances them in
   conservative windows: horizon = (earliest event anywhere) + lookahead,
   every lane executes its events strictly below the horizon in lane order,
   then buffered cross-lane sends — which the lookahead guarantees land at
   or past the horizon — are merged in (time, src lane, send seq) order.
   Both the window schedule and the merge are deterministic functions of
   the event contents, so a laned run is reproducible event-for-event at
   any `-j N`, and a 1-lane configuration collapses to the sequential
   path. *)

type xmsg = {
  x_time : Time.t;
  x_src : int;
  x_seq : int;  (* per-source-lane send counter *)
  x_dst : int;
  x_fn : unit -> unit;
}

type lane = {
  l_id : int;
  l_heap : (unit -> unit) Heap.t;
  l_wheel : (unit -> unit) Wheel.t;
  mutable l_clock : Time.t;
  mutable l_seq : int;  (* next (time, seq) tie-break for this lane *)
  mutable l_xseq : int;  (* next cross-lane send stamp *)
  mutable l_out : xmsg list;  (* buffered cross-lane sends, newest first *)
  mutable l_exec : int;
}

type t = {
  mutable lanes : lane array;
  mutable cur : lane;  (* lane whose events are executing / being set up *)
  mutable lookahead : Time.span;  (* 0 until lanes are configured *)
  mutable clock : Time.t;  (* mirrors cur.l_clock; what [now] reads *)
  mutable stopped : bool;
  mutable flushed : int;  (* events already added to [total_executed] *)
  mutable next_id : int;
  wheel_on : bool;
  wheel_near : Time.span;  (* below this delay events go straight to heap *)
  mutable max_live : int;  (* high-water mark of pending events *)
  mutable windows : int;
  mutable merged : int;
}

exception Stopped
exception Fiber_failure of string * exn

type handle = int

(* Handle layout: [lane:7 | kind:1 | payload:54].  kind 0 = heap, 1 = wheel;
   the payload is the structure's own gen/slot packing.  A 1-lane engine's
   heap handles are therefore numerically identical to the payload. *)
let lane_shift = 55
let kind_bit = 1 lsl 54
let payload_mask = kind_bit - 1
let max_lanes = 128

(* Process-wide tally of executed events across all engines and domains,
   flushed in batches at the end of [run] so the hot path never touches
   shared state.  Powers the events/sec figures in the benchmark JSON. *)
let total_executed = Atomic.make 0

let events_total () = Atomic.get total_executed

(* Process-wide high-water mark of pending events (heap + wheel, max over
   lanes and engines), flushed like [total_executed].  The bench harness
   records it per artifact to catch event leaks. *)
let global_live_hw = Atomic.make 0

let live_hw () = Atomic.get global_live_hw
let reset_live_hw () = Atomic.set global_live_hw 0

let make_lane id =
  {
    l_id = id;
    l_heap = Heap.create ~dummy:ignore ();
    l_wheel = Wheel.create ~dummy:ignore ();
    l_clock = Time.zero;
    l_seq = 0;
    l_xseq = 0;
    l_out = [];
    l_exec = 0;
  }

let default_wheel_near = 2 * Wheel.granule0

let create ?(wheel = true) ?(wheel_near = default_wheel_near) () =
  let lane0 = make_lane 0 in
  {
    lanes = [| lane0 |];
    cur = lane0;
    lookahead = 0;
    clock = Time.zero;
    stopped = false;
    flushed = 0;
    next_id = 0;
    wheel_on = wheel;
    wheel_near = max wheel_near (2 * Wheel.granule0);
    max_live = 0;
    windows = 0;
    merged = 0;
  }

let now t = t.clock

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let executed t =
  let n = ref 0 in
  for i = 0 to Array.length t.lanes - 1 do
    n := !n + t.lanes.(i).l_exec
  done;
  !n

(* Schedule [f] at [time] in [lane], drawing the lane's next sequence
   number.  Far-future events go to the wheel (O(1) insert/cancel, never
   heapified); the wheel preserves (time, seq) so order is unaffected. *)
let push_lane t lane time f =
  let seq = lane.l_seq in
  lane.l_seq <- seq + 1;
  let payload =
    if
      t.wheel_on
      && time - lane.l_clock >= t.wheel_near
      && Wheel.fits ~now:lane.l_clock ~time
    then (Wheel.insert lane.l_wheel ~now:lane.l_clock ~time ~seq f :> int) lor kind_bit
    else (Heap.push_seq lane.l_heap ~time ~seq f :> int)
  in
  let occ = Heap.live_size lane.l_heap + Wheel.live lane.l_wheel in
  if occ > t.max_live then t.max_live <- occ;
  (lane.l_id lsl lane_shift) lor payload

let at t time f =
  assert (time >= t.cur.l_clock);
  push_lane t t.cur time f

let after t d f = at t (t.cur.l_clock + d) f
let schedule_now t f = at t t.cur.l_clock f

let cancel t h =
  if h >= 0 then begin
    let lane = t.lanes.((h lsr lane_shift) land (max_lanes - 1)) in
    let payload = h land payload_mask in
    if h land kind_bit <> 0 then
      (* The event may have migrated to the heap when its bucket was
         flushed; the wheel slot forwards us to the heap handle. *)
      match Wheel.cancel lane.l_wheel payload with
      | Wheel.Moved heap_handle -> Heap.cancel lane.l_heap heap_handle
      | Wheel.Cancelled | Wheel.Absent -> ()
    else Heap.cancel lane.l_heap payload
  end

(* Earliest pending event time in [lane], draining due wheel buckets into
   the heap first so the heap top is authoritative. *)
let rec lane_next_time lane =
  let hp = Heap.peek_time lane.l_heap in
  match Wheel.next_boundary lane.l_wheel with
  | Some b when (match hp with None -> true | Some ht -> b <= ht) ->
    Wheel.advance lane.l_wheel ~upto:b ~emit:(fun ~time ~seq ~handle f ->
        (* The wrapper reclaims the forwarding slot when the migrated
           event fires, so stale wheel handles can never resurrect it. *)
        (Heap.push_seq lane.l_heap ~time ~seq (fun () ->
             Wheel.release lane.l_wheel handle;
             f ())
          :> int));
    lane_next_time lane
  | _ -> hp

let exec_next t lane =
  let time = Heap.min_time_exn lane.l_heap in
  let f = Heap.pop_min_exn lane.l_heap in
  lane.l_clock <- time;
  t.clock <- time;
  lane.l_exec <- lane.l_exec + 1;
  f ()

let step t =
  if Array.length t.lanes > 1 then
    invalid_arg "Sim.Engine.step: laned engine (use run)";
  let lane = t.lanes.(0) in
  match lane_next_time lane with
  | None -> false
  | Some _ ->
    exec_next t lane;
    true

let flush_executed t =
  let e = executed t in
  let d = e - t.flushed in
  if d > 0 then begin
    ignore (Atomic.fetch_and_add total_executed d);
    t.flushed <- e
  end;
  let rec bump () =
    let c = Atomic.get global_live_hw in
    if t.max_live > c && not (Atomic.compare_and_set global_live_hw c t.max_live)
    then bump ()
  in
  bump ()

(* ---- sequential path (1 lane) ---- *)

let run_seq ?until t =
  let lane = t.lanes.(0) in
  let continue () =
    if t.stopped then false
    else
      match lane_next_time lane with
      | None -> false
      | Some time -> (
        match until with Some limit -> time <= limit | None -> true)
  in
  while continue () do
    exec_next t lane
  done;
  match until with
  | Some limit
    when (not t.stopped)
         && lane.l_clock < limit
         && lane_next_time lane <> None ->
    lane.l_clock <- limit;
    t.clock <- limit
  | _ -> ()

(* ---- conservative laned path ---- *)

let lane_compare_xmsg a b =
  if a.x_time <> b.x_time then compare a.x_time b.x_time
  else if a.x_src <> b.x_src then compare a.x_src b.x_src
  else compare a.x_seq b.x_seq

(* Deliver buffered cross-lane sends into their destination lanes.  Sorting
   by (time, src lane, send seq) makes destination sequence assignment — and
   therefore all downstream tie-breaks — a deterministic function of the
   events alone, independent of shard count or execution interleaving. *)
let merge_channels t =
  let msgs = ref [] in
  Array.iter
    (fun lane ->
      if lane.l_out <> [] then begin
        msgs := List.rev_append lane.l_out !msgs;
        lane.l_out <- []
      end)
    t.lanes;
  match !msgs with
  | [] -> ()
  | ms ->
    let arr = Array.of_list ms in
    Array.sort lane_compare_xmsg arr;
    Array.iter
      (fun m ->
        t.merged <- t.merged + 1;
        ignore (push_lane t t.lanes.(m.x_dst) m.x_time m.x_fn))
      arr

let run_lane_window t lane ~horizon =
  t.cur <- lane;
  t.clock <- lane.l_clock;
  let continue () =
    (not t.stopped)
    &&
    match lane_next_time lane with
    | Some time -> time < horizon
    | None -> false
  in
  while continue () do
    exec_next t lane
  done

let run_laned ?until t =
  (* A [stop] can leave sends buffered mid-window; fold them in first. *)
  merge_channels t;
  let rec window () =
    if not t.stopped then begin
      let tmin = ref max_int in
      Array.iter
        (fun lane ->
          match lane_next_time lane with
          | Some time when time < !tmin -> tmin := time
          | _ -> ())
        t.lanes;
      if
        !tmin <> max_int
        && match until with Some limit -> !tmin <= limit | None -> true
      then begin
        let horizon = !tmin + t.lookahead in
        let horizon =
          match until with
          | Some limit -> min horizon (limit + 1)
          | None -> horizon
        in
        t.windows <- t.windows + 1;
        Array.iter (fun lane -> run_lane_window t lane ~horizon) t.lanes;
        merge_channels t;
        window ()
      end
    end
  in
  window ();
  match until with
  | Some limit when not t.stopped ->
    (* Mirror the sequential clamp: park every idle lane at the limit. *)
    let remaining = ref false in
    Array.iter
      (fun lane -> if lane_next_time lane <> None then remaining := true)
      t.lanes;
    if !remaining then begin
      Array.iter
        (fun lane -> if lane.l_clock < limit then lane.l_clock <- limit)
        t.lanes;
      t.clock <- limit
    end
  | _ -> ()

let run ?until t =
  t.stopped <- false;
  Fun.protect
    ~finally:(fun () -> flush_executed t)
    (fun () ->
      if Array.length t.lanes = 1 then run_seq ?until t
      else run_laned ?until t)

let stop t = t.stopped <- true

let pending t =
  let n = ref 0 in
  Array.iter
    (fun lane -> n := !n + Heap.live_size lane.l_heap + Wheel.live lane.l_wheel)
    t.lanes;
  !n

let events_executed t = executed t

(* ---- lane configuration and introspection ---- *)

let configure_lanes t ~n ~lookahead =
  if n < 1 || n > max_lanes then invalid_arg "Sim.Engine.configure_lanes: n";
  if n > 1 && lookahead <= 0 then
    invalid_arg "Sim.Engine.configure_lanes: lookahead must be positive";
  if Array.length t.lanes > 1 then
    invalid_arg "Sim.Engine.configure_lanes: already configured";
  if n > 1 then begin
    t.lanes <- Array.init n (fun i -> if i = 0 then t.lanes.(0) else make_lane i);
    t.lookahead <- lookahead
  end

let n_lanes t = Array.length t.lanes
let lookahead t = t.lookahead
let current_lane t = t.cur.l_id
let windows t = t.windows
let cross_merged t = t.merged
let occupancy_hw t = t.max_live

let with_lane t lane f =
  if lane < 0 || lane >= Array.length t.lanes then
    invalid_arg "Sim.Engine.with_lane";
  let prev = t.cur in
  t.cur <- t.lanes.(lane);
  t.clock <- t.cur.l_clock;
  Fun.protect
    ~finally:(fun () ->
      t.cur <- prev;
      t.clock <- prev.l_clock)
    f

let at_lane t ~lane time f =
  let src = t.cur in
  if lane = src.l_id then ignore (push_lane t src time f)
  else begin
    if lane < 0 || lane >= Array.length t.lanes then
      invalid_arg "Sim.Engine.at_lane";
    (* The conservative protocol is only sound if cross-lane sends cannot
       land inside the current window. *)
    assert (time >= src.l_clock + t.lookahead);
    let seq = src.l_xseq in
    src.l_xseq <- seq + 1;
    src.l_out <-
      { x_time = time; x_src = src.l_id; x_seq = seq; x_dst = lane; x_fn = f }
      :: src.l_out
  end
