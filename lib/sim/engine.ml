type t = {
  heap : (unit -> unit) Heap.t;
  mutable clock : Time.t;
  mutable stopped : bool;
  mutable executed : int;
  mutable flushed : int;  (* events already added to [total_executed] *)
  mutable next_id : int;
}

exception Stopped
exception Fiber_failure of string * exn

type handle = Heap.handle

(* Process-wide tally of executed events across all engines and domains,
   flushed in batches at the end of [run] so the hot path never touches
   shared state.  Powers the events/sec figures in the benchmark JSON. *)
let total_executed = Atomic.make 0

let events_total () = Atomic.get total_executed

let create () =
  {
    heap = Heap.create ~dummy:ignore ();
    clock = Time.zero;
    stopped = false;
    executed = 0;
    flushed = 0;
    next_id = 0;
  }

let now t = t.clock

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let at t time f =
  assert (time >= t.clock);
  Heap.push t.heap ~time f

let after t d f = at t (t.clock + d) f
let schedule_now t f = at t t.clock f
let cancel t h = Heap.cancel t.heap h

let step t =
  if Heap.is_empty t.heap then false
  else begin
    let time = Heap.min_time_exn t.heap in
    let f = Heap.pop_min_exn t.heap in
    t.clock <- time;
    t.executed <- t.executed + 1;
    f ();
    true
  end

let flush_executed t =
  let d = t.executed - t.flushed in
  if d > 0 then begin
    ignore (Atomic.fetch_and_add total_executed d);
    t.flushed <- t.executed
  end

let run ?until t =
  t.stopped <- false;
  let continue () =
    if t.stopped || Heap.is_empty t.heap then false
    else
      match until with
      | Some limit -> Heap.min_time_exn t.heap <= limit
      | None -> true
  in
  while continue () do
    ignore (step t)
  done;
  (match until with
   | Some limit
     when (not t.stopped) && t.clock < limit && not (Heap.is_empty t.heap) ->
     t.clock <- limit
   | _ -> ());
  flush_executed t

let stop t = t.stopped <- true
let pending t = Heap.live_size t.heap
let events_executed t = t.executed
