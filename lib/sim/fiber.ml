open Effect.Deep

type state = Ready | Running | Suspended | Dead

type t = {
  fid : int;
  fname : string;
  eng : Engine.t;
  mutable state : state;
  mutable killed : bool;
  mutable exit_hooks : (unit -> unit) list;
  mutable pending_resume : (unit -> unit) option;
  mutable wake_cleanup : (unit -> unit) option;
}

exception Killed

type _ Effect.t += Suspend : (t -> (unit -> unit) -> unit) -> unit Effect.t

(* Both the fiber-id counter and the currently-running fiber are
   domain-local: each Exec.Pool worker domain drives its own engines, and
   sharing either across domains would race.  Ids stay unique within a
   domain, which is all [Thread]'s fiber-keyed table needs. *)
let next_id = Domain.DLS.new_key (fun () -> ref 0)
let current = Domain.DLS.new_key (fun () : t option ref -> ref None)

let with_current fiber f =
  let current = Domain.DLS.get current in
  let saved = !current in
  current := Some fiber;
  Fun.protect ~finally:(fun () -> current := saved) f

let self_opt () = !(Domain.DLS.get current)

let self () =
  match self_opt () with
  | Some f -> f
  | None -> invalid_arg "Fiber.self: not inside a fiber"

let in_fiber () = self_opt () <> None
let name t = t.fname
let id t = t.fid
let alive t = t.state <> Dead
let engine t = t.eng

let run_exit_hooks fiber =
  let hooks = fiber.exit_hooks in
  fiber.exit_hooks <- [];
  List.iter (fun f -> f ()) hooks

let finish fiber =
  fiber.state <- Dead;
  fiber.pending_resume <- None;
  run_exit_hooks fiber

let handler fiber =
  {
    retc = (fun () -> finish fiber);
    exnc =
      (fun e ->
        finish fiber;
        match e with
        | Killed -> ()
        | e -> raise (Engine.Fiber_failure (fiber.fname, e)));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
          Some
            (fun (k : (a, unit) continuation) ->
              fiber.state <- Suspended;
              let resumed = ref false in
              let resume () =
                if (not !resumed) && fiber.state <> Dead then begin
                  resumed := true;
                  fiber.pending_resume <- None;
                  (match fiber.wake_cleanup with
                   | Some cleanup ->
                     fiber.wake_cleanup <- None;
                     cleanup ()
                   | None -> ());
                  ignore
                    (Engine.schedule_now fiber.eng (fun () ->
                         with_current fiber (fun () ->
                             if fiber.killed then discontinue k Killed
                             else begin
                               fiber.state <- Running;
                               continue k ()
                             end)))
                end
              in
              fiber.pending_resume <- Some resume;
              register fiber resume;
              if fiber.killed then resume ())
        | _ -> None);
  }

let spawn eng ?(name = "fiber") f =
  let next_id = Domain.DLS.get next_id in
  incr next_id;
  let fiber =
    {
      fid = !next_id;
      fname = name;
      eng;
      state = Ready;
      killed = false;
      exit_hooks = [];
      pending_resume = None;
      wake_cleanup = None;
    }
  in
  ignore
    (Engine.schedule_now eng (fun () ->
         if not fiber.killed then begin
           fiber.state <- Running;
           with_current fiber (fun () -> match_with f () (handler fiber))
         end
         else finish fiber));
  fiber

let suspend register =
  let fiber = self () in
  ignore fiber;
  Effect.perform (Suspend register)

let set_wake_cleanup fiber f = fiber.wake_cleanup <- Some f

let sleep d =
  suspend (fun fiber resume ->
      let h = Engine.after fiber.eng d resume in
      set_wake_cleanup fiber (fun () -> Engine.cancel fiber.eng h))

let yield () = sleep 0

let kill t =
  if t.state <> Dead then begin
    t.killed <- true;
    match t.pending_resume with
    | Some resume -> resume ()
    | None -> ()
  end

let on_exit t f = if t.state = Dead then f () else t.exit_hooks <- f :: t.exit_hooks

let join t =
  if alive t then suspend (fun _ resume -> on_exit t resume)
