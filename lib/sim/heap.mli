(** Binary min-heap of timestamped events, unboxed.

    Events live in parallel int/value arrays ("slots"); the heap orders slot
    indices by (time, push sequence), so events with equal timestamps pop in
    insertion order (FIFO), which keeps the simulation deterministic.

    The hot path allocates nothing: [push] returns an immediate-int handle
    and [pop_min_exn]/[min_time_exn] return unboxed values.  Cancellation is
    lazy — a cancelled event is skipped when it reaches the top — but the
    heap compacts itself in place whenever cancelled entries outnumber live
    ones, so a timer-heavy workload cannot grow the heap unboundedly. *)

type 'a t

type handle = int
(** Identifies a scheduled event so it can be cancelled.  An immediate int
    (no allocation); generation-tagged, so using a handle after its event
    fired or was collected is harmless.  Exposed as a plain int so the
    engine can pack lane/kind bits above it (54-bit payload). *)

exception Empty

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty heap.  [dummy] fills vacated value cells
    (it is never returned); pass any value of the element type. *)

val push : 'a t -> time:Time.t -> 'a -> handle
(** [push h ~time v] schedules [v] at [time] and returns its handle. *)

val push_seq : 'a t -> time:Time.t -> seq:int -> 'a -> handle
(** [push_seq h ~time ~seq v] schedules [v] with a caller-supplied tie-break
    sequence number instead of the heap's internal counter.  Used by the
    engine, which owns the per-lane (time, seq) total order so events can
    move between the timing wheel and the heap without reordering.  The
    internal counter is bumped past [seq], so mixing with plain [push]
    stays FIFO. *)

val pop : 'a t -> (Time.t * 'a) option
(** [pop h] removes and returns the earliest live event, skipping cancelled
    ones, or [None] if the heap holds no live event. *)

val is_empty : 'a t -> bool
(** No live event remains (discards cancelled entries at the top). *)

val min_time_exn : 'a t -> Time.t
(** Timestamp of the earliest live event.  @raise Empty if none. *)

val pop_min_exn : 'a t -> 'a
(** Removes and returns the earliest live event without allocating.
    @raise Empty if none. *)

val peek_time : 'a t -> Time.t option
(** [peek_time h] is the timestamp of the earliest live event. *)

val cancel : 'a t -> handle -> unit
(** [cancel h hd] marks the event as dead.  Idempotent; a no-op if the
    event already fired or was already collected. *)

val cancelled : 'a t -> handle -> bool
(** True while the heap still holds [hd]'s entry in cancelled state (after
    the entry is collected — or if it fired normally — this is [false]). *)

val size : 'a t -> int
(** Number of entries still stored, including cancelled ones. *)

val live_size : 'a t -> int
(** Number of entries not yet cancelled.  O(1): the counter is maintained
    eagerly on push, pop and cancel. *)
