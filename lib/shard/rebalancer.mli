(** Ledger-driven shard placement: a controller thread samples every
    server's CPU busy-time ledger ({!Machine.Cpu.busy_time}) on a fixed
    interval, converts window deltas to utilizations, and when a server
    saturates moves its hottest shard — by per-shard op-count heat — to
    the idlest server through {!Service.migrate}.  Decisions are a pure
    function of the sampled ledgers (ties break to the lowest index), so
    rebalanced runs stay deterministic and lane-stable. *)

type config = {
  rb_interval : Sim.Time.span;  (** sampling window *)
  rb_hi : float;  (** source utilization gate *)
  rb_margin : float;  (** required src-dst utilization gap *)
  rb_max_moves : int;  (** cap on threshold-triggered moves *)
  rb_forced : Sim.Time.t list;
      (** ascending times at which one move is forced regardless of the
          gates (beyond [rb_max_moves] if need be) — how tests and smoke
          runs make a migration happen on demand *)
}

val default_config : config
(** 100 ms windows, move when a server passes 55% with a 15-point gap to
    the destination, at most 8 threshold moves, nothing forced. *)

type stats = {
  mutable rs_ticks : int;
  mutable rs_moves : int;
  mutable rs_forced : int;  (** of [rs_moves], how many were forced *)
}

val run :
  Service.t ->
  machines:Machine.Mach.t array ->
  via:int ->
  until:Sim.Time.t ->
  ?config:config ->
  stats ->
  unit
(** The controller loop body; call from a thread on [machines.(via)].
    Returns once a tick lands at or past [until]. *)

val spawn :
  Service.t ->
  machines:Machine.Mach.t array ->
  via:int ->
  until:Sim.Time.t ->
  ?lane_of:(int -> int) ->
  ?config:config ->
  unit ->
  stats
(** Spawns the controller on [machines.(via)] (under [lane_of via] when
    the engine is laned) and returns its live stats record. *)
