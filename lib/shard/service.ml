type params = {
  sv_keys : int;
  sv_value_words : int;
  sv_shards : int;
  sv_replicas : int;
  sv_read_pct : int;
  sv_skew : Load.Keys.skew;
  sv_store_fixed : Sim.Time.span;
  sv_store_word : Sim.Time.span;
  sv_backoff : Sim.Time.span;
}

let default_params =
  {
    sv_keys = 4096;
    sv_value_words = 16;
    sv_shards = 16;
    sv_replicas = 1;
    sv_read_pct = 90;
    sv_skew = Load.Keys.Zipf 0.99;
    sv_store_fixed = Sim.Time.us 5;
    sv_store_word = Sim.Time.ns 10;
    sv_backoff = Sim.Time.ms 2;
  }

type Sim.Payload.t +=
  | Sv_get of { key : int }
  | Sv_put of { key : int; rid : int }
  | Sv_val of { key : int; version : int; block : int array }
  | Sv_ack of { rid : int; dedup : bool }
  | Sv_moved of { shard : int; owner : int; epoch : int }
  | Sv_prop of { shard : int; key : int; version : int; rid : int }
  | Sv_prop_ack
  | Sv_move of { shard : int; to_rank : int; epoch : int }
  | Sv_move_ack of { ok : bool }
  | Sv_install of {
      shard : int;
      epoch : int;
      to_rank : int;
      versions : int array;  (** local-slot order *)
      rids : int array;  (** the shard's dedup set, sorted *)
      relays : (int * int) array;  (** (rid, key) parked during the freeze *)
    }
  | Sv_install_ack

(* Block layout mirrors [Apps.Dht]: value words then a tag word carrying
   the version, so any reader can verify the block against its own tag —
   stale is legal, torn or spliced is not. *)
let block_words p = p.sv_value_words + 1
let mix key version = (key * 1_000_003) lxor (version * 7_919)
let pattern_word key version j = mix key version + j

let fill_block p ~key ~version (a : int array) ~off =
  for j = 0 to p.sv_value_words - 1 do
    a.(off + j) <- pattern_word key version j
  done;
  a.(off + p.sv_value_words) <- version

(* Request framing bytes beyond the data words (opcode, key, rid). *)
let req_meta = 16

type shard_state = {
  ss_shard : int;
  mutable ss_epoch : int;
  mutable ss_primary : bool;
  ss_versions : int array;  (* per local slot *)
  ss_blocks : int array;  (* local slot * block_words *)
  ss_dedup : (int, unit) Hashtbl.t;  (* applied put rids *)
  mutable ss_frozen : bool;  (* handoff started; refuse service *)
  mutable ss_snapped : bool;  (* handoff snapshot taken; stop relaying *)
  mutable ss_relays_rev : (int * int) list;  (* (rid, key), newest first *)
}

type job =
  | Propagate of { shard : int; key : int; version : int; rid : int }
  | Transfer of { shard : int; to_rank : int; epoch : int }

type server = {
  sr_rank : int;
  sr_mach : Machine.Mach.t;
  sr_states : (int, shard_state) Hashtbl.t;
  sr_moved : (int, int * int) Hashtbl.t;  (* handed-off shard -> (owner, epoch) *)
  sr_view_owner : int array;
  sr_view_epoch : int array;
  sr_queue : job Queue.t;  (* async replication, FIFO *)
  sr_xfer : job Queue.t;  (* handoff transfers: drained first, so a frozen
                             shard is never starved behind replication *)
  sr_mu : Machine.Sync.Mutex.t;
  sr_cv : Machine.Sync.Condvar.t;
  mutable sr_ops : int;
}

type view = { vw_owner : int array; vw_epoch : int array }

type kind =
  | Over_rpc of { backends : Orca.Backend.t array; servers : server array }
  | Over_onesided of {
      rnics : Onesided.Rnic.t array;
      addrs : Flip.Address.t array;  (* per server index *)
      stores : int array array;  (* per server index: its region's words *)
    }

type t = {
  p : params;
  router : Router.t;
  kind : kind;
  keys_of : int array array;
  locate : int -> int * int;
  shard_base : int array;  (* one-sided: shard's slot base inside its region *)
  views : view array;
  rid_next : int array;
  shard_ops : int array;
  migrating : (int, unit) Hashtbl.t;
  mutable n_gets : int;
  mutable n_puts_acked : int;
  mutable n_dedup_hits : int;
  mutable n_relays : int;
  mutable n_migrations : int;
  mutable n_viol : int;
  cdf : float array option;
}

let params t = t.p
let router t = t.router
let gets t = t.n_gets
let puts_acked t = t.n_puts_acked
let dedup_hits t = t.n_dedup_hits
let relays t = t.n_relays
let migrations t = t.n_migrations
let violations t = t.n_viol
let ops t = t.n_gets + t.n_puts_acked
let shard_ops t = Array.copy t.shard_ops

let store_cost p words = p.sv_store_fixed + (words * p.sv_store_word)

let charge p words =
  Machine.Thread.compute ~layer:Obs.Layer.App ~cause:Obs.Cause.Proto_proc
    (store_cost p words)

let fresh_state t ~shard =
  let n_local = Array.length t.keys_of.(shard) in
  let st =
    {
      ss_shard = shard;
      ss_epoch = 0;
      ss_primary = false;
      ss_versions = Array.make n_local 0;
      ss_blocks = Array.make (n_local * block_words t.p) 0;
      ss_dedup = Hashtbl.create 64;
      ss_frozen = false;
      ss_snapped = false;
      ss_relays_rev = [];
    }
  in
  Array.iteri
    (fun li key ->
      fill_block t.p ~key ~version:0 st.ss_blocks ~off:(li * block_words t.p))
    t.keys_of.(shard);
  st

let state_of t srv ~shard =
  match Hashtbl.find_opt srv.sr_states shard with
  | Some st -> st
  | None ->
    let st = fresh_state t ~shard in
    Hashtbl.replace srv.sr_states shard st;
    st

(* Apply one put: bump the slot's version, rewrite the block, remember the
   rid.  Idempotence across handoff lives in [ss_dedup]. *)
let apply_put t st ~li ~key ~rid =
  let v = st.ss_versions.(li) + 1 in
  st.ss_versions.(li) <- v;
  fill_block t.p ~key ~version:v st.ss_blocks ~off:(li * block_words t.p);
  Hashtbl.replace st.ss_dedup rid ();
  v

let enqueue srv job =
  Machine.Sync.Mutex.lock srv.sr_mu;
  (match job with
  | Transfer _ -> Queue.push job srv.sr_xfer
  | Propagate _ -> Queue.push job srv.sr_queue);
  Machine.Sync.Condvar.signal srv.sr_cv;
  Machine.Sync.Mutex.unlock srv.sr_mu

(* The routing answer a server gives when it is not the shard's primary:
   the handoff forwarding entry when it moved the shard away itself, its
   own routing view otherwise.  Either way the epoch lets the client
   reject stale advice. *)
let moved_reply srv ~shard ~reply =
  let owner, epoch =
    match Hashtbl.find_opt srv.sr_moved shard with
    | Some (o, e) -> (o, e)
    | None -> (srv.sr_view_owner.(shard), srv.sr_view_epoch.(shard))
  in
  reply ~size:req_meta (Sv_moved { shard; owner; epoch })

let install t srv ~shard ~epoch ~to_rank ~versions ~rids ~relays =
  let st = state_of t srv ~shard in
  if epoch > st.ss_epoch then begin
    st.ss_epoch <- epoch;
    (* Merge, don't overwrite: an async propagation racing ahead of this
       install may already have applied a version newer than the
       snapshot.  Versions are monotone, so per-slot max is exact. *)
    Array.iteri
      (fun li v ->
        if v > st.ss_versions.(li) then begin
          st.ss_versions.(li) <- v;
          fill_block t.p ~key:t.keys_of.(shard).(li) ~version:v st.ss_blocks
            ~off:(li * block_words t.p)
        end)
      versions;
    Array.iter (fun rid -> Hashtbl.replace st.ss_dedup rid ()) rids;
    (* Requests parked during the freeze: first (and only) application.
       Every member applies them in the same recorded order, so replicas
       agree; the client's retry will hit the dedup table. *)
    Array.iter
      (fun (rid, key) ->
        if not (Hashtbl.mem st.ss_dedup rid) then begin
          let _, li = t.locate key in
          ignore (apply_put t st ~li ~key ~rid)
        end)
      relays;
    st.ss_primary <- srv.sr_rank = to_rank;
    st.ss_frozen <- false;
    st.ss_snapped <- false;
    st.ss_relays_rev <- [];
    srv.sr_view_owner.(shard) <- to_rank;
    srv.sr_view_epoch.(shard) <- epoch;
    Hashtbl.remove srv.sr_moved shard
  end

let on_request t srv ~client:_ ~size:_ payload ~reply =
  let p = t.p in
  match payload with
  | Sv_get { key } -> (
    let shard, li = t.locate key in
    match Hashtbl.find_opt srv.sr_states shard with
    | Some st when st.ss_primary && not st.ss_frozen ->
      charge p (block_words p);
      srv.sr_ops <- srv.sr_ops + 1;
      t.shard_ops.(shard) <- t.shard_ops.(shard) + 1;
      let b = Array.sub st.ss_blocks (li * block_words p) (block_words p) in
      reply ~size:(8 * block_words p)
        (Sv_val { key; version = st.ss_versions.(li); block = b })
    | _ ->
      charge p 0;
      moved_reply srv ~shard ~reply)
  | Sv_put { key; rid } -> (
    let shard, li = t.locate key in
    match Hashtbl.find_opt srv.sr_states shard with
    | Some st when st.ss_primary && not st.ss_frozen ->
      if Hashtbl.mem st.ss_dedup rid then begin
        (* The relay path's second arrival: the put was applied during
           the handoff install, so at-most-once means answering from the
           dedup table, never re-executing. *)
        charge p 0;
        t.n_dedup_hits <- t.n_dedup_hits + 1;
        reply ~size:req_meta (Sv_ack { rid; dedup = true })
      end
      else begin
        charge p (block_words p + 1);
        let version = apply_put t st ~li ~key ~rid in
        srv.sr_ops <- srv.sr_ops + 1;
        t.shard_ops.(shard) <- t.shard_ops.(shard) + 1;
        if p.sv_replicas > 1 then
          enqueue srv (Propagate { shard; key; version; rid });
        reply ~size:req_meta (Sv_ack { rid; dedup = false })
      end
    | Some st when st.ss_primary (* frozen: handoff in progress *) ->
      charge p 0;
      if
        (not st.ss_snapped)
        && (not (Hashtbl.mem st.ss_dedup rid))
        && not (List.exists (fun (r, _) -> r = rid) st.ss_relays_rev)
      then begin
        (* Park the request in the handoff: the new primary applies it at
           install, and this client's retry then finds the rid deduped. *)
        st.ss_relays_rev <- (rid, key) :: st.ss_relays_rev;
        t.n_relays <- t.n_relays + 1
      end;
      moved_reply srv ~shard ~reply
    | _ ->
      charge p 0;
      moved_reply srv ~shard ~reply)
  | Sv_prop { shard; key; version; rid } ->
    let _, li = t.locate key in
    let st = state_of t srv ~shard in
    charge p (block_words p + 1);
    if version > st.ss_versions.(li) then begin
      st.ss_versions.(li) <- version;
      fill_block p ~key ~version st.ss_blocks ~off:(li * block_words p)
    end;
    Hashtbl.replace st.ss_dedup rid ();
    reply ~size:req_meta Sv_prop_ack
  | Sv_move { shard; to_rank; epoch } -> (
    match Hashtbl.find_opt srv.sr_states shard with
    | Some st when st.ss_primary && not st.ss_frozen ->
      charge p 0;
      st.ss_frozen <- true;
      Hashtbl.replace srv.sr_moved shard (to_rank, epoch);
      srv.sr_view_owner.(shard) <- to_rank;
      srv.sr_view_epoch.(shard) <- epoch;
      enqueue srv (Transfer { shard; to_rank; epoch });
      reply ~size:req_meta (Sv_move_ack { ok = true })
    | _ ->
      charge p 0;
      reply ~size:req_meta (Sv_move_ack { ok = false }))
  | Sv_install { shard; epoch; to_rank; versions; rids; relays } ->
    (* Deserialisation cost scales with the transferred state. *)
    charge p
      (Array.length versions * (1 + block_words p)
      + Array.length rids + (2 * Array.length relays));
    install t srv ~shard ~epoch ~to_rank ~versions ~rids ~relays;
    reply ~size:req_meta Sv_install_ack
  | _ ->
    t.n_viol <- t.n_viol + 1;
    reply ~size:req_meta (Sv_ack { rid = -1; dedup = false })

(* ---- the per-server worker: async replication and handoff transfers.
   Runs as an ordinary machine thread so it may block on RPCs — handlers
   never do (they reply inline), which keeps the kernel stack's bounded
   server-thread pool free of park-and-wait cycles across machines. *)

let do_propagate t backends srv ~shard ~key ~version ~rid =
  let size = req_meta + (8 * block_words t.p) in
  List.iter
    (fun rank ->
      if rank <> srv.sr_rank then
        ignore
          (backends.(srv.sr_rank).Orca.Backend.rpc ~dst:rank ~size
             (Sv_prop { shard; key; version; rid })))
    (Router.replica_ranks t.router shard)

let do_transfer t backends servers srv ~shard ~to_rank ~epoch =
  let st = Hashtbl.find srv.sr_states shard in
  st.ss_snapped <- true;
  let versions = Array.copy st.ss_versions in
  let rids =
    Array.of_list
      (List.sort compare
         (Hashtbl.fold (fun rid () acc -> rid :: acc) st.ss_dedup []))
  in
  let relays = Array.of_list (List.rev st.ss_relays_rev) in
  let n_local = Array.length versions in
  let size =
    req_meta
    + (8 * n_local * (1 + block_words t.p))
    + (16 * Array.length rids)
    + (16 * Array.length relays)
  in
  let members = Router.replica_ranks t.router shard in
  List.iter
    (fun rank ->
      if rank = srv.sr_rank then
        (* The old primary stays in the new replica set: install locally. *)
        install t
          servers.(match Router.server_index t.router ~rank with
                   | Some i -> i
                   | None -> assert false)
          ~shard ~epoch ~to_rank ~versions ~rids ~relays
      else
        ignore
          (backends.(srv.sr_rank).Orca.Backend.rpc ~dst:rank ~size
             (Sv_install { shard; epoch; to_rank; versions; rids; relays })))
    members;
  if not (List.mem srv.sr_rank members) then Hashtbl.remove srv.sr_states shard;
  Hashtbl.remove t.migrating shard;
  t.n_migrations <- t.n_migrations + 1

let worker t backends servers srv () =
  let rec loop () =
    Machine.Sync.Mutex.lock srv.sr_mu;
    while Queue.is_empty srv.sr_xfer && Queue.is_empty srv.sr_queue do
      Machine.Sync.Condvar.wait srv.sr_cv srv.sr_mu
    done;
    let job =
      Queue.pop (if Queue.is_empty srv.sr_xfer then srv.sr_queue else srv.sr_xfer)
    in
    Machine.Sync.Mutex.unlock srv.sr_mu;
    (match job with
    | Propagate { shard; key; version; rid } ->
      do_propagate t backends srv ~shard ~key ~version ~rid
    | Transfer { shard; to_rank; epoch } ->
      do_transfer t backends servers srv ~shard ~to_rank ~epoch);
    loop ()
  in
  loop ()

(* ---- construction *)

let make_views router ~ranks ~shards =
  Array.init ranks (fun _ ->
      {
        vw_owner = Array.init shards (fun s -> Router.owner_rank router s);
        vw_epoch = Array.make shards 0;
      })

let base_of_router p router =
  (* One-sided region layout: each server's region concatenates its
     shards' slabs in shard order (static placement only). *)
  let shard_base = Array.make p.sv_shards 0 in
  let keys_of = Router.keys_of_shard ~shards:p.sv_shards ~keys:p.sv_keys in
  let next = Array.make (Router.n_servers router) 0 in
  for s = 0 to p.sv_shards - 1 do
    let o = Router.owner_index router s in
    shard_base.(s) <- next.(o);
    next.(o) <- next.(o) + Array.length keys_of.(s)
  done;
  (keys_of, shard_base, next)

let create_rpc ~params:p ~backends ~router ?lane_of () =
  if Router.shards router <> p.sv_shards then
    invalid_arg "Service.create_rpc: router/params shard mismatch";
  let n = Array.length backends in
  let keys_of = Router.keys_of_shard ~shards:p.sv_shards ~keys:p.sv_keys in
  let server_ranks = Router.servers router in
  let servers =
    Array.map
      (fun rank ->
        let mach = backends.(rank).Orca.Backend.machine in
        {
          sr_rank = rank;
          sr_mach = mach;
          sr_states = Hashtbl.create 16;
          sr_moved = Hashtbl.create 8;
          sr_view_owner =
            Array.init p.sv_shards (fun s -> Router.owner_rank router s);
          sr_view_epoch = Array.make p.sv_shards 0;
          sr_queue = Queue.create ();
          sr_xfer = Queue.create ();
          sr_mu = Machine.Sync.Mutex.create mach;
          sr_cv = Machine.Sync.Condvar.create mach;
          sr_ops = 0;
        })
      server_ranks
  in
  let t =
    {
      p;
      router;
      kind = Over_rpc { backends; servers };
      keys_of;
      locate = Router.locate ~shards:p.sv_shards ~keys:p.sv_keys;
      shard_base = [||];
      views = make_views router ~ranks:n ~shards:p.sv_shards;
      rid_next = Array.make n 0;
      shard_ops = Array.make p.sv_shards 0;
      migrating = Hashtbl.create 8;
      n_gets = 0;
      n_puts_acked = 0;
      n_dedup_hits = 0;
      n_relays = 0;
      n_migrations = 0;
      n_viol = 0;
      cdf = Load.Keys.cdf p.sv_skew ~keys:p.sv_keys;
    }
  in
  (* Initial placement: every replica-set member starts with an installed
     copy, the ring owner as primary. *)
  for s = 0 to p.sv_shards - 1 do
    List.iteri
      (fun i idx ->
        let srv = servers.(idx) in
        let st = state_of t srv ~shard:s in
        st.ss_primary <- i = 0)
      (Router.replica_indices router s)
  done;
  Array.iter
    (fun srv ->
      let b = backends.(srv.sr_rank) in
      b.Orca.Backend.set_rpc_handler (on_request t srv);
      (* Daemon priority: on a saturated server the worker would starve
         behind the protocol daemons at [Normal], leaving frozen shards
         in handoff limbo for the rest of the run. *)
      let spawn () =
        ignore
          (Machine.Thread.spawn srv.sr_mach ~prio:Machine.Thread.Daemon
             (Printf.sprintf "shard-wrk.%d" srv.sr_rank)
             (worker t backends servers srv))
      in
      match lane_of with
      | None -> spawn ()
      | Some lane ->
        Sim.Engine.with_lane (Machine.Mach.engine srv.sr_mach)
          (lane srv.sr_rank) spawn)
    servers;
  t

let region_key = 1

let create_onesided ~params:p ~rnics ~router () =
  if Router.shards router <> p.sv_shards then
    invalid_arg "Service.create_onesided: router/params shard mismatch";
  if Router.replicas router > 1 then
    invalid_arg "Service.create_onesided: one-sided service is unreplicated";
  let keys_of, shard_base, region_slots = base_of_router p router in
  let slot_words = block_words p + 1 in
  let server_ranks = Router.servers router in
  let stores =
    Array.mapi
      (fun i rank ->
        let data = Array.make (region_slots.(i) * slot_words) 0 in
        let region =
          { Onesided.Region.key = region_key; name = "shard"; data }
        in
        Onesided.Rnic.register_region rnics.(rank) region;
        data)
      server_ranks
  in
  let t =
    {
      p;
      router;
      kind =
        Over_onesided
          {
            rnics;
            addrs =
              Array.map (fun rank -> Onesided.Rnic.addr rnics.(rank)) server_ranks;
            stores;
          };
      keys_of;
      locate = Router.locate ~shards:p.sv_shards ~keys:p.sv_keys;
      shard_base;
      views = make_views router ~ranks:(Array.length rnics) ~shards:p.sv_shards;
      rid_next = Array.make (Array.length rnics) 0;
      shard_ops = Array.make p.sv_shards 0;
      migrating = Hashtbl.create 8;
      n_gets = 0;
      n_puts_acked = 0;
      n_dedup_hits = 0;
      n_relays = 0;
      n_migrations = 0;
      n_viol = 0;
      cdf = Load.Keys.cdf p.sv_skew ~keys:p.sv_keys;
    }
  in
  (* Fill every slot with its version-0 pattern. *)
  for s = 0 to p.sv_shards - 1 do
    let o = Router.owner_index router s in
    Array.iteri
      (fun li key ->
        let off = (shard_base.(s) + li) * slot_words in
        stores.(o).(off) <- 0;
        fill_block p ~key ~version:0 stores.(o) ~off:(off + 1))
      keys_of.(s)
  done;
  t

(* ---- client side *)

let check_block t ~key (b : int array) ~off =
  let version = b.(off + t.p.sv_value_words) in
  let ok = ref true in
  for j = 0 to t.p.sv_value_words - 1 do
    if b.(off + j) <> pattern_word key version j then ok := false
  done;
  if not !ok then t.n_viol <- t.n_viol + 1

let next_rid t ~rank =
  let seq = t.rid_next.(rank) in
  t.rid_next.(rank) <- seq + 1;
  (rank lsl 32) lor seq

let rpc_op t backends ~rank ~is_get ~key =
  let shard, _ = t.locate key in
  let view = t.views.(rank) in
  let rid = if is_get then -1 else next_rid t ~rank in
  let size =
    if is_get then req_meta else req_meta + (8 * block_words t.p)
  in
  let payload = if is_get then Sv_get { key } else Sv_put { key; rid } in
  let rec go attempt =
    let owner = view.vw_owner.(shard) in
    let _, rsp = backends.(rank).Orca.Backend.rpc ~dst:owner ~size payload in
    match rsp with
    | Sv_val { key = k; version = _; block } ->
      if k <> key then t.n_viol <- t.n_viol + 1;
      check_block t ~key block ~off:0;
      t.n_gets <- t.n_gets + 1
    | Sv_ack { rid = r; dedup = _ } ->
      if r <> rid then t.n_viol <- t.n_viol + 1;
      t.n_puts_acked <- t.n_puts_acked + 1
    | Sv_moved { shard = s; owner = o; epoch = e } ->
      (* Strictly-newer epochs only: a lagging server must not roll the
         client's route back to an owner that already handed off. *)
      if e > view.vw_epoch.(s) then begin
        view.vw_owner.(s) <- o;
        view.vw_epoch.(s) <- e
      end;
      (* Linearly growing backoff: a shard frozen mid-handoff must not be
         smothered under a redirect storm from every hot-key client. *)
      Machine.Thread.sleep (Stdlib.min attempt 16 * t.p.sv_backoff);
      go (attempt + 1)
    | _ -> t.n_viol <- t.n_viol + 1
  in
  go 1

let os_slot_off t ~shard ~li = (t.shard_base.(shard) + li) * (block_words t.p + 1)

let os_op t rnics addrs ~rank ~is_get ~key =
  let shard, li = t.locate key in
  let o = Router.owner_index t.router shard in
  let r = rnics.(rank) in
  let dst = addrs.(o) in
  let off = os_slot_off t ~shard ~li in
  let bw = block_words t.p in
  if is_get then begin
    (* Index read then block read: every pointer hop is a round trip, no
       server thread anywhere. *)
    let _v =
      (Onesided.Rnic.read r ~dst ~rkey:region_key ~off ~words:1).(0)
    in
    let b =
      Onesided.Rnic.read r ~dst ~rkey:region_key ~off:(off + 1) ~words:bw
    in
    check_block t ~key b ~off:0;
    t.n_gets <- t.n_gets + 1
  end
  else begin
    (* Claim the next version with cas, then publish the block. *)
    let rec claim expected =
      let old =
        Onesided.Rnic.cas r ~dst ~rkey:region_key ~off ~expected
          ~desired:(expected + 1)
      in
      if old = expected then expected + 1 else claim old
    in
    let v0 = (Onesided.Rnic.read r ~dst ~rkey:region_key ~off ~words:1).(0) in
    let v = claim v0 in
    let b = Array.make bw 0 in
    fill_block t.p ~key ~version:v b ~off:0;
    Onesided.Rnic.write r ~dst ~rkey:region_key ~off:(off + 1) b;
    t.n_puts_acked <- t.n_puts_acked + 1;
    t.shard_ops.(shard) <- t.shard_ops.(shard) + 1
  end

let client_op t ~rank rng =
  let is_get = Sim.Rng.int rng 100 < t.p.sv_read_pct in
  let key = Load.Keys.draw ?cdf:t.cdf ~keys:t.p.sv_keys rng in
  match t.kind with
  | Over_rpc { backends; _ } -> rpc_op t backends ~rank ~is_get ~key
  | Over_onesided { rnics; addrs; _ } -> os_op t rnics addrs ~rank ~is_get ~key

(* ---- migration entry point (called from a machine thread) *)

let migrate t ~via ~shard ~to_rank =
  match t.kind with
  | Over_onesided _ -> false
  | Over_rpc { backends; _ } -> (
    if Hashtbl.mem t.migrating shard then false
    else
      match Router.server_index t.router ~rank:to_rank with
      | None -> false
      | Some to_index ->
        let from_rank = Router.owner_rank t.router shard in
        if from_rank = to_rank then false
        else begin
          Hashtbl.replace t.migrating shard ();
          match Router.migrate t.router ~shard ~to_index with
          | None ->
            Hashtbl.remove t.migrating shard;
            false
          | Some epoch ->
            let _, rsp =
              backends.(via).Orca.Backend.rpc ~dst:from_rank ~size:req_meta
                (Sv_move { shard; to_rank; epoch })
            in
            (match rsp with
            | Sv_move_ack { ok = true } -> ()
            | _ -> t.n_viol <- t.n_viol + 1);
            true
        end)

let migration_in_flight t = Hashtbl.length t.migrating > 0

(* ---- end-of-run conformance audit *)

let check_at_rest t =
  let bad = ref [] in
  let addv fmt = Printf.ksprintf (fun m -> bad := m :: !bad) fmt in
  let applied = ref 0 in
  (match t.kind with
  | Over_rpc { servers; _ } ->
    for shard = 0 to t.p.sv_shards - 1 do
      let owner = Router.owner_rank t.router shard in
      let members = Router.replica_ranks t.router shard in
      let state_at rank =
        match Router.server_index t.router ~rank with
        | None -> None
        | Some i -> Hashtbl.find_opt servers.(i).sr_states shard
      in
      match state_at owner with
      | None -> addv "shard %d: owner %d holds no state at rest" shard owner
      | Some st ->
        if not st.ss_primary then
          addv "shard %d: owner %d's copy is not primary at rest" shard owner;
        if st.ss_frozen then
          addv "shard %d: still frozen at rest (handoff never completed)" shard;
        Array.iteri
          (fun li v ->
            applied := !applied + v;
            let key = t.keys_of.(shard).(li) in
            let off = li * block_words t.p in
            let tag = st.ss_blocks.(off + t.p.sv_value_words) in
            if tag <> v then
              addv "shard %d key %d: version %d but block tag %d" shard key v tag;
            for j = 0 to t.p.sv_value_words - 1 do
              if st.ss_blocks.(off + j) <> pattern_word key tag j then
                addv "shard %d key %d: torn block at rest" shard key
            done)
          st.ss_versions;
        List.iter
          (fun rank ->
            if rank <> owner then
              match state_at rank with
              | None ->
                addv "shard %d: replica member %d holds no copy at rest" shard
                  rank
              | Some sb ->
                if sb.ss_versions <> st.ss_versions then
                  addv "shard %d: replica at %d diverged from primary %d" shard
                    rank owner)
          members
    done
  | Over_onesided { stores; _ } ->
    let slot_words = block_words t.p + 1 in
    for shard = 0 to t.p.sv_shards - 1 do
      let o = Router.owner_index t.router shard in
      Array.iteri
        (fun li key ->
          let off = (t.shard_base.(shard) + li) * slot_words in
          let v = stores.(o).(off) in
          applied := !applied + v;
          let tag = stores.(o).(off + 1 + t.p.sv_value_words) in
          if tag <> v then
            addv "shard %d key %d: version %d but block tag %d" shard key v tag;
          for j = 0 to t.p.sv_value_words - 1 do
            if stores.(o).(off + 1 + j) <> pattern_word key tag j then
              addv "shard %d key %d: torn block at rest" shard key
          done)
        t.keys_of.(shard)
    done);
  if !applied <> t.n_puts_acked then
    addv
      "exactly-once broken: %d applied versions at rest vs %d acked puts \
       (dedup hits %d, relays %d, migrations %d)"
      !applied t.n_puts_acked t.n_dedup_hits t.n_relays t.n_migrations;
  List.rev !bad

let register_checker t checker =
  Faults.Invariants.add_check checker (fun () -> check_at_rest t)
