(* Pure consistent-hash routing: the only mutable state is the epoched
   owner table, and the only mutation is [migrate].  Everything else is a
   function of (shards, servers, owner), so the QCheck model test can
   replay any migration history against this module directly. *)

let shard_of_key ~shards key = Panda.Seq_policy.shard_of_key ~shards key

type t = {
  shards : int;
  replicas : int;
  servers : int array;
  owner : int array;  (* shard -> index into [servers] *)
  epochs : int array;  (* shard -> migration epoch, 0 at creation *)
}

let create ~shards ~replicas ~servers =
  let ns = Array.length servers in
  if shards < 1 then invalid_arg "Router.create: shards must be >= 1";
  if ns < 1 then invalid_arg "Router.create: need at least one server";
  if replicas < 1 || replicas > ns then
    invalid_arg "Router.create: replicas must be in [1, servers]";
  let seen = Hashtbl.create ns in
  Array.iter
    (fun r ->
      if Hashtbl.mem seen r then invalid_arg "Router.create: duplicate server";
      Hashtbl.replace seen r ())
    servers;
  {
    shards;
    replicas;
    servers = Array.copy servers;
    owner = Array.init shards (fun s -> s mod ns);
    epochs = Array.make shards 0;
  }

let shards t = t.shards
let replicas t = t.replicas
let n_servers t = Array.length t.servers
let servers t = Array.copy t.servers
let key_shard t key = shard_of_key ~shards:t.shards key
let epoch t shard = t.epochs.(shard)
let owner_index t shard = t.owner.(shard)
let owner_rank t shard = t.servers.(t.owner.(shard))
let owner_of_key t key = owner_rank t (key_shard t key)

(* The replica set is a pure function of (owner, R): the owner plus the
   next R-1 servers around the ring, primary first.  Members are distinct
   because R <= number of servers. *)
let replica_indices t shard =
  let ns = Array.length t.servers in
  List.init t.replicas (fun i -> (t.owner.(shard) + i) mod ns)

let replica_ranks t shard =
  List.map (fun i -> t.servers.(i)) (replica_indices t shard)

let server_index t ~rank =
  let found = ref None in
  Array.iteri (fun i r -> if r = rank then found := Some i) t.servers;
  !found

let migrate t ~shard ~to_index =
  if to_index < 0 || to_index >= Array.length t.servers then
    invalid_arg "Router.migrate: bad server index";
  if to_index = t.owner.(shard) then None
  else begin
    t.owner.(shard) <- to_index;
    t.epochs.(shard) <- t.epochs.(shard) + 1;
    Some t.epochs.(shard)
  end

let assignment t = Array.copy t.owner

(* Per-shard key enumeration, used by services to lay out shard-local
   state: [keys_of_shard ~shards ~keys] lists every key of each shard in
   ascending order; [locate ~shards ~keys] maps a key to (shard, local
   index) in O(1) after O(keys) setup. *)
let keys_of_shard ~shards ~keys =
  let buckets = Array.make shards [] in
  for key = keys - 1 downto 0 do
    let s = shard_of_key ~shards key in
    buckets.(s) <- key :: buckets.(s)
  done;
  Array.map Array.of_list buckets

let locate ~shards ~keys =
  let of_key = Array.make keys (0, 0) in
  let next = Array.make shards 0 in
  for key = 0 to keys - 1 do
    let s = shard_of_key ~shards key in
    of_key.(key) <- (s, next.(s));
    next.(s) <- next.(s) + 1
  done;
  fun key -> of_key.(key)
