type config = {
  rb_interval : Sim.Time.span;
  rb_hi : float;
  rb_margin : float;
  rb_max_moves : int;
  rb_forced : Sim.Time.t list;
}

let default_config =
  {
    rb_interval = Sim.Time.ms 100;
    rb_hi = 0.55;
    rb_margin = 0.15;
    rb_max_moves = 8;
    rb_forced = [];
  }

type stats = {
  mutable rs_ticks : int;
  mutable rs_moves : int;
  mutable rs_forced : int;
}

(* All tie-breaks resolve to the lowest index so a tick's decision is a
   pure function of the sampled ledgers. *)
let arg_max a =
  let best = ref 0 in
  Array.iteri (fun i v -> if v > a.(!best) then best := i) a;
  !best

let arg_min a =
  let best = ref 0 in
  Array.iteri (fun i v -> if v < a.(!best) then best := i) a;
  !best

let busy machines rank =
  Machine.Cpu.busy_time (Machine.Mach.cpu machines.(rank))

(* One placement decision from this tick's ledger deltas: source is the
   busiest server, destination the idlest.  The object moved is the
   source-owned shard minimizing the post-move maximum of the pair,
   estimating each shard's utilization contribution as the source's
   utilization split by heat share — naively shipping the hottest shard
   would only relocate a one-hot-key hotspot and bounce it between
   servers forever.  [forced] overrides the saturation and improvement
   gates (the knob tests use to make a migration happen on demand). *)
let pick_move service ~utils ~heat ~forced ~cfg =
  let router = Service.router service in
  let src = arg_max utils in
  let dst = arg_min utils in
  if src = dst then None
  else if
    (not forced)
    && (utils.(src) < cfg.rb_hi || utils.(dst) > utils.(src) -. cfg.rb_margin)
  then None
  else begin
    let heat_src = ref 0 in
    for s = 0 to Router.shards router - 1 do
      if Router.owner_index router s = src then heat_src := !heat_src + heat.(s)
    done;
    let best = ref None in
    for s = Router.shards router - 1 downto 0 do
      if Router.owner_index router s = src then begin
        let c =
          if !heat_src = 0 then 0.
          else utils.(src) *. float_of_int heat.(s) /. float_of_int !heat_src
        in
        let post = Float.max (utils.(src) -. c) (utils.(dst) +. c) in
        match !best with
        | Some (p, _) when p <= post -> ()
        | _ -> best := Some (post, s)
      end
    done;
    match !best with
    | None -> None
    | Some (post, s) ->
      if forced || post < utils.(src) then Some (s, (Router.servers router).(dst))
      else None
  end

let run service ~machines ~via ~until ?(config = default_config) stats =
  let router = Service.router service in
  let server_ranks = Router.servers router in
  let ns = Array.length server_ranks in
  let prev_busy = Array.map (fun rank -> busy machines rank) server_ranks in
  let prev_ops = Service.shard_ops service in
  let eng = Machine.Mach.engine machines.(via) in
  let forced = ref config.rb_forced in
  let rec loop () =
    Machine.Thread.sleep config.rb_interval;
    let now = Sim.Engine.now eng in
    if now < until then begin
      stats.rs_ticks <- stats.rs_ticks + 1;
      (* The ledger read: CPU busy time is exactly what Obs accounts, so
         window deltas over it are the per-machine load signal. *)
      let utils = Array.make ns 0. in
      Array.iteri
        (fun i rank ->
          let b = busy machines rank in
          utils.(i) <-
            Sim.Time.to_us (b - prev_busy.(i))
            /. Sim.Time.to_us config.rb_interval;
          prev_busy.(i) <- b)
        server_ranks;
      let ops = Service.shard_ops service in
      let heat = Array.mapi (fun s o -> o - prev_ops.(s)) ops in
      Array.blit ops 0 prev_ops 0 Array.(length ops);
      (* A due forced time is consumed only when a move can actually be
         issued — never while a handoff is still in flight, else the
         forced move is silently lost to the race. *)
      let can_move = not (Service.migration_in_flight service) in
      let force_now =
        match !forced with
        | t :: rest when t <= now && can_move ->
          forced := rest;
          true
        | _ -> false
      in
      if can_move && (force_now || stats.rs_moves < config.rb_max_moves) then begin
        match pick_move service ~utils ~heat ~forced:force_now ~cfg:config with
        | None -> ()
        | Some (shard, to_rank) ->
          if Service.migrate service ~via ~shard ~to_rank then begin
            stats.rs_moves <- stats.rs_moves + 1;
            if force_now then stats.rs_forced <- stats.rs_forced + 1
          end
      end;
      loop ()
    end
  in
  loop ()

let spawn service ~machines ~via ~until ?lane_of ?config () =
  let stats = { rs_ticks = 0; rs_moves = 0; rs_forced = 0 } in
  let spawn_thread () =
    ignore
      (Machine.Thread.spawn machines.(via) "rebalancer" (fun () ->
           run service ~machines ~via ~until ?config stats))
  in
  (match lane_of with
  | None -> spawn_thread ()
  | Some lane ->
    Sim.Engine.with_lane (Machine.Mach.engine machines.(via)) (lane via)
      spawn_thread);
  stats
