(** Consistent-hash key routing with epoched ownership.

    Keys hash to shards with the same Fibonacci multiplicative hash the
    sharded sequencer uses ({!Panda.Seq_policy.shard_of_key}), shards map
    to an owner server through a mutable assignment table, and every
    migration bumps the shard's epoch.  A [Moved] reply carrying
    [(shard, owner, epoch)] lets a stale client overwrite its cached
    route iff the epoch is strictly newer — so for any fixed epoch every
    key has exactly one owner, the property the model test pins. *)

val shard_of_key : shards:int -> int -> int
(** The Fibonacci hash, re-exported. *)

type t

val create : shards:int -> replicas:int -> servers:int array -> t
(** Initial placement is round-robin: shard [s] on server [s mod n].
    [servers] are the ranks hosting the service, primary ring order.
    @raise Invalid_argument on duplicate servers or [replicas] outside
    [1, Array.length servers]. *)

val shards : t -> int
val replicas : t -> int
val n_servers : t -> int
val servers : t -> int array

val key_shard : t -> int -> int
val epoch : t -> int -> int
(** Current epoch of a shard; 0 until first migrated. *)

val owner_index : t -> int -> int
(** Owner of a shard, as an index into [servers]. *)

val owner_rank : t -> int -> int
val owner_of_key : t -> int -> int

val replica_indices : t -> int -> int list
(** The R-way replica set of a shard — owner plus the next R-1 servers
    around the ring, primary first, all distinct. *)

val replica_ranks : t -> int -> int list

val server_index : t -> rank:int -> int option

val migrate : t -> shard:int -> to_index:int -> int option
(** Moves a shard to another server, returning the shard's new epoch —
    [None] if [to_index] already owns it (no epoch is burned). *)

val assignment : t -> int array
(** Snapshot of the owner table (server indices), for audits. *)

val keys_of_shard : shards:int -> keys:int -> int array array
(** Every key of each shard, ascending. *)

val locate : shards:int -> keys:int -> int -> int * int
(** [locate ~shards ~keys] precomputes key -> (shard, local slot). *)
