(** A sharded, optionally replicated key/value service served over any of
    the four communication stacks, with ledger-driven object migration.

    Keys route to shards through {!Router}'s consistent hash; shards live
    on primaries (plus R-1 ring successors when replicated), and each
    server answers only for shards it currently owns — anything else gets
    a [Moved] redirect carrying the shard's epoch, which clients apply
    iff strictly newer than their cached route.

    {b Handler discipline.}  Every RPC handler replies inline — never
    parks — because the kernel stack's 8-thread server pool would
    otherwise admit cross-server deadlock cycles (A's pool waiting on
    replies B must produce and vice versa).  Work that needs to block
    (replica propagation, handoff state transfer) is queued to a
    per-server worker thread instead, as fire-and-forget jobs.

    {b Migration handoff} keeps at-most-once semantics without blocking:
    the old primary freezes the shard, parks put requests that arrive
    before its snapshot as {e relays}, then ships (versions, dedup rids,
    relays) to every member of the new replica set.  Installation merges
    by per-slot version max (async propagation may have raced ahead),
    unions the rid set, and applies relays exactly once in recorded
    order; the clients' retries then hit the dedup table.  The old
    primary keeps a forwarding entry forever, so any stale route reaches
    the shard's ownership chain in one [Moved] hop per epoch. *)

type params = {
  sv_keys : int;
  sv_value_words : int;  (** data words per value (a tag word rides along) *)
  sv_shards : int;
  sv_replicas : int;  (** R-way: primary + R-1 ring successors *)
  sv_read_pct : int;  (** get percentage of the op mix, 0..100 *)
  sv_skew : Load.Keys.skew;
  sv_store_fixed : Sim.Time.span;  (** server CPU per op *)
  sv_store_word : Sim.Time.span;  (** server CPU per data word touched *)
  sv_backoff : Sim.Time.span;  (** client sleep before retrying a [Moved] *)
}

val default_params : params
(** 4096 keys x 16 value words in 16 shards, unreplicated, 90% reads,
    Zipf(0.99). *)

type t

val create_rpc :
  params:params ->
  backends:Orca.Backend.t array ->
  router:Router.t ->
  ?lane_of:(int -> int) ->
  unit ->
  t
(** Installs handlers and spawns the worker thread on every server rank
    of [router].  [lane_of] must be {!Core.Cluster.machine_lane} when the
    engine is laned, so workers' event chains stay lane-local.
    @raise Invalid_argument if [router]'s shard count disagrees with
    [params]. *)

val create_onesided :
  params:params -> rnics:Onesided.Rnic.t array -> router:Router.t -> unit -> t
(** The one-sided variant: each server registers a region holding its
    shards' slots ([version; block] per key), gets read the version then
    the block, puts claim the next version with [cas] then write the
    block.  No server threads exist, so placement is static —
    {!migrate} always returns [false].
    @raise Invalid_argument when [params] asks for replication. *)

val params : t -> params
val router : t -> Router.t

val client_op : t -> rank:int -> Sim.Rng.t -> unit
(** One client operation from [rank]: draws get-vs-put then a key (one
    RNG draw each, Zipf or uniform), performs it against the cached
    route, and chases [Moved] redirects — with [sv_backoff] between
    attempts — until served.  Must run on rank's machine thread. *)

val migrate : t -> via:int -> shard:int -> to_rank:int -> bool
(** Starts a ledger-driven handoff of [shard] to [to_rank], sending the
    freeze RPC through rank [via]'s backend (the calling thread must be
    on [via]'s machine).  Returns [false] — and does nothing — for the
    one-sided service, an unknown [to_rank], a shard already migrating,
    or a no-op move. *)

val migration_in_flight : t -> bool

(** Counters (clients + servers, cumulative). *)

val ops : t -> int
val gets : t -> int
val puts_acked : t -> int

val dedup_hits : t -> int
(** Retried puts answered from the dedup table instead of re-executing —
    the at-most-once mechanism observably firing across handoffs. *)

val relays : t -> int
(** Puts parked during a freeze window and applied at install. *)

val migrations : t -> int
(** Completed handoffs (transfer installed at every member). *)

val violations : t -> int
(** Client- or server-observed protocol violations: torn blocks, wrong
    keys in replies, unexpected payloads.  Zero on a healthy run. *)

val shard_ops : t -> int array
(** Per-shard op counts — the rebalancer's heat signal.  A copy. *)

val check_at_rest : t -> string list
(** Full conformance audit once the run has drained: every shard's owner
    holds an unfrozen primary copy, replica members agree with it, all
    blocks match their version pattern, and the number of applied
    versions equals the number of acked puts (exactly-once end to end).
    Returns human-readable violations, empty when clean. *)

val register_checker : t -> Faults.Invariants.t -> unit
(** Hooks {!check_at_rest} into the checker's finalize pass. *)
