(* The recorder is a domain-local, optional sink for probes compiled into
   the simulator.  When none is installed every probe is a no-op, so an
   uninstrumented run is bit-identical to the pre-obs simulator: probes never
   charge simulated time, they only observe it. *)

type span = {
  sp_track : string;
  sp_layer : Layer.t;
  sp_name : string;
  sp_begin : int;
  mutable sp_end : int;  (* -1 while open *)
  sp_depth : int;
}

type t = {
  mutable spans_rev : span list;
  mutable n_spans : int;
  open_stacks : (string, span list) Hashtbl.t;
  mutable tracks_rev : string list;  (* insertion order, for determinism *)
  ledger : int array array;  (* Layer.count x Cause.count, nanoseconds *)
  stats : Sim.Stats.t;
  mutable last_time : int;
}

let create () =
  {
    spans_rev = [];
    n_spans = 0;
    open_stacks = Hashtbl.create 32;
    tracks_rev = [];
    ledger = Array.init Layer.count (fun _ -> Array.make Cause.count 0);
    stats = Sim.Stats.create ();
    last_time = 0;
  }

(* The installed recorder is domain-local: parallel experiment jobs each
   install their own recorder on their own domain without interference, and
   the probes' fast path stays a single DLS load + match. *)
let current_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let active () = !(Domain.DLS.get current_key)
let install t = Domain.DLS.get current_key := Some t
let uninstall () = Domain.DLS.get current_key := None

(* ---------- probes ---------- *)

let touch t now = if now > t.last_time then t.last_time <- now

let charge ~layer ~cause ns =
  match active () with
  | None -> ()
  | Some t ->
    (* Negative amounts are refunds (e.g. a context switch abandoned by a
       preemption): they keep the ledger equal to CPU busy time. *)
    if ns <> 0 then begin
      let row = t.ledger.(Layer.index layer) in
      let j = Cause.index cause in
      row.(j) <- row.(j) + ns
    end

let count name n =
  match active () with
  | None -> ()
  | Some t -> Sim.Stats.add t.stats name n

let observe name v =
  match active () with
  | None -> ()
  | Some t -> Sim.Stats.record t.stats name v

let register_track t track =
  if not (Hashtbl.mem t.open_stacks track) then begin
    Hashtbl.add t.open_stacks track [];
    t.tracks_rev <- track :: t.tracks_rev
  end

let span_begin ~track ~layer ~name ~now =
  match active () with
  | None -> ()
  | Some t ->
    touch t now;
    register_track t track;
    let stack = Hashtbl.find t.open_stacks track in
    let sp =
      {
        sp_track = track;
        sp_layer = layer;
        sp_name = name;
        sp_begin = now;
        sp_end = -1;
        sp_depth = List.length stack;
      }
    in
    Hashtbl.replace t.open_stacks track (sp :: stack);
    t.spans_rev <- sp :: t.spans_rev;
    t.n_spans <- t.n_spans + 1

let span_end ~track ~now =
  match active () with
  | None -> ()
  | Some t -> (
    touch t now;
    match Hashtbl.find_opt t.open_stacks track with
    | None | Some [] -> ()
    | Some (sp :: rest) ->
      sp.sp_end <- now;
      Hashtbl.replace t.open_stacks track rest;
      Sim.Stats.record t.stats
        (Printf.sprintf "span.%s.%s" (Layer.to_string sp.sp_layer) sp.sp_name)
        (float_of_int (now - sp.sp_begin) /. 1_000.))

(* ---------- fiber-aware span helpers ---------- *)

let fiber_track () =
  match Sim.Fiber.self_opt () with
  | Some f -> Printf.sprintf "%s#%d" (Sim.Fiber.name f) (Sim.Fiber.id f)
  | None -> "events"

let enter eng layer name =
  match active () with
  | None -> ()
  | Some _ ->
    span_begin ~track:(fiber_track ()) ~layer ~name ~now:(Sim.Engine.now eng)

let leave eng =
  match active () with
  | None -> ()
  | Some _ -> span_end ~track:(fiber_track ()) ~now:(Sim.Engine.now eng)

let with_span eng layer name f =
  match active () with
  | None -> f ()
  | Some _ ->
    let track = fiber_track () in
    span_begin ~track ~layer ~name ~now:(Sim.Engine.now eng);
    Fun.protect
      ~finally:(fun () -> span_end ~track ~now:(Sim.Engine.now eng))
      f

(* ---------- accessors ---------- *)

let ledger_ns t ~layer ~cause = t.ledger.(Layer.index layer).(Cause.index cause)

let cause_ns t cause =
  let j = Cause.index cause in
  Array.fold_left (fun acc row -> acc + row.(j)) 0 t.ledger

let layer_ns t layer =
  let row = t.ledger.(Layer.index layer) in
  let acc = ref 0 in
  List.iter
    (fun c -> if Cause.is_cpu c then acc := !acc + row.(Cause.index c))
    Cause.all;
  !acc

let cpu_ns t =
  List.fold_left
    (fun acc c -> if Cause.is_cpu c then acc + cause_ns t c else acc)
    0 Cause.all

let spans t = List.rev t.spans_rev
let n_spans t = t.n_spans

let open_spans t =
  Hashtbl.fold (fun _ stack acc -> acc + List.length stack) t.open_stacks 0

let tracks t = List.rev t.tracks_rev
let stats t = t.stats
let last_time t = t.last_time
