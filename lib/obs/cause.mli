(** What a charged cost is mechanistically caused by — the paper's §4.2/§4.3
    overhead taxonomy. *)

type t =
  | Ctx_switch  (** scheduler context switches (warm or cold) *)
  | Regwin_trap  (** SPARC register-window overflow/underflow traps *)
  | Uk_crossing  (** user/kernel boundary crossings (syscall base,
                     interrupt entry, untuned user-level FLIP interface) *)
  | Fragmentation  (** the duplicated user-space fragmentation layer *)
  | Header_wire  (** wire and NIC time attributable to protocol header
                     bytes (not CPU time) *)
  | Proto_proc  (** protocol processing proper *)
  | Copy  (** per-byte data copying *)
  | Fault_wire
      (** wire occupancy wasted on frames killed by injected faults
          (drops, corruptions, partitions) — not CPU time.  The charge is
          attributed to the layer of the frame's topmost protocol header,
          so injected loss shows up in the layer × cause accounting
          instead of silently vanishing. *)
  | Idle  (** derived: CPU time charged to nothing *)
  | Offload
      (** one-sided op execution on the target, in interrupt context: CPU
          time the NIC/interrupt layer spends completing a remote
          read/write/cas with no server thread scheduled *)

val all : t list
val count : int

val index : t -> int
(** Dense index in [0, count): stable, for ledger arrays. *)

val is_cpu : t -> bool
(** Whether charges under this cause represent simulated CPU occupancy. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
