(** The protocol-stack layer a span or cost charge belongs to. *)

type t =
  | Nic  (** network interface: reception interrupts, per-byte DMA *)
  | Flip  (** the FLIP packet layer (kernel side and user interface) *)
  | Panda_sys  (** Panda's user-space system layer (daemon, fragmentation) *)
  | Panda_rpc  (** Panda RPC over the system layer *)
  | Panda_grp  (** Panda totally-ordered group communication *)
  | Amoeba_rpc  (** Amoeba's kernel RPC *)
  | Amoeba_grp  (** Amoeba's kernel group communication *)
  | Orca  (** the Orca runtime system *)
  | App  (** application / unattributed thread work *)
  | Onesided
      (** the one-sided (RDMA-style) backend: initiator posting/completion
          and target-side interrupt-context op execution *)

val all : t list
val count : int

val index : t -> int
(** Dense index in [0, count): stable, for ledger arrays. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
