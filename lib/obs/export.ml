(* Exporters for a recorder: Chrome trace_event JSON and CSV.

   Both outputs are deterministic for a deterministic simulation run: spans
   are emitted in begin order, tracks in first-use order, counters and series
   sorted by name, and no wall-clock data is included. *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Fiber tracks carry a "#<fiber id>" suffix to keep them unique, but fiber
   ids are a process-global counter, so they vary between identical runs in
   one process.  Display names drop the suffix (disambiguating duplicates
   by track order), keeping exports byte-identical across reruns. *)
let display_names tracks =
  let stem tr =
    match String.rindex_opt tr '#' with
    | Some i
      when i < String.length tr - 1
           && String.for_all
                (function '0' .. '9' -> true | _ -> false)
                (String.sub tr (i + 1) (String.length tr - i - 1)) ->
      String.sub tr 0 i
    | _ -> tr
  in
  let seen = Hashtbl.create 16 in
  List.map
    (fun tr ->
      let s = stem tr in
      let n = try Hashtbl.find seen s with Not_found -> 0 in
      Hashtbl.replace seen s (n + 1);
      if n = 0 then s else Printf.sprintf "%s@%d" s (n + 1))
    tracks

(* Chrome trace_event format: one "X" (complete) event per span, ts/dur in
   microseconds; tid is the dense index of the span's track; "M" metadata
   events name the tracks.  Open spans are closed at the recorder's last
   observed time so the file is always well-formed. *)
let chrome_trace_buf buf t =
  let tracks = Recorder.tracks t in
  let tid_of =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i tr -> Hashtbl.replace tbl tr i) tracks;
    fun tr -> try Hashtbl.find tbl tr with Not_found -> -1
  in
  let last = Recorder.last_time t in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n "
  in
  List.iteri
    (fun i name ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
            \"args\":{\"name\":\"" i);
      json_escape buf name;
      Buffer.add_string buf "\"}}")
    (display_names tracks);
  List.iter
    (fun (sp : Recorder.span) ->
      sep ();
      let sp_end = if sp.sp_end >= 0 then sp.sp_end else last in
      let ts = float_of_int sp.sp_begin /. 1_000. in
      let dur = float_of_int (sp_end - sp.sp_begin) /. 1_000. in
      Buffer.add_string buf "{\"name\":\"";
      json_escape buf sp.sp_name;
      Buffer.add_string buf
        (Printf.sprintf
           "\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\
            \"ts\":%.3f,\"dur\":%.3f}"
           (Layer.to_string sp.sp_layer)
           (tid_of sp.sp_track) ts dur))
    (Recorder.spans t);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ns\"}\n"

let chrome_trace t =
  let buf = Buffer.create 4096 in
  chrome_trace_buf buf t;
  Buffer.contents buf

(* CSV: one section per data kind, `kind,key...,value` rows. *)
let csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "kind,layer_or_name,cause_or_stat,value\n";
  List.iter
    (fun layer ->
      List.iter
        (fun cause ->
          let ns = Recorder.ledger_ns t ~layer ~cause in
          if ns <> 0 then
            Buffer.add_string buf
              (Printf.sprintf "ledger,%s,%s,%d\n" (Layer.to_string layer)
                 (Cause.to_string cause) ns))
        Cause.all)
    Layer.all;
  let stats = Recorder.stats t in
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "counter,%s,count,%d\n" name v))
    (Sim.Stats.counters stats);
  List.iter
    (fun (name, (count, mean, min_v, max_v)) ->
      Buffer.add_string buf
        (Printf.sprintf "series,%s,count,%d\n" name count);
      Buffer.add_string buf
        (Printf.sprintf "series,%s,mean,%.6f\n" name mean);
      Buffer.add_string buf (Printf.sprintf "series,%s,min,%.6f\n" name min_v);
      Buffer.add_string buf (Printf.sprintf "series,%s,max,%.6f\n" name max_v);
      List.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf "series,%s,p%g,%.6f\n" name p
               (Sim.Stats.percentile stats name p)))
        [ 50.; 90.; 95.; 99.; 99.9 ])
    (Sim.Stats.series stats);
  Buffer.contents buf

let to_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
