let enabled = ref false

let log engine who fmt =
  if !enabled then
    Format.eprintf
      ("[%a] %s: " ^^ fmt ^^ "@.")
      Sim.Time.pp (Sim.Engine.now engine) who
  else Format.ifprintf Format.err_formatter fmt
