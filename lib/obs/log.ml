(* A write-once startup flag read from every domain: an atomic, not a
   plain ref, so parallel experiment runners read it race-free. *)
let flag = Atomic.make false

let enabled () = Atomic.get flag
let set_enabled v = Atomic.set flag v

let log engine who fmt =
  if enabled () then
    Format.eprintf
      ("[%a] %s: " ^^ fmt ^^ "@.")
      Sim.Time.pp (Sim.Engine.now engine) who
  else Format.ifprintf Format.err_formatter fmt
