type t =
  | Ctx_switch
  | Regwin_trap
  | Uk_crossing
  | Fragmentation
  | Header_wire
  | Proto_proc
  | Copy
  | Fault_wire
  | Idle
  | Offload

let all =
  [ Ctx_switch; Regwin_trap; Uk_crossing; Fragmentation; Header_wire; Proto_proc;
    Copy; Fault_wire; Idle; Offload ]

let count = List.length all

let index = function
  | Ctx_switch -> 0
  | Regwin_trap -> 1
  | Uk_crossing -> 2
  | Fragmentation -> 3
  | Header_wire -> 4
  | Proto_proc -> 5
  | Copy -> 6
  | Fault_wire -> 7
  | Idle -> 8
  | Offload -> 9

let to_string = function
  | Ctx_switch -> "ctx_switch"
  | Regwin_trap -> "regwin_trap"
  | Uk_crossing -> "uk_crossing"
  | Fragmentation -> "fragmentation"
  | Header_wire -> "header_wire"
  | Proto_proc -> "proto_proc"
  | Copy -> "copy"
  | Fault_wire -> "fault_wire"
  | Idle -> "idle"
  | Offload -> "offload"

(* Causes that consume simulated CPU time.  Header_wire is wire/NIC time
   attributable to protocol header bytes, Fault_wire is wire occupancy
   wasted on frames killed by injected faults, and Idle is derived, so
   none of the three counts towards CPU occupancy. *)
let is_cpu = function
  | Ctx_switch | Regwin_trap | Uk_crossing | Fragmentation | Proto_proc | Copy
  | Offload ->
    true
  | Header_wire | Fault_wire | Idle -> false

let pp fmt t = Format.pp_print_string fmt (to_string t)
