type t =
  | Nic
  | Flip
  | Panda_sys
  | Panda_rpc
  | Panda_grp
  | Amoeba_rpc
  | Amoeba_grp
  | Orca
  | App
  | Onesided

let all =
  [ Nic; Flip; Panda_sys; Panda_rpc; Panda_grp; Amoeba_rpc; Amoeba_grp; Orca; App;
    Onesided ]

let count = List.length all

let index = function
  | Nic -> 0
  | Flip -> 1
  | Panda_sys -> 2
  | Panda_rpc -> 3
  | Panda_grp -> 4
  | Amoeba_rpc -> 5
  | Amoeba_grp -> 6
  | Orca -> 7
  | App -> 8
  | Onesided -> 9

let to_string = function
  | Nic -> "nic"
  | Flip -> "flip"
  | Panda_sys -> "panda_sys"
  | Panda_rpc -> "panda_rpc"
  | Panda_grp -> "panda_grp"
  | Amoeba_rpc -> "amoeba_rpc"
  | Amoeba_grp -> "amoeba_grp"
  | Orca -> "orca"
  | App -> "app"
  | Onesided -> "onesided"

let pp fmt t = Format.pp_print_string fmt (to_string t)
