(** Lightweight simulation logging on stderr (successor of [Sim.Trace]).

    Disabled by default; enable (e.g. via [--obs-log]) for debugging a run.
    Every line is prefixed with the simulated timestamp. *)

val enabled : bool ref

val log :
  Sim.Engine.t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [log engine who fmt ...] prints ["[<time>] <who>: ..."] when enabled. *)
