(** Lightweight simulation logging on stderr (successor of [Sim.Trace]).

    Disabled by default; enable (e.g. via [--obs-log]) for debugging a run.
    Every line is prefixed with the simulated timestamp.  The flag is an
    atomic shared by all domains: set it before spawning parallel jobs
    (their output interleaves arbitrarily on stderr). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val log :
  Sim.Engine.t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [log engine who fmt ...] prints ["[<time>] <who>: ..."] when enabled. *)
