(** Deterministic exporters for a {!Recorder.t}. *)

val chrome_trace : Recorder.t -> string
(** Chrome [trace_event] JSON ({["{\"traceEvents\":[...]}"]}) with one
    complete ("X") event per span and thread-name metadata per track.
    Open [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto} and load
    the file.  Timestamps and durations are simulated microseconds. *)

val csv : Recorder.t -> string
(** CSV dump: the (layer x cause) ledger in nanoseconds, then counters, then
    series with count/mean/min/max and p50/p90/p95/p99. *)

val to_file : string -> string -> unit
(** [to_file path contents] writes [contents] to [path]. *)
