(** Global recorder for spans, cost attribution and metrics.

    Recording is strictly zero-cost in simulated time: probes observe the
    simulation, they never schedule events or charge CPU cycles.  With no
    recorder installed every probe is a no-op, so runs are bit-identical to
    an uninstrumented simulator. *)

type span = {
  sp_track : string;  (** fiber ["name#id"] or CPU ["cpu:mach"] track *)
  sp_layer : Layer.t;
  sp_name : string;
  sp_begin : int;  (** simulated time, ns *)
  mutable sp_end : int;  (** simulated time, ns; [-1] while still open *)
  sp_depth : int;  (** nesting depth within its track at begin time *)
}

type t

val create : unit -> t

val install : t -> unit
(** Make [t] the sink for all probes on the calling domain until
    {!uninstall}.  The installation is domain-local, so concurrent
    experiment jobs record independently. *)

val uninstall : unit -> unit
val active : unit -> t option

(** {1 Probes} — called from instrumented simulator code. All are no-ops when
    no recorder is installed. *)

val charge : layer:Layer.t -> cause:Cause.t -> int -> unit
(** [charge ~layer ~cause ns] attributes [ns] nanoseconds of simulated cost.
    Non-positive charges are ignored. *)

val count : string -> int -> unit
(** Bump a named counter. *)

val observe : string -> float -> unit
(** Record a sample into a named series (with histogram). *)

val span_begin : track:string -> layer:Layer.t -> name:string -> now:int -> unit
val span_end : track:string -> now:int -> unit
(** Explicit span API for non-fiber tracks (e.g. per-CPU job spans).
    [span_end] closes the innermost open span of [track]. *)

(** {1 Fiber-aware helpers} — track is derived from the current fiber. *)

val enter : Sim.Engine.t -> Layer.t -> string -> unit
val leave : Sim.Engine.t -> unit

val with_span : Sim.Engine.t -> Layer.t -> string -> (unit -> 'a) -> 'a
(** [with_span eng layer name f] wraps [f] in a span on the current fiber's
    track. When no recorder is installed this is exactly [f ()]. *)

(** {1 Accessors} *)

val ledger_ns : t -> layer:Layer.t -> cause:Cause.t -> int
val cause_ns : t -> Cause.t -> int
(** Sum of a cause across all layers. *)

val layer_ns : t -> Layer.t -> int
(** CPU nanoseconds charged to a layer (excludes non-CPU causes). *)

val cpu_ns : t -> int
(** Total CPU nanoseconds in the ledger (excludes [Header_wire] and [Idle]).
    Equals the sum of [Cpu.busy_time] deltas over the recorded window. *)

val spans : t -> span list
(** All spans in begin order. *)

val n_spans : t -> int

val open_spans : t -> int
(** Number of spans still open (should be 0 after a balanced run). *)

val tracks : t -> string list
(** Track names in first-use order (deterministic). *)

val stats : t -> Sim.Stats.t
val last_time : t -> int
(** Latest simulated time seen by any span probe. *)
