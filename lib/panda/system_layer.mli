(** Panda's system layer: the operating-system-dependent part, here
    implemented on Amoeba's low-level FLIP primitives.

    One receive daemon thread per process pulls FLIP packets out of the
    kernel (one system call and one kernel-to-user copy per packet),
    reassembles them — Panda carries its own portable fragmentation code,
    so large messages are fragmented twice, costing the paper's ~20 µs per
    message — and makes an {e upcall} to the interface-layer handler
    (Panda RPC or Panda group).  Upcalls run to completion inside the
    daemon thread; no intermediate threads are scheduled.

    Sending from a user thread costs one system call per packet (unlike
    Amoeba's kernel protocols, which cross once per operation), plus the
    user-to-kernel copy and the not-yet-optimised user-level FLIP interface
    overhead the paper mentions. *)

type config = {
  pan_header : int;  (** Panda fragmentation header, on the wire per packet *)
  frag_bytes : int;  (** payload carried per Panda fragment *)
  frag_cost : Sim.Time.span;
      (** the duplicated fragmentation layer's work, per message *)
  copy_byte : Sim.Time.span;  (** user/kernel copy cost per byte *)
  recv_fixed : Sim.Time.span;  (** daemon's fixed work per packet *)
  upcall_depth : int;  (** call frames an upcall descends *)
  send_depth : int;  (** call frames the send path descends *)
  user_flip_extra : Sim.Time.span;
      (** per-system-call penalty of the untuned user-level FLIP interface
          (address translation etc., the paper's unexplained ~54 µs gap) *)
  single_frag : bool;
      (** optimized stack: size Panda fragments to the FLIP MTU minus the
          Panda header, so FLIP never re-fragments and the duplicated
          fragmentation pass ([frag_cost]) disappears *)
  sg_copy : bool;
      (** optimized stack: scatter-gather zero-copy send and receive — only
          the gathered Panda header is traversed per fragment; the payload
          is never copied between user and kernel space *)
  rx_fastpath : bool;
      (** optimized stack: single-context-switch receive fast path —
          single-fragment messages are completed in the interrupt handler
          and dispatched upcall-style (no receive-daemon scheduling handoff,
          no reassembly lock, no kernel signal to wake the blocked caller);
          multi-fragment messages keep the daemon path *)
}

val default_config : config
(** All three optimization flags are [false]: the baseline stack of the
    paper, byte-identical to the pre-optimization code paths. *)

type t

val create : ?config:config -> name:string -> Flip.Flip_iface.t -> t
(** Registers a fresh point address (the process's system address) and
    starts the receive daemon. *)

val address : t -> Flip.Address.t
val machine : t -> Machine.Mach.t
val flip : t -> Flip.Flip_iface.t
val config : t -> config

val frag_payload : t -> int
(** Payload bytes carried per Panda fragment: [frag_bytes] on the baseline
    stack, FLIP MTU minus [pan_header] when [single_frag] is set (so the
    wire packet is exactly one FLIP fragment). *)

val fastpath_deliveries : t -> int
(** Messages completed by the receive fast path (0 unless [rx_fastpath]). *)

val add_handler : t -> (src:Flip.Address.t -> size:int -> Sim.Payload.t -> bool) -> unit
(** Adds an interface-layer upcall, called in the daemon thread for every
    complete incoming message until one handler returns [true] (consumed).
    Handlers must run to completion without blocking for long (the Orca RTS
    guarantees this via continuations). *)

val alloc_tag : t -> int
(** Reserves a Panda message id; pass it as [?tag] on every transmission
    of one logical message so fragments surviving different attempts
    complete one reassembly. *)

val send :
  ?tag:int -> ?hdr:Obs.Layer.t * int ->
  t -> dst:Flip.Address.t -> size:int -> Sim.Payload.t -> unit
(** Sends a message from the calling user thread: Panda-fragments it and
    issues one FLIP system call per fragment.  [hdr] declares the upper
    protocol's header carried inside [size] (first fragment only; cost
    accounting only). *)

val mcast :
  ?tag:int -> ?hdr:Obs.Layer.t * int ->
  t -> group:Flip.Address.t -> size:int -> Sim.Payload.t -> unit
(** Multicast variant of {!send}. *)

val send_from_daemon :
  ?tag:int -> ?hdr:Obs.Layer.t * int ->
  t -> dst:Flip.Address.t -> size:int -> Sim.Payload.t -> unit
(** Same as {!send}; named separately for call sites that run inside
    upcalls, where the daemon thread pays the system calls. *)

val mcast_from_daemon :
  ?tag:int -> ?hdr:Obs.Layer.t * int ->
  t -> group:Flip.Address.t -> size:int -> Sim.Payload.t -> unit

val inject : t -> Flip.Fragment.t -> unit
(** Feeds a fragment into the daemon's receive queue exactly as the
    system address's interrupt handler does.  Used by the group module,
    which registers the group address itself. *)

val send_from_interrupt :
  ?tag:int -> ?hdr:Obs.Layer.t * int ->
  t -> dst:Flip.Address.t -> size:int -> Sim.Payload.t -> unit
(** Transmission from timer/interrupt context (protocol retransmissions):
    no thread is charged; the machine pays an interrupt-level cost. *)

val mcast_from_interrupt :
  ?tag:int -> ?hdr:Obs.Layer.t * int ->
  t -> group:Flip.Address.t -> size:int -> Sim.Payload.t -> unit
(** Multicast variant of {!send_from_interrupt}. *)

val unwrap : Flip.Fragment.t -> Flip.Fragment.t option
(** Recovers the Panda-level fragment from a received FLIP fragment, or
    [None] for foreign traffic.  For interrupt handlers that the group
    module registers itself. *)

val wake_blocked : ?thread:Machine.Thread.t -> t -> (unit -> unit) -> unit
(** Wakes a user thread blocked on this Panda instance, from an upcall:
    charges the daemon the kernel crossing that signalling a kernel thread
    costs, then resumes the thread.  (Outside a thread context it resumes
    directly — used by timers.)  When [rx_fastpath] is set and [thread]
    names the blocked thread, the upcall hands off without the signalling
    system call (the fast path already runs in kernel receive context);
    the woken thread still pays its own context switch. *)

val packets_received : t -> int
val messages_received : t -> int
val messages_sent : t -> int
