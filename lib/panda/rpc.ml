module Thread = Machine.Thread

type config = {
  header_bytes : int;
  call_depth : int;
  proc_cost : Sim.Time.span;
  ack_delay : Sim.Time.span;
  retrans_timeout : Sim.Time.span;
  max_retries : int;
}

let default_config =
  {
    header_bytes = 64;
    call_depth = 2;
    proc_cost = Sim.Time.us 60;
    ack_delay = Sim.Time.ms 20;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 30;
  }

type Sim.Payload.t +=
  | Preq of {
      client : Flip.Address.t;
      trans_id : int;
      acks : int list;
      size : int;
      user : Sim.Payload.t;
    }
  | Prep of { trans_id : int; size : int; user : Sim.Payload.t }
  | Pack of { client : Flip.Address.t; trans_ids : int list }

exception Rpc_failure of string

type pending = {
  p_id : int;
  p_tag : int;
  p_dst : Flip.Address.t;
  p_size : int;
  p_user : Sim.Payload.t;
  mutable p_reply : (int * Sim.Payload.t) option;
  mutable p_resume : (unit -> unit) option;
  mutable p_thread : Machine.Thread.t option;
  mutable p_timer : Sim.Engine.handle option;
  mutable p_tries : int;
}

type ack_slot = {
  mutable due : int list;
  mutable ack_timer : Sim.Engine.handle option;
}

type req_state =
  | Processing
  | Replied of { rp_size : int; rp_user : Sim.Payload.t; rp_tag : int }
  | Acked
      (* Tombstone: the client acknowledged the reply.  Kept in the
         (bounded) cache rather than removed, so a duplicate of the
         original request still in flight is dropped instead of
         re-running the handler. *)

type handler_fn =
  client:Flip.Address.t ->
  size:int ->
  Sim.Payload.t ->
  reply:(size:int -> Sim.Payload.t -> unit) ->
  unit

type t = {
  sys : System_layer.t;
  cfg : config;
  pending : (int, pending) Hashtbl.t;
  acks : (Flip.Address.t, ack_slot) Hashtbl.t;
  states : (Flip.Address.t * int, req_state) Hashtbl.t;
  state_order : (Flip.Address.t * int) Queue.t;
  mutable handler : handler_fn option;
  mutable next_trans : int;
  mutable n_trans : int;
  mutable n_retrans : int;
  mutable n_explicit_acks : int;
}

let address t = System_layer.address t.sys
let system t = t.sys
let transactions t = t.n_trans
let retransmissions t = t.n_retrans
let explicit_acks t = t.n_explicit_acks
let set_request_handler t h = t.handler <- Some h

let eng t = Machine.Mach.engine (System_layer.machine t.sys)

let msg_size t payload_bytes = t.cfg.header_bytes + payload_bytes

let max_state_cache = 4096

let bound_states t =
  while Queue.length t.state_order > max_state_cache do
    Hashtbl.remove t.states (Queue.pop t.state_order)
  done

let note_acked t client trans_id =
  let key = (client, trans_id) in
  if Hashtbl.mem t.states key then Hashtbl.replace t.states key Acked

(* --- reply acknowledgement bookkeeping (client side) --- *)

let ack_slot t dst =
  match Hashtbl.find_opt t.acks dst with
  | Some s -> s
  | None ->
    let s = { due = []; ack_timer = None } in
    Hashtbl.add t.acks dst s;
    s

(* Steal pending acks to piggyback on an outgoing request. *)
let take_acks t dst =
  match Hashtbl.find_opt t.acks dst with
  | None -> []
  | Some s ->
    let due = s.due in
    s.due <- [];
    (match s.ack_timer with
     | Some h ->
       Sim.Engine.cancel (eng t) h;
       s.ack_timer <- None
     | None -> ());
    due

let note_ack_due t dst trans_id =
  let s = ack_slot t dst in
  if not (List.mem trans_id s.due) then s.due <- trans_id :: s.due;
  if s.ack_timer = None then
    s.ack_timer <-
      Some
        (Sim.Engine.after (eng t) t.cfg.ack_delay (fun () ->
             s.ack_timer <- None;
             let due = s.due in
             s.due <- [];
             if due <> [] then begin
               t.n_explicit_acks <- t.n_explicit_acks + 1;
               System_layer.send_from_interrupt t.sys ~dst ~size:(msg_size t 0)
                 (Pack { client = address t; trans_ids = due })
             end))

(* --- client --- *)

let rpc_hdr t = (Obs.Layer.Panda_rpc, t.cfg.header_bytes)

let send_request t p ~acks =
  System_layer.send ~tag:p.p_tag ~hdr:(rpc_hdr t) t.sys ~dst:p.p_dst
    ~size:(msg_size t p.p_size)
    (Preq { client = address t; trans_id = p.p_id; acks; size = p.p_size; user = p.p_user })

let rec arm_retrans t p =
  p.p_timer <-
    Some
      (Sim.Engine.after (eng t) t.cfg.retrans_timeout (fun () ->
           if p.p_reply = None then
             if p.p_tries >= t.cfg.max_retries then (
               match p.p_resume with
               | Some resume ->
                 p.p_resume <- None;
                 resume ()
               | None -> ())
             else begin
               p.p_tries <- p.p_tries + 1;
               t.n_retrans <- t.n_retrans + 1;
               System_layer.send_from_interrupt ~tag:p.p_tag ~hdr:(rpc_hdr t)
                 t.sys ~dst:p.p_dst
                 ~size:(msg_size t p.p_size)
                 (Preq
                    { client = address t; trans_id = p.p_id; acks = []; size = p.p_size;
                      user = p.p_user });
               arm_retrans t p
             end))

let trans t ~dst ~size payload =
  Obs.Recorder.with_span (eng t) Obs.Layer.Panda_rpc "trans" @@ fun () ->
  Thread.call_frames ~layer:Obs.Layer.Panda_rpc t.cfg.call_depth;
  Thread.compute ~layer:Obs.Layer.Panda_rpc t.cfg.proc_cost;
  t.next_trans <- t.next_trans + 1;
  t.n_trans <- t.n_trans + 1;
  let p =
    {
      p_id = t.next_trans;
      p_tag = System_layer.alloc_tag t.sys;
      p_dst = dst;
      p_size = size;
      p_user = payload;
      p_reply = None;
      p_resume = None;
      p_thread = None;
      p_timer = None;
      p_tries = 0;
    }
  in
  Hashtbl.add t.pending p.p_id p;
  let acks = take_acks t dst in
  send_request t p ~acks;
  arm_retrans t p;
  if p.p_reply = None then
    Thread.suspend (fun th resume ->
        p.p_thread <- Some th;
        p.p_resume <- Some resume);
  Hashtbl.remove t.pending p.p_id;
  (match p.p_timer with Some h -> Sim.Engine.cancel (eng t) h | None -> ());
  match p.p_reply with
  | Some (rsize, ruser) ->
    (* The reply must be acknowledged: piggybacked on the next request to
       this server, or sent explicitly after ack_delay. *)
    note_ack_due t dst p.p_id;
    Thread.ret_frames ~layer:Obs.Layer.Panda_rpc t.cfg.call_depth;
    (rsize, ruser)
  | None ->
    Thread.ret_frames ~layer:Obs.Layer.Panda_rpc t.cfg.call_depth;
    raise (Rpc_failure "panda transaction timed out")

(* --- server --- *)

let pan_rpc_reply t ~client ~trans_id ~size payload =
  let rp_tag = System_layer.alloc_tag t.sys in
  Hashtbl.replace t.states (client, trans_id)
    (Replied { rp_size = size; rp_user = payload; rp_tag });
  System_layer.send ~tag:rp_tag ~hdr:(rpc_hdr t) t.sys ~dst:client
    ~size:(msg_size t size)
    (Prep { trans_id; size; user = payload })

(* Runs as an upcall in the system-layer daemon. *)
let on_message t ~src ~size:_ payload =
  match payload with
  | Preq { client; trans_id; acks; size; user } ->
    Thread.compute ~layer:Obs.Layer.Panda_rpc t.cfg.proc_cost;
    List.iter (fun id -> note_acked t client id) acks;
    (match Hashtbl.find_opt t.states (client, trans_id) with
     | Some Processing -> () (* duplicate while the handler runs *)
     | Some Acked -> () (* stale duplicate of a completed transaction *)
     | Some (Replied { rp_size; rp_user; rp_tag }) ->
       (* Reply was lost: replay it under the same tag (charged to the
          daemon). *)
       System_layer.send_from_daemon ~tag:rp_tag ~hdr:(rpc_hdr t) t.sys
         ~dst:client ~size:(msg_size t rp_size)
         (Prep { trans_id; size = rp_size; user = rp_user })
     | None -> (
         match t.handler with
         | None -> ()
         | Some handler ->
           Hashtbl.replace t.states (client, trans_id) Processing;
           Queue.push (client, trans_id) t.state_order;
           bound_states t;
           Obs.Recorder.with_span (eng t) Obs.Layer.Panda_rpc "serve"
             (fun () ->
               handler ~client ~size user
                 ~reply:(fun ~size payload ->
                   pan_rpc_reply t ~client ~trans_id ~size payload))));
    true
  | Prep { trans_id; size; user } ->
    Thread.compute ~layer:Obs.Layer.Panda_rpc t.cfg.proc_cost;
    (match Hashtbl.find_opt t.pending trans_id with
     | Some p when p.p_reply = None ->
       (match p.p_timer with Some h -> Sim.Engine.cancel (eng t) h | None -> ());
       p.p_reply <- Some (size, user);
       (match p.p_resume with
        | Some resume ->
          p.p_resume <- None;
          (* Signalling the blocked client costs the daemon a kernel
             crossing (kernel threads), then the client is scheduled: the
             user-space implementation's two extra context switches. *)
          System_layer.wake_blocked ?thread:p.p_thread t.sys resume
        | None -> ())
     | Some _ | None ->
       (* Duplicate reply: the ack was lost; make sure another one goes
          out so the server stops replaying. *)
       note_ack_due t src trans_id);
    true
  | Pack { client; trans_ids } ->
    List.iter (fun id -> note_acked t client id) trans_ids;
    true
  | _ -> false

let create ?(config = default_config) sys =
  let t =
    {
      sys;
      cfg = config;
      pending = Hashtbl.create 16;
      acks = Hashtbl.create 8;
      states = Hashtbl.create 64;
      state_order = Queue.create ();
      handler = None;
      next_trans = 0;
      n_trans = 0;
      n_retrans = 0;
      n_explicit_acks = 0;
    }
  in
  System_layer.add_handler sys (fun ~src ~size payload -> on_message t ~src ~size payload);
  t
