(** Panda's user-space totally-ordered group communication.

    Same sequencer idea as Amoeba's kernel protocol, but the sequencer is
    an ordinary {e user thread} on one machine: every message costs it a
    system call to fetch the packet and another to multicast the ordered
    copy, plus a thread switch to get scheduled at all — the paper's
    ~110 µs when it preempts an Orca worker, ~60 µs on a {e dedicated}
    machine whose context stays loaded.  Delivery to the application is an
    upcall from the system-layer receive daemon (no intermediate thread).

    Headers are smaller than the kernel protocol's (40 vs 52 bytes), and
    the sequencer orders at the fragment level, so Panda's duplicated
    fragmentation is paid only at the sending member.

    [send] blocks until the sender's own message comes back in the total
    order; {!send_nonblocking} is the paper's proposed extension (§6) for
    write-operations whose semantics allow it.

    The sequencer is also the system's hardest scaling wall (~725 msg/s
    with its CPU pinned), so the group accepts a {!Seq_policy.t} choosing
    the protocol family around it: sequence-number batching with
    piggybacked acks, a rotating ordering token, sharded sequencers
    (gap-free total order {e per shard}, keyed by the sender's [?key]),
    and crash failover in which a standby sequencer rebuilds ordering
    state from the members' bounded history buffers.  The default
    [Single] policy is byte-for-byte the paper's protocol. *)

type config = {
  header_bytes : int;  (** data-message header (40 in the paper) *)
  accept_bytes : int;
  order_fixed : Sim.Time.span;  (** sequencer's per-message bookkeeping *)
  deliver_cost : Sim.Time.span;  (** member-side protocol work per delivery *)
  copy_byte : Sim.Time.span;
  bb_threshold : int;  (** sizes strictly above this use the BB method *)
  retrans_timeout : Sim.Time.span;
  max_retries : int;
  history_high : int;
}

val default_config : config

type t
type member

type sequencer_placement =
  | On_member of int  (** the sequencer thread shares member [i]'s machine *)
  | Dedicated of System_layer.t
      (** a machine sacrificed to run only the sequencer *)

(** An ordered message as it sits in history buffers and batched
    announcements. *)
type entry = {
  e_seq : int;
  e_sender : int;
  e_local : int;
  e_size : int;
  e_user : Sim.Payload.t;
}

(** Wire messages, exposed for tests and failure injection.  Non-default
    policies add: {!Gordb} (a batched sequence-number range with the
    history-trim watermark piggybacked), {!Gtok} (the rotating ordering
    token), {!Gdead}/{!Ghist_req}/{!Ghist_rsp} (crash failover), and
    {!Gshard} (the shard discriminator wrapped around every payload of a
    sharded group — single-core groups stay unwrapped). *)
type Sim.Payload.t +=
  | Gpb of { sender : int; local : int; size : int; user : Sim.Payload.t }
  | Gbb of { sender : int; local : int; size : int; user : Sim.Payload.t }
  | Gord of { g_seq : int; g_sender : int; g_local : int; g_size : int; g_user : Sim.Payload.t }
  | Gacc of { g_seq : int; g_sender : int; g_local : int }
  | Gret of { g_member : int; g_from : int }
  | Gstat_req of { gsr_next : int }
  | Gstat_rsp of { g_member : int; g_delivered : int }
  | Gordb of { gb_entries : entry list; gb_lo : int }
  | Gtok of { tk_holder : int; tk_gen : int }
  | Gdead of { gd_from : int }
  | Ghist_req of { hq_epoch : int }
  | Ghist_rsp of { hr_member : int; hr_delivered : int; hr_entries : entry list }
  | Gshard of { sh_core : int; sh_inner : Sim.Payload.t }

exception Group_failure of string

val create_static :
  ?config:config ->
  ?policy:Seq_policy.t ->
  name:string ->
  sequencer:sequencer_placement ->
  System_layer.t array ->
  t * member array
(** One member per Panda instance.  Membership is static in the Panda
    stack (the paper's experiments never change it mid-run; the kernel
    stack additionally implements Amoeba's dynamic join/leave).

    [policy] defaults to [Seq_policy.Single], which is exactly the
    original protocol.  Under [Sharded n], shard [k]'s sequencer is
    placed on member [(i + k) mod members] (spreading ordering CPU), and
    each shard orders independently: delivery order is total {e within}
    a shard only.  Under any crash-recoverable policy, the successor
    (the member after the sequencer's) hosts a pre-wired standby. *)

val config : t -> config
val policy : t -> Seq_policy.t

val shard_count : t -> int
(** Number of independent ordering domains (1 unless sharded). *)

val member_index : member -> int
val member_count : t -> int

val set_handler : member -> (sender:int -> size:int -> Sim.Payload.t -> unit) -> unit
(** Installs the delivery upcall; runs in the member's system-layer daemon
    thread, in per-shard total order. *)

val send : ?key:int -> member -> size:int -> Sim.Payload.t -> unit
(** Blocking broadcast.  [key] (default 0) picks the ordering shard via
    {!Seq_policy.shard_of_key}; it is ignored unless the group is
    sharded.  @raise Group_failure after [max_retries]. *)

val send_nonblocking : ?key:int -> member -> size:int -> Sim.Payload.t -> unit
(** Fire-and-forget broadcast (still reliable and per-shard totally
    ordered); the paper's §6 extension.  The calling thread does not wait
    for the sequencer round trip. *)

val crash_sequencer : t -> unit
(** Kills the (primary) sequencer thread mid-run: it stops processing
    and its pending queue is lost.  Members detect the silence through
    their retransmission timers and trigger recovery — history-buffer
    rebuild on the standby, or a token reclaim under rotation.  Sharded
    groups crash shard 0's sequencer.
    @raise Invalid_argument under the [Single] policy (no recovery). *)

val sequencer_epoch : t -> int
(** 0 while the primary orders; 1 once a standby has taken over. *)

val delivered_seq : member -> int
(** Total messages delivered at this member across all shards, minus 1
    (the highest delivered sequence number when there is one shard). *)

val delivered_in_shard : member -> shard:int -> int
(** Highest sequence number delivered at this member in one shard. *)

val messages_ordered : t -> int
val retransmissions : t -> int
val history_length : t -> int
