module Thread = Machine.Thread
module Mach = Machine.Mach
module Sync = Machine.Sync

type config = {
  pan_header : int;
  frag_bytes : int;
  frag_cost : Sim.Time.span;
  copy_byte : Sim.Time.span;
  recv_fixed : Sim.Time.span;
  upcall_depth : int;
  send_depth : int;
  user_flip_extra : Sim.Time.span;
  single_frag : bool;
  sg_copy : bool;
  rx_fastpath : bool;
}

let default_config =
  {
    pan_header = 16;
    frag_bytes = 1400;
    frag_cost = Sim.Time.us 20;
    copy_byte = Sim.Time.ns 50;
    recv_fixed = Sim.Time.us 25;
    upcall_depth = 3;
    send_depth = 3;
    user_flip_extra = Sim.Time.us 15;
    single_frag = false;
    sg_copy = false;
    rx_fastpath = false;
  }

(* A Panda-level fragment travelling as one FLIP message. *)
type Sim.Payload.t += Pan of Flip.Fragment.t

(* Receive-queue entries.  [Raw] is the baseline path: the daemon fetches
   the packet with a system call and reassembles under a lock.  [Fast] is
   the optimized single-fragment fast path: the interrupt handler already
   "reassembled" the (one-fragment) message, so the daemon only dispatches
   the upcall. *)
type rx_item =
  | Raw of Flip.Fragment.t
  | Fast of { f_src : Flip.Address.t; f_total : int; f_bytes : int; f_user : Sim.Payload.t }

type t = {
  sname : string;
  flip : Flip.Flip_iface.t;
  cfg : config;
  addr : Flip.Address.t;
  rx_q : rx_item Queue.t;
  mutable rx_waiter : (unit -> unit) option;
  mutable daemon : Thread.t option;
  qmutex : Sync.Mutex.t;
  reasm : Flip.Reassembly.t;
  (* FLIP-level reassembly: a Panda fragment travels as one FLIP message,
     which FLIP may itself have fragmented (when fragment + Panda header
     exceeds the FLIP MTU).  The network message must be reassembled
     before its payload is interpreted as a Panda fragment — otherwise
     every FLIP packet of one Panda fragment would inject a copy. *)
  net_reasm : Flip.Reassembly.t;
  mutable handlers : (src:Flip.Address.t -> size:int -> Sim.Payload.t -> bool) list;
  mutable next_msg : int;
  mutable n_packets : int;
  mutable n_msgs_in : int;
  mutable n_msgs_out : int;
  mutable n_fast : int;
}

let address t = t.addr
let machine t = Flip.Flip_iface.machine t.flip
let flip t = t.flip
let config t = t.cfg
let packets_received t = t.n_packets
let messages_received t = t.n_msgs_in
let messages_sent t = t.n_msgs_out
let fastpath_deliveries t = t.n_fast

(* With single fragmentation, Panda sizes its fragments so that fragment +
   Panda header exactly fills one FLIP packet: FLIP never re-fragments. *)
let frag_payload t =
  if t.cfg.single_frag then (Flip.Flip_iface.config t.flip).Flip.Flip_iface.mtu - t.cfg.pan_header
  else t.cfg.frag_bytes

(* Bytes the CPU actually traverses per fragment: with scatter-gather I/O
   only the (gathered) Panda header is built; the payload stays in place. *)
let copied_bytes t frag_bytes = if t.cfg.sg_copy then t.cfg.pan_header else frag_bytes

let add_handler t h = t.handlers <- t.handlers @ [ h ]

let unwrap (flip_frag : Flip.Fragment.t) =
  match flip_frag.Flip.Fragment.payload with
  | Pan pan_frag -> Some pan_frag
  | _ -> None

let wake_daemon ~direct t =
  match t.rx_waiter with
  | Some wake ->
    t.rx_waiter <- None;
    (* On the fast path the FLIP receive code dispatches the daemon
       upcall-style: the daemon continues out of the interrupt without a
       scheduling handoff, so no context switch is charged. *)
    if direct then Option.iter Thread.mark_direct_wake t.daemon;
    wake ()
  | None -> ()

(* Interrupt context: queue the packet and wake the daemon. *)
let inject t pan_frag =
  if t.cfg.rx_fastpath && pan_frag.Flip.Fragment.count = 1 then begin
    (* Single-fragment fast path: the message is complete on arrival, so
       the interrupt handler hands it to the upcall dispatch directly
       (free bookkeeping, exactly like the kernel stack's input routines);
       the receive-daemon handoff and its locking are skipped.  Every
       arriving copy is delivered, matching what [Flip.Reassembly.add]
       does for completed single-fragment messages. *)
    Queue.push
      (Fast
         { f_src = pan_frag.Flip.Fragment.src;
           f_total = pan_frag.Flip.Fragment.total;
           f_bytes = pan_frag.Flip.Fragment.bytes;
           f_user = pan_frag.Flip.Fragment.payload })
      t.rx_q;
    wake_daemon ~direct:true t
  end
  else begin
    Queue.push (Raw pan_frag) t.rx_q;
    wake_daemon ~direct:false t
  end

let upcall t ~src ~size payload =
  Thread.call_frames ~layer:Obs.Layer.Panda_sys t.cfg.upcall_depth;
  let rec try_handlers = function
    | [] -> ()
    | h :: rest -> if not (h ~src ~size payload) then try_handlers rest
  in
  try_handlers t.handlers;
  Thread.ret_frames ~layer:Obs.Layer.Panda_sys t.cfg.upcall_depth

(* One receive system call per packet, plus the untuned user-level FLIP
   interface overhead.  The fast path pays this too: the upcall still
   crosses the user/kernel boundary (this PR does not model user-level
   network access; that stays a separate ablation). *)
let recv_crossing t =
  Thread.syscall ~layer:Obs.Layer.Panda_sys
    ~kernel_work:t.cfg.user_flip_extra
    ~charges:[ (Obs.Layer.Flip, Obs.Cause.Uk_crossing, t.cfg.user_flip_extra) ]
    ()

let rec daemon_loop t =
  (match Queue.take_opt t.rx_q with
   | None ->
     Thread.suspend (fun _ resume -> t.rx_waiter <- Some resume);
     ()
   | Some (Raw frag) ->
     t.n_packets <- t.n_packets + 1;
     Obs.Recorder.with_span (Mach.engine (machine t)) Obs.Layer.Panda_sys "rx"
       (fun () ->
         recv_crossing t;
         Thread.compute_parts ~layer:Obs.Layer.Panda_sys
           [ (Obs.Cause.Proto_proc, t.cfg.recv_fixed);
             (Obs.Cause.Copy, copied_bytes t frag.Flip.Fragment.bytes * t.cfg.copy_byte) ];
         (* Shared protocol state is guarded by user-space locks; this is
            where the paper's 7x lock traffic comes from. *)
         Sync.Mutex.lock t.qmutex;
         let completed = Flip.Reassembly.add t.reasm frag in
         Sync.Mutex.unlock t.qmutex;
         match completed with
         | Some (src, total, payload) ->
           t.n_msgs_in <- t.n_msgs_in + 1;
           upcall t ~src ~size:total payload
         | None -> ())
   | Some (Fast { f_src; f_total; f_bytes; f_user }) ->
     t.n_packets <- t.n_packets + 1;
     t.n_fast <- t.n_fast + 1;
     Obs.Recorder.with_span (Mach.engine (machine t)) Obs.Layer.Panda_sys "rx-fast"
       (fun () ->
         recv_crossing t;
         Thread.compute_parts ~layer:Obs.Layer.Panda_sys
           [ (Obs.Cause.Proto_proc, t.cfg.recv_fixed);
             (Obs.Cause.Copy, copied_bytes t f_bytes * t.cfg.copy_byte) ];
         (* No reassembly, no reassembly lock: the message completed in
            the interrupt handler. *)
         t.n_msgs_in <- t.n_msgs_in + 1;
         upcall t ~src:f_src ~size:f_total f_user));
  daemon_loop t

(* Sending: Panda fragments the message itself (the duplicated portable
   fragmentation layer), then issues one FLIP system call per fragment. *)
let alloc_tag t =
  t.next_msg <- t.next_msg + 1;
  t.next_msg

let fragments ?tag t ~dst ~size payload =
  let msg_id = match tag with Some id -> id | None -> alloc_tag t in
  Flip.Fragment.split ~src:t.addr ~dst ~msg_id ~mtu:(frag_payload t) ~size payload

let wire_bytes t frag = t.cfg.pan_header + frag.Flip.Fragment.bytes

(* The upper protocol's header rides in the first Panda fragment; the Panda
   fragmentation header itself is deliberately left unattributed (it exists
   on both stacks' wire formats the paper compares against). *)
let upper_for hdr (frag : Flip.Fragment.t) =
  match hdr with Some _ when frag.Flip.Fragment.index = 0 -> hdr | _ -> None

let transmit_one ?hdr t ~target frag =
  let size = wire_bytes t frag in
  let hdr = upper_for hdr frag in
  match target with
  | `Unicast dst ->
    Flip.Flip_iface.unicast ?hdr t.flip ~src:t.addr ~dst ~size (Pan frag)
  | `Mcast group ->
    Flip.Flip_iface.multicast ?hdr t.flip ~src:t.addr ~group ~size (Pan frag)

let send_from_thread ?tag ?hdr t ~target ~size payload =
  t.n_msgs_out <- t.n_msgs_out + 1;
  Obs.Recorder.with_span (Mach.engine (machine t)) Obs.Layer.Panda_sys "send"
    (fun () ->
      Thread.call_frames ~layer:Obs.Layer.Panda_sys t.cfg.send_depth;
      Sync.Mutex.lock t.qmutex;
      let frags =
        fragments ?tag t
          ~dst:(match target with `Unicast d -> d | `Mcast g -> g)
          ~size payload
      in
      Sync.Mutex.unlock t.qmutex;
      (* With single fragmentation there is only one fragmentation layer
         left doing real work (FLIP's, inside out_packet_cost): the
         duplicated Panda pass is gone along with its per-message charge. *)
      if not t.cfg.single_frag then
        Thread.compute ~layer:Obs.Layer.Panda_sys ~cause:Obs.Cause.Fragmentation
          t.cfg.frag_cost;
      List.iter
        (fun frag ->
          let copy = copied_bytes t frag.Flip.Fragment.bytes * t.cfg.copy_byte in
          let out = Flip.Flip_iface.send_cost t.flip ~size:(wire_bytes t frag) in
          Thread.syscall ~layer:Obs.Layer.Panda_sys
            ~kernel_work:(t.cfg.user_flip_extra + copy + out)
            ~charges:
              [ (Obs.Layer.Flip, Obs.Cause.Uk_crossing, t.cfg.user_flip_extra);
                (Obs.Layer.Panda_sys, Obs.Cause.Copy, copy);
                (Obs.Layer.Flip, Obs.Cause.Proto_proc, out) ]
            ();
          transmit_one ?hdr t ~target frag)
        frags;
      Thread.ret_frames ~layer:Obs.Layer.Panda_sys t.cfg.send_depth)

let send ?tag ?hdr t ~dst ~size payload =
  send_from_thread ?tag ?hdr t ~target:(`Unicast dst) ~size payload

let mcast ?tag ?hdr t ~group ~size payload =
  send_from_thread ?tag ?hdr t ~target:(`Mcast group) ~size payload

let send_from_daemon = send
let mcast_from_daemon = mcast

let transmit_from_interrupt ?tag ?hdr t ~target ~size payload =
  t.n_msgs_out <- t.n_msgs_out + 1;
  let dst = match target with `Unicast d -> d | `Mcast g -> g in
  let frags = fragments ?tag t ~dst ~size payload in
  let cost =
    List.fold_left
      (fun acc frag -> acc + Flip.Flip_iface.send_cost t.flip ~size:(wire_bytes t frag))
      0 frags
  in
  Mach.interrupt (machine t) ~layer:Obs.Layer.Panda_sys
    ~charges:[ (Obs.Layer.Flip, Obs.Cause.Proto_proc, cost) ]
    ~name:"panda.retrans" ~cost (fun () ->
      List.iter (fun frag -> transmit_one ?hdr t ~target frag) frags)

let send_from_interrupt ?tag ?hdr t ~dst ~size payload =
  transmit_from_interrupt ?tag ?hdr t ~target:(`Unicast dst) ~size payload

let mcast_from_interrupt ?tag ?hdr t ~group ~size payload =
  transmit_from_interrupt ?tag ?hdr t ~target:(`Mcast group) ~size payload

let wake_blocked ?thread t resume =
  match thread with
  | Some th when t.cfg.rx_fastpath ->
    (* Upcall-style hand-off: the upcall resumes the blocked caller as a
       user-level thread switch, so the daemon pays no kernel signalling
       crossing.  The woken thread is still scheduled normally (it keeps
       its one context switch — the single switch of the fast path). *)
    ignore th;
    resume ()
  | _ ->
    if Thread.self_opt () <> None then
      Thread.syscall ~layer:Obs.Layer.Panda_sys ();
    resume ()

let create ?(config = default_config) ~name flip =
  let mach = Flip.Flip_iface.machine flip in
  let t =
    {
      sname = name;
      flip;
      cfg = config;
      addr = Flip.Address.fresh_point (Machine.Mach.engine mach);
      rx_q = Queue.create ();
      rx_waiter = None;
      daemon = None;
      qmutex = Sync.Mutex.create mach;
      reasm = Flip.Reassembly.create ();
      net_reasm = Flip.Reassembly.create ();
      handlers = [];
      next_msg = 0;
      n_packets = 0;
      n_msgs_in = 0;
      n_msgs_out = 0;
      n_fast = 0;
    }
  in
  Flip.Flip_iface.register flip t.addr (fun flip_frag ->
      match Flip.Reassembly.add t.net_reasm flip_frag with
      | Some (_, _, payload) -> (
          match payload with
          | Pan pan_frag -> inject t pan_frag
          | _ -> ())
      | None -> ());
  t.daemon <-
    Some (Thread.spawn mach ~prio:Thread.Daemon (name ^ ".daemon") (fun () -> daemon_loop t));
  t
