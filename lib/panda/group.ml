module Thread = Machine.Thread
module Mach = Machine.Mach

type config = {
  header_bytes : int;
  accept_bytes : int;
  order_fixed : Sim.Time.span;
  deliver_cost : Sim.Time.span;
  copy_byte : Sim.Time.span;
  bb_threshold : int;
  retrans_timeout : Sim.Time.span;
  max_retries : int;
  history_high : int;
}

let default_config =
  {
    header_bytes = 40;
    accept_bytes = 24;
    order_fixed = Sim.Time.us 20;
    deliver_cost = Sim.Time.us 30;
    copy_byte = Sim.Time.ns 50;
    bb_threshold = 1300;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 30;
    history_high = 512;
  }

type sequencer_placement = On_member of int | Dedicated of System_layer.t

type Sim.Payload.t +=
  | Gpb of { sender : int; local : int; size : int; user : Sim.Payload.t }
  | Gbb of { sender : int; local : int; size : int; user : Sim.Payload.t }
  | Gord of { g_seq : int; g_sender : int; g_local : int; g_size : int; g_user : Sim.Payload.t }
  | Gacc of { g_seq : int; g_sender : int; g_local : int }
  | Gret of { g_member : int; g_from : int }
  | Gstat_req of { gsr_next : int }
  | Gstat_rsp of { g_member : int; g_delivered : int }

exception Group_failure of string

type entry = {
  e_seq : int;
  e_sender : int;
  e_local : int;
  e_size : int;
  e_user : Sim.Payload.t;
}

type sq_item =
  | It_order of { o_bb : bool; o_sender : int; o_local : int; o_size : int; o_user : Sim.Payload.t }
  | It_retrans of { r_member : int; r_from : int }
  | It_status of { st_member : int; st_delivered : int }
  | It_catch_up

type sequencer = {
  sq_sys : System_layer.t;
  sq_q : sq_item Queue.t;
  mutable sq_waiter : (unit -> unit) option;
  mutable next_seq : int;
  history : (int, entry) Hashtbl.t;
  mutable hist_lo : int;
  ordered_ids : (int * int, int) Hashtbl.t;
  member_delivered : int array;
  mutable status_outstanding : bool;
  mutable idle_timer : Sim.Engine.handle option;
  mutable catch_up_rounds : int;
}

type slot = Full of entry | Awaiting of int * int

type send_wait = {
  sw_local : int;
  sw_size : int;
  sw_user : Sim.Payload.t;
  sw_bb : bool;
  mutable sw_done : bool;
  mutable sw_failed : bool;
  mutable sw_resume : (unit -> unit) option;
  mutable sw_thread : Machine.Thread.t option;
  mutable sw_timer : Sim.Engine.handle option;
  mutable sw_tries : int;
}

type t = {
  cfg : config;
  gname : string;
  gaddr : Flip.Address.t;
  saddr : Flip.Address.t;
  n_members : int;
  mutable member_sys_addrs : Flip.Address.t array;
  mutable seqst : sequencer option;
  mutable n_ordered : int;
  mutable n_retrans : int;
}

type member = {
  grp : t;
  m_sys : System_layer.t;
  m_index : int;
  mutable expected : int;
  stash : (int, slot) Hashtbl.t;
  awaiting : (int * int, int) Hashtbl.t;
  holding : (int * int, int * Sim.Payload.t) Hashtbl.t;
  sends : (int, send_wait) Hashtbl.t;
  mutable next_local : int;
  mutable gap_timer : Sim.Engine.handle option;
  mutable handler : (sender:int -> size:int -> Sim.Payload.t -> unit) option;
}

let config t = t.cfg
let member_index m = m.m_index
let member_count t = t.n_members
let messages_ordered t = t.n_ordered
let retransmissions t = t.n_retrans
let delivered_seq m = m.expected - 1
let set_handler m f = m.handler <- Some f

let history_length t =
  match t.seqst with Some s -> Hashtbl.length s.history | None -> 0

let m_eng m = Mach.engine (System_layer.machine m.m_sys)
let data_size t size = t.cfg.header_bytes + size

(* Only data-bearing messages (Gpb/Gbb/Gord) carry the group protocol
   header inside [data_size]; accepts and control traffic are sized
   independently and stay unattributed. *)
let grp_hdr t = (Obs.Layer.Panda_grp, t.cfg.header_bytes)

(* ------------------------------------------------------------------ *)
(* Sequencer thread *)

let seq_enqueue s item =
  Queue.push item s.sq_q;
  match s.sq_waiter with
  | Some wake ->
    s.sq_waiter <- None;
    wake ()
  | None -> ()

let all_caught_up s =
  Array.fold_left min max_int s.member_delivered >= s.next_seq - 1

let maybe_status t s =
  if Hashtbl.length s.history > t.cfg.history_high && not s.status_outstanding then begin
    s.status_outstanding <- true;
    System_layer.mcast s.sq_sys ~group:t.gaddr ~size:t.cfg.accept_bytes
      (Gstat_req { gsr_next = s.next_seq })
  end

(* After each ordering, check a while later that every member confirmed
   the tail of the sequence: a lost *last* message leaves no later traffic
   to expose the hole, so the sequencer must ask.  Rounds repeat (bounded)
   until everyone caught up. *)
let max_catch_up_rounds = 32

let rec arm_idle_check t s =
  let eng = Machine.Mach.engine (System_layer.machine s.sq_sys) in
  (match s.idle_timer with Some h -> Sim.Engine.cancel eng h | None -> ());
  s.idle_timer <-
    Some
      (Sim.Engine.after eng (2 * t.cfg.retrans_timeout) (fun () ->
           s.idle_timer <- None;
           if not (all_caught_up s) && s.catch_up_rounds < max_catch_up_rounds then begin
             s.catch_up_rounds <- s.catch_up_rounds + 1;
             seq_enqueue s It_catch_up;
             arm_idle_check t s
           end))

let trim_history t s =
  let min_delivered = Array.fold_left min max_int s.member_delivered in
  if min_delivered >= 0 then begin
    while s.hist_lo <= min_delivered do
      Hashtbl.remove s.history s.hist_lo;
      s.hist_lo <- s.hist_lo + 1
    done;
    if Hashtbl.length s.history < t.cfg.history_high then s.status_outstanding <- false
  end

let seq_resend t s ~seq ~to_member =
  match Hashtbl.find_opt s.history seq with
  | None -> ()
  | Some e ->
    t.n_retrans <- t.n_retrans + 1;
    System_layer.send ~hdr:(grp_hdr t) s.sq_sys ~dst:t.member_sys_addrs.(to_member)
      ~size:(data_size t e.e_size)
      (Gord { g_seq = e.e_seq; g_sender = e.e_sender; g_local = e.e_local;
              g_size = e.e_size; g_user = e.e_user })

let max_retrans_burst = 32

let seq_handle_item t s item =
  let sys_cfg = System_layer.config s.sq_sys in
  Obs.Recorder.with_span
    (Mach.engine (System_layer.machine s.sq_sys))
    Obs.Layer.Panda_grp "sequence"
  @@ fun () ->
  (* First system call: fetch the message from the network into user
     space. *)
  Thread.syscall ~layer:Obs.Layer.Panda_grp
    ~kernel_work:sys_cfg.System_layer.user_flip_extra
    ~charges:
      [ (Obs.Layer.Flip, Obs.Cause.Uk_crossing,
         sys_cfg.System_layer.user_flip_extra) ]
    ();
  match item with
  | It_order { o_bb; o_sender; o_local; o_size; o_user } -> (
      (* Fragment-level ordering: BB data is never copied up into the
         sequencer, only its ordering information. *)
      let copied = if o_bb then 0 else o_size in
      Thread.compute_parts ~layer:Obs.Layer.Panda_grp
        [ (Obs.Cause.Proto_proc, t.cfg.order_fixed);
          (Obs.Cause.Copy, copied * t.cfg.copy_byte) ];
      match Hashtbl.find_opt s.ordered_ids (o_sender, o_local) with
      | Some seq -> (
          (* Duplicate: the ordering multicast was lost on the wire (for
             everyone at once); re-multicast it. *)
          match Hashtbl.find_opt s.history seq with
          | None -> ()
          | Some e ->
            t.n_retrans <- t.n_retrans + 1;
            if e.e_size > t.cfg.bb_threshold then
              System_layer.mcast s.sq_sys ~group:t.gaddr ~size:t.cfg.accept_bytes
                (Gacc { g_seq = e.e_seq; g_sender = e.e_sender; g_local = e.e_local })
            else
              System_layer.mcast ~hdr:(grp_hdr t) s.sq_sys ~group:t.gaddr
                ~size:(data_size t e.e_size)
                (Gord { g_seq = e.e_seq; g_sender = e.e_sender; g_local = e.e_local;
                        g_size = e.e_size; g_user = e.e_user }))
      | None ->
        let e =
          { e_seq = s.next_seq; e_sender = o_sender; e_local = o_local;
            e_size = o_size; e_user = o_user }
        in
        s.next_seq <- s.next_seq + 1;
        Hashtbl.replace s.history e.e_seq e;
        Hashtbl.replace s.ordered_ids (o_sender, o_local) e.e_seq;
        t.n_ordered <- t.n_ordered + 1;
        (* Second system call (inside mcast): multicast the ordered
           message, or the small accept for BB data. *)
        if o_bb then
          System_layer.mcast s.sq_sys ~group:t.gaddr ~size:t.cfg.accept_bytes
            (Gacc { g_seq = e.e_seq; g_sender = o_sender; g_local = o_local })
        else
          System_layer.mcast ~hdr:(grp_hdr t) s.sq_sys ~group:t.gaddr
            ~size:(data_size t o_size)
            (Gord { g_seq = e.e_seq; g_sender = o_sender; g_local = o_local;
                    g_size = o_size; g_user = o_user });
        maybe_status t s;
        arm_idle_check t s)
  | It_retrans { r_member; r_from } ->
    let upto = min (s.next_seq - 1) (r_from + max_retrans_burst - 1) in
    for seq = r_from to upto do
      seq_resend t s ~seq ~to_member:r_member
    done
  | It_status { st_member; st_delivered } ->
    s.member_delivered.(st_member) <- max s.member_delivered.(st_member) st_delivered;
    trim_history t s;
    if all_caught_up s then s.catch_up_rounds <- 0
  | It_catch_up ->
    Thread.compute ~layer:Obs.Layer.Panda_grp t.cfg.order_fixed;
    System_layer.mcast s.sq_sys ~group:t.gaddr ~size:t.cfg.accept_bytes
      (Gstat_req { gsr_next = s.next_seq })

let rec seq_loop t s =
  (match Queue.take_opt s.sq_q with
   | None -> Thread.suspend (fun _ resume -> s.sq_waiter <- Some resume)
   | Some item -> seq_handle_item t s item);
  seq_loop t s

(* Interrupt-context feed of the sequencer's queue (its point address). *)
let seq_input s flip_frag =
  match System_layer.unwrap flip_frag with
  | None -> ()
  | Some pan -> (
      match pan.Flip.Fragment.payload with
      | Gpb { sender; local; size; user } ->
        seq_enqueue s (It_order { o_bb = false; o_sender = sender; o_local = local;
                                  o_size = size; o_user = user })
      | Gret { g_member; g_from } ->
        seq_enqueue s (It_retrans { r_member = g_member; r_from = g_from })
      | Gstat_rsp { g_member; g_delivered } ->
        seq_enqueue s (It_status { st_member = g_member; st_delivered = g_delivered })
      | _ -> ())

(* BB data tap: the sequencer orders large messages on sight of their first
   fragment (fragment-level ordering; no reassembly in the sequencer). *)
let seq_tap_bb s pan =
  match pan.Flip.Fragment.payload with
  | Gbb { sender; local; size; user }
    when pan.Flip.Fragment.index = pan.Flip.Fragment.count - 1 ->
    seq_enqueue s (It_order { o_bb = true; o_sender = sender; o_local = local;
                              o_size = size; o_user = user })
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Member: ordered delivery (runs as upcalls in the member's daemon) *)

let send_retrans_req_from_daemon m =
  m.grp.n_retrans <- m.grp.n_retrans + 1;
  System_layer.send_from_daemon m.m_sys ~dst:m.grp.saddr ~size:m.grp.cfg.accept_bytes
    (Gret { g_member = m.m_index; g_from = m.expected })

let send_retrans_req_from_timer m =
  m.grp.n_retrans <- m.grp.n_retrans + 1;
  System_layer.send_from_interrupt m.m_sys ~dst:m.grp.saddr ~size:m.grp.cfg.accept_bytes
    (Gret { g_member = m.m_index; g_from = m.expected })

let rec arm_gap_timer m =
  if m.gap_timer = None && Hashtbl.length m.stash > 0 then
    m.gap_timer <-
      Some
        (Sim.Engine.after (m_eng m) m.grp.cfg.retrans_timeout (fun () ->
             m.gap_timer <- None;
             if Hashtbl.length m.stash > 0 then begin
               send_retrans_req_from_timer m;
               arm_gap_timer m
             end))

let deliver m e =
  Obs.Recorder.with_span (m_eng m) Obs.Layer.Panda_grp "deliver" @@ fun () ->
  (* Ordering/delivery bookkeeping runs in the daemon thread. *)
  if Thread.self_opt () <> None then
    Thread.compute ~layer:Obs.Layer.Panda_grp m.grp.cfg.deliver_cost;
  (match m.handler with
   | Some f -> f ~sender:e.e_sender ~size:e.e_size e.e_user
   | None -> ());
  if e.e_sender = m.m_index then
    match Hashtbl.find_opt m.sends e.e_local with
    | Some sw ->
      Hashtbl.remove m.sends e.e_local;
      sw.sw_done <- true;
      (match sw.sw_timer with Some h -> Sim.Engine.cancel (m_eng m) h | None -> ());
      (match sw.sw_resume with
       | Some resume ->
         sw.sw_resume <- None;
         System_layer.wake_blocked ?thread:sw.sw_thread m.m_sys resume
       | None -> ())
    | None -> ()

let rec drain m =
  match Hashtbl.find_opt m.stash m.expected with
  | Some (Full e) ->
    Hashtbl.remove m.stash m.expected;
    m.expected <- m.expected + 1;
    deliver m e;
    drain m
  | Some (Awaiting _) | None -> ()

let handle_ordered m e =
  if e.e_seq >= m.expected then begin
    (match Hashtbl.find_opt m.stash e.e_seq with
     | Some (Full _) -> ()
     | Some (Awaiting _) | None -> Hashtbl.replace m.stash e.e_seq (Full e));
    Hashtbl.remove m.awaiting (e.e_sender, e.e_local);
    let had_gap = e.e_seq > m.expected in
    drain m;
    if had_gap && Hashtbl.length m.stash > 0 then begin
      send_retrans_req_from_daemon m;
      arm_gap_timer m
    end
  end

let handle_accept m ~g_seq ~g_sender ~g_local =
  if g_seq >= m.expected then
    match Hashtbl.find_opt m.holding (g_sender, g_local) with
    | Some (size, user) ->
      Hashtbl.remove m.holding (g_sender, g_local);
      handle_ordered m
        { e_seq = g_seq; e_sender = g_sender; e_local = g_local; e_size = size; e_user = user }
    | None -> (
        match Hashtbl.find_opt m.stash g_seq with
        | Some (Full _) -> ()
        | Some (Awaiting _) | None ->
          Hashtbl.replace m.stash g_seq (Awaiting (g_sender, g_local));
          Hashtbl.replace m.awaiting (g_sender, g_local) g_seq;
          send_retrans_req_from_daemon m;
          arm_gap_timer m)

let on_member_msg m payload =
  match payload with
  | Gord { g_seq; g_sender; g_local; g_size; g_user } ->
    handle_ordered m
      { e_seq = g_seq; e_sender = g_sender; e_local = g_local; e_size = g_size;
        e_user = g_user };
    true
  | Gacc { g_seq; g_sender; g_local } ->
    handle_accept m ~g_seq ~g_sender ~g_local;
    true
  | Gbb { sender; local; size; user } ->
    (match Hashtbl.find_opt m.awaiting (sender, local) with
     | Some seq ->
       Hashtbl.remove m.awaiting (sender, local);
       handle_ordered m
         { e_seq = seq; e_sender = sender; e_local = local; e_size = size; e_user = user }
     | None ->
       if not (Hashtbl.mem m.holding (sender, local)) then
         Hashtbl.replace m.holding (sender, local) (size, user));
    true
  | Gstat_req { gsr_next } ->
    if m.expected < gsr_next then send_retrans_req_from_daemon m;
    System_layer.send_from_daemon m.m_sys ~dst:m.grp.saddr ~size:m.grp.cfg.accept_bytes
      (Gstat_rsp { g_member = m.m_index; g_delivered = m.expected - 1 });
    true
  | Gret _ | Gstat_rsp _ | Gpb _ -> true (* sequencer traffic; not for members *)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Member API *)

let send_impl ~blocking m ~size payload =
  Obs.Recorder.with_span (m_eng m) Obs.Layer.Panda_grp "send" @@ fun () ->
  let t = m.grp in
  m.next_local <- m.next_local + 1;
  let bb = size > t.cfg.bb_threshold in
  let sw =
    {
      sw_local = m.next_local;
      sw_size = size;
      sw_user = payload;
      sw_bb = bb;
      sw_done = false;
      sw_failed = false;
      sw_resume = None;
      sw_thread = None;
      sw_timer = None;
      sw_tries = 0;
    }
  in
  Hashtbl.replace m.sends sw.sw_local sw;
  let msg_size = data_size t size in
  let tag = System_layer.alloc_tag m.m_sys in
  let first_transmit () =
    if bb then
      System_layer.mcast ~tag ~hdr:(grp_hdr t) m.m_sys ~group:t.gaddr ~size:msg_size
        (Gbb { sender = m.m_index; local = sw.sw_local; size; user = payload })
    else
      System_layer.send ~tag ~hdr:(grp_hdr t) m.m_sys ~dst:t.saddr ~size:msg_size
        (Gpb { sender = m.m_index; local = sw.sw_local; size; user = payload })
  in
  let retransmit () =
    if bb then
      System_layer.mcast_from_interrupt ~tag ~hdr:(grp_hdr t) m.m_sys
        ~group:t.gaddr ~size:msg_size
        (Gbb { sender = m.m_index; local = sw.sw_local; size; user = payload })
    else
      System_layer.send_from_interrupt ~tag ~hdr:(grp_hdr t) m.m_sys
        ~dst:t.saddr ~size:msg_size
        (Gpb { sender = m.m_index; local = sw.sw_local; size; user = payload })
  in
  let rec arm () =
    sw.sw_timer <-
      Some
        (Sim.Engine.after (m_eng m) t.cfg.retrans_timeout (fun () ->
             if not sw.sw_done then
               if sw.sw_tries >= t.cfg.max_retries then begin
                 sw.sw_failed <- true;
                 Hashtbl.remove m.sends sw.sw_local;
                 match sw.sw_resume with
                 | Some resume ->
                   sw.sw_resume <- None;
                   resume ()
                 | None -> ()
               end
               else begin
                 sw.sw_tries <- sw.sw_tries + 1;
                 t.n_retrans <- t.n_retrans + 1;
                 retransmit ();
                 arm ()
               end))
  in
  (* The sender already has its own BB data: store it for the accept
     directly instead of processing the looped-back multicast. *)
  if bb then Hashtbl.replace m.holding (m.m_index, sw.sw_local) (size, payload);
  (* Arm before transmitting: the send path's system calls suspend the
     caller, and on a sequencer-local send the whole ordering round trip
     can complete during those suspensions. *)
  arm ();
  first_transmit ();
  if blocking then begin
    if not sw.sw_done then
      Thread.suspend (fun th resume ->
          sw.sw_thread <- Some th;
          sw.sw_resume <- Some resume);
    if sw.sw_failed then raise (Group_failure "broadcast not ordered after retries")
  end

let send m ~size payload = send_impl ~blocking:true m ~size payload
let send_nonblocking m ~size payload = send_impl ~blocking:false m ~size payload

(* ------------------------------------------------------------------ *)
(* Construction *)

let create_static ?(config = default_config) ~name ~sequencer sys_layers =
  let n = Array.length sys_layers in
  assert (n > 0);
  let eng = Machine.Mach.engine (System_layer.machine sys_layers.(0)) in
  let t =
    {
      cfg = config;
      gname = name;
      gaddr = Flip.Address.fresh_group eng;
      saddr = Flip.Address.fresh_point eng;
      n_members = n;
      member_sys_addrs = [||];
      seqst = None;
      n_ordered = 0;
      n_retrans = 0;
    }
  in
  let members =
    Array.mapi
      (fun i sys ->
        (* Gpb must fit one Panda fragment: the sequencer never
           reassembles. *)
        assert (config.bb_threshold + config.header_bytes
                <= System_layer.frag_payload sys);
        {
          grp = t;
          m_sys = sys;
          m_index = i;
          expected = 0;
          stash = Hashtbl.create 32;
          awaiting = Hashtbl.create 8;
          holding = Hashtbl.create 8;
          sends = Hashtbl.create 4;
          next_local = 0;
          gap_timer = None;
          handler = None;
        })
      sys_layers
  in
  t.member_sys_addrs <- Array.map (fun m -> System_layer.address m.m_sys) members;
  let seq_sys =
    match sequencer with On_member i -> sys_layers.(i) | Dedicated sys -> sys
  in
  let s =
    {
      sq_sys = seq_sys;
      sq_q = Queue.create ();
      sq_waiter = None;
      next_seq = 0;
      history = Hashtbl.create 1024;
      hist_lo = 0;
      ordered_ids = Hashtbl.create 1024;
      member_delivered = Array.make n (-1);
      status_outstanding = false;
      idle_timer = None;
      catch_up_rounds = 0;
    }
  in
  t.seqst <- Some s;
  let seq_flip = System_layer.flip seq_sys in
  let seq_mach = System_layer.machine seq_sys in
  Flip.Flip_iface.register seq_flip t.saddr (fun frag -> seq_input s frag);
  ignore
    (Thread.spawn seq_mach ~prio:Thread.Daemon (name ^ ".sequencer") (fun () ->
         seq_loop t s));
  (* Group-address registration, per machine: members inject the traffic
     into their daemon; the sequencer's machine additionally taps BB data
     fragments. *)
  let seq_machine_id = Mach.id seq_mach in
  Array.iter
    (fun m ->
      let mach_id = Mach.id (System_layer.machine m.m_sys) in
      let tap = if mach_id = seq_machine_id then Some s else None in
      let own_addr = System_layer.address m.m_sys in
      Flip.Flip_iface.register (System_layer.flip m.m_sys) t.gaddr (fun flip_frag ->
          match System_layer.unwrap flip_frag with
          | None -> ()
          | Some pan ->
            (match tap with Some s -> seq_tap_bb s pan | None -> ());
            let own_bb =
              Flip.Address.equal pan.Flip.Fragment.src own_addr
              && match pan.Flip.Fragment.payload with Gbb _ -> true | _ -> false
            in
            if not own_bb then System_layer.inject m.m_sys pan))
    members;
  (match sequencer with
   | Dedicated sys ->
     (* No member lives there: only the BB tap listens on the group
        address. *)
     Flip.Flip_iface.register (System_layer.flip sys) t.gaddr (fun flip_frag ->
         match System_layer.unwrap flip_frag with
         | None -> ()
         | Some pan -> seq_tap_bb s pan)
   | On_member _ -> ());
  Array.iter
    (fun m ->
      System_layer.add_handler m.m_sys (fun ~src ~size payload ->
          ignore src;
          ignore size;
          on_member_msg m payload))
    members;
  (t, members)
