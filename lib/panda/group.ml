module Thread = Machine.Thread
module Mach = Machine.Mach

type config = {
  header_bytes : int;
  accept_bytes : int;
  order_fixed : Sim.Time.span;
  deliver_cost : Sim.Time.span;
  copy_byte : Sim.Time.span;
  bb_threshold : int;
  retrans_timeout : Sim.Time.span;
  max_retries : int;
  history_high : int;
}

let default_config =
  {
    header_bytes = 40;
    accept_bytes = 24;
    order_fixed = Sim.Time.us 20;
    deliver_cost = Sim.Time.us 30;
    copy_byte = Sim.Time.ns 50;
    bb_threshold = 1300;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 30;
    history_high = 512;
  }

type sequencer_placement = On_member of int | Dedicated of System_layer.t

type entry = {
  e_seq : int;
  e_sender : int;
  e_local : int;
  e_size : int;
  e_user : Sim.Payload.t;
}

type Sim.Payload.t +=
  | Gpb of { sender : int; local : int; size : int; user : Sim.Payload.t }
  | Gbb of { sender : int; local : int; size : int; user : Sim.Payload.t }
  | Gord of { g_seq : int; g_sender : int; g_local : int; g_size : int; g_user : Sim.Payload.t }
  | Gacc of { g_seq : int; g_sender : int; g_local : int }
  | Gret of { g_member : int; g_from : int }
  | Gstat_req of { gsr_next : int }
  | Gstat_rsp of { g_member : int; g_delivered : int }
  | Gordb of { gb_entries : entry list; gb_lo : int }
  | Gtok of { tk_holder : int; tk_gen : int }
  | Gdead of { gd_from : int }
  | Ghist_req of { hq_epoch : int }
  | Ghist_rsp of { hr_member : int; hr_delivered : int; hr_entries : entry list }
  | Gshard of { sh_core : int; sh_inner : Sim.Payload.t }

exception Group_failure of string

type order_req = {
  o_bb : bool;
  o_sender : int;
  o_local : int;
  o_size : int;
  o_user : Sim.Payload.t;
}

type sq_item =
  | It_order of order_req
  | It_retrans of { r_member : int; r_from : int }
  | It_status of { st_member : int; st_delivered : int }
  | It_catch_up
  | It_recover
  | It_hist of { h_member : int; h_delivered : int; h_entries : entry list }

type sequencer = {
  mutable sq_sys : System_layer.t;
  sq_q : sq_item Queue.t;
  mutable sq_waiter : (unit -> unit) option;
  mutable sq_dead : bool;
  mutable next_seq : int;
  history : (int, entry) Hashtbl.t;
  mutable hist_lo : int;
  ordered_ids : (int * int, int) Hashtbl.t;
  member_delivered : int array;
  mutable status_outstanding : bool;
  mutable idle_timer : Sim.Engine.handle option;
  mutable catch_up_rounds : int;
}

(* Rotating-token state, shared by the per-member sequencer threads.  The
   ordering data structures themselves live in the shared [sequencer]
   record — modeling the protocol's state transfer piggybacked on the
   token — but all ordering *work* is charged on whichever machine holds
   the token. *)
type rot = {
  rot_period : int;
  mutable rot_holder : int;
  mutable rot_gen : int;
  mutable rot_fresh : int;
  rot_waiters : (unit -> unit) option array;
  mutable rot_dead : int;  (* crashed member index, -1 = none *)
}

(* Crash-failover state: a standby sequencer on a designated successor
   machine, pre-wired with its own point address, that rebuilds ordering
   state from the members' bounded history buffers. *)
type failover = {
  fo_successor : int;
  fo_saddr2 : Flip.Address.t;
  fo_s2 : sequencer;
  mutable fo_epoch : int;  (* 0 = primary ordering, 1 = failed over *)
  mutable fo_taking : bool;
  fo_resp : bool array;
  mutable fo_timer : Sim.Engine.handle option;
}

type slot = Full of entry | Awaiting of int * int

type send_wait = {
  sw_local : int;
  sw_size : int;
  sw_user : Sim.Payload.t;
  sw_bb : bool;
  mutable sw_done : bool;
  mutable sw_failed : bool;
  mutable sw_resume : (unit -> unit) option;
  mutable sw_thread : Machine.Thread.t option;
  mutable sw_timer : Sim.Engine.handle option;
  mutable sw_tries : int;
}

(* One ordering domain: a group address, a sequencer, and the per-member
   delivery state.  [Single] groups are exactly one core; [Sharded n]
   groups run [n] cores side by side, discriminated on the wire by the
   [Gshard] wrapper ([c_tag] >= 0). *)
type core = {
  cfg : config;
  gname : string;
  c_tag : int;  (* shard tag; -1 = sole core, wire payloads unwrapped *)
  gaddr : Flip.Address.t;
  saddr : Flip.Address.t;
  n_members : int;
  mutable member_sys_addrs : Flip.Address.t array;
  mutable member_sys : System_layer.t array;
  mutable seqst : sequencer option;
  mutable n_ordered : int;
  mutable n_retrans : int;
  c_batch : int;  (* max orderings coalesced per wakeup; 1 = off *)
  c_rot : rot option;
  mutable c_fo : failover option;
  mutable c_crashed : bool;
}

type cmember = {
  grp : core;
  m_sys : System_layer.t;
  m_index : int;
  mutable expected : int;
  stash : (int, slot) Hashtbl.t;
  awaiting : (int * int, int) Hashtbl.t;
  holding : (int * int, int * Sim.Payload.t) Hashtbl.t;
  sends : (int, send_wait) Hashtbl.t;
  mutable next_local : int;
  mutable gap_timer : Sim.Engine.handle option;
  mutable handler : (sender:int -> size:int -> Sim.Payload.t -> unit) option;
  (* Bounded history of delivered entries, kept only when failover is
     enabled: the successor rebuilds the sequencer's history from these. *)
  m_hist : (int, entry) Hashtbl.t;
  mutable m_hist_lo : int;
}

type t = { p_policy : Seq_policy.t; p_cores : core array }
type member = { pm_grp : t; pm_index : int; pm_ms : cmember array }

let m_eng m = Mach.engine (System_layer.machine m.m_sys)
let s_eng s = Mach.engine (System_layer.machine s.sq_sys)
let data_size t size = t.cfg.header_bytes + size

(* Only data-bearing messages (Gpb/Gbb/Gord/Gordb) carry the group
   protocol header inside [data_size]; accepts and control traffic are
   sized independently and stay unattributed. *)
let grp_hdr t = (Obs.Layer.Panda_grp, t.cfg.header_bytes)

let wrap t p =
  if t.c_tag < 0 then p else Gshard { sh_core = t.c_tag; sh_inner = p }

let unwrap_core t p =
  if t.c_tag < 0 then Some p
  else
    match p with
    | Gshard { sh_core; sh_inner } when sh_core = t.c_tag -> Some sh_inner
    | _ -> None

(* Large messages use the BB method except under rotation, where the
   sequencer address moves and fragment-level tapping can't follow it. *)
let uses_bb t size = size > t.cfg.bb_threshold && t.c_rot = None

let active_seq t =
  match t.c_fo with
  | Some fo when fo.fo_epoch > 0 -> Some fo.fo_s2
  | _ -> t.seqst

(* Where members address sequencer traffic: the primary's point address
   until failover, the standby's afterwards (modeling FLIP's address
   re-resolution after the port moves). *)
let seq_dst t =
  match t.c_fo with
  | Some fo when fo.fo_epoch > 0 -> fo.fo_saddr2
  | _ -> t.saddr

(* ------------------------------------------------------------------ *)
(* Sequencer thread *)

let seq_enqueue s item =
  Queue.push item s.sq_q;
  if not s.sq_dead then
    match s.sq_waiter with
    | Some wake ->
      s.sq_waiter <- None;
      wake ()
    | None -> ()

let all_caught_up s =
  Array.fold_left min max_int s.member_delivered >= s.next_seq - 1

let maybe_status t s =
  if Hashtbl.length s.history > t.cfg.history_high && not s.status_outstanding then begin
    s.status_outstanding <- true;
    System_layer.mcast s.sq_sys ~group:t.gaddr ~size:t.cfg.accept_bytes
      (wrap t (Gstat_req { gsr_next = s.next_seq }))
  end

(* After each ordering, check a while later that every member confirmed
   the tail of the sequence: a lost *last* message leaves no later traffic
   to expose the hole, so the sequencer must ask.  Rounds repeat (bounded)
   until everyone caught up. *)
let max_catch_up_rounds = 32

let rec arm_idle_check t s =
  let eng = s_eng s in
  (match s.idle_timer with Some h -> Sim.Engine.cancel eng h | None -> ());
  s.idle_timer <-
    Some
      (Sim.Engine.after eng (2 * t.cfg.retrans_timeout) (fun () ->
           s.idle_timer <- None;
           if
             (not s.sq_dead)
             && (not (all_caught_up s))
             && s.catch_up_rounds < max_catch_up_rounds
           then begin
             s.catch_up_rounds <- s.catch_up_rounds + 1;
             seq_enqueue s It_catch_up;
             arm_idle_check t s
           end))

let trim_history t s =
  let min_delivered = Array.fold_left min max_int s.member_delivered in
  if min_delivered >= 0 then begin
    while s.hist_lo <= min_delivered do
      Hashtbl.remove s.history s.hist_lo;
      s.hist_lo <- s.hist_lo + 1
    done;
    if Hashtbl.length s.history < t.cfg.history_high then s.status_outstanding <- false
  end

let seq_resend t s ~seq ~to_member =
  match Hashtbl.find_opt s.history seq with
  | None -> ()
  | Some e ->
    t.n_retrans <- t.n_retrans + 1;
    System_layer.send ~hdr:(grp_hdr t) s.sq_sys ~dst:t.member_sys_addrs.(to_member)
      ~size:(data_size t e.e_size)
      (wrap t
         (Gord { g_seq = e.e_seq; g_sender = e.e_sender; g_local = e.e_local;
                 g_size = e.e_size; g_user = e.e_user }))

(* Re-multicast an already-ordered message whose announcement was lost on
   the wire for everyone at once (a duplicate ordering request proves it). *)
let re_announce t s e =
  t.n_retrans <- t.n_retrans + 1;
  if uses_bb t e.e_size then
    System_layer.mcast s.sq_sys ~group:t.gaddr ~size:t.cfg.accept_bytes
      (wrap t (Gacc { g_seq = e.e_seq; g_sender = e.e_sender; g_local = e.e_local }))
  else
    System_layer.mcast ~hdr:(grp_hdr t) s.sq_sys ~group:t.gaddr
      ~size:(data_size t e.e_size)
      (wrap t
         (Gord { g_seq = e.e_seq; g_sender = e.e_sender; g_local = e.e_local;
                 g_size = e.e_size; g_user = e.e_user }))

let max_retrans_burst = 32

(* Token pass: after [rot_period] fresh orderings the holder hands the
   ordering role to the next member.  The holder keeps processing until
   the token is *delivered* (rot_holder flips at the receiver), so there
   is no ordering stall; a timer re-sends the token if it is lost. *)
let rec arm_token_retry t s r ~gen =
  ignore
    (Sim.Engine.after (s_eng s) t.cfg.retrans_timeout (fun () ->
         if r.rot_gen < gen && r.rot_dead < 0 then begin
           let next = (r.rot_holder + 1) mod t.n_members in
           t.n_retrans <- t.n_retrans + 1;
           System_layer.send_from_interrupt s.sq_sys
             ~dst:t.member_sys_addrs.(next) ~size:t.cfg.accept_bytes
             (wrap t (Gtok { tk_holder = next; tk_gen = gen }));
           arm_token_retry t s r ~gen
         end))

let maybe_rotate t s ~fresh =
  match t.c_rot with
  | None -> ()
  | Some r ->
    if t.n_members > 1 && r.rot_dead < 0 then begin
      r.rot_fresh <- r.rot_fresh + fresh;
      if r.rot_fresh >= r.rot_period then begin
        r.rot_fresh <- 0;
        let next = (r.rot_holder + 1) mod t.n_members in
        let gen = r.rot_gen + 1 in
        System_layer.send s.sq_sys ~dst:t.member_sys_addrs.(next)
          ~size:t.cfg.accept_bytes
          (wrap t (Gtok { tk_holder = next; tk_gen = gen }));
        arm_token_retry t s r ~gen
      end
    end

(* Recovery retry: re-ask for member histories until every member has
   reported and the standby promotes itself. *)
let arm_recover_retry t s fo =
  (match fo.fo_timer with
   | Some h -> Sim.Engine.cancel (s_eng s) h
   | None -> ());
  fo.fo_timer <-
    Some
      (Sim.Engine.after (s_eng s) t.cfg.retrans_timeout (fun () ->
           fo.fo_timer <- None;
           if fo.fo_epoch = 0 then seq_enqueue s It_recover))

let seq_fetch_syscall s =
  let sys_cfg = System_layer.config s.sq_sys in
  Thread.syscall ~layer:Obs.Layer.Panda_grp
    ~kernel_work:sys_cfg.System_layer.user_flip_extra
    ~charges:
      [ (Obs.Layer.Flip, Obs.Cause.Uk_crossing,
         sys_cfg.System_layer.user_flip_extra) ]
    ()

let order_fresh t s ~(o : order_req) =
  let e =
    { e_seq = s.next_seq; e_sender = o.o_sender; e_local = o.o_local;
      e_size = o.o_size; e_user = o.o_user }
  in
  s.next_seq <- s.next_seq + 1;
  Hashtbl.replace s.history e.e_seq e;
  Hashtbl.replace s.ordered_ids (o.o_sender, o.o_local) e.e_seq;
  t.n_ordered <- t.n_ordered + 1;
  e

let seq_handle_item t s item =
  Obs.Recorder.with_span (s_eng s) Obs.Layer.Panda_grp "sequence" @@ fun () ->
  (* First system call: fetch the message from the network into user
     space. *)
  seq_fetch_syscall s;
  match item with
  | It_order o -> (
      (* Fragment-level ordering: BB data is never copied up into the
         sequencer, only its ordering information. *)
      let copied = if o.o_bb then 0 else o.o_size in
      Thread.compute_parts ~layer:Obs.Layer.Panda_grp
        [ (Obs.Cause.Proto_proc, t.cfg.order_fixed);
          (Obs.Cause.Copy, copied * t.cfg.copy_byte) ];
      match Hashtbl.find_opt s.ordered_ids (o.o_sender, o.o_local) with
      | Some seq -> (
          match Hashtbl.find_opt s.history seq with
          | None -> ()
          | Some e -> re_announce t s e)
      | None ->
        let e = order_fresh t s ~o in
        (* Second system call (inside mcast): multicast the ordered
           message, or the small accept for BB data. *)
        if o.o_bb then
          System_layer.mcast s.sq_sys ~group:t.gaddr ~size:t.cfg.accept_bytes
            (wrap t (Gacc { g_seq = e.e_seq; g_sender = o.o_sender; g_local = o.o_local }))
        else
          System_layer.mcast ~hdr:(grp_hdr t) s.sq_sys ~group:t.gaddr
            ~size:(data_size t o.o_size)
            (wrap t
               (Gord { g_seq = e.e_seq; g_sender = o.o_sender; g_local = o.o_local;
                       g_size = o.o_size; g_user = o.o_user }));
        maybe_status t s;
        arm_idle_check t s;
        maybe_rotate t s ~fresh:1)
  | It_retrans { r_member; r_from } ->
    let upto = min (s.next_seq - 1) (r_from + max_retrans_burst - 1) in
    for seq = r_from to upto do
      seq_resend t s ~seq ~to_member:r_member
    done
  | It_status { st_member; st_delivered } ->
    s.member_delivered.(st_member) <- max s.member_delivered.(st_member) st_delivered;
    trim_history t s;
    if all_caught_up s then s.catch_up_rounds <- 0
  | It_catch_up ->
    Thread.compute ~layer:Obs.Layer.Panda_grp t.cfg.order_fixed;
    System_layer.mcast s.sq_sys ~group:t.gaddr ~size:t.cfg.accept_bytes
      (wrap t (Gstat_req { gsr_next = s.next_seq }))
  | It_recover -> (
      match t.c_fo with
      | None -> ()
      | Some fo ->
        if fo.fo_epoch = 0 then begin
          Thread.compute ~layer:Obs.Layer.Panda_grp t.cfg.order_fixed;
          System_layer.mcast s.sq_sys ~group:t.gaddr ~size:t.cfg.accept_bytes
            (wrap t (Ghist_req { hq_epoch = 1 }));
          arm_recover_retry t s fo
        end)
  | It_hist { h_member; h_delivered; h_entries } -> (
      match t.c_fo with
      | None -> ()
      | Some fo ->
        if fo.fo_epoch = 0 then begin
          let bytes =
            List.fold_left (fun a e -> a + 8 + e.e_size) 0 h_entries
          in
          Thread.compute_parts ~layer:Obs.Layer.Panda_grp
            [ (Obs.Cause.Proto_proc, t.cfg.order_fixed);
              (Obs.Cause.Copy, bytes * t.cfg.copy_byte) ];
          if not fo.fo_resp.(h_member) then begin
            fo.fo_resp.(h_member) <- true;
            s.member_delivered.(h_member) <-
              max s.member_delivered.(h_member) h_delivered;
            List.iter
              (fun e ->
                if not (Hashtbl.mem s.history e.e_seq) then begin
                  Hashtbl.replace s.history e.e_seq e;
                  Hashtbl.replace s.ordered_ids (e.e_sender, e.e_local) e.e_seq
                end)
              h_entries
          end;
          if Array.for_all (fun b -> b) fo.fo_resp then begin
            (* Everyone reported: adopt the rebuilt state and promote.
               [next_seq] restarts above the highest delivered sequence
               number anywhere; orderings the dead primary assigned but
               nobody received are reassigned when their senders
               retransmit. *)
            let maxd = Array.fold_left max (-1) s.member_delivered in
            if maxd + 1 > s.next_seq then s.next_seq <- maxd + 1;
            s.hist_lo <-
              Hashtbl.fold (fun k _ lo -> min k lo) s.history s.next_seq;
            fo.fo_epoch <- 1;
            (match fo.fo_timer with
             | Some h ->
               Sim.Engine.cancel (s_eng s) h;
               fo.fo_timer <- None
             | None -> ());
            s.catch_up_rounds <- 0;
            seq_enqueue s It_catch_up;
            arm_idle_check t s
          end
        end)

let seq_handle_batch t s (reqs : order_req list) =
  Obs.Recorder.with_span (s_eng s) Obs.Layer.Panda_grp "sequence" @@ fun () ->
  (* One fetch system call drains the whole batch from the network — the
     amortization batching exists to buy. *)
  seq_fetch_syscall s;
  let fresh = ref [] in
  List.iter
    (fun (o : order_req) ->
      Thread.compute_parts ~layer:Obs.Layer.Panda_grp
        [ (Obs.Cause.Proto_proc, t.cfg.order_fixed);
          (Obs.Cause.Copy, o.o_size * t.cfg.copy_byte) ];
      match Hashtbl.find_opt s.ordered_ids (o.o_sender, o.o_local) with
      | Some seq -> (
          match Hashtbl.find_opt s.history seq with
          | None -> ()
          | Some e -> re_announce t s e)
      | None -> fresh := order_fresh t s ~o :: !fresh)
    reqs;
  (match List.rev !fresh with
   | [] -> ()
   | entries ->
     (* One multicast announces the whole range; the history-trim
        watermark rides along as a piggybacked ack. *)
     let sz =
       List.fold_left (fun a e -> a + 8 + e.e_size) t.cfg.header_bytes entries
     in
     System_layer.mcast ~hdr:(grp_hdr t) s.sq_sys ~group:t.gaddr ~size:sz
       (wrap t (Gordb { gb_entries = entries; gb_lo = s.hist_lo }));
     maybe_status t s;
     arm_idle_check t s;
     maybe_rotate t s ~fresh:(List.length entries))

(* [me] is the member index whose machine runs this sequencer thread
   (-1 when the placement is fixed); only meaningful under rotation. *)
let rec seq_loop t s ~me =
  (if s.sq_dead then Thread.suspend (fun _ _ -> ())
   else
     match t.c_rot with
     | Some r when r.rot_dead = me -> Thread.suspend (fun _ _ -> ())
     | Some r when r.rot_holder <> me ->
       Thread.suspend (fun _ resume -> r.rot_waiters.(me) <- Some resume)
     | _ -> (
         match Queue.take_opt s.sq_q with
         | None -> Thread.suspend (fun _ resume -> s.sq_waiter <- Some resume)
         | Some (It_order ({ o_bb = false; _ } as o)) when t.c_batch > 1 ->
           let batch = ref [ o ] and nb = ref 1 in
           let continue = ref true in
           while !continue && !nb < t.c_batch do
             match Queue.peek_opt s.sq_q with
             | Some (It_order ({ o_bb = false; _ } as o2)) ->
               ignore (Queue.pop s.sq_q);
               batch := o2 :: !batch;
               incr nb
             | _ -> continue := false
           done;
           seq_handle_batch t s (List.rev !batch)
         | Some item -> seq_handle_item t s item));
  seq_loop t s ~me

(* Interrupt-context feed of a sequencer's queue (its point address). *)
let seq_input t s flip_frag =
  match System_layer.unwrap flip_frag with
  | None -> ()
  | Some pan -> (
      match unwrap_core t pan.Flip.Fragment.payload with
      | None -> ()
      | Some (Gpb { sender; local; size; user }) ->
        seq_enqueue s
          (It_order { o_bb = false; o_sender = sender; o_local = local;
                      o_size = size; o_user = user })
      | Some (Gret { g_member; g_from }) ->
        seq_enqueue s (It_retrans { r_member = g_member; r_from = g_from })
      | Some (Gstat_rsp { g_member; g_delivered }) ->
        seq_enqueue s (It_status { st_member = g_member; st_delivered = g_delivered })
      | Some (Ghist_rsp { hr_member; hr_delivered; hr_entries }) ->
        seq_enqueue s
          (It_hist { h_member = hr_member; h_delivered = hr_delivered;
                     h_entries = hr_entries })
      | Some _ -> ())

(* BB data tap: the sequencer orders large messages on sight of their first
   fragment (fragment-level ordering; no reassembly in the sequencer). *)
let seq_tap_bb t s pan =
  match unwrap_core t pan.Flip.Fragment.payload with
  | Some (Gbb { sender; local; size; user })
    when pan.Flip.Fragment.index = pan.Flip.Fragment.count - 1 ->
    seq_enqueue s
      (It_order { o_bb = true; o_sender = sender; o_local = local;
                  o_size = size; o_user = user })
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Member: ordered delivery (runs as upcalls in the member's daemon) *)

let send_retrans_req_from_daemon m =
  m.grp.n_retrans <- m.grp.n_retrans + 1;
  System_layer.send_from_daemon m.m_sys ~dst:(seq_dst m.grp)
    ~size:m.grp.cfg.accept_bytes
    (wrap m.grp (Gret { g_member = m.m_index; g_from = m.expected }))

let send_retrans_req_from_timer m =
  m.grp.n_retrans <- m.grp.n_retrans + 1;
  System_layer.send_from_interrupt m.m_sys ~dst:(seq_dst m.grp)
    ~size:m.grp.cfg.accept_bytes
    (wrap m.grp (Gret { g_member = m.m_index; g_from = m.expected }))

(* Failure detection: once the (crashed) sequencer has ignored repeated
   retransmissions, notify the successor so it starts recovery.  The
   [c_crashed] test models a perfect failure detector — declaring the
   primary dead while it lives would split the ordering domain, which the
   real protocol prevents with membership agreement this simulation
   doesn't need to re-derive. *)
let start_takeover t =
  match t.c_fo with
  | Some fo when fo.fo_epoch = 0 && not fo.fo_taking ->
    fo.fo_taking <- true;
    seq_enqueue fo.fo_s2 It_recover
  | _ -> ()

let maybe_report_dead m =
  let t = m.grp in
  match t.c_fo with
  | Some fo when fo.fo_epoch = 0 && t.c_crashed && not fo.fo_taking ->
    if m.m_index = fo.fo_successor then start_takeover t
    else
      System_layer.send_from_interrupt m.m_sys
        ~dst:t.member_sys_addrs.(fo.fo_successor) ~size:t.cfg.accept_bytes
        (wrap t (Gdead { gd_from = m.m_index }))
  | _ -> ()

(* Rotation's crash recovery is a token reclaim: there is no history to
   rebuild (the token carries the state), the members just agree the
   next-alive member now holds it.  Triggered from sender retransmission
   timers, idempotent. *)
let rot_reclaim t =
  match t.c_rot, t.seqst with
  | Some r, Some s when r.rot_dead >= 0 && r.rot_holder = r.rot_dead ->
    let next = (r.rot_dead + 1) mod t.n_members in
    r.rot_gen <- r.rot_gen + 2;  (* outrank any token still in flight *)
    r.rot_holder <- next;
    r.rot_fresh <- 0;
    s.sq_sys <- t.member_sys.(next);
    (match r.rot_waiters.(next) with
     | Some w ->
       r.rot_waiters.(next) <- None;
       w ()
     | None -> ())
  | _ -> ()

let rec arm_gap_timer m =
  if m.gap_timer = None && Hashtbl.length m.stash > 0 then
    m.gap_timer <-
      Some
        (Sim.Engine.after (m_eng m) m.grp.cfg.retrans_timeout (fun () ->
             m.gap_timer <- None;
             if Hashtbl.length m.stash > 0 then begin
               if m.grp.c_crashed then begin
                 maybe_report_dead m;
                 rot_reclaim m.grp
               end;
               send_retrans_req_from_timer m;
               arm_gap_timer m
             end))

let record_hist m e =
  match m.grp.c_fo with
  | None -> ()
  | Some _ ->
    Hashtbl.replace m.m_hist e.e_seq e;
    let lo_min = e.e_seq - m.grp.cfg.history_high in
    while m.m_hist_lo <= lo_min do
      Hashtbl.remove m.m_hist m.m_hist_lo;
      m.m_hist_lo <- m.m_hist_lo + 1
    done

(* Piggybacked trim watermark from batched announcements: entries below it
   are stable everywhere and the successor will never need them. *)
let trim_hist_below m lo =
  if m.grp.c_fo <> None then
    while m.m_hist_lo < lo do
      Hashtbl.remove m.m_hist m.m_hist_lo;
      m.m_hist_lo <- m.m_hist_lo + 1
    done

let deliver m e =
  Obs.Recorder.with_span (m_eng m) Obs.Layer.Panda_grp "deliver" @@ fun () ->
  (* Ordering/delivery bookkeeping runs in the daemon thread. *)
  if Thread.self_opt () <> None then
    Thread.compute ~layer:Obs.Layer.Panda_grp m.grp.cfg.deliver_cost;
  record_hist m e;
  (match m.handler with
   | Some f -> f ~sender:e.e_sender ~size:e.e_size e.e_user
   | None -> ());
  if e.e_sender = m.m_index then
    match Hashtbl.find_opt m.sends e.e_local with
    | Some sw ->
      Hashtbl.remove m.sends e.e_local;
      sw.sw_done <- true;
      (match sw.sw_timer with Some h -> Sim.Engine.cancel (m_eng m) h | None -> ());
      (match sw.sw_resume with
       | Some resume ->
         sw.sw_resume <- None;
         System_layer.wake_blocked ?thread:sw.sw_thread m.m_sys resume
       | None -> ())
    | None -> ()

let rec drain m =
  match Hashtbl.find_opt m.stash m.expected with
  | Some (Full e) ->
    Hashtbl.remove m.stash m.expected;
    m.expected <- m.expected + 1;
    deliver m e;
    drain m
  | Some (Awaiting _) | None -> ()

let handle_ordered m e =
  if e.e_seq >= m.expected then begin
    (match Hashtbl.find_opt m.stash e.e_seq with
     | Some (Full _) -> ()
     | Some (Awaiting _) | None -> Hashtbl.replace m.stash e.e_seq (Full e));
    Hashtbl.remove m.awaiting (e.e_sender, e.e_local);
    let had_gap = e.e_seq > m.expected in
    drain m;
    if had_gap && Hashtbl.length m.stash > 0 then begin
      send_retrans_req_from_daemon m;
      arm_gap_timer m
    end
  end

let handle_accept m ~g_seq ~g_sender ~g_local =
  if g_seq >= m.expected then
    match Hashtbl.find_opt m.holding (g_sender, g_local) with
    | Some (size, user) ->
      Hashtbl.remove m.holding (g_sender, g_local);
      handle_ordered m
        { e_seq = g_seq; e_sender = g_sender; e_local = g_local; e_size = size; e_user = user }
    | None -> (
        match Hashtbl.find_opt m.stash g_seq with
        | Some (Full _) -> ()
        | Some (Awaiting _) | None ->
          Hashtbl.replace m.stash g_seq (Awaiting (g_sender, g_local));
          Hashtbl.replace m.awaiting (g_sender, g_local) g_seq;
          send_retrans_req_from_daemon m;
          arm_gap_timer m)

(* Under rotation every member can receive sequencer traffic: the holder
   enqueues it, anyone else forwards it to the current holder (a stale
   FLIP location cache in the sender). *)
let rot_seq_traffic m inner =
  match m.grp.c_rot, m.grp.seqst with
  | Some r, Some s ->
    if r.rot_holder = m.m_index then begin
      (match inner with
       | Gpb { sender; local; size; user } ->
         seq_enqueue s
           (It_order { o_bb = false; o_sender = sender; o_local = local;
                       o_size = size; o_user = user })
       | Gret { g_member; g_from } ->
         seq_enqueue s (It_retrans { r_member = g_member; r_from = g_from })
       | Gstat_rsp { g_member; g_delivered } ->
         seq_enqueue s (It_status { st_member = g_member; st_delivered = g_delivered })
       | _ -> ());
      true
    end
    else begin
      m.grp.n_retrans <- m.grp.n_retrans + 1;
      System_layer.send_from_daemon m.m_sys
        ~dst:m.grp.member_sys_addrs.(r.rot_holder)
        ~size:m.grp.cfg.accept_bytes (wrap m.grp inner);
      true
    end
  | _ -> true (* fixed sequencer: its point address got it; not for members *)

let accept_token m ~tk_holder ~tk_gen =
  match m.grp.c_rot, m.grp.seqst with
  | Some r, Some s when tk_gen > r.rot_gen && tk_holder = m.m_index ->
    r.rot_gen <- tk_gen;
    r.rot_holder <- m.m_index;
    r.rot_fresh <- 0;
    s.sq_sys <- m.m_sys;
    (* The displaced holder may be parked waiting for queue input; wake it
       so it re-checks holdership and yields the waiter slot. *)
    (match s.sq_waiter with
     | Some w ->
       s.sq_waiter <- None;
       w ()
     | None -> ());
    (match r.rot_waiters.(m.m_index) with
     | Some w ->
       r.rot_waiters.(m.m_index) <- None;
       w ()
     | None -> ())
  | _ -> ()

let hist_entries m =
  let entries = ref [] in
  for seq = m.expected - 1 downto m.m_hist_lo do
    match Hashtbl.find_opt m.m_hist seq with
    | Some e -> entries := e :: !entries
    | None -> ()
  done;
  !entries

let on_member_msg m payload =
  match unwrap_core m.grp payload with
  | None -> false
  | Some inner -> (
      match inner with
      | Gord { g_seq; g_sender; g_local; g_size; g_user } ->
        handle_ordered m
          { e_seq = g_seq; e_sender = g_sender; e_local = g_local; e_size = g_size;
            e_user = g_user };
        true
      | Gordb { gb_entries; gb_lo } ->
        List.iter (fun e -> handle_ordered m e) gb_entries;
        trim_hist_below m gb_lo;
        true
      | Gacc { g_seq; g_sender; g_local } ->
        handle_accept m ~g_seq ~g_sender ~g_local;
        true
      | Gbb { sender; local; size; user } ->
        (match Hashtbl.find_opt m.awaiting (sender, local) with
         | Some seq ->
           Hashtbl.remove m.awaiting (sender, local);
           handle_ordered m
             { e_seq = seq; e_sender = sender; e_local = local; e_size = size; e_user = user }
         | None ->
           if not (Hashtbl.mem m.holding (sender, local)) then
             Hashtbl.replace m.holding (sender, local) (size, user));
        true
      | Gstat_req { gsr_next } ->
        if m.expected < gsr_next then send_retrans_req_from_daemon m;
        System_layer.send_from_daemon m.m_sys ~dst:(seq_dst m.grp)
          ~size:m.grp.cfg.accept_bytes
          (wrap m.grp (Gstat_rsp { g_member = m.m_index; g_delivered = m.expected - 1 }));
        true
      | Gtok { tk_holder; tk_gen } ->
        accept_token m ~tk_holder ~tk_gen;
        true
      | Gdead _ ->
        (match m.grp.c_fo with
         | Some fo when m.m_index = fo.fo_successor && m.grp.c_crashed ->
           start_takeover m.grp
         | _ -> ());
        true
      | Ghist_req _ ->
        (match m.grp.c_fo with
         | None -> ()
         | Some fo ->
           let entries = hist_entries m in
           let sz =
             List.fold_left (fun a e -> a + 8 + e.e_size)
               m.grp.cfg.header_bytes entries
           in
           System_layer.send_from_daemon m.m_sys ~dst:fo.fo_saddr2 ~size:sz
             (wrap m.grp
                (Ghist_rsp { hr_member = m.m_index; hr_delivered = m.expected - 1;
                             hr_entries = entries })));
        true
      | Gpb _ | Gret _ | Gstat_rsp _ -> rot_seq_traffic m inner
      | Ghist_rsp _ -> true (* standby sequencer traffic; not for members *)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Member API *)

let send_impl ~blocking m ~size payload =
  Obs.Recorder.with_span (m_eng m) Obs.Layer.Panda_grp "send" @@ fun () ->
  let t = m.grp in
  m.next_local <- m.next_local + 1;
  let bb = uses_bb t size in
  let sw =
    {
      sw_local = m.next_local;
      sw_size = size;
      sw_user = payload;
      sw_bb = bb;
      sw_done = false;
      sw_failed = false;
      sw_resume = None;
      sw_thread = None;
      sw_timer = None;
      sw_tries = 0;
    }
  in
  Hashtbl.replace m.sends sw.sw_local sw;
  let msg_size = data_size t size in
  let tag = System_layer.alloc_tag m.m_sys in
  (* Ordering requests go to the current sequencer: the primary's point
     address, the standby's after failover, or the token holder's machine
     under rotation — re-read at every (re)transmission. *)
  let pb_dst () =
    match t.c_rot with
    | Some r -> t.member_sys_addrs.(r.rot_holder)
    | None -> seq_dst t
  in
  let first_transmit () =
    if bb then
      System_layer.mcast ~tag ~hdr:(grp_hdr t) m.m_sys ~group:t.gaddr ~size:msg_size
        (wrap t (Gbb { sender = m.m_index; local = sw.sw_local; size; user = payload }))
    else
      System_layer.send ~tag ~hdr:(grp_hdr t) m.m_sys ~dst:(pb_dst ()) ~size:msg_size
        (wrap t (Gpb { sender = m.m_index; local = sw.sw_local; size; user = payload }))
  in
  let retransmit () =
    if bb then
      System_layer.mcast_from_interrupt ~tag ~hdr:(grp_hdr t) m.m_sys
        ~group:t.gaddr ~size:msg_size
        (wrap t (Gbb { sender = m.m_index; local = sw.sw_local; size; user = payload }))
    else
      System_layer.send_from_interrupt ~tag ~hdr:(grp_hdr t) m.m_sys
        ~dst:(pb_dst ()) ~size:msg_size
        (wrap t (Gpb { sender = m.m_index; local = sw.sw_local; size; user = payload }))
  in
  let rec arm () =
    sw.sw_timer <-
      Some
        (Sim.Engine.after (m_eng m) t.cfg.retrans_timeout (fun () ->
             if not sw.sw_done then
               if sw.sw_tries >= t.cfg.max_retries then begin
                 sw.sw_failed <- true;
                 Hashtbl.remove m.sends sw.sw_local;
                 match sw.sw_resume with
                 | Some resume ->
                   sw.sw_resume <- None;
                   resume ()
                 | None -> ()
               end
               else begin
                 sw.sw_tries <- sw.sw_tries + 1;
                 t.n_retrans <- t.n_retrans + 1;
                 if sw.sw_tries >= 2 && t.c_crashed then begin
                   maybe_report_dead m;
                   rot_reclaim t
                 end;
                 retransmit ();
                 arm ()
               end))
  in
  (* The sender already has its own BB data: store it for the accept
     directly instead of processing the looped-back multicast. *)
  if bb then Hashtbl.replace m.holding (m.m_index, sw.sw_local) (size, payload);
  (* Arm before transmitting: the send path's system calls suspend the
     caller, and on a sequencer-local send the whole ordering round trip
     can complete during those suspensions. *)
  arm ();
  first_transmit ();
  if blocking then begin
    if not sw.sw_done then
      Thread.suspend (fun th resume ->
          sw.sw_thread <- Some th;
          sw.sw_resume <- Some resume);
    if sw.sw_failed then raise (Group_failure "broadcast not ordered after retries")
  end

let core_member m key =
  let nc = Array.length m.pm_ms in
  if nc = 1 then m.pm_ms.(0)
  else m.pm_ms.(Seq_policy.shard_of_key ~shards:nc key)

let send ?(key = 0) m ~size payload =
  send_impl ~blocking:true (core_member m key) ~size payload

let send_nonblocking ?(key = 0) m ~size payload =
  send_impl ~blocking:false (core_member m key) ~size payload

(* ------------------------------------------------------------------ *)
(* Construction *)

let mk_sequencer sys n =
  {
    sq_sys = sys;
    sq_q = Queue.create ();
    sq_waiter = None;
    sq_dead = false;
    next_seq = 0;
    history = Hashtbl.create 1024;
    hist_lo = 0;
    ordered_ids = Hashtbl.create 1024;
    member_delivered = Array.make n (-1);
    status_outstanding = false;
    idle_timer = None;
    catch_up_rounds = 0;
  }

let create_core ~config ~name ~tag ~batch ~rot_period ~failover ~sequencer
    sys_layers =
  let n = Array.length sys_layers in
  assert (n > 0);
  let eng = Machine.Mach.engine (System_layer.machine sys_layers.(0)) in
  let seq_member =
    match sequencer with On_member i -> i | Dedicated _ -> -1
  in
  let rot =
    match rot_period with
    | None -> None
    | Some p ->
      Some
        {
          rot_period = max 1 p;
          rot_holder = (if seq_member >= 0 then seq_member else 0);
          rot_gen = 0;
          rot_fresh = 0;
          rot_waiters = Array.make n None;
          rot_dead = -1;
        }
  in
  let t =
    {
      cfg = config;
      gname = name;
      c_tag = tag;
      gaddr = Flip.Address.fresh_group eng;
      saddr = Flip.Address.fresh_point eng;
      n_members = n;
      member_sys_addrs = [||];
      member_sys = sys_layers;
      seqst = None;
      n_ordered = 0;
      n_retrans = 0;
      c_batch = max 1 batch;
      c_rot = rot;
      c_fo = None;
      c_crashed = false;
    }
  in
  let members =
    Array.mapi
      (fun i sys ->
        (* Gpb must fit one Panda fragment: the sequencer never
           reassembles. *)
        assert (config.bb_threshold + config.header_bytes
                <= System_layer.frag_payload sys);
        {
          grp = t;
          m_sys = sys;
          m_index = i;
          expected = 0;
          stash = Hashtbl.create 32;
          awaiting = Hashtbl.create 8;
          holding = Hashtbl.create 8;
          sends = Hashtbl.create 4;
          next_local = 0;
          gap_timer = None;
          handler = None;
          m_hist = Hashtbl.create 64;
          m_hist_lo = 0;
        })
      sys_layers
  in
  t.member_sys_addrs <- Array.map (fun m -> System_layer.address m.m_sys) members;
  let seq_sys =
    match sequencer with
    | On_member i -> sys_layers.(i)
    | Dedicated sys -> sys
  in
  let s = mk_sequencer seq_sys n in
  t.seqst <- Some s;
  (* Failover wiring (never on the default/Single path: no extra
     addresses, threads or registrations there). *)
  let fo =
    if not failover then None
    else begin
      let successor = if seq_member >= 0 then (seq_member + 1) mod n else 0 in
      let s2 = mk_sequencer sys_layers.(successor) n in
      Some
        {
          fo_successor = successor;
          fo_saddr2 = Flip.Address.fresh_point eng;
          fo_s2 = s2;
          fo_epoch = 0;
          fo_taking = false;
          fo_resp = Array.make n false;
          fo_timer = None;
        }
    end
  in
  t.c_fo <- fo;
  let seq_flip = System_layer.flip seq_sys in
  let seq_mach = System_layer.machine seq_sys in
  Flip.Flip_iface.register seq_flip t.saddr (fun frag -> seq_input t s frag);
  (match rot with
   | None ->
     ignore
       (Thread.spawn seq_mach ~prio:Thread.Daemon (name ^ ".sequencer") (fun () ->
            seq_loop t s ~me:(-1)))
   | Some r ->
     (* One sequencer thread per member machine; only the token holder's
        processes the shared queue. *)
     ignore r;
     Array.iteri
       (fun i sys ->
         ignore
           (Thread.spawn (System_layer.machine sys) ~prio:Thread.Daemon
              (Printf.sprintf "%s.sequencer%d" name i)
              (fun () -> seq_loop t s ~me:i)))
       sys_layers);
  (match fo with
   | None -> ()
   | Some fo ->
     Flip.Flip_iface.register
       (System_layer.flip sys_layers.(fo.fo_successor))
       fo.fo_saddr2
       (fun frag -> seq_input t fo.fo_s2 frag);
     ignore
       (Thread.spawn
          (System_layer.machine sys_layers.(fo.fo_successor))
          ~prio:Thread.Daemon (name ^ ".standby")
          (fun () -> seq_loop t fo.fo_s2 ~me:(-1))));
  (* Group-address registration, per machine: members inject the traffic
     into their daemon; the sequencer's machine additionally taps BB data
     fragments (the standby's machine takes over the tap after failover). *)
  let seq_machine_id = Mach.id seq_mach in
  Array.iter
    (fun m ->
      let mach_id = Mach.id (System_layer.machine m.m_sys) in
      let tap = if mach_id = seq_machine_id then Some s else None in
      let standby_tap =
        match fo with
        | Some f when f.fo_successor = m.m_index -> Some f
        | _ -> None
      in
      let own_addr = System_layer.address m.m_sys in
      Flip.Flip_iface.register (System_layer.flip m.m_sys) t.gaddr (fun flip_frag ->
          match System_layer.unwrap flip_frag with
          | None -> ()
          | Some pan ->
            (match tap with
             | Some s when not s.sq_dead -> seq_tap_bb t s pan
             | _ -> ());
            (match standby_tap with
             | Some f when f.fo_epoch > 0 -> seq_tap_bb t f.fo_s2 pan
             | _ -> ());
            let own_bb =
              Flip.Address.equal pan.Flip.Fragment.src own_addr
              &&
              match unwrap_core t pan.Flip.Fragment.payload with
              | Some (Gbb _) -> true
              | _ -> false
            in
            if not own_bb then System_layer.inject m.m_sys pan))
    members;
  (match sequencer with
   | Dedicated sys ->
     (* No member lives there: only the BB tap listens on the group
        address. *)
     Flip.Flip_iface.register (System_layer.flip sys) t.gaddr (fun flip_frag ->
         match System_layer.unwrap flip_frag with
         | None -> ()
         | Some pan -> if not s.sq_dead then seq_tap_bb t s pan)
   | On_member _ -> ());
  Array.iter
    (fun m ->
      System_layer.add_handler m.m_sys (fun ~src ~size payload ->
          ignore src;
          ignore size;
          on_member_msg m payload))
    members;
  (t, members)

let create_static ?(config = default_config) ?(policy = Seq_policy.Single)
    ~name ~sequencer sys_layers =
  let n = Array.length sys_layers in
  assert (n > 0);
  let cores_members =
    match policy with
    | Seq_policy.Single ->
      [| create_core ~config ~name ~tag:(-1) ~batch:1 ~rot_period:None
           ~failover:false ~sequencer sys_layers |]
    | Seq_policy.Batching b ->
      [| create_core ~config ~name ~tag:(-1) ~batch:b ~rot_period:None
           ~failover:true ~sequencer sys_layers |]
    | Seq_policy.Rotating p ->
      [| create_core ~config ~name ~tag:(-1) ~batch:1 ~rot_period:(Some p)
           ~failover:false ~sequencer sys_layers |]
    | Seq_policy.Failover ->
      [| create_core ~config ~name ~tag:(-1) ~batch:1 ~rot_period:None
           ~failover:true ~sequencer sys_layers |]
    | Seq_policy.Sharded sh ->
      let sh = max 1 sh in
      Array.init sh (fun k ->
          let seq_k =
            match sequencer with
            | On_member i -> On_member ((i + k) mod n)
            | Dedicated sys -> if k = 0 then Dedicated sys else On_member ((k - 1) mod n)
          in
          create_core ~config
            ~name:(Printf.sprintf "%s.sh%d" name k)
            ~tag:k ~batch:1 ~rot_period:None ~failover:true ~sequencer:seq_k
            sys_layers)
  in
  let t = { p_policy = policy; p_cores = Array.map fst cores_members } in
  let members =
    Array.init n (fun i ->
        { pm_grp = t; pm_index = i;
          pm_ms = Array.map (fun (_, ms) -> ms.(i)) cores_members })
  in
  (t, members)

(* ------------------------------------------------------------------ *)
(* Crash injection and accessors *)

let crash_core c =
  if not c.c_crashed then begin
    c.c_crashed <- true;
    match c.c_rot with
    | Some r -> if r.rot_dead < 0 then r.rot_dead <- r.rot_holder
    | None -> (
        match c.seqst with
        | None -> ()
        | Some s ->
          s.sq_dead <- true;
          (match s.idle_timer with
           | Some h ->
             Sim.Engine.cancel (s_eng s) h;
             s.idle_timer <- None
           | None -> ()))
  end

let crash_sequencer t =
  if t.p_policy = Seq_policy.Single then
    invalid_arg "Group.crash_sequencer: the single policy has no failover";
  crash_core t.p_cores.(0)

let sum f t = Array.fold_left (fun a c -> a + f c) 0 t.p_cores
let policy t = t.p_policy
let shard_count t = Array.length t.p_cores
let config t = t.p_cores.(0).cfg
let member_index m = m.pm_index
let member_count t = t.p_cores.(0).n_members
let messages_ordered t = sum (fun c -> c.n_ordered) t
let retransmissions t = sum (fun c -> c.n_retrans) t

let delivered_seq m =
  Array.fold_left (fun a cm -> a + cm.expected) 0 m.pm_ms - 1

let delivered_in_shard m ~shard = m.pm_ms.(shard).expected - 1
let set_handler m f = Array.iter (fun cm -> cm.handler <- Some f) m.pm_ms

let history_length t =
  sum
    (fun c ->
      match active_seq c with
      | Some s -> Hashtbl.length s.history
      | None -> 0)
    t

let sequencer_epoch t =
  Array.fold_left
    (fun a c -> max a (match c.c_fo with Some fo -> fo.fo_epoch | None -> 0))
    0 t.p_cores
