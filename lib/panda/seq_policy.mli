(** Sequencer capacity policies for the totally-ordered group protocols.

    PR 5's load program showed the user-space sequencer is the system's
    hardest scaling wall: one machine orders every broadcast and pins at
    100% CPU around 725 msg/s.  Each policy attacks that wall along a
    different axis:

    - {!Single}: the paper's baseline — one fixed sequencer thread.
    - {!Batching}[ n]: the sequencer drains up to [n] queued ordering
      requests per wakeup, assigns them a consecutive sequence-number
      range and multicasts one combined ordered message (which also
      piggybacks the history-trim watermark), amortizing the per-message
      system calls that dominate its CPU.
    - {!Rotating}[ n]: the ordering role migrates around the members on a
      token after every [n] orderings, spreading sequencer CPU across
      machines (capacity stays single-sequencer-bound, heat does not).
    - {!Sharded}[ n]: [n] independent sequencers, one per object group,
      keyed by a consistent hash of the caller's [key]; global total order
      is traded for gap-free total order {e per shard} — all the Orca RTS
      needs for per-object operation ordering.
    - {!Failover}: the baseline sequencer made crash-tolerant — members
      keep bounded history buffers, and a designated successor rebuilds
      the ordering state from them when the sequencer dies mid-run.

    Every policy except {!Single} is crash-recoverable; {!Failover} names
    the configuration that is the baseline {e plus} recovery alone. *)

type t =
  | Single
  | Batching of int  (** max ordering requests coalesced per wakeup *)
  | Rotating of int  (** orderings per token hold *)
  | Sharded of int  (** independent sequencer shards *)
  | Failover

val default_batch : int
val default_rotate : int
val default_shards : int

val to_string : t -> string
(** Round-trips with {!of_string}: ["single"], ["batch:16"],
    ["rotate:64"], ["shard:4"], ["failover"]. *)

val label : t -> string
(** Parameter-free name for table rows and JSON keys. *)

val of_string : string -> (t, string) result
(** Parses ["single"], ["batch[:N]"], ["rotate[:N]"], ["shard[:N]"],
    ["failover"]. *)

val parse_list : string -> (t list, string) result
(** Comma-separated {!of_string}; the item ["all"] expands to {!sweep}. *)

val shards : t -> int
(** Shard count: [n] for [Sharded n], 1 otherwise. *)

val shard_of_key : shards:int -> int -> int
(** The consistent key-to-shard hash shared by the group protocol, the
    load generator's per-shard accounting and the conformance checker. *)

val sweep : t list
(** One representative of each policy at its default parameter — the
    capacity-curve sweep. *)
