(* Sequencer capacity policies.  The user-space sequencer is the group
   protocol's hardest scaling wall (one machine pinned at 100% CPU orders
   every broadcast); each policy attacks the wall differently and the
   load experiments measure what each one buys. *)

type t =
  | Single
  | Batching of int
  | Rotating of int
  | Sharded of int
  | Failover

let default_batch = 16
let default_rotate = 64
let default_shards = 4

let to_string = function
  | Single -> "single"
  | Batching n -> Printf.sprintf "batch:%d" n
  | Rotating n -> Printf.sprintf "rotate:%d" n
  | Sharded n -> Printf.sprintf "shard:%d" n
  | Failover -> "failover"

let label = function
  | Single -> "single"
  | Batching _ -> "batch"
  | Rotating _ -> "rotate"
  | Sharded _ -> "shard"
  | Failover -> "failover"

let of_string s =
  let s = String.trim s in
  let name, arg =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let pos_int key v k =
    match int_of_string_opt v with
    | Some n when n > 0 -> Ok (k n)
    | _ -> Error (Printf.sprintf "%s: expected a positive integer, got %S" key v)
  in
  match (name, arg) with
  | "single", None -> Ok Single
  | "batch", None -> Ok (Batching default_batch)
  | "batch", Some v -> pos_int "batch" v (fun n -> Batching n)
  | "rotate", None -> Ok (Rotating default_rotate)
  | "rotate", Some v -> pos_int "rotate" v (fun n -> Rotating n)
  | "shard", None -> Ok (Sharded default_shards)
  | "shard", Some v -> pos_int "shard" v (fun n -> Sharded n)
  | "failover", None -> Ok Failover
  | _ ->
    Error
      (Printf.sprintf
         "unknown sequencer policy %S (expected single, batch[:N], rotate[:N], \
          shard[:N] or failover)"
         s)

let sweep =
  [
    Single;
    Batching default_batch;
    Rotating default_rotate;
    Sharded default_shards;
    Failover;
  ]

let parse_list s =
  let items = String.split_on_char ',' s in
  List.fold_left
    (fun acc it ->
      Result.bind acc (fun ps ->
          let it = String.trim it in
          if it = "" then Ok ps
          else if it = "all" then Ok (List.rev_append sweep ps)
          else Result.map (fun p -> p :: ps) (of_string it)))
    (Ok []) items
  |> Result.map List.rev

let shards = function Sharded n -> max 1 n | _ -> 1

(* Fibonacci-hash the key onto a shard: deterministic across runs and
   well-spread even for the sequential keys load generators produce. *)
let shard_of_key ~shards key =
  if shards <= 1 then 0
  else (key * 2654435761) land max_int mod shards
