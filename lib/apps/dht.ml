type params = {
  dh_keys : int;
  dh_value_words : int;
  dh_read_pct : int;
  dh_zipf : float;
  dh_store_fixed : Sim.Time.span;
  dh_store_word : Sim.Time.span;
}

let default_params =
  {
    dh_keys = 1024;
    dh_value_words = 64;
    dh_read_pct = 90;
    dh_zipf = 0.99;
    dh_store_fixed = Sim.Time.us 5;
    dh_store_word = Sim.Time.ns 10;
  }

type Sim.Payload.t +=
  | Dht_get of int
  | Dht_put of int  (** key; the new block is derived server-side *)
  | Dht_block of int array
  | Dht_ack

type kind =
  | Over_rpc of Orca.Backend.t array
  | Over_onesided of {
      rnics : Onesided.Rnic.t array;
      dst : Flip.Address.t;
      rkey : int;
    }

type t = {
  p : params;
  kind : kind;
  server : int;
  store : int array;  (** the table words; the Region's own array when one-sided *)
  zipf_cdf : float array;
  mutable n_gets : int;
  mutable n_puts : int;
  mutable n_viol : int;
}

(* Slot layout: [version; w0..w(n-1); tag]. *)
let slot_words p = p.dh_value_words + 2
let idx_off p key = key * slot_words p
let block_off p key = idx_off p key + 1
let block_words p = p.dh_value_words + 1

(* The deterministic content of (key, version): verifiable by any reader
   from the block alone, since the tag word carries the version. *)
let mix key version = (key * 1_000_003) lxor (version * 7_919)
let pattern_word key version j = mix key version + j

let fill_block p ~key ~version (a : int array) ~off =
  for j = 0 to p.dh_value_words - 1 do
    a.(off + j) <- pattern_word key version j
  done;
  a.(off + p.dh_value_words) <- version

let make_block p ~key ~version =
  let b = Array.make (block_words p) 0 in
  fill_block p ~key ~version b ~off:0;
  b

(* A block read anywhere must match its own tag's pattern — stale is
   legal, torn or spliced is not. *)
let check_block t ~key (b : int array) ~off =
  let version = b.(off + t.p.dh_value_words) in
  let ok = ref true in
  for j = 0 to t.p.dh_value_words - 1 do
    if b.(off + j) <> pattern_word key version j then ok := false
  done;
  if not !ok then t.n_viol <- t.n_viol + 1

(* The shared Zipf key source; one RNG float per draw, so every pinned
   result is untouched by the extraction into [Load.Keys]. *)
let zipf_cdf = Workload.zipf_cdf
let draw_key t rng = Workload.zipf_draw t.zipf_cdf rng

let make_store p =
  let store = Array.make (p.dh_keys * slot_words p) 0 in
  for key = 0 to p.dh_keys - 1 do
    store.(idx_off p key) <- 0;
    fill_block p ~key ~version:0 store ~off:(block_off p key)
  done;
  store

(* Request framing bytes beyond the data words (key + opcode). *)
let req_meta = 16

let create_rpc ~params:p ~backends ~server () =
  let store = make_store p in
  let t =
    {
      p;
      kind = Over_rpc backends;
      server;
      store;
      zipf_cdf = zipf_cdf ~keys:p.dh_keys ~theta:p.dh_zipf;
      n_gets = 0;
      n_puts = 0;
      n_viol = 0;
    }
  in
  let store_cost words =
    p.dh_store_fixed + (words * p.dh_store_word)
  in
  backends.(server).Orca.Backend.set_rpc_handler
    (fun ~client:_ ~size:_ payload ~reply ->
      match payload with
      | Dht_get key ->
        Machine.Thread.compute ~layer:Obs.Layer.App
          ~cause:Obs.Cause.Proto_proc
          (store_cost (block_words p));
        let b = Array.sub store (block_off p key) (block_words p) in
        reply ~size:(8 * block_words p) (Dht_block b)
      | Dht_put key ->
        Machine.Thread.compute ~layer:Obs.Layer.App
          ~cause:Obs.Cause.Proto_proc
          (store_cost (block_words p + 1));
        let v = store.(idx_off p key) + 1 in
        store.(idx_off p key) <- v;
        fill_block p ~key ~version:v store ~off:(block_off p key);
        reply ~size:req_meta Dht_ack
      | _ -> reply ~size:0 Dht_ack);
  t

let region_key = 1

let create_onesided ~params:p ~rnics ~server () =
  let store = make_store p in
  let region =
    { Onesided.Region.key = region_key; name = "dht"; data = store }
  in
  Onesided.Rnic.register_region rnics.(server) region;
  {
    p;
    kind =
      Over_onesided
        { rnics; dst = Onesided.Rnic.addr rnics.(server); rkey = region_key };
    server;
    store;
    zipf_cdf = zipf_cdf ~keys:p.dh_keys ~theta:p.dh_zipf;
    n_gets = 0;
    n_puts = 0;
    n_viol = 0;
  }

let rpc_get t backends ~rank ~key =
  let _, rsp =
    backends.(rank).Orca.Backend.rpc ~dst:t.server ~size:req_meta (Dht_get key)
  in
  match rsp with
  | Dht_block b -> check_block t ~key b ~off:0
  | _ -> t.n_viol <- t.n_viol + 1

let rpc_put t backends ~rank ~key =
  let _, rsp =
    backends.(rank).Orca.Backend.rpc ~dst:t.server
      ~size:(req_meta + (8 * block_words t.p))
      (Dht_put key)
  in
  match rsp with Dht_ack -> () | _ -> t.n_viol <- t.n_viol + 1

let os_get t r ~dst ~rkey ~key =
  (* Index read then block read: the Brock traversal — every pointer hop
     is a wire round trip, but no server thread anywhere. *)
  let _v = (Onesided.Rnic.read r ~dst ~rkey ~off:(idx_off t.p key) ~words:1).(0) in
  let b =
    Onesided.Rnic.read r ~dst ~rkey ~off:(block_off t.p key)
      ~words:(block_words t.p)
  in
  check_block t ~key b ~off:0

let os_put t r ~dst ~rkey ~key =
  (* Claim the next version with cas, then publish the whole block in one
     atomic write.  A lost cas observes the winner's version and retries
     from there. *)
  let rec claim expected =
    let old =
      Onesided.Rnic.cas r ~dst ~rkey ~off:(idx_off t.p key) ~expected
        ~desired:(expected + 1)
    in
    if old = expected then expected + 1 else claim old
  in
  let v0 = (Onesided.Rnic.read r ~dst ~rkey ~off:(idx_off t.p key) ~words:1).(0) in
  let v = claim v0 in
  Onesided.Rnic.write r ~dst ~rkey ~off:(block_off t.p key)
    (make_block t.p ~key ~version:v)

let client_op t ~rank rng =
  let is_get = Sim.Rng.int rng 100 < t.p.dh_read_pct in
  let key = draw_key t rng in
  if is_get then t.n_gets <- t.n_gets + 1 else t.n_puts <- t.n_puts + 1;
  match t.kind with
  | Over_rpc backends ->
    if is_get then rpc_get t backends ~rank ~key
    else rpc_put t backends ~rank ~key
  | Over_onesided { rnics; dst; rkey } ->
    let r = rnics.(rank) in
    if is_get then os_get t r ~dst ~rkey ~key else os_put t r ~dst ~rkey ~key

let ops t = t.n_gets + t.n_puts
let gets t = t.n_gets
let puts t = t.n_puts
let violations t = t.n_viol

let check_at_rest t =
  let bad = ref 0 in
  for key = 0 to t.p.dh_keys - 1 do
    let v = t.store.(idx_off t.p key) in
    let tag = t.store.(block_off t.p key + t.p.dh_value_words) in
    let ok = ref (v = tag) in
    for j = 0 to t.p.dh_value_words - 1 do
      if t.store.(block_off t.p key + j) <> pattern_word key tag j then
        ok := false
    done;
    if not !ok then incr bad
  done;
  !bad
