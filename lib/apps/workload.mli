(** Deterministic input generators and common helpers for the six Orca
    applications. *)

val dist_matrix : seed:int -> n:int -> lo:int -> hi:int -> int array array
(** Symmetric distance matrix with entries in [lo, hi), zero diagonal. *)

val binary_grid : seed:int -> h:int -> w:int -> density_pct:int -> bool array array
(** Random binary image: [density_pct]% of pixels set. *)

val diag_dominant : seed:int -> n:int -> float array array * float array
(** Diagonally dominant system (A, b) so Jacobi iteration converges. *)

val block_range : n:int -> parts:int -> rank:int -> int * int
(** [block_range ~n ~parts ~rank] is the half-open row range [lo, hi) of
    block [rank] when [n] items split into [parts] contiguous blocks. *)

val zipf_cdf : keys:int -> theta:float -> float array
(** Cumulative Zipf(θ) key-popularity distribution — see {!Load.Keys},
    which this re-exports so keyed apps ({!Dht}, the sharded service) and
    the load generators share one key source. *)

val zipf_draw : float array -> Sim.Rng.t -> int
(** One key draw from a {!zipf_cdf} (exactly one RNG float). *)

type Sim.Payload.t +=
  | Int_v of int
  | Int2 of int * int
  | Row of int * int array  (** row index, contents *)
  | Frow of int * float array
  | Cells of int array
  | Fcells of float array
  | Tagged of int * Sim.Payload.t  (** iteration tag around a payload *)
  | Slices of (int * float array) list  (** (rank, slice) pairs *)
