(** A distributed hash table driven over RPC or one-sided operations —
    the Brock et al. comparison workload.

    One server rank holds the table; clients run a Zipf-skewed get/put
    mix against it.  The same logical store layout backs both transports,
    so the comparison isolates the communication backend:

    - per key: an index word (the key's version), then a value block of
      [dh_value_words] pattern words plus a trailing tag word repeating
      the version.  Block word [j] of version [v] is a deterministic
      function of [(key, v, j)], so any reader can verify that a block is
      internally consistent with its own tag.
    - {b RPC}: one round trip per logical op; the server thread reads or
      bumps-and-rewrites the slot (store CPU charged to the server
      thread).
    - {b one-sided}: a get is a remote read of the index word then a read
      of the value block; a put reads the index, claims the next version
      with [cas], then writes the whole block — multiple wire round trips
      (the Brock traversal point), but zero server-thread CPU.

    Both writers write whole blocks atomically (one op, executed in one
    target interrupt), so a block can be {e stale} relative to the index
    word but never torn; [violations] counts blocks that fail their own
    tag's pattern, which a correct backend never produces. *)

type params = {
  dh_keys : int;
  dh_value_words : int;  (** words per value block (tag word excluded) *)
  dh_read_pct : int;  (** get share of the mix, 0..100 *)
  dh_zipf : float;  (** Zipf skew theta; 0. = uniform *)
  dh_store_fixed : Sim.Time.span;  (** RPC server store access, per op *)
  dh_store_word : Sim.Time.span;  (** RPC server store access, per word *)
}

val default_params : params
(** 1024 keys, 64-word (512 B) values, 90% reads, theta 0.99. *)

type t

val create_rpc :
  params:params -> backends:Orca.Backend.t array -> server:int -> unit -> t
(** Installs the DHT request handler on the server backend (clobbering any
    previously installed handler there). *)

val create_onesided :
  params:params -> rnics:Onesided.Rnic.t array -> server:int -> unit -> t
(** Registers the table as a memory {!Onesided.Region} on the server's
    Rnic. *)

val client_op : t -> rank:int -> Sim.Rng.t -> unit
(** One blocking logical operation (get or put) issued from the calling
    client thread on [rank]; draws the op type then the key from [rng]
    (the draw sequence is identical across transports). *)

val ops : t -> int
val gets : t -> int
val puts : t -> int

val violations : t -> int
(** Blocks observed by any client that failed their own tag's pattern. *)

val check_at_rest : t -> int
(** After the run drains: verifies every slot's index word equals its
    block tag and the block matches its pattern; returns the number of
    bad slots (0 for a correct backend). *)
