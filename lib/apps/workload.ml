type Sim.Payload.t +=
  | Int_v of int
  | Int2 of int * int
  | Row of int * int array
  | Frow of int * float array
  | Cells of int array
  | Fcells of float array
  | Tagged of int * Sim.Payload.t
  | Slices of (int * float array) list

let dist_matrix ~seed ~n ~lo ~hi =
  let rng = Sim.Rng.create ~seed in
  let m = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = lo + Sim.Rng.int rng (hi - lo) in
      m.(i).(j) <- d;
      m.(j).(i) <- d
    done
  done;
  m

let binary_grid ~seed ~h ~w ~density_pct =
  let rng = Sim.Rng.create ~seed in
  Array.init h (fun _ -> Array.init w (fun _ -> Sim.Rng.int rng 100 < density_pct))

let diag_dominant ~seed ~n =
  let rng = Sim.Rng.create ~seed in
  let a =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0. else Sim.Rng.float rng 1.0))
  in
  (* Make each diagonal dominate its row so Jacobi converges at a useful
     rate (spectral radius around 0.9). *)
  Array.iteri
    (fun i row ->
      let sum = Array.fold_left ( +. ) 0. row in
      row.(i) <- (1.006 *. sum) +. 1.0 +. Sim.Rng.float rng 1.0)
    a;
  let b = Array.init n (fun _ -> Sim.Rng.float rng 10.0) in
  (a, b)

let block_range ~n ~parts ~rank =
  let base = n / parts and rem = n mod parts in
  let lo = (rank * base) + min rank rem in
  let hi = lo + base + (if rank < rem then 1 else 0) in
  (lo, hi)

let zipf_cdf = Load.Keys.zipf_cdf
let zipf_draw = Load.Keys.zipf_draw
