type switch_costs = {
  warm : Sim.Time.span;
  cold_idle : Sim.Time.span;
  cold_preempt : Sim.Time.span;
}

type job = {
  key : int;
  prio : int;
  label : string;
  layer : Obs.Layer.t;
  mutable needs_switch : bool;
  mutable remaining : Sim.Time.span;
  on_complete : unit -> unit;
}

type running = {
  job : job;
  started : Sim.Time.t;
  switch : Sim.Time.span;
  mutable handle : Sim.Engine.handle option;
}

type t = {
  eng : Sim.Engine.t;
  costs : switch_costs;
  track : string;
  mutable current : running option;
  (* One FIFO per priority level; level 0 = interrupts. *)
  ready : job Queue.t array;
  mutable last : int;
  mutable busy_ns : Sim.Time.span;
  mutable busy_intr_ns : Sim.Time.span;
  mutable n_switches : int;
  (* Every completion event runs this one closure; it reads [current], so
     [start] need not allocate a fresh callback per dispatched job. *)
  mutable on_tick : unit -> unit;
}

let n_prios = 3
let interrupt_key = -1
let idle_key = -2

let busy t = t.current <> None
let last_key t = t.last
let busy_time t = t.busy_ns
let busy_interrupt_time t = t.busy_intr_ns
let switches t = t.n_switches

let accrue t running now =
  let elapsed = now - running.started in
  t.busy_ns <- t.busy_ns + elapsed;
  if running.job.key = interrupt_key then
    t.busy_intr_ns <- t.busy_intr_ns + elapsed

let queue_length t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.ready

let switch_cost t ~preempting job =
  if job.key = interrupt_key then 0
  else if job.key = t.last then
    if job.needs_switch then t.costs.warm else 0
  else if preempting then t.costs.cold_preempt
  else t.costs.cold_idle

let rec start t ~preempting job =
  let switch = switch_cost t ~preempting job in
  if job.key <> interrupt_key then begin
    if switch > 0 then t.n_switches <- t.n_switches + 1;
    t.last <- job.key;
    (* A job preempted mid-run and restarted must not pay its wakeup
       switch twice. *)
    job.needs_switch <- false
  end;
  (* Each switch-in charges its switch cost; requested work is charged by
     the semantic submitter, so ledger CPU totals match [busy_time]. *)
  Obs.Recorder.charge ~layer:job.layer ~cause:Obs.Cause.Ctx_switch switch;
  let now = Sim.Engine.now t.eng in
  Obs.Recorder.span_begin ~track:t.track ~layer:job.layer ~name:job.label ~now;
  let total = switch + job.remaining in
  let running = { job; started = now; switch; handle = None } in
  let handle = Sim.Engine.after t.eng total t.on_tick in
  running.handle <- Some handle;
  t.current <- Some running

and complete t running =
  let now = Sim.Engine.now t.eng in
  accrue t running now;
  Obs.Recorder.span_end ~track:t.track ~now;
  t.current <- None;
  running.job.on_complete ();
  dispatch t

and dispatch t =
  if t.current = None then
    let rec pick i =
      if i >= n_prios then ()
      else
        match Queue.take_opt t.ready.(i) with
        | Some job -> start t ~preempting:false job
        | None -> pick (i + 1)
    in
    pick 0

let create ?(name = "cpu") eng costs =
  let t =
    {
      eng;
      costs;
      track = "cpu:" ^ name;
      current = None;
      ready = Array.init n_prios (fun _ -> Queue.create ());
      last = idle_key;
      busy_ns = 0;
      busy_intr_ns = 0;
      n_switches = 0;
      on_tick = ignore;
    }
  in
  t.on_tick <-
    (fun () ->
      match t.current with Some r -> complete t r | None -> assert false);
  t

let preempt t running =
  let now = Sim.Engine.now t.eng in
  (match running.handle with
   | Some h -> Sim.Engine.cancel t.eng h
   | None -> assert false);
  accrue t running now;
  Obs.Recorder.span_end ~track:t.track ~now;
  (* The switch cost was charged in full at switch-in, but a preemption
     arriving mid-switch abandons the un-elapsed tail: that time never
     runs (the restart pays its own switch, if any), so refund it to keep
     the ledger equal to busy time. *)
  let unrun_switch = max 0 (running.switch - (now - running.started)) in
  Obs.Recorder.charge ~layer:running.job.layer ~cause:Obs.Cause.Ctx_switch
    (-unrun_switch);
  (* Time spent switching in does not count as job progress. *)
  let elapsed_work = max 0 (now - running.started - running.switch) in
  running.job.remaining <- max 0 (running.job.remaining - elapsed_work);
  t.current <- None;
  (* Put it at the front of its own priority class so it resumes before
     later arrivals of the same priority. *)
  let q = t.ready.(running.job.prio) in
  let rest = Queue.copy q in
  Queue.clear q;
  Queue.push running.job q;
  Queue.transfer rest q

let submit ?(needs_switch = true) ?(label = "job") ?(layer = Obs.Layer.App) t
    ~key ~prio ~cost on_complete =
  assert (prio >= 0 && prio < n_prios);
  let job = { key; prio; label; layer; needs_switch; remaining = cost; on_complete } in
  match t.current with
  | None ->
    Queue.push job t.ready.(prio);
    dispatch t
  | Some running when prio < running.job.prio ->
    preempt t running;
    start t ~preempting:true job
  | Some _ -> Queue.push job t.ready.(prio)
