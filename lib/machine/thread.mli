(** Kernel-level threads of a simulated machine.

    Amoeba provides only kernel threads, created and scheduled preemptively
    by the kernel; Panda maps its threads 1:1 onto them.  A thread here is a
    {!Sim.Fiber} bound to a machine: its [compute] calls occupy the
    machine's CPU (and can be preempted), its call stack is tracked by a
    register-window model, and its blocking operations go through {!Sync}.

    Two priorities exist: [Daemon] threads (protocol daemons) preempt
    [Normal] (application) threads, which is how an incoming group message
    preempts the Orca process on the user-space sequencer's machine. *)

type prio = Daemon | Normal

type t

val spawn : Mach.t -> ?prio:prio -> string -> (unit -> unit) -> t
(** The body starts at the current instant.  Spawning is free of simulated
    cost; charge creation costs explicitly where they matter. *)

val self : unit -> t
(** @raise Invalid_argument when not called from a thread. *)

val self_opt : unit -> t option
val machine : t -> Mach.t
val name : t -> string
val fiber : t -> Sim.Fiber.t
val prio : t -> prio
val alive : t -> bool
val kill : t -> unit
val join : t -> unit

val compute : ?cause:Obs.Cause.t -> ?layer:Obs.Layer.t -> Sim.Time.span -> unit
(** [compute d] occupies the calling thread's CPU for [d] (plus any
    context-switch cost and preemption delays).  For cost attribution only
    (no timing effect), the work is charged to [(layer, cause)], defaulting
    to [(App, Proto_proc)]. *)

val compute_parts :
  ?layer:Obs.Layer.t -> (Obs.Cause.t * Sim.Time.span) list -> unit
(** Like {!compute} on the sum of the parts — a single CPU job, identical
    timing — but each part is attributed to its own cause. *)

val call_frames : ?layer:Obs.Layer.t -> int -> unit
(** Models descending [n] call frames; charges overflow traps. *)

val ret_frames : ?layer:Obs.Layer.t -> int -> unit
(** Models returning [n] call frames; charges underflow traps. *)

val syscall :
  ?kernel_work:Sim.Time.span ->
  ?layer:Obs.Layer.t ->
  ?charges:(Obs.Layer.t * Obs.Cause.t * Sim.Time.span) list ->
  unit -> unit
(** One user/kernel round trip from the calling thread: charges the base
    crossing cost plus [kernel_work], and marks all register windows saved
    so the thread's subsequent [ret_frames] suffer underflow traps.

    Attribution (timing unaffected): the base crossing goes to
    [(layer, Uk_crossing)]; [kernel_work] follows [charges] with any
    remainder charged to [(layer, Proto_proc)]. *)

val mark_direct_wake : t -> unit
(** Declares that [t]'s pending wakeup is a direct return from kernel or
    interrupt context into the blocked thread — Amoeba's in-kernel RPC
    delivers the reply this way — so no scheduler invocation is owed.  If
    another thread has run meanwhile, a cold switch is still charged (the
    context is genuinely gone). *)

val sleep : Sim.Time.span -> unit
(** Blocks without occupying the CPU. *)

val suspend : (t -> (unit -> unit) -> unit) -> unit
(** Like {!Sim.Fiber.suspend} but passes the thread. *)
