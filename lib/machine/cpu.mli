(** A single processor modelled as a preemptive priority server.

    Work arrives as jobs, each bound to a context key (a thread id, or a
    pseudo-key for interrupts) and a priority.  Lower priority values run
    first; an arriving job preempts a running job of a numerically higher
    priority.  Starting a job whose key differs from the last-run context
    charges a context-switch cost, which is how the paper's 60/70/110 µs
    switch costs arise mechanistically:

    - [warm]: the job's context is still loaded (same key as last run);
    - [cold_idle]: a different context starts while the CPU was not
      executing a preempted thread (e.g. waking a blocked RPC client);
    - [cold_preempt]: a different context forcibly preempts a running
      thread, so the scheduler must first save the full context. *)

type t

type switch_costs = {
  warm : Sim.Time.span;
  cold_idle : Sim.Time.span;
  cold_preempt : Sim.Time.span;
}

val create : ?name:string -> Sim.Engine.t -> switch_costs -> t
(** [name] (default ["cpu"]) labels this processor's observability track
    (["cpu:<name>"]). *)

val interrupt_key : int
(** Pseudo context key used by interrupt jobs.  Interrupt jobs never update
    the last-run context, so returning to the interrupted thread after an
    interrupt is not charged as a full switch. *)

val submit :
  ?needs_switch:bool ->
  ?label:string ->
  ?layer:Obs.Layer.t ->
  t -> key:int -> prio:int -> cost:Sim.Time.span -> (unit -> unit) -> unit
(** [submit t ~key ~prio ~cost k] queues [cost] worth of CPU work for
    context [key]; [k] runs when the work completes.  [prio] 0 is reserved
    for interrupts.  [needs_switch] (default [true]) says the context comes
    off a blocking wait, so a scheduler invocation is due even if this
    context is still the one loaded (the warm-switch case); pass [false]
    for back-to-back work by a thread that never blocked.

    [label]/[layer] name the job's span on the CPU track and attribute any
    context-switch cost it incurs; they do not affect timing. *)

val busy : t -> bool

val last_key : t -> int
(** Context key of the thread that most recently held the CPU. *)

val busy_time : t -> Sim.Time.span
(** Accumulated CPU occupancy, including switch costs. *)

val busy_interrupt_time : t -> Sim.Time.span
(** The share of [busy_time] spent in interrupt context (jobs keyed
    [interrupt_key]).  [busy_time t - busy_interrupt_time t] is thread
    context, the evidence that a one-sided data path schedules no server
    thread. *)

val switches : t -> int
(** Number of cold context switches performed. *)

val queue_length : t -> int
(** Jobs waiting (not running), all priorities. *)
