type prio = Daemon | Normal

type t = {
  mach : Mach.t;
  tname : string;
  tprio : prio;
  mutable fib : Sim.Fiber.t option;
  (* True when the thread has blocked since it last held the CPU, so its
     next compute owes a scheduler invocation (context switch). *)
  mutable blocked_since_run : bool;
  regwin : Regwin.t;
}

(* Fiber-id -> thread, domain-local: fiber ids are unique within a domain
   (see [Sim.Fiber]), and each simulation runs entirely on one domain, so a
   shared table would both race and leak entries across parallel runs. *)
let table_key : (int, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let table () = Domain.DLS.get table_key

let self_opt () =
  match Sim.Fiber.self_opt () with
  | None -> None
  | Some f -> Hashtbl.find_opt (table ()) (Sim.Fiber.id f)

let self () =
  match self_opt () with
  | Some t -> t
  | None -> invalid_arg "Thread.self: not inside a machine thread"

let machine t = t.mach
let name t = t.tname
let prio t = t.tprio

let fiber t =
  match t.fib with
  | Some f -> f
  | None -> invalid_arg "Thread.fiber: not yet started"

let prio_level = function Daemon -> 1 | Normal -> 2

let spawn mach ?(prio = Normal) tname body =
  let windows = (Mach.config mach).Mach.reg_windows in
  let t =
    { mach; tname; tprio = prio; fib = None; blocked_since_run = true;
      regwin = Regwin.create ~windows }
  in
  let fib =
    Sim.Fiber.spawn (Mach.engine mach) ~name:(Mach.name mach ^ "/" ^ tname) (fun () -> body ())
  in
  t.fib <- Some fib;
  let table = table () in
  Hashtbl.replace table (Sim.Fiber.id fib) t;
  Sim.Fiber.on_exit fib (fun () -> Hashtbl.remove table (Sim.Fiber.id fib));
  t

let alive t = match t.fib with Some f -> Sim.Fiber.alive f | None -> false
let kill t = match t.fib with Some f -> Sim.Fiber.kill f | None -> ()
let join t = match t.fib with Some f -> Sim.Fiber.join f | None -> ()

(* One CPU submission of [d] work for the calling thread.  All semantic
   entry points funnel through here so a logical operation with several
   attributed parts still costs exactly one CPU job (identical timing to a
   single [compute]). *)
let submit_self t ~layer d =
  if d < 0 then invalid_arg "Thread.compute: negative duration";
  if d = 0 then ()
  else begin
    Sim.Stats.add (Mach.stats t.mach) "cpu.requested_ns" d;
    let needs_switch = t.blocked_since_run in
    t.blocked_since_run <- false;
    Sim.Fiber.suspend (fun fib resume ->
        ignore fib;
        Cpu.submit ~needs_switch ~label:t.tname ~layer (Mach.cpu t.mach)
          ~key:(Sim.Fiber.id (fiber t))
          ~prio:(prio_level t.tprio) ~cost:d resume)
  end

let compute ?(cause = Obs.Cause.Proto_proc) ?(layer = Obs.Layer.App) d =
  let t = self () in
  Obs.Recorder.charge ~layer ~cause d;
  submit_self t ~layer d

let compute_parts ?(layer = Obs.Layer.App) parts =
  let t = self () in
  let total =
    List.fold_left
      (fun acc (cause, d) ->
        if d < 0 then invalid_arg "Thread.compute_parts: negative duration";
        Obs.Recorder.charge ~layer ~cause d;
        acc + d)
      0 parts
  in
  submit_self t ~layer total

let charge_traps t ~layer n =
  if n > 0 then begin
    Sim.Stats.add (Mach.stats t.mach) "regwin.traps" n;
    let d = n * (Mach.config t.mach).Mach.trap_cost in
    Obs.Recorder.charge ~layer ~cause:Obs.Cause.Regwin_trap d;
    Obs.Recorder.count "obs.regwin.traps" n;
    submit_self t ~layer d
  end

let call_frames ?(layer = Obs.Layer.App) n =
  let t = self () in
  charge_traps t ~layer (Regwin.call t.regwin n)

let ret_frames ?(layer = Obs.Layer.App) n =
  let t = self () in
  charge_traps t ~layer (Regwin.ret t.regwin n)

let syscall ?(kernel_work = 0) ?(layer = Obs.Layer.App) ?charges () =
  let t = self () in
  Sim.Stats.incr (Mach.stats t.mach) "syscalls";
  let base = (Mach.config t.mach).Mach.syscall_base in
  Obs.Recorder.charge ~layer ~cause:Obs.Cause.Uk_crossing base;
  let itemized =
    match charges with
    | None -> 0
    | Some parts ->
      List.fold_left
        (fun acc (ly, cause, ns) ->
          Obs.Recorder.charge ~layer:ly ~cause ns;
          acc + ns)
        0 parts
  in
  Obs.Recorder.charge ~layer ~cause:Obs.Cause.Proto_proc
    (kernel_work - itemized);
  submit_self t ~layer (base + kernel_work);
  Regwin.syscall_save t.regwin

let mark_direct_wake t = t.blocked_since_run <- false

let sleep d =
  let t = self () in
  t.blocked_since_run <- true;
  Sim.Fiber.sleep d

let suspend register =
  let t = self () in
  t.blocked_since_run <- true;
  Sim.Fiber.suspend (fun _fib resume -> register t resume)
