type config = {
  ctx_warm : Sim.Time.span;
  ctx_cold_idle : Sim.Time.span;
  ctx_cold_preempt : Sim.Time.span;
  interrupt_entry : Sim.Time.span;
  syscall_base : Sim.Time.span;
  trap_cost : Sim.Time.span;
  lock_cost : Sim.Time.span;
  reg_windows : int;
}

type t = {
  mid : int;
  mname : string;
  eng : Sim.Engine.t;
  cpu : Cpu.t;
  config : config;
  stats : Sim.Stats.t;
}

let create eng ~id ~name config =
  let costs =
    {
      Cpu.warm = config.ctx_warm;
      cold_idle = config.ctx_cold_idle;
      cold_preempt = config.ctx_cold_preempt;
    }
  in
  { mid = id; mname = name; eng; cpu = Cpu.create ~name eng costs; config;
    stats = Sim.Stats.create () }

let id t = t.mid
let name t = t.mname
let engine t = t.eng
let cpu t = t.cpu
let config t = t.config
let stats t = t.stats

let interrupt ?(layer = Obs.Layer.App) ?charges t ~name ~cost handler =
  Sim.Stats.incr t.stats ("interrupt." ^ name);
  (* Interrupt entry is a kernel-boundary crossing; the body defaults to
     protocol processing unless the caller itemises it. *)
  Obs.Recorder.charge ~layer ~cause:Obs.Cause.Uk_crossing
    t.config.interrupt_entry;
  let itemized =
    match charges with
    | None -> 0
    | Some parts ->
      List.fold_left
        (fun acc (ly, cause, ns) ->
          Obs.Recorder.charge ~layer:ly ~cause ns;
          acc + ns)
        0 parts
  in
  Obs.Recorder.charge ~layer ~cause:Obs.Cause.Proto_proc (cost - itemized);
  Cpu.submit t.cpu ~key:Cpu.interrupt_key ~prio:0 ~label:("irq:" ^ name) ~layer
    ~cost:(t.config.interrupt_entry + cost)
    handler

let utilization t ~until =
  if until <= 0 then 0.
  else float_of_int (Cpu.busy_time t.cpu) /. float_of_int until
