(** A simulated processor board: one CPU, a cost configuration, statistics.

    Corresponds to one Tsunami board of the paper's processor pool.  Network
    devices ([Nic]) and protocol stacks attach themselves to a machine; the
    machine only owns the CPU-time model. *)

type config = {
  ctx_warm : Sim.Time.span;
      (** resuming the thread whose context is still loaded (the paper's
          dedicated-sequencer case, ~60 µs) *)
  ctx_cold_idle : Sim.Time.span;
      (** switching to another thread while no thread was computing
          (~70 µs; the paper's RPC reply path charges two of these) *)
  ctx_cold_preempt : Sim.Time.span;
      (** switching that must first save a running thread's context
          (~110 µs; the paper's user-space sequencer path) *)
  interrupt_entry : Sim.Time.span;
      (** dispatch overhead added to every interrupt *)
  syscall_base : Sim.Time.span;
      (** one user{->}kernel{->}user crossing, excluding window traps *)
  trap_cost : Sim.Time.span;  (** one register-window trap (~6 µs) *)
  lock_cost : Sim.Time.span;  (** uncontended user-space lock/unlock pair *)
  reg_windows : int;  (** register windows per CPU (6 on the SPARCs) *)
}

type t

val create : Sim.Engine.t -> id:int -> name:string -> config -> t

val id : t -> int
val name : t -> string
val engine : t -> Sim.Engine.t
val cpu : t -> Cpu.t
val config : t -> config
val stats : t -> Sim.Stats.t

val interrupt :
  ?layer:Obs.Layer.t ->
  ?charges:(Obs.Layer.t * Obs.Cause.t * Sim.Time.span) list ->
  t -> name:string -> cost:Sim.Time.span -> (unit -> unit) -> unit
(** [interrupt t ~name ~cost handler] models a hardware/software interrupt:
    [cost] CPU time at top priority (preempting any thread), then [handler]
    runs to completion in interrupt context.  Handlers must not block.

    For cost attribution (timing is unaffected): the fixed interrupt entry
    is charged to [(layer, Uk_crossing)]; [cost] is charged per [charges]
    with any un-itemised remainder going to [(layer, Proto_proc)].  [layer]
    defaults to [App]. *)

val utilization : t -> until:Sim.Time.t -> float
(** CPU busy fraction over [0, until]. *)
