(** Online protocol-conformance checkers.

    A checker interposes on the {!Orca.Backend.t} record — the one
    interface both the Amoeba kernel-space and the Panda user-space stacks
    implement — so any existing experiment runs in "checked" mode without
    the protocols knowing.  Every RPC request, reply and ordered broadcast
    is wrapped in a tagged payload on the way down and verified and
    unwrapped on the way up, asserting, online:

    - {b at-most-once RPC delivery}: the server-side handler runs at most
      once per issued request, no matter how many retransmitted copies the
      network delivers;
    - {b request/reply pairing}: the reply returned to a client carries
      the tag of exactly the request it issued, with the sizes the server
      stated, and each request is replied to exactly once;
    - {b payload/reassembly integrity}: a delivered payload is physically
      the value that was sent with the advertised size — a spliced or
      truncated reassembly surfaces as an untagged or mismatched payload;
    - {b gap-free totally-ordered group delivery}: all members observe the
      same delivery sequence (the first member to deliver its k-th message
      fixes the reference; every other member's k-th delivery must match),
      senders are attributed correctly, and per-origin sequence numbers
      never skip.  Under a sharded sequencer policy the checker maintains
      one reference sequence {e per ordering shard} (create with [~shards]
      matching the group): delivery order must be identical across members
      within each shard, and every broadcast must land in exactly one
      shard's sequence.

    {!finalize} (after the simulation drains) adds the completeness half:
    every issued RPC completed, every broadcast was delivered, and every
    member consumed the entire common sequence.

    Violations are collected, not raised, so a broken run still terminates
    and reports everything it tripped. *)

type t

val create : ?shards:int -> unit -> t
(** [shards] (default 1) is the number of independent ordering domains:
    broadcasts are assigned to reference sequences by
    [Panda.Seq_policy.shard_of_key] over the key the sender passed.  Must
    match the group's {!Panda.Group.shard_count}. *)

val wrap_backends : t -> Orca.Backend.t array -> Orca.Backend.t array
(** Interposes the checkers on every backend.  The wrapped array is a
    drop-in replacement for [Orca.Rts.create_domain].  A checker must not
    be shared between concurrently running simulations (one engine, one
    checker). *)

val attach_rnic : t -> Onesided.Rnic.t -> unit
(** Observes a one-sided Rnic (chained onto any existing observer),
    asserting at-most-once [cas] execution under retransmission — a
    retransmitted cas must replay its cached result, never swap twice —
    and (at {!finalize}) that every posted op completed.  Attach every
    Rnic of the simulation, initiators and targets alike. *)

val attach_rnics : t -> Onesided.Rnic.t array -> unit

val add_check : t -> (unit -> string list) -> unit
(** Registers a service-level conformance check run by {!finalize} after
    the drain, its returned messages counted as violations — how the
    sharded service's exactly-once-across-migration audit joins the
    checked-mode verdict.  Checks run in registration order. *)

val finalize : t -> unit
(** Runs the end-of-run completeness checks (including every
    {!add_check} hook).  Call once, after [Sim.Engine.run] has
    drained. *)

val violations : t -> string list
(** First violations recorded (bounded), oldest first. *)

val n_violations : t -> int
(** Total violations, including any beyond the retention bound. *)

val ok : t -> bool

val rpcs_checked : t -> int
(** Requests that reached a server-side handler under the checker. *)

val broadcasts_checked : t -> int
(** Distinct ordered broadcasts delivered under the checker. *)

val onesided_checked : t -> int
(** One-sided target executions observed (cas replays included). *)

val pp : Format.formatter -> t -> unit
