(* Tagged envelopes threaded through the backends.  The [size] the caller
   declared rides inside the tag, so any disagreement between what was
   sent and what the stack delivered — a spliced reassembly, a wrong-size
   reply — is caught at the far end. *)
type Sim.Payload.t +=
  | Req of { id : int; size : int; inner : Sim.Payload.t }
  | Rep of { id : int; size : int; inner : Sim.Payload.t }
  | Bcast of { origin : int; seq : int; key : int; size : int; inner : Sim.Payload.t }

let max_kept = 64

type t = {
  mutable viol_rev : string list;
  mutable n_viol : int;
  mutable next_req : int;
  outstanding : (int, unit) Hashtbl.t;  (* issued, reply not yet returned *)
  served : (int, unit) Hashtbl.t;  (* request ids a handler has run for *)
  mutable handled : int;
  (* Group delivery: one common reference sequence per ordering shard,
     each fixed by whichever member delivers its position k first.  With
     [shards = 1] (the default) this is the classic single total order. *)
  shards : int;
  log : (int * int, int * int) Hashtbl.t;  (* (shard, position) -> (origin, seq) *)
  log_len : int array;  (* per-shard reference length *)
  pos : (int * int, int ref) Hashtbl.t;  (* (shard, member rank) -> next position *)
  sent : (int, int ref) Hashtbl.t;  (* origin rank -> broadcasts sent *)
  (* One-sided ops, keyed (initiator address, op id). *)
  os_outstanding : (Flip.Address.t * int, unit) Hashtbl.t;
  os_cas_done : (Flip.Address.t * int, unit) Hashtbl.t;
  mutable os_checked : int;  (* target executions observed *)
  (* Service-level conformance hooks run by [finalize] after the drain —
     e.g. the sharded service's exactly-once-across-migration audit.
     Each returns the violations it found, already formatted. *)
  mutable checks_rev : (unit -> string list) list;
}

let create ?(shards = 1) () =
  if shards < 1 then invalid_arg "Invariants.create: shards must be >= 1";
  {
    viol_rev = [];
    n_viol = 0;
    next_req = 0;
    outstanding = Hashtbl.create 64;
    served = Hashtbl.create 1024;
    handled = 0;
    shards;
    log = Hashtbl.create 1024;
    log_len = Array.make shards 0;
    pos = Hashtbl.create 16;
    sent = Hashtbl.create 16;
    os_outstanding = Hashtbl.create 64;
    os_cas_done = Hashtbl.create 1024;
    os_checked = 0;
    checks_rev = [];
  }

let add_check c f = c.checks_rev <- f :: c.checks_rev

let violate c fmt =
  Printf.ksprintf
    (fun msg ->
      c.n_viol <- c.n_viol + 1;
      if c.n_viol <= max_kept then c.viol_rev <- msg :: c.viol_rev)
    fmt

let counter tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace tbl key r;
    r

let check_order c ~member ~shard ~origin ~seq =
  let k = counter c.pos (shard, member) in
  (if !k < c.log_len.(shard) then begin
     let o, s = Hashtbl.find c.log (shard, !k) in
     if o <> origin || s <> seq then
       if c.shards = 1 then
         violate c
           "group: member %d delivery #%d is (origin %d, seq %d) but member \
            order fixed (origin %d, seq %d)"
           member !k origin seq o s
       else
         violate c
           "group: member %d shard %d delivery #%d is (origin %d, seq %d) but \
            member order fixed (origin %d, seq %d)"
           member shard !k origin seq o s
   end
   else begin
     Hashtbl.replace c.log (shard, c.log_len.(shard)) (origin, seq);
     c.log_len.(shard) <- c.log_len.(shard) + 1
   end);
  incr k

let wrap_backend c (b : Orca.Backend.t) =
  let rank = b.Orca.Backend.rank in
  {
    b with
    Orca.Backend.broadcast =
      (fun ~nonblocking ?(key = 0) ~size payload ->
        let seq = counter c.sent rank in
        let tagged = Bcast { origin = rank; seq = !seq; key; size; inner = payload } in
        incr seq;
        b.Orca.Backend.broadcast ~nonblocking ~key ~size tagged);
    set_deliver =
      (fun f ->
        b.Orca.Backend.set_deliver (fun ~sender ~size payload ->
            match payload with
            | Bcast { origin; seq; key; size = sz; inner } ->
              if sender <> origin then
                violate c "group: member %d got (origin %d, seq %d) attributed to sender %d"
                  rank origin seq sender;
              if sz <> size then
                violate c
                  "group: member %d got (origin %d, seq %d) with size %d, sent as %d"
                  rank origin seq size sz;
              let shard = Panda.Seq_policy.shard_of_key ~shards:c.shards key in
              check_order c ~member:rank ~shard ~origin ~seq;
              f ~sender ~size inner
            | other ->
              violate c "group: member %d delivered an untagged payload" rank;
              f ~sender ~size other));
    rpc =
      (fun ~dst ~size payload ->
        let id = c.next_req in
        c.next_req <- c.next_req + 1;
        Hashtbl.replace c.outstanding id ();
        let rsize, rpayload =
          b.Orca.Backend.rpc ~dst ~size (Req { id; size; inner = payload })
        in
        match rpayload with
        | Rep { id = id'; size = sz; inner } ->
          if id' <> id then
            violate c "rpc: client %d issued request %d but got the reply to %d"
              rank id id';
          if sz <> rsize then
            violate c "rpc: reply to request %d delivered with size %d, sent as %d"
              id rsize sz;
          Hashtbl.remove c.outstanding id;
          (rsize, inner)
        | other ->
          violate c "rpc: client %d got an untagged reply to request %d" rank id;
          Hashtbl.remove c.outstanding id;
          (rsize, other));
    set_rpc_handler =
      (fun h ->
        b.Orca.Backend.set_rpc_handler (fun ~client ~size payload ~reply ->
            match payload with
            | Req { id; size = sz; inner } ->
              if sz <> size then
                violate c "rpc: request %d delivered with size %d, sent as %d"
                  id size sz;
              if Hashtbl.mem c.served id then
                violate c "rpc: at-most-once broken — handler ran twice for request %d"
                  id
              else Hashtbl.replace c.served id ();
              c.handled <- c.handled + 1;
              let replied = ref false in
              let checked_reply ~size p =
                if !replied then
                  violate c "rpc: reply called twice for request %d" id;
                replied := true;
                reply ~size (Rep { id; size; inner = p })
              in
              h ~client ~size inner ~reply:checked_reply
            | other ->
              violate c "rpc: server %d got an untagged request" rank;
              h ~client ~size other ~reply));
  }

let wrap_backends c backends =
  Array.iter
    (fun b ->
      for shard = 0 to c.shards - 1 do
        ignore (counter c.pos (shard, b.Orca.Backend.rank))
      done)
    backends;
  Array.map (wrap_backend c) backends

(* One-sided conformance: observe the Rnic's events rather than wrapping a
   record — the backend has no thread-visible server side to interpose on,
   which is rather the point. *)
let attach_rnic c rnic =
  let me = Onesided.Rnic.addr rnic in
  let addr_s a = Format.asprintf "%a" Flip.Address.pp a in
  Onesided.Rnic.set_observer rnic (function
    | Onesided.Rnic.Posted { op_id; _ } ->
      if Hashtbl.mem c.os_outstanding (me, op_id) then
        violate c "onesided: op %d from %s posted twice" op_id (addr_s me)
      else Hashtbl.replace c.os_outstanding (me, op_id) ()
    | Onesided.Rnic.Completed { op_id; _ } ->
      if not (Hashtbl.mem c.os_outstanding (me, op_id)) then
        violate c "onesided: op %d from %s completed but was never posted"
          op_id (addr_s me);
      Hashtbl.remove c.os_outstanding (me, op_id)
    | Onesided.Rnic.Failed { op_id } ->
      violate c "onesided: op %d from %s gave up after retries" op_id
        (addr_s me);
      Hashtbl.remove c.os_outstanding (me, op_id)
    | Onesided.Rnic.Target_exec { src; op_id; op; fresh } ->
      c.os_checked <- c.os_checked + 1;
      (match (op, fresh) with
       | Onesided.Rnic.Cas _, true ->
         let key = (src, op_id) in
         if Hashtbl.mem c.os_cas_done key then
           violate c
             "onesided: at-most-once broken — cas %d from %s executed twice"
             op_id (addr_s src)
         else Hashtbl.replace c.os_cas_done key ()
       | _ -> ()))

let attach_rnics c rnics = Array.iter (attach_rnic c) rnics

let finalize c =
  Hashtbl.iter
    (fun id () -> violate c "rpc: request %d issued but never completed" id)
    c.outstanding;
  Hashtbl.iter
    (fun (a, id) () ->
      violate c "onesided: op %d from %s posted but never completed" id
        (Format.asprintf "%a" Flip.Address.pp a))
    c.os_outstanding;
  Hashtbl.iter
    (fun (shard, member) k ->
      if !k <> c.log_len.(shard) then
        if c.shards = 1 then
          violate c "group: member %d delivered %d of the %d ordered broadcasts"
            member !k c.log_len.(shard)
        else
          violate c
            "group: member %d delivered %d of shard %d's %d ordered broadcasts"
            member !k shard c.log_len.(shard))
    c.pos;
  (* Every sent broadcast must appear in exactly one shard's reference
     sequence, each origin's seqs contiguous from 0 — a message ordered
     twice or never delivered anywhere both surface here. *)
  let seen = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _spos (origin, seq) ->
      let spot = (origin, seq) in
      if Hashtbl.mem seen spot then
        violate c "group: (origin %d, seq %d) appears twice in the sequence"
          origin seq
      else Hashtbl.replace seen spot ())
    c.log;
  Hashtbl.iter
    (fun origin n ->
      for seq = 0 to !n - 1 do
        if not (Hashtbl.mem seen (origin, seq)) then
          violate c "group: broadcast (origin %d, seq %d) was sent but never delivered"
            origin seq
      done)
    c.sent;
  List.iter
    (fun f -> List.iter (fun msg -> violate c "%s" msg) (f ()))
    (List.rev c.checks_rev)

let violations c = List.rev c.viol_rev
let n_violations c = c.n_viol
let ok c = c.n_viol = 0
let rpcs_checked c = c.handled
let broadcasts_checked c = Array.fold_left ( + ) 0 c.log_len
let onesided_checked c = c.os_checked

let pp fmt c =
  if ok c then
    Format.fprintf fmt "ok (%d rpcs, %d broadcasts checked)" c.handled
      (broadcasts_checked c)
  else begin
    Format.fprintf fmt "%d violations (%d rpcs, %d broadcasts checked)" c.n_viol
      c.handled (broadcasts_checked c);
    List.iter (fun v -> Format.fprintf fmt "@,  %s" v) (violations c)
  end
