type window = { w_start : Sim.Time.t; w_len : Sim.Time.span }

type t = {
  seed : int;
  loss : float;
  dup : float;
  corrupt : float;
  reorder : float;
  reorder_delay : Sim.Time.span;
  burst_p : float;
  burst_len : int;
  parts : window list;
  sw_parts : window list;
  seq_crash : Sim.Time.t option;
}

let none =
  {
    seed = 1;
    loss = 0.;
    dup = 0.;
    corrupt = 0.;
    reorder = 0.;
    reorder_delay = Sim.Time.us 1000;
    burst_p = 0.;
    burst_len = 0;
    parts = [];
    sw_parts = [];
    seq_crash = None;
  }

let loss ?(seed = 1) p = { none with seed; loss = p }

let is_null t =
  t.loss = 0. && t.dup = 0. && t.corrupt = 0. && t.reorder = 0.
  && (t.burst_p = 0. || t.burst_len = 0)
  && t.parts = [] && t.sw_parts = [] && t.seq_crash = None

(* --- parsing --- *)

let ( let* ) = Result.bind

let prob key s =
  match float_of_string_opt s with
  | Some p when p >= 0. && p <= 1. -> Ok p
  | Some _ -> Error (Printf.sprintf "%s: probability %s out of [0,1]" key s)
  | None -> Error (Printf.sprintf "%s: not a number: %S" key s)

let sec_span key s =
  match float_of_string_opt s with
  | Some x when x >= 0. -> Ok (Sim.Time.us_f (x *. 1e6))
  | Some _ -> Error (Printf.sprintf "%s: negative time %s" key s)
  | None -> Error (Printf.sprintf "%s: not a number: %S" key s)

let window key s =
  match String.split_on_char '+' s with
  | [ start; len ] ->
    let* w_start = sec_span key start in
    let* w_len = sec_span key len in
    Ok { w_start; w_len }
  | _ -> Error (Printf.sprintf "%s: expected START+DURATION seconds, got %S" key s)

let item t s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "expected key=value, got %S" s)
  | Some i -> (
    let key = String.sub s 0 i in
    let v = String.sub s (i + 1) (String.length s - i - 1) in
    match key with
    | "seed" -> (
      match int_of_string_opt v with
      | Some seed -> Ok { t with seed }
      | None -> Error (Printf.sprintf "seed: not an integer: %S" v))
    | "loss" ->
      let* loss = prob key v in
      Ok { t with loss }
    | "dup" ->
      let* dup = prob key v in
      Ok { t with dup }
    | "corrupt" ->
      let* corrupt = prob key v in
      Ok { t with corrupt }
    | "reorder" ->
      let* reorder = prob key v in
      Ok { t with reorder }
    | "rdelay" -> (
      match int_of_string_opt v with
      | Some us when us >= 0 -> Ok { t with reorder_delay = Sim.Time.us us }
      | _ -> Error (Printf.sprintf "rdelay: not a microsecond count: %S" v))
    | "burst" -> (
      match String.index_opt v 'x' with
      | None -> Error (Printf.sprintf "burst: expected PxN, got %S" v)
      | Some j -> (
        let* burst_p = prob key (String.sub v 0 j) in
        match int_of_string_opt (String.sub v (j + 1) (String.length v - j - 1)) with
        | Some burst_len when burst_len > 0 -> Ok { t with burst_p; burst_len }
        | _ -> Error (Printf.sprintf "burst: bad length in %S" v)))
    | "part" ->
      let* w = window key v in
      Ok { t with parts = t.parts @ [ w ] }
    | "swpart" ->
      let* w = window key v in
      Ok { t with sw_parts = t.sw_parts @ [ w ] }
    | "seqcrash" ->
      let* at = sec_span key v in
      Ok { t with seq_crash = Some at }
    | _ -> Error (Printf.sprintf "unknown fault key %S" key))

let parse s =
  let items = String.split_on_char ',' (String.trim s) in
  List.fold_left
    (fun acc it ->
      let* t = acc in
      let it = String.trim it in
      if it = "" then Ok t else item t it)
    (Ok none) items

let to_string t =
  let b = Buffer.create 64 in
  let add fmt = Printf.ksprintf (fun s ->
      if Buffer.length b > 0 then Buffer.add_char b ',';
      Buffer.add_string b s) fmt in
  add "seed=%d" t.seed;
  let fl x = Printf.sprintf "%.12g" x in
  if t.loss > 0. then add "loss=%s" (fl t.loss);
  if t.dup > 0. then add "dup=%s" (fl t.dup);
  if t.corrupt > 0. then add "corrupt=%s" (fl t.corrupt);
  if t.reorder > 0. then begin
    add "reorder=%s" (fl t.reorder);
    add "rdelay=%d" (t.reorder_delay / Sim.Time.us 1)
  end;
  if t.burst_p > 0. && t.burst_len > 0 then
    add "burst=%sx%d" (fl t.burst_p) t.burst_len;
  let win key w =
    add "%s=%s+%s" key
      (fl (Sim.Time.to_sec w.w_start))
      (fl (Sim.Time.to_sec w.w_len))
  in
  List.iter (win "part") t.parts;
  List.iter (win "swpart") t.sw_parts;
  (match t.seq_crash with
   | Some at -> add "seqcrash=%s" (fl (Sim.Time.to_sec at))
   | None -> ());
  Buffer.contents b

let pp fmt t = Format.pp_print_string fmt (to_string t)
