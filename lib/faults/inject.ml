type stats = {
  mutable drops : int;
  mutable bursts : int;
  mutable burst_drops : int;
  mutable corrupts : int;
  mutable dups : int;
  mutable reorders : int;
  mutable part_drops : int;
  mutable sw_drops : int;
  mutable log_rev : string list;
  logging : bool;
}

let create_stats ~log =
  {
    drops = 0;
    bursts = 0;
    burst_drops = 0;
    corrupts = 0;
    dups = 0;
    reorders = 0;
    part_drops = 0;
    sw_drops = 0;
    log_rev = [];
    logging = log;
  }

let note stats eng ~where ~kind (frame : Net.Frame.t) =
  Obs.Recorder.count (Printf.sprintf "faults.%s" kind) 1;
  if stats.logging then
    stats.log_rev <-
      Printf.sprintf "t=%d %s %s src=%d bytes=%d" (Sim.Engine.now eng) where kind
        frame.Net.Frame.src frame.Net.Frame.bytes
      :: stats.log_rev

let in_window windows now =
  List.exists
    (fun w -> now >= w.Spec.w_start && now < w.Spec.w_start + w.Spec.w_len)
    windows

(* Independent deterministic stream per (segment, fault class): any mixing
   of the seed with the indices works as long as it is injective and fixed
   forever. *)
let stream spec index cls =
  Sim.Rng.create
    ~seed:((spec.Spec.seed * 1_000_003) + (7919 * (index + 1)) + (104_729 * cls))

let install_segment ?(log = false) ?stats eng ~index seg (spec : Spec.t) =
  let stats = match stats with Some s -> s | None -> create_stats ~log in
  if not (Spec.is_null spec) then begin
    let rng_burst = stream spec index 0 in
    let rng_loss = stream spec index 1 in
    let rng_corrupt = stream spec index 2 in
    let rng_dup = stream spec index 3 in
    let rng_reorder = stream spec index 4 in
    let burst_left = ref 0 in
    let where = Printf.sprintf "seg=%d" index in
    let roll rng p = p > 0. && Sim.Rng.float rng 1.0 < p in
    Net.Segment.set_fault seg
      (Some
         (fun frame ->
           let now = Sim.Engine.now eng in
           (* Every enabled class draws from its own stream on every frame
              before the verdict is picked, so each class's schedule is a
              pure function of the frame sequence: enabling or disabling
              another class cannot perturb it. *)
           let burst = spec.burst_len > 0 && roll rng_burst spec.burst_p in
           let lose = roll rng_loss spec.loss in
           let corrupt = roll rng_corrupt spec.corrupt in
           let dup = roll rng_dup spec.dup in
           let reorder = roll rng_reorder spec.reorder in
           if in_window spec.parts now then begin
             stats.part_drops <- stats.part_drops + 1;
             note stats eng ~where ~kind:"part_drops" frame;
             Net.Segment.Drop
           end
           else if !burst_left > 0 then begin
             decr burst_left;
             stats.burst_drops <- stats.burst_drops + 1;
             note stats eng ~where ~kind:"burst_drops" frame;
             Net.Segment.Drop
           end
           else if burst then begin
             burst_left := spec.burst_len - 1;
             stats.bursts <- stats.bursts + 1;
             stats.burst_drops <- stats.burst_drops + 1;
             note stats eng ~where ~kind:"bursts" frame;
             Net.Segment.Drop
           end
           else if lose then begin
             stats.drops <- stats.drops + 1;
             note stats eng ~where ~kind:"drops" frame;
             Net.Segment.Drop
           end
           else if corrupt then begin
             stats.corrupts <- stats.corrupts + 1;
             note stats eng ~where ~kind:"corrupts" frame;
             Net.Segment.Corrupt
           end
           else if dup then begin
             stats.dups <- stats.dups + 1;
             note stats eng ~where ~kind:"dups" frame;
             Net.Segment.Duplicate
           end
           else if reorder then begin
             stats.reorders <- stats.reorders + 1;
             note stats eng ~where ~kind:"reorders" frame;
             Net.Segment.Delay spec.reorder_delay
           end
           else Net.Segment.Pass))
  end;
  stats

let install ?(log = false) eng (topo : Net.Topology.t) (spec : Spec.t) =
  let stats = create_stats ~log in
  if not (Spec.is_null spec) then begin
    Array.iteri
      (fun index seg -> ignore (install_segment ~log ~stats eng ~index seg spec))
      topo.Net.Topology.segments;
    match (topo.Net.Topology.switch, spec.sw_parts) with
    | Some sw, _ :: _ ->
      Net.Switch.set_fault sw
        (Some
           (fun frame ->
             let now = Sim.Engine.now eng in
             if in_window spec.sw_parts now then begin
               stats.sw_drops <- stats.sw_drops + 1;
               note stats eng ~where:"switch" ~kind:"switch_drops" frame;
               true
             end
             else false))
    | _ -> ()
  end;
  stats

let drops s = s.drops
let bursts s = s.bursts
let burst_drops s = s.burst_drops
let corrupts s = s.corrupts
let dups s = s.dups
let reorders s = s.reorders
let part_drops s = s.part_drops
let switch_drops s = s.sw_drops
let killed s = s.drops + s.burst_drops + s.corrupts + s.part_drops + s.sw_drops
let injected s = killed s + s.dups + s.reorders
let schedule s = List.rev s.log_rev

let pp fmt s =
  Format.fprintf fmt
    "drops=%d bursts=%d(%d frames) corrupts=%d dups=%d reorders=%d part=%d switch=%d"
    s.drops s.bursts s.burst_drops s.corrupts s.dups s.reorders s.part_drops
    s.sw_drops
