(** Declarative, seed-driven fault schedules.

    A spec is a pure value describing which faults to inject and with what
    intensity; {!Inject.install} compiles it into deterministic per-segment
    injectors.  The textual grammar (the [--faults] CLI argument) is a
    comma-separated list of [key=value] items:

    {v
    seed=N            master RNG seed (default 1)
    loss=P            i.i.d. frame loss probability, 0 <= P <= 1
    dup=P             frame duplication probability
    corrupt=P         payload corruption probability (FCS drop at receivers)
    reorder=P         probability a frame is delayed so later frames overtake
    rdelay=US         reorder delay in microseconds (default 1000)
    burst=PxN         with probability P, enter a burst killing the next N frames
    part=T+D          segment blackout: from T seconds for D seconds
                      (repeatable; every segment drops all frames in the window)
    swpart=T+D        switch partition window: the switch forwards nothing,
                      segments stay internally connected (repeatable)
    seqcrash=T        crash the group sequencer at T seconds (the runner
                      schedules {!Panda.Group.crash_sequencer}; requires a
                      crash-recoverable sequencer policy)
    v}

    Example: [seed=42,loss=0.01,dup=0.005,burst=0.001x8,part=0.5+0.2]. *)

type window = { w_start : Sim.Time.t; w_len : Sim.Time.span }

type t = {
  seed : int;
  loss : float;
  dup : float;
  corrupt : float;
  reorder : float;
  reorder_delay : Sim.Time.span;
  burst_p : float;  (** probability of entering a burst on any frame *)
  burst_len : int;  (** frames killed once a burst starts *)
  parts : window list;  (** segment blackout windows *)
  sw_parts : window list;  (** switch partition windows *)
  seq_crash : Sim.Time.t option;  (** sequencer crash instant, if any *)
}

val none : t
(** No faults, seed 1. *)

val loss : ?seed:int -> float -> t
(** [loss ~seed p] is i.i.d. frame loss only — the common case. *)

val is_null : t -> bool
(** True when the spec can never inject anything. *)

val parse : string -> (t, string) result
(** Parses the grammar above; unknown keys and out-of-range values are
    errors. *)

val to_string : t -> string
(** Canonical textual form; [parse (to_string t)] round-trips. *)

val pp : Format.formatter -> t -> unit
