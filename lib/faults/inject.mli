(** Compiles a {!Spec.t} into deterministic fault injectors on a topology.

    Each (segment, fault class) pair gets its own SplitMix64 stream
    derived from the spec's seed, so the injected schedule is a pure
    function of (spec, traffic) — identical across runs and across [-j N]
    domain fan-out, where every cell owns its engine and topology.  Every
    enabled class draws once per frame from its own stream before the
    verdict is picked (priority: partition, burst, loss, corrupt, dup,
    reorder), so a class's schedule is a pure function of the frame
    sequence and enabling or disabling one class never perturbs
    another's draws. *)

type stats

val install : ?log:bool -> Sim.Engine.t -> Net.Topology.t -> Spec.t -> stats
(** Installs injectors on every segment (loss, duplication, corruption,
    reordering, bursts, [part] windows) and on the switch ([swpart]
    windows, when a switch exists).  A null spec installs nothing.  With
    [log], every injected fault is appended to a textual schedule for
    byte-identical determinism comparisons.

    Fault events are also counted on the installed {!Obs.Recorder} (keys
    [faults.drops], [faults.bursts], [faults.corrupts], [faults.dups],
    [faults.reorders], [faults.part_drops], [faults.switch_drops]), and
    killed frames charge their wire time to [Obs.Cause.Fault_wire] (see
    {!Net.Segment.set_fault}). *)

val install_segment :
  ?log:bool -> ?stats:stats -> Sim.Engine.t -> index:int -> Net.Segment.t -> Spec.t -> stats
(** Installs on a single segment (for micro-topologies and tests);
    [index] selects the per-segment stream.  Pass [stats] to accumulate
    several segments into one handle. *)

(** {1 Reading results} *)

val drops : stats -> int  (** i.i.d. losses *)

val burst_drops : stats -> int
val bursts : stats -> int  (** burst episodes entered *)

val corrupts : stats -> int
val dups : stats -> int
val reorders : stats -> int
val part_drops : stats -> int
val switch_drops : stats -> int

val killed : stats -> int
(** Every frame the faults prevented from arriving: losses, burst drops,
    corruptions, partition and switch drops. *)

val injected : stats -> int
(** All fault events, including duplications and reorderings. *)

val schedule : stats -> string list
(** The chronological fault schedule (empty unless installed with
    [~log:true]): one line per injected fault. *)

val pp : Format.formatter -> stats -> unit
