(** Registered memory regions.

    One-sided operations address remote memory, not remote procedures: the
    target registers a region (pinning it, exchanging the protection key at
    setup time) and initiators then read, write, or compare-and-swap words
    inside it without any target-side software being scheduled.  Word
    granularity keeps the model exact — values are integers, offsets are
    word offsets. *)

type t = {
  key : int;  (** protection key quoted by remote operations *)
  name : string;
  data : int array;  (** the registered words *)
}

val create : key:int -> name:string -> words:int -> t
(** A zero-filled region of [words] words. *)

val length : t -> int
