(** The one-sided (RDMA-style) fourth communication backend.

    The paper's three stacks all share one shape: a client thread asks, a
    server {e thread} is scheduled to answer, and the per-message protocol
    CPU on both sides bounds capacity once the wire stops being the
    bottleneck.  The fast-network era answered with one-sided operations
    (remote read/write/cas against a registered {!Region}): the request
    completes entirely in the target's NIC/interrupt layer — no server
    thread is woken, no syscall is made, no protocol daemon runs.

    Mechanically, each machine gets an [Rnic.t] bound to its FLIP instance.
    The initiator posts an operation from its thread (user-level NIC
    access: [post_cost] then [completion_cost] of thread CPU, charged to
    [(Onesided, Proto_proc)], with {e no} user/kernel crossing).  The
    request travels as ordinary FLIP fragments.  On the target the NIC
    receive interrupt hands the reassembled request to the Rnic, which
    executes it in a nested interrupt ([interrupt_entry] charged to
    [(Onesided, Uk_crossing)], the op itself to [(Onesided, Offload)]) and
    replies from interrupt context.  The reply wakes the blocked initiator
    directly ({!Machine.Thread.mark_direct_wake}), like Amoeba's in-kernel
    reply delivery.

    Loss is handled by NIC-autonomous retransmission: a hardware timer
    resends the same message id without charging host CPU, and the target
    keeps a bounded per-initiator result cache so a retransmitted [cas]
    replays its recorded result instead of executing twice (at-most-once
    semantics; reads and writes are idempotent and simply re-execute). *)

type config = {
  os_header : int;  (** one-sided protocol header bytes per message *)
  post_cost : Sim.Time.span;  (** initiator thread CPU to post a request *)
  completion_cost : Sim.Time.span;
      (** initiator thread CPU to reap the completion *)
  op_fixed : Sim.Time.span;  (** target interrupt-context cost per op *)
  op_word : Sim.Time.span;  (** target interrupt-context cost per data word *)
  retrans_timeout : Sim.Time.span;
  max_retries : int;
  cas_cache : int;  (** bound on remembered cas results (at-most-once) *)
}

val default_config : config

type op =
  | Read of { words : int }
  | Write of { values : int array }
  | Cas of { expected : int; desired : int }

type result =
  | Values of int array  (** read: the words fetched *)
  | Written  (** write acknowledged *)
  | Cas_was of int
      (** cas: the word's prior value; the swap happened iff it equals
          [expected] *)

(** Observer events, consumed by [Faults.Invariants] to check at-most-once
    execution under injected faults. *)
type event =
  | Posted of { op_id : int; op : op }
  | Completed of { op_id : int; result : result; retries : int }
  | Failed of { op_id : int }
  | Target_exec of {
      src : Flip.Address.t;
      op_id : int;
      op : op;
      fresh : bool;  (** [false] when a cas replayed its cached result *)
    }

type t

val create : ?config:config -> Flip.Flip_iface.t -> t
(** Binds an Rnic to the machine owning [flip]: allocates its FLIP point
    address and installs its fragment handler. *)

val addr : t -> Flip.Address.t
val machine : t -> Machine.Mach.t
val config : t -> config

val register_region : t -> Region.t -> unit
(** @raise Invalid_argument if the key is already registered. *)

val region : t -> key:int -> Region.t

val perform :
  t -> dst:Flip.Address.t -> rkey:int -> off:int -> op -> result
(** Issues one one-sided operation from the calling thread against region
    [rkey] of the Rnic at [dst], blocking until the completion.
    @raise Failure when [max_retries] retransmissions all time out. *)

val read : t -> dst:Flip.Address.t -> rkey:int -> off:int -> words:int -> int array
val write : t -> dst:Flip.Address.t -> rkey:int -> off:int -> int array -> unit

val cas :
  t -> dst:Flip.Address.t -> rkey:int -> off:int -> expected:int -> desired:int -> int
(** Returns the word's prior value; the swap happened iff it equals
    [expected]. *)

val set_observer : t -> (event -> unit) -> unit
(** Chains onto any observer already installed. *)

val posted : t -> int
(** Operations posted by this initiator. *)

val target_ops : t -> int
(** Operations executed here as the target (cas replays excluded). *)

val retransmissions : t -> int
val cas_replays : t -> int
