type config = {
  os_header : int;
  post_cost : Sim.Time.span;
  completion_cost : Sim.Time.span;
  op_fixed : Sim.Time.span;
  op_word : Sim.Time.span;
  retrans_timeout : Sim.Time.span;
  max_retries : int;
  cas_cache : int;
}

let default_config =
  {
    os_header = 28;
    post_cost = Sim.Time.us 8;
    completion_cost = Sim.Time.us 6;
    op_fixed = Sim.Time.us 5;
    op_word = Sim.Time.ns 10;
    retrans_timeout = Sim.Time.ms 200;
    max_retries = 10;
    cas_cache = 4096;
  }

type op =
  | Read of { words : int }
  | Write of { values : int array }
  | Cas of { expected : int; desired : int }

type result = Values of int array | Written | Cas_was of int

type event =
  | Posted of { op_id : int; op : op }
  | Completed of { op_id : int; result : result; retries : int }
  | Failed of { op_id : int }
  | Target_exec of { src : Flip.Address.t; op_id : int; op : op; fresh : bool }

type Sim.Payload.t +=
  | Os_req of { op_id : int; rkey : int; off : int; op : op }
  | Os_rsp of { op_id : int; result : result }

type pending = {
  p_id : int;
  p_thread : Machine.Thread.t;
  mutable p_result : result option;
  mutable p_failed : bool;
  mutable p_resume : (unit -> unit) option;
  mutable p_timer : Sim.Engine.handle option;
  mutable p_tries : int;
}

type t = {
  flip : Flip.Flip_iface.t;
  cfg : config;
  addr : Flip.Address.t;
  reass : Flip.Reassembly.t;
  regions : (int, Region.t) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  (* At-most-once cas: remembered results keyed by (initiator, op_id),
     bounded in insertion order like Amoeba's reply cache. *)
  cas_seen : (Flip.Address.t * int, int) Hashtbl.t;
  cas_order : (Flip.Address.t * int) Queue.t;
  mutable next_op : int;
  mutable n_posted : int;
  mutable n_target : int;
  mutable n_retrans : int;
  mutable n_replays : int;
  mutable observer : (event -> unit) option;
}

let addr t = t.addr
let machine t = Flip.Flip_iface.machine t.flip
let config t = t.cfg
let posted t = t.n_posted
let target_ops t = t.n_target
let retransmissions t = t.n_retrans
let cas_replays t = t.n_replays
let eng t = Machine.Mach.engine (machine t)

let set_observer t f =
  match t.observer with
  | None -> t.observer <- Some f
  | Some g ->
    t.observer <-
      Some
        (fun e ->
          g e;
          f e)

let emit t e = match t.observer with None -> () | Some f -> f e

let register_region t r =
  if Hashtbl.mem t.regions r.Region.key then
    invalid_arg "Rnic.register_region: key already registered";
  Hashtbl.replace t.regions r.Region.key r

let region t ~key =
  match Hashtbl.find_opt t.regions key with
  | Some r -> r
  | None -> invalid_arg "Rnic.region: unknown key"

(* Data bytes carried beyond the one-sided header (8-byte words). *)
let req_bytes = function
  | Read _ -> 0
  | Write { values } -> 8 * Array.length values
  | Cas _ -> 16

let rsp_bytes = function
  | Values v -> 8 * Array.length v
  | Written -> 0
  | Cas_was _ -> 8

(* Words the target touches: drives the per-word interrupt-context cost. *)
let op_words = function
  | Read { words } -> words
  | Write { values } -> Array.length values
  | Cas _ -> 1

let os_hdr t = (Obs.Layer.Onesided, t.cfg.os_header)

let bound_cas t =
  while Queue.length t.cas_order > t.cfg.cas_cache do
    Hashtbl.remove t.cas_seen (Queue.pop t.cas_order)
  done

(* Target side: runs from the nested one-sided interrupt. *)
let execute t ~src ~op_id ~rkey ~off op =
  let r = region t ~key:rkey in
  let result =
    match op with
    | Read { words } -> Values (Array.sub r.Region.data off words)
    | Write { values } ->
      Array.blit values 0 r.Region.data off (Array.length values);
      Written
    | Cas { expected; desired } ->
      let key = (src, op_id) in
      (match Hashtbl.find_opt t.cas_seen key with
       | Some old ->
         (* Retransmitted cas: replay the remembered outcome; executing
            again could swap twice.  Reads and writes are idempotent and
            never reach this path. *)
         t.n_replays <- t.n_replays + 1;
         emit t (Target_exec { src; op_id; op; fresh = false });
         Cas_was old
       | None ->
         let old = r.Region.data.(off) in
         if old = expected then r.Region.data.(off) <- desired;
         Hashtbl.replace t.cas_seen key old;
         Queue.push key t.cas_order;
         bound_cas t;
         t.n_target <- t.n_target + 1;
         emit t (Target_exec { src; op_id; op; fresh = true });
         Cas_was old)
  in
  (match op with
   | Cas _ -> ()
   | _ ->
     t.n_target <- t.n_target + 1;
     emit t (Target_exec { src; op_id; op; fresh = true }));
  let msg_id = Flip.Flip_iface.alloc_msg_id t.flip in
  Flip.Flip_iface.unicast ~msg_id ~hdr:(os_hdr t) t.flip ~src:t.addr ~dst:src
    ~size:(t.cfg.os_header + rsp_bytes result)
    (Os_rsp { op_id; result })

let handle_request t ~src ~op_id ~rkey ~off op =
  (* The op completes in a nested interrupt on the target: entry cost to
     (Onesided, Uk_crossing) as for any interrupt, the op itself — data
     access plus emitting the reply — to (Onesided, Offload).  No thread
     is scheduled; this is the whole server-side data path. *)
  let cost = t.cfg.op_fixed + (op_words op * t.cfg.op_word) in
  Machine.Mach.interrupt (machine t) ~layer:Obs.Layer.Onesided
    ~charges:[ (Obs.Layer.Onesided, Obs.Cause.Offload, cost) ]
    ~name:"os.op" ~cost
    (fun () -> execute t ~src ~op_id ~rkey ~off op)

let wake p =
  match p.p_resume with
  | Some resume ->
    p.p_resume <- None;
    resume ()
  | None -> ()

let handle_response t ~op_id result =
  match Hashtbl.find_opt t.pending op_id with
  | Some p when p.p_result = None && not p.p_failed ->
    (match p.p_timer with
     | Some h -> Sim.Engine.cancel (eng t) h
     | None -> ());
    p.p_result <- Some result;
    (* The completion is delivered straight into the blocked initiator —
       no scheduler invocation, as for Amoeba's in-kernel reply. *)
    Machine.Thread.mark_direct_wake p.p_thread;
    wake p
  | Some _ | None -> () (* late duplicate after completion *)

let on_fragment t frag =
  match Flip.Reassembly.add t.reass frag with
  | None -> ()
  | Some (src, _total, payload) ->
    (match payload with
     | Os_req { op_id; rkey; off; op } ->
       handle_request t ~src ~op_id ~rkey ~off op
     | Os_rsp { op_id; result } -> handle_response t ~op_id result
     | _ -> ())

let create ?(config = default_config) flip =
  let t =
    {
      flip;
      cfg = config;
      addr = Flip.Address.fresh_point (Machine.Mach.engine (Flip.Flip_iface.machine flip));
      reass = Flip.Reassembly.create ();
      regions = Hashtbl.create 8;
      pending = Hashtbl.create 32;
      cas_seen = Hashtbl.create 64;
      cas_order = Queue.create ();
      next_op = 0;
      n_posted = 0;
      n_target = 0;
      n_retrans = 0;
      n_replays = 0;
      observer = None;
    }
  in
  Flip.Flip_iface.register flip t.addr (on_fragment t);
  t

let send_request t ~msg_id ~dst ~op_id ~rkey ~off op =
  Flip.Flip_iface.unicast ~msg_id ~hdr:(os_hdr t) t.flip ~src:t.addr ~dst
    ~size:(t.cfg.os_header + req_bytes op)
    (Os_req { op_id; rkey; off; op })

(* NIC-autonomous retransmission: the timer and the resend charge no host
   CPU — the adapter retries on its own, which is what lets the initiator
   thread stay blocked at zero cost. *)
let rec arm_timer t p ~msg_id ~dst ~rkey ~off op =
  p.p_timer <-
    Some
      (Sim.Engine.after (eng t) t.cfg.retrans_timeout (fun () ->
           if p.p_result = None && not p.p_failed then
             if p.p_tries >= t.cfg.max_retries then begin
               p.p_failed <- true;
               emit t (Failed { op_id = p.p_id });
               wake p
             end
             else begin
               p.p_tries <- p.p_tries + 1;
               t.n_retrans <- t.n_retrans + 1;
               send_request t ~msg_id ~dst ~op_id:p.p_id ~rkey ~off op;
               arm_timer t p ~msg_id ~dst ~rkey ~off op
             end))

let perform t ~dst ~rkey ~off op =
  let thread = Machine.Thread.self () in
  t.next_op <- t.next_op + 1;
  let op_id = t.next_op in
  t.n_posted <- t.n_posted + 1;
  emit t (Posted { op_id; op });
  let p =
    {
      p_id = op_id;
      p_thread = thread;
      p_result = None;
      p_failed = false;
      p_resume = None;
      p_timer = None;
      p_tries = 0;
    }
  in
  Hashtbl.replace t.pending op_id p;
  (* Posting is pure user-level work against the mapped adapter: no
     syscall, no kernel output path — just the post descriptor write. *)
  Machine.Thread.compute ~layer:Obs.Layer.Onesided ~cause:Obs.Cause.Proto_proc
    t.cfg.post_cost;
  let msg_id = Flip.Flip_iface.alloc_msg_id t.flip in
  send_request t ~msg_id ~dst ~op_id ~rkey ~off op;
  arm_timer t p ~msg_id ~dst ~rkey ~off op;
  (* The completion may already be in (loopback or a preempting receive
     interrupt during the post). *)
  if p.p_result = None && not p.p_failed then
    Machine.Thread.suspend (fun _ resume -> p.p_resume <- Some resume);
  (match p.p_timer with
   | Some h -> Sim.Engine.cancel (eng t) h
   | None -> ());
  Hashtbl.remove t.pending op_id;
  match p.p_result with
  | Some result ->
    Machine.Thread.compute ~layer:Obs.Layer.Onesided
      ~cause:Obs.Cause.Proto_proc t.cfg.completion_cost;
    emit t (Completed { op_id; result; retries = p.p_tries });
    result
  | None ->
    Fmt.failwith "onesided: op %d to %a timed out after %d retries" op_id
      Flip.Address.pp dst p.p_tries

let read t ~dst ~rkey ~off ~words =
  match perform t ~dst ~rkey ~off (Read { words }) with
  | Values v -> v
  | Written | Cas_was _ -> assert false

let write t ~dst ~rkey ~off values =
  match perform t ~dst ~rkey ~off (Write { values }) with
  | Written -> ()
  | Values _ | Cas_was _ -> assert false

let cas t ~dst ~rkey ~off ~expected ~desired =
  match perform t ~dst ~rkey ~off (Cas { expected; desired }) with
  | Cas_was old -> old
  | Values _ | Written -> assert false
