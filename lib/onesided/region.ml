type t = { key : int; name : string; data : int array }

let create ~key ~name ~words = { key; name; data = Array.make words 0 }
let length t = Array.length t.data
