(** Store-and-forward Ethernet switch with MAC learning.

    The paper's pool connects segments of eight processors through an
    Ethernet switch.  Unicast frames whose destination has been learned go
    only to that port; unknown unicasts flood; multicast and broadcast go to
    every port except the ingress.  Forwarding adds a fixed latency on top
    of the full reception of the frame (store-and-forward). *)

type t

val create : Sim.Engine.t -> ?latency:Sim.Time.span -> string -> t
(** [latency] defaults to 50 µs. *)

val add_port : t -> Segment.t -> unit

val set_lanes :
  t ->
  self:int ->
  port_lane:int array ->
  ingress:Sim.Time.span ->
  egress:Sim.Time.span ->
  unit
(** Lane placement for the conservative parallel engine ([Net.Topology]
    calls this when lanes are enabled): the switch executes in lane [self],
    port [i]'s segment in lane [port_lane.(i)], and the store-and-forward
    latency splits into an [ingress] hop into the switch lane and an
    [egress] hop out of it ([ingress + egress] = total latency, both at
    least the engine lookahead). *)

val ports : t -> int
val frames_forwarded : t -> int

val bytes_forwarded : t -> int
(** Total frame bytes the switch has put on egress segments — the
    inter-segment traffic share, for utilization attribution when the
    switch rather than any single wire is the contended resource. *)

val set_fault : t -> (Frame.t -> bool) option -> unit
(** When the hook returns [true] the switch silently discards the frame
    after full reception instead of forwarding it — the building block for
    timed switch partitions (frames stay local to their segment). *)

val frames_dropped : t -> int
(** Frames discarded by the fault hook. *)
