type config = {
  byte_time : Sim.Time.span;
  framing_bytes : int;
  min_payload : int;
}

let default_config = { byte_time = Sim.Time.ns 800; framing_bytes = 38; min_payload = 46 }

type verdict =
  | Pass
  | Drop
  | Corrupt
  | Duplicate
  | Delay of Sim.Time.span

type attachment = {
  aid : int;
  aname : string;
  accepts : Frame.t -> bool;
  deliver : Frame.t -> unit;
}

type t = {
  eng : Sim.Engine.t;
  sname : string;
  config : config;
  mutable attachments : attachment list;
  mutable next_aid : int;
  queue : (attachment * Frame.t) Queue.t;
  mutable transmitting : bool;
  (* Frame currently on the wire and whether it gets delivered; lets the
     wire-completion event be one preallocated closure instead of two fresh
     ones per frame (the busiest allocation site in the simulation). *)
  mutable cur : (attachment * Frame.t) option;
  mutable cur_deliver : bool;
  mutable on_wire_done : unit -> unit;
  mutable bytes : int;
  mutable frames : int;
  mutable busy_ns : Sim.Time.span;
  mutable fault : (Frame.t -> verdict) option;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable delayed : int;
}

let attach t ~name ~accepts deliver =
  let a = { aid = t.next_aid; aname = name; accepts; deliver } in
  t.next_aid <- t.next_aid + 1;
  t.attachments <- t.attachments @ [ a ];
  a

let wire_time t (frame : Frame.t) =
  let payload = max frame.Frame.bytes t.config.min_payload in
  (payload + t.config.framing_bytes) * t.config.byte_time

(* A frame killed on the wire is charged in full to Fault_wire under the
   layer of its topmost protocol header, so injected loss stays visible in
   the layer × cause accounting (instead of the silent vanish the header
   charges alone would leave). *)
let top_layer (frame : Frame.t) =
  match List.rev frame.Frame.hdr with (ly, _) :: _ -> ly | [] -> Obs.Layer.Nic

let deliver_all t from frame =
  List.iter
    (fun a -> if a.aid <> from.aid && a.accepts frame then a.deliver frame)
    t.attachments

let rec start_next t =
  match Queue.take_opt t.queue with
  | None ->
    t.transmitting <- false;
    t.cur <- None
  | Some (from, frame) as cur ->
    t.transmitting <- true;
    t.cur <- cur;
    let wt = wire_time t frame in
    t.bytes <- t.bytes + frame.Frame.bytes;
    t.frames <- t.frames + 1;
    t.busy_ns <- t.busy_ns + wt;
    let verdict = match t.fault with Some f -> f frame | None -> Pass in
    let killed = match verdict with Drop | Corrupt -> true | _ -> false in
    (match verdict with
     | Drop -> t.dropped <- t.dropped + 1
     | Corrupt -> t.corrupted <- t.corrupted + 1
     | Duplicate ->
       t.duplicated <- t.duplicated + 1;
       Queue.push (from, frame) t.queue
     | Delay _ -> t.delayed <- t.delayed + 1
     | Pass -> ());
    if killed then
      Obs.Recorder.charge ~layer:(top_layer frame) ~cause:Obs.Cause.Fault_wire wt
    else
      (* Wire occupancy attributable to protocol headers (not CPU time). *)
      List.iter
        (fun (ly, b) ->
          Obs.Recorder.charge ~layer:ly ~cause:Obs.Cause.Header_wire
            (b * t.config.byte_time))
        frame.Frame.hdr;
    (* Delayed frames free the medium at the normal time but reach the
       receivers late, so frames queued behind them overtake: reordering. *)
    (match verdict with
     | Delay extra ->
       ignore
         (Sim.Engine.after t.eng (wt + extra) (fun () ->
              deliver_all t from frame))
     | _ -> ());
    t.cur_deliver <-
      (match verdict with Pass | Duplicate -> true | Drop | Corrupt | Delay _ -> false);
    ignore (Sim.Engine.after t.eng wt t.on_wire_done)

and wire_done t =
  (match t.cur with
   | Some (from, frame) when t.cur_deliver -> deliver_all t from frame
   | _ -> ());
  start_next t

let create eng ?(config = default_config) sname =
  let t =
    {
      eng;
      sname;
      config;
      attachments = [];
      next_aid = 0;
      queue = Queue.create ();
      transmitting = false;
      cur = None;
      cur_deliver = false;
      on_wire_done = ignore;
      bytes = 0;
      frames = 0;
      busy_ns = 0;
      fault = None;
      dropped = 0;
      corrupted = 0;
      duplicated = 0;
      delayed = 0;
    }
  in
  t.on_wire_done <- (fun () -> wire_done t);
  t

let transmit t ~from frame =
  Queue.push (from, frame) t.queue;
  if not t.transmitting then start_next t

let set_fault t f = t.fault <- f

let set_fault_injector t f =
  t.fault <-
    (match f with
     | None -> None
     | Some f -> Some (fun frame -> if f frame then Drop else Pass))

let frames_dropped t = t.dropped
let frames_corrupted t = t.corrupted
let frames_duplicated t = t.duplicated
let frames_delayed t = t.delayed
let busy t = t.transmitting
let queue_length t = Queue.length t.queue
let bytes_carried t = t.bytes
let frames_carried t = t.frames
let busy_time t = t.busy_ns
let name t = t.sname
