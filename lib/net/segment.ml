type config = {
  byte_time : Sim.Time.span;
  framing_bytes : int;
  min_payload : int;
}

let default_config = { byte_time = Sim.Time.ns 800; framing_bytes = 38; min_payload = 46 }

type attachment = {
  aid : int;
  aname : string;
  accepts : Frame.t -> bool;
  deliver : Frame.t -> unit;
}

type t = {
  eng : Sim.Engine.t;
  sname : string;
  config : config;
  mutable attachments : attachment list;
  mutable next_aid : int;
  queue : (attachment * Frame.t) Queue.t;
  mutable transmitting : bool;
  mutable bytes : int;
  mutable frames : int;
  mutable busy_ns : Sim.Time.span;
  mutable fault : (Frame.t -> bool) option;
  mutable dropped : int;
}

let create eng ?(config = default_config) sname =
  {
    eng;
    sname;
    config;
    attachments = [];
    next_aid = 0;
    queue = Queue.create ();
    transmitting = false;
    bytes = 0;
    frames = 0;
    busy_ns = 0;
    fault = None;
    dropped = 0;
  }

let attach t ~name ~accepts deliver =
  let a = { aid = t.next_aid; aname = name; accepts; deliver } in
  t.next_aid <- t.next_aid + 1;
  t.attachments <- t.attachments @ [ a ];
  a

let wire_time t (frame : Frame.t) =
  let payload = max frame.Frame.bytes t.config.min_payload in
  (payload + t.config.framing_bytes) * t.config.byte_time

let rec start_next t =
  match Queue.take_opt t.queue with
  | None -> t.transmitting <- false
  | Some (from, frame) ->
    t.transmitting <- true;
    let wt = wire_time t frame in
    (* Wire occupancy attributable to protocol headers (not CPU time). *)
    List.iter
      (fun (ly, b) ->
        Obs.Recorder.charge ~layer:ly ~cause:Obs.Cause.Header_wire
          (b * t.config.byte_time))
      frame.Frame.hdr;
    t.bytes <- t.bytes + frame.Frame.bytes;
    t.frames <- t.frames + 1;
    t.busy_ns <- t.busy_ns + wt;
    let lost = match t.fault with Some f -> f frame | None -> false in
    if lost then t.dropped <- t.dropped + 1;
    ignore
      (Sim.Engine.after t.eng wt (fun () ->
           if not lost then
             List.iter
               (fun a -> if a.aid <> from.aid && a.accepts frame then a.deliver frame)
               t.attachments;
           start_next t))

let transmit t ~from frame =
  Queue.push (from, frame) t.queue;
  if not t.transmitting then start_next t

let set_fault_injector t f = t.fault <- f
let frames_dropped t = t.dropped
let busy t = t.transmitting
let queue_length t = Queue.length t.queue
let bytes_carried t = t.bytes
let frames_carried t = t.frames
let busy_time t = t.busy_ns
let name t = t.sname
