(** Builds the paper's processor-pool network: segments of [per_segment]
    machines on 10 Mbit/s Ethernet, joined by one switch. *)

type t = {
  segments : Segment.t array;
  switch : Switch.t option;  (** absent when everything fits one segment *)
  nics : Nic.t array;  (** indexed by machine id *)
  lanes : Sim.Lanes.plan option;
      (** lane plan when built with [~lanes:true] on a shardable topology *)
}

val build :
  Sim.Engine.t ->
  machines:Machine.Mach.t array ->
  ?per_segment:int ->
  ?segment_config:Segment.config ->
  ?nic_config:Nic.config ->
  ?switch_latency:Sim.Time.span ->
  ?lanes:bool ->
  unit ->
  t
(** [per_segment] defaults to 8, as in the paper's pool.  Machine [i] lands
    on segment [i / per_segment]; a switch is added only when more than one
    segment is needed.

    [lanes] (default [false]) shards the engine into conservative event
    lanes — one per segment plus one for the switch, lookahead = half the
    switch latency (see {!Sim.Lanes}).  Must be requested before anything
    schedules events on [eng].  Single-segment topologies ignore it and
    keep the exact sequential engine path. *)

val nic : t -> int -> Nic.t

val machine_lane : t -> int -> int
(** Engine lane machine [i]'s segment belongs to (0 when unlaned). *)

val total_bytes : t -> int
(** Bytes carried across all segments (forwarded frames count once per
    segment traversed). *)

val max_utilization : t -> until:Sim.Time.t -> float
(** Highest busy fraction among the segments — the saturation indicator. *)
