type dest = Unicast of int | Multicast | Broadcast

type t = {
  src : int;
  dest : dest;
  bytes : int;
  hdr : (Obs.Layer.t * int) list;
  payload : Sim.Payload.t;
}

let make ?(hdr = []) ~src ~dest ~bytes payload =
  assert (bytes >= 0);
  assert (List.for_all (fun (_, b) -> b >= 0) hdr);
  { src; dest; bytes; hdr; payload }

let hdr_bytes t = List.fold_left (fun acc (_, b) -> acc + b) 0 t.hdr

let is_for ~mac t =
  if t.src = mac then false
  else
    match t.dest with
    | Unicast m -> m = mac
    | Multicast | Broadcast -> true

let pp fmt t =
  let dest =
    match t.dest with
    | Unicast m -> Printf.sprintf "->%d" m
    | Multicast -> "->mcast"
    | Broadcast -> "->bcast"
  in
  Format.fprintf fmt "frame[%d%s %dB]" t.src dest t.bytes
