type t = {
  segments : Segment.t array;
  switch : Switch.t option;
  nics : Nic.t array;
  lanes : Sim.Lanes.plan option;
}

let build eng ~machines ?(per_segment = 8) ?(segment_config = Segment.default_config)
    ?(nic_config = Nic.default_config) ?(switch_latency = Sim.Time.us 50)
    ?(lanes = false) () =
  let n = Array.length machines in
  assert (n > 0 && per_segment > 0);
  let n_segments = (n + per_segment - 1) / per_segment in
  (* Lanes shard the engine, so they must be configured before any segment,
     switch or NIC schedules events.  A plan only exists for multi-segment
     topologies with a positive lookahead; otherwise the engine keeps its
     sequential single-lane path. *)
  let plan =
    if lanes then
      Sim.Lanes.plan ~n_machines:n ~per_segment ~switch_latency
    else None
  in
  (match plan with Some p -> Sim.Lanes.apply eng p | None -> ());
  let segments =
    Array.init n_segments (fun i ->
        Segment.create eng ~config:segment_config (Printf.sprintf "seg%d" i))
  in
  let switch =
    if n_segments > 1 then begin
      let sw = Switch.create eng ~latency:switch_latency "switch" in
      Array.iter (fun seg -> Switch.add_port sw seg) segments;
      (match plan with
       | Some p ->
         (* Port [i] is segment [i] (added in order above). *)
         Switch.set_lanes sw ~self:p.Sim.Lanes.switch_lane
           ~port_lane:p.Sim.Lanes.segment_lane ~ingress:p.Sim.Lanes.ingress
           ~egress:p.Sim.Lanes.egress
       | None -> ());
      Some sw
    end
    else None
  in
  let nics =
    Array.mapi
      (fun i mach -> Nic.create mach ~config:nic_config segments.(i / per_segment))
      machines
  in
  { segments; switch; nics; lanes = plan }

let nic t i = t.nics.(i)

let machine_lane t i =
  match t.lanes with
  | Some p -> p.Sim.Lanes.machine_lane.(i)
  | None -> 0

let total_bytes t =
  Array.fold_left (fun acc seg -> acc + Segment.bytes_carried seg) 0 t.segments

let max_utilization t ~until =
  if until <= 0 then 0.
  else
    Array.fold_left
      (fun acc seg ->
        let u = float_of_int (Segment.busy_time seg) /. float_of_int until in
        Float.max acc u)
      0. t.segments
