type config = {
  rx_base : Sim.Time.span;
  rx_byte : Sim.Time.span;
  rx_mcast_extra : Sim.Time.span;
}

let default_config =
  { rx_base = Sim.Time.us 50; rx_byte = Sim.Time.ns 50; rx_mcast_extra = Sim.Time.us 45 }

type t = {
  mach : Machine.Mach.t;
  config : config;
  seg : Segment.t;
  mutable attachment : Segment.attachment option;
  mutable rx : (Frame.t -> unit) option;
  mutable received : int;
  mutable sent : int;
}

let mac t = Machine.Mach.id t.mach
let machine t = t.mach
let segment t = t.seg

let deliver t frame =
  t.received <- t.received + 1;
  let mcast_extra =
    match frame.Frame.dest with
    | Frame.Unicast _ -> 0
    | Frame.Multicast | Frame.Broadcast -> t.config.rx_mcast_extra
  in
  let cost = t.config.rx_base + mcast_extra + (frame.Frame.bytes * t.config.rx_byte) in
  (* Attribution splits the unchanged total: fixed reception work to the
     NIC, per-byte time to copying — except header bytes, whose per-byte
     reception time is billed to the layer that put the header on the
     wire. *)
  let hdr_bytes = Frame.hdr_bytes frame in
  (* The header share of rx time is CPU time charged as Header_wire (so the
     header-cost measurement matches the analytic differential); this
     counter lets the ledger-vs-busy-time invariant stay exact. *)
  Obs.Recorder.count "obs.nic.header_rx_ns" (hdr_bytes * t.config.rx_byte);
  let charges =
    (Obs.Layer.Nic, Obs.Cause.Proto_proc, t.config.rx_base + mcast_extra)
    :: (Obs.Layer.Nic, Obs.Cause.Copy,
        (frame.Frame.bytes - hdr_bytes) * t.config.rx_byte)
    :: List.map
         (fun (ly, b) -> (ly, Obs.Cause.Header_wire, b * t.config.rx_byte))
         frame.Frame.hdr
  in
  Machine.Mach.interrupt t.mach ~layer:Obs.Layer.Nic ~charges ~name:"nic.rx"
    ~cost (fun () ->
      match t.rx with
      | Some handler -> handler frame
      | None -> ())

let create mach ?(config = default_config) seg =
  let t = { mach; config; seg; attachment = None; rx = None; received = 0; sent = 0 } in
  let attachment =
    Segment.attach seg
      ~name:(Machine.Mach.name mach ^ ".nic")
      ~accepts:(fun frame -> Frame.is_for ~mac:(Machine.Mach.id mach) frame)
      (fun frame -> deliver t frame)
  in
  t.attachment <- Some attachment;
  t

let set_rx t handler = t.rx <- Some handler

let send t frame =
  t.sent <- t.sent + 1;
  match t.attachment with
  | Some from -> Segment.transmit t.seg ~from frame
  | None -> assert false

let frames_received t = t.received
let frames_sent t = t.sent
