(** Ethernet frames.

    [bytes] counts the payload put on the wire by the protocol stack
    (protocol headers included); Ethernet framing overhead and the minimum
    payload size are added by the segment when computing wire time. *)

type dest =
  | Unicast of int  (** destination station (MAC), = machine id *)
  | Multicast  (** hardware multicast: every station on every segment *)
  | Broadcast

type t = {
  src : int;  (** source station (MAC) *)
  dest : dest;
  bytes : int;  (** payload size on the wire, protocol headers included *)
  hdr : (Obs.Layer.t * int) list;
      (** protocol-header bytes within [bytes], attributed per layer; used
          only for cost accounting ([Header_wire]), never for timing *)
  payload : Sim.Payload.t;
}

val make :
  ?hdr:(Obs.Layer.t * int) list ->
  src:int -> dest:dest -> bytes:int -> Sim.Payload.t -> t

val hdr_bytes : t -> int
(** Total declared header bytes. *)

val is_for : mac:int -> t -> bool
(** Station-level filter: true for frames addressed to [mac], multicast and
    broadcast — excluding the station's own transmissions. *)

val pp : Format.formatter -> t -> unit
