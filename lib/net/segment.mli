(** A shared 10 Mbit/s Ethernet segment.

    The medium serializes transmissions: requests queue in arrival order and
    each occupies the wire for its frame's transmission time.  (Collisions
    and exponential backoff are not modelled; FIFO serialization gives the
    same deterministic saturation behaviour, which is what the paper's
    application results depend on.)

    Stations and switch ports attach with a delivery callback and a filter;
    when a frame's transmission completes it is delivered to every other
    attachment whose filter accepts it. *)

type t

type config = {
  byte_time : Sim.Time.span;  (** wire time per byte (800 ns at 10 Mbit/s) *)
  framing_bytes : int;
      (** per-frame overhead: preamble, MACs, type, FCS, interframe gap *)
  min_payload : int;  (** Ethernet minimum payload (padding), 46 bytes *)
}

val default_config : config
(** 10 Mbit/s Ethernet: 800 ns/byte, 38 framing bytes, 46 min payload. *)

val create : Sim.Engine.t -> ?config:config -> string -> t

type attachment

val attach :
  t -> name:string -> accepts:(Frame.t -> bool) -> (Frame.t -> unit) -> attachment
(** [attach t ~name ~accepts deliver] connects a station or switch port.
    [deliver] runs at frame-reception instants; it must not block. *)

val transmit : t -> from:attachment -> Frame.t -> unit
(** Queues a frame for transmission.  The sender's own attachment never
    receives the frame back. *)

val wire_time : t -> Frame.t -> Sim.Time.span
(** Time the frame occupies the medium. *)

(** Per-frame decision of a fault injector, evaluated when the frame wins
    the medium.  In every case the frame occupies the wire for its normal
    transmission time first (the medium does not know about the fault):

    - [Drop]: delivered to nobody — a collided/lost frame.
    - [Corrupt]: payload damaged in flight; receivers detect the bad FCS
      and discard it, so observably it is a drop, but it is counted
      separately.  (No corrupted bytes are ever surfaced upward — exactly
      the guarantee real Ethernet FCS checking gives the protocols.)
    - [Duplicate]: delivered normally, and queued once more at the tail,
      so the copy occupies the wire again and is delivered a second time
      (the copy is itself subject to the injector).
    - [Delay d]: the medium is released at the normal time but delivery
      is postponed by [d], so frames queued behind it overtake —
      reordering.
    - [Pass]: normal delivery. *)
type verdict =
  | Pass
  | Drop
  | Corrupt
  | Duplicate
  | Delay of Sim.Time.span

val set_fault : t -> (Frame.t -> verdict) option -> unit
(** Installs (or clears) the fault injector.  Frames killed by [Drop] or
    [Corrupt] charge their full wire time to
    [Obs.Cause.Fault_wire] under the layer of their topmost protocol
    header, so injected loss is visible in the cost ledger. *)

val set_fault_injector : t -> (Frame.t -> bool) option -> unit
(** Compatibility wrapper over {!set_fault}: [true] means [Drop]. *)

val frames_dropped : t -> int
(** Frames killed by [Drop] verdicts. *)

val frames_corrupted : t -> int
val frames_duplicated : t -> int
val frames_delayed : t -> int

val busy : t -> bool
val queue_length : t -> int
val bytes_carried : t -> int
val frames_carried : t -> int
val busy_time : t -> Sim.Time.span
val name : t -> string
