type port = {
  index : int;
  seg : Segment.t;
  attachment : Segment.attachment;
}

(* Lane placement for the conservative parallel engine: the switch runs in
   its own lane, [port_lane] maps a port to its segment's lane, and the
   store-and-forward latency is split into an ingress hop (segment lane ->
   switch lane) and an egress hop (switch lane -> destination segment
   lane), so both cross-lane edges satisfy the engine's lookahead. *)
type lane_cfg = {
  self : int;
  port_lane : int array;
  ingress_d : Sim.Time.span;
  egress_d : Sim.Time.span;
}

type t = {
  eng : Sim.Engine.t;
  name : string;
  latency : Sim.Time.span;
  mutable port_list : port list; (* reverse order of addition *)
  table : (int, int) Hashtbl.t; (* station -> port index *)
  mutable forwarded : int;
  mutable fwd_bytes : int;
  mutable fault : (Frame.t -> bool) option;
  mutable dropped : int;
  mutable lanes : lane_cfg option;
}

let create eng ?(latency = Sim.Time.us 50) name =
  {
    eng;
    name;
    latency;
    port_list = [];
    table = Hashtbl.create 64;
    forwarded = 0;
    fwd_bytes = 0;
    fault = None;
    dropped = 0;
    lanes = None;
  }

(* Table learning, fault filtering and port selection; runs in the switch's
   lane when laned (after the ingress hop), synchronously in the ingress
   segment's deliver event otherwise.  [egress] is the remaining latency to
   apply before the frame hits each output segment. *)
let forward_core t ~ingress ~egress frame =
  Hashtbl.replace t.table frame.Frame.src ingress;
  let blocked = match t.fault with Some f -> f frame | None -> false in
  if blocked then begin
    (* A partitioned/faulty switch eats the frame after full reception. *)
    t.dropped <- t.dropped + 1;
    Obs.Recorder.count "faults.switch_drops" 1
  end
  else
  let out_ports =
    match frame.Frame.dest with
    | Frame.Unicast dst -> (
        match Hashtbl.find_opt t.table dst with
        | Some p when p = ingress -> []
        | Some p -> List.filter (fun port -> port.index = p) t.port_list
        | None -> List.filter (fun port -> port.index <> ingress) t.port_list)
    | Frame.Multicast | Frame.Broadcast ->
      List.filter (fun port -> port.index <> ingress) t.port_list
  in
  if out_ports <> [] then begin
    t.forwarded <- t.forwarded + 1;
    t.fwd_bytes <- t.fwd_bytes + frame.Frame.bytes;
    match t.lanes with
    | None ->
      ignore
        (Sim.Engine.after t.eng egress (fun () ->
             List.iter
               (fun port ->
                 Segment.transmit port.seg ~from:port.attachment frame)
               out_ports))
    | Some cfg ->
      let at = Sim.Engine.now t.eng + egress in
      List.iter
        (fun port ->
          Sim.Engine.at_lane t.eng ~lane:cfg.port_lane.(port.index) at
            (fun () -> Segment.transmit port.seg ~from:port.attachment frame))
        out_ports
  end

let forward t ~ingress frame =
  match t.lanes with
  | None -> forward_core t ~ingress ~egress:t.latency frame
  | Some cfg ->
    Sim.Engine.at_lane t.eng ~lane:cfg.self
      (Sim.Engine.now t.eng + cfg.ingress_d)
      (fun () -> forward_core t ~ingress ~egress:cfg.egress_d frame)

let add_port t seg =
  let index = List.length t.port_list in
  let attachment =
    Segment.attach seg
      ~name:(Printf.sprintf "%s.p%d" t.name index)
      ~accepts:(fun _ -> true)
      (fun frame -> forward t ~ingress:index frame)
  in
  t.port_list <- { index; seg; attachment } :: t.port_list

let set_lanes t ~self ~port_lane ~ingress ~egress =
  t.lanes <- Some { self; port_lane; ingress_d = ingress; egress_d = egress }

let ports t = List.length t.port_list
let frames_forwarded t = t.forwarded
let bytes_forwarded t = t.fwd_bytes
let set_fault t f = t.fault <- f
let frames_dropped t = t.dropped
