type port = {
  index : int;
  seg : Segment.t;
  attachment : Segment.attachment;
}

type t = {
  eng : Sim.Engine.t;
  name : string;
  latency : Sim.Time.span;
  mutable port_list : port list; (* reverse order of addition *)
  table : (int, int) Hashtbl.t; (* station -> port index *)
  mutable forwarded : int;
  mutable fault : (Frame.t -> bool) option;
  mutable dropped : int;
}

let create eng ?(latency = Sim.Time.us 50) name =
  {
    eng;
    name;
    latency;
    port_list = [];
    table = Hashtbl.create 64;
    forwarded = 0;
    fault = None;
    dropped = 0;
  }

let forward t ~ingress frame =
  Hashtbl.replace t.table frame.Frame.src ingress;
  let blocked = match t.fault with Some f -> f frame | None -> false in
  if blocked then begin
    (* A partitioned/faulty switch eats the frame after full reception. *)
    t.dropped <- t.dropped + 1;
    Obs.Recorder.count "faults.switch_drops" 1
  end
  else
  let out_ports =
    match frame.Frame.dest with
    | Frame.Unicast dst -> (
        match Hashtbl.find_opt t.table dst with
        | Some p when p = ingress -> []
        | Some p -> List.filter (fun port -> port.index = p) t.port_list
        | None -> List.filter (fun port -> port.index <> ingress) t.port_list)
    | Frame.Multicast | Frame.Broadcast ->
      List.filter (fun port -> port.index <> ingress) t.port_list
  in
  if out_ports <> [] then begin
    t.forwarded <- t.forwarded + 1;
    ignore
      (Sim.Engine.after t.eng t.latency (fun () ->
           List.iter
             (fun port -> Segment.transmit port.seg ~from:port.attachment frame)
             out_ports))
  end

let add_port t seg =
  let index = List.length t.port_list in
  let attachment =
    Segment.attach seg
      ~name:(Printf.sprintf "%s.p%d" t.name index)
      ~accepts:(fun _ -> true)
      (fun frame -> forward t ~ingress:index frame)
  in
  t.port_list <- { index; seg; attachment } :: t.port_list

let ports t = List.length t.port_list
let frames_forwarded t = t.forwarded
let set_fault t f = t.fault <- f
let frames_dropped t = t.dropped
