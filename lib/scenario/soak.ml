type config = {
  sk_impl : Core.Cluster.impl;
  sk_nodes : int;
  sk_policy : Panda.Seq_policy.t;
  sk_op : Load.Clients.op;
  sk_mix : Load.Mix.t;
  sk_rate : float;
  sk_period : Sim.Time.span;
  sk_floor : float;
  sk_clients_per_node : int;
  sk_warmup : Sim.Time.span;
  sk_window : Sim.Time.span;
  sk_windows : int;
  sk_faults : Faults.Spec.t option;
  sk_net : Core.Params.net_profile option;
  sk_seed : int;
}

let default =
  {
    sk_impl = Core.Cluster.User;
    sk_nodes = 4;
    sk_policy = Panda.Seq_policy.Single;
    sk_op = Load.Clients.Rpc;
    sk_mix = Load.Mix.single 0;
    sk_rate = 400.;
    sk_period = Sim.Time.sec 2;
    sk_floor = 0.25;
    sk_clients_per_node = 2;
    sk_warmup = Sim.Time.ms 100;
    sk_window = Sim.Time.ms 250;
    sk_windows = 8;
    sk_faults = None;
    sk_net = None;
    sk_seed = 1;
  }

type window = {
  w_index : int;
  w_start_ms : float;
  w_offered : float;
  w_achieved : float;
  w_p50_ms : float;
  w_p99_ms : float;
  w_p999_ms : float;
  w_server_util : float;
  w_retrans : int;
  w_kills : int;
}

type report = {
  r_label : string;
  r_op : string;
  r_windows : window list;
  r_issued : int;
  r_completed : int;
  r_p99_ms : float;
  r_p999_ms : float;
  r_retrans : int;
  r_kills : int;
  r_seq_crashed : bool;
  r_violations : int;
}

let run cfg =
  if cfg.sk_windows < 1 then invalid_arg "Soak.run: need at least one window";
  if cfg.sk_nodes < 2 then invalid_arg "Soak.run: need at least two nodes";
  if not (Float.is_finite cfg.sk_rate) || cfg.sk_rate <= 0. then
    invalid_arg "Soak.run: peak rate not positive";
  let cluster =
    Core.Cluster.create
      ~extra_machine:(cfg.sk_impl = Core.Cluster.User_dedicated)
      ?net:cfg.sk_net ~n:cfg.sk_nodes ()
  in
  let eng = cluster.Core.Cluster.eng in
  let machines = cluster.Core.Cluster.machines in
  let fault_stats =
    Option.map
      (Faults.Inject.install eng cluster.Core.Cluster.topo)
      cfg.sk_faults
  in
  (* Checkers are not optional on a soak: the whole point of the long
     horizon is that the invariants hold through every fault window. *)
  let shards = Panda.Seq_policy.shards cfg.sk_policy in
  let checker = Faults.Invariants.create ~shards () in
  let backends = Core.Cluster.backends ~checker ~policy:cfg.sk_policy cluster cfg.sk_impl in
  (match cfg.sk_faults with
   | Some { Faults.Spec.seq_crash = Some at; _ } ->
     ignore
       (Sim.Engine.at eng at (fun () ->
            backends.(0).Orca.Backend.crash_sequencer ()))
   | _ -> ());
  (* Echo server and group sink, as in [Load.Clients.run]. *)
  Array.iter
    (fun b ->
      b.Orca.Backend.set_rpc_handler (fun ~client:_ ~size:_ _ ~reply ->
          reply ~size:0 Sim.Payload.Empty);
      b.Orca.Backend.set_deliver (fun ~sender:_ ~size:_ _ -> ()))
    backends;
  let server = 0 in
  let client_ranks =
    List.filter (fun r -> r <> server) (List.init cfg.sk_nodes Fun.id)
  in
  let n_clients = cfg.sk_clients_per_node * List.length client_ranks in
  let per_client_rate = cfg.sk_rate /. float_of_int n_clients in
  let t0 = Sim.Engine.now eng in
  let w_start = t0 + cfg.sk_warmup in
  let horizon = w_start + (cfg.sk_windows * cfg.sk_window) in
  let window_s = Sim.Time.to_sec cfg.sk_window in
  (* Per-window accounting plus a whole-horizon histogram. *)
  let nw = cfg.sk_windows in
  let win_stats = Array.init nw (fun _ -> Sim.Stats.create ()) in
  let issued_w = Array.make nw 0 and completed_w = Array.make nw 0 in
  let all = Sim.Stats.create () in
  let win_of at = if at < w_start then -1 else (at - w_start) / cfg.sk_window in
  let note ~sched ~fin =
    let wi = win_of sched in
    if wi >= 0 && wi < nw then begin
      issued_w.(wi) <- issued_w.(wi) + 1;
      let lat = Sim.Time.to_ms (fin - sched) in
      Sim.Stats.record win_stats.(wi) "lat_ms" lat;
      Sim.Stats.record all "lat_ms" lat
    end;
    let wf = win_of fin in
    if wf >= 0 && wf < nw then completed_w.(wf) <- completed_w.(wf) + 1
  in
  (* Boundary snapshots: retransmissions, fault kills and the server's
     busy time at the [nw + 1] window edges. *)
  let retrans_snap = Array.make (nw + 1) 0 in
  let kills_snap = Array.make (nw + 1) 0 in
  let busy_snap = Array.make (nw + 1) 0 in
  let total_retrans () =
    Array.fold_left (fun acc b -> acc + b.Orca.Backend.retransmissions ()) 0 backends
  in
  let kills () =
    match fault_stats with Some s -> Faults.Inject.killed s | None -> 0
  in
  for i = 0 to nw do
    ignore
      (Sim.Engine.at eng
         (w_start + (i * cfg.sk_window))
         (fun () ->
           retrans_snap.(i) <- total_retrans ();
           kills_snap.(i) <- kills ();
           busy_snap.(i) <- Machine.Cpu.busy_time (Machine.Mach.cpu machines.(server))))
  done;
  (* The client population: identical RNG-split order and staggering to
     [Load.Clients.run_core], with the ramp's diurnal gap draws. *)
  let arrival =
    Load.Arrival.Ramp { rp_period = cfg.sk_period; rp_floor = cfg.sk_floor }
  in
  let next_key = ref 0 in
  let do_op rank rng =
    let size = Load.Mix.pick cfg.sk_mix rng in
    let b = backends.(rank) in
    match cfg.sk_op with
    | Load.Clients.Rpc ->
      ignore (b.Orca.Backend.rpc ~dst:server ~size Sim.Payload.Empty)
    | Load.Clients.Group ->
      let key = !next_key in
      incr next_key;
      b.Orca.Backend.broadcast ~nonblocking:false ~key ~size Sim.Payload.Empty
  in
  let root = Sim.Rng.create ~seed:cfg.sk_seed in
  let mean_gap_ns = 1e9 /. per_client_rate in
  let clients =
    List.concat_map
      (fun rank -> List.init cfg.sk_clients_per_node (fun k -> (rank, k)))
      client_ranks
  in
  List.iteri
    (fun ci (rank, k) ->
      let rng = Sim.Rng.split root in
      ignore
        (Machine.Thread.spawn machines.(rank)
           (Printf.sprintf "soak.%d.%d" rank k)
           (fun () ->
             let offset =
               int_of_float
                 (mean_gap_ns *. float_of_int ci /. float_of_int n_clients)
             in
             let t_next = ref (t0 + offset) in
             let rec loop () =
               let now = Sim.Engine.now eng in
               if !t_next < horizon && now < horizon then begin
                 if now < !t_next then Machine.Thread.sleep (!t_next - now);
                 let sched = !t_next in
                 t_next :=
                   sched
                   + Load.Arrival.gap arrival ~rate:per_client_rate ~now:sched rng;
                 do_op rank rng;
                 note ~sched ~fin:(Sim.Engine.now eng);
                 loop ()
               end
             in
             loop ())))
    clients;
  Sim.Engine.run eng;
  Faults.Invariants.finalize checker;
  let windows =
    List.init nw (fun i ->
        let lat p = Sim.Stats.percentile win_stats.(i) "lat_ms" p in
        {
          w_index = i;
          w_start_ms = Sim.Time.to_ms (w_start + (i * cfg.sk_window) - t0);
          w_offered = float_of_int issued_w.(i) /. window_s;
          w_achieved = float_of_int completed_w.(i) /. window_s;
          w_p50_ms = lat 50.;
          w_p99_ms = lat 99.;
          w_p999_ms = lat 99.9;
          w_server_util =
            Float.max 0.
              (Sim.Time.to_sec (busy_snap.(i + 1) - busy_snap.(i)) /. window_s);
          w_retrans = retrans_snap.(i + 1) - retrans_snap.(i);
          w_kills = kills_snap.(i + 1) - kills_snap.(i);
        })
  in
  {
    r_label = backends.(0).Orca.Backend.label;
    r_op = (match cfg.sk_op with Load.Clients.Rpc -> "rpc" | Group -> "group");
    r_windows = windows;
    r_issued = Array.fold_left ( + ) 0 issued_w;
    r_completed = Array.fold_left ( + ) 0 completed_w;
    r_p99_ms = Sim.Stats.p99 all "lat_ms";
    r_p999_ms = Sim.Stats.p999 all "lat_ms";
    r_retrans = retrans_snap.(nw) - retrans_snap.(0);
    r_kills = kills_snap.(nw) - kills_snap.(0);
    r_seq_crashed =
      (match cfg.sk_faults with
       | Some { Faults.Spec.seq_crash = Some _; _ } -> true
       | _ -> false);
    r_violations = Faults.Invariants.n_violations checker;
  }

let pp_window fmt w =
  Format.fprintf fmt
    "w%-2d %8.0f ms  %7.1f off  %7.1f ach  p50 %7.3f  p99 %7.3f  p99.9 %8.3f  srv %5.1f%%  rt %-4d kill %d"
    w.w_index w.w_start_ms w.w_offered w.w_achieved w.w_p50_ms w.w_p99_ms
    w.w_p999_ms
    (100. *. w.w_server_util)
    w.w_retrans w.w_kills

let pp_report fmt r =
  Format.fprintf fmt "soak %s/%s: %d windows@." r.r_label r.r_op
    (List.length r.r_windows);
  List.iter (fun w -> Format.fprintf fmt "  %a@." pp_window w) r.r_windows;
  Format.fprintf fmt
    "  total: %d issued, %d completed, p99 %.3f ms, p99.9 %.3f ms, %d retrans, %d kills%s, %d violations"
    r.r_issued r.r_completed r.r_p99_ms r.r_p999_ms r.r_retrans r.r_kills
    (if r.r_seq_crashed then ", seqcrash" else "")
    r.r_violations
