type measurement = {
  m_era : string;
  m_intr_entry : int;
  m_wire_busy : (int * int) list;
  m_rx_intr : (int * int) list;
  m_rx_intr_mcast : int * int;
  m_probe_payload : int;
  m_local_ns : int;
  m_cross_ns : int;
}

type Sim.Payload.t += Probe

(* Payloads for the affine fits: a null frame exposes the padding floor;
   the two larger sizes sit above any plausible [min_payload], so their
   busy-time delta isolates the per-byte slope. *)
let probe_payloads = [ 0; 200; 1000 ]
let switch_payload = 200

(* One frame on an otherwise idle two-machine segment; returns the
   segment's wire-busy time and the receiver's interrupt-context busy
   time once the run drains. *)
let frame_probe ~machine ~(net : Core.Params.net_profile) ~dest ~payload () =
  let eng = Sim.Engine.create () in
  let machines =
    Array.init 2 (fun i ->
        Machine.Mach.create eng ~id:i ~name:(Printf.sprintf "cal%d" i) machine)
  in
  let seg = Net.Segment.create eng ~config:net.Core.Params.np_segment "cal.seg" in
  let nics =
    Array.map (fun m -> Net.Nic.create m ~config:net.Core.Params.np_nic seg) machines
  in
  Net.Nic.send nics.(0) (Net.Frame.make ~src:0 ~dest ~bytes:payload Probe);
  Sim.Engine.run eng;
  ( Net.Segment.busy_time seg,
    Machine.Cpu.busy_interrupt_time (Machine.Mach.cpu machines.(1)) )

(* Send-to-delivery time for one unicast frame, on a shared segment
   ([cross = false]) or across the store-and-forward switch (two
   single-machine segments).  The receive handler timestamps delivery;
   the interrupt cost it runs under is identical in both topologies, so
   the cross-minus-local delta cancels it. *)
let delivery_probe ~machine ~(net : Core.Params.net_profile) ~cross ~payload () =
  let eng = Sim.Engine.create () in
  let machines =
    Array.init 2 (fun i ->
        Machine.Mach.create eng ~id:i ~name:(Printf.sprintf "cal%d" i) machine)
  in
  let topo =
    Net.Topology.build eng ~machines
      ~per_segment:(if cross then 1 else 2)
      ~segment_config:net.Core.Params.np_segment ~nic_config:net.Core.Params.np_nic
      ~switch_latency:net.Core.Params.np_switch ()
  in
  let delivered = ref (-1) in
  Net.Nic.set_rx (Net.Topology.nic topo 1) (fun _ ->
      delivered := Sim.Engine.now eng);
  Net.Nic.send (Net.Topology.nic topo 0)
    (Net.Frame.make ~src:0 ~dest:(Net.Frame.Unicast 1) ~bytes:payload Probe);
  Sim.Engine.run eng;
  if !delivered < 0 then failwith "Calibrate: probe frame was not delivered";
  !delivered

let measure ?(machine = Core.Params.machine) ~net () =
  let uni p =
    frame_probe ~machine ~net ~dest:(Net.Frame.Unicast 1) ~payload:p ()
  in
  let probes = List.map (fun p -> (p, uni p)) probe_payloads in
  let _, (_, intr_m) =
    ( switch_payload,
      frame_probe ~machine ~net ~dest:Net.Frame.Multicast ~payload:switch_payload () )
  in
  {
    m_era = net.Core.Params.np_name;
    m_intr_entry = machine.Machine.Mach.interrupt_entry;
    m_wire_busy = List.map (fun (p, (busy, _)) -> (p, busy)) probes;
    m_rx_intr = List.map (fun (p, (_, intr)) -> (p, intr)) probes;
    m_rx_intr_mcast = (switch_payload, intr_m);
    m_probe_payload = switch_payload;
    m_local_ns = delivery_probe ~machine ~net ~cross:false ~payload:switch_payload ();
    m_cross_ns = delivery_probe ~machine ~net ~cross:true ~payload:switch_payload ();
  }

(* Exact division or a named error: the fit refuses to round. *)
let exact_div ~what a b =
  if b <= 0 then Error (Printf.sprintf "%s: division by %d" what b)
  else if a mod b <> 0 then
    Error (Printf.sprintf "%s: %d not divisible by %d (not affine)" what a b)
  else Ok (a / b)

let ( let* ) = Result.bind

let fit ?(name = "fitted") ?label m =
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "fitted from %s probes" m.m_era
  in
  let sorted = List.sort compare m.m_wire_busy in
  match (sorted, List.sort compare m.m_rx_intr) with
  | ( [ (0, busy0); (p1, busy1); (p2, busy2) ],
      [ (0, _); (q1, intr1); (q2, intr2) ] )
    when p1 = q1 && p2 = q2 && p1 < p2 ->
    (* Store probe: busy(p) = (p + framing) * byte_time above the floor. *)
    let* byte_time = exact_div ~what:"byte_time" (busy2 - busy1) (p2 - p1) in
    let* w1 = exact_div ~what:"wire busy" busy1 byte_time in
    let framing = w1 - p1 in
    let* w0 = exact_div ~what:"null-frame busy" busy0 byte_time in
    let min_payload = w0 - framing in
    if framing < 0 || min_payload < 0 then
      Error "fit: negative framing/min_payload"
    else if min_payload > p1 then
      Error "fit: probe payloads below the padding floor"
    else
      (* Load probe: intr(p) = interrupt_entry + rx_base + p * rx_byte. *)
      let* rx_byte = exact_div ~what:"rx_byte" (intr2 - intr1) (p2 - p1) in
      let rx_base = intr1 - (p1 * rx_byte) - m.m_intr_entry in
      let mp, intr_mcast = m.m_rx_intr_mcast in
      let rx_uni_at =
        match List.assoc_opt mp m.m_rx_intr with
        | Some v -> Ok v
        | None -> Error "fit: multicast probe payload has no unicast twin"
      in
      let* rx_uni = rx_uni_at in
      let rx_mcast_extra = intr_mcast - rx_uni in
      if rx_byte < 0 || rx_base < 0 || rx_mcast_extra < 0 then
        Error "fit: negative NIC constants"
      else
        (* Round-trip probe: cross - local = switch latency + one more
           wire time (store-and-forward retransmits the frame). *)
        let wire_time p = (max p min_payload + framing) * byte_time in
        let switch = m.m_cross_ns - m.m_local_ns - wire_time m.m_probe_payload in
        if switch < 0 then Error "fit: negative switch latency"
        else
          Ok
            {
              Core.Params.np_name = name;
              np_label = label;
              np_segment =
                { Net.Segment.byte_time; framing_bytes = framing; min_payload };
              np_nic = { Net.Nic.rx_base; rx_byte; rx_mcast_extra };
              np_switch = switch;
            }
  | _ -> Error "fit: expected probes at payloads 0 < p1 < p2 on both axes"

let verify ~reference fitted =
  let lat net =
    Core.Experiments.rpc_latency
      ~profile:(Core.Experiments.with_net net Core.Experiments.default_profile)
      ~impl:`User ~size:0 ()
  in
  (lat reference, lat fitted)

let pp fmt m =
  Format.fprintf fmt "calibration probes (%s, interrupt_entry %d ns):@." m.m_era
    m.m_intr_entry;
  List.iter
    (fun (p, busy) -> Format.fprintf fmt "  store  %4d B  wire busy %8d ns@." p busy)
    m.m_wire_busy;
  List.iter
    (fun (p, intr) -> Format.fprintf fmt "  load   %4d B  rx intr   %8d ns@." p intr)
    m.m_rx_intr;
  let mp, mi = m.m_rx_intr_mcast in
  Format.fprintf fmt "  load   %4d B  rx intr   %8d ns (multicast)@." mp mi;
  Format.fprintf fmt "  rtt    %4d B  local %d ns  cross %d ns@." m.m_probe_payload
    m.m_local_ns m.m_cross_ns
