(** Long-horizon soak runs: diurnal load, fault churn, conformance
    checkers always on, windowed timeline reporting.

    A soak drives one stack on one cluster for [sk_windows] consecutive
    measurement windows under a {!Load.Arrival.Ramp} diurnal arrival
    shape (peak [sk_rate]), with an optional {!Faults.Spec} schedule —
    loss, duplication, partitions, a mid-run [seqcrash] — installed for
    the whole horizon and the {!Faults.Invariants} protocol-conformance
    checkers wrapping every backend unconditionally.  Each window
    snapshots offered/achieved rates, the latency tail (p50/p99/p99.9),
    the server's busy fraction, and the retransmission / fault-kill
    deltas, so the report reads as a timeline: load breathing with the
    diurnal cycle, the tail inflating when the fault schedule bites,
    recovery after a sequencer crash — with zero invariant violations
    as the pass criterion. *)

type config = {
  sk_impl : Core.Cluster.impl;
  sk_nodes : int;
  sk_policy : Panda.Seq_policy.t;
  sk_op : Load.Clients.op;
  sk_mix : Load.Mix.t;
  sk_rate : float;  (** peak offered load, ops/s aggregate *)
  sk_period : Sim.Time.span;  (** diurnal cycle length *)
  sk_floor : float;  (** trough rate as a fraction of peak, in (0, 1] *)
  sk_clients_per_node : int;
  sk_warmup : Sim.Time.span;
  sk_window : Sim.Time.span;  (** length of one report window *)
  sk_windows : int;  (** number of consecutive windows *)
  sk_faults : Faults.Spec.t option;
  sk_net : Core.Params.net_profile option;
  sk_seed : int;
}

val default : config
(** User stack, 4 nodes, null RPCs: peak 400 ops/s over a 2 s diurnal
    period (floor 0.25), 8 windows of 250 ms, no faults, seed 1. *)

type window = {
  w_index : int;
  w_start_ms : float;  (** window start, ms from run start *)
  w_offered : float;  (** requests scheduled in the window / length *)
  w_achieved : float;
  w_p50_ms : float;
  w_p99_ms : float;
  w_p999_ms : float;
  w_server_util : float;
  w_retrans : int;  (** protocol retransmissions during this window *)
  w_kills : int;  (** frames killed by the fault schedule *)
}

type report = {
  r_label : string;
  r_op : string;
  r_windows : window list;
  r_issued : int;  (** total requests scheduled across all windows *)
  r_completed : int;
  r_p99_ms : float;  (** whole-horizon tail *)
  r_p999_ms : float;
  r_retrans : int;
  r_kills : int;
  r_seq_crashed : bool;  (** the fault schedule carried a [seqcrash] *)
  r_violations : int;  (** conformance violations — 0 on a healthy soak *)
}

val run : config -> report
(** Builds a fresh cluster and runs the whole horizon (warmup plus
    [sk_windows] windows, then drain).  Deterministic: a pure function
    of [config]. *)

val pp_window : Format.formatter -> window -> unit
val pp_report : Format.formatter -> report -> unit
(** The per-window timeline plus a summary line. *)
