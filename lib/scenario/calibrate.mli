(** Cost-profile calibration: fit {!Core.Params.net_profile} constants
    from measured probe runs.

    The golden 1995 tables are one pinned cost profile; this harness
    makes them one among several by recovering a profile's seven network
    constants from observable behaviour alone:

    - {e store probe} — one frame per payload size on an otherwise idle
      segment; the segment's wire-busy time is affine in the payload,
      giving [byte_time], [framing_bytes] and (from a null frame) the
      [min_payload] padding floor.
    - {e load probe} — the receiving machine's interrupt-context busy
      time for the same frames is affine in the payload, giving
      [rx_byte] and [rx_base] (the machine's known [interrupt_entry] is
      subtracted), and a multicast frame's surplus gives
      [rx_mcast_extra].
    - {e round-trip probe} — delivery time across the store-and-forward
      switch minus delivery time on a shared segment exceeds one wire
      time by exactly the switch [latency].

    Every observable is an integer nanosecond count and every constant
    is recovered by exact integer arithmetic, so fitting a measurement
    of an existing era round-trips it bit-exactly:
    [fit (measure ~net:Params.net10m ()) = Ok Params.net10m] up to the
    name/label strings. *)

type measurement = {
  m_era : string;  (** [np_name] of the profile measured *)
  m_intr_entry : int;  (** machine interrupt dispatch cost, ns (known) *)
  m_wire_busy : (int * int) list;
      (** [(payload bytes, segment busy ns)] per single-frame store
          probe, ascending payload; first entry payload 0 *)
  m_rx_intr : (int * int) list;
      (** [(payload bytes, receiver interrupt busy ns)], unicast *)
  m_rx_intr_mcast : int * int;
      (** [(payload bytes, receiver interrupt busy ns)], multicast; the
          payload matches one unicast probe *)
  m_probe_payload : int;  (** payload of the switch probe frame *)
  m_local_ns : int;  (** send-to-delivery, both machines on one segment *)
  m_cross_ns : int;  (** send-to-delivery across the switch *)
}

val measure :
  ?machine:Machine.Mach.config -> net:Core.Params.net_profile -> unit -> measurement
(** Runs the three probe simulations under [net] (machine constants
    default to {!Core.Params.machine}) and collects the raw integer
    observables.  Deterministic: no randomness anywhere. *)

val fit :
  ?name:string -> ?label:string -> measurement -> (Core.Params.net_profile, string) result
(** Recovers the profile by exact integer arithmetic ([name] defaults to
    ["fitted"]).  Errors when the observables are inconsistent with the
    affine cost model (non-divisible deltas, negative constants) instead
    of returning a rounded lie. *)

val verify :
  reference:Core.Params.net_profile ->
  Core.Params.net_profile ->
  float * float
(** [(reference_ms, fitted_ms)]: the user-stack null-RPC latency under
    both profiles — equal when the fit is exact, a one-number smoke test
    that a fitted profile actually reproduces end-to-end behaviour. *)

val pp : Format.formatter -> measurement -> unit
